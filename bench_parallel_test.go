// BenchmarkParallelSampling (experiment E9 of DESIGN.md §4) measures
// the worker-pool engine's throughput scaling: the one-time setup is
// excluded, and each benchmark iteration is one returned almost-uniform
// sample, so ns/op across the j1/j2/j4/j8 variants reads directly as
// per-sample latency at that pool size. On a machine with ≥4 cores the
// j4 variant should run ≥2.5× faster than j1 (rounds are independent;
// the only serial parts are round dispatch and in-order collection).
// On a single-core box all variants collapse to j1 throughput — the
// engine adds no contention, just goroutine scheduling.
//
// The sample multiset is identical across all variants for the fixed
// master seed (the determinism invariant of internal/parallel), so the
// variants do exactly the same solver work and the ratio isolates
// parallel speedup rather than workload drift.
package unigen

import (
	"context"
	"fmt"
	"testing"

	"unigen/internal/benchgen"
	"unigen/internal/core"
	"unigen/internal/parallel"
)

func BenchmarkParallelSampling(b *testing.B) {
	// EnqueueSeqSK is the Table 1 (sketch family) analogue also used by
	// E8: a small sampling set over a larger Tseitin encoding, the
	// regime the paper targets.
	inst, err := benchgen.Generate("EnqueueSeqSK", benchgen.ScaleSmall, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("EnqueueSeqSK/j%d", workers), func(b *testing.B) {
			eng, err := parallel.NewEngine(inst.F, parallel.Options{
				Workers:    workers,
				MasterSeed: benchSeed,
				Core:       core.Options{Epsilon: 6, Solver: benchSolverCfg(), ApproxMCRounds: 8},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			ws, err := eng.SampleN(context.Background(), b.N)
			if err != nil {
				b.Fatal(err)
			}
			if len(ws) != b.N {
				b.Fatalf("got %d samples, want %d", len(ws), b.N)
			}
			b.StopTimer()
			st := eng.Stats()
			b.ReportMetric(st.SuccessProb(), "succ-prob")
			b.ReportMetric(float64(st.BSATCalls)/float64(b.N), "bsat-calls/sample")
		})
	}
}
