package unigen

import (
	"context"
	"log/slog"
	"math/big"
	"net/http"
	"time"

	"unigen/internal/cnf"
	"unigen/internal/service"
)

// FormulaFingerprint returns the canonical fingerprint of f in hex: the
// SHA-256 of its normalized DIMACS serialization. Presentation changes
// (clause/literal order, duplicates, tautologies, sampling-set order)
// do not change the fingerprint; semantic changes do. It is the
// identity under which Service caches prepared formulas.
func FormulaFingerprint(f *Formula) string { return cnf.FingerprintString(f) }

// ServiceOptions configures an embedded sampling service. The zero
// value is usable: ε = 6, one worker per request, 64 cached formulas.
type ServiceOptions struct {
	// Epsilon is the uniformity tolerance for every prepared formula
	// (> 1.71; default 6).
	Epsilon float64
	// MaxConflicts / MaxPropagations bound each solver call during
	// preparation and (by default) sampling (0 = unlimited).
	MaxConflicts    int64
	MaxPropagations int64
	// GaussJordan enables Gauss–Jordan XOR preprocessing.
	GaussJordan bool
	// ApproxMCRounds caps setup-time counter iterations (benchmark
	// knob; 0 keeps the paper's parameters).
	ApproxMCRounds int
	// Workers is the per-request worker-pool size (default 1).
	Workers int
	// CacheSize bounds the prepared-formula LRU cache (default 64).
	CacheSize int
	// StoreDir enables the persistent prepared-formula store: a disk
	// tier under the RAM cache that survives restarts ("" disables it).
	// Prepared formulas are rehydrated from disk instead of re-running
	// the setup, and new preparations are persisted in the background.
	StoreDir string
	// StoreMaxBytes caps the persistent store's size; least-recently-
	// accessed entries are evicted beyond it (0 = unlimited).
	StoreMaxBytes int64

	// Delta sessions (SampleDelta / CountDelta).

	// SessionPool caps idle pooled solver sessions kept per base formula
	// for delta requests (default 8).
	SessionPool int
	// DeltaQWindow is the hash-width divergence window beyond which a
	// conditioned delta entry is promoted to a first-class formula with
	// its own sessions (default 3; negative promotes every non-easy
	// delta).
	DeltaQWindow int

	// Overload safety (zero values keep the permissive behavior: no
	// gate, no queue, no quotas, no deadlines).

	// MaxInFlight caps concurrently admitted requests (0 = unlimited).
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for a free slot once
	// MaxInFlight are busy; everything beyond is shed immediately.
	MaxQueue int
	// QueueWait caps how long a queued request waits before being shed
	// (default 2s when MaxInFlight > 0).
	QueueWait time.Duration
	// TenantQuota caps in-flight requests per tenant (0 = unlimited).
	TenantQuota int
	// DefaultTimeout is the server-side deadline applied to every
	// request (0 = none); at the deadline in-flight SAT search is
	// interrupted and the request fails.
	DefaultTimeout time.Duration
	// PrepareTimeout caps the wall clock of one formula preparation
	// (0 = none).
	PrepareTimeout time.Duration
	// RetryAfter is the Retry-After hint the HTTP transport attaches to
	// shed and draining responses (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps HTTP request bodies (default 64 MiB).
	MaxBodyBytes int64

	// Observability (zero values keep sane defaults: discarded logs, 1s
	// slow-request threshold, 128 retained debug records).

	// Logger receives one structured record per finished request (nil
	// discards them). Slow or failed requests log at Warn with their
	// full span breakdown attached.
	Logger *slog.Logger
	// SlowRequest is the duration past which a request is logged at Warn
	// with its span tree and retained at /debug/requests (0 = 1s,
	// negative = disabled).
	SlowRequest time.Duration
	// DebugRequests bounds the in-memory ring of recent slow/failed
	// requests served at /debug/requests (0 = 128).
	DebugRequests int
}

// Service is the embeddable sampling-as-a-service engine: a
// prepared-formula cache (fingerprint-keyed, single-flight, LRU) in
// front of the parallel sampling engine. Unlike Sampler, which is bound
// to one formula and one goroutine, a Service accepts concurrent
// requests for any mix of formulas; the expensive once-per-formula
// setup (ApproxMC estimation) runs at most once per distinct formula,
// however many requests race for it.
//
// Determinism: for a fixed (formula, seed, n), Sample returns witnesses
// bit-identical to Sampler.SampleN with Workers ≥ 1 and to the HTTP
// transport — whether the formula was cached or cold, and whatever
// worker count executes the rounds.
type Service struct {
	inner *service.Service
}

// NewService validates options and returns an empty service.
func NewService(opts ServiceOptions) (*Service, error) {
	inner, err := service.New(service.Config{
		Epsilon:         opts.Epsilon,
		MaxConflicts:    opts.MaxConflicts,
		MaxPropagations: opts.MaxPropagations,
		GaussJordan:     opts.GaussJordan,
		ApproxMCRounds:  opts.ApproxMCRounds,
		Workers:         opts.Workers,
		CacheSize:       opts.CacheSize,
		StoreDir:        opts.StoreDir,
		StoreMaxBytes:   opts.StoreMaxBytes,
		SessionPool:     opts.SessionPool,
		DeltaQWindow:    opts.DeltaQWindow,
		MaxInFlight:     opts.MaxInFlight,
		MaxQueue:        opts.MaxQueue,
		QueueWait:       opts.QueueWait,
		TenantQuota:     opts.TenantQuota,
		DefaultTimeout:  opts.DefaultTimeout,
		PrepareTimeout:  opts.PrepareTimeout,
		RetryAfter:      opts.RetryAfter,
		MaxBodyBytes:    opts.MaxBodyBytes,
		Logger:          opts.Logger,
		SlowRequest:     opts.SlowRequest,
		DebugRequests:   opts.DebugRequests,
	})
	if err != nil {
		return nil, err
	}
	return &Service{inner: inner}, nil
}

// Sample draws n almost-uniform witnesses of f with the given seed,
// preparing (or reusing the cached preparation of) the formula as
// needed. Safe for concurrent use. Cancelling ctx interrupts in-flight
// SAT search promptly.
func (s *Service) Sample(ctx context.Context, f *Formula, seed uint64, n int) ([]Witness, error) {
	res, err := s.inner.Sample(ctx, service.SampleRequest{Formula: f, N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	out := make([]Witness, len(res.Witnesses))
	for i, a := range res.Witnesses {
		out[i] = Witness{a: a}
	}
	return out, nil
}

// SampleDelta draws n almost-uniform witnesses of base ∧ assumptions,
// where base is the fingerprint (FormulaFingerprint) of a formula this
// service has already prepared and assumptions are signed DIMACS
// literals conjoined as unit clauses. The conditioned formula is
// prepared on pooled warm sessions over the base — no DIMACS re-parse,
// no solver rebuild — and the witnesses are bit-identical to Sample on
// the conjoined formula with the same seed. An unknown base fails with
// an error the HTTP transport maps to 404; empty assumptions sample
// the base itself by fingerprint.
func (s *Service) SampleDelta(ctx context.Context, base string, assumptions []int, seed uint64, n int) ([]Witness, error) {
	res, err := s.inner.Sample(ctx, service.SampleRequest{Base: base, Assumptions: assumptions, N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	out := make([]Witness, len(res.Witnesses))
	for i, a := range res.Witnesses {
		out[i] = Witness{a: a}
	}
	return out, nil
}

// CountDelta returns the prepared witness count of base ∧ assumptions
// (see SampleDelta for the delta request contract); the boolean is the
// exactness flag of Count.
func (s *Service) CountDelta(ctx context.Context, base string, assumptions []int) (*big.Int, bool, error) {
	res, err := s.inner.Count(ctx, service.CountRequest{Base: base, Assumptions: assumptions})
	if err != nil {
		return nil, false, err
	}
	return res.Count, res.Exact, nil
}

// Count returns the prepared witness count of f projected onto its
// sampling set: exact (second return true) when the solution space was
// small enough to enumerate at preparation time, otherwise the ApproxMC
// estimate of Algorithm 1 line 9. A cache hit answers without any
// solver work.
func (s *Service) Count(ctx context.Context, f *Formula) (*big.Int, bool, error) {
	res, err := s.inner.Count(ctx, service.CountRequest{Formula: f})
	if err != nil {
		return nil, false, err
	}
	return res.Count, res.Exact, nil
}

// Handler returns the HTTP transport of this service (the same routes
// cmd/unigend serves): POST /sample, POST /count, GET /healthz,
// GET /stats, GET /metrics, GET /debug/requests.
func (s *Service) Handler() http.Handler { return service.NewHandler(s.inner) }

// MetricsHandler serves just the Prometheus /metrics exposition —
// for mounting on a separate debug listener alongside pprof.
func (s *Service) MetricsHandler() http.Handler { return service.MetricsHandler(s.inner) }

// Close drains the service: new requests are rejected immediately,
// in-flight requests run to completion, and any still running when ctx
// expires have their SAT searches interrupted and fail with a draining
// error. Returns nil when the drain completed cleanly before the
// deadline, ctx.Err() otherwise.
func (s *Service) Close(ctx context.Context) error { return s.inner.Close(ctx) }

// Health reports the coarse node state the /healthz endpoint serves:
// "ok", "overloaded" (admission queue at least half full — stop
// routing new work here if you can), or "draining" (shutting down).
func (s *Service) Health() string { return string(s.inner.Health()) }

// ServiceStats is a snapshot of the prepared-formula cache, the
// admission gate, and per-outcome request counters.
type ServiceStats struct {
	Hits      int64 // requests that found a cached (or in-flight) preparation
	Misses    int64 // requests that started a preparation
	Evictions int64
	Size      int // formulas currently cached
	Capacity  int
	Formulas  []ServiceFormulaStats // most recently used first

	Store     service.StoreStats     // persistent disk tier (zero when disabled)
	Admission service.AdmissionStats // concurrency gate snapshot
	Outcomes  service.OutcomeStats   // finished requests by outcome
	Solver    service.SolverTotals   // cumulative solver work of finished sampling
	Prepare   service.SolverTotals   // cumulative solver work of preparation flights
	Delta     service.DeltaStats     // delta requests and the session-pool fleet
	State     string                 // "ok" | "overloaded" | "draining"
}

// ServiceFormulaStats are per-formula request counters.
type ServiceFormulaStats struct {
	Fingerprint string
	EasyCase    bool // prepared by exact enumeration, no ApproxMC
	Requests    int64
	Samples     int64
	Counts      int64
	// Delta marks entries prepared from a base under assumptions; Base
	// is the base's fingerprint (empty for promoted diverged deltas).
	Delta bool
	Base  string
}

// Stats snapshots the cache and per-formula counters.
func (s *Service) Stats() ServiceStats {
	st := s.inner.Stats()
	out := ServiceStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Size:      st.Size,
		Capacity:  st.Capacity,
		Store:     st.Store,
		Admission: st.Admission,
		Outcomes:  st.Outcomes,
		Solver:    st.Solver,
		Prepare:   st.Prepare,
		Delta:     st.Delta,
		State:     string(st.State),
	}
	for _, f := range st.Formulas {
		out.Formulas = append(out.Formulas, ServiceFormulaStats{
			Fingerprint: f.Fingerprint,
			EasyCase:    f.EasyCase,
			Requests:    f.Requests,
			Samples:     f.Samples,
			Counts:      f.Counts,
			Delta:       f.Delta,
			Base:        f.Base,
		})
	}
	return out
}
