// Additional ablation and baseline benchmarks beyond the per-table set
// in bench_test.go (experiment E7 of DESIGN.md):
//
//	BenchmarkAblationPriorityBranching – sampling-set-first decisions
//	BenchmarkAblationLeapFrog          – ApproxMC leap-frogging heuristic
//	BenchmarkBaselineBDD               – §3's BDD sampler: fast per
//	                                     sample, but compile time/size
//	                                     blows up with circuit depth
//	BenchmarkBaselineMCMC              – §3's MCMC sampler
//	BenchmarkSimplify                  – preprocessing throughput
package unigen

import (
	"errors"
	"fmt"
	"testing"

	"unigen/internal/baseline"
	"unigen/internal/bdd"
	"unigen/internal/benchgen"
	"unigen/internal/bsat"
	"unigen/internal/counter"
	"unigen/internal/randx"
	"unigen/internal/sat"
	"unigen/internal/simplify"
)

// BenchmarkAblationPriorityBranching measures witness enumeration with
// and without sampling-set-first decision ordering — the solver-level
// trick that makes Tseitin-instance enumeration nearly conflict-free.
func BenchmarkAblationPriorityBranching(b *testing.B) {
	inst, err := benchgen.Generate("EnqueueSeqSK", benchgen.ScaleSmall, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, prio := range []bool{true, false} {
		b.Run(fmt.Sprintf("priority=%v", prio), func(b *testing.B) {
			cfg := benchSolverCfg()
			if !prio {
				// Defeat bsat's automatic prioritization by passing the
				// full variable list.
				all := make([]Var, inst.F.NumVars)
				for i := range all {
					all[i] = Var(i + 1)
				}
				cfg.PriorityVars = all
			}
			for i := 0; i < b.N; i++ {
				res := bsat.Enumerate(inst.F, 87, bsat.Options{Solver: cfg})
				if len(res.Witnesses) != 87 && !res.BudgetExceeded {
					b.Fatalf("got %d witnesses", len(res.Witnesses))
				}
			}
		})
	}
}

// BenchmarkAblationLeapFrog measures the ApproxMC heuristic the paper
// disables (total XOR rows reported as the machine-independent work
// metric).
func BenchmarkAblationLeapFrog(b *testing.B) {
	f := NewFormula(16)
	f.SamplingSet = []Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	for _, lf := range []bool{false, true} {
		b.Run(fmt.Sprintf("leapfrog=%v", lf), func(b *testing.B) {
			totalRows := 0
			for i := 0; i < b.N; i++ {
				rng := randx.New(uint64(i))
				res, err := counter.ApproxMC(f, rng, counter.ApproxMCOptions{
					Epsilon: 0.8, Delta: 0.2, MaxHashRounds: 8, LeapFrog: lf,
				})
				if err != nil {
					b.Fatal(err)
				}
				totalRows += res.TotalXORRows
			}
			b.ReportMetric(float64(totalRows)/float64(b.N), "xorrows")
		})
	}
}

// BenchmarkBaselineBDD compiles benchmark instances to BDDs and samples
// from them: exactly uniform and very fast per sample, but compile cost
// and node count grow steeply with |X| — §3's scalability critique.
func BenchmarkBaselineBDD(b *testing.B) {
	const nodeLimit = 2_000_000 // the blow-up IS the result: cap and report
	for _, name := range []string{"case110", "s526_3_2"} {
		inst, err := benchgen.Generate(name, benchgen.ScaleSmall, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/compile", func(b *testing.B) {
			nodes := 0
			for i := 0; i < b.N; i++ {
				bb := bdd.NewBuilder(inst.F.NumVars, nodeLimit)
				if _, err := bb.CompileCNF(inst.F); err != nil {
					b.Skipf("BDD blow-up at %d nodes (the §3 critique): %v", bb.NumNodes(), err)
				}
				nodes = bb.NumNodes()
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
		b.Run(name+"/sample", func(b *testing.B) {
			bb := bdd.NewBuilder(inst.F.NumVars, nodeLimit)
			root, err := bb.CompileCNF(inst.F)
			if err != nil {
				b.Skipf("BDD blow-up: %v", err)
			}
			s, err := bb.NewSampler(root)
			if err != nil {
				b.Fatal(err)
			}
			rng := randx.New(benchSeed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if a := s.Sample(rng); !a.Satisfies(inst.F) {
					b.Fatal("invalid BDD sample")
				}
			}
		})
	}
}

// BenchmarkBaselineMCMC measures the Markov-chain sampler per (possibly
// failing) chain.
func BenchmarkBaselineMCMC(b *testing.B) {
	inst, err := benchgen.Generate("s526_3_2", benchgen.ScaleSmall, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	m := baseline.NewMCMC(inst.F, baseline.MCMCOptions{Steps: 5 * inst.F.NumVars})
	rng := randx.New(benchSeed)
	ok := 0
	for i := 0; i < b.N; i++ {
		if _, err := m.Sample(rng); err == nil {
			ok++
		} else if !errors.Is(err, baseline.ErrFailed) {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "convergence")
}

// BenchmarkSimplify measures preprocessing on a parity-rich instance.
func BenchmarkSimplify(b *testing.B) {
	inst, err := benchgen.Generate("s526_15_7", benchgen.ScaleSmall, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	// Expand the instance's XORs to CNF first so recovery has work to do.
	plain := inst.F.Clone()
	// (Instances carry native XORs already; simplification still
	// exercises subsumption and unit propagation.)
	for i := 0; i < b.N; i++ {
		if _, err := simplify.Simplify(plain, simplify.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrateGauss measures the Gauss-Jordan preprocessing pass
// in isolation on a random dense XOR system.
func BenchmarkSubstrateGauss(b *testing.B) {
	rng := randx.New(benchSeed)
	f := NewFormula(200)
	for i := 0; i < 150; i++ {
		var vs []Var
		for v := 1; v <= 200; v++ {
			if rng.Bool() {
				vs = append(vs, Var(v))
			}
		}
		f.AddXOR(vs, rng.Bool())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sat.New(f, sat.Config{GaussJordan: true})
		_ = s.Okay()
	}
}
