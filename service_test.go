package unigen_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"unigen"
)

// transportFixture is a hashing-path formula (1024 witnesses over a
// 10-variable sampling set) used for the cross-transport contract.
const transportFixture = "c ind 1 2 3 4 5 6 7 8 9 10 0\np cnf 12 1\n11 12 0\n"

func bitstrings(ws []unigen.Witness, vars []unigen.Var) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		var sb strings.Builder
		for _, b := range w.Bits(vars) {
			if b {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		out[i] = sb.String()
	}
	return out
}

// TestSamplesBitIdenticalAcrossTransports is the tentpole acceptance
// test: for a fixed (formula, seed, n), Sampler.SampleN, the embedded
// Service (cold AND cache-hit, with a different warming seed), and the
// HTTP daemon transport must return bit-identical witness sequences.
func TestSamplesBitIdenticalAcrossTransports(t *testing.T) {
	const (
		seed = uint64(2014)
		n    = 8
	)
	f, err := unigen.ParseDIMACSString(transportFixture)
	if err != nil {
		t.Fatal(err)
	}
	vars := f.SamplingVars()

	// Transport 1: the direct Sampler (worker-pool path).
	s, err := unigen.NewSampler(f, unigen.Options{Epsilon: 6, Seed: seed, ApproxMCRounds: 15, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.SampleN(n)
	if err != nil {
		t.Fatal(err)
	}
	ref := bitstrings(ws, vars)

	// Transport 2: the embedded Service — warmed under a DIFFERENT seed
	// first, so the cache-hit path must serve seed 2014 from a setup it
	// prepared for seed 77's request.
	svc, err := unigen.NewService(unigen.ServiceOptions{Epsilon: 6, ApproxMCRounds: 15, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Sample(context.Background(), f, 77, 2); err != nil {
		t.Fatal(err)
	}
	got, err := svc.Sample(context.Background(), f, seed, n)
	if err != nil {
		t.Fatal(err)
	}
	if hot := bitstrings(got, vars); !reflect.DeepEqual(hot, ref) {
		t.Fatalf("Service samples diverged from Sampler:\n service: %v\n sampler: %v", hot, ref)
	}

	// Transport 3: HTTP, against a fresh service (cold path) and then
	// the same daemon again (hit path).
	ts := httptest.NewServer(mustService(t).Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		body, _ := json.Marshal(map[string]any{"formula": transportFixture, "n": n, "seed": seed})
		resp, err := http.Post(ts.URL+"/sample", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Vars      []int    `json:"vars"`
			Witnesses []string `json:"witnesses"`
			CacheHit  bool     `json:"cache_hit"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP status %d", resp.StatusCode)
		}
		if out.CacheHit != (i == 1) {
			t.Fatalf("request %d: cache_hit=%v", i, out.CacheHit)
		}
		if !reflect.DeepEqual(out.Witnesses, ref) {
			t.Fatalf("HTTP samples (pass %d) diverged from Sampler:\n http:    %v\n sampler: %v", i, out.Witnesses, ref)
		}
	}

	// Transport 4: warm restart through the persistent store. A first
	// service lifetime prepares under a different seed and drains its
	// write-behind queue; a second lifetime on the same directory must
	// rehydrate from disk (no RAM hit, one store hit) and still serve
	// seed 2014 bit-identically.
	dir := t.TempDir()
	warm, err := unigen.NewService(unigen.ServiceOptions{Epsilon: 6, ApproxMCRounds: 15, Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Sample(context.Background(), f, 77, 2); err != nil {
		t.Fatal(err)
	}
	if err := warm.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	restarted, err := unigen.NewService(unigen.ServiceOptions{Epsilon: 6, ApproxMCRounds: 15, Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rws, err := restarted.Sample(context.Background(), f, seed, n)
	if err != nil {
		t.Fatal(err)
	}
	if got := bitstrings(rws, vars); !reflect.DeepEqual(got, ref) {
		t.Fatalf("warm-restart samples diverged from Sampler:\n restart: %v\n sampler: %v", got, ref)
	}
	if st := restarted.Stats(); st.Store.Hits != 1 || st.Hits != 0 {
		t.Fatalf("restart stats: store hits %d / RAM hits %d, want 1 / 0", st.Store.Hits, st.Hits)
	}
	if err := restarted.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The multiset must also be worker-count independent end to end.
	s4, err := unigen.NewSampler(f, unigen.Options{Epsilon: 6, Seed: seed, ApproxMCRounds: 15, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ws4, err := s4.SampleN(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := bitstrings(ws4, vars); !reflect.DeepEqual(got, ref) {
		t.Fatalf("Workers=4 sampler diverged from Workers=2: %v vs %v", got, ref)
	}
}

func mustService(t *testing.T) *unigen.Service {
	t.Helper()
	svc, err := unigen.NewService(unigen.ServiceOptions{Epsilon: 6, ApproxMCRounds: 15, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestServiceFacade exercises the embedded facade end to end: counts,
// fingerprints, and cache stats.
func TestServiceFacade(t *testing.T) {
	svc := mustService(t)
	f, err := unigen.ParseDIMACSString("p cnf 2 1\n1 2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	c, exact, err := svc.Count(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if !exact || c.Int64() != 3 {
		t.Fatalf("count %v exact=%v, want exactly 3", c, exact)
	}
	ws, err := svc.Sample(context.Background(), f, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if !w.Satisfies(f) {
			t.Fatal("service returned a non-witness")
		}
	}
	st := svc.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Size != 1 {
		t.Fatalf("stats %+v, want 1 miss / 1 hit / size 1", st)
	}
	if len(st.Formulas) != 1 {
		t.Fatalf("%d formulas in stats", len(st.Formulas))
	}
	fs := st.Formulas[0]
	if fs.Fingerprint != unigen.FormulaFingerprint(f) || !fs.EasyCase {
		t.Fatalf("formula stats %+v", fs)
	}
	if fs.Requests != 2 || fs.Samples != 10 || fs.Counts != 1 {
		t.Fatalf("counters %+v", fs)
	}
}
