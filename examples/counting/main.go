// Command counting contrasts the three model-counting modes the library
// offers — exact #SAT (component-caching DPLL), exact projected counting
// (bounded enumeration), and ApproxMC approximate counting — on the same
// formula, illustrating where each is the right tool.
package main

import (
	"fmt"
	"log"

	"unigen"
)

func main() {
	// A formula with a big gap between the full count and the projected
	// count: 6 "control" bits (sampling set) select behaviour, 18 aux
	// bits are partially constrained.
	f := unigen.NewFormula(24)
	// Controls 1..6 free; aux 7..24 in chains: aux_i ∨ aux_{i+1}.
	for v := 7; v < 24; v++ {
		f.AddClause(v, v+1)
	}
	f.SamplingSet = []unigen.Var{1, 2, 3, 4, 5, 6}

	exact, err := unigen.ExactCount(f)
	if err != nil {
		log.Fatalf("exact: %v", err)
	}
	fmt.Printf("exact #SAT over all 24 vars:        %v\n", exact)

	proj, err := unigen.ExactProjectedCount(f, 1000)
	if err != nil {
		log.Fatalf("projected: %v", err)
	}
	fmt.Printf("exact count projected on controls:  %v (= 2^6)\n", proj)

	approx, err := unigen.ApproxCount(f, 0.8, 0.2, unigen.Options{Seed: 5})
	if err != nil {
		log.Fatalf("approx: %v", err)
	}
	fmt.Printf("ApproxMC(ε=0.8, δ=0.2) on controls: %v (within 1.8x of %v)\n", approx, proj)
}
