// Command smtsampling samples almost-uniformly from word-level (SMT
// bit-vector) constraints — the future-work direction named in the
// DAC'14 conclusion — by bit-blasting them with the bit-vector
// variables as the sampling set.
//
// The constraint models a DMA descriptor: base + len must not wrap,
// must stay inside a 4 KiB window, len is a nonzero multiple of 4, and
// base is word-aligned.
package main

import (
	"fmt"
	"log"

	"unigen"
)

func main() {
	c := unigen.NewBVContext()
	base := c.Var("base", 12) // offsets within a 4 KiB window
	length := c.Var("len", 12)

	end := c.Add(base, length)

	c.Assert(c.Ule(base, end)) // no wraparound within the window

	// len != 0, len % 4 == 0, base % 4 == 0.
	c.Assert(c.BoolNot(c.Eq(length, c.Const(0, 12))))
	c.Assert(c.Eq(c.And(length, c.Const(3, 12)), c.Const(0, 12)))
	c.Assert(c.Eq(c.And(base, c.Const(3, 12)), c.Const(0, 12)))

	bl, err := unigen.BlastBV(c)
	if err != nil {
		log.Fatalf("blast: %v", err)
	}
	fmt.Printf("blasted: %d CNF vars, %d clauses, sampling set %d bits\n",
		bl.Formula.NumVars, len(bl.Formula.Clauses), len(bl.Formula.SamplingSet))

	s, err := unigen.NewSampler(bl.Formula, unigen.Options{Epsilon: 6, Seed: 3})
	if err != nil {
		log.Fatalf("sampler: %v", err)
	}
	fmt.Println("almost-uniform DMA descriptors (base, len):")
	ws, err := s.SampleN(10)
	if err != nil {
		log.Fatalf("sample: %v", err)
	}
	for _, w := range ws {
		b, err := unigen.BVValue(bl, "base", w)
		if err != nil {
			log.Fatal(err)
		}
		l, err := unigen.BVValue(bl, "len", w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  base=0x%03x len=%4d end=0x%03x\n", b, l, b+l)
	}
	fmt.Printf("stats: %+v\n", s.Stats())
}
