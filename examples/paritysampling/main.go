// Command paritysampling exercises the library on a parity-constrained
// instance of the kind the DAC'14 evaluation builds from ISCAS89
// circuits: a block of free variables with several XOR (parity)
// conditions layered on top. It shows (a) native XOR clauses end to
// end, (b) the Gauss–Jordan solver option, and (c) that the sampled
// distribution is statistically flat across the surviving solution
// space.
package main

import (
	"fmt"
	"log"
	"math"

	"unigen"
)

func main() {
	const n = 12
	f := unigen.NewFormula(n)
	// Three parity conditions over random-ish subsets: cuts 2^12 → 2^9.
	f.AddXOR([]unigen.Var{1, 3, 5, 7, 9, 11}, true)
	f.AddXOR([]unigen.Var{2, 4, 6, 8}, false)
	f.AddXOR([]unigen.Var{1, 2, 3, 4, 10, 12}, true)

	count, err := unigen.ExactProjectedCount(f, 1<<13)
	if err != nil {
		log.Fatalf("count: %v", err)
	}
	fmt.Printf("solution space: %v witnesses (expected 2^9 = 512)\n", count)

	s, err := unigen.NewSampler(f, unigen.Options{
		Epsilon:     6,
		Seed:        11,
		GaussJordan: true, // XOR-system preprocessing in the CDCL solver
	})
	if err != nil {
		log.Fatalf("sampler: %v", err)
	}

	const samples = 4096
	counts := map[string]int{}
	ws, err := s.SampleN(samples)
	if err != nil {
		log.Fatalf("sample: %v", err)
	}
	vars := f.SamplingVars()
	for _, w := range ws {
		key := ""
		for _, b := range w.Bits(vars) {
			if b {
				key += "1"
			} else {
				key += "0"
			}
		}
		counts[key]++
	}

	// Report the empirical spread versus a perfect uniform sampler.
	mean := float64(samples) / 512
	varSum := 0.0
	for _, c := range counts {
		d := float64(c) - mean
		varSum += d * d
	}
	varSum += float64(512-len(counts)) * mean * mean
	std := math.Sqrt(varSum / 512)
	fmt.Printf("distinct witnesses seen: %d / 512\n", len(counts))
	fmt.Printf("occurrences: mean %.2f, std %.2f (binomial noise alone: %.2f)\n",
		mean, std, math.Sqrt(mean*(1-1.0/512)))
	fmt.Printf("sampler stats: %+v\n", s.Stats())
}
