// Command crv demonstrates the paper's motivating application:
// constrained-random verification (§1). A verification engineer
// declaratively constrains the fields of a bus transaction; UniGen then
// generates stimulus vectors that are provably close to uniform over
// the legal space — so no corner of the constrained behaviour space is
// systematically starved.
//
// The transaction format (20 input bits = the sampling set):
//
//	addr   [8]  target address
//	len    [4]  burst length
//	kind   [2]  00=READ 01=WRITE 10=FLUSH (11 illegal)
//	tag    [4]  transaction tag
//	parity [2]  ECC bits: parity[0] = ⊕addr, parity[1] = ⊕len
//
// Constraints:
//
//	C1. kind ≠ 11
//	C2. WRITE bursts are long: kind=01 → len ≥ 8 (len[3]=1)
//	C3. FLUSH targets the control page: kind=10 → addr[7:4] = 0xF
//	C4. ECC bits are consistent (XOR constraints)
//	C5. tag 0 is reserved: tag ≠ 0
//
// Auxiliary variables introduced while encoding are dependent on the
// fields, so the fields alone form the independent support.
package main

import (
	"fmt"
	"log"

	"unigen"
)

// field allocates w fresh variables.
func field(next *int, w int) []unigen.Var {
	out := make([]unigen.Var, w)
	for i := range out {
		out[i] = unigen.Var(*next)
		*next++
	}
	return out
}

func main() {
	next := 1
	addr := field(&next, 8)
	length := field(&next, 4)
	kind := field(&next, 2) // kind[0] = low bit
	tag := field(&next, 4)
	parity := field(&next, 2)

	f := unigen.NewFormula(next - 1)

	// C1: ¬(kind[1] ∧ kind[0])
	f.AddClause(-int(kind[1]), -int(kind[0]))

	// C2: kind=01 → len[3].  (kind[1]=0 ∧ kind[0]=1) → len[3]
	f.AddClause(int(kind[1]), -int(kind[0]), int(length[3]))

	// C3: kind=10 → addr[7:4] all 1.
	for i := 4; i < 8; i++ {
		f.AddClause(-int(kind[1]), int(kind[0]), int(addr[i]))
	}

	// C4: ECC parity via native XOR clauses:
	// parity[0] ⊕ addr[0..7] = 0 and parity[1] ⊕ len[0..3] = 0.
	f.AddXOR(append([]unigen.Var{parity[0]}, addr...), false)
	f.AddXOR(append([]unigen.Var{parity[1]}, length...), false)

	// C5: tag ≠ 0.
	f.AddClause(int(tag[0]), int(tag[1]), int(tag[2]), int(tag[3]))

	// The sampling set: all transaction fields except the ECC bits,
	// which are dependent (uniquely determined by addr and len).
	f.SamplingSet = nil
	f.SamplingSet = append(f.SamplingSet, addr...)
	f.SamplingSet = append(f.SamplingSet, length...)
	f.SamplingSet = append(f.SamplingSet, kind...)
	f.SamplingSet = append(f.SamplingSet, tag...)

	s, err := unigen.NewSampler(f, unigen.Options{Epsilon: 6, Seed: 7})
	if err != nil {
		log.Fatalf("sampler: %v", err)
	}

	dec := func(w unigen.Witness, bits []unigen.Var) int {
		v := 0
		for i, b := range bits {
			if w.Get(b) {
				v |= 1 << i
			}
		}
		return v
	}
	kinds := map[int]string{0: "READ ", 1: "WRITE", 2: "FLUSH"}

	fmt.Println("constrained-random bus transactions:")
	counts := map[int]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		w, err := s.Sample()
		if err == unigen.ErrFailed {
			continue
		}
		if err != nil {
			log.Fatalf("sample: %v", err)
		}
		k := dec(w, kind)
		counts[k]++
		if i < 8 {
			fmt.Printf("  %s addr=0x%02x len=%2d tag=%x parity=%d%d\n",
				kinds[k], dec(w, addr), dec(w, length), dec(w, tag),
				dec(w, parity[:1]), dec(w, parity[1:]))
		}
	}
	fmt.Printf("\nkind mix over %d stimuli (READ legal space is largest):\n", n)
	for k := 0; k <= 2; k++ {
		fmt.Printf("  %s %5d (%.1f%%)\n", kinds[k], counts[k], 100*float64(counts[k])/float64(n))
	}
	fmt.Printf("\nsampler stats: %+v\n", s.Stats())
}
