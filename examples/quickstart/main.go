// Command quickstart shows the smallest useful UniGen workflow: parse a
// DIMACS CNF with a declared sampling set, build a sampler, and draw
// almost-uniform witnesses.
package main

import (
	"fmt"
	"log"

	"unigen"
)

// A toy constraint set: x1 ∨ x2 must hold, x3 ⊕ x4 = 1, and x5 is free.
// The "c ind" line declares the sampling set.
const dimacs = `c ind 1 2 3 4 5 0
p cnf 5 1
1 2 0
x3 4 0
`

func main() {
	f, err := unigen.ParseDIMACSString(dimacs)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	s, err := unigen.NewSampler(f, unigen.Options{
		Epsilon: 6, // the paper's experimental setting
		Seed:    42,
		Workers: 2, // pool of 2 solver sessions; samples depend on Seed only
	})
	if err != nil {
		log.Fatalf("sampler: %v", err)
	}

	fmt.Println("10 almost-uniform witnesses (x1..x5):")
	ws, err := s.SampleN(10)
	if err != nil {
		log.Fatalf("sample: %v", err)
	}
	for i, w := range ws {
		fmt.Printf("  #%d:", i+1)
		for _, b := range w.Bits(f.SamplingVars()) {
			if b {
				fmt.Print(" 1")
			} else {
				fmt.Print(" 0")
			}
		}
		fmt.Println()
	}

	st := s.Stats()
	fmt.Printf("success probability: %.2f, avg XOR length: %.1f, easy case: %v\n",
		st.SuccProb, st.AvgXORLen, st.EasyCase)
}
