package unigen

import (
	"unigen/internal/indsupport"
	"unigen/internal/sat"
	"unigen/internal/simplify"
)

// SimplifyOptions configures CNF preprocessing.
type SimplifyOptions struct {
	// BVE enables bounded variable elimination of variables outside the
	// sampling set (satisfiability- and projection-preserving).
	BVE bool
	// NoXORRecovery disables the detection of CNF-encoded parity
	// constraints and their conversion to native XOR clauses.
	NoXORRecovery bool
}

// SimplifyStats reports what the preprocessor did.
type SimplifyStats struct {
	UnitsFixed     int
	Subsumed       int
	SelfSubsumed   int
	VarsEliminated int
	XORsRecovered  int
}

// Simplify preprocesses a formula (top-level unit propagation,
// subsumption, self-subsuming resolution, XOR recovery, and optionally
// bounded variable elimination) and returns the simplified copy. The
// input formula is not modified. Sampling over the simplified formula
// is equivalent to sampling over the original, projected on the
// sampling set.
func Simplify(f *Formula, opts SimplifyOptions) (*Formula, SimplifyStats, error) {
	res, err := simplify.Simplify(f, simplify.Options{
		BVE:           opts.BVE,
		NoXORRecovery: opts.NoXORRecovery,
	})
	if err != nil {
		return nil, SimplifyStats{}, err
	}
	return res.F, SimplifyStats{
		UnitsFixed:     res.UnitsFixed,
		Subsumed:       res.Subsumed,
		SelfSubsumed:   res.SelfSubsumed,
		VarsEliminated: res.VarsEliminated,
		XORsRecovered:  res.XORsRecovered,
	}, nil
}

// IsIndependentSupport reports whether s is an independent support of
// f: whether the values of s determine the values of every other
// variable in all witnesses. Theorem 1's guarantee is conditional on
// the sampling set having this property.
func IsIndependentSupport(f *Formula, s []Var, opts Options) (bool, error) {
	return indsupport.IsIndependent(f, s, solverConfig(opts))
}

// MinimizeIndependentSupport greedily shrinks a known independent
// support to a minimal one (no single variable can be removed).
func MinimizeIndependentSupport(f *Formula, start []Var, opts Options) ([]Var, error) {
	return indsupport.Minimize(f, start, solverConfig(opts))
}

// FindIndependentSupport computes a minimal independent support
// starting from all variables — the "algorithmic solution" the paper
// leaves out of scope (§4) and that later work supplies.
func FindIndependentSupport(f *Formula, opts Options) ([]Var, error) {
	return indsupport.Find(f, solverConfig(opts))
}

func solverConfig(opts Options) sat.Config {
	return sat.Config{
		MaxConflicts: opts.MaxConflicts,
		GaussJordan:  opts.GaussJordan,
		Seed:         opts.Seed,
	}
}
