// Benchmarks regenerating every table and figure of the DAC'14 paper
// (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTable1/*        – E1: per-witness cost, UniGen vs UniWit
//	BenchmarkTable2Extra/*   – E2: the additional Table 2 rows
//	BenchmarkFigure1/*       – E3: UniGen vs US per-sample cost on case110
//	BenchmarkEpsilonSweep/*  – E5: ε knob (hiThresh ⇒ BSAT work)
//	BenchmarkAblation*       – E7: design-choice ablations
//	BenchmarkSubstrate*      – substrate micro-benchmarks
//
// Shapes to compare with the paper (absolute numbers are machine- and
// scale-dependent): UniGen beats UniWit by orders of magnitude on
// small-support/large-|X| instances; UniGen XOR length ≈ |S|/2 vs
// UniWit's ≈ |X|/2; US and UniGen costs on case110 differ by the BSAT
// overhead only.
package unigen

import (
	"errors"
	"fmt"
	"testing"

	"unigen/internal/baseline"
	"unigen/internal/benchgen"
	"unigen/internal/core"
	"unigen/internal/counter"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

const benchSeed = 0xbe7c

func benchSolverCfg() sat.Config {
	// Budgets mirror the experiment harness defaults; without the
	// propagation bound, the no-priority-branching ablation can spend
	// minutes per enumeration call.
	return sat.Config{MaxConflicts: 200000, MaxPropagations: 5_000_000, Seed: benchSeed}
}

// benchUniGen measures one UniGen sample (setup amortized outside the
// timed loop, as in the paper's per-witness averages).
func benchUniGen(b *testing.B, inst *benchgen.Instance) {
	rng := randx.New(benchSeed)
	smp, err := core.NewSampler(inst.F, rng, core.Options{
		Epsilon: 6, Solver: benchSolverCfg(), ApproxMCRounds: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smp.Sample(rng); err != nil && !errors.Is(err, core.ErrFailed) {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := smp.Stats()
	b.ReportMetric(st.AvgXORLen(), "xorlen")
	b.ReportMetric(st.SuccessProb(), "succ")
}

// benchUniWit measures one UniWit sample (nothing to amortize — the
// whole m search repeats per sample, which is the point of Table 1).
// Budget exhaustion is the paper's "−" outcome: recorded via the
// budgetout metric, not a bench failure.
func benchUniWit(b *testing.B, inst *benchgen.Instance) {
	uw := baseline.NewUniWit(inst.F, baseline.UniWitOptions{Solver: benchSolverCfg()})
	rng := randx.New(benchSeed + 1)
	budgetOuts := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := uw.Sample(rng)
		if err != nil && !errors.Is(err, baseline.ErrFailed) {
			if baseline.ErrBudget(err) {
				budgetOuts++
				continue
			}
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := uw.Stats()
	b.ReportMetric(st.AvgXORLen(), "xorlen")
	b.ReportMetric(st.SuccessProb(), "succ")
	b.ReportMetric(float64(budgetOuts)/float64(b.N), "budgetout")
}

func benchTableRows(b *testing.B, names []string) {
	for _, name := range names {
		inst, err := benchgen.Generate(name, benchgen.ScaleSmall, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/UniGen", func(b *testing.B) { benchUniGen(b, inst) })
		b.Run(name+"/UniWit", func(b *testing.B) { benchUniWit(b, inst) })
	}
}

// BenchmarkTable1 regenerates the 12 rows of Table 1 (E1).
func BenchmarkTable1(b *testing.B) {
	var names []string
	for _, sp := range benchgen.TableRows(1) {
		names = append(names, sp.Name)
	}
	benchTableRows(b, names)
}

// BenchmarkTable2Extra regenerates the rows Table 2 adds beyond
// Table 1 (E2).
func BenchmarkTable2Extra(b *testing.B) {
	inT1 := map[string]bool{}
	for _, sp := range benchgen.TableRows(1) {
		inT1[sp.Name] = true
	}
	var names []string
	for _, sp := range benchgen.TableRows(2) {
		if !inT1[sp.Name] {
			names = append(names, sp.Name)
		}
	}
	benchTableRows(b, names)
}

// BenchmarkFigure1 measures the two samplers of Figure 1 (E3) on the
// case110 instance: UniGen vs the ideal uniform sampler US.
func BenchmarkFigure1(b *testing.B) {
	inst, err := benchgen.Generate("case110", benchgen.ScaleSmall, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("UniGen", func(b *testing.B) { benchUniGen(b, inst) })
	b.Run("US", func(b *testing.B) {
		us, err := baseline.NewUS(inst.F, 1<<16, benchSolverCfg())
		if err != nil {
			b.Fatal(err)
		}
		rng := randx.New(benchSeed)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			us.Sample(rng)
		}
	})
}

// BenchmarkEpsilonSweep regenerates E5: smaller ε ⇒ larger hiThresh ⇒
// costlier BSAT calls (§4 "Trading scalability with uniformity").
func BenchmarkEpsilonSweep(b *testing.B) {
	inst, err := benchgen.Generate("case110", benchgen.ScaleSmall, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, eps := range []float64{3, 6, 12} {
		b.Run(fmt.Sprintf("eps%.0f", eps), func(b *testing.B) {
			rng := randx.New(benchSeed)
			kp, err := core.ComputeKappaPivot(eps)
			if err != nil {
				b.Fatal(err)
			}
			smp, err := core.NewSampler(inst.F, rng, core.Options{
				Epsilon: eps, Solver: benchSolverCfg(), ApproxMCRounds: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(kp.HiThresh), "hiThresh")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := smp.Sample(rng); err != nil && !errors.Is(err, core.ErrFailed) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSamplingSet isolates the paper's key design choice
// (E7): hashing over the independent support S versus over the full
// support X, on the same instance. The full-support variant is UniGen
// with SamplingSet forced to all variables.
func BenchmarkAblationSamplingSet(b *testing.B) {
	inst, err := benchgen.Generate("LLReverse", benchgen.ScaleSmall, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	full := make([]Var, inst.F.NumVars)
	for i := range full {
		full[i] = Var(i + 1)
	}
	for _, tc := range []struct {
		name string
		set  []Var
	}{
		{"SupportS", nil}, // formula's own sampling set
		{"FullX", full},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := randx.New(benchSeed)
			smp, err := core.NewSampler(inst.F, rng, core.Options{
				Epsilon: 6, SamplingSet: tc.set,
				Solver: benchSolverCfg(), ApproxMCRounds: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := smp.Sample(rng); err != nil && !errors.Is(err, core.ErrFailed) {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(smp.Stats().AvgXORLen(), "xorlen")
		})
	}
}

// BenchmarkAblationAmortization isolates UniGen's once-per-formula
// setup (E7): sampling with amortized state versus paying setup on
// every sample (UniWit's regime).
func BenchmarkAblationAmortization(b *testing.B) {
	inst, err := benchgen.Generate("s526_3_2", benchgen.ScaleSmall, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Amortized", func(b *testing.B) { benchUniGen(b, inst) })
	b.Run("SetupPerSample", func(b *testing.B) {
		rng := randx.New(benchSeed)
		for i := 0; i < b.N; i++ {
			smp, err := core.NewSampler(inst.F, rng, core.Options{
				Epsilon: 6, Solver: benchSolverCfg(), ApproxMCRounds: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := smp.Sample(rng); err != nil && !errors.Is(err, core.ErrFailed) {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGaussJordan measures the solver's XOR preprocessing
// on a parity-heavy instance (E7).
func BenchmarkAblationGaussJordan(b *testing.B) {
	inst, err := benchgen.Generate("s526_15_7", benchgen.ScaleSmall, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, gauss := range []bool{false, true} {
		b.Run(fmt.Sprintf("gauss=%v", gauss), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchSolverCfg()
				cfg.GaussJordan = gauss
				s := sat.New(inst.F, cfg)
				if s.Solve() != sat.Sat {
					b.Fatal("instance must be SAT")
				}
			}
		})
	}
}

// BenchmarkSubstrateSolver measures raw CDCL throughput on a random
// 3-SAT instance near the phase transition.
func BenchmarkSubstrateSolver(b *testing.B) {
	rng := randx.New(benchSeed)
	f := NewFormula(120)
	for i := 0; i < 500; i++ {
		c := make([]int, 3)
		for j := range c {
			v := rng.Intn(120) + 1
			if rng.Bool() {
				v = -v
			}
			c[j] = v
		}
		f.AddClause(c...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sat.New(f, sat.Config{Seed: uint64(i)})
		s.Solve()
	}
}

// BenchmarkSubstrateApproxMC measures the setup-phase counter on a
// mid-size witness space.
func BenchmarkSubstrateApproxMC(b *testing.B) {
	f := NewFormula(14)
	f.AddClause(13, 14)
	f.SamplingSet = []Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	for i := 0; i < b.N; i++ {
		rng := randx.New(uint64(i))
		if _, err := counter.ApproxMC(f, rng, counter.ApproxMCOptions{
			Epsilon: 0.8, Delta: 0.2, MaxHashRounds: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrateSharpSAT measures the exact #SAT engine.
func BenchmarkSubstrateSharpSAT(b *testing.B) {
	rng := randx.New(benchSeed)
	f := NewFormula(40)
	for i := 0; i < 60; i++ {
		c := make([]int, 3)
		for j := range c {
			v := rng.Intn(40) + 1
			if rng.Bool() {
				v = -v
			}
			c[j] = v
		}
		f.AddClause(c...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := counter.ExactSharpSAT(f); err != nil {
			b.Fatal(err)
		}
	}
}
