package unigen

import "testing"

func TestSimplifyPublicAPI(t *testing.T) {
	f := NewFormula(3)
	f.AddClause(1, 2, 3)
	f.AddClause(1, -2, -3)
	f.AddClause(-1, 2, -3)
	f.AddClause(-1, -2, 3)
	g, st, err := Simplify(f, SimplifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.XORsRecovered != 1 || len(g.XORs) != 1 {
		t.Fatalf("stats = %+v, xors = %d", st, len(g.XORs))
	}
	// Sampling still works on the simplified formula.
	s, err := NewSampler(g, Options{Epsilon: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if !w.Satisfies(g) || !w.Satisfies(f) {
		t.Fatal("witness invalid after simplification")
	}
}

func TestIndependentSupportPublicAPI(t *testing.T) {
	f := NewFormula(3)
	f.AddXOR([]Var{1, 2, 3}, false) // x3 = x1⊕x2
	ok, err := IsIndependentSupport(f, []Var{1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("{1,2} rejected")
	}
	s, err := FindIndependentSupport(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("minimal support = %v", s)
	}
	m, err := MinimizeIndependentSupport(f, []Var{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("minimized = %v", m)
	}
}

func TestEndToEndPipeline(t *testing.T) {
	// The full downstream workflow: parse → simplify → verify support →
	// sample → count.
	src := `c ind 1 2 3 4 0
p cnf 6 6
1 2 5 0
-5 6 0
x1 2 6 0
3 4 0
-3 4 0
4 0
`
	f, err := ParseDIMACSString(src)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := Simplify(f, SimplifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(g, Options{Epsilon: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.SampleN(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if !w.Satisfies(g) {
			t.Fatal("invalid witness")
		}
	}
}
