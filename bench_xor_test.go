// BenchmarkXORPacked (experiment E10 of DESIGN.md §4) isolates the
// bit-packed XOR engine against the legacy sparse []cnf.Var path on the
// per-cell enumeration pattern UniGen's Sample loop issues thousands of
// times: draw a fresh m-row XOR hash, enumerate up to hiThresh+1
// witnesses on an incremental session, repeat.
//
//	packed/  – dense GF(2) rows: hash drawing 64 coefficient bits per
//	           RNG word, word-scan watch selection, popcount parity
//	           folds, word-copy install through the session column map.
//	legacy/  – the scalar reference (sat.Config.ScalarXOR): per-variable
//	           draw loops, pointer-chasing propagation scans.
//
// Both variants do identical solver work per accepted cell (the
// differential tests in internal/sat and internal/bsat pin the
// semantics), so the ratio isolates the representation. The acceptance
// gauge is packed ≥ 2× faster per BSAT call on at least one Table 1
// instance.
package unigen

import (
	"fmt"
	"strings"
	"testing"

	"unigen/internal/benchgen"
	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
)

func BenchmarkXORPacked(b *testing.B) {
	for _, tc := range []struct {
		name    string
		m       int  // hash bits per cell
		fullSup bool // hash over the full support instead of the sampling set
	}{
		// UniGen regime: short hash rows over the independent support
		// (m in the q−3..q band). XOR work is a minor share of these
		// calls, so the engines land close together.
		{"EnqueueSeqSK", 8, false},
		{"case110", 8, false},
		// UniWit regime (§4's bottleneck): hash rows over the full
		// support, averaging |X|/2 variables, at an m past log₂|R_F| —
		// the empty-cell UNSAT proofs that dominate UniWit's sequential
		// search over m. XOR propagation dominates these calls, so the
		// packed engine's word-parallelism shows up undiluted; this is
		// the E10 acceptance row (packed ≥ 2× on EnqueueSeqSK, Table 1).
		{"EnqueueSeqSK-fullsup", 16, true},
		{"case110-fullsup", 16, true},
	} {
		inst, err := benchgen.Generate(strings.TrimSuffix(tc.name, "-fullsup"), benchgen.ScaleSmall, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		hashVars := inst.F.SamplingVars()
		if tc.fullSup {
			hashVars = make([]cnf.Var, inst.F.NumVars)
			for i := range hashVars {
				hashVars[i] = cnf.Var(i + 1)
			}
		}
		const hiThresh = 88
		for _, variant := range []struct {
			name   string
			scalar bool
		}{
			{"packed", false},
			{"legacy", true},
		} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, variant.name), func(b *testing.B) {
				cfg := benchSolverCfg()
				cfg.ScalarXOR = variant.scalar
				rng := randx.New(benchSeed)
				sess := bsat.NewSession(inst.F, bsat.Options{Solver: cfg})
				var props int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h := hashfam.Draw(rng, hashVars, tc.m)
					res := sess.Enumerate(hiThresh, h)
					if res.BudgetExceeded {
						b.Fatal("budget exceeded")
					}
					props += res.Stats.Propagations
				}
				b.StopTimer()
				b.ReportMetric(float64(props)/float64(b.N), "props/call")
			})
		}
	}
}
