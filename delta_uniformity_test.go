package unigen_test

import (
	"context"
	"math"
	"math/big"
	"testing"

	"unigen"
	"unigen/internal/bdd"
)

// TestDeltaUniformityBattery extends the statistical battery to the
// delta path: witnesses of base ∧ assumptions served through
// Service.SampleDelta on pooled warm sessions must carry the same
// (1+ε) near-uniformity guarantee as a cold prepare of the conjoined
// formula — conditioning must not skew the distribution. The
// conditioned solution space is brute-forced by the same
// solver-independent oracle as TestUniformityBattery and cross-checked
// against a BDD model count (a third independent engine); the delta
// draw is also compared witness-for-witness against a cold service fed
// the conjoined formula at the same seed, the end-to-end form of the
// determinism contract.
//
// The two assumption sets land the conditioned formula in the two
// sampling regimes: "hashed" stays above hiThresh(ε=6) = 64 and runs
// the hash-partition path on the pooled session; "easy" collapses
// below it and is served by the exact-uniform index pick.
func TestDeltaUniformityBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical battery skipped in -short mode (CI runs it explicitly under -race)")
	}
	// Sampling set defaults to all 10 vars, so the projected count the
	// oracle enumerates IS the total model count the BDD computes.
	const baseDIMACS = "p cnf 10 2\n1 2 3 0\n-2 4 -5 0\n"
	cases := []struct {
		name        string
		assumptions []int
		n           int
		seed        uint64
		maxChi      float64 // multiple of (K-1), the chi-square mean under uniformity
		maxTV       float64
		wantK       int // exact conditioned count, verified three ways
		easy        bool
	}{
		{
			// {1, -2} satisfies both clauses; vars 3..10 free → 2^8 = 256
			// conditioned witnesses, above hiThresh → hashing path.
			name:        "hashed",
			assumptions: []int{1, -2},
			n:           2600,
			seed:        41,
			maxChi:      1.6, maxTV: 0.18,
			wantK: 256,
		},
		{
			// Five units leave vars 6..10 free → 32 ≤ 64 witnesses: the
			// easy regime, re-enumerated exactly under the assumptions.
			name:        "easy",
			assumptions: []int{1, -2, 3, -4, 5},
			n:           4000,
			seed:        42,
			maxChi:      1.6, maxTV: 0.10,
			wantK: 32,
			easy:  true,
		},
	}
	ctx := context.Background()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f, err := unigen.ParseDIMACSString(baseDIMACS)
			if err != nil {
				t.Fatal(err)
			}
			vars := f.SamplingVars()

			// Oracle 1: brute-force enumeration of the conjoined formula.
			conj := f.Clone()
			for _, lit := range tc.assumptions {
				conj.AddClause(lit)
			}
			space := enumerateProjections(t, conj)
			K := len(space)
			if K != tc.wantK {
				t.Fatalf("oracle found %d conditioned witnesses, fixture expects %d", K, tc.wantK)
			}

			// Oracle 2: an independent BDD model count must agree exactly.
			bb := bdd.NewBuilder(conj.NumVars, 0)
			root, err := bb.CompileCNF(conj)
			if err != nil {
				t.Fatal(err)
			}
			if bc := bb.Count(root); bc.Cmp(big.NewInt(int64(K))) != 0 {
				t.Fatalf("BDD counts %v conditioned models, brute force found %d", bc, K)
			}

			opts := unigen.ServiceOptions{Epsilon: 6, ApproxMCRounds: 15, Workers: 2}
			svc, err := unigen.NewService(opts)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the base so the fingerprint resolves, then go delta.
			if _, err := svc.Sample(ctx, f, 7, 1); err != nil {
				t.Fatal(err)
			}
			base := unigen.FormulaFingerprint(f)

			// Check 3: the service's conditioned count against the oracles.
			cnt, exact, err := svc.CountDelta(ctx, base, tc.assumptions)
			if err != nil {
				t.Fatal(err)
			}
			if tc.easy {
				if !exact || cnt.Cmp(big.NewInt(int64(K))) != 0 {
					t.Fatalf("easy CountDelta = %v exact=%v, want exactly %d", cnt, exact, K)
				}
			} else {
				// Hashing regime reports the ApproxMC estimate; it must at
				// least be within the paper's tolerance band of the truth.
				lo := new(big.Int).Div(big.NewInt(int64(K)), big.NewInt(8))
				hi := new(big.Int).Mul(big.NewInt(int64(K)), big.NewInt(8))
				if exact || cnt.Cmp(lo) < 0 || cnt.Cmp(hi) > 0 {
					t.Fatalf("hashed CountDelta = %v exact=%v, want estimate within [%v, %v]", cnt, exact, lo, hi)
				}
			}

			ws, err := svc.SampleDelta(ctx, base, tc.assumptions, tc.seed, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			if len(ws) != tc.n {
				t.Fatalf("drew %d samples, want %d", len(ws), tc.n)
			}

			// Differential determinism: a cold service handed the conjoined
			// formula must reproduce the delta draw bit for bit.
			cold, err := unigen.NewService(opts)
			if err != nil {
				t.Fatal(err)
			}
			cws, err := cold.Sample(ctx, conj, tc.seed, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			if len(cws) != len(ws) {
				t.Fatalf("cold conjoined drew %d samples, delta drew %d", len(cws), len(ws))
			}
			for i := range ws {
				if bitkey(ws[i], vars) != bitkey(cws[i], vars) {
					t.Fatalf("witness %d: delta %q, cold conjoined %q", i, bitkey(ws[i], vars), bitkey(cws[i], vars))
				}
			}

			tally := map[string]int{}
			for _, w := range ws {
				key := bitkey(w, vars)
				if !space[key] {
					t.Fatalf("delta sampler returned a non-witness projection %q", key)
				}
				for _, lit := range tc.assumptions {
					v, want := lit, true
					if v < 0 {
						v, want = -v, false
					}
					if (key[v-1] == '1') != want {
						t.Fatalf("witness %q violates assumption %d", key, lit)
					}
				}
				tally[key]++
			}

			// Same statistics as the cold battery: chi-square and total
			// variation against the exact conditioned uniform, plus the
			// per-outcome (1+ε) ceiling of Theorem 1.
			if float64(tc.n)/float64(K) >= 15 && len(tally) != K {
				t.Fatalf("only %d of %d conditioned outcomes observed", len(tally), K)
			}
			expected := float64(tc.n) / float64(K)
			chi2, tv := 0.0, 0.0
			for key := range space {
				d := float64(tally[key]) - expected
				chi2 += d * d / expected
				tv += math.Abs(float64(tally[key])/float64(tc.n) - 1/float64(K))
			}
			tv /= 2
			t.Logf("K=%d n=%d chi2=%.1f (mean %d) tv=%.4f", K, tc.n, chi2, K-1, tv)
			if bound := tc.maxChi * float64(K-1); chi2 > bound {
				t.Fatalf("chi-square %.1f exceeds bound %.1f (K=%d): conditioned samples inconsistent with near-uniformity", chi2, bound, K)
			}
			if tv > tc.maxTV {
				t.Fatalf("total variation %.4f exceeds bound %.4f", tv, tc.maxTV)
			}
			ceil := (1 + 6.0) * expected
			for key, c := range tally {
				if float64(c) > ceil+3*math.Sqrt(ceil) {
					t.Fatalf("outcome %q drawn %d times, (1+ε)-ceiling %.1f", key, c, ceil)
				}
			}

			// The whole battery went through the delta machinery, not a
			// silent fallback to full prepares.
			st := svc.Stats()
			if st.Delta.Served < 2 || st.Delta.UnknownBase != 0 {
				t.Fatalf("delta stats %+v: battery was not served through the delta path", st.Delta)
			}
		})
	}
}
