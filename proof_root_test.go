package unigen

import "testing"

func TestProveUnsat(t *testing.T) {
	f := NewFormula(3)
	f.AddXOR([]Var{1, 2}, true)
	f.AddXOR([]Var{2, 3}, true)
	f.AddXOR([]Var{3, 1}, true)
	unsat, err := ProveUnsat(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !unsat {
		t.Fatal("odd XOR cycle reported SAT")
	}

	g := NewFormula(2)
	g.AddClause(1, 2)
	unsat, err = ProveUnsat(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if unsat {
		t.Fatal("satisfiable formula reported UNSAT")
	}
}
