// BenchmarkIncrementalSession (experiment E8 of DESIGN.md §4) contrasts
// the two BSAT engines on the per-cell enumeration pattern UniGen's
// Sample loop issues thousands of times: conjoin a fresh m-row XOR hash,
// enumerate up to hiThresh+1 witnesses, repeat.
//
//	fresh/    – stateless bsat.Enumerate: sat.New re-ingests the base
//	            CNF on every call and discards all learned clauses.
//	session/  – one bsat.Session: hash rows and blocking clauses come
//	            and go as removable constraints on a single solver.
//
// The interesting number is the ratio: the session path skips the
// per-call O(formula) rebuild and amortizes learned clauses across the
// whole run.
package unigen

import (
	"fmt"
	"testing"

	"unigen/internal/benchgen"
	"unigen/internal/bsat"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
)

func BenchmarkIncrementalSession(b *testing.B) {
	// EnqueueSeqSK is a Table 1 row (sketch family); case110 is the
	// Figure 1 instance. Both have small sampling sets over a much
	// larger Tseitin encoding, the regime the paper targets.
	for _, tc := range []struct {
		name string
		m    int // hash bits per cell, in the q−3..q band for the instance
	}{
		{"EnqueueSeqSK", 8},
		{"case110", 8},
	} {
		inst, err := benchgen.Generate(tc.name, benchgen.ScaleSmall, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		vars := inst.F.SamplingVars()
		const hiThresh = 88
		opts := bsat.Options{Solver: benchSolverCfg()}

		b.Run(fmt.Sprintf("%s/fresh", tc.name), func(b *testing.B) {
			rng := randx.New(benchSeed)
			for i := 0; i < b.N; i++ {
				h := hashfam.Draw(rng, vars, tc.m)
				res := bsat.Enumerate(inst.F, hiThresh, bsat.Options{
					Hash: h, Solver: opts.Solver,
				})
				if res.BudgetExceeded {
					b.Fatal("budget exceeded")
				}
			}
		})
		b.Run(fmt.Sprintf("%s/session", tc.name), func(b *testing.B) {
			rng := randx.New(benchSeed)
			sess := bsat.NewSession(inst.F, opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := hashfam.Draw(rng, vars, tc.m)
				res := sess.Enumerate(hiThresh, h)
				if res.BudgetExceeded {
					b.Fatal("budget exceeded")
				}
			}
		})
	}
}
