// BenchmarkClauseArena (experiment E11 of DESIGN.md §4) gauges the CNF
// clause layer on the patterns UniGen's Sample loop stresses it with.
// Unlike E10 (which isolates the XOR engine), the regimes here are
// CNF-propagation-heavy: blocking-clause enumeration inside accepted
// cells, and a conflict-driven learn loop on a hard random 3-CNF.
//
//	enumerate/    – per-cell bounded enumeration on an incremental
//	                session (EnqueueSeqSK, m=8 hash band): every witness
//	                adds a sampling-set blocking clause, so the call is
//	                dominated by CNF watch traversal and clause install.
//	steady/       – the propagate/analyze/learn steady state: repeated
//	                budgeted Solve calls on an unsatisfiable-feeling
//	                random 3-CNF near the phase transition, no model
//	                extraction. The acceptance gauge for the arena
//	                refactor is allocs/op ≈ 0 here (clause learning and
//	                deletion without per-clause heap allocations).
package unigen

import (
	"testing"

	"unigen/internal/benchgen"
	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

func BenchmarkClauseArena(b *testing.B) {
	b.Run("enumerate/EnqueueSeqSK-m8", func(b *testing.B) {
		inst, err := benchgen.Generate("EnqueueSeqSK", benchgen.ScaleSmall, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		const hiThresh = 88
		rng := randx.New(benchSeed)
		sess := bsat.NewSession(inst.F, bsat.Options{Solver: benchSolverCfg()})
		vars := inst.F.SamplingVars()
		var wit int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := hashfam.Draw(rng, vars, 8)
			res := sess.Enumerate(hiThresh, h)
			if res.BudgetExceeded {
				b.Fatal("budget exceeded")
			}
			wit += int64(len(res.Witnesses))
		}
		b.StopTimer()
		b.ReportMetric(float64(wit)/float64(b.N), "witnesses/call")
	})

	b.Run("steady/random3cnf", func(b *testing.B) {
		// Hard random 3-CNF at clause/var ratio ≈ 4.4: every budgeted
		// Solve call burns its conflict budget in the propagate/learn
		// loop and returns Unknown — no model extraction, no clause
		// installs, just the learning steady state.
		const nv, nc = 300, 1320
		rng := randx.New(benchSeed + 7)
		f := cnf.New(nv)
		for i := 0; i < nc; i++ {
			lits := make([]int, 0, 3)
			for len(lits) < 3 {
				v := 1 + rng.Intn(nv)
				dup := false
				for _, l := range lits {
					if l == v || l == -v {
						dup = true
					}
				}
				if dup {
					continue
				}
				if rng.Bool() {
					v = -v
				}
				lits = append(lits, v)
			}
			f.AddClause(lits...)
		}
		s := sat.New(f, sat.Config{MaxConflicts: 200, Seed: benchSeed})
		if s.Solve() == sat.Sat {
			b.Fatal("instance too easy for the steady-state regime")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s.Solve() == sat.Sat {
				b.Fatal("unexpected SAT")
			}
		}
		b.StopTimer()
		st := s.Stats()
		b.ReportMetric(float64(st.Learned)/float64(b.N), "learnts/op")
	})
}
