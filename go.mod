module unigen

go 1.24
