package unigen

import (
	"errors"
	"fmt"

	"unigen/internal/sat"
)

// ProveUnsat decides f with DRUP-style proof recording and, when the
// verdict is UNSAT, verifies the recorded derivation by reverse unit
// propagation before reporting it. It returns (false, nil) for
// satisfiable formulas, (true, nil) for checked-UNSAT formulas, and an
// error if the budget ran out or — which would indicate a solver bug —
// the proof fails to check.
//
// UniGen's correctness leans on UNSAT answers in two places (cell
// emptiness in the sampling loop, enumeration exhaustion in BSAT and
// ApproxMC); this entry point gives end-users an independently checked
// version of that verdict.
func ProveUnsat(f *Formula, opts Options) (bool, error) {
	cfg := sat.Config{
		MaxConflicts:    opts.MaxConflicts,
		MaxPropagations: opts.MaxPropagations,
		Seed:            opts.Seed,
		RecordProof:     true,
	}
	s := sat.New(f, cfg)
	switch s.Solve() {
	case sat.Sat:
		return false, nil
	case sat.Unsat:
		if err := sat.CheckRUPProof(f, s.Proof()); err != nil {
			return true, fmt.Errorf("unigen: UNSAT verdict failed proof check: %w", err)
		}
		return true, nil
	default:
		return false, errors.New("unigen: solver budget exhausted")
	}
}
