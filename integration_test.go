package unigen

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"unigen/internal/baseline"
	"unigen/internal/bdd"
	"unigen/internal/counter"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// TestCountersAgree cross-validates the three counting engines (DPLL
// #SAT, BDD, enumeration) on random formulas — three independent
// implementations that must agree exactly.
func TestCountersAgree(t *testing.T) {
	rng := randx.New(201)
	for iter := 0; iter < 60; iter++ {
		n := 3 + rng.Intn(7)
		f := NewFormula(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			c := make([]int, 0, 3)
			for j := 0; j < 3; j++ {
				v := rng.Intn(n) + 1
				if rng.Bool() {
					v = -v
				}
				c = append(c, v)
			}
			f.AddClause(c...)
		}
		sharp, err := counter.ExactSharpSAT(f)
		if err != nil {
			t.Fatal(err)
		}
		bb := bdd.NewBuilder(n, 0)
		root, err := bb.CompileCNF(f)
		if err != nil {
			t.Fatal(err)
		}
		bddCount := bb.Count(root)
		enum, err := counter.ExactProjected(f, 1<<uint(n+1), sat.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if sharp.Cmp(bddCount) != 0 || sharp.Cmp(enum) != 0 {
			t.Fatalf("iter %d: sharp=%v bdd=%v enum=%v", iter, sharp, bddCount, enum)
		}
	}
}

// TestSamplersAgree compares the empirical distributions of UniGen, the
// exactly-uniform BDD sampler, and US on one witness space: pairwise
// total-variation distances must be within sampling noise of each
// other.
func TestSamplersAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	f := NewFormula(8)
	f.AddClause(1, 2, 3)
	f.AddXOR([]Var{4, 5}, true)
	const n = 4000
	vars := f.SamplingVars()

	// UniGen.
	s, err := NewSampler(f, Options{Epsilon: 6, Seed: 77, ApproxMCRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	ugCounts := map[string]int{}
	ws, err := s.SampleN(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		ugCounts[keyOf(w, vars)]++
	}

	// BDD sampler.
	bb := bdd.NewBuilder(f.NumVars, 0)
	root, err := bb.CompileCNF(f)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := bb.NewSampler(root)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(78)
	bddCounts := map[string]int{}
	for i := 0; i < n; i++ {
		a := bs.Sample(rng)
		bddCounts[a.Project(vars)]++
	}

	// US.
	us, err := baseline.NewUS(f, 1<<10, sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng2 := randx.New(79)
	usCounts := map[string]int{}
	for i := 0; i < n; i++ {
		usCounts[us.Sample(rng2).Project(vars)]++
	}

	// All three saw the same support size.
	if len(bddCounts) != us.Count() {
		t.Fatalf("BDD saw %d witnesses, US counted %d", len(bddCounts), us.Count())
	}
	tvd := func(a, b map[string]int) float64 {
		keys := map[string]struct{}{}
		for k := range a {
			keys[k] = struct{}{}
		}
		for k := range b {
			keys[k] = struct{}{}
		}
		d := 0.0
		for k := range keys {
			d += math.Abs(float64(a[k])-float64(b[k])) / n
		}
		return d / 2
	}
	// Pure-noise TVD at n=4000 over ~100+ cells is ~0.06; UniGen's ε=6
	// slack admits a bit more.
	if d := tvd(bddCounts, usCounts); d > 0.12 {
		t.Fatalf("BDD vs US TVD = %.3f (two exactly-uniform samplers!)", d)
	}
	if d := tvd(ugCounts, usCounts); d > 0.2 {
		t.Fatalf("UniGen vs US TVD = %.3f", d)
	}
}

func keyOf(w Witness, vars []Var) string {
	buf := make([]byte, (len(vars)+7)/8)
	for i, b := range w.Bits(vars) {
		if b {
			buf[i/8] |= 1 << uint(i%8)
		}
	}
	return string(buf)
}

// TestParserNeverPanics fuzzes the DIMACS parser with random junk.
func TestParserNeverPanics(t *testing.T) {
	check := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseDIMACSString(src)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Structured junk that resembles DIMACS.
	for _, src := range []string{
		"p cnf 1 1\n0\n",
		"p cnf 0 0\n",
		"x 0\n",
		"c ind\np cnf 1 0\n",
		"p cnf 3 1\n1 2 3 0 4 5 0\n",
		"p cnf -3 1\n",
	} {
		if !check(src) {
			t.Fatalf("panic on %q", src)
		}
	}
}

// TestApproxVsExactProperty: ApproxMC with MaxHashRounds still lands
// within tolerance on random small formulas with high probability; we
// allow 1 miss in the batch.
func TestApproxVsExactProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	rng := randx.New(202)
	misses := 0
	for iter := 0; iter < 12; iter++ {
		n := 8 + rng.Intn(4)
		f := NewFormula(n)
		for i := 0; i < 2; i++ {
			c := make([]int, 0, 3)
			for j := 0; j < 3; j++ {
				v := rng.Intn(n) + 1
				if rng.Bool() {
					v = -v
				}
				c = append(c, v)
			}
			f.AddClause(c...)
		}
		exact, err := counter.ExactSharpSAT(f)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Sign() == 0 {
			continue
		}
		approx, err := ApproxCount(f, 0.8, 0.2, Options{Seed: uint64(300 + iter)})
		if err != nil {
			t.Fatal(err)
		}
		lo := new(big.Float).Quo(new(big.Float).SetInt(exact), big.NewFloat(1.8))
		hi := new(big.Float).Mul(new(big.Float).SetInt(exact), big.NewFloat(1.8))
		v := new(big.Float).SetInt(approx)
		if v.Cmp(lo) < 0 || v.Cmp(hi) > 0 {
			misses++
		}
	}
	if misses > 1 {
		t.Fatalf("%d of 12 ApproxMC runs outside tolerance (δ=0.2 allows ~2)", misses)
	}
}
