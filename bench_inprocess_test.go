// BenchmarkInprocess (experiment E15 of DESIGN.md §4) measures the
// inprocessing + modern-CDCL feature set end to end on the per-cell
// enumeration pattern of E10: draw an m-row XOR hash, enumerate up to
// hiThresh+1 witnesses on an incremental session, repeat. The "off"
// variant is the PR-7 baseline configuration; "on" adds session-boundary
// inprocessing (vivification, failed-literal probing, learnt
// subsumption), the dirty-window packed XOR scan, target-phase
// rephasing, and chronological backtracking. The differential batteries
// in internal/sat and internal/bsat pin that both variants enumerate
// identical witness sets, so ns/op and conflicts/call isolate the
// search-effort effect. The E15 acceptance gauge is ≥ 15% reduction in
// µs/call or conflicts/call on a full-support regime.
package unigen

import (
	"fmt"
	"strings"
	"testing"

	"unigen/internal/benchgen"
	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// benchInprocessCfg is the tuned "on" configuration: inprocess every 4
// cells with budgets large enough to sweep the whole base formula
// (vivification keeps shortening blocking and base clauses as the
// session ages), rephase every 8 restarts, allow chronological
// backtracking for backjumps shorter than 64 levels, and scan packed
// XOR rows through the dirty window.
func benchInprocessCfg() sat.Config {
	cfg := benchSolverCfg()
	cfg.InprocessEvery = 4
	cfg.VivifyBudget = 200000
	cfg.ProbeBudget = 200000
	cfg.DirtyWindow = true
	cfg.RephaseEvery = 8
	cfg.ChronoBacktrack = 64
	return cfg
}

func BenchmarkInprocess(b *testing.B) {
	for _, tc := range []struct {
		name    string
		m       int  // hash bits per cell
		fullSup bool // hash over the full support instead of the sampling set
	}{
		// UniGen regime: short rows over the independent support.
		{"EnqueueSeqSK", 8, false},
		{"case110", 8, false},
		// Full-support regime (the E15 acceptance rows): long rows, m
		// past log₂|R_F|, mostly empty-cell UNSAT proofs — the workload
		// where conflict-clause quality and XOR scan width dominate.
		{"EnqueueSeqSK-fullsup", 16, true},
		{"case110-fullsup", 16, true},
	} {
		inst, err := benchgen.Generate(strings.TrimSuffix(tc.name, "-fullsup"), benchgen.ScaleSmall, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		hashVars := inst.F.SamplingVars()
		if tc.fullSup {
			hashVars = make([]cnf.Var, inst.F.NumVars)
			for i := range hashVars {
				hashVars[i] = cnf.Var(i + 1)
			}
		}
		const hiThresh = 88
		for _, variant := range []struct {
			name string
			cfg  sat.Config
		}{
			{"off", benchSolverCfg()},
			{"on", benchInprocessCfg()},
		} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, variant.name), func(b *testing.B) {
				rng := randx.New(benchSeed)
				sess := bsat.NewSession(inst.F, bsat.Options{Solver: variant.cfg})
				var conflicts, props int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h := hashfam.Draw(rng, hashVars, tc.m)
					res := sess.Enumerate(hiThresh, h)
					if res.BudgetExceeded {
						b.Fatal("budget exceeded")
					}
					conflicts += res.Stats.Conflicts
					props += res.Stats.Propagations
				}
				b.StopTimer()
				b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts/call")
				b.ReportMetric(float64(props)/float64(b.N), "props/call")
			})
		}
	}
}
