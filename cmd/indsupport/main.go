// Command indsupport computes or verifies independent supports of a
// DIMACS CNF formula — the input UniGen's guarantee is conditional on.
//
//	indsupport -check formula.cnf     # verify the declared "c ind" set
//	indsupport -minimize formula.cnf  # shrink the declared set
//	indsupport formula.cnf            # find a minimal set from scratch
package main

import (
	"flag"
	"fmt"
	"os"

	"unigen"
)

func main() {
	check := flag.Bool("check", false, "verify the declared sampling set")
	minimize := flag.Bool("minimize", false, "minimize the declared sampling set")
	budget := flag.Int64("budget", 0, "conflict budget per SAT call (0 = unlimited)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: indsupport [flags] formula.cnf")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer file.Close()
	f, err := unigen.ParseDIMACS(file)
	if err != nil {
		fatal(err)
	}
	opts := unigen.Options{MaxConflicts: *budget}
	switch {
	case *check:
		if f.SamplingSet == nil {
			fatal(fmt.Errorf("no c ind sampling set declared"))
		}
		ok, err := unigen.IsIndependentSupport(f, f.SamplingSet, opts)
		if err != nil {
			fatal(err)
		}
		if ok {
			fmt.Println("c INDEPENDENT")
		} else {
			fmt.Println("c NOT-INDEPENDENT")
			os.Exit(1)
		}
	case *minimize:
		if f.SamplingSet == nil {
			fatal(fmt.Errorf("no c ind sampling set declared"))
		}
		s, err := unigen.MinimizeIndependentSupport(f, f.SamplingSet, opts)
		if err != nil {
			fatal(err)
		}
		printSet(s)
	default:
		s, err := unigen.FindIndependentSupport(f, opts)
		if err != nil {
			fatal(err)
		}
		printSet(s)
	}
}

func printSet(s []unigen.Var) {
	fmt.Print("c ind")
	for _, v := range s {
		fmt.Printf(" %d", v)
	}
	fmt.Println(" 0")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indsupport:", err)
	os.Exit(1)
}
