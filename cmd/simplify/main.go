// Command simplify preprocesses a DIMACS CNF file: unit propagation,
// subsumption, self-subsuming resolution, recovery of native XOR
// clauses from CNF parity encodings, and optional bounded variable
// elimination of non-sampling variables. The simplified formula is
// written to stdout in DIMACS (with "x" XOR lines and "c ind" sampling
// set preserved).
package main

import (
	"flag"
	"fmt"
	"os"

	"unigen"
)

func main() {
	bve := flag.Bool("bve", false, "enable bounded variable elimination (non-sampling vars)")
	noXOR := flag.Bool("no-xor-recovery", false, "disable XOR-clause recovery")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: simplify [flags] formula.cnf")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer file.Close()
	f, err := unigen.ParseDIMACS(file)
	if err != nil {
		fatal(err)
	}
	g, st, err := unigen.Simplify(f, unigen.SimplifyOptions{BVE: *bve, NoXORRecovery: *noXOR})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "c units=%d subsumed=%d self-subsumed=%d eliminated=%d xors-recovered=%d\n",
		st.UnitsFixed, st.Subsumed, st.SelfSubsumed, st.VarsEliminated, st.XORsRecovered)
	if err := unigen.WriteDIMACS(os.Stdout, g); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simplify:", err)
	os.Exit(1)
}
