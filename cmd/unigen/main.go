// Command unigen samples almost-uniform witnesses from a DIMACS CNF
// file (with optional "c ind" sampling-set and "x" XOR-clause lines).
//
// Usage:
//
//	unigen -n 10 -epsilon 6 -seed 1 formula.cnf
//
// Witnesses are printed one per line as signed DIMACS literals over the
// sampling set.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"unigen"
)

func main() {
	n := flag.Int("n", 1, "number of witnesses to generate")
	epsilon := flag.Float64("epsilon", 6, "uniformity tolerance (> 1.71)")
	seed := flag.Uint64("seed", 1, "random seed")
	budget := flag.Int64("budget", 0, "conflict budget per SAT call (0 = unlimited)")
	gauss := flag.Bool("gauss", false, "enable Gauss-Jordan XOR preprocessing")
	rounds := flag.Int("amc-rounds", 0, "cap ApproxMC setup rounds (0 = paper default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: unigen [flags] formula.cnf")
		flag.PrintDefaults()
		os.Exit(2)
	}

	file, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer file.Close()
	f, err := unigen.ParseDIMACS(file)
	if err != nil {
		fatal(err)
	}

	s, err := unigen.NewSampler(f, unigen.Options{
		Epsilon:        *epsilon,
		Seed:           *seed,
		MaxConflicts:   *budget,
		GaussJordan:    *gauss,
		ApproxMCRounds: *rounds,
	})
	if err != nil {
		fatal(err)
	}

	vars := f.SamplingVars()
	for got := 0; got < *n; {
		w, err := s.Sample()
		if errors.Is(err, unigen.ErrFailed) {
			continue // ⊥ round; retry with fresh randomness
		}
		if err != nil {
			fatal(err)
		}
		for _, v := range vars {
			if w.Get(v) {
				fmt.Printf("%d ", v)
			} else {
				fmt.Printf("-%d ", v)
			}
		}
		fmt.Println("0")
		got++
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "c success=%.3f avg-xor-len=%.1f easy=%v\n",
		st.SuccProb, st.AvgXORLen, st.EasyCase)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "unigen:", err)
	os.Exit(1)
}
