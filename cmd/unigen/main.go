// Command unigen samples almost-uniform witnesses from a DIMACS CNF
// file (with optional "c ind" sampling-set and "x" XOR-clause lines).
//
// Usage:
//
//	unigen -n 10 -epsilon 6 -seed 1 -j 4 formula.cnf
//
// Witnesses are printed one per line as signed DIMACS literals over the
// sampling set. -j N draws them on a pool of N parallel solver
// sessions; the witnesses printed for a given -seed are the same for
// every -j (only wall-clock time changes).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"unigen"
)

func main() {
	n := flag.Int("n", 1, "number of witnesses to generate")
	epsilon := flag.Float64("epsilon", 6, "uniformity tolerance (> 1.71)")
	seed := flag.Uint64("seed", 1, "random seed")
	budget := flag.Int64("budget", 0, "conflict budget per SAT call (0 = unlimited)")
	gauss := flag.Bool("gauss", false, "enable Gauss-Jordan XOR preprocessing")
	rounds := flag.Int("amc-rounds", 0, "cap ApproxMC setup rounds (0 = paper default)")
	jobs := flag.Int("j", 1, "parallel sampling workers (0 = all CPUs)")
	inprocess := flag.Int("inprocess", 0, "run solver inprocessing every N session calls (0 = off)")
	rephase := flag.Int("rephase", 0, "rotate decision-phase source every N restarts (0 = off)")
	chronoBT := flag.Int("chrono-bt", 0, "chronological backtracking threshold in levels (0 = off)")
	xorWindow := flag.Bool("xor-window", false, "skip fully-assigned level-0 prefixes in packed XOR propagation")
	stats := flag.Bool("stats", false, "print merged run statistics (rounds, BSAT calls, XOR rows, propagations) to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: unigen [flags] formula.cnf")
		flag.PrintDefaults()
		os.Exit(2)
	}

	file, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer file.Close()
	f, err := unigen.ParseDIMACS(file)
	if err != nil {
		fatal(err)
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s, err := unigen.NewSampler(f, unigen.Options{
		Epsilon:         *epsilon,
		Seed:            *seed,
		MaxConflicts:    *budget,
		GaussJordan:     *gauss,
		ApproxMCRounds:  *rounds,
		Workers:         workers,
		InprocessEvery:  *inprocess,
		RephaseEvery:    *rephase,
		ChronoBacktrack: *chronoBT,
		DirtyWindow:     *xorWindow,
	})
	if err != nil {
		fatal(err)
	}

	vars := f.SamplingVars()
	ws, err := s.SampleN(*n) // ⊥ rounds are retried internally
	if err != nil {
		fatal(err)
	}
	for _, w := range ws {
		for _, v := range vars {
			if w.Get(v) {
				fmt.Printf("%d ", v)
			} else {
				fmt.Printf("-%d ", v)
			}
		}
		fmt.Println("0")
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "c success=%.3f avg-xor-len=%.1f easy=%v\n",
		st.SuccProb, st.AvgXORLen, st.EasyCase)
	if *stats {
		fmt.Fprintf(os.Stderr, "c rounds=%d samples=%d failures=%d bsat-calls=%d\n",
			st.Rounds, st.Samples, st.Failures, st.BSATCalls)
		fmt.Fprintf(os.Stderr, "c xor-rows=%d conflicts=%d propagations=%d\n",
			st.XORRows, st.Conflicts, st.Propagations)
		fmt.Fprintf(os.Stderr, "c learned=%d removed=%d gc-compactions=%d arena-bytes=%d\n",
			st.Learned, st.Removed, st.Compactions, st.ArenaBytes)
		fmt.Fprintf(os.Stderr, "c vivified-lits=%d subsumed-learnts=%d probed-lits=%d failed-lits=%d\n",
			st.VivifiedLits, st.SubsumedLearnts, st.ProbedLits, st.FailedLits)
		fmt.Fprintf(os.Stderr, "c rephases=%d chrono-backtracks=%d\n",
			st.Rephases, st.ChronoBacktracks)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "unigen:", err)
	os.Exit(1)
}
