// Command unigend is the sampling-as-a-service daemon: an HTTP JSON
// front end over a prepared-formula cache and the parallel sampling
// engine. Many clients hitting the same formula pay for one ApproxMC
// setup; every later request goes straight to cheap hash-constrained
// sampling rounds.
//
// Usage:
//
//	unigend -addr :8671 -cache 64 -j 4 -max-inflight 32 -timeout 30s
//
// Endpoints:
//
//	POST /sample          {"formula": "<dimacs>", "n": 10, "seed": 1}
//	                      → {"vars": [...], "witnesses": ["0101…", ...],
//	                         "cache_hit": true, "fingerprint": "…",
//	                         "trace_id": "…", "stats": {...}}
//	POST /count           {"formula": "<dimacs>"}
//	                      → {"count": "1024", "exact": false, ...}
//
// Both accept the delta request shape instead of a formula: {"base":
// "<hex fingerprint of a prepared formula>", "assumptions": [3, -7],
// ...} samples (or counts) base ∧ assumptions on pooled warm solver
// sessions over the base — no DIMACS re-parse, no solver rebuild —
// with witnesses bit-identical to posting the conjoined formula at the
// same seed. An unknown base returns 404; -pool caps idle sessions per
// base and -delta-window tunes when a diverged delta is promoted to a
// first-class cache entry.
//
//	GET  /healthz         → {"ok": true, "state": "ok"|"overloaded"|"draining",
//	                         "uptime_seconds": 12.3, "version": "…"}
//	GET  /stats           → cache, admission, outcome, delta/session-pool,
//	                        and cumulative solver-work counters
//	GET  /metrics         → Prometheus text exposition (DESIGN §10)
//	GET  /debug/requests  → recent slow/failed requests with span trees
//
// Every /sample and /count response carries an X-Unigen-Trace header;
// adding "trace": true to a /sample body echoes the request's span tree
// in the response. Logs are structured (log/slog): one record per
// finished request with request id, tenant, fingerprint, outcome, and
// duration; requests slower than -slow-request log at Warn with their
// full phase breakdown. -log-json switches the stream to JSON.
// -debug-addr starts a second listener serving net/http/pprof and a
// /metrics mirror, kept off the public port.
//
// Overload behavior: beyond -max-inflight admitted requests and a
// -max-queue wait queue, work is shed with 429 and a Retry-After hint;
// requests exceeding the -timeout server deadline stop consuming solver
// CPU and fail with 503; bodies over -max-body get 413. SIGINT/SIGTERM
// starts a graceful drain: the listener closes, in-flight requests get
// up to -drain to finish, stragglers have their SAT searches
// interrupted.
//
// Samples for a fixed (formula, seed, n) are bit-identical to
// unigen.Sampler.SampleN and to the embedded unigen.Service — cached or
// cold, whatever -j executes the rounds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"unigen"
	"unigen/internal/obs"
)

// logger is the daemon's structured log stream. Package-level so run
// (which tests drive directly) logs through whatever main configured;
// the default matches the pre-flag behavior: human-readable text on
// stderr.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	addr := flag.String("addr", ":8671", "listen address")
	epsilon := flag.Float64("epsilon", 6, "uniformity tolerance for prepared formulas (> 1.71)")
	cache := flag.Int("cache", 64, "max prepared formulas kept (LRU)")
	storeDir := flag.String("store-dir", "", "directory for the persistent prepared-formula store (empty = off)")
	storeMax := flag.Int64("store-max-bytes", 0, "max bytes the persistent store may hold before evicting least-recently-accessed entries (0 = unlimited)")
	pool := flag.Int("pool", 0, "max idle delta sessions pooled per base formula (0 = 8)")
	deltaWindow := flag.Int("delta-window", 0, "hash-width divergence beyond which a delta entry is promoted to first-class (0 = 3, negative = always)")
	jobs := flag.Int("j", 0, "default per-request sampling workers (0 = all CPUs)")
	budget := flag.Int64("budget", 0, "conflict budget per SAT call (0 = unlimited)")
	gauss := flag.Bool("gauss", false, "enable Gauss-Jordan XOR preprocessing")
	rounds := flag.Int("amc-rounds", 0, "cap ApproxMC setup rounds (0 = paper default)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently admitted requests (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "max requests waiting for admission before shedding")
	queueWait := flag.Duration("queue-wait", 0, "max time a queued request waits for a slot (0 = 2s when gated)")
	tenantQuota := flag.Int("tenant-quota", 0, "max in-flight requests per tenant (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "server-side deadline per request (0 = none)")
	prepTimeout := flag.Duration("prepare-timeout", 0, "wall-clock cap per formula preparation (0 = none)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown deadline after SIGINT/SIGTERM")
	maxBody := flag.Int64("max-body", 0, "max HTTP request body bytes (0 = 64 MiB)")
	slowReq := flag.Duration("slow-request", 0, "latency past which a request logs at Warn with its span breakdown (0 = 1s, negative = off)")
	debugRing := flag.Int("debug-requests", 0, "recent slow/failed requests retained at /debug/requests (0 = 128)")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof and /metrics (empty = off)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: unigend [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "unigend: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, hopts))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, hopts))
	}
	slog.SetDefault(logger)

	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts := unigen.ServiceOptions{
		Epsilon:        *epsilon,
		MaxConflicts:   *budget,
		GaussJordan:    *gauss,
		ApproxMCRounds: *rounds,
		Workers:        workers,
		CacheSize:      *cache,
		StoreDir:       *storeDir,
		StoreMaxBytes:  *storeMax,
		SessionPool:    *pool,
		DeltaQWindow:   *deltaWindow,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		TenantQuota:    *tenantQuota,
		DefaultTimeout: *timeout,
		PrepareTimeout: *prepTimeout,
		MaxBodyBytes:   *maxBody,
		SlowRequest:    *slowReq,
		DebugRequests:  *debugRing,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	version, goVersion := obs.BuildVersion()
	logger.Info("unigend listening",
		"addr", ln.Addr().String(),
		"version", version,
		"go", goVersion,
		"pid", os.Getpid(),
		slog.Group("config",
			"epsilon", *epsilon,
			"workers", workers,
			"cache", *cache,
			"max_inflight", *maxInFlight,
			"max_queue", *maxQueue,
			"tenant_quota", *tenantQuota,
			"timeout", timeout.String(),
			"prepare_timeout", prepTimeout.String(),
			"slow_request", slowReq.String(),
			"gauss_jordan", *gauss,
			"store_dir", *storeDir,
			"store_max_bytes", *storeMax,
		))

	if *debugAddr != "" {
		stopDebug, err := serveDebug(*debugAddr)
		if err != nil {
			logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		defer stopDebug()
	}

	if err := run(ctx, opts, ln, *timeout, *drain); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	logger.Info("drained, bye")
}

// run serves on ln until ctx is cancelled (a termination signal), then
// drains: the listener closes immediately, the service stops admitting
// work, and both the HTTP server and the sampling service get up to
// drainDeadline to finish in-flight requests — after which straggling
// SAT searches are interrupted and their requests fail with 503.
func run(ctx context.Context, opts unigen.ServiceOptions, ln net.Listener, timeout, drainDeadline time.Duration) error {
	if opts.Logger == nil {
		opts.Logger = logger
	}
	svc, err := unigen.NewService(opts)
	if err != nil {
		return err
	}
	debugSvc.Store(svc)
	defer debugSvc.Store((*unigen.Service)(nil))

	// The warm scan already ran inside NewService; report what a
	// restarted daemon can serve without re-preparing.
	if opts.StoreDir != "" {
		st := svc.Stats().Store
		logger.Info("persistent store opened",
			"dir", opts.StoreDir,
			"entries", st.Entries,
			"bytes", st.Bytes,
			"max_bytes", opts.StoreMaxBytes)
	}

	// WriteTimeout backstops the per-request deadline: a request that
	// somehow ignores its budget still cannot hold a connection forever.
	// Unbudgeted servers (timeout 0) leave it off — solver calls are
	// legitimately long.
	writeTimeout := time.Duration(0)
	if timeout > 0 {
		writeTimeout = timeout + 30*time.Second
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       120 * time.Second,
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("signal received, draining", "deadline", drainDeadline.String())
	dctx, cancel := context.WithTimeout(context.Background(), drainDeadline)
	defer cancel()

	// Drain the two layers concurrently: Shutdown closes the listener
	// and waits for HTTP handlers to return; Close stops admitting
	// requests and interrupts straggling solvers at the deadline, which
	// is what lets those handlers return.
	svcDone := make(chan error, 1)
	go func() { svcDone <- svc.Close(dctx) }()
	httpErr := srv.Shutdown(dctx)
	svcErr := <-svcDone

	// A deadline hit is a completed (if impolite) drain: stragglers were
	// interrupted and answered 503. Only transport-level failures are
	// real errors.
	if svcErr != nil {
		logger.Warn("drain deadline exceeded, in-flight solvers interrupted")
	}
	if httpErr != nil && !errors.Is(httpErr, context.DeadlineExceeded) {
		return httpErr
	}
	return nil
}
