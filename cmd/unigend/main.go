// Command unigend is the sampling-as-a-service daemon: an HTTP JSON
// front end over a prepared-formula cache and the parallel sampling
// engine. Many clients hitting the same formula pay for one ApproxMC
// setup; every later request goes straight to cheap hash-constrained
// sampling rounds.
//
// Usage:
//
//	unigend -addr :8671 -cache 64 -j 4
//
// Endpoints:
//
//	POST /sample  {"formula": "<dimacs>", "n": 10, "seed": 1}
//	              → {"vars": [...], "witnesses": ["0101…", ...],
//	                 "cache_hit": true, "fingerprint": "…", "stats": {...}}
//	POST /count   {"formula": "<dimacs>"}
//	              → {"count": "1024", "exact": false, ...}
//	GET  /healthz → {"ok": true}
//	GET  /stats   → cache hit/miss/eviction counters and per-formula
//	                request counters
//
// Samples for a fixed (formula, seed, n) are bit-identical to
// unigen.Sampler.SampleN and to the embedded unigen.Service — cached or
// cold, whatever -j executes the rounds.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"unigen"
)

func main() {
	addr := flag.String("addr", ":8671", "listen address")
	epsilon := flag.Float64("epsilon", 6, "uniformity tolerance for prepared formulas (> 1.71)")
	cache := flag.Int("cache", 64, "max prepared formulas kept (LRU)")
	jobs := flag.Int("j", 0, "default per-request sampling workers (0 = all CPUs)")
	budget := flag.Int64("budget", 0, "conflict budget per SAT call (0 = unlimited)")
	gauss := flag.Bool("gauss", false, "enable Gauss-Jordan XOR preprocessing")
	rounds := flag.Int("amc-rounds", 0, "cap ApproxMC setup rounds (0 = paper default)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: unigend [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	svc, err := unigen.NewService(unigen.ServiceOptions{
		Epsilon:        *epsilon,
		MaxConflicts:   *budget,
		GaussJordan:    *gauss,
		ApproxMCRounds: *rounds,
		Workers:        workers,
		CacheSize:      *cache,
	})
	if err != nil {
		log.Fatalf("unigend: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("unigend listening on %s (epsilon=%g workers=%d cache=%d)", *addr, *epsilon, workers, *cache)
	log.Fatal(srv.ListenAndServe())
}
