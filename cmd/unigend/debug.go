package main

import (
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"

	"unigen"
)

// debugSvc is the service the debug listener's /metrics mirror reads.
// The debug listener starts before the service exists (it must be up
// even if the main listener wedges), so the pointer is set by run and
// the handler degrades to 503 while it is nil.
var debugSvc atomic.Pointer[unigen.Service]

// serveDebug starts the private debug listener: net/http/pprof under
// /debug/pprof/ and a /metrics mirror, deliberately on a separate
// address so profiling endpoints never ride the public port. Returns a
// func that closes the listener.
func serveDebug(addr string) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		svc := debugSvc.Load()
		if svc == nil {
			http.Error(w, "service not started", http.StatusServiceUnavailable)
			return
		}
		svc.MetricsHandler().ServeHTTP(w, r)
	})
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Warn("debug listener stopped", "err", err)
		}
	}()
	logger.Info("debug listener up", "addr", ln.Addr().String())
	return func() { _ = srv.Close() }, nil
}
