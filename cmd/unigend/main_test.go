package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"unigen"
	"unigen/internal/faultpoint"
)

// TestSIGTERMDrain delivers a real SIGTERM to a busy daemon and
// verifies the drain contract: run returns within the drain deadline
// even though an in-flight request is stalled inside the solver (its
// SAT search is interrupted and it answers 503), and requests arriving
// after the signal are rejected rather than accepted.
func TestSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("delivers a process-wide signal")
	}
	t.Cleanup(faultpoint.Reset)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	const drainDeadline = 2 * time.Second
	opts := unigen.ServiceOptions{
		Workers:        1,
		CacheSize:      4,
		MaxInFlight:    2,
		MaxQueue:       2,
		ApproxMCRounds: 15,
	}
	runDone := make(chan error, 1)
	go func() { runDone <- run(ctx, opts, ln, 0, drainDeadline) }()

	// Stall the in-flight request inside its preparation flight, far
	// beyond the drain deadline — only a solver interrupt can free it.
	faultpoint.Arm(faultpoint.PrepareSlow, faultpoint.Fault{Delay: time.Minute})

	type reply struct {
		status int
		err    error
	}
	inFlight := make(chan reply, 1)
	go func() {
		status, err := postSample(base, "c ind 1 2 3 0\np cnf 4 1\n1 2 3 4 0\n")
		inFlight <- reply{status, err}
	}()

	// Wait until the stalled request is actually admitted before
	// signalling, so the drain genuinely has a straggler to interrupt.
	waitForInFlight(t, base, 1)

	start := time.Now()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(drainDeadline + 5*time.Second):
		t.Fatal("run did not return within the drain deadline after SIGTERM")
	}
	if elapsed := time.Since(start); elapsed > drainDeadline+3*time.Second {
		t.Fatalf("drain took %v, deadline was %v", elapsed, drainDeadline)
	}

	r := <-inFlight
	// The straggler was interrupted: either a clean 503 (drain beat the
	// connection teardown) or a transport error from the closing server.
	if r.err == nil && r.status != http.StatusServiceUnavailable {
		t.Fatalf("stalled request: status %d, want 503 or connection error", r.status)
	}

	// The listener is closed: post-signal requests cannot be accepted.
	if _, err := postSample(base, "p cnf 1 1\n1 0\n"); err == nil {
		t.Fatal("request after drain completed should fail, got success")
	}
}

// TestStoreWarmRestartDaemon runs two full daemon lifetimes over one
// persistent store directory: the second must serve the formula from
// disk (one store hit, zero RAM hits) with witnesses bit-identical to
// the first lifetime's cold answer.
func TestStoreWarmRestartDaemon(t *testing.T) {
	const fixture = "c ind 1 2 3 4 5 6 7 8 9 10 0\np cnf 12 1\n11 12 0\n"
	dir := t.TempDir()

	lifetime := func(t *testing.T, wantStoreHits int64) []string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		base := "http://" + ln.Addr().String()
		ctx, cancel := context.WithCancel(context.Background())
		runDone := make(chan error, 1)
		opts := unigen.ServiceOptions{Workers: 1, ApproxMCRounds: 15, StoreDir: dir}
		go func() { runDone <- run(ctx, opts, ln, 0, 10*time.Second) }()

		body, _ := json.Marshal(map[string]any{"formula": fixture, "n": 4, "seed": 2014})
		resp, err := http.Post(base+"/sample", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Witnesses []string `json:"witnesses"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("sample: status %d err %v", resp.StatusCode, err)
		}

		sresp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Hits  int64 `json:"hits"`
			Store struct {
				Enabled bool  `json:"enabled"`
				Hits    int64 `json:"hits"`
				Entries int   `json:"entries"`
			} `json:"store"`
		}
		err = json.NewDecoder(sresp.Body).Decode(&st)
		sresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !st.Store.Enabled {
			t.Fatal("/stats reports the store disabled")
		}
		if st.Hits != 0 {
			t.Fatalf("RAM hits = %d, want 0", st.Hits)
		}
		if st.Store.Hits != wantStoreHits {
			t.Fatalf("store hits = %d, want %d", st.Store.Hits, wantStoreHits)
		}

		cancel() // drain: flushes the write-behind queue
		select {
		case err := <-runDone:
			if err != nil {
				t.Fatalf("run: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not drain")
		}
		return out.Witnesses
	}

	var cold, warm []string
	t.Run("cold", func(t *testing.T) { cold = lifetime(t, 0) })
	t.Run("warm", func(t *testing.T) { warm = lifetime(t, 1) })
	if len(cold) == 0 || !equalStrings(cold, warm) {
		t.Fatalf("witnesses diverged across restart:\n cold: %v\n warm: %v", cold, warm)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func postSample(base, formula string) (int, error) {
	body, _ := json.Marshal(map[string]any{"formula": formula, "n": 1, "seed": 7})
	resp, err := http.Post(base+"/sample", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// waitForInFlight polls /stats until the admission gate reports at
// least n requests in flight.
func waitForInFlight(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/stats")
		if err == nil {
			var st struct {
				Admission struct {
					InFlight int `json:"in_flight"`
				} `json:"admission"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && st.Admission.InFlight >= n {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no request reached the admission gate within 5s")
}
