package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"unigen"
	"unigen/internal/faultpoint"
)

// TestSIGTERMDrain delivers a real SIGTERM to a busy daemon and
// verifies the drain contract: run returns within the drain deadline
// even though an in-flight request is stalled inside the solver (its
// SAT search is interrupted and it answers 503), and requests arriving
// after the signal are rejected rather than accepted.
func TestSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("delivers a process-wide signal")
	}
	t.Cleanup(faultpoint.Reset)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	const drainDeadline = 2 * time.Second
	opts := unigen.ServiceOptions{
		Workers:        1,
		CacheSize:      4,
		MaxInFlight:    2,
		MaxQueue:       2,
		ApproxMCRounds: 15,
	}
	runDone := make(chan error, 1)
	go func() { runDone <- run(ctx, opts, ln, 0, drainDeadline) }()

	// Stall the in-flight request inside its preparation flight, far
	// beyond the drain deadline — only a solver interrupt can free it.
	faultpoint.Arm(faultpoint.PrepareSlow, faultpoint.Fault{Delay: time.Minute})

	type reply struct {
		status int
		err    error
	}
	inFlight := make(chan reply, 1)
	go func() {
		status, err := postSample(base, "c ind 1 2 3 0\np cnf 4 1\n1 2 3 4 0\n")
		inFlight <- reply{status, err}
	}()

	// Wait until the stalled request is actually admitted before
	// signalling, so the drain genuinely has a straggler to interrupt.
	waitForInFlight(t, base, 1)

	start := time.Now()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(drainDeadline + 5*time.Second):
		t.Fatal("run did not return within the drain deadline after SIGTERM")
	}
	if elapsed := time.Since(start); elapsed > drainDeadline+3*time.Second {
		t.Fatalf("drain took %v, deadline was %v", elapsed, drainDeadline)
	}

	r := <-inFlight
	// The straggler was interrupted: either a clean 503 (drain beat the
	// connection teardown) or a transport error from the closing server.
	if r.err == nil && r.status != http.StatusServiceUnavailable {
		t.Fatalf("stalled request: status %d, want 503 or connection error", r.status)
	}

	// The listener is closed: post-signal requests cannot be accepted.
	if _, err := postSample(base, "p cnf 1 1\n1 0\n"); err == nil {
		t.Fatal("request after drain completed should fail, got success")
	}
}

func postSample(base, formula string) (int, error) {
	body, _ := json.Marshal(map[string]any{"formula": formula, "n": 1, "seed": 7})
	resp, err := http.Post(base+"/sample", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// waitForInFlight polls /stats until the admission gate reports at
// least n requests in flight.
func waitForInFlight(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/stats")
		if err == nil {
			var st struct {
				Admission struct {
					InFlight int `json:"in_flight"`
				} `json:"admission"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && st.Admission.InFlight >= n {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no request reached the admission gate within 5s")
}
