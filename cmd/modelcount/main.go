// Command modelcount counts witnesses of a DIMACS CNF formula exactly,
// either over all variables (-mode full, component-caching #SAT) or
// projected onto the sampling set (-mode projected, bounded
// enumeration).
package main

import (
	"flag"
	"fmt"
	"os"

	"unigen"
)

func main() {
	mode := flag.String("mode", "full", "full | projected")
	limit := flag.Int("limit", 1<<20, "projected-mode enumeration cap")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: modelcount [flags] formula.cnf")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer file.Close()
	f, err := unigen.ParseDIMACS(file)
	if err != nil {
		fatal(err)
	}
	switch *mode {
	case "full":
		c, err := unigen.ExactCount(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("s mc %v\n", c)
	case "projected":
		c, err := unigen.ExactProjectedCount(f, *limit)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("s pmc %v\n", c)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modelcount:", err)
	os.Exit(1)
}
