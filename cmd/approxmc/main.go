// Command approxmc approximately counts the witnesses of a DIMACS CNF
// formula projected onto its sampling set, within a (1+ε) factor with
// confidence 1−δ (the ApproxMC algorithm of CP 2013).
//
// Usage:
//
//	approxmc -epsilon 0.8 -delta 0.2 formula.cnf
package main

import (
	"flag"
	"fmt"
	"os"

	"unigen"
)

func main() {
	epsilon := flag.Float64("epsilon", 0.8, "tolerance")
	delta := flag.Float64("delta", 0.2, "error probability")
	seed := flag.Uint64("seed", 1, "random seed")
	budget := flag.Int64("budget", 0, "conflict budget per SAT call (0 = unlimited)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: approxmc [flags] formula.cnf")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer file.Close()
	f, err := unigen.ParseDIMACS(file)
	if err != nil {
		fatal(err)
	}
	c, err := unigen.ApproxCount(f, *epsilon, *delta, unigen.Options{Seed: *seed, MaxConflicts: *budget})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("s mc %v\n", c)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "approxmc:", err)
	os.Exit(1)
}
