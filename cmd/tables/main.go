// Command tables regenerates Table 1 and Table 2 of the DAC'14 paper:
// the runtime/success-probability/XOR-length comparison of UniGen
// against the UniWit baseline across the benchmark families.
//
// Usage:
//
//	tables -table 1 -scale small -samples 25
//	tables -table 2 -scale medium -samples 10 -uniwit-cap 5
package main

import (
	"flag"
	"fmt"
	"os"

	"unigen/internal/benchgen"
	"unigen/internal/experiments"
)

func main() {
	table := flag.Int("table", 1, "which table to regenerate (1 or 2)")
	scaleStr := flag.String("scale", "small", "benchmark scale: small|medium|full")
	samples := flag.Int("samples", 25, "UniGen samples per benchmark")
	uwCap := flag.Int("uniwit-cap", 10, "UniWit samples per benchmark")
	epsilon := flag.Float64("epsilon", 6, "UniGen tolerance (paper: 6)")
	seed := flag.Uint64("seed", 1, "random seed")
	budget := flag.Int64("budget", 200000, "conflict budget per SAT call")
	propBudget := flag.Int64("prop-budget", 30_000_000, "propagation budget per SAT call")
	rounds := flag.Int("amc-rounds", 12, "ApproxMC setup rounds (0 = paper's 137)")
	gauss := flag.Bool("gauss", false, "enable Gauss-Jordan XOR preprocessing")
	flag.Parse()

	scale, err := benchgen.ParseScale(*scaleStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(2)
	}
	cfg := experiments.Config{
		Scale:           scale,
		Epsilon:         *epsilon,
		Samples:         *samples,
		Seed:            *seed,
		MaxConflicts:    *budget,
		MaxPropagations: *propBudget,
		ApproxMCRounds:  *rounds,
		UniWitSampleCap: *uwCap,
		GaussJordan:     *gauss,
	}
	rows := experiments.RunTable(*table, cfg)
	if err := experiments.WriteTable(os.Stdout, *table, rows); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}
