// Command genbench generates the benchmark-family CNF instances of the
// DAC'14 evaluation (see internal/benchgen) and writes them as DIMACS
// files with "c ind" sampling-set lines.
//
// Usage:
//
//	genbench -list
//	genbench -scale medium -seed 1 -out bench/ Squaring7 s526_3_2
//	genbench -scale small -out bench/ -all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"unigen/internal/benchgen"
	"unigen/internal/cnf"
)

func main() {
	list := flag.Bool("list", false, "list available benchmarks")
	all := flag.Bool("all", false, "generate every benchmark")
	scaleStr := flag.String("scale", "small", "instance scale: small|medium|full")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	if *list {
		for _, sp := range benchgen.Specs() {
			table := "aux"
			if sp.Table > 0 {
				table = fmt.Sprintf("T%d", sp.Table)
			}
			fmt.Printf("%-16s %-8s %-4s %s\n", sp.Name, sp.Family, table, sp.Description)
		}
		return
	}

	scale, err := benchgen.ParseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	names := flag.Args()
	if *all {
		names = nil
		for _, sp := range benchgen.Specs() {
			names = append(names, sp.Name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: genbench [flags] <benchmark>... (or -all / -list)")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		inst, err := benchgen.Generate(name, scale, *seed)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.cnf", name, scale))
		file, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := cnf.WriteDIMACS(file, inst.F); err != nil {
			fatal(err)
		}
		if err := file.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%-16s |X|=%-7d |S|=%-3d -> %s\n", name, inst.NumVars, inst.SupportSize, path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genbench:", err)
	os.Exit(1)
}
