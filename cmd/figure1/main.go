// Command figure1 regenerates Figure 1 of the DAC'14 paper: the
// uniformity comparison between UniGen and the ideal uniform sampler US
// on the case110 instance (16384 witnesses). It prints both histogram
// series as (occurrence count, #witnesses) pairs; plot them to
// reproduce the figure.
//
// The paper uses N = 4,000,000 samples; the default here is 20,000 so a
// run finishes in minutes on one core (same UniGen-vs-US agreement,
// sparser counts). Pass -n 4000000 for the paper's exact setting.
package main

import (
	"flag"
	"fmt"
	"os"

	"unigen/internal/benchgen"
	"unigen/internal/experiments"
)

func main() {
	n := flag.Int("n", 20000, "samples per sampler (paper: 4000000)")
	seed := flag.Uint64("seed", 1, "random seed")
	epsilon := flag.Float64("epsilon", 6, "UniGen tolerance")
	rounds := flag.Int("amc-rounds", 12, "ApproxMC setup rounds")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = benchgen.ScaleSmall
	cfg.Seed = *seed
	cfg.Epsilon = *epsilon
	cfg.ApproxMCRounds = *rounds

	res, err := experiments.RunFigure1(*n, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
	if err := experiments.WriteFigure1(os.Stdout, res); err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
}
