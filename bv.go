package unigen

import "unigen/internal/bitvec"

// BVContext builds word-level (SMT bit-vector style) constraints that
// bit-blast to CNF with the declared bit-vector variables as the
// sampling set — the "generators for SMT constraints" direction named
// in the paper's conclusion. Build expressions with the Context
// methods, Assert the constraints, then BlastBV and sample.
type BVContext = bitvec.Context

// BVExpr is a bit-vector (or boolean, width 0) expression.
type BVExpr = bitvec.Expr

// BVBlasted is a bit-blasted constraint set: a Formula whose sampling
// set is the bit-vector variables' bits, plus the name → bits map.
type BVBlasted = bitvec.Blasted

// NewBVContext returns an empty bit-vector constraint context.
func NewBVContext() *BVContext { return bitvec.NewContext() }

// BlastBV bit-blasts the context's assertions to CNF.
func BlastBV(c *BVContext) (*BVBlasted, error) { return c.Blast() }

// BVValue decodes variable name from a sampled witness.
func BVValue(bl *BVBlasted, name string, w Witness) (uint64, error) {
	return bl.Value(name, w.a)
}
