package unigen_test

import (
	"math"
	"strings"
	"testing"

	"unigen"
	"unigen/internal/cnf"
)

// TestUniformityBattery is the statistical regression test for the
// paper's headline guarantee: with ε = 6 and S an independent support,
// every witness is returned with probability within a (1+ε) factor of
// uniform (Theorem 1). On three small formulas we enumerate the
// projected solution space exactly (brute force — an oracle independent
// of the solver stack), draw ≥2000 samples with a fixed seed, and
// assert chi-square and total-variation bounds far below what any
// systematically skewed sampler would produce, yet generous enough for
// the binomial noise of a finite, deterministic draw. The seeds are
// fixed, so the observed statistics are reproducible run to run —
// CI-stable by construction.
//
// The three fixtures exercise the three sampling regimes:
//   - easy: |R_F| ≤ hiThresh, sampling is an exact-uniform index pick;
//   - cnf: a clause-constrained space above hiThresh → hashing path;
//   - xor: a parity-structured space (native XOR clauses) → hashing
//     path over the XOR-aware solver.
func TestUniformityBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical battery skipped in -short mode (CI runs it explicitly under -race)")
	}
	cases := []struct {
		name    string
		dimacs  string
		n       int
		seed    uint64
		maxChi  float64 // multiple of (K-1), the chi-square mean under uniformity
		maxTV   float64
		wantMin int // sanity floor on |R_F↓S| so fixtures stay in their regime
		wantMax int
	}{
		{
			// (x1 ∨ x2) over 6 vars: 48 witnesses ≤ hiThresh(ε=6) = 64,
			// so sampling is the exactly uniform easy-case index pick.
			name:   "easy",
			dimacs: "p cnf 6 1\n1 2 0\n",
			n:      4000,
			seed:   1,
			maxChi: 1.6, maxTV: 0.10,
			wantMin: 48, wantMax: 48,
		},
		{
			// Three 3-clauses over 8 vars: well above hiThresh, forcing
			// the hash-partition path of Algorithm 1 lines 12-22.
			name:   "cnf",
			dimacs: "p cnf 8 3\n1 2 3 0\n-2 4 -5 0\n3 -6 7 0\n",
			n:      2200,
			seed:   2,
			maxChi: 1.6, maxTV: 0.16,
			wantMin: 100, wantMax: 220,
		},
		{
			// Three independent parity constraints over 10 vars: 2^7 =
			// 128 witnesses, hashing path through the XOR-aware solver.
			name:   "xor",
			dimacs: "p cnf 10 0\nx1 2 3 0\nx4 -5 6 0\nx1 4 7 8 0\n",
			n:      2200,
			seed:   3,
			maxChi: 1.6, maxTV: 0.14,
			wantMin: 128, wantMax: 128,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f, err := unigen.ParseDIMACSString(tc.dimacs)
			if err != nil {
				t.Fatal(err)
			}
			vars := f.SamplingVars()
			space := enumerateProjections(t, f)
			K := len(space)
			if K < tc.wantMin || K > tc.wantMax {
				t.Fatalf("fixture has %d projected witnesses, want [%d, %d]", K, tc.wantMin, tc.wantMax)
			}

			s, err := unigen.NewSampler(f, unigen.Options{
				Epsilon: 6, Seed: tc.seed, ApproxMCRounds: 15, Workers: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			ws, err := s.SampleN(tc.n)
			if err != nil {
				t.Fatal(err)
			}
			if len(ws) != tc.n {
				t.Fatalf("drew %d samples, want %d", len(ws), tc.n)
			}

			tally := map[string]int{}
			for _, w := range ws {
				key := bitkey(w, vars)
				if _, ok := space[key]; !ok {
					t.Fatalf("sampler returned a non-witness projection %q", key)
				}
				tally[key]++
			}

			// Coverage: with n/K ≥ 15 expected per outcome, a sampler
			// respecting the (1+ε) lower bound misses an outcome with
			// negligible probability.
			if float64(tc.n)/float64(K) >= 15 && len(tally) != K {
				t.Fatalf("only %d of %d outcomes observed", len(tally), K)
			}

			// Chi-square against uniform: mean K-1 under uniformity,
			// sd ≈ sqrt(2K); the bound is a generous multiple of the
			// mean, still far below a (1+ε)-violating skew.
			expected := float64(tc.n) / float64(K)
			chi2, tv := 0.0, 0.0
			for key := range space {
				d := float64(tally[key]) - expected
				chi2 += d * d / expected
				tv += math.Abs(float64(tally[key])/float64(tc.n) - 1/float64(K))
			}
			tv /= 2
			t.Logf("K=%d n=%d chi2=%.1f (mean %d) tv=%.4f", K, tc.n, chi2, K-1, tv)
			if bound := tc.maxChi * float64(K-1); chi2 > bound {
				t.Fatalf("chi-square %.1f exceeds bound %.1f (K=%d): samples inconsistent with near-uniformity", chi2, bound, K)
			}
			if tv > tc.maxTV {
				t.Fatalf("total variation %.4f exceeds bound %.4f", tv, tc.maxTV)
			}

			// Per-outcome ratio check tied to Theorem 1: no outcome may
			// be drastically over-represented relative to the (1+ε)
			// ceiling (we allow 3 binomial sigmas on top of it).
			ceil := (1 + 6.0) * expected
			for key, c := range tally {
				if float64(c) > ceil+3*math.Sqrt(ceil) {
					t.Fatalf("outcome %q drawn %d times, (1+ε)-ceiling %.1f", key, c, ceil)
				}
			}
		})
	}
}

// enumerateProjections brute-forces the exact projected solution space
// of f: the set of distinct assignments to f.SamplingVars() extendable
// to a witness. Fixtures keep NumVars ≤ 10, so this is at most 1024
// Satisfies checks — exact, and entirely independent of the SAT stack
// under test.
func enumerateProjections(t *testing.T, f *unigen.Formula) map[string]bool {
	t.Helper()
	vars := f.SamplingVars()
	nv := f.NumVars
	if nv > 20 {
		t.Fatalf("fixture too large for brute force: %d vars", nv)
	}
	space := map[string]bool{}
	a := cnf.NewAssignment(nv)
	for mask := 0; mask < 1<<nv; mask++ {
		for i := 1; i <= nv; i++ {
			a.Set(cnf.Var(i), mask&(1<<(i-1)) != 0)
		}
		if a.Satisfies(f) {
			space[bitsKey(a.ProjectBits(vars))] = true
		}
	}
	return space
}

// bitkey renders a sampled witness's projection in the same form the
// brute-force oracle uses.
func bitkey(w unigen.Witness, vars []unigen.Var) string {
	return bitsKey(w.Bits(vars))
}

func bitsKey(bits []bool) string {
	var sb strings.Builder
	sb.Grow(len(bits))
	for _, b := range bits {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
