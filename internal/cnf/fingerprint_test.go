package cnf_test

import (
	"testing"

	"unigen/internal/cnf"
)

func TestFingerprintInvariantUnderPresentation(t *testing.T) {
	a, err := cnf.ParseDIMACSString("c ind 1 2 3 0\np cnf 4 3\n1 -2 3 0\n-1 4 0\n2 3 0\nx1 2 -4 0\n")
	if err != nil {
		t.Fatal(err)
	}
	// Same formula: clauses reordered, literals permuted and duplicated,
	// a tautology added, XOR written with the RHS sign on another
	// literal, sampling set declared in a different order.
	b, err := cnf.ParseDIMACSString("c ind 3 1 0\nc ind 2 0\np cnf 4 4\n2 3 3 0\n4 -1 0\n3 1 -2 1 0\n2 -2 4 0\nx-2 4 1 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if cnf.Fingerprint(a) != cnf.Fingerprint(b) {
		t.Fatal("equivalent presentations fingerprint differently")
	}
	if cnf.FingerprintString(a) != cnf.FingerprintString(b) {
		t.Fatal("FingerprintString differs")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := "p cnf 3 2\n1 2 0\n-1 3 0\n"
	a, _ := cnf.ParseDIMACSString(base)
	variants := map[string]string{
		"extra clause":     base + "2 3 0\n",
		"different var cap": "p cnf 4 2\n1 2 0\n-1 3 0\n",
		"added xor":        base + "x1 2 0\n",
		"flipped xor rhs":  base + "x-1 2 0\n",
		"sampling set":     "c ind 1 2 0\n" + base,
	}
	seen := map[[32]byte]string{cnf.Fingerprint(a): "base"}
	for name, text := range variants {
		f, err := cnf.ParseDIMACSString(text)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fp := cnf.Fingerprint(f)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}
}

func TestFingerprintEmptySamplingSetDistinctFromNil(t *testing.T) {
	a := cnf.New(2)
	a.AddClause(1, 2)
	b := a.Clone()
	b.SamplingSet = []cnf.Var{} // "project onto nothing" ≠ "unspecified"
	if cnf.Fingerprint(a) == cnf.Fingerprint(b) {
		t.Fatal("nil and empty sampling sets fingerprint identically")
	}
}

func TestFingerprintDoesNotMutate(t *testing.T) {
	f, _ := cnf.ParseDIMACSString("c ind 2 1 0\np cnf 3 2\n3 1 0\n-2 1 0\nx3 1 0\n")
	before := cnf.DIMACSString(f)
	cnf.Fingerprint(f)
	if cnf.DIMACSString(f) != before {
		t.Fatal("Fingerprint mutated its input")
	}
}
