package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a formula in DIMACS CNF format. Two extensions used
// by the UniGen/ApproxMC tool family are supported:
//
//   - "c ind v1 v2 ... 0" comment lines declare the sampling set
//     (independent support); multiple lines accumulate.
//   - clause lines beginning with "x" declare XOR clauses in the
//     CryptoMiniSAT convention: "x1 2 -3 0" means v1 ⊕ v2 ⊕ v3 = 0
//     (a leading negative literal flips the right-hand side).
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	f := &Formula{}
	declared := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "c ind "):
			fields := strings.Fields(line[len("c ind"):])
			for _, tok := range fields {
				v, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("dimacs line %d: bad ind var %q", lineNo, tok)
				}
				if v == 0 {
					break
				}
				if v < 0 {
					return nil, fmt.Errorf("dimacs line %d: negative ind var %d", lineNo, v)
				}
				f.SamplingSet = append(f.SamplingSet, Var(v))
				if v > f.NumVars {
					f.NumVars = v
				}
			}
		case strings.HasPrefix(line, "c"):
			// ordinary comment
		case strings.HasPrefix(line, "p"):
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs line %d: malformed problem line %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs line %d: bad var count %q", lineNo, fields[2])
			}
			if _, err := strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad clause count %q", lineNo, fields[3])
			}
			if n > f.NumVars {
				f.NumVars = n
			}
			declared = n
		case strings.HasPrefix(line, "x"):
			rest := strings.TrimSpace(line[1:])
			toks := strings.Fields(rest)
			var vars []Var
			rhs := true
			done := false
			for _, tok := range toks {
				x, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("dimacs line %d: bad xor literal %q", lineNo, tok)
				}
				if x == 0 {
					done = true
					break
				}
				if x < 0 {
					rhs = !rhs
					x = -x
				}
				vars = append(vars, Var(x))
			}
			if !done {
				return nil, fmt.Errorf("dimacs line %d: xor clause not 0-terminated", lineNo)
			}
			f.AddXOR(vars, rhs)
		default:
			toks := strings.Fields(line)
			var lits []int
			done := false
			for _, tok := range toks {
				x, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("dimacs line %d: bad literal %q", lineNo, tok)
				}
				if x == 0 {
					done = true
					break
				}
				lits = append(lits, x)
			}
			if !done {
				return nil, fmt.Errorf("dimacs line %d: clause not 0-terminated", lineNo)
			}
			f.AddClause(lits...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if declared > f.NumVars {
		f.NumVars = declared
	}
	return f, nil
}

// ParseDIMACSString is a convenience wrapper over ParseDIMACS.
func ParseDIMACSString(s string) (*Formula, error) {
	return ParseDIMACS(strings.NewReader(s))
}

// WriteDIMACS serializes the formula, emitting "c ind" lines for the
// sampling set and "x" lines for XOR clauses.
func WriteDIMACS(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	if f.SamplingSet != nil {
		const perLine = 10
		for i := 0; i < len(f.SamplingSet); i += perLine {
			end := i + perLine
			if end > len(f.SamplingSet) {
				end = len(f.SamplingSet)
			}
			fmt.Fprint(bw, "c ind")
			for _, v := range f.SamplingSet[i:end] {
				fmt.Fprintf(bw, " %d", v)
			}
			fmt.Fprintln(bw, " 0")
		}
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", l.DIMACS())
		}
		fmt.Fprintln(bw, "0")
	}
	for _, x := range f.XORs {
		fmt.Fprint(bw, "x")
		for i, v := range x.Vars {
			if i == 0 && !x.RHS {
				fmt.Fprintf(bw, "-%d ", v)
				continue
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}

// DIMACSString renders the formula as a DIMACS string.
func DIMACSString(f *Formula) string {
	var sb strings.Builder
	if err := WriteDIMACS(&sb, f); err != nil {
		panic(err) // strings.Builder never errors
	}
	return sb.String()
}
