package cnf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	for v := Var(1); v <= 100; v++ {
		p := MkLit(v, false)
		n := MkLit(v, true)
		if p.Var() != v || n.Var() != v {
			t.Fatalf("Var mismatch for %d", v)
		}
		if p.Neg() || !n.Neg() {
			t.Fatalf("Neg mismatch for %d", v)
		}
		if p.Not() != n || n.Not() != p {
			t.Fatalf("Not mismatch for %d", v)
		}
		if p.DIMACS() != int(v) || n.DIMACS() != -int(v) {
			t.Fatalf("DIMACS mismatch for %d", v)
		}
	}
}

func TestFromDIMACSRoundTrip(t *testing.T) {
	f := func(x int16) bool {
		if x == 0 {
			return true
		}
		return FromDIMACS(int(x)).DIMACS() == int(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMkLitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MkLit(0) did not panic")
		}
	}()
	MkLit(0, false)
}

func TestNormalizeClause(t *testing.T) {
	c := Clause{FromDIMACS(3), FromDIMACS(1), FromDIMACS(3), FromDIMACS(-2)}
	norm, taut := NormalizeClause(c)
	if taut {
		t.Fatal("unexpected tautology")
	}
	if len(norm) != 3 {
		t.Fatalf("got %d lits, want 3", len(norm))
	}
	_, taut = NormalizeClause(Clause{FromDIMACS(1), FromDIMACS(-1)})
	if !taut {
		t.Fatal("tautology not detected")
	}
}

func TestNormalizeXOR(t *testing.T) {
	vs, rhs := NormalizeXOR([]Var{1, 2, 1, 3, 2, 2}, true)
	if len(vs) != 2 || vs[0] != 2 || vs[1] != 3 {
		t.Fatalf("got %v, want [2 3]", vs)
	}
	if !rhs {
		t.Fatal("rhs changed unexpectedly")
	}
}

func TestAddXOREmptyCases(t *testing.T) {
	f := New(2)
	f.AddXOR([]Var{1, 1}, false) // tautology: dropped
	if len(f.XORs) != 0 || len(f.Clauses) != 0 {
		t.Fatal("tautological XOR not dropped")
	}
	f.AddXOR([]Var{2, 2}, true) // contradiction: empty clause
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 0 {
		t.Fatal("contradictory XOR not converted to empty clause")
	}
}

func TestSatisfies(t *testing.T) {
	f := New(3)
	f.AddClause(1, -2)
	f.AddXOR([]Var{1, 3}, true)
	a := NewAssignment(3)
	a.Set(1, true)
	a.Set(3, false)
	if !a.Satisfies(f) {
		t.Fatal("assignment should satisfy")
	}
	a.Set(3, true)
	if a.Satisfies(f) {
		t.Fatal("assignment should violate XOR")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := New(5)
	f.AddClause(1, -2, 3)
	f.AddClause(-4, 5)
	f.AddXOR([]Var{1, 2, 5}, true)
	f.AddXOR([]Var{3, 4}, false)
	f.SamplingSet = []Var{1, 2, 3}
	s := DIMACSString(f)
	g, err := ParseDIMACSString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if g.NumVars != f.NumVars {
		t.Fatalf("NumVars = %d, want %d", g.NumVars, f.NumVars)
	}
	if len(g.Clauses) != len(f.Clauses) || len(g.XORs) != len(f.XORs) {
		t.Fatalf("clause counts differ: %d/%d vs %d/%d",
			len(g.Clauses), len(g.XORs), len(f.Clauses), len(f.XORs))
	}
	if len(g.SamplingSet) != 3 {
		t.Fatalf("sampling set = %v", g.SamplingSet)
	}
	for i, x := range g.XORs {
		if x.RHS != f.XORs[i].RHS {
			t.Fatalf("xor %d RHS mismatch", i)
		}
	}
}

func TestParseDIMACSIndLines(t *testing.T) {
	src := `c a comment
c ind 1 2 0
c ind 7 0
p cnf 7 2
1 -2 0
3 4 5 0
x1 2 -7 0
`
	f, err := ParseDIMACSString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.SamplingSet) != 3 {
		t.Fatalf("sampling set %v, want 3 vars", f.SamplingSet)
	}
	if len(f.XORs) != 1 {
		t.Fatalf("xors = %d, want 1", len(f.XORs))
	}
	if f.XORs[0].RHS {
		t.Fatal("leading negation must flip RHS to false... got true")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p cnf x 2\n",
		"p dnf 2 2\n",
		"1 2\n",                     // missing 0
		"x1 2\n",                    // xor missing 0
		"1 a 0\n",                   // bad literal
		"c ind 1 -2 0\np cnf 2 0\n", // negative ind var
	}
	for _, src := range bad {
		if _, err := ParseDIMACSString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseDeclaredVarsDominate(t *testing.T) {
	f, err := ParseDIMACSString("p cnf 10 1\n1 2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 10 {
		t.Fatalf("NumVars = %d, want 10", f.NumVars)
	}
}

func TestProjectKeys(t *testing.T) {
	a := NewAssignment(10)
	a.Set(3, true)
	a.Set(9, true)
	vars := []Var{3, 5, 9}
	key := a.Project(vars)
	if len(key) != 1 {
		t.Fatalf("key length %d, want 1", len(key))
	}
	if key[0] != 0b101 {
		t.Fatalf("key = %08b, want 101", key[0])
	}
	bits := a.ProjectBits(vars)
	if !bits[0] || bits[1] || !bits[2] {
		t.Fatalf("bits = %v", bits)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(3)
	f.AddClause(1, 2)
	f.AddXOR([]Var{1, 3}, true)
	f.SamplingSet = []Var{1}
	g := f.Clone()
	g.AddClause(-3)
	g.XORs[0].RHS = false
	g.SamplingSet[0] = 2
	if len(f.Clauses) != 1 || !f.XORs[0].RHS || f.SamplingSet[0] != 1 {
		t.Fatal("Clone is not deep")
	}
}

func TestSamplingVarsDefault(t *testing.T) {
	f := New(4)
	vs := f.SamplingVars()
	if len(vs) != 4 || vs[0] != 1 || vs[3] != 4 {
		t.Fatalf("SamplingVars = %v", vs)
	}
	f.SamplingSet = []Var{4, 2}
	vs = f.SamplingVars()
	if len(vs) != 2 || vs[0] != 2 || vs[1] != 4 {
		t.Fatalf("SamplingVars = %v, want sorted [2 4]", vs)
	}
}

func TestWriteDIMACSIndChunking(t *testing.T) {
	f := New(25)
	for v := 1; v <= 25; v++ {
		f.SamplingSet = append(f.SamplingSet, Var(v))
	}
	s := DIMACSString(f)
	lines := strings.Split(strings.TrimSpace(s), "\n")
	indLines := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "c ind") {
			indLines++
			if !strings.HasSuffix(l, " 0") {
				t.Fatalf("ind line missing terminator: %q", l)
			}
		}
	}
	if indLines != 3 {
		t.Fatalf("ind lines = %d, want 3", indLines)
	}
}
