// Package cnf defines the Boolean-formula representation shared by every
// component of the UniGen reproduction: CNF clauses, native XOR clauses
// (parity constraints), assignments, and DIMACS I/O including the
// "c ind" sampling-set convention used by the UniGen/ApproxMC tool family.
package cnf

import (
	"fmt"
	"sort"
)

// Var is a propositional variable, numbered from 1 as in DIMACS.
type Var int

// Lit is a literal: a variable or its negation. The encoding is
// lit = 2*var for the positive literal and 2*var+1 for the negation,
// which lets the solver index watch lists and saved phases by literal.
// The zero Lit is invalid and used as a sentinel.
type Lit int

// MkLit builds a literal from a variable and a sign (neg=true means ¬v).
func MkLit(v Var, neg bool) Lit {
	if v <= 0 {
		panic(fmt.Sprintf("cnf: MkLit on non-positive variable %d", v))
	}
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// FromDIMACS converts a signed DIMACS integer (e.g. -3) to a Lit.
func FromDIMACS(x int) Lit {
	if x == 0 {
		panic("cnf: FromDIMACS(0)")
	}
	if x < 0 {
		return MkLit(Var(-x), true)
	}
	return MkLit(Var(x), false)
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// DIMACS returns the signed DIMACS integer for the literal.
func (l Lit) DIMACS() int {
	if l.Neg() {
		return -int(l.Var())
	}
	return int(l.Var())
}

// String renders the literal in DIMACS style.
func (l Lit) String() string { return fmt.Sprintf("%d", l.DIMACS()) }

// Clause is a disjunction of literals.
type Clause []Lit

// XORClause is a parity constraint over Vars: the XOR of the listed
// variables must equal RHS. Variables never repeat within Vars.
type XORClause struct {
	Vars []Var
	RHS  bool
}

// Formula is a CNF formula optionally extended with XOR clauses and an
// optional sampling set (independent support). NumVars is the largest
// variable index in use; clauses may reference vars 1..NumVars.
type Formula struct {
	NumVars     int
	Clauses     []Clause
	XORs        []XORClause
	SamplingSet []Var // nil means "unspecified" (callers default to all vars)
}

// New returns an empty formula over n variables.
func New(n int) *Formula {
	return &Formula{NumVars: n}
}

// AddClause appends a clause given as signed DIMACS integers.
// It grows NumVars if needed and drops duplicate literals. A clause
// containing both l and ¬l is a tautology and is silently skipped.
func (f *Formula) AddClause(lits ...int) {
	c := make(Clause, 0, len(lits))
	for _, x := range lits {
		c = append(c, FromDIMACS(x))
	}
	f.AddClauseLits(c)
}

// AddClauseLits appends a clause of Lits, normalizing as AddClause does.
func (f *Formula) AddClauseLits(c Clause) {
	norm, taut := NormalizeClause(c)
	if taut {
		return
	}
	for _, l := range norm {
		if int(l.Var()) > f.NumVars {
			f.NumVars = int(l.Var())
		}
	}
	f.Clauses = append(f.Clauses, norm)
}

// AddXOR appends the parity constraint v1 ⊕ ... ⊕ vk = rhs.
// Repeated variables cancel pairwise. An empty XOR with rhs=true is
// unsatisfiable and is recorded as an empty CNF clause instead so that
// solvers uniformly detect the conflict; with rhs=false it is a
// tautology and skipped.
func (f *Formula) AddXOR(vars []Var, rhs bool) {
	norm, nrhs := NormalizeXOR(vars, rhs)
	if len(norm) == 0 {
		if nrhs {
			f.Clauses = append(f.Clauses, Clause{}) // 0 = 1: unsatisfiable
		}
		return
	}
	for _, v := range norm {
		if int(v) > f.NumVars {
			f.NumVars = int(v)
		}
	}
	f.XORs = append(f.XORs, XORClause{Vars: norm, RHS: nrhs})
}

// NormalizeClause sorts, deduplicates, and detects tautologies.
func NormalizeClause(c Clause) (Clause, bool) {
	out := make(Clause, len(c))
	copy(out, c)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, l := range out {
		if i > 0 && l == out[i-1] {
			continue
		}
		if i > 0 && l == out[i-1].Not() {
			return nil, true
		}
		out[w] = l
		w++
	}
	return out[:w], false
}

// NormalizeXOR sorts variables and cancels repeated pairs
// (x ⊕ x = 0), returning the reduced variable list and RHS.
func NormalizeXOR(vars []Var, rhs bool) ([]Var, bool) {
	vs := make([]Var, len(vars))
	copy(vs, vars)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:0]
	for i := 0; i < len(vs); {
		j := i
		for j < len(vs) && vs[j] == vs[i] {
			j++
		}
		if (j-i)%2 == 1 {
			out = append(out, vs[i])
		}
		i = j
	}
	return out, rhs
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	g := &Formula{NumVars: f.NumVars}
	g.Clauses = make([]Clause, len(f.Clauses))
	for i, c := range f.Clauses {
		g.Clauses[i] = append(Clause(nil), c...)
	}
	g.XORs = make([]XORClause, len(f.XORs))
	for i, x := range f.XORs {
		g.XORs[i] = XORClause{Vars: append([]Var(nil), x.Vars...), RHS: x.RHS}
	}
	if f.SamplingSet != nil {
		g.SamplingSet = append([]Var(nil), f.SamplingSet...)
	}
	return g
}

// SamplingVars returns the sampling set if specified, else all variables.
func (f *Formula) SamplingVars() []Var {
	if f.SamplingSet != nil {
		out := append([]Var(nil), f.SamplingSet...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	out := make([]Var, f.NumVars)
	for i := range out {
		out[i] = Var(i + 1)
	}
	return out
}

// Assignment maps variables to truth values. Index 0 is unused.
type Assignment []bool

// NewAssignment returns an all-false assignment for n variables.
func NewAssignment(n int) Assignment { return make(Assignment, n+1) }

// Get returns the value of v.
func (a Assignment) Get(v Var) bool { return a[v] }

// Set assigns v := val.
func (a Assignment) Set(v Var, val bool) { a[v] = val }

// Satisfies reports whether the assignment satisfies every clause and
// XOR clause of f.
func (a Assignment) Satisfies(f *Formula) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if a[l.Var()] != l.Neg() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, x := range f.XORs {
		par := false
		for _, v := range x.Vars {
			par = par != a[v]
		}
		if par != x.RHS {
			return false
		}
	}
	return true
}

// Project returns the assignment restricted to vars, packed as a key
// suitable for map lookups (one byte per 8 vars, in vars order).
func (a Assignment) Project(vars []Var) string {
	buf := make([]byte, (len(vars)+7)/8)
	for i, v := range vars {
		if a[v] {
			buf[i/8] |= 1 << uint(i%8)
		}
	}
	return string(buf)
}

// ProjectBits returns the values of vars in order.
func (a Assignment) ProjectBits(vars []Var) []bool {
	out := make([]bool, len(vars))
	for i, v := range vars {
		out[i] = a[v]
	}
	return out
}
