package cnf

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
)

// Fingerprint returns the canonical fingerprint of f: the SHA-256
// digest of its normalized DIMACS serialization. Formulas that differ
// only in clause order, literal order within a clause, duplicate
// literals/clauses, tautological clauses, XOR normalization, or
// sampling-set order and duplication fingerprint identically; formulas
// with different variable counts, clause sets, XOR constraints, or
// sampling sets do not. The fingerprint is the identity under which the
// service layer caches prepared formulas and the seed root of the
// preparation RNG (see core.PrepSeed), so it must be stable across
// processes and releases — it hashes DIMACS text, not Go memory.
func Fingerprint(f *Formula) [32]byte {
	g := canonical(f)
	h := sha256.New()
	// A non-nil empty sampling set ("project onto nothing") serializes
	// identically to an unspecified one ("project onto all variables");
	// disambiguate with a leading tag byte.
	if f.SamplingSet == nil {
		h.Write([]byte{0})
	} else {
		h.Write([]byte{1})
	}
	if err := WriteDIMACS(h, g); err != nil {
		panic(err) // sha256 writers never error
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// FingerprintString returns the fingerprint in lowercase hex, the form
// used for cache keys, /stats output, and logs.
func FingerprintString(f *Formula) string {
	fp := Fingerprint(f)
	return hex.EncodeToString(fp[:])
}

// canonical builds the normal form Fingerprint hashes: per-clause
// normalization (sorted literals, duplicates and tautologies dropped),
// clause list sorted and deduplicated, XOR clauses normalized and
// sorted, sampling set sorted and deduplicated. The input is not
// modified.
func canonical(f *Formula) *Formula {
	g := &Formula{NumVars: f.NumVars}

	seen := map[string]bool{}
	for _, c := range f.Clauses {
		norm, taut := NormalizeClause(c)
		if taut {
			continue
		}
		key := litKey(norm)
		if seen[key] {
			continue
		}
		seen[key] = true
		g.Clauses = append(g.Clauses, norm)
		for _, l := range norm {
			if int(l.Var()) > g.NumVars {
				g.NumVars = int(l.Var())
			}
		}
	}
	sort.Slice(g.Clauses, func(i, j int) bool { return clauseLess(g.Clauses[i], g.Clauses[j]) })

	seenX := map[string]bool{}
	for _, x := range f.XORs {
		vars, rhs := NormalizeXOR(x.Vars, x.RHS)
		if len(vars) == 0 {
			if rhs {
				// 0 = 1: record as the empty clause, matching AddXOR.
				if !seen[""] {
					seen[""] = true
					g.Clauses = append([]Clause{{}}, g.Clauses...)
				}
			}
			continue
		}
		key := xorKey(vars, rhs)
		if seenX[key] {
			continue
		}
		seenX[key] = true
		g.XORs = append(g.XORs, XORClause{Vars: vars, RHS: rhs})
		for _, v := range vars {
			if int(v) > g.NumVars {
				g.NumVars = int(v)
			}
		}
	}
	sort.Slice(g.XORs, func(i, j int) bool {
		a, b := g.XORs[i], g.XORs[j]
		for k := 0; k < len(a.Vars) && k < len(b.Vars); k++ {
			if a.Vars[k] != b.Vars[k] {
				return a.Vars[k] < b.Vars[k]
			}
		}
		if len(a.Vars) != len(b.Vars) {
			return len(a.Vars) < len(b.Vars)
		}
		return !a.RHS && b.RHS
	})

	if f.SamplingSet != nil {
		set := append([]Var(nil), f.SamplingSet...)
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		out := set[:0]
		for i, v := range set {
			if i > 0 && v == set[i-1] {
				continue
			}
			out = append(out, v)
			if int(v) > g.NumVars {
				g.NumVars = int(v)
			}
		}
		g.SamplingSet = out
	}
	return g
}

func clauseLess(a, b Clause) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func litKey(c Clause) string {
	b := make([]byte, 0, len(c)*4)
	for _, l := range c {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

func xorKey(vars []Var, rhs bool) string {
	b := make([]byte, 0, len(vars)*4+1)
	for _, v := range vars {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	if rhs {
		b = append(b, 1)
	}
	return string(b)
}
