package cnf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary formula codec: the fixed-width little-endian encoding the
// persistent prepared-formula store (internal/store, DESIGN §12)
// serializes simplified formulas with. Unlike DIMACS text it is
// presentation-preserving — clause order, literal order, and the
// nil-vs-empty sampling-set distinction all survive a round trip —
// because the setup it is embedded in must rehydrate bit-identically
// (solver ingestion order is part of the determinism story even though
// round outcomes are history-independent). DecodeBinary accepts only
// encodings AppendBinary produces: every accepted input re-encodes to
// the same bytes, which is the fixpoint property FuzzDecodeSetup pins.
//
// Layout (all integers little-endian):
//
//	u32 numVars                      (≤ MaxBinaryVars)
//	u32 clauseCount
//	  per clause: u32 litCount, then u32 per literal (Lit encoding)
//	u32 xorCount
//	  per xor: u32 varCount, u32 per variable, u8 rhs (0|1)
//	u8  samplingTag                  (0 = nil set, 1 = present)
//	  if 1: u32 count, then u32 per variable
//
// Variables must lie in [1, numVars]; rhs and tag bytes must be 0 or 1.
// Anything else — including truncation — is rejected with ErrBinary.

// MaxBinaryVars bounds NumVars in the binary encoding; a count beyond
// it is rejected at decode before any allocation is sized from it.
const MaxBinaryVars = 1 << 26

// ErrBinary tags every malformed-encoding failure of DecodeBinary.
var ErrBinary = errors.New("cnf: invalid binary formula encoding")

// AppendBinary appends the binary encoding of f to dst and returns the
// extended slice. It rejects formulas the decoder could not validate
// back (out-of-range variable counts or literals outside 1..NumVars).
func AppendBinary(dst []byte, f *Formula) ([]byte, error) {
	if f.NumVars < 0 || f.NumVars > MaxBinaryVars {
		return nil, fmt.Errorf("%w: NumVars %d out of range", ErrBinary, f.NumVars)
	}
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(f.NumVars))
	dst = le.AppendUint32(dst, uint32(len(f.Clauses)))
	for _, c := range f.Clauses {
		dst = le.AppendUint32(dst, uint32(len(c)))
		for _, l := range c {
			if l.Var() < 1 || int(l.Var()) > f.NumVars {
				return nil, fmt.Errorf("%w: literal %v outside 1..%d", ErrBinary, l, f.NumVars)
			}
			dst = le.AppendUint32(dst, uint32(l))
		}
	}
	dst = le.AppendUint32(dst, uint32(len(f.XORs)))
	for _, x := range f.XORs {
		dst = le.AppendUint32(dst, uint32(len(x.Vars)))
		for _, v := range x.Vars {
			if v < 1 || int(v) > f.NumVars {
				return nil, fmt.Errorf("%w: xor variable %d outside 1..%d", ErrBinary, v, f.NumVars)
			}
			dst = le.AppendUint32(dst, uint32(v))
		}
		if x.RHS {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	if f.SamplingSet == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = le.AppendUint32(dst, uint32(len(f.SamplingSet)))
		for _, v := range f.SamplingSet {
			if v < 1 || int(v) > f.NumVars {
				return nil, fmt.Errorf("%w: sampling variable %d outside 1..%d", ErrBinary, v, f.NumVars)
			}
			dst = le.AppendUint32(dst, uint32(v))
		}
	}
	return dst, nil
}

// binReader is a bounds-checked cursor over an encoded formula.
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) u8() (byte, error) {
	if r.off+1 > len(r.data) {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrBinary, r.off)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *binReader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrBinary, r.off)
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

// count reads a u32 element count and rejects values that could not fit
// in the remaining input (elemSize bytes per element), so a hostile
// count can never size an allocation beyond the blob itself.
func (r *binReader) count(elemSize int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(elemSize) > int64(len(r.data)-r.off) {
		return 0, fmt.Errorf("%w: count %d exceeds remaining %d bytes", ErrBinary, n, len(r.data)-r.off)
	}
	return int(n), nil
}

// DecodeBinary decodes one formula from the front of data, returning it
// together with the number of bytes consumed. Trailing bytes are left
// for the caller (the setup codec embeds a formula mid-stream). Every
// error wraps ErrBinary; arbitrary input never panics.
func DecodeBinary(data []byte) (*Formula, int, error) {
	r := &binReader{data: data}
	nv, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	if nv > MaxBinaryVars {
		return nil, 0, fmt.Errorf("%w: NumVars %d out of range", ErrBinary, nv)
	}
	f := &Formula{NumVars: int(nv)}

	nc, err := r.count(4) // a clause is at least its u32 length
	if err != nil {
		return nil, 0, err
	}
	if nc > 0 {
		f.Clauses = make([]Clause, 0, nc)
	}
	for i := 0; i < nc; i++ {
		nl, err := r.count(4)
		if err != nil {
			return nil, 0, err
		}
		c := make(Clause, nl)
		for j := range c {
			lv, err := r.u32()
			if err != nil {
				return nil, 0, err
			}
			l := Lit(lv)
			if l.Var() < 1 || int(l.Var()) > f.NumVars {
				return nil, 0, fmt.Errorf("%w: literal %d outside 1..%d", ErrBinary, lv, f.NumVars)
			}
			c[j] = l
		}
		f.Clauses = append(f.Clauses, c)
	}

	nx, err := r.count(5) // an xor is at least its length field + rhs byte
	if err != nil {
		return nil, 0, err
	}
	if nx > 0 {
		f.XORs = make([]XORClause, 0, nx)
	}
	for i := 0; i < nx; i++ {
		nvx, err := r.count(4)
		if err != nil {
			return nil, 0, err
		}
		vs := make([]Var, nvx)
		for j := range vs {
			vv, err := r.u32()
			if err != nil {
				return nil, 0, err
			}
			if vv < 1 || int(vv) > f.NumVars {
				return nil, 0, fmt.Errorf("%w: xor variable %d outside 1..%d", ErrBinary, vv, f.NumVars)
			}
			vs[j] = Var(vv)
		}
		rhs, err := r.u8()
		if err != nil {
			return nil, 0, err
		}
		if rhs > 1 {
			return nil, 0, fmt.Errorf("%w: xor rhs byte %d", ErrBinary, rhs)
		}
		f.XORs = append(f.XORs, XORClause{Vars: vs, RHS: rhs == 1})
	}

	tag, err := r.u8()
	if err != nil {
		return nil, 0, err
	}
	switch tag {
	case 0:
		// nil sampling set ("unspecified"), distinct from an empty one.
	case 1:
		ns, err := r.count(4)
		if err != nil {
			return nil, 0, err
		}
		f.SamplingSet = make([]Var, ns)
		for j := range f.SamplingSet {
			vv, err := r.u32()
			if err != nil {
				return nil, 0, err
			}
			if vv < 1 || int(vv) > f.NumVars {
				return nil, 0, fmt.Errorf("%w: sampling variable %d outside 1..%d", ErrBinary, vv, f.NumVars)
			}
			f.SamplingSet[j] = Var(vv)
		}
	default:
		return nil, 0, fmt.Errorf("%w: sampling-set tag byte %d", ErrBinary, tag)
	}
	return f, r.off, nil
}
