package cnf_test

import (
	"testing"

	"unigen/internal/cnf"
)

// FuzzParseDIMACS asserts two properties over arbitrary input text:
// the parser never panics (it may reject with an error), and accepted
// input round-trips — parse → write → parse yields a formula whose
// serialization is identical, i.e. the written form is a fixpoint of
// the parser. The checked-in seed corpus covers the format's
// extensions: "c ind" sampling-set lines, "x" XOR-clause lines with
// sign-encoded right-hand sides, tautologies, duplicate literals, and
// empty-clause edge cases.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 3 2\n1 -2 0\n2 3 0\n")
	f.Add("c ind 1 2 0\np cnf 4 1\n1 2 -3 4 0\nx1 -2 4 0\n")
	f.Add("c comment\np cnf 2 1\n1 1 -1 0\n")
	f.Add("x-1 0\nx1 0\n")
	f.Add("p cnf 0 0\n")
	f.Add("c ind 0\n1 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return // keep throughput up; long inputs add no structure
		}
		fm, err := cnf.ParseDIMACSString(in)
		if err != nil {
			return // rejected cleanly
		}
		out := cnf.DIMACSString(fm)
		fm2, err := cnf.ParseDIMACSString(out)
		if err != nil {
			t.Fatalf("serialized form rejected: %v\ninput: %q\nwritten: %q", err, in, out)
		}
		out2 := cnf.DIMACSString(fm2)
		if out != out2 {
			t.Fatalf("round-trip not a fixpoint:\nfirst:  %q\nsecond: %q", out, out2)
		}
		// The canonical fingerprint must agree across the round-trip
		// (it hashes normalized DIMACS, which parsing must preserve).
		if cnf.Fingerprint(fm) != cnf.Fingerprint(fm2) {
			t.Fatalf("fingerprint changed across round-trip for %q", out)
		}
	})
}
