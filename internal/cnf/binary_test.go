package cnf

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func binaryFixture() *Formula {
	f := New(6)
	f.AddClause(1, -2, 3)
	f.AddClause(-4, 5)
	f.AddClause(6)
	f.AddXOR([]Var{1, 3, 5}, true)
	f.AddXOR([]Var{2, 4}, false)
	f.SamplingSet = []Var{1, 2, 3}
	return f
}

func TestBinaryRoundTrip(t *testing.T) {
	cases := map[string]*Formula{
		"full":         binaryFixture(),
		"empty":        New(0),
		"no-sampling":  func() *Formula { f := New(3); f.AddClause(1, 2); return f }(),
		"empty-set":    func() *Formula { f := New(2); f.SamplingSet = []Var{}; return f }(),
		"empty-clause": func() *Formula { f := New(1); f.Clauses = append(f.Clauses, Clause{}); return f }(),
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			enc, err := AppendBinary(nil, f)
			if err != nil {
				t.Fatalf("AppendBinary: %v", err)
			}
			got, n, err := DecodeBinary(enc)
			if err != nil {
				t.Fatalf("DecodeBinary: %v", err)
			}
			if n != len(enc) {
				t.Fatalf("consumed %d of %d bytes", n, len(enc))
			}
			if !reflect.DeepEqual(normalizeEmpty(got), normalizeEmpty(f)) {
				t.Fatalf("round trip:\n got %+v\nwant %+v", got, f)
			}
			// nil vs empty sampling set must be preserved exactly.
			if (got.SamplingSet == nil) != (f.SamplingSet == nil) {
				t.Fatalf("sampling-set nilness changed: %v → %v", f.SamplingSet == nil, got.SamplingSet == nil)
			}
			reenc, err := AppendBinary(nil, got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(enc, reenc) {
				t.Fatal("re-encoded bytes differ")
			}
		})
	}
}

// normalizeEmpty maps empty clause/XOR slices to nil so DeepEqual
// compares content, not make-vs-append artifacts.
func normalizeEmpty(f *Formula) *Formula {
	g := *f
	if len(g.Clauses) == 0 {
		g.Clauses = nil
	}
	if len(g.XORs) == 0 {
		g.XORs = nil
	}
	return &g
}

func TestBinaryTrailingBytesLeftForCaller(t *testing.T) {
	enc, err := AppendBinary(nil, binaryFixture())
	if err != nil {
		t.Fatal(err)
	}
	padded := append(bytes.Clone(enc), 0xAA, 0xBB)
	_, n, err := DecodeBinary(padded)
	if err != nil {
		t.Fatalf("DecodeBinary with trailing bytes: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d, want %d", n, len(enc))
	}
}

func TestBinaryRejectsMalformed(t *testing.T) {
	enc, err := AppendBinary(nil, binaryFixture())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeBinary(enc[:n]); !errors.Is(err, ErrBinary) {
			t.Fatalf("truncation to %d bytes: %v, want ErrBinary", n, err)
		}
	}
	// A literal referencing a variable beyond NumVars.
	bad := New(2)
	bad.Clauses = append(bad.Clauses, Clause{MkLit(9, false)})
	if _, err := AppendBinary(nil, bad); !errors.Is(err, ErrBinary) {
		t.Fatalf("out-of-range literal encoded: %v", err)
	}
	// Hostile counts larger than the remaining input must be rejected
	// before any allocation is sized from them.
	huge := []byte{
		0xFF, 0xFF, 0xFF, 0x00, // numVars (within MaxBinaryVars)
		0xFF, 0xFF, 0xFF, 0xFF, // clauseCount = 2^32-1
	}
	if _, _, err := DecodeBinary(huge); !errors.Is(err, ErrBinary) {
		t.Fatalf("hostile clause count: %v, want ErrBinary", err)
	}
}
