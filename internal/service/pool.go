package service

import (
	"sync"
	"sync/atomic"

	"unigen/internal/bsat"
	"unigen/internal/core"
	"unigen/internal/sat"
)

// poolTotals are the service-wide session-pool counters, shared by
// every per-base pool so /stats and /metrics report one fleet view.
type poolTotals struct {
	hits    atomic.Int64 // check-outs served from idle sessions
	misses  atomic.Int64 // check-outs that had to build a fresh session
	retired atomic.Int64 // sessions dropped at check-in (doomed or overflow)
	idle    atomic.Int64 // sessions currently parked across all pools
}

// pooledSession is one lendable session plus the private interrupt flag
// its solver polls. Sessions are never shared: between check-out and
// check-in exactly one request owns it.
type pooledSession struct {
	sess *bsat.Session
	intr *atomic.Bool
}

// sessionPool lends per-worker bsat sessions over one prepared base
// setup to delta requests (DESIGN §13 state machine: idle → checked-out
// → returned | retired). Check-in is where hygiene lives: standing
// assumptions cleared, interrupt flag lowered and re-pointed at the
// session's own, budgets reset to the service-wide defaults — so no
// request can observe the previous request's raised interrupt, tightened
// conflict budget, or assumption set. Solver-level taint is the
// session's own concern (bsat rebuilds internally); sessions a round
// panicked on are retired instead of re-pooled.
type sessionPool struct {
	su  *core.Setup
	cfg sat.Config // service-wide budgets; Interrupt overridden per session
	max int        // idle-list cap; overflow check-ins retire the session
	tot *poolTotals

	mu   sync.Mutex
	idle []*pooledSession
}

func newSessionPool(su *core.Setup, cfg sat.Config, max int, tot *poolTotals) *sessionPool {
	cfg.Interrupt = nil // each pooled session gets a private flag
	return &sessionPool{su: su, cfg: cfg, max: max, tot: tot}
}

// checkout returns n sessions for exclusive use, reusing idle ones
// (warm solver state: the base formula ingested, learned clauses
// accumulated) and building the rest fresh.
func (p *sessionPool) checkout(n int) []*pooledSession {
	out := make([]*pooledSession, 0, n)
	p.mu.Lock()
	for len(out) < n && len(p.idle) > 0 {
		ps := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		out = append(out, ps)
	}
	p.mu.Unlock()
	p.tot.hits.Add(int64(len(out)))
	p.tot.idle.Add(-int64(len(out)))
	for len(out) < n {
		p.tot.misses.Add(1)
		intr := new(atomic.Bool)
		cfg := p.cfg
		cfg.Interrupt = intr
		out = append(out, &pooledSession{sess: p.su.NewSessionWith(cfg), intr: intr})
	}
	return out
}

// checkin returns sessions to the pool after scrubbing request state.
// doomed (nil-safe, indexed like ps) marks sessions a sampling round
// panicked on; those are retired. Overflow beyond the idle cap is
// retired too — the solver is just garbage then.
func (p *sessionPool) checkin(ps []*pooledSession, doomed []bool) {
	for i, s := range ps {
		if doomed != nil && i < len(doomed) && doomed[i] {
			p.tot.retired.Add(1)
			continue
		}
		s.sess.SetAssumptions(nil)
		s.sess.SetInterrupt(s.intr)
		s.sess.SetBudgets(p.cfg.MaxConflicts, p.cfg.MaxPropagations)
		s.intr.Store(false)
		p.mu.Lock()
		if len(p.idle) < p.max {
			p.idle = append(p.idle, s)
			p.mu.Unlock()
			p.tot.idle.Add(1)
			continue
		}
		p.mu.Unlock()
		p.tot.retired.Add(1)
	}
}

// retire drops one checked-out session without re-pooling it — the
// path for sessions whose state is unknown (e.g. a preparation flight
// unwound past them by panic).
func (p *sessionPool) retire(ps *pooledSession) {
	p.tot.retired.Add(1)
}

// poolFor returns prep's session pool, building it on first use.
func (s *Service) poolFor(prep *prepared) *sessionPool {
	prep.poolOnce.Do(func() {
		max := s.cfg.SessionPool
		if max <= 0 {
			max = defaultSessionPool
		}
		cfg := prep.setup.SolverConfig()
		prep.pool = newSessionPool(prep.setup, cfg, max, &s.poolTot)
	})
	return prep.pool
}
