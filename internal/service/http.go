package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"unigen/internal/cnf"
	"unigen/internal/core"
	"unigen/internal/obs"
	"unigen/internal/parallel"
)

// defaultMaxBodyBytes bounds request bodies when Config.MaxBodyBytes is
// unset; larger payloads are rejected with 413 before parsing.
const defaultMaxBodyBytes = 64 << 20

// TenantHeader is the HTTP header naming the requesting tenant for
// per-tenant admission quotas (the JSON "tenant" field wins when both
// are present).
const TenantHeader = "X-Unigen-Tenant"

// TraceHeader is the response header carrying the request's trace ID.
// Every /sample and /count response gets one; quoting it back (e.g.
// when filing a report against a slow request) lets an operator find
// the span tree in GET /debug/requests or in the slow-request log.
const TraceHeader = "X-Unigen-Trace"

// SampleHTTPRequest is the JSON body of POST /sample.
type SampleHTTPRequest struct {
	// Formula is DIMACS CNF text, honoring "c ind" sampling-set lines
	// and "x" XOR-clause lines. Mutually exclusive with Base.
	Formula string `json:"formula,omitempty"`
	N       int    `json:"n"`
	Seed    uint64 `json:"seed"`
	// Base names a previously prepared formula by its hex fingerprint
	// for a delta request (DESIGN §13): the service samples Base ∧
	// Assumptions on pooled warm sessions without re-ingesting the
	// formula. Unknown fingerprints return 404.
	Base string `json:"base,omitempty"`
	// Assumptions are signed DIMACS literals conjoined to the base as
	// unit clauses; valid only with Base.
	Assumptions []int `json:"assumptions,omitempty"`
	// Workers overrides the service's per-request pool size when > 0.
	Workers int `json:"workers,omitempty"`
	// MaxConflicts overrides the per-call conflict budget when > 0.
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
	// Tenant attributes the request for per-tenant quotas (overrides
	// the X-Unigen-Tenant header).
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMS is the client's own deadline in milliseconds; exceeding
	// it returns 422 (the client set the budget).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace, when true, echoes the request's span tree (prepare /
	// rounds / per-cell timings plus solver-counter deltas) in the
	// response. The X-Unigen-Trace header carries the trace ID either
	// way.
	Trace bool `json:"trace,omitempty"`
}

// SampleHTTPResponse is the JSON body of a successful POST /sample.
// Witnesses are bitstrings over Vars in order ("101…"), the exact
// projection Sampler.SampleN would return — the encoding under which
// the cross-transport bit-identical contract is tested.
type SampleHTTPResponse struct {
	Vars        []int          `json:"vars"`
	Witnesses   []string       `json:"witnesses"`
	CacheHit    bool           `json:"cache_hit"`
	Fingerprint string         `json:"fingerprint"`
	Delta       bool           `json:"delta,omitempty"` // served through the delta path
	Stats       HTTPStatsBlock `json:"stats"`
	TraceID     string         `json:"trace_id"`
	Trace       *obs.SpanView  `json:"trace,omitempty"` // present when the request set "trace": true
}

// HTTPStatsBlock is the per-request stats subset exposed over HTTP.
type HTTPStatsBlock struct {
	Rounds       int64 `json:"rounds"`
	Samples      int64 `json:"samples"`
	Failures     int64 `json:"failures"`
	BSATCalls    int64 `json:"bsat_calls"`
	Conflicts    int64 `json:"conflicts"`
	Propagations int64 `json:"propagations"`
	XORRows      int64 `json:"xor_rows"`
}

// CountHTTPRequest is the JSON body of POST /count. Base and
// Assumptions form a delta request exactly as in SampleHTTPRequest.
type CountHTTPRequest struct {
	Formula     string `json:"formula,omitempty"`
	Base        string `json:"base,omitempty"`
	Assumptions []int  `json:"assumptions,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	TimeoutMS   int64  `json:"timeout_ms,omitempty"`
}

// CountHTTPResponse is the JSON body of a successful POST /count. Count
// is decimal text (model counts overflow int64 routinely).
type CountHTTPResponse struct {
	Count       string `json:"count"`
	Exact       bool   `json:"exact"`
	CacheHit    bool   `json:"cache_hit"`
	Fingerprint string `json:"fingerprint"`
	Delta       bool   `json:"delta,omitempty"` // served through the delta path
}

// HealthzHTTPResponse is the JSON body of GET /healthz. OK stays true
// while the node can accept work ("ok" and "overloaded"); "draining"
// reports 503 with OK false so load balancers stop routing here.
// UptimeSeconds and Version identify the node a balancer is talking
// to (stale deploys and flapping restarts both show up here).
type HealthzHTTPResponse struct {
	OK            bool        `json:"ok"`
	State         HealthState `json:"state"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Version       string      `json:"version"`
}

// StatsHTTPResponse is the JSON body of GET /stats.
type StatsHTTPResponse struct {
	Hits      int64          `json:"hits"`
	Misses    int64          `json:"misses"`
	Evictions int64          `json:"evictions"`
	Size      int            `json:"size"`
	Capacity  int            `json:"capacity"`
	Formulas  []FormulaStats `json:"formulas,omitempty"`
	Store     StoreStats     `json:"store"` // persistent disk tier (DESIGN §12)
	Admission AdmissionStats `json:"admission"`
	Outcomes  OutcomeStats   `json:"outcomes"`
	Solver    SolverTotals   `json:"solver"`  // sampling work across finished requests
	Prepare   SolverTotals   `json:"prepare"` // preparation-flight work
	Delta     DeltaStats     `json:"delta"`   // delta requests and the session-pool fleet
	State     HealthState    `json:"state"`
}

type errorHTTPResponse struct {
	Error string `json:"error"`
}

// NewHandler returns the HTTP transport of the service:
//
//	POST /sample          {"formula": "<dimacs>", "n": 10, "seed": 1}
//	                      or delta form: {"base": "<hex fingerprint>",
//	                      "assumptions": [3, -7], "n": 10, "seed": 1}
//	POST /count           {"formula": "<dimacs>"} or the delta form
//	GET  /healthz
//	GET  /stats
//	GET  /metrics         Prometheus text exposition (DESIGN §10)
//	GET  /debug/requests  recent slow/failed requests with span trees
//
// Request contexts propagate into the solver: a client that disconnects
// mid-request interrupts its in-flight SAT search. Overload maps to
// 429 (shed) and 503 (draining / server deadline) with Retry-After;
// oversized bodies to 413; recovered panics to 500. Every /sample and
// /count response carries an X-Unigen-Trace ID.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sample", func(w http.ResponseWriter, r *http.Request) {
		var req SampleHTTPRequest
		if !s.decodeJSONPost(w, r, &req) {
			return
		}
		f, ok := parseRequestFormula(w, req.Formula, req.Base)
		if !ok {
			return
		}
		tr := obs.NewTrace()
		w.Header().Set(TraceHeader, tr.ID())
		res, err := s.Sample(obs.WithTrace(r.Context(), tr), SampleRequest{
			Formula:      f,
			N:            req.N,
			Seed:         req.Seed,
			Base:         req.Base,
			Assumptions:  req.Assumptions,
			Workers:      req.Workers,
			MaxConflicts: req.MaxConflicts,
			Tenant:       tenantOf(r, req.Tenant),
			Timeout:      time.Duration(req.TimeoutMS) * time.Millisecond,
		})
		if err != nil {
			s.writeServiceError(w, err, req.MaxConflicts > 0)
			return
		}
		resp := SampleHTTPResponse{
			Vars:        make([]int, len(res.Vars)),
			Witnesses:   make([]string, len(res.Witnesses)),
			CacheHit:    res.CacheHit,
			Fingerprint: res.Fingerprint,
			Delta:       res.Delta,
			TraceID:     tr.ID(),
			Stats: HTTPStatsBlock{
				Rounds:       res.Stats.Rounds(),
				Samples:      res.Stats.Samples,
				Failures:     res.Stats.Failures,
				BSATCalls:    res.Stats.BSATCalls,
				Conflicts:    res.Stats.Conflicts,
				Propagations: res.Stats.Propagations,
				XORRows:      res.Stats.XORRows,
			},
		}
		if req.Trace {
			resp.Trace = tr.Snapshot()
		}
		for i, v := range res.Vars {
			resp.Vars[i] = int(v)
		}
		for i, a := range res.Witnesses {
			resp.Witnesses[i] = bitstring(a, res.Vars)
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/count", func(w http.ResponseWriter, r *http.Request) {
		var req CountHTTPRequest
		if !s.decodeJSONPost(w, r, &req) {
			return
		}
		f, ok := parseRequestFormula(w, req.Formula, req.Base)
		if !ok {
			return
		}
		tr := obs.NewTrace()
		w.Header().Set(TraceHeader, tr.ID())
		res, err := s.Count(obs.WithTrace(r.Context(), tr), CountRequest{
			Formula:     f,
			Base:        req.Base,
			Assumptions: req.Assumptions,
			Tenant:      tenantOf(r, req.Tenant),
			Timeout:     time.Duration(req.TimeoutMS) * time.Millisecond,
		})
		if err != nil {
			s.writeServiceError(w, err, false)
			return
		}
		writeJSON(w, http.StatusOK, CountHTTPResponse{
			Count:       res.Count.String(),
			Exact:       res.Exact,
			CacheHit:    res.CacheHit,
			Fingerprint: res.Fingerprint,
			Delta:       res.Delta,
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorHTTPResponse{Error: "use GET"})
			return
		}
		state := s.Health()
		status := http.StatusOK
		if state == HealthDraining {
			status = http.StatusServiceUnavailable
			s.setRetryAfter(w)
		}
		version, _ := obs.BuildVersion()
		writeJSON(w, status, HealthzHTTPResponse{
			OK:            state != HealthDraining,
			State:         state,
			UptimeSeconds: s.Uptime().Seconds(),
			Version:       version,
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorHTTPResponse{Error: "use GET"})
			return
		}
		st := s.Stats()
		writeJSON(w, http.StatusOK, StatsHTTPResponse{
			Hits:      st.Hits,
			Misses:    st.Misses,
			Evictions: st.Evictions,
			Size:      st.Size,
			Capacity:  st.Capacity,
			Formulas:  st.Formulas,
			Store:     st.Store,
			Admission: st.Admission,
			Outcomes:  st.Outcomes,
			Solver:    st.Solver,
			Prepare:   st.Prepare,
			Delta:     st.Delta,
			State:     st.State,
		})
	})
	mux.Handle("/metrics", MetricsHandler(s))
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorHTTPResponse{Error: "use GET"})
			return
		}
		writeJSON(w, http.StatusOK, s.DebugRequests())
	})
	return recoverMiddleware(mux)
}

// MetricsHandler serves the service's registry in the Prometheus text
// exposition format — mounted at /metrics by NewHandler, and reusable
// on a separate debug listener.
func MetricsHandler(s *Service) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorHTTPResponse{Error: "use GET"})
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	})
}

// recoverMiddleware is the transport's last-resort panic boundary: the
// service recovers panics at request and flight boundaries itself, but
// a crash in the handler plumbing (encoding, middleware) must still
// produce a 500 rather than tear down the connection servers share.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// Best effort: if the handler already wrote a status,
				// this header write is a no-op and the client sees a
				// truncated body.
				writeJSON(w, http.StatusInternalServerError, errorHTTPResponse{Error: fmt.Sprintf("internal panic: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// tenantOf resolves the request's tenant: the JSON field, then the
// X-Unigen-Tenant header, then the anonymous tenant "".
func tenantOf(r *http.Request, jsonTenant string) string {
	if jsonTenant != "" {
		return jsonTenant
	}
	return r.Header.Get(TenantHeader)
}

// bitstring renders a witness's projection onto vars as "01…" text.
func bitstring(a cnf.Assignment, vars []cnf.Var) string {
	var sb strings.Builder
	sb.Grow(len(vars))
	for _, v := range vars {
		if a.Get(v) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func (s *Service) decodeJSONPost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorHTTPResponse{Error: "use POST with a JSON body"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorHTTPResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorHTTPResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func parseFormula(w http.ResponseWriter, text string) (*cnf.Formula, bool) {
	f, err := cnf.ParseDIMACSString(text)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorHTTPResponse{Error: "bad formula: " + err.Error()})
		return nil, false
	}
	return f, true
}

// parseRequestFormula handles the formula/base duality of /sample and
// /count bodies: a delta request (base set, formula empty) carries no
// DIMACS text and parses nothing; any non-empty formula text must
// parse, even alongside base — the service then rejects the ambiguous
// combination as invalid.
func parseRequestFormula(w http.ResponseWriter, text, base string) (*cnf.Formula, bool) {
	if text == "" && base != "" {
		return nil, true
	}
	return parseFormula(w, text)
}

// setRetryAfter attaches the configured Retry-After hint (whole
// seconds, minimum 1) to a shed or draining response.
func (s *Service) setRetryAfter(w http.ResponseWriter) {
	secs := int64((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// writeServiceError maps service errors onto HTTP statuses: request
// mistakes (invalid n, unsatisfiable formula, exhaustion of a budget
// the request itself supplied — conflicts or timeout) are the client's
// 422; shed load is 429 with Retry-After; draining and exhaustion of a
// server-configured budget (deadline or conflicts) are capacity
// policy, 503, as is a cancelled or timed-out request context;
// recovered panics and everything else are 500.
func (s *Service) writeServiceError(w http.ResponseWriter, err error, clientBudget bool) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.setRetryAfter(w)
		writeJSON(w, http.StatusTooManyRequests, errorHTTPResponse{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		s.setRetryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, errorHTTPResponse{Error: err.Error()})
	case errors.Is(err, ErrDeadline):
		writeJSON(w, http.StatusServiceUnavailable, errorHTTPResponse{Error: err.Error()})
	case errors.Is(err, ErrClientTimeout):
		writeJSON(w, http.StatusUnprocessableEntity, errorHTTPResponse{Error: err.Error()})
	case errors.Is(err, ErrPanic), errors.Is(err, parallel.ErrRoundPanic):
		writeJSON(w, http.StatusInternalServerError, errorHTTPResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client disconnected or timed out; the response is moot but a
		// status keeps middleware logs sane.
		writeJSON(w, http.StatusServiceUnavailable, errorHTTPResponse{Error: err.Error()})
	case errors.Is(err, core.ErrBudget):
		status := http.StatusServiceUnavailable
		if clientBudget {
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, errorHTTPResponse{Error: err.Error()})
	case errors.Is(err, ErrUnknownBase):
		// The delta base is not prepared on this node (anymore): the
		// client must post the full formula once, then retry the delta.
		writeJSON(w, http.StatusNotFound, errorHTTPResponse{Error: err.Error()})
	case errors.Is(err, ErrInvalidRequest), errors.Is(err, core.ErrUnsat):
		writeJSON(w, http.StatusUnprocessableEntity, errorHTTPResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorHTTPResponse{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
