package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"unigen/internal/cnf"
	"unigen/internal/core"
)

// maxFormulaBytes bounds request bodies; a DIMACS formula bigger than
// this is rejected with 400 before parsing.
const maxFormulaBytes = 64 << 20

// SampleHTTPRequest is the JSON body of POST /sample.
type SampleHTTPRequest struct {
	// Formula is DIMACS CNF text, honoring "c ind" sampling-set lines
	// and "x" XOR-clause lines.
	Formula string `json:"formula"`
	N       int    `json:"n"`
	Seed    uint64 `json:"seed"`
	// Workers overrides the service's per-request pool size when > 0.
	Workers int `json:"workers,omitempty"`
	// MaxConflicts overrides the per-call conflict budget when > 0.
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
}

// SampleHTTPResponse is the JSON body of a successful POST /sample.
// Witnesses are bitstrings over Vars in order ("101…"), the exact
// projection Sampler.SampleN would return — the encoding under which
// the cross-transport bit-identical contract is tested.
type SampleHTTPResponse struct {
	Vars        []int          `json:"vars"`
	Witnesses   []string       `json:"witnesses"`
	CacheHit    bool           `json:"cache_hit"`
	Fingerprint string         `json:"fingerprint"`
	Stats       HTTPStatsBlock `json:"stats"`
}

// HTTPStatsBlock is the per-request stats subset exposed over HTTP.
type HTTPStatsBlock struct {
	Rounds    int64 `json:"rounds"`
	Samples   int64 `json:"samples"`
	Failures  int64 `json:"failures"`
	BSATCalls int64 `json:"bsat_calls"`
	XORRows   int64 `json:"xor_rows"`
}

// CountHTTPRequest is the JSON body of POST /count.
type CountHTTPRequest struct {
	Formula string `json:"formula"`
}

// CountHTTPResponse is the JSON body of a successful POST /count. Count
// is decimal text (model counts overflow int64 routinely).
type CountHTTPResponse struct {
	Count       string `json:"count"`
	Exact       bool   `json:"exact"`
	CacheHit    bool   `json:"cache_hit"`
	Fingerprint string `json:"fingerprint"`
}

// StatsHTTPResponse is the JSON body of GET /stats.
type StatsHTTPResponse struct {
	Hits      int64          `json:"hits"`
	Misses    int64          `json:"misses"`
	Evictions int64          `json:"evictions"`
	Size      int            `json:"size"`
	Capacity  int            `json:"capacity"`
	Formulas  []FormulaStats `json:"formulas,omitempty"`
}

type errorHTTPResponse struct {
	Error string `json:"error"`
}

// NewHandler returns the HTTP transport of the service:
//
//	POST /sample  {"formula": "<dimacs>", "n": 10, "seed": 1}
//	POST /count   {"formula": "<dimacs>"}
//	GET  /healthz
//	GET  /stats
//
// Request contexts propagate into the solver: a client that disconnects
// mid-request interrupts its in-flight SAT search.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sample", func(w http.ResponseWriter, r *http.Request) {
		var req SampleHTTPRequest
		if !decodeJSONPost(w, r, &req) {
			return
		}
		f, ok := parseFormula(w, req.Formula)
		if !ok {
			return
		}
		res, err := s.Sample(r.Context(), SampleRequest{
			Formula:      f,
			N:            req.N,
			Seed:         req.Seed,
			Workers:      req.Workers,
			MaxConflicts: req.MaxConflicts,
		})
		if err != nil {
			writeServiceError(w, err, req.MaxConflicts > 0)
			return
		}
		resp := SampleHTTPResponse{
			Vars:        make([]int, len(res.Vars)),
			Witnesses:   make([]string, len(res.Witnesses)),
			CacheHit:    res.CacheHit,
			Fingerprint: res.Fingerprint,
			Stats: HTTPStatsBlock{
				Rounds:    res.Stats.Rounds(),
				Samples:   res.Stats.Samples,
				Failures:  res.Stats.Failures,
				BSATCalls: res.Stats.BSATCalls,
				XORRows:   res.Stats.XORRows,
			},
		}
		for i, v := range res.Vars {
			resp.Vars[i] = int(v)
		}
		for i, a := range res.Witnesses {
			resp.Witnesses[i] = bitstring(a, res.Vars)
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/count", func(w http.ResponseWriter, r *http.Request) {
		var req CountHTTPRequest
		if !decodeJSONPost(w, r, &req) {
			return
		}
		f, ok := parseFormula(w, req.Formula)
		if !ok {
			return
		}
		res, err := s.Count(r.Context(), CountRequest{Formula: f})
		if err != nil {
			writeServiceError(w, err, false)
			return
		}
		writeJSON(w, http.StatusOK, CountHTTPResponse{
			Count:       res.Count.String(),
			Exact:       res.Exact,
			CacheHit:    res.CacheHit,
			Fingerprint: res.Fingerprint,
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorHTTPResponse{Error: "use GET"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorHTTPResponse{Error: "use GET"})
			return
		}
		st := s.Stats()
		writeJSON(w, http.StatusOK, StatsHTTPResponse{
			Hits:      st.Hits,
			Misses:    st.Misses,
			Evictions: st.Evictions,
			Size:      st.Size,
			Capacity:  st.Capacity,
			Formulas:  st.Formulas,
		})
	})
	return mux
}

// bitstring renders a witness's projection onto vars as "01…" text.
func bitstring(a cnf.Assignment, vars []cnf.Var) string {
	var sb strings.Builder
	sb.Grow(len(vars))
	for _, v := range vars {
		if a.Get(v) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func decodeJSONPost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorHTTPResponse{Error: "use POST with a JSON body"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxFormulaBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorHTTPResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func parseFormula(w http.ResponseWriter, text string) (*cnf.Formula, bool) {
	f, err := cnf.ParseDIMACSString(text)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorHTTPResponse{Error: "bad formula: " + err.Error()})
		return nil, false
	}
	return f, true
}

// writeServiceError maps service errors onto HTTP statuses: request
// mistakes (invalid n, unsatisfiable formula, exhaustion of a budget
// the request itself supplied) are the client's 422; exhaustion of the
// server-configured budget is capacity policy, 503, as is a cancelled
// or timed-out request context; everything else is a 500.
func writeServiceError(w http.ResponseWriter, err error, clientBudget bool) {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client disconnected or timed out; the response is moot but a
		// status keeps middleware logs sane.
		writeJSON(w, http.StatusServiceUnavailable, errorHTTPResponse{Error: err.Error()})
	case errors.Is(err, core.ErrBudget):
		status := http.StatusServiceUnavailable
		if clientBudget {
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, errorHTTPResponse{Error: err.Error()})
	case errors.Is(err, ErrInvalidRequest), errors.Is(err, core.ErrUnsat):
		writeJSON(w, http.StatusUnprocessableEntity, errorHTTPResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorHTTPResponse{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
