package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"unigen/internal/obs"
	"unigen/internal/service"
)

// scrape fetches /metrics and runs the strict exposition parser over
// it, so every scrape in the test suite re-validates the grammar.
func scrape(t *testing.T, base string) []obs.ExpositionFamily {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(string(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	return fams
}

func mustValue(t *testing.T, fams []obs.ExpositionFamily, family, series string, pairs ...string) float64 {
	t.Helper()
	v, ok := obs.SeriesValue(obs.Find(fams, family), series, pairs...)
	if !ok {
		t.Fatalf("series %s{%v} missing from scrape", series, pairs)
	}
	return v
}

// TestMetricsEndpoint is the satellite parser-roundtrip test: drive
// real traffic (a cold sample, a warm sample, a count, an invalid
// request), scrape /metrics, and assert family presence and values
// across every source — requests/outcomes, cache, phase latency,
// solver work, build identity.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newHTTPServer(t)

	for seed := uint64(1); seed <= 2; seed++ {
		resp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: hardDIMACS, N: 2, Seed: seed})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample status %d", resp.StatusCode)
		}
	}
	if resp := postJSON(t, ts.URL+"/count", service.CountHTTPRequest{Formula: hardDIMACS}); resp.StatusCode != http.StatusOK {
		t.Fatalf("count status %d", resp.StatusCode)
	}
	// Invalid: n must be positive.
	if resp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: hardDIMACS, N: -1}); resp.StatusCode == http.StatusOK {
		t.Fatal("invalid request succeeded")
	}

	fams := scrape(t, ts.URL)

	if got := mustValue(t, fams, "unigen_requests_total", "unigen_requests_total", "endpoint", "sample", "outcome", "ok"); got != 2 {
		t.Fatalf("sample/ok = %v, want 2", got)
	}
	if got := mustValue(t, fams, "unigen_requests_total", "unigen_requests_total", "endpoint", "count", "outcome", "ok"); got != 1 {
		t.Fatalf("count/ok = %v, want 1", got)
	}
	if got := mustValue(t, fams, "unigen_requests_total", "unigen_requests_total", "endpoint", "sample", "outcome", "invalid"); got != 1 {
		t.Fatalf("sample/invalid = %v, want 1", got)
	}
	if got := mustValue(t, fams, "unigen_witnesses_total", "unigen_witnesses_total"); got != 4 {
		t.Fatalf("witnesses = %v, want 4", got)
	}

	// Cache: one miss (first sample prepared), two hits (second sample,
	// count).
	if got := mustValue(t, fams, "unigen_cache_requests_total", "unigen_cache_requests_total", "result", "miss"); got != 1 {
		t.Fatalf("cache misses = %v, want 1", got)
	}
	if got := mustValue(t, fams, "unigen_cache_requests_total", "unigen_cache_requests_total", "result", "hit"); got != 2 {
		t.Fatalf("cache hits = %v, want 2", got)
	}
	if got := mustValue(t, fams, "unigen_cache_size", "unigen_cache_size"); got != 1 {
		t.Fatalf("cache size = %v, want 1", got)
	}
	if got := mustValue(t, fams, "unigen_prepare_flights_total", "unigen_prepare_flights_total", "result", "ok"); got != 1 {
		t.Fatalf("prepare flights ok = %v, want 1", got)
	}

	// Latency histograms: two finished sample requests, one prepare
	// flight, two rounds phases.
	if got := mustValue(t, fams, "unigen_request_seconds", "unigen_request_seconds_count", "endpoint", "sample"); got != 3 {
		t.Fatalf("request_seconds count (sample) = %v, want 3", got)
	}
	if got := mustValue(t, fams, "unigen_phase_seconds", "unigen_phase_seconds_count", "phase", "prepare"); got != 1 {
		t.Fatalf("phase_seconds prepare count = %v, want 1", got)
	}
	if got := mustValue(t, fams, "unigen_phase_seconds", "unigen_phase_seconds_count", "phase", "rounds"); got != 2 {
		t.Fatalf("phase_seconds rounds count = %v, want 2", got)
	}

	// Solver work: both phases must have counted real BSAT calls, and
	// the sampling phase real rounds.
	if got := mustValue(t, fams, "unigen_solver_bsat_calls_total", "unigen_solver_bsat_calls_total", "phase", "sample"); got <= 0 {
		t.Fatalf("sample-phase bsat calls = %v, want > 0", got)
	}
	if got := mustValue(t, fams, "unigen_solver_bsat_calls_total", "unigen_solver_bsat_calls_total", "phase", "prepare"); got <= 0 {
		t.Fatalf("prepare-phase bsat calls = %v, want > 0", got)
	}
	if got := mustValue(t, fams, "unigen_sampling_rounds_total", "unigen_sampling_rounds_total", "phase", "sample"); got < 4 {
		t.Fatalf("sampling rounds = %v, want ≥ 4", got)
	}
	if got := mustValue(t, fams, "unigen_solver_xor_rows_total", "unigen_solver_xor_rows_total", "phase", "sample"); got <= 0 {
		t.Fatalf("sample-phase xor rows = %v, want > 0", got)
	}

	// Admission (gate off in this config: all zeros, but present).
	mustValue(t, fams, "unigen_admission_shed_total", "unigen_admission_shed_total", "reason", "queue_full")
	mustValue(t, fams, "unigen_inflight_requests", "unigen_inflight_requests")

	// Build identity and uptime.
	if got := mustValue(t, fams, "unigen_build_info", "unigen_build_info"); got != 1 {
		t.Fatalf("build_info = %v, want 1", got)
	}
	bi := obs.Find(fams, "unigen_build_info")
	if bi.Series[0].Labels["version"] == "" || bi.Series[0].Labels["go"] == "" {
		t.Fatalf("build_info labels: %+v", bi.Series[0].Labels)
	}
	if got := mustValue(t, fams, "unigen_uptime_seconds", "unigen_uptime_seconds"); got < 0 {
		t.Fatalf("uptime = %v", got)
	}
}

// TestTraceHeaderAndEcho covers the per-request tracing contract:
// every /sample response carries an X-Unigen-Trace ID matching the
// body's trace_id, and "trace": true echoes a span tree whose
// prepare and rounds children account for where the request's time
// went, with solver-counter deltas on the rounds span.
func TestTraceHeaderAndEcho(t *testing.T) {
	ts, _ := newHTTPServer(t)

	resp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: hardDIMACS, N: 3, Seed: 5, Trace: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	hdr := resp.Header.Get(service.TraceHeader)
	if hdr == "" {
		t.Fatal("no X-Unigen-Trace header")
	}
	body := decode[service.SampleHTTPResponse](t, resp)
	if body.TraceID != hdr {
		t.Fatalf("trace_id %q != header %q", body.TraceID, hdr)
	}
	if body.Trace == nil {
		t.Fatal("trace echo requested but absent")
	}
	if body.Trace.Name != "request" {
		t.Fatalf("root span %q", body.Trace.Name)
	}
	byName := map[string]*obs.SpanView{}
	for _, c := range body.Trace.Children {
		byName[c.Name] = c
	}
	prep, rounds := byName["prepare"], byName["rounds"]
	if prep == nil || rounds == nil {
		t.Fatalf("span tree missing prepare/rounds: %+v", body.Trace.Children)
	}
	if prep.Counters["cache_hit"] != 0 {
		t.Fatalf("cold request traced as cache hit: %+v", prep.Counters)
	}
	if rounds.Counters["bsat_calls"] <= 0 || rounds.Counters["rounds"] <= 0 {
		t.Fatalf("rounds span counters: %+v", rounds.Counters)
	}
	// The phase spans account for the request: both closed, inside the
	// root's duration, and the root covers their total.
	if prep.DurUS < 0 || rounds.DurUS < 0 {
		t.Fatalf("unclosed phase spans: prepare=%d rounds=%d", prep.DurUS, rounds.DurUS)
	}
	if body.Trace.DurUS < prep.DurUS || body.Trace.DurUS < rounds.DurUS {
		t.Fatalf("root %dµs shorter than a phase (prepare %d, rounds %d)", body.Trace.DurUS, prep.DurUS, rounds.DurUS)
	}
	// The engine's per-round spans nest under rounds, one per consumed
	// round, each with its solver deltas.
	if len(rounds.Children) == 0 {
		t.Fatal("no round spans under the rounds phase")
	}
	for _, r := range rounds.Children {
		if r.Name != "round" {
			t.Fatalf("unexpected child %q under rounds", r.Name)
		}
	}

	// Without "trace": true the echo stays out but the header remains.
	resp2 := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: hardDIMACS, N: 1, Seed: 6})
	if resp2.Header.Get(service.TraceHeader) == "" {
		t.Fatal("untraced request lost the header")
	}
	body2 := decode[service.SampleHTTPResponse](t, resp2)
	if body2.Trace != nil {
		t.Fatal("trace echoed without being requested")
	}
}

// TestTraceDeterminism pins that tracing is observational only: the
// witnesses of a traced request are bit-identical to an untraced one
// with the same (formula, seed, n).
func TestTraceDeterminism(t *testing.T) {
	ts, _ := newHTTPServer(t)
	a := decode[service.SampleHTTPResponse](t, postJSON(t, ts.URL+"/sample",
		service.SampleHTTPRequest{Formula: hardDIMACS, N: 4, Seed: 99, Trace: true}))
	b := decode[service.SampleHTTPResponse](t, postJSON(t, ts.URL+"/sample",
		service.SampleHTTPRequest{Formula: hardDIMACS, N: 4, Seed: 99}))
	for i := range a.Witnesses {
		if a.Witnesses[i] != b.Witnesses[i] {
			t.Fatalf("witness %d diverged under tracing", i)
		}
	}
}

// TestDebugRequestsRing covers the slow-request ring end to end: with
// a tiny threshold every request is "slow", so /debug/requests must
// return records (newest first) carrying outcome, fingerprint, and
// the span tree; the slow-request counter must match.
func TestDebugRequestsRing(t *testing.T) {
	svc, err := service.New(service.Config{ApproxMCRounds: 15, SlowRequest: time.Nanosecond, DebugRequests: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: hardDIMACS, N: 2, Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := resp.Header.Get(service.TraceHeader)

	dresp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var recs []obs.RequestRecord
	if err := json.NewDecoder(dresp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != want || rec.Endpoint != "sample" || rec.Outcome != "ok" {
		t.Fatalf("record %+v, want trace %s", rec, want)
	}
	if rec.Fingerprint == "" || rec.N != 2 || rec.Duration <= 0 {
		t.Fatalf("record fields %+v", rec)
	}
	if rec.Trace == nil || len(rec.Trace.Children) == 0 {
		t.Fatal("ring record lost its span tree")
	}

	fams := scrape(t, ts.URL)
	if got := mustValue(t, fams, "unigen_slow_requests_total", "unigen_slow_requests_total"); got != 1 {
		t.Fatalf("slow_requests_total = %v, want 1", got)
	}
}

// TestRingExcludesShedAndInvalid pins the ring admission policy: fast
// invalid requests never enter the ring, so client noise cannot flush
// the interesting records.
func TestRingExcludesShedAndInvalid(t *testing.T) {
	svc, err := service.New(service.Config{ApproxMCRounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: -1}); err == nil {
		t.Fatal("invalid request succeeded")
	}
	if recs := svc.DebugRequests(); len(recs) != 0 {
		t.Fatalf("invalid request entered the ring: %+v", recs)
	}
}

// TestStatsSolverTotals is the satellite /stats fix: cumulative
// solver-work totals aggregated across finished requests, with
// preparation-flight work reported separately.
func TestStatsSolverTotals(t *testing.T) {
	ts, _ := newHTTPServer(t)
	for seed := uint64(1); seed <= 2; seed++ {
		if resp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: hardDIMACS, N: 2, Seed: seed}); resp.StatusCode != http.StatusOK {
			t.Fatalf("sample status %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	st := decode[service.StatsHTTPResponse](t, resp)
	if st.Solver.Requests != 2 {
		t.Fatalf("solver totals cover %d requests, want 2", st.Solver.Requests)
	}
	if st.Solver.BSATCalls <= 0 || st.Solver.Rounds < 4 || st.Solver.Samples != 4 {
		t.Fatalf("solver totals %+v", st.Solver)
	}
	if st.Solver.Conflicts < 0 || st.Solver.Propagations <= 0 {
		t.Fatalf("solver conflict/propagation totals %+v", st.Solver)
	}
	if st.Prepare.Requests != 1 || st.Prepare.BSATCalls <= 0 {
		t.Fatalf("prepare totals %+v (want exactly one flight with real work)", st.Prepare)
	}
}

// TestHealthzUptimeVersion covers the /healthz additions.
func TestHealthzUptimeVersion(t *testing.T) {
	ts, _ := newHTTPServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	hz := decode[service.HealthzHTTPResponse](t, resp)
	if !hz.OK || hz.State != service.HealthOK {
		t.Fatalf("healthz %+v", hz)
	}
	if hz.UptimeSeconds < 0 {
		t.Fatalf("uptime %v", hz.UptimeSeconds)
	}
	if hz.Version == "" {
		t.Fatal("no version in /healthz")
	}
}

// TestSlowRequestLog checks the structured log contract: a request
// over the threshold logs at Warn as "slow request" with request id,
// outcome, duration, and the span breakdown; a fast request logs at
// Info without the trace attr.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	lock := &lockedWriter{w: &buf, mu: &mu}
	svc, err := service.New(service.Config{
		ApproxMCRounds: 15,
		SlowRequest:    time.Nanosecond,
		Logger:         slog.New(slog.NewJSONHandler(lock, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	line := buf.String()
	mu.Unlock()
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, line)
	}
	if rec["level"] != "WARN" || rec["msg"] != "slow request" {
		t.Fatalf("level/msg: %v/%v", rec["level"], rec["msg"])
	}
	if rec["request_id"] != res.TraceID || rec["tenant"] != "acme" || rec["outcome"] != "ok" {
		t.Fatalf("attrs: %v", rec)
	}
	if rec["fingerprint"] != res.Fingerprint {
		t.Fatalf("fingerprint %v != %v", rec["fingerprint"], res.Fingerprint)
	}
	trace, ok := rec["trace"].(map[string]any)
	if !ok {
		t.Fatalf("slow record lacks span breakdown: %v", rec)
	}
	if trace["name"] != "request" {
		t.Fatalf("trace root: %v", trace)
	}

	// A fast request (threshold disabled) logs at Info without trace.
	buf.Reset()
	svc2, err := service.New(service.Config{
		ApproxMCRounds: 15,
		SlowRequest:    -1,
		Logger:         slog.New(slog.NewJSONHandler(lock, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.Count(context.Background(), service.CountRequest{Formula: hardFormula()}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	line = buf.String()
	mu.Unlock()
	rec = nil // Unmarshal merges into a non-nil map; start clean
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, line)
	}
	if rec["level"] != "INFO" || rec["msg"] != "request" || rec["endpoint"] != "count" {
		t.Fatalf("fast request record: %v", rec)
	}
	if _, hasTrace := rec["trace"]; hasTrace {
		t.Fatal("fast request logged a span breakdown")
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestConcurrentRequestsAndScrapes hammers /sample from several
// clients while scraping /metrics and /debug/requests concurrently;
// every scrape must stay grammatically valid mid-flight. Run under
// -race, this is the data-race proof for the whole obs spine.
func TestConcurrentRequestsAndScrapes(t *testing.T) {
	svc, err := service.New(service.Config{ApproxMCRounds: 15, SlowRequest: time.Nanosecond, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{
					Formula: hardDIMACS, N: 2, Seed: uint64(c*100 + i), Trace: i%2 == 0,
				})
				io.Copy(io.Discard, resp.Body)
			}
		}(c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			fams := scrape(t, ts.URL)
			if got := mustValue(t, fams, "unigen_requests_total", "unigen_requests_total", "endpoint", "sample", "outcome", "ok"); got != 20 {
				t.Fatalf("final sample/ok = %v, want 20", got)
			}
			return
		default:
			scrape(t, ts.URL)
			resp, err := http.Get(ts.URL + "/debug/requests")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}
