package service_test

import (
	"context"
	"errors"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"unigen/internal/cnf"
	"unigen/internal/faultpoint"
	"unigen/internal/service"
)

// conjoined mirrors the delta semantics in test space: the formula a
// client would post wholesale to get base ∧ assumptions.
func conjoined(f *cnf.Formula, assumps ...int) *cnf.Formula {
	g := f.Clone()
	for _, l := range assumps {
		g.AddClause(l)
	}
	return g
}

// prepareBase warms svc's cache with f and returns its fingerprint.
func prepareBase(t *testing.T, svc *service.Service, f *cnf.Formula) string {
	t.Helper()
	res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: f.Clone(), N: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return res.Fingerprint
}

// TestDeltaBitIdenticalToColdConjoined is the differential contract of
// DESIGN §13: for the same seed, a delta request served from pooled
// warm sessions over the base must return witnesses bit-identical to a
// cold prepare of the conjoined formula on a fresh service — in both
// conditioned regimes (hashing: the conditioned space is still above
// hiThresh; easy: the assumptions shrink it below).
func TestDeltaBitIdenticalToColdConjoined(t *testing.T) {
	cases := []struct {
		name    string
		assumps []int
	}{
		// 1024-witness base over 10 sampling vars; hiThresh(ε=6) = 64.
		{"hashing", []int{1, -2}},        // 2^8 = 256 conditioned witnesses
		{"easy", []int{1, -2, 3, -4, 5}}, // 2^5 = 32 conditioned witnesses
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warm := newService(t, service.Config{ApproxMCRounds: 15})
			base := hardFormula()
			baseFP := prepareBase(t, warm, base)

			const seed, n = 1234, 6
			delta, err := warm.Sample(context.Background(), service.SampleRequest{
				Base: baseFP, Assumptions: tc.assumps, N: n, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !delta.Delta {
				t.Fatal("delta request not flagged Delta in the result")
			}

			cold := newService(t, service.Config{ApproxMCRounds: 15})
			conj, err := cold.Sample(context.Background(), service.SampleRequest{
				Formula: conjoined(base, tc.assumps...), N: n, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if delta.Fingerprint != conj.Fingerprint {
				t.Fatalf("delta entry fingerprint %s, cold conjoined %s", delta.Fingerprint, conj.Fingerprint)
			}
			if got, want := projectAll(t, delta), projectAll(t, conj); !reflect.DeepEqual(got, want) {
				t.Fatalf("delta witnesses diverged from cold conjoined prepare:\n got %v\nwant %v", got, want)
			}
			// Every witness must satisfy the assumptions (they are all on
			// sampling vars here, so the projection shows them directly).
			for _, w := range delta.Witnesses {
				for _, l := range tc.assumps {
					v, want := cnf.Var(l), l > 0
					if l < 0 {
						v = cnf.Var(-l)
					}
					if w.Get(v) != want {
						t.Fatalf("witness violates assumption %d", l)
					}
				}
			}

			// The conditioned entry is cached under the conjoined formula's
			// own fingerprint: posting the conjoined DIMACS wholesale to the
			// warm service must hit it and stay bit-identical.
			viaFormula, err := warm.Sample(context.Background(), service.SampleRequest{
				Formula: conjoined(base, tc.assumps...), N: n, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !viaFormula.CacheHit {
				t.Fatal("conjoined formula request missed the delta entry it should share")
			}
			if !reflect.DeepEqual(projectAll(t, viaFormula), projectAll(t, delta)) {
				t.Fatal("formula-shaped request diverged from the delta entry's witnesses")
			}
		})
	}
}

// TestDeltaCount pins the /count side: a delta count equals the count
// of the conjoined formula, exact in the easy conditioned regime.
func TestDeltaCount(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	base := hardFormula()
	baseFP := prepareBase(t, svc, base)

	res, err := svc.Count(context.Background(), service.CountRequest{
		Base: baseFP, Assumptions: []int{1, -2, 3, -4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delta || !res.Exact || res.Count.Int64() != 32 {
		t.Fatalf("delta count %v exact=%v delta=%v, want exactly 32", res.Count, res.Exact, res.Delta)
	}
}

// TestDeltaEmptyAssumptions: a fingerprint-only request serves the base
// entry itself — sample-by-fingerprint, no formula re-post.
func TestDeltaEmptyAssumptions(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	base := hardFormula()
	baseFP := prepareBase(t, svc, base)

	byFP, err := svc.Sample(context.Background(), service.SampleRequest{Base: baseFP, N: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	byFormula, err := svc.Sample(context.Background(), service.SampleRequest{Formula: base.Clone(), N: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(projectAll(t, byFP), projectAll(t, byFormula)) {
		t.Fatal("sample-by-fingerprint diverged from sample-by-formula")
	}
	if byFP.Fingerprint != baseFP {
		t.Fatalf("fingerprint %s, want base %s", byFP.Fingerprint, baseFP)
	}
}

// TestDeltaUnknownBase: naming a fingerprint this service never
// prepared fails with ErrUnknownBase and is counted as such.
func TestDeltaUnknownBase(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	bogus := strings.Repeat("ab", 32)
	_, err := svc.Sample(context.Background(), service.SampleRequest{Base: bogus, Assumptions: []int{1}, N: 1, Seed: 1})
	if !errors.Is(err, service.ErrUnknownBase) {
		t.Fatalf("err = %v, want ErrUnknownBase", err)
	}
	if st := svc.Stats(); st.Delta.UnknownBase != 1 || st.Delta.Requests != 1 {
		t.Fatalf("delta stats %+v", st.Delta)
	}
}

// TestDeltaValidation covers the request-shape rejections.
func TestDeltaValidation(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	base := hardFormula()
	baseFP := prepareBase(t, svc, base)

	cases := []struct {
		name string
		req  service.SampleRequest
	}{
		{"formula and base", service.SampleRequest{Formula: hardFormula(), Base: baseFP, N: 1, Seed: 1}},
		{"assumptions without base", service.SampleRequest{Formula: hardFormula(), Assumptions: []int{1}, N: 1, Seed: 1}},
		{"zero literal", service.SampleRequest{Base: baseFP, Assumptions: []int{1, 0}, N: 1, Seed: 1}},
		{"bad hex", service.SampleRequest{Base: "not-hex", Assumptions: []int{1}, N: 1, Seed: 1}},
		{"short fingerprint", service.SampleRequest{Base: "abcd", Assumptions: []int{1}, N: 1, Seed: 1}},
		{"out-of-range literal", service.SampleRequest{Base: baseFP, Assumptions: []int{13}, N: 1, Seed: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := svc.Sample(context.Background(), tc.req); !errors.Is(err, service.ErrInvalidRequest) {
				t.Fatalf("err = %v, want ErrInvalidRequest", err)
			}
		})
	}
}

// TestDeltaPoolReuse: repeated delta requests for one base must reuse
// pooled sessions (hits, idle ≥ 1 at rest) instead of building a
// solver per request, and the cache must list the delta entry with its
// base attribution.
func TestDeltaPoolReuse(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	base := hardFormula()
	baseFP := prepareBase(t, svc, base)

	var first []string
	for i := 0; i < 4; i++ {
		res, err := svc.Sample(context.Background(), service.SampleRequest{
			Base: baseFP, Assumptions: []int{1, -2}, N: 3, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := projectAll(t, res)
		if i == 0 {
			first = got
		} else if !reflect.DeepEqual(got, first) {
			t.Fatalf("request %d diverged across pooled-session reuse", i)
		}
	}
	st := svc.Stats()
	if st.Delta.Served != 4 || st.Delta.Requests != 4 {
		t.Fatalf("delta stats %+v, want 4 served", st.Delta)
	}
	// Flight enumeration + 3 warm requests after the first: the pool
	// must have produced real hits, and the sessions return to idle.
	if st.Delta.PoolHits < 3 {
		t.Fatalf("pool hits %d, want ≥ 3 (sessions rebuilt instead of reused?)", st.Delta.PoolHits)
	}
	if st.Delta.PoolIdle < 1 {
		t.Fatalf("pool idle %d, want ≥ 1", st.Delta.PoolIdle)
	}
	var entry *service.FormulaStats
	for i := range st.Formulas {
		if st.Formulas[i].Delta {
			entry = &st.Formulas[i]
		}
	}
	if entry == nil || entry.Base != baseFP {
		t.Fatalf("no delta cache entry attributed to base %s (formulas %+v)", baseFP, st.Formulas)
	}
}

// TestDeltaDivergedPromotion: with a negative window every non-easy
// conditioned setup is promoted to a first-class entry — no base pool
// affinity, no base attribution — and stays bit-identical regardless.
func TestDeltaDivergedPromotion(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15, DeltaQWindow: -1})
	base := hardFormula()
	baseFP := prepareBase(t, svc, base)

	const seed, n = 55, 4
	res, err := svc.Sample(context.Background(), service.SampleRequest{
		Base: baseFP, Assumptions: []int{1, -2}, N: n, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Delta.Diverged != 1 {
		t.Fatalf("diverged count %d, want 1", st.Delta.Diverged)
	}
	for _, fs := range st.Formulas {
		if fs.Delta && fs.Base != "" {
			t.Fatalf("promoted delta entry still attributed to base: %+v", fs)
		}
	}
	cold := newService(t, service.Config{ApproxMCRounds: 15})
	conj, err := cold.Sample(context.Background(), service.SampleRequest{
		Formula: conjoined(base, 1, -2), N: n, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(projectAll(t, res), projectAll(t, conj)) {
		t.Fatal("promoted delta witnesses diverged from cold conjoined prepare")
	}
}

// TestChaosDeltaPooledSessionHygiene is the pooled-session bugfix
// regression: a delta request whose conditioned preparation is stalled
// (SolverStall) and abandoned at its client deadline leaves behind a
// checked-in session with a raised interrupt flag. The next delta
// request on the same base must serve normally from that same session
// — check-in hygiene lowers the flag, clears the assumptions, and
// resets the budgets — and stay bit-identical to a cold prepare.
func TestChaosDeltaPooledSessionHygiene(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	base := hardFormula()
	baseFP := prepareBase(t, svc, base)

	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})
	_, err := svc.Sample(context.Background(), service.SampleRequest{
		Base: baseFP, Assumptions: []int{1, -2}, N: 2, Seed: 5,
		Timeout: 100 * time.Millisecond,
	})
	if !errors.Is(err, service.ErrClientTimeout) {
		t.Fatalf("stalled delta request: err = %v, want ErrClientTimeout", err)
	}
	faultpoint.Reset()

	const seed, n = 77, 4
	res, err := svc.Sample(context.Background(), service.SampleRequest{
		Base: baseFP, Assumptions: []int{1, -2}, N: n, Seed: seed,
	})
	if err != nil {
		t.Fatalf("delta request after stalled predecessor: %v", err)
	}
	st := svc.Stats()
	if st.Delta.PoolHits < 1 {
		t.Fatalf("pool hits %d: the interrupted session was not reused", st.Delta.PoolHits)
	}
	cold := newService(t, service.Config{ApproxMCRounds: 15})
	conj, err := cold.Sample(context.Background(), service.SampleRequest{
		Formula: conjoined(base, 1, -2), N: n, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(projectAll(t, res), projectAll(t, conj)) {
		t.Fatal("post-stall delta witnesses diverged from cold conjoined prepare")
	}
}

// TestChaosDeltaRoundPanicRetiresSession: a sampling round that panics
// on a pooled session dooms it; check-in retires the session instead
// of re-pooling solver state of unknown integrity, and the next
// request serves normally on a fresh one.
func TestChaosDeltaRoundPanicRetiresSession(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	base := hardFormula()
	baseFP := prepareBase(t, svc, base)

	// Warm the conditioned entry so the fault fires in a sampling round
	// on a pooled session, not inside the preparation flight.
	if _, err := svc.Sample(context.Background(), service.SampleRequest{
		Base: baseFP, Assumptions: []int{1, -2}, N: 1, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	retiredBefore := svc.Stats().Delta.PoolRetired

	faultpoint.Arm(faultpoint.RoundPanic, faultpoint.Fault{Panic: "injected round crash", Count: 1})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{
		Base: baseFP, Assumptions: []int{1, -2}, N: 2, Seed: 2,
	}); err == nil {
		t.Fatal("round panic did not fail the request")
	}
	faultpoint.Reset()

	st := svc.Stats()
	if st.Delta.PoolRetired <= retiredBefore {
		t.Fatalf("pool retired %d → %d: panicked session was re-pooled", retiredBefore, st.Delta.PoolRetired)
	}
	if _, err := svc.Sample(context.Background(), service.SampleRequest{
		Base: baseFP, Assumptions: []int{1, -2}, N: 2, Seed: 3,
	}); err != nil {
		t.Fatalf("delta request after retirement: %v", err)
	}
}

// TestHTTPDelta exercises the delta request shape end to end over the
// HTTP transport: warm the base, sample and count by base fingerprint,
// verify the conjoined-formula equivalence, and the 404 for an unknown
// base.
func TestHTTPDelta(t *testing.T) {
	ts, svc := newHTTPServer(t)

	warm := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: hardDIMACS, N: 1, Seed: 1})
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status %d", warm.StatusCode)
	}
	baseFP := decode[service.SampleHTTPResponse](t, warm).Fingerprint

	dresp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{
		Base: baseFP, Assumptions: []int{1, -2}, N: 3, Seed: 21,
	})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta sample status %d", dresp.StatusCode)
	}
	dbody := decode[service.SampleHTTPResponse](t, dresp)
	if !dbody.Delta || len(dbody.Witnesses) != 3 {
		t.Fatalf("delta sample body %+v", dbody)
	}

	// The conjoined DIMACS text posted wholesale must hit the same
	// entry and return the same witnesses.
	conjDIMACS := "c ind 1 2 3 4 5 6 7 8 9 10 0\np cnf 12 3\n11 12 0\n1 0\n-2 0\n"
	fresp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: conjDIMACS, N: 3, Seed: 21})
	fbody := decode[service.SampleHTTPResponse](t, fresp)
	if !fbody.CacheHit || fbody.Fingerprint != dbody.Fingerprint {
		t.Fatalf("conjoined formula request: hit=%v fp=%s, want hit of %s", fbody.CacheHit, fbody.Fingerprint, dbody.Fingerprint)
	}
	if !reflect.DeepEqual(fbody.Witnesses, dbody.Witnesses) {
		t.Fatal("conjoined formula witnesses diverged from delta witnesses over HTTP")
	}

	cresp := postJSON(t, ts.URL+"/count", service.CountHTTPRequest{Base: baseFP, Assumptions: []int{1, -2, 3, -4, 5}})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("delta count status %d", cresp.StatusCode)
	}
	cbody := decode[service.CountHTTPResponse](t, cresp)
	if !cbody.Delta || cbody.Count != "32" || !cbody.Exact {
		t.Fatalf("delta count body %+v, want exact 32", cbody)
	}

	// Unknown base → 404.
	uresp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{
		Base: strings.Repeat("cd", 32), Assumptions: []int{1}, N: 1, Seed: 1,
	})
	if uresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown base status %d, want 404", uresp.StatusCode)
	}

	// Both formula and base → 422.
	bresp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{
		Formula: hardDIMACS, Base: baseFP, N: 1, Seed: 1,
	})
	if bresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("formula+base status %d, want 422", bresp.StatusCode)
	}

	// The /stats delta block reflects the traffic.
	st := svc.Stats()
	if st.Delta.Served < 2 || st.Delta.UnknownBase != 1 {
		t.Fatalf("delta stats %+v", st.Delta)
	}
}
