package service_test

import (
	"context"
	"testing"

	"unigen/internal/service"
)

// The E16 trio: what the disk tier buys on the E12 workload. Cold pays
// fingerprint + full core.Setup (easy-case probe + ApproxMC) + one
// sample on a fresh service; disk-hit pays fingerprint + store read +
// CRC verify + decode + one sample on a fresh service over a warm
// directory; RAM-hit is the existing in-process ceiling. The
// cold/disk-hit ratio is the warm-restart speedup a redeployed daemon
// gets on every formula it had already prepared.

// BenchmarkStoreColdPrepare mirrors BenchmarkServicePrepared/cold with
// the store wired in (the write-behind queue is part of the cold path's
// cost, though it never blocks the request).
func BenchmarkStoreColdPrepare(b *testing.B) {
	ctx := context.Background()
	f := benchFormula()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir() // empty store: every iteration misses disk
		b.StartTimer()
		svc, err := service.New(service.Config{ApproxMCRounds: 15, StoreDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := svc.Close(ctx); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkStoreDiskHit measures the warm-restart path: a fresh service
// (empty RAM cache) over a pre-populated directory, so every iteration
// pays open + read + verify + rehydrate + one sample.
func BenchmarkStoreDiskHit(b *testing.B) {
	ctx := context.Background()
	f := benchFormula()
	dir := b.TempDir()
	seed, err := service.New(service.Config{ApproxMCRounds: 15, StoreDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seed.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: 0}); err != nil {
		b.Fatal(err)
	}
	if err := seed.Close(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := service.New(service.Config{ApproxMCRounds: 15, StoreDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		res, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheHit {
			b.Fatal("RAM hit on a fresh service")
		}
		b.StopTimer()
		if st := svc.Stats(); st.Store.Hits != 1 {
			b.Fatalf("iteration did not hit disk: %+v", st.Store)
		}
		if err := svc.Close(ctx); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkStoreRAMHit is the in-process ceiling the disk tier is
// measured against: a warm service, every request a RAM cache hit.
func BenchmarkStoreRAMHit(b *testing.B) {
	ctx := context.Background()
	f := benchFormula()
	dir := b.TempDir()
	svc, err := service.New(service.Config{ApproxMCRounds: 15, StoreDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: 0}); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close(context.Background()) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
