package service_test

import (
	"context"
	"fmt"
	"testing"

	"unigen/internal/service"
)

// benchAssumptionSets are the rotating 1–4-literal deltas both
// benchmarks sample under — the "same conjoined formula" either served
// cold (full prepare per request) or as a delta over a warm base
// (pooled sessions, cached conditioned entries).
var benchAssumptionSets = [][]int{
	{1},
	{1, -2},
	{1, -2, 3},
	{1, -2, 3, -4},
}

// BenchmarkDeltaColdPrepare is the baseline the delta path is measured
// against: every request posts the conjoined formula to a fresh
// service, paying DIMACS-free but full preparation — solver build,
// ApproxMC estimation — before sampling.
func BenchmarkDeltaColdPrepare(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc, err := service.New(service.Config{ApproxMCRounds: 15})
		if err != nil {
			b.Fatal(err)
		}
		conj := conjoined(hardFormula(), benchAssumptionSets[i%len(benchAssumptionSets)]...)
		if _, err := svc.Sample(ctx, service.SampleRequest{Formula: conj, N: 1, Seed: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaReuse serves the identical conjoined formulas as delta
// requests over one warm base: after the first pass over the rotation
// the conditioned entries are cached, so a request is pure pooled
// sampling rounds. The acceptance bar for this PR is ≥3× cheaper per
// request than BenchmarkDeltaColdPrepare.
func BenchmarkDeltaReuse(b *testing.B) {
	ctx := context.Background()
	svc, err := service.New(service.Config{ApproxMCRounds: 15})
	if err != nil {
		b.Fatal(err)
	}
	res, err := svc.Sample(ctx, service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	base := res.Fingerprint
	// One warm-up pass over the rotation: the first request per
	// assumption set conditions the base on a pooled session; steady
	// state — what a client issuing repeated delta requests sees — is
	// cached conditioned entries and pure sampling rounds.
	for _, assumps := range benchAssumptionSets {
		if _, err := svc.Sample(ctx, service.SampleRequest{Base: base, Assumptions: assumps, N: 1, Seed: 5}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := service.SampleRequest{Base: base, Assumptions: benchAssumptionSets[i%len(benchAssumptionSets)], N: 1, Seed: 5}
		if _, err := svc.Sample(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := svc.Stats(); st.Delta.Served < int64(b.N) {
		b.Fatal(fmt.Sprintf("only %d of %d requests served through the delta path", st.Delta.Served, b.N))
	}
}
