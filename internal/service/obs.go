package service

import (
	"context"
	"errors"
	"log/slog"
	"sync/atomic"
	"time"

	"unigen/internal/core"
	"unigen/internal/obs"
	"unigen/internal/store"
)

// Observability wiring (DESIGN §10): every counter the service and the
// layers below it already kept — admission gate, outcome tallies,
// cache hit/miss, solver-work deltas — feeds one obs.Registry rendered
// at GET /metrics, and every request carries an obs.Trace whose span
// tree (admission / prepare / rounds / per-round cells) is surfaced
// via the X-Unigen-Trace header, the optional "trace" JSON echo, the
// slow-request log record, and the GET /debug/requests ring.

// SolverTotals aggregates solver work over many requests or
// preparation flights — the cumulative view /stats lost when
// core.Stats was computed per request and dropped. ArenaBytes is a
// gauge (largest footprint any contributing session reported); all
// other fields are monotone counters.
type SolverTotals struct {
	Requests     int64 `json:"requests"` // contributing finished requests / flights
	Rounds       int64 `json:"rounds"`
	Samples      int64 `json:"samples"`
	Failures     int64 `json:"failures"`
	BSATCalls    int64 `json:"bsat_calls"`
	Conflicts    int64 `json:"conflicts"`
	Propagations int64 `json:"propagations"`
	XORRows      int64 `json:"xor_rows"`
	Learned      int64 `json:"learned"`
	Removed      int64 `json:"removed"`
	Compactions  int64 `json:"compactions"`
	ArenaBytes   int64 `json:"arena_bytes"`
	// Inprocessing / CDCL-heuristic counters; zero unless the
	// corresponding solver knobs are enabled.
	VivifiedLits     int64 `json:"vivified_lits"`
	SubsumedLearnts  int64 `json:"subsumed_learnts"`
	ProbedLits       int64 `json:"probed_lits"`
	FailedLits       int64 `json:"failed_lits"`
	Rephases         int64 `json:"rephases"`
	ChronoBacktracks int64 `json:"chrono_backtracks"`
}

// workTotals is the atomic backing of SolverTotals. add folds one
// request's (or flight's) core.Stats in; every field is independent,
// so a torn read across fields only skews a scrape by an in-flight
// request — acceptable for monitoring, race-free by construction.
type workTotals struct {
	requests         atomic.Int64
	rounds           atomic.Int64
	samples          atomic.Int64
	failures         atomic.Int64
	bsatCalls        atomic.Int64
	conflicts        atomic.Int64
	propagations     atomic.Int64
	xorRows          atomic.Int64
	learned          atomic.Int64
	removed          atomic.Int64
	compactions      atomic.Int64
	arenaBytes       atomic.Int64 // max, not sum
	vivifiedLits     atomic.Int64
	subsumedLearnts  atomic.Int64
	probedLits       atomic.Int64
	failedLits       atomic.Int64
	rephases         atomic.Int64
	chronoBacktracks atomic.Int64
}

func (w *workTotals) add(st core.Stats) {
	w.requests.Add(1)
	w.rounds.Add(st.Rounds())
	w.samples.Add(st.Samples)
	w.failures.Add(st.Failures)
	w.bsatCalls.Add(st.BSATCalls)
	w.conflicts.Add(st.Conflicts)
	w.propagations.Add(st.Propagations)
	w.xorRows.Add(st.XORRows)
	w.learned.Add(st.Learned)
	w.removed.Add(st.Removed)
	w.compactions.Add(st.Compactions)
	w.vivifiedLits.Add(st.VivifiedLits)
	w.subsumedLearnts.Add(st.SubsumedLearnts)
	w.probedLits.Add(st.ProbedLits)
	w.failedLits.Add(st.FailedLits)
	w.rephases.Add(st.Rephases)
	w.chronoBacktracks.Add(st.ChronoBacktracks)
	for {
		cur := w.arenaBytes.Load()
		if st.ArenaBytes <= cur || w.arenaBytes.CompareAndSwap(cur, st.ArenaBytes) {
			break
		}
	}
}

func (w *workTotals) snapshot() SolverTotals {
	return SolverTotals{
		Requests:         w.requests.Load(),
		Rounds:           w.rounds.Load(),
		Samples:          w.samples.Load(),
		Failures:         w.failures.Load(),
		BSATCalls:        w.bsatCalls.Load(),
		Conflicts:        w.conflicts.Load(),
		Propagations:     w.propagations.Load(),
		XORRows:          w.xorRows.Load(),
		Learned:          w.learned.Load(),
		Removed:          w.removed.Load(),
		Compactions:      w.compactions.Load(),
		ArenaBytes:       w.arenaBytes.Load(),
		VivifiedLits:     w.vivifiedLits.Load(),
		SubsumedLearnts:  w.subsumedLearnts.Load(),
		ProbedLits:       w.probedLits.Load(),
		FailedLits:       w.failedLits.Load(),
		Rephases:         w.rephases.Load(),
		ChronoBacktracks: w.chronoBacktracks.Load(),
	}
}

// serviceMetrics holds the owned (hot-path) metric instruments; the
// families derived from existing stats sources are registered as
// scrape-time collectors and need no struct fields.
type serviceMetrics struct {
	requests     *obs.CounterVec   // unigen_requests_total{endpoint,outcome}
	reqSeconds   *obs.HistogramVec // unigen_request_seconds{endpoint}
	phaseSeconds *obs.HistogramVec // unigen_phase_seconds{phase}
	witnesses    *obs.Counter      // unigen_witnesses_total
	prepares     *obs.CounterVec   // unigen_prepare_flights_total{result}
}

// solverSamples renders the two solver-work phases of a SolverTotals
// pair as one labeled family.
func solverSamples(pick func(SolverTotals) int64, sample, prepare SolverTotals) []obs.Sample {
	return []obs.Sample{
		{LabelValues: []string{"sample"}, Value: float64(pick(sample))},
		{LabelValues: []string{"prepare"}, Value: float64(pick(prepare))},
	}
}

// newServiceMetrics registers every metric family against s. Owned
// instruments are returned; collected families close over the
// service's existing counters so a scrape always reflects the same
// numbers /stats reports.
func newServiceMetrics(s *Service) *serviceMetrics {
	r := s.reg
	m := &serviceMetrics{
		requests:     r.NewCounterVec("unigen_requests_total", "Finished requests by endpoint and outcome.", "endpoint", "outcome"),
		reqSeconds:   r.NewHistogramVec("unigen_request_seconds", "End-to-end request latency in seconds.", nil, "endpoint"),
		phaseSeconds: r.NewHistogramVec("unigen_phase_seconds", "Latency of request phases: prepare (full preparation flights) and rounds (hash-constrained sampling).", nil, "phase"),
		witnesses:    r.NewCounter("unigen_witnesses_total", "Witnesses returned across all sample requests."),
		prepares:     r.NewCounterVec("unigen_prepare_flights_total", "Preparation flights by result.", "result"),
	}

	// Cache (DESIGN §8): cumulative hit/miss/eviction counters plus the
	// current size against capacity.
	r.CollectCounters("unigen_cache_requests_total", "Prepared-formula cache lookups by result.", []string{"result"}, func() []obs.Sample {
		hits, misses, evictions, _ := s.cache.counts()
		return []obs.Sample{
			{LabelValues: []string{"hit"}, Value: float64(hits)},
			{LabelValues: []string{"miss"}, Value: float64(misses)},
			{LabelValues: []string{"eviction"}, Value: float64(evictions)},
		}
	})
	r.CollectGauges("unigen_cache_size", "Prepared formulas currently cached.", nil, func() []obs.Sample {
		_, _, _, size := s.cache.counts()
		return []obs.Sample{{Value: float64(size)}}
	})
	r.CollectGauges("unigen_cache_capacity", "Prepared-formula cache capacity (LRU bound).", nil, func() []obs.Sample {
		return []obs.Sample{{Value: float64(s.cfg.CacheSize)}}
	})

	// Persistent store (DESIGN §12): disk-tier counters, registered only
	// when the tier exists so a store-less deployment's scrape stays
	// exactly as before. Each family closes over Store.Stats, the same
	// source /stats reports.
	if s.store != nil {
		storeCounter := func(name, help string, pick func(store.Stats) int64) {
			r.CollectCounters(name, help, nil, func() []obs.Sample {
				return []obs.Sample{{Value: float64(pick(s.store.Stats()))}}
			})
		}
		storeCounter("unigen_store_hits_total", "Disk-tier lookups that served a valid entry.",
			func(t store.Stats) int64 { return t.Hits })
		storeCounter("unigen_store_misses_total", "Disk-tier lookups that fell through to a cold prepare.",
			func(t store.Stats) int64 { return t.Misses })
		storeCounter("unigen_store_writes_total", "Prepared formulas persisted by the write-behind queue.",
			func(t store.Stats) int64 { return t.Writes })
		storeCounter("unigen_store_write_errors_total", "Store writes dropped (queue overflow or I/O failure).",
			func(t store.Stats) int64 { return t.WriteErrors })
		storeCounter("unigen_store_evictions_total", "Store entries removed by the size-cap scan.",
			func(t store.Stats) int64 { return t.Evictions })
		storeCounter("unigen_store_corrupt_entries_total", "Store entries quarantined as corrupt, truncated, or version-skewed.",
			func(t store.Stats) int64 { return t.CorruptEntries })
		r.CollectGauges("unigen_store_bytes", "Total size of live persistent-store entries.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.store.Stats().Bytes)}}
		})
	}

	// Admission gate (DESIGN §9): live occupancy and the shed counters,
	// split by reason exactly as AdmissionStats reports them.
	r.CollectGauges("unigen_inflight_requests", "Requests currently admitted (slots occupied).", nil, func() []obs.Sample {
		return []obs.Sample{{Value: float64(s.adm.snapshot().InFlight)}}
	})
	r.CollectGauges("unigen_admission_queued", "Requests currently waiting for an admission slot.", nil, func() []obs.Sample {
		return []obs.Sample{{Value: float64(s.adm.queued.Load())}}
	})
	r.CollectGauges("unigen_admission_queue_high_water", "High-water mark of the admission wait queue.", nil, func() []obs.Sample {
		return []obs.Sample{{Value: float64(s.adm.maxQueued.Load())}}
	})
	r.CollectCounters("unigen_admission_shed_total", "Requests shed by the admission gate, by reason.", []string{"reason"}, func() []obs.Sample {
		return []obs.Sample{
			{LabelValues: []string{"queue_full"}, Value: float64(s.adm.shedFull.Load())},
			{LabelValues: []string{"queue_wait"}, Value: float64(s.adm.shedWait.Load())},
			{LabelValues: []string{"tenant_quota"}, Value: float64(s.adm.shedTenant.Load())},
		}
	})

	// Solver-work totals, the cumulative view of core.Stats across
	// finished requests (phase="sample") and preparation flights
	// (phase="prepare").
	type picker struct {
		name, help string
		pick       func(SolverTotals) int64
	}
	for _, p := range []picker{
		{"unigen_solver_bsat_calls_total", "Bounded-enumeration solver calls.", func(t SolverTotals) int64 { return t.BSATCalls }},
		{"unigen_solver_conflicts_total", "CDCL conflicts.", func(t SolverTotals) int64 { return t.Conflicts }},
		{"unigen_solver_propagations_total", "Unit propagations.", func(t SolverTotals) int64 { return t.Propagations }},
		{"unigen_solver_xor_rows_total", "Hash XOR rows issued.", func(t SolverTotals) int64 { return t.XORRows }},
		{"unigen_solver_learned_total", "Clauses learned.", func(t SolverTotals) int64 { return t.Learned }},
		{"unigen_solver_removed_total", "Learned clauses reclaimed (reduceDB + session GC).", func(t SolverTotals) int64 { return t.Removed }},
		{"unigen_solver_compactions_total", "Clause-arena GC compactions.", func(t SolverTotals) int64 { return t.Compactions }},
		{"unigen_solver_vivified_literals_total", "Literals removed by vivification and learnt strengthening.", func(t SolverTotals) int64 { return t.VivifiedLits }},
		{"unigen_solver_subsumed_learnts_total", "Learnt clauses deleted as subsumed.", func(t SolverTotals) int64 { return t.SubsumedLearnts }},
		{"unigen_solver_probed_literals_total", "Level-0 failed-literal probes attempted.", func(t SolverTotals) int64 { return t.ProbedLits }},
		{"unigen_solver_failed_literals_total", "Failed-literal probes that yielded level-0 units.", func(t SolverTotals) int64 { return t.FailedLits }},
		{"unigen_solver_rephases_total", "Decision-polarity source rotations.", func(t SolverTotals) int64 { return t.Rephases }},
		{"unigen_solver_chrono_backtracks_total", "Backjumps converted to chronological backtracks.", func(t SolverTotals) int64 { return t.ChronoBacktracks }},
		{"unigen_sampling_rounds_total", "Sampling rounds consumed (successes + bot outcomes).", func(t SolverTotals) int64 { return t.Rounds }},
	} {
		pick := p.pick
		r.CollectCounters(p.name, p.help, []string{"phase"}, func() []obs.Sample {
			return solverSamples(pick, s.work.snapshot(), s.prep.snapshot())
		})
	}
	r.CollectGauges("unigen_solver_arena_bytes", "Largest clause-arena footprint any session reported.", []string{"phase"}, func() []obs.Sample {
		return solverSamples(func(t SolverTotals) int64 { return t.ArenaBytes }, s.work.snapshot(), s.prep.snapshot())
	})

	// Delta sessions (DESIGN §13): request outcomes plus the session-pool
	// fleet — check-out hit/miss, retirements, and the idle gauge.
	r.CollectCounters("unigen_delta_requests_total", "Delta (base + assumptions) requests by result.", []string{"result"}, func() []obs.Sample {
		return []obs.Sample{
			{LabelValues: []string{"served"}, Value: float64(s.delta.served.Load())},
			{LabelValues: []string{"unknown_base"}, Value: float64(s.delta.unknownBase.Load())},
			{LabelValues: []string{"diverged"}, Value: float64(s.delta.diverged.Load())},
		}
	})
	r.CollectCounters("unigen_session_pool_events_total", "Session-pool check-out/check-in events by kind across all per-base pools.", []string{"event"}, func() []obs.Sample {
		return []obs.Sample{
			{LabelValues: []string{"hit"}, Value: float64(s.poolTot.hits.Load())},
			{LabelValues: []string{"miss"}, Value: float64(s.poolTot.misses.Load())},
			{LabelValues: []string{"retired"}, Value: float64(s.poolTot.retired.Load())},
		}
	})
	r.CollectGauges("unigen_session_pool_idle", "Sessions currently parked across all per-base pools.", nil, func() []obs.Sample {
		return []obs.Sample{{Value: float64(s.poolTot.idle.Load())}}
	})

	// Process-level: uptime, build identity, and the debug ring volume.
	r.CollectGauges("unigen_uptime_seconds", "Seconds since the service was constructed.", nil, func() []obs.Sample {
		return []obs.Sample{{Value: time.Since(s.start).Seconds()}}
	})
	r.CollectGauges("unigen_build_info", "Build identity (constant 1; the labels carry the info).", []string{"version", "go"}, func() []obs.Sample {
		v, gov := obs.BuildVersion()
		return []obs.Sample{{LabelValues: []string{v, gov}, Value: 1}}
	})
	r.CollectCounters("unigen_slow_requests_total", "Requests recorded in the slow-request debug ring.", nil, func() []obs.Sample {
		return []obs.Sample{{Value: float64(s.ring.Total())}}
	})
	return m
}

// outcomeName classifies a finished request's error into the outcome
// vocabulary shared by OutcomeStats, the unigen_requests_total metric,
// structured logs, and the debug ring.
func outcomeName(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrOverloaded):
		return "shed"
	case errors.Is(err, ErrDraining):
		return "drained"
	case errors.Is(err, ErrDeadline), errors.Is(err, ErrClientTimeout), errors.Is(err, core.ErrBudget):
		return "timeout"
	case errors.Is(err, ErrPanic), isRoundPanic(err):
		return "panic"
	case errors.Is(err, ErrUnknownBase):
		return "unknown_base"
	case errors.Is(err, ErrInvalidRequest), errors.Is(err, core.ErrUnsat):
		return "invalid"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "error"
	}
}

// reqObs carries one request's observability through its lifetime:
// the trace, the wall clock, and the attribution fields the epilogue
// logs and records. startRequest installs the trace into the request
// context (reusing one the transport already created, so the HTTP
// layer and the service always share a single span tree).
type reqObs struct {
	s        *Service
	endpoint string
	tenant   string
	tr       *obs.Trace
	start    time.Time

	// Filled in as the request progresses.
	n           int
	fingerprint string
	cacheHit    bool
	witnesses   int
}

func (s *Service) startRequest(ctx context.Context, endpoint, tenant string) (context.Context, *reqObs) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	return ctx, &reqObs{s: s, endpoint: endpoint, tenant: tenant, tr: tr, start: time.Now()}
}

// finish is the request epilogue: outcome counters, latency
// histograms, the structured log record, and — for slow or genuinely
// failed requests — the debug ring. Shed and invalid requests stay out
// of the ring (an overload storm or a misbehaving client would flush
// the interesting entries), but still count everywhere else.
func (ro *reqObs) finish(err error) {
	s := ro.s
	out := outcomeName(err)
	s.out.add(out)
	ro.tr.Root().End()
	dur := time.Since(ro.start)
	s.met.requests.With(ro.endpoint, out).Inc()
	s.met.reqSeconds.With(ro.endpoint).ObserveDuration(dur)

	slow := s.slowThreshold() > 0 && dur >= s.slowThreshold()
	ringWorthy := slow || (err != nil && out != "shed" && out != "invalid")
	if ringWorthy {
		rec := obs.RequestRecord{
			TraceID:     ro.tr.ID(),
			Time:        ro.start,
			Endpoint:    ro.endpoint,
			Tenant:      ro.tenant,
			Fingerprint: ro.fingerprint,
			Outcome:     out,
			Duration:    dur,
			N:           ro.n,
			CacheHit:    ro.cacheHit,
			Trace:       ro.tr.Snapshot(),
		}
		if err != nil {
			rec.Error = err.Error()
		}
		s.ring.Add(rec)
	}

	if lg := s.logger; lg != nil {
		attrs := []slog.Attr{
			slog.String("request_id", ro.tr.ID()),
			slog.String("endpoint", ro.endpoint),
			slog.String("tenant", ro.tenant),
			slog.String("fingerprint", ro.fingerprint),
			slog.String("outcome", out),
			slog.Duration("duration", dur),
			slog.Bool("cache_hit", ro.cacheHit),
		}
		if ro.endpoint == "sample" {
			attrs = append(attrs, slog.Int("n", ro.n), slog.Int("witnesses", ro.witnesses))
		}
		if err != nil {
			attrs = append(attrs, slog.String("error", err.Error()))
		}
		level := slog.LevelInfo
		msg := "request"
		if slow {
			// The slow-request record carries the full span breakdown,
			// so "where did the time go" is answerable from one line.
			level = slog.LevelWarn
			msg = "slow request"
			attrs = append(attrs, slog.Any("trace", ro.tr.Snapshot()))
		}
		lg.LogAttrs(context.Background(), level, msg, attrs...)
	}
}

// slowThreshold resolves Config.SlowRequest: 0 defaults to 1s,
// negative disables slow-request handling entirely.
func (s *Service) slowThreshold() time.Duration {
	if s.cfg.SlowRequest == 0 {
		return time.Second
	}
	if s.cfg.SlowRequest < 0 {
		return 0
	}
	return s.cfg.SlowRequest
}

// Registry exposes the metrics registry (the backing of GET /metrics)
// for embedders that mount their own scrape endpoint or add their own
// families alongside the service's.
func (s *Service) Registry() *obs.Registry { return s.reg }

// DebugRequests returns the retained slow/failed request records,
// newest first — the backing of GET /debug/requests.
func (s *Service) DebugRequests() []obs.RequestRecord { return s.ring.Snapshot() }

// Uptime reports how long the service has existed.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }
