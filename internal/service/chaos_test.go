package service_test

// The chaos suite: every robustness claim of DESIGN §9, exercised under
// injected faults (internal/faultpoint) and the race detector. Faults
// are process-global, so none of these tests may call t.Parallel; each
// resets the registry on cleanup.

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"unigen/internal/faultpoint"
	"unigen/internal/parallel"
	"unigen/internal/service"
)

var errInjectedUnsat = errors.New("injected spurious unsat")

// checkGoroutines snapshots the goroutine count and returns a func that
// fails the test if the count has not returned to (near) the baseline —
// the drain/overload paths must not strand workers, watchers, or
// abandoned preparation flights.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			now := runtime.NumGoroutine()
			if now <= before+2 { // slack for runtime/test plumbing
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// waitInFlight polls until the admission gate reports exactly n
// admitted requests (requires MaxInFlight > 0).
func waitInFlight(t *testing.T, svc *service.Service, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().Admission.InFlight != n {
		if time.Now().After(deadline) {
			t.Fatalf("admission gate never reached %d in flight: %+v", n, svc.Stats().Admission)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosOverload is the acceptance scenario: 4× capacity of
// concurrent clients against a gated service with slow preparations and
// stalling solver calls. The service must shed the excess as
// ErrOverloaded, keep the queue within its bound, serve the survivors
// witnesses bit-identical to an unloaded run, and recover fully once
// the faults clear.
func TestChaosOverload(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	leak := checkGoroutines(t)

	// Unloaded reference, one per client seed, on a pristine service.
	const clients = 16
	refSvc := newService(t, service.Config{ApproxMCRounds: 15})
	refs := make([][]string, clients)
	for i := range refs {
		res, err := refSvc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 2, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = projectAll(t, res)
	}

	svc := newService(t, service.Config{
		ApproxMCRounds: 15,
		MaxInFlight:    2,
		MaxQueue:       2,
		QueueWait:      250 * time.Millisecond,
	})
	// Slow the cold path (one single-flight preparation all survivors
	// share) and every solver call; neither fault changes results, only
	// timing, so the bit-identical contract must hold.
	faultpoint.Arm(faultpoint.PrepareSlow, faultpoint.Fault{Delay: 300 * time.Millisecond})
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Millisecond})

	start := make(chan struct{})
	results := make([]*service.SampleResult, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = svc.Sample(context.Background(), service.SampleRequest{
				Formula: hardFormula(),
				N:       2,
				Seed:    uint64(i),
			})
		}(i)
	}
	close(start)
	wg.Wait()

	ok, shed := 0, 0
	for i := range errs {
		switch {
		case errs[i] == nil:
			ok++
			if !reflect.DeepEqual(projectAll(t, results[i]), refs[i]) {
				t.Errorf("client %d survived overload but its witnesses differ from the unloaded run", i)
			}
		case errors.Is(errs[i], service.ErrOverloaded):
			shed++
		default:
			t.Errorf("client %d: unexpected error %v", i, errs[i])
		}
	}
	if ok == 0 || shed == 0 || ok+shed != clients {
		t.Fatalf("outcomes ok=%d shed=%d of %d: overload must shed some and serve some", ok, shed, clients)
	}

	st := svc.Stats()
	if st.Admission.MaxQueued > 2 {
		t.Fatalf("queue depth high-water %d exceeded the bound 2", st.Admission.MaxQueued)
	}
	if st.Outcomes.OK != int64(ok) || st.Outcomes.Shed != int64(shed) {
		t.Fatalf("outcome counters %+v disagree with observed ok=%d shed=%d", st.Outcomes, ok, shed)
	}

	// Faults cleared: the node serves again, bit-identically, and
	// reports ok health.
	faultpoint.Reset()
	res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 2, Seed: 3})
	if err != nil || !reflect.DeepEqual(projectAll(t, res), refs[3]) {
		t.Fatalf("post-chaos request: err=%v, witnesses must match the unloaded run", err)
	}
	if h := svc.Health(); h != service.HealthOK {
		t.Fatalf("health after recovery = %q, want ok", h)
	}
	leak()
}

// TestChaosServerDeadline: a solver stall far beyond DefaultTimeout
// must be cut short by the server budget — the request fails with
// ErrDeadline (503: the server's policy, not the client's fault) and
// stops consuming CPU, and the service stays usable.
func TestChaosServerDeadline(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	// Generous enough for the (unstalled) warm-up preparation even under
	// the race detector; the minute-long stall below still dwarfs it.
	svc := newService(t, service.Config{ApproxMCRounds: 15, DefaultTimeout: 2 * time.Second})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1}); err != nil {
		t.Fatal(err) // warm: the deadline must land mid-sampling, not mid-prepare
	}
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})
	start := time.Now()
	_, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 5, Seed: 2})
	if !errors.Is(err, service.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline-struck request took %v to return", elapsed)
	}
	if o := svc.Stats().Outcomes; o.Timeout == 0 {
		t.Fatalf("outcomes %+v recorded no timeout", o)
	}
	faultpoint.Reset()
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 3}); err != nil {
		t.Fatalf("service unusable after deadline strike: %v", err)
	}
}

// TestChaosClientTimeout: the same stall against the request's OWN
// deadline yields ErrClientTimeout — the budget the client supplied ran
// out, a 422, not a 503.
func TestChaosClientTimeout(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})
	_, err := svc.Sample(context.Background(), service.SampleRequest{
		Formula: hardFormula(), N: 5, Seed: 2, Timeout: 150 * time.Millisecond,
	})
	if !errors.Is(err, service.ErrClientTimeout) {
		t.Fatalf("err = %v, want ErrClientTimeout", err)
	}
	if errors.Is(err, service.ErrDeadline) {
		t.Fatal("client timeout misattributed to the server deadline")
	}
}

// TestChaosPrepareTimeout: PrepareTimeout caps a stalled preparation —
// the flight's solver interrupt fires at the deadline, the flight fails
// with ErrDeadline, and nothing is cached.
func TestChaosPrepareTimeout(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc := newService(t, service.Config{ApproxMCRounds: 15, PrepareTimeout: 100 * time.Millisecond})
	faultpoint.Arm(faultpoint.PrepareSlow, faultpoint.Fault{Delay: time.Minute})
	start := time.Now()
	_, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1})
	if !errors.Is(err, service.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("capped preparation took %v to fail", elapsed)
	}
	if st := svc.Stats(); st.Size != 0 {
		t.Fatalf("timed-out preparation was cached: %+v", st.CacheStats)
	}
	// The service stays usable: a preparation that fits the cap (the
	// easy case runs no ApproxMC) succeeds after the fault clears.
	faultpoint.Reset()
	res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: easyFormula(5), N: 1, Seed: 1})
	if err != nil || res.CacheHit {
		t.Fatalf("preparation after timeout strike: err=%v hit=%v", err, res != nil && res.CacheHit)
	}
}

// TestChaosPreparePanicIsolated: a preparation crash must fail the
// initiating request AND every single-flight co-waiter with ErrPanic,
// leave the cache unpoisoned, and let the next request re-prepare
// cleanly.
func TestChaosPreparePanicIsolated(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	leak := checkGoroutines(t)
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	faultpoint.Arm(faultpoint.PreparePanic, faultpoint.Fault{Panic: "injected prepare crash"})

	const clients = 4
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: uint64(i)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, service.ErrPanic) {
			t.Fatalf("client %d: err = %v, want ErrPanic", i, err)
		}
	}
	if st := svc.Stats(); st.Size != 0 {
		t.Fatalf("panicking preparation was cached: %+v", st.CacheStats)
	}
	if o := svc.Stats().Outcomes; o.Panic != clients {
		t.Fatalf("outcomes %+v, want %d panics", o, clients)
	}

	faultpoint.Reset()
	res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 0})
	if err != nil || res.CacheHit {
		t.Fatalf("recovery request: err=%v hit=%v, want clean re-preparation", err, res != nil && res.CacheHit)
	}
	leak()
}

// TestChaosRoundPanic: a panic inside one sampling round (below the
// worker pool) must fail that request with ErrRoundPanic — not kill the
// process, not deadlock the collector — and must not disturb the cached
// setup.
func TestChaosRoundPanic(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc := newService(t, service.Config{ApproxMCRounds: 15, Workers: 2})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	faultpoint.Arm(faultpoint.RoundPanic, faultpoint.Fault{Panic: "injected round crash", Count: 1})
	_, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 4, Seed: 2})
	if !errors.Is(err, parallel.ErrRoundPanic) {
		t.Fatalf("err = %v, want ErrRoundPanic (recovered round crash)", err)
	}
	// The fault is exhausted (Count: 1); the cached setup must serve the
	// retry untouched.
	res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 4, Seed: 2})
	if err != nil || !res.CacheHit || len(res.Witnesses) != 4 {
		t.Fatalf("retry after round panic: err=%v hit=%v n=%d", err, res != nil && res.CacheHit, len(res.Witnesses))
	}
	if o := svc.Stats().Outcomes; o.Panic != 1 {
		t.Fatalf("outcomes %+v, want exactly 1 panic", o)
	}
}

// TestChaosSpuriousUnsat: a solver call that spuriously reports an
// empty cell must read as one ⊥ round — the request retries further
// rounds and still succeeds.
func TestChaosSpuriousUnsat(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	faultpoint.Arm(faultpoint.SolverUnsat, faultpoint.Fault{Err: errInjectedUnsat, Count: 1})
	res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 3, Seed: 2})
	if err != nil || len(res.Witnesses) != 3 {
		t.Fatalf("request under spurious unsat: err=%v n=%d, want 3 witnesses", err, len(res.Witnesses))
	}
	if faultpoint.Fired(faultpoint.SolverUnsat) != 1 {
		t.Fatal("the spurious-unsat fault never fired; the test asserted nothing")
	}
}

// TestChaosRequestPanic: the request-boundary recover converts a crash
// at the top of Sample into ErrPanic (the HTTP 500 path) without
// touching the cache.
func TestChaosRequestPanic(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	faultpoint.Arm(faultpoint.RequestPanic, faultpoint.Fault{Panic: "injected request crash", Count: 1})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: easyFormula(0), N: 1, Seed: 1}); !errors.Is(err, service.ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: easyFormula(0), N: 1, Seed: 1}); err != nil {
		t.Fatalf("service unusable after request panic: %v", err)
	}
}

// TestChaosTenantQuota: one tenant monopolizing the node is shed at its
// quota while the gate still has capacity for others.
func TestChaosTenantQuota(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	leak := checkGoroutines(t)
	svc := newService(t, service.Config{ApproxMCRounds: 15, MaxInFlight: 4, TenantQuota: 1})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})

	ctx, cancel := context.WithCancel(context.Background())
	stalled := make(chan error, 1)
	go func() {
		_, err := svc.Sample(ctx, service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 2, Tenant: "acme"})
		stalled <- err
	}()
	waitInFlight(t, svc, 1)

	_, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 3, Tenant: "acme"})
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("second acme request: err = %v, want ErrOverloaded (quota)", err)
	}
	if st := svc.Stats().Admission; st.ShedTenant != 1 {
		t.Fatalf("admission %+v, want 1 tenant shed", st)
	}

	cancel()
	if err := <-stalled; !errors.Is(err, context.Canceled) {
		t.Fatalf("stalled acme request: err = %v, want context.Canceled", err)
	}
	leak()
}

// TestChaosHealthOverloaded: /healthz must degrade to "overloaded" once
// the wait queue is half full — before shedding starts — and return to
// "ok" when the pressure clears.
func TestChaosHealthOverloaded(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	leak := checkGoroutines(t)
	svc := newService(t, service.Config{
		ApproxMCRounds: 15,
		MaxInFlight:    1,
		MaxQueue:       2,
		QueueWait:      time.Minute,
	})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if h := svc.Health(); h != service.HealthOK {
		t.Fatalf("idle health = %q, want ok", h)
	}
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	for i := 0; i < 2; i++ { // one admitted + stalled, one queued
		go func(seed uint64) {
			_, _ = svc.Sample(ctx, service.SampleRequest{Formula: hardFormula(), N: 1, Seed: seed})
			done <- struct{}{}
		}(uint64(i + 2))
	}

	deadline := time.Now().Add(10 * time.Second)
	for svc.Health() != service.HealthOverloaded {
		if time.Now().After(deadline) {
			t.Fatalf("health never degraded to overloaded: %+v", svc.Stats().Admission)
		}
		time.Sleep(2 * time.Millisecond)
	}

	cancel()
	<-done
	<-done
	deadline = time.Now().Add(10 * time.Second)
	for svc.Health() != service.HealthOK {
		if time.Now().After(deadline) {
			t.Fatalf("health stuck at %q after pressure cleared", svc.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
	leak()
}

// TestChaosDrain: Close under load. In-flight requests stalled far past
// the drain deadline must be interrupted and fail with ErrDraining,
// Close must return promptly with ctx.Err(), new requests must be
// rejected, and nothing may leak.
func TestChaosDrain(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	leak := checkGoroutines(t)
	svc := newService(t, service.Config{ApproxMCRounds: 15, MaxInFlight: 4})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})

	const stragglers = 3
	errCh := make(chan error, stragglers)
	for i := 0; i < stragglers; i++ {
		go func(seed uint64) {
			_, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: seed})
			errCh <- err
		}(uint64(i + 2))
	}
	waitInFlight(t, svc, stragglers)

	dctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := svc.Close(dctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want DeadlineExceeded (stragglers were interrupted)", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("Close took %v against a 200ms deadline", elapsed)
	}
	for i := 0; i < stragglers; i++ {
		if err := <-errCh; !errors.Is(err, service.ErrDraining) {
			t.Fatalf("straggler %d: err = %v, want ErrDraining", i, err)
		}
	}
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 9}); !errors.Is(err, service.ErrDraining) {
		t.Fatalf("post-drain request: err = %v, want ErrDraining", err)
	}
	if h := svc.Health(); h != service.HealthDraining {
		t.Fatalf("health = %q, want draining", h)
	}
	if o := svc.Stats().Outcomes; o.Drained < stragglers {
		t.Fatalf("outcomes %+v, want at least %d drained", o, stragglers)
	}
	leak()
}

// TestChaosCleanDrain: with nothing in flight, Close returns nil
// immediately; a second Close is a harmless no-op.
func TestChaosCleanDrain(t *testing.T) {
	svc := newService(t, service.Config{})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: easyFormula(0), N: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := svc.Close(ctx); err != nil {
			t.Fatalf("Close #%d = %v, want nil (idle drain)", i+1, err)
		}
		cancel()
	}
}

// TestChaosStallInterruptExactness pins the mechanism the other tests
// rely on: an injected stall must honor the solver interrupt within
// milliseconds of it being raised (via a cancelled request), exactly as
// a real interrupted search would.
func TestChaosStallInterruptExactness(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := svc.Sample(ctx, service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("interrupting a stalled solver call took %v", elapsed)
	}
	if fired := faultpoint.Fired(faultpoint.SolverStall); fired == 0 {
		t.Fatal("the stall never fired; the test asserted nothing")
	}
}

// TestChaosOutcomeAccounting drives one request of each class through a
// single service and checks the per-outcome totals add up — the /stats
// numbers operators will alert on.
func TestChaosOutcomeAccounting(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc := newService(t, service.Config{ApproxMCRounds: 15, MaxInFlight: 1, MaxQueue: 0, TenantQuota: 1})
	ctx := context.Background()

	if _, err := svc.Sample(ctx, service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1}); err != nil {
		t.Fatal(err) // ok += 1
	}
	if _, err := svc.Sample(ctx, service.SampleRequest{Formula: hardFormula(), N: 0, Seed: 1}); err == nil {
		t.Fatal("n=0 accepted") // invalid += 1
	}
	faultpoint.Arm(faultpoint.RequestPanic, faultpoint.Fault{Panic: "crash", Count: 1})
	if _, err := svc.Sample(ctx, service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 1}); !errors.Is(err, service.ErrPanic) {
		t.Fatalf("panic request: %v", err) // panic += 1
	}
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})
	if _, err := svc.Sample(ctx, service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 2, Timeout: 100 * time.Millisecond}); !errors.Is(err, service.ErrClientTimeout) {
		t.Fatalf("timeout request: %v", err) // timeout += 1
	}
	faultpoint.Reset()

	want := service.OutcomeStats{OK: 1, Invalid: 1, Panic: 1, Timeout: 1}
	if got := svc.Stats().Outcomes; got != want {
		t.Fatalf("outcomes %+v, want %+v", got, want)
	}
}
