package service_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"unigen/internal/cnf"
	"unigen/internal/service"
)

// hardFormula has 1024 witnesses over its 10-variable sampling set,
// forcing the hashing path at ε=6 (mirrors the parallel test fixture).
func hardFormula() *cnf.Formula {
	f := cnf.New(12)
	f.AddClause(11, 12)
	f.SamplingSet = []cnf.Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	return f
}

// easyFormula yields a distinct easy-case formula (cheap preparation,
// no ApproxMC) per tag: (x1 ∨ x2) plus a tag-dependent forced unit.
func easyFormula(tag int) *cnf.Formula {
	f := cnf.New(3 + tag)
	f.AddClause(1, 2)
	f.AddClause(3 + tag)
	return f
}

func newService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func projectAll(t *testing.T, res *service.SampleResult) []string {
	t.Helper()
	out := make([]string, len(res.Witnesses))
	for i, w := range res.Witnesses {
		out[i] = w.Project(res.Vars)
	}
	return out
}

// TestSingleFlightConcurrentRequests is the tentpole cache contract: 32
// concurrent requests for one formula must trigger exactly one
// preparation (one miss, 31 hits), and every request must get the
// correct, identical answer for its (seed, n).
func TestSingleFlightConcurrentRequests(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	f := hardFormula()
	const clients = 32
	results := make([]*service.SampleResult, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Sample(context.Background(), service.SampleRequest{
				Formula: f.Clone(), // distinct pointers: identity is the fingerprint
				N:       3,
				Seed:    42,
			})
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
	}
	ref := projectAll(t, results[0])
	hits := 0
	for i, res := range results {
		if !reflect.DeepEqual(projectAll(t, res), ref) {
			t.Fatalf("client %d: witnesses diverged for identical (formula, seed, n)", i)
		}
		if res.CacheHit {
			hits++
		}
		// Hit-path requests must show zero setup work: per-request stats
		// cover sampling rounds only.
		if res.Stats.SetupRounds != 0 {
			t.Fatalf("client %d: request stats report %d setup rounds", i, res.Stats.SetupRounds)
		}
	}
	st := svc.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d preparations ran, want exactly 1 (stats %+v)", st.Misses, st)
	}
	if st.Hits != clients-1 || hits != clients-1 {
		t.Fatalf("hits: counter=%d flags=%d, want %d", st.Hits, hits, clients-1)
	}
	if st.Size != 1 || len(st.Formulas) != 1 {
		t.Fatalf("cache size %d / %d formulas, want 1/1", st.Size, len(st.Formulas))
	}
	fs := st.Formulas[0]
	if fs.Requests != clients || fs.Samples != clients*3 {
		t.Fatalf("per-formula counters %+v, want %d requests / %d samples", fs, clients, clients*3)
	}
	if fs.Fingerprint != cnf.FingerprintString(f) {
		t.Fatalf("fingerprint mismatch: %s", fs.Fingerprint)
	}
}

// TestCacheHitSkipsPreparation pins the amortization claim in isolation:
// a warm second request reports a hit and runs no ApproxMC.
func TestCacheHitSkipsPreparation(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	cold, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	warm, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second request missed the cache")
	}
	if warm.Stats.SetupRounds != 0 {
		t.Fatalf("hit path ran %d ApproxMC rounds", warm.Stats.SetupRounds)
	}
	if st := svc.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 miss / 1 hit", st)
	}
}

// TestSeedReuseAcrossCache: a cached setup must serve other seeds with
// the samples a cold service would produce — the fingerprint-derived
// preparation RNG at work.
func TestSeedReuseAcrossCache(t *testing.T) {
	warmSvc := newService(t, service.Config{ApproxMCRounds: 15})
	// Warm the cache under seed 7, then query seed 99.
	if _, err := warmSvc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 2, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	warm, err := warmSvc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 4, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	coldSvc := newService(t, service.Config{ApproxMCRounds: 15})
	cold, err := coldSvc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 4, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(projectAll(t, warm), projectAll(t, cold)) {
		t.Fatal("cache-hit samples for seed 99 differ from a cold run")
	}
	if !warm.CacheHit || cold.CacheHit {
		t.Fatalf("hit flags: warm=%v cold=%v", warm.CacheHit, cold.CacheHit)
	}
}

// TestLRUEviction: with capacity 2, a third formula evicts the least
// recently used one, and re-requesting it re-prepares.
func TestLRUEviction(t *testing.T) {
	svc := newService(t, service.Config{CacheSize: 2})
	ctx := context.Background()
	for tag := 0; tag < 3; tag++ {
		if _, err := svc.Sample(ctx, service.SampleRequest{Formula: easyFormula(tag), N: 2, Seed: 1}); err != nil {
			t.Fatalf("formula %d: %v", tag, err)
		}
	}
	st := svc.Stats()
	if st.Misses != 3 || st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("after 3 formulas: %+v, want 3 misses / 1 eviction / size 2", st)
	}
	// Formula 1 is still cached (hit); formula 0 was evicted (miss).
	res, err := svc.Sample(ctx, service.SampleRequest{Formula: easyFormula(1), N: 1, Seed: 1})
	if err != nil || !res.CacheHit {
		t.Fatalf("formula 1: err=%v hit=%v, want cached", err, res.CacheHit)
	}
	res, err = svc.Sample(ctx, service.SampleRequest{Formula: easyFormula(0), N: 1, Seed: 1})
	if err != nil || res.CacheHit {
		t.Fatalf("formula 0: err=%v hit=%v, want re-prepared", err, res.CacheHit)
	}
	st = svc.Stats()
	if st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("after re-request: %+v, want 4 misses / 2 evictions", st)
	}
}

// TestCancellationMidRequest: cancelling a large sampling request must
// interrupt in-flight SAT search and fail with ctx.Err() promptly, and
// the service must stay usable.
func TestCancellationMidRequest(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15, Workers: 2})
	// Warm the cache so the cancellation below lands mid-SAMPLING, not
	// mid-preparation (the cold path has its own test).
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 1, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := svc.Sample(ctx, service.SampleRequest{Formula: hardFormula(), N: 100000, Seed: 3})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled request took %v to return", elapsed)
	}
	// The cached setup survives the aborted request.
	res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 2, Seed: 3})
	if err != nil || len(res.Witnesses) != 2 || !res.CacheHit {
		t.Fatalf("post-cancel request: err=%v hit=%v", err, res != nil && res.CacheHit)
	}
}

// TestColdPathCancellation: the request that INITIATES a preparation
// must also be cancellable — it cannot be pinned behind the ApproxMC
// setup it triggered. And once its last (here: only) waiter is gone,
// the flight must abort rather than burn an unbudgeted solver forever:
// the aborted preparation is not cached, and a later request simply
// re-prepares.
func TestColdPathCancellation(t *testing.T) {
	svc := newService(t, service.Config{}) // paper-default ApproxMC rounds: setup takes ~seconds
	f := cnf.New(18)                       // 2^16 projected witnesses
	f.AddClause(17, 18)
	f.SamplingSet = make([]cnf.Var, 16)
	for i := range f.SamplingSet {
		f.SamplingSet[i] = cnf.Var(i + 1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("initiating request took %v after its deadline", elapsed)
	}
	// The abandoned flight aborts via its solver interrupt and removes
	// its uncached entry.
	deadline := time.Now().Add(30 * time.Second)
	for svc.Stats().Size != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned flight still cached after %v: %+v", 30*time.Second, svc.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A fresh request re-prepares from scratch and succeeds.
	res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: f, N: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("aborted flight's result should not have been cached")
	}
	if st := svc.Stats(); st.Misses != 2 || st.Size != 1 {
		t.Fatalf("stats %+v, want 2 misses and the re-prepared entry cached", st)
	}
}

// TestCountUsesPreparedState: counts come from the prepared setup —
// exact in the easy case, and answered from cache on hits.
func TestCountUsesPreparedState(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15})
	ctx := context.Background()

	easy := cnf.New(2)
	easy.AddClause(1, 2) // exactly 3 witnesses
	res, err := svc.Count(ctx, service.CountRequest{Formula: easy})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Count.Int64() != 3 {
		t.Fatalf("easy count %v exact=%v, want exactly 3", res.Count, res.Exact)
	}

	hard := hardFormula() // 1024 projected witnesses: estimate path
	res, err = svc.Count(ctx, service.CountRequest{Formula: hard})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("hashing-path formula reported an exact count")
	}
	// ApproxMC at (0.8, 0.2) should be within a factor 1.8 of 1024.
	if c := res.Count.Int64(); c < 1024/2 || c > 1024*2 {
		t.Fatalf("estimate %d wildly off the exact 1024", c)
	}
	again, err := svc.Count(ctx, service.CountRequest{Formula: hard})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Count.Cmp(res.Count) != 0 {
		t.Fatalf("warm count hit=%v %v, want cached %v", again.CacheHit, again.Count, res.Count)
	}
	st := svc.Stats()
	for _, fs := range st.Formulas {
		if fs.Fingerprint == cnf.FingerprintString(hard) && fs.Counts != 2 {
			t.Fatalf("per-formula count counter %d, want 2", fs.Counts)
		}
	}
}

// TestUnsatFormula: preparation succeeds (easy case, zero witnesses),
// Count is exactly 0, Sample errors.
func TestUnsatFormula(t *testing.T) {
	svc := newService(t, service.Config{})
	f := cnf.New(1)
	f.AddClause(1)
	f.AddClause(-1)
	res, err := svc.Count(context.Background(), service.CountRequest{Formula: f})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Count.Sign() != 0 {
		t.Fatalf("unsat count %v exact=%v, want exactly 0", res.Count, res.Exact)
	}
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: f, N: 1, Seed: 1}); err == nil {
		t.Fatal("sampling an unsatisfiable formula succeeded")
	}
}

// TestValidation: bad requests fail fast.
func TestValidation(t *testing.T) {
	if _, err := service.New(service.Config{Epsilon: 1.0}); err == nil {
		t.Fatal("epsilon 1.0 accepted")
	}
	svc := newService(t, service.Config{})
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: easyFormula(0), N: 0, Seed: 1}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := svc.Sample(context.Background(), service.SampleRequest{N: 1}); err == nil {
		t.Fatal("nil formula accepted")
	}
}

// TestConcurrentMixedFormulas drives distinct formulas and seeds
// through one service concurrently (race-detector fodder) and checks
// every answer against a per-formula reference.
func TestConcurrentMixedFormulas(t *testing.T) {
	svc := newService(t, service.Config{ApproxMCRounds: 15, CacheSize: 8})
	formulas := []*cnf.Formula{easyFormula(0), easyFormula(1), hardFormula()}
	refs := make([]map[uint64][]string, len(formulas))
	for i, f := range formulas {
		refs[i] = map[uint64][]string{}
		for seed := uint64(0); seed < 3; seed++ {
			res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: f, N: 2, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			refs[i][seed] = projectAll(t, res)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 24)
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fi := g % len(formulas)
			seed := uint64(g % 3)
			res, err := svc.Sample(context.Background(), service.SampleRequest{Formula: formulas[fi].Clone(), N: 2, Seed: seed})
			if err != nil {
				errCh <- fmt.Errorf("goroutine %d: %w", g, err)
				return
			}
			if !reflect.DeepEqual(projectAll(t, res), refs[fi][seed]) {
				errCh <- fmt.Errorf("goroutine %d: witnesses diverged from reference", g)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
