package service_test

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"unigen/internal/service"
)

// newStoreService builds a service backed by the persistent store in
// dir, with the same preparation parameters every store test shares so
// their cache keys (and hence store entries) line up across restarts.
func newStoreService(t *testing.T, dir string) *service.Service {
	t.Helper()
	return newService(t, service.Config{ApproxMCRounds: 15, StoreDir: dir})
}

// closeSvc drains a service, which flushes the store's write-behind
// queue — the warm-restart contract depends on Close completing.
func closeSvc(t *testing.T, svc *service.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// setupEntries lists the store's live entry files (quarantined ones
// excluded).
func setupEntries(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.setup"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// TestStoreRestartRoundTrip is the tentpole acceptance test for the
// disk tier: prepare in one process-lifetime, restart onto the same
// directory, and the rehydrated Setup must serve bit-identical samples
// with zero preparation solver work.
func TestStoreRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	req := service.SampleRequest{Formula: hardFormula(), N: 8, Seed: 2014}

	// Lifetime 1: cold prepare (disk miss), write-behind on Close.
	svc1 := newStoreService(t, dir)
	res1, err := svc1.Sample(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ref := projectAll(t, res1)
	st1 := svc1.Stats()
	if !st1.Store.Enabled || st1.Store.Hits != 0 || st1.Store.Misses != 1 {
		t.Fatalf("lifetime 1 store stats %+v, want enabled with 1 miss", st1.Store)
	}
	closeSvc(t, svc1)
	if entries := setupEntries(t, dir); len(entries) != 1 {
		t.Fatalf("store holds %d entries after drain, want 1", len(entries))
	}

	// Lifetime 2: fresh RAM cache, same directory. The RAM tier misses
	// (CacheHit=false) but the disk tier hits, and the rehydrated setup
	// must reproduce the cold run bit for bit.
	svc2 := newStoreService(t, dir)
	res2, err := svc2.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 8, Seed: 2014})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Fatal("fresh service reported a RAM cache hit")
	}
	if got := projectAll(t, res2); !reflect.DeepEqual(got, ref) {
		t.Fatalf("warm-restart samples diverged from cold run:\n warm: %v\n cold: %v", got, ref)
	}
	st2 := svc2.Stats()
	if st2.Store.Hits != 1 || st2.Store.Misses != 0 || st2.Store.CorruptEntries != 0 {
		t.Fatalf("lifetime 2 store stats %+v, want exactly 1 hit", st2.Store)
	}
	// A disk hit is not a preparation: the foreign lifetime's solver
	// work must not leak into this process's preparation totals.
	if st2.Prepare.Requests != 0 || st2.Prepare.BSATCalls != 0 || st2.Prepare.Rounds != 0 {
		t.Fatalf("disk hit folded setup work into prepare totals: %+v", st2.Prepare)
	}

	// A different seed against the now RAM-cached rehydrated setup must
	// also match a cold service under that seed (the setup itself, not
	// just one sample stream, survived the round trip).
	cross, err := svc2.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	coldSvc := newService(t, service.Config{ApproxMCRounds: 15})
	coldRes, err := coldSvc.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := projectAll(t, cross), projectAll(t, coldRes); !reflect.DeepEqual(got, want) {
		t.Fatalf("rehydrated setup diverged under a new seed:\n warm: %v\n cold: %v", got, want)
	}
	closeSvc(t, svc2)
}

// TestStoreEasyCaseWarmHit pins the easy-case persistence contract:
// the full enumerated witness list rides in the store entry, so a warm
// restart serves easy-case samples with ZERO BSAT calls anywhere —
// no re-enumeration, no sampling-round solver work.
func TestStoreEasyCaseWarmHit(t *testing.T) {
	dir := t.TempDir()
	f := easyFormula(0)

	svc1 := newStoreService(t, dir)
	res1, err := svc1.Sample(context.Background(), service.SampleRequest{Formula: f.Clone(), N: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st := svc1.Stats(); st.Prepare.BSATCalls == 0 {
		t.Fatal("cold easy-case preparation reported no BSAT calls; fixture no longer exercises enumeration")
	}
	closeSvc(t, svc1)

	svc2 := newStoreService(t, dir)
	res2, err := svc2.Sample(context.Background(), service.SampleRequest{Formula: f.Clone(), N: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := projectAll(t, res2), projectAll(t, res1); !reflect.DeepEqual(got, want) {
		t.Fatalf("easy-case warm samples diverged:\n warm: %v\n cold: %v", got, want)
	}
	if res2.Stats.BSATCalls != 0 {
		t.Fatalf("warm easy-case request ran %d BSAT calls, want 0", res2.Stats.BSATCalls)
	}
	st2 := svc2.Stats()
	if st2.Store.Hits != 1 {
		t.Fatalf("store stats %+v, want 1 hit", st2.Store)
	}
	if st2.Prepare.BSATCalls != 0 || st2.Solver.BSATCalls != 0 {
		t.Fatalf("warm easy-case lifetime ran solver work: prepare=%+v solver=%+v", st2.Prepare, st2.Solver)
	}
	closeSvc(t, svc2)
}

// TestStoreCorruptEntryDegradesToCold flips one byte of the on-disk
// entry between lifetimes: the next request must succeed by cold
// preparation (identical samples), with the rotted entry quarantined
// and counted — never an error surfaced to the caller.
func TestStoreCorruptEntryDegradesToCold(t *testing.T) {
	dir := t.TempDir()
	svc1 := newStoreService(t, dir)
	res1, err := svc1.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref := projectAll(t, res1)
	closeSvc(t, svc1)

	entries := setupEntries(t, dir)
	if len(entries) != 1 {
		t.Fatalf("%d entries, want 1", len(entries))
	}
	blob, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x10
	if err := os.WriteFile(entries[0], blob, 0o600); err != nil {
		t.Fatal(err)
	}

	svc2 := newStoreService(t, dir)
	ts := httptest.NewServer(service.NewHandler(svc2))
	defer ts.Close()
	res2, err := svc2.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 4, Seed: 3})
	if err != nil {
		t.Fatalf("corrupt entry surfaced as a request error: %v", err)
	}
	if got := projectAll(t, res2); !reflect.DeepEqual(got, ref) {
		t.Fatalf("cold fallback samples diverged:\n got: %v\n ref: %v", got, ref)
	}
	st2 := svc2.Stats()
	if st2.Store.CorruptEntries != 1 || st2.Store.Hits != 0 {
		t.Fatalf("store stats %+v, want 1 corrupt entry and 0 hits", st2.Store)
	}
	if quarantined, _ := filepath.Glob(filepath.Join(dir, "*.corrupt")); len(quarantined) != 1 {
		t.Fatalf("%d quarantine files, want 1", len(quarantined))
	}
	// The corruption is visible on /metrics too.
	fams := scrape(t, ts.URL)
	if got := mustValue(t, fams, "unigen_store_corrupt_entries_total", "unigen_store_corrupt_entries_total"); got != 1 {
		t.Fatalf("unigen_store_corrupt_entries_total = %v, want 1", got)
	}
	if got := mustValue(t, fams, "unigen_store_hits_total", "unigen_store_hits_total"); got != 0 {
		t.Fatalf("unigen_store_hits_total = %v, want 0", got)
	}
	closeSvc(t, svc2)

	// The cold fallback re-persisted the formula: a truncated entry in
	// the next lifetime must degrade the same way.
	entries = setupEntries(t, dir)
	if len(entries) != 1 {
		t.Fatalf("%d entries after fallback, want 1 (re-persisted)", len(entries))
	}
	blob, err = os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], blob[:len(blob)/3], 0o600); err != nil {
		t.Fatal(err)
	}
	svc3 := newStoreService(t, dir)
	res3, err := svc3.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 4, Seed: 3})
	if err != nil {
		t.Fatalf("truncated entry surfaced as a request error: %v", err)
	}
	if got := projectAll(t, res3); !reflect.DeepEqual(got, ref) {
		t.Fatalf("truncation fallback samples diverged:\n got: %v\n ref: %v", got, ref)
	}
	if st3 := svc3.Stats(); st3.Store.CorruptEntries != 1 {
		t.Fatalf("store stats %+v, want 1 corrupt entry", st3.Store)
	}
	closeSvc(t, svc3)
}

// TestStoreSingleFlightAcrossTiers: concurrent cold requests against a
// warm directory must share ONE flight and therefore ONE disk read —
// single-flight is preserved across both tiers.
func TestStoreSingleFlightAcrossTiers(t *testing.T) {
	dir := t.TempDir()
	svc1 := newStoreService(t, dir)
	if _, err := svc1.Sample(context.Background(), service.SampleRequest{Formula: hardFormula(), N: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	closeSvc(t, svc1)

	svc2 := newStoreService(t, dir)
	const clients = 16
	results := make([]*service.SampleResult, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc2.Sample(context.Background(), service.SampleRequest{
				Formula: hardFormula(), N: 3, Seed: 42,
			})
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
	}
	ref := projectAll(t, results[0])
	for i, res := range results {
		if !reflect.DeepEqual(projectAll(t, res), ref) {
			t.Fatalf("client %d diverged", i)
		}
	}
	st := svc2.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d RAM misses, want 1 (single flight broken)", st.Misses)
	}
	if st.Store.Hits != 1 || st.Store.Misses != 0 {
		t.Fatalf("store stats %+v, want exactly 1 disk read", st.Store)
	}
	closeSvc(t, svc2)
}
