package service

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"unigen/internal/cnf"
	"unigen/internal/core"
	"unigen/internal/obs"
	"unigen/internal/randx"
)

// Delta requests (DESIGN §13): instead of re-posting a whole formula, a
// client names a prepared base by fingerprint plus a short list of
// assumption literals. The service derives a conditioned setup for
// base ∧ assumptions on a pooled session — no formula parse, no solver
// build — and caches it under the conjoined formula's own fingerprint,
// so a client posting the conjoined DIMACS wholesale hits the same
// entry and gets bit-identical witnesses.

// ErrUnknownBase tags delta requests whose base fingerprint matches no
// prepared formula in either cache tier; transports map it to 404. The
// client must (re)post the full base formula first.
var ErrUnknownBase = errors.New("service: unknown base formula fingerprint")

// defaultSessionPool is the default per-base idle-session cap
// (Config.SessionPool).
const defaultSessionPool = 8

// defaultDeltaQWindow is the default divergence window: a conditioned
// hash width q′ further than this from the base's q promotes the delta
// to a first-class prepared entry (Config.DeltaQWindow).
const defaultDeltaQWindow = 3

// maxAssumptions bounds the assumption list per request; a delta that
// large should be posted as a formula.
const maxAssumptions = 4096

// deltaTotals are the service-wide delta-request counters behind
// /stats and /metrics.
type deltaTotals struct {
	requests    atomic.Int64 // delta-shaped requests received
	served      atomic.Int64 // delta requests answered successfully
	unknownBase atomic.Int64 // rejected: base not prepared anywhere
	diverged    atomic.Int64 // conditioned setups promoted to first-class
}

// DeltaStats is the delta-session block of /stats (DESIGN §13).
type DeltaStats struct {
	Requests    int64 `json:"requests"`
	Served      int64 `json:"served"`
	UnknownBase int64 `json:"unknown_base"`
	Diverged    int64 `json:"diverged"`
	PoolHits    int64 `json:"pool_hits"`
	PoolMisses  int64 `json:"pool_misses"`
	PoolRetired int64 `json:"pool_retired"`
	PoolIdle    int64 `json:"pool_idle"`
}

func (s *Service) deltaStats() DeltaStats {
	return DeltaStats{
		Requests:    s.delta.requests.Load(),
		Served:      s.delta.served.Load(),
		UnknownBase: s.delta.unknownBase.Load(),
		Diverged:    s.delta.diverged.Load(),
		PoolHits:    s.poolTot.hits.Load(),
		PoolMisses:  s.poolTot.misses.Load(),
		PoolRetired: s.poolTot.retired.Load(),
		PoolIdle:    s.poolTot.idle.Load(),
	}
}

// deltaQWindow resolves Config.DeltaQWindow (0 = default, negative =
// promote every non-easy delta).
func (s *Service) deltaQWindow() int {
	if s.cfg.DeltaQWindow == 0 {
		return defaultDeltaQWindow
	}
	if s.cfg.DeltaQWindow < 0 {
		return 0
	}
	return s.cfg.DeltaQWindow
}

// cacheKey builds the cache/store key for a fingerprint under the
// service's preparation parameters (shared by the formula and delta
// paths so the two can never alias differently-parameterized state).
func (s *Service) cacheKey(fp [32]byte) string {
	return fmt.Sprintf("%x|eps=%g|gj=%t|mc=%d|mp=%d|amc=%d",
		fp, s.cfg.Epsilon, s.cfg.GaussJordan, s.cfg.MaxConflicts, s.cfg.MaxPropagations, s.cfg.ApproxMCRounds)
}

// parseAssumptions validates and converts signed DIMACS literals,
// returning them in canonical (sorted, deduplicated) order.
func parseAssumptions(lits []int) ([]cnf.Lit, error) {
	if len(lits) > maxAssumptions {
		return nil, fmt.Errorf("%w: %d assumptions exceed the per-request limit %d", ErrInvalidRequest, len(lits), maxAssumptions)
	}
	out := make([]cnf.Lit, 0, len(lits))
	for _, x := range lits {
		if x == 0 {
			return nil, fmt.Errorf("%w: assumption literal 0", ErrInvalidRequest)
		}
		out = append(out, cnf.FromDIMACS(x))
	}
	return core.NormalizeAssumptions(out), nil
}

// resolveBase fetches the prepared entry for a base fingerprint: RAM
// hit, else a disk rehydrate, else ErrUnknownBase. The miss path runs
// as a normal single-flight (so concurrent delta requests for one base
// probe the disk once), but never cold-prepares — the service does not
// hold the base formula, only its fingerprint.
func (s *Service) resolveBase(ctx context.Context, fp [32]byte) (*prepared, bool, error) {
	key := s.cacheKey(fp)
	return s.cache.get(ctx, key, func(intr *atomic.Bool) func() (*prepared, error) {
		return func() (*prepared, error) {
			if s.store != nil {
				if p, ok := s.rehydrate(key, fp); ok {
					return p, nil
				}
			}
			return nil, fmt.Errorf("%w: %x", ErrUnknownBase, fp)
		}
	})
}

// prepareDelta resolves a delta request to a prepared entry: the base
// by fingerprint, then the conditioned setup for base ∧ assumptions
// through the same single-flight cache, keyed by the conjoined
// formula's fingerprint. The conditioned flight runs on a pooled base
// session (warm solver, no build) and follows the exact cold-setup
// algorithm, so the resulting entry is interchangeable with one
// prepared from the conjoined DIMACS text. dsp (nil-safe) is the
// request's delta span.
func (s *Service) prepareDelta(ctx context.Context, baseHex string, assumpInts []int, dsp *obs.Span) (*prepared, bool, error) {
	s.delta.requests.Add(1)
	fpBytes, err := hex.DecodeString(baseHex)
	if err != nil || len(fpBytes) != 32 {
		return nil, false, fmt.Errorf("%w: base must be a 64-char hex fingerprint", ErrInvalidRequest)
	}
	var fp [32]byte
	copy(fp[:], fpBytes)
	assumps, err := parseAssumptions(assumpInts)
	if err != nil {
		return nil, false, err
	}
	dsp.SetInt("assumptions", int64(len(assumps)))

	base, baseHit, err := s.resolveBase(ctx, fp)
	if err != nil {
		if errors.Is(err, ErrUnknownBase) {
			s.delta.unknownBase.Add(1)
		}
		return nil, false, err
	}
	dsp.SetInt("base_hit", boolInt(baseHit))
	if len(assumps) == 0 {
		// Fingerprint-only request: serve the base entry itself.
		return base, baseHit, nil
	}

	conj, err := base.setup.Conjoin(assumps)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	cfp := cnf.Fingerprint(conj)
	ckey := s.cacheKey(cfp)
	prep, hit, err := s.cache.get(ctx, ckey, func(intr *atomic.Bool) func() (*prepared, error) {
		pool := s.poolFor(base)
		return func() (*prepared, error) {
			// Same wall-clock budget contract as a cold flight: the timer
			// raises the flight interrupt (which the pooled session is
			// pointed at below), so a runaway conditioned estimate stops
			// at the deadline.
			var timedOut atomic.Bool
			if pt := s.cfg.PrepareTimeout; pt > 0 {
				t := time.AfterFunc(pt, func() {
					timedOut.Store(true)
					intr.Store(true)
				})
				defer t.Stop()
			}
			leased := pool.checkout(1)
			ps := leased[0]
			done := false
			defer func() {
				if done {
					pool.checkin(leased, nil)
				} else {
					// A panic unwound past the estimate: the session's
					// state is unknown, retire it.
					pool.retire(ps)
				}
			}()
			ps.sess.SetAssumptions(assumps)
			ps.sess.SetInterrupt(intr)
			cond, serr := base.setup.SetupWith(ps.sess, conj, randx.New(core.PrepSeedFromFingerprint(cfp)))
			done = true
			if serr != nil {
				if timedOut.Load() {
					return nil, fmt.Errorf("%w: conditioned preparation exceeded %v: %v", ErrDeadline, s.cfg.PrepareTimeout, serr)
				}
				return nil, serr
			}
			p := &prepared{
				setup:       cond,
				prepStats:   cond.SetupStats(),
				fingerprint: hex.EncodeToString(cfp[:]),
				delta:       true,
				baseFP:      base.fingerprint,
			}
			if cond.DivergedFrom(base.setup, s.deltaQWindow()) {
				// Conditioned count moved too far from the base: promote
				// to a first-class entry (own sessions, no base-pool
				// affinity). The setup is full-fidelity either way; this
				// is a pool-hygiene policy, not a correctness fallback.
				p.diverged = true
				s.delta.diverged.Add(1)
			} else {
				p.base = base
				p.assumps = assumps
			}
			// Write-behind like any prepared formula: after a restart the
			// conjoined entry rehydrates as a plain formula entry and
			// still serves both delta and full-formula requests for it.
			if s.store != nil {
				if blob, eerr := cond.Encode(); eerr == nil {
					s.store.Put(ckey, blob)
				} else if s.logger != nil {
					s.logger.Warn("store encode failed", "fingerprint", p.fingerprint, "err", eerr)
				}
			}
			return p, nil
		}
	})
	if err != nil {
		return nil, hit, requestErr(ctx, err)
	}
	dsp.SetInt("diverged", boolInt(prep.diverged))
	return prep, hit, nil
}
