package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"unigen/internal/service"
)

const hardDIMACS = "c ind 1 2 3 4 5 6 7 8 9 10 0\np cnf 12 1\n11 12 0\n"

func newHTTPServer(t *testing.T) (*httptest.Server, *service.Service) {
	t.Helper()
	svc, err := service.New(service.Config{ApproxMCRounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHTTPSampleRoundTrip(t *testing.T) {
	ts, svc := newHTTPServer(t)
	resp := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: hardDIMACS, N: 4, Seed: 11})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body := decode[service.SampleHTTPResponse](t, resp)
	if len(body.Witnesses) != 4 || len(body.Vars) != 10 {
		t.Fatalf("got %d witnesses over %d vars", len(body.Witnesses), len(body.Vars))
	}
	if body.CacheHit {
		t.Fatal("cold request reported a cache hit")
	}
	for _, w := range body.Witnesses {
		if len(w) != len(body.Vars) || strings.Trim(w, "01") != "" {
			t.Fatalf("malformed witness bitstring %q", w)
		}
	}
	if body.Stats.Samples != 4 || body.Stats.Rounds < 4 {
		t.Fatalf("stats block %+v", body.Stats)
	}

	// Same request again: served from cache, bit-identical.
	resp2 := postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: hardDIMACS, N: 4, Seed: 11})
	body2 := decode[service.SampleHTTPResponse](t, resp2)
	if !body2.CacheHit {
		t.Fatal("warm request missed the cache")
	}
	for i := range body.Witnesses {
		if body.Witnesses[i] != body2.Witnesses[i] {
			t.Fatalf("witness %d diverged across identical requests", i)
		}
	}
	if st := svc.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("cache stats %+v", st)
	}
}

func TestHTTPCountAndStats(t *testing.T) {
	ts, _ := newHTTPServer(t)
	resp := postJSON(t, ts.URL+"/count", service.CountHTTPRequest{Formula: "p cnf 2 1\n1 2 0\n"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count status %d", resp.StatusCode)
	}
	body := decode[service.CountHTTPResponse](t, resp)
	if body.Count != "3" || !body.Exact {
		t.Fatalf("count %q exact=%v, want exactly 3", body.Count, body.Exact)
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	stats := decode[service.StatsHTTPResponse](t, sresp)
	if stats.Misses != 1 || stats.Size != 1 || len(stats.Formulas) != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if got := stats.Formulas[0]; got.Counts != 1 || !got.EasyCase {
		t.Fatalf("per-formula stats %+v", got)
	}
}

func TestHTTPHealthz(t *testing.T) {
	ts, _ := newHTTPServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if body := decode[service.HealthzHTTPResponse](t, resp); !body.OK || body.State != service.HealthOK {
		t.Fatalf("healthz body %+v", body)
	}
}

// TestHTTPRetryAfterSubSecondClamp: a sub-second RetryAfter config must
// not truncate to "Retry-After: 0" (which clients read as "retry
// immediately" — exactly wrong for backpressure). The header is whole
// seconds, clamped to at least 1.
func TestHTTPRetryAfterSubSecondClamp(t *testing.T) {
	svc, err := service.New(service.Config{ApproxMCRounds: 15, RetryAfter: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(ts.Close)

	// Drain so /healthz answers 503 with the Retry-After hint attached.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", ra)
	}
	if secs < 1 {
		t.Fatalf("Retry-After %d: sub-second config truncated below 1s", secs)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _ := newHTTPServer(t)

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/sample", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// Malformed DIMACS.
	resp = postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: "p cnf oops\n", N: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed DIMACS: status %d, want 400", resp.StatusCode)
	}

	// Non-positive n.
	resp = postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: "p cnf 1 1\n1 0\n", N: 0})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("n=0: status %d, want 422", resp.StatusCode)
	}

	// Unsatisfiable formula.
	resp = postJSON(t, ts.URL+"/sample", service.SampleHTTPRequest{Formula: "p cnf 1 2\n1 0\n-1 0\n", N: 1, Seed: 1})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unsat: status %d, want 422", resp.StatusCode)
	}

	// Wrong methods.
	for _, path := range []string{"/sample", "/count"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
	}
	presp := postJSON(t, ts.URL+"/healthz", map[string]int{})
	if presp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: status %d, want 405", presp.StatusCode)
	}
}
