package service

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"unigen/internal/cnf"
	"unigen/internal/core"
)

// prepared is one cache entry's payload: an immutable core.Setup (safe
// to share across concurrent requests — only sessions carry mutable
// solver state), the stats of the preparation that built it, and
// per-formula request counters.
type prepared struct {
	setup       *core.Setup
	prepStats   core.Stats
	fingerprint string // lowercase hex
	fromDisk    bool   // rehydrated from the persistent store (DESIGN §12)

	// Delta entries (DESIGN §13): a conditioned setup prepared from a
	// cached base under assumption literals. Non-diverged deltas keep a
	// reference to their base entry and serve sampling rounds through
	// the base's session pool with `assumps` installed as standing
	// assumptions; diverged deltas (base and nil assumps) are
	// first-class entries served like any cold-prepared formula.
	delta    bool
	diverged bool
	base     *prepared // nil unless a non-diverged delta
	assumps  []cnf.Lit // normalized assumption literals (non-diverged delta)
	baseFP   string    // base fingerprint, lowercase hex (delta entries)

	// pool lends per-worker sessions over this entry's setup to delta
	// requests that name it as their base. Built lazily on the first
	// delta request; nil until then.
	poolOnce sync.Once
	pool     *sessionPool

	requests atomic.Int64 // sample + count requests served from this entry
	samples  atomic.Int64 // witnesses returned
	counts   atomic.Int64 // count requests served
}

// cacheEntry is one slot of the prepared-formula cache. done is closed
// when the preparation flight finishes; prep/err are written before the
// close and immutable after, so waiters read them without the lock.
// ready mirrors "done is closed" under the cache mutex (a channel's
// closedness cannot be polled), gating eviction: only finished entries
// are evictable. waiters counts requests currently blocked on the
// flight; when the last one abandons an unfinished flight, intr is
// raised and the preparation solver aborts (see get).
type cacheEntry struct {
	key     string
	done    chan struct{}
	prep    *prepared
	err     error
	elem    *list.Element
	ready   bool
	waiters int
	intr    atomic.Bool
}

// prepCache is an LRU cache of prepared formulas with single-flight
// preparation: concurrent requests for the same key share one
// preparation — exactly one caller runs it, the rest wait on the flight.
type prepCache struct {
	mu        sync.Mutex
	capacity  int
	m         map[string]*cacheEntry
	lru       list.List // of *cacheEntry; front = most recently used
	hits      int64
	misses    int64
	evictions int64

	// onFlightDone, when set, observes every finished preparation
	// flight exactly once — single-flight means co-waiters share one
	// call — with the flight's wall-clock duration. It runs off the
	// cache lock; the service wires solver-work totals and the prepare
	// latency histogram through it.
	onFlightDone func(p *prepared, d time.Duration, err error)
}

func newPrepCache(capacity int) *prepCache {
	return &prepCache{capacity: capacity, m: map[string]*cacheEntry{}}
}

// get returns the prepared formula for key, preparing it on a miss.
// The second return reports a cache hit: true whenever an entry for key
// already existed, including one whose preparation is still in flight
// (the request waits but does not re-prepare). A failed preparation is
// not cached — its error goes to every waiter of that flight and the
// next request for the key retries.
//
// begin runs synchronously on the missing requester (snapshot
// caller-owned state there — the formula clone — so the hit path pays
// nothing and the flight never touches caller-mutable memory) and
// returns the preparation body, which runs in its own goroutine. The
// flight is not bound to any single request's context: every blocked
// requester returns ctx.Err() promptly on cancellation, and the flight
// keeps running while at least one requester still waits. When the
// LAST waiter abandons it, the flight's solver interrupt is raised so
// an unbudgeted preparation cannot pin a CPU forever on behalf of
// nobody; the aborted flight reports an error, is not cached, and the
// next request retries.
func (c *prepCache) get(ctx context.Context, key string, begin func(intr *atomic.Bool) func() (*prepared, error)) (*prepared, bool, error) {
	c.mu.Lock()
	e, hit := c.m[key]
	if hit {
		c.hits++
		c.lru.MoveToFront(e.elem)
	} else {
		e = &cacheEntry{key: key, done: make(chan struct{})}
		e.elem = c.lru.PushFront(e)
		c.m[key] = e
		c.misses++
	}
	e.waiters++
	c.mu.Unlock()

	if !hit {
		run := begin(&e.intr)
		go func() {
			flightStart := time.Now()
			prep, err := runFlight(run)
			if c.onFlightDone != nil {
				c.onFlightDone(prep, time.Since(flightStart), err)
			}
			c.mu.Lock()
			e.prep, e.err = prep, err
			e.ready = true
			if err != nil {
				c.removeLocked(e)
			} else {
				c.evictOverflowLocked()
			}
			c.mu.Unlock()
			close(e.done)
		}()
	}

	select {
	case <-e.done:
		c.mu.Lock()
		e.waiters--
		c.mu.Unlock()
		return e.prep, hit, e.err
	case <-ctx.Done():
		c.mu.Lock()
		e.waiters--
		if e.waiters == 0 && !e.ready {
			// Abandoned flight: abort its solver work and unlink it
			// right away, so a request arriving during the abort starts
			// a fresh preparation instead of inheriting the doomed
			// flight's interrupt-induced error.
			e.intr.Store(true)
			c.removeLocked(e)
		}
		c.mu.Unlock()
		return nil, hit, ctx.Err()
	}
}

// runFlight executes one preparation flight with panic isolation: a
// panic inside preparation (a solver bug, an injected fault) becomes an
// ErrPanic error. The error path of get then takes over — the flight is
// unlinked, never cached, and every co-waiting single-flight requester
// gets the error instead of hanging on a done channel that would never
// close (the panic would otherwise kill the process outright: flights
// run on their own goroutine).
func runFlight(run func() (*prepared, error)) (prep *prepared, err error) {
	defer func() {
		if r := recover(); r != nil {
			prep, err = nil, fmt.Errorf("%w: preparation panicked: %v", ErrPanic, r)
		}
	}()
	return run()
}

// removeLocked unlinks e from the map and the LRU list. The map check
// guards against double removal (an entry evicted while a failed flight
// is also removing itself).
func (c *prepCache) removeLocked(e *cacheEntry) {
	if c.m[e.key] == e {
		delete(c.m, e.key)
	}
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
}

// evictOverflowLocked drops least-recently-used finished entries until
// the cache fits its capacity. In-flight preparations are never evicted
// (their waiters hold the entry); if every entry is in flight the cache
// temporarily exceeds capacity rather than stall.
func (c *prepCache) evictOverflowLocked() {
	for c.lru.Len() > c.capacity {
		var victim *cacheEntry
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*cacheEntry); e.ready {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		c.removeLocked(victim)
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of the prepared-formula cache,
// the backing of the daemon's /stats endpoint.
type CacheStats struct {
	Hits      int64 // requests that found an entry (including in-flight ones)
	Misses    int64 // requests that started a preparation
	Evictions int64 // prepared formulas dropped by the LRU policy
	Size      int   // entries currently cached
	Capacity  int
	Formulas  []FormulaStats // most recently used first
}

// FormulaStats are the per-formula counters of one cache entry.
type FormulaStats struct {
	Fingerprint string `json:"fingerprint"`
	EasyCase    bool   `json:"easy_case"` // prepared by exact enumeration, no ApproxMC
	Requests    int64  `json:"requests"`
	Samples     int64  `json:"samples"`
	Counts      int64  `json:"counts"`
	// Delta marks entries prepared from a base formula under assumption
	// literals; Base names the base entry's fingerprint (empty for
	// diverged deltas promoted to first-class entries).
	Delta bool   `json:"delta,omitempty"`
	Base  string `json:"base,omitempty"`
}

// counts returns just the scalar counters — the cheap accessor the
// metrics collectors scrape without building the per-formula list.
func (c *prepCache) counts() (hits, misses, evictions int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.lru.Len()
}

func (c *prepCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.lru.Len(),
		Capacity:  c.capacity,
	}
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if !e.ready || e.prep == nil {
			continue // preparation still in flight
		}
		fs := FormulaStats{
			Fingerprint: e.prep.fingerprint,
			EasyCase:    e.prep.prepStats.EasyCase,
			Requests:    e.prep.requests.Load(),
			Samples:     e.prep.samples.Load(),
			Counts:      e.prep.counts.Load(),
			Delta:       e.prep.delta,
		}
		if e.prep.base != nil {
			fs.Base = e.prep.baseFP
		}
		st.Formulas = append(st.Formulas, fs)
	}
	return st
}
