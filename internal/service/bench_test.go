package service_test

import (
	"context"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/service"
)

// benchFormula is the hashing-path fixture: 1024 witnesses over a
// 10-variable sampling set, so preparation runs a real ApproxMC pass
// and sampling runs real hash-constrained enumeration.
func benchFormula() *cnf.Formula {
	f := cnf.New(12)
	f.AddClause(11, 12)
	f.SamplingSet = []cnf.Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	return f
}

// BenchmarkServicePrepared is E12: the latency gap the prepared-formula
// cache buys. "cold" pays fingerprint + full core.Setup (easy-case
// probe + ApproxMC) + sessions + one sample on a fresh service every
// iteration; "hit" pays fingerprint + cache lookup + sessions + one
// sample against a warm service. The ratio is the amortization factor a
// multi-tenant daemon gets per repeated-formula request.
func BenchmarkServicePrepared(b *testing.B) {
	ctx := context.Background()
	b.Run("cold-prepare", func(b *testing.B) {
		f := benchFormula()
		for i := 0; i < b.N; i++ {
			svc, err := service.New(service.Config{ApproxMCRounds: 15})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-hit", func(b *testing.B) {
		f := benchFormula()
		svc, err := service.New(service.Config{ApproxMCRounds: 15})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: 0}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The pure cache path, without sampling work: what /count costs on
	// a warm daemon.
	b.Run("cache-hit-count", func(b *testing.B) {
		f := benchFormula()
		svc, err := service.New(service.Config{ApproxMCRounds: 15})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Count(ctx, service.CountRequest{Formula: f}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Count(ctx, service.CountRequest{Formula: f}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
