// Package service is the sampling-as-a-service layer over the UniGen
// core: a canonical formula fingerprint (normalized DIMACS → SHA-256,
// see cnf.Fingerprint), an LRU cache of prepared formulas — the
// once-per-formula core.Setup holding the simplified easy-case witness
// list or the ApproxMC estimate with κ/pivot — with single-flight
// preparation, and a request scheduler that multiplexes sample and
// count jobs over the parallel engine with per-request seeds, budgets,
// and context cancellation.
//
// The whole point of UniGen's architecture (DAC'14) is amortization:
// one expensive estimation pass per formula, then thousands of cheap
// hash-constrained samples. A multi-tenant service is the natural
// industrialization of that shape — many requests hitting the same
// formula should pay for one Setup, however they interleave.
//
// # Overload safety
//
// UniGen's per-request cost is heavy-tailed by construction: a single
// hard formula can burn an unbounded number of BSAT calls. The service
// therefore fronts the scheduler with four defensive layers (DESIGN
// §9): admission control (a bounded concurrency gate with a short
// bounded wait queue and per-tenant quotas, shedding excess load as
// ErrOverloaded), deadline budgets (a server-side default request
// timeout and a preparation wall-clock cap, both enforced through
// solver interrupts so a request stops consuming CPU the moment its
// deadline passes), panic isolation (recover at request and
// preparation-flight boundaries; a panicking preparation fails its
// waiters but is never cached), and graceful drain (Close rejects new
// requests, waits out in-flight ones, and interrupts stragglers at the
// deadline). All four are exercised by the chaos suite under injected
// faults (internal/faultpoint).
//
// # Determinism across transports
//
// For a fixed (formula, seed, n), the witnesses returned through
// Service.Sample (and the HTTP handler over it) are bit-identical to
// Sampler.SampleN on a fresh facade sampler with Workers ≥ 1. Two
// mechanisms compose to give this: preparation runs under an RNG seeded
// from the formula fingerprint (core.PrepSeed) in every path, so a
// cached Setup is exactly the Setup a cold run would build; and each
// request runs round streams randx.Stream(seed, 0..) on a fresh engine
// over that Setup, the same streams a cold run consumes (round outcomes
// are solver-history-independent, so reused setups and fresh sessions
// cannot diverge — see core.SampleRound). The one exemption, inherited
// from the parallel engine's contract: runs in which conflict-budget
// exhaustion fires may retry rounds differently.
package service

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"unigen/internal/cnf"
	"unigen/internal/core"
	"unigen/internal/faultpoint"
	"unigen/internal/obs"
	"unigen/internal/parallel"
	"unigen/internal/randx"
	"unigen/internal/sat"
	"unigen/internal/store"
)

// Config fixes the service-wide preparation parameters. Fields that
// affect the prepared state (everything except Workers, CacheSize, and
// the robustness knobs) are folded into the cache key, so one Service
// instance never serves a request from state prepared under different
// parameters.
type Config struct {
	// Epsilon is the uniformity tolerance used for every prepared
	// formula (> 1.71; default 6, the paper's experimental setting).
	Epsilon float64
	// MaxConflicts / MaxPropagations bound each preparation-time and
	// default per-request solver call (0 = unlimited).
	MaxConflicts    int64
	MaxPropagations int64
	// GaussJordan enables Gauss–Jordan XOR preprocessing in the solver.
	GaussJordan bool
	// ApproxMCRounds caps setup-time approximate-counter iterations
	// (0 keeps the paper's confidence parameters).
	ApproxMCRounds int
	// Workers is the default per-request worker-pool size (default 1).
	Workers int
	// CacheSize bounds the number of prepared formulas kept (LRU;
	// default 64).
	CacheSize int

	// Delta sessions (DESIGN §13). A delta request names a prepared base
	// by fingerprint plus assumption literals; the service derives the
	// conditioned setup on a pooled session over the base instead of
	// rebuilding a solver.

	// SessionPool caps idle pooled sessions kept per base formula
	// (default 8). Check-ins beyond the cap retire the session.
	SessionPool int
	// DeltaQWindow is the divergence window: a conditioned hash width
	// further than this from the base's q promotes the delta entry to a
	// first-class formula with its own sessions (default 3; negative
	// promotes every non-easy delta).
	DeltaQWindow int

	// Persistent store (DESIGN §12). When StoreDir is set the RAM LRU
	// grows a disk tier: preparation flights first try to rehydrate an
	// encoded Setup from disk, and cold preparations are persisted via a
	// background write-behind queue. Entries are keyed by the same
	// fingerprint+parameters string as the RAM cache, so state prepared
	// under different Epsilon/solver settings never aliases.

	// StoreDir is the persistent-store directory ("" disables the disk
	// tier). Opened (and created) at New; a warm scan counts surviving
	// entries.
	StoreDir string
	// StoreMaxBytes caps the store's total size; the write-behind
	// goroutine evicts least-recently-accessed entries beyond it
	// (0 = unlimited).
	StoreMaxBytes int64

	// Admission control (DESIGN §9). Zero values keep the permissive
	// pre-admission behavior: no gate, no queue, no quotas.

	// MaxInFlight caps concurrently admitted requests (0 = unlimited).
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for a slot once all
	// MaxInFlight are busy; everything beyond is shed immediately
	// (0 = no queue: shed as soon as the gate is full).
	MaxQueue int
	// QueueWait caps how long a queued request waits for a slot before
	// being shed (default 2s when the gate is on).
	QueueWait time.Duration
	// TenantQuota caps in-flight requests per tenant (0 = unlimited).
	// Enforced even when the global gate is off.
	TenantQuota int

	// Deadline budgets (DESIGN §9).

	// DefaultTimeout is the server-side deadline applied to every
	// request (0 = none). When it fires, the request's solvers are
	// interrupted and the request fails with ErrDeadline (503).
	DefaultTimeout time.Duration
	// PrepareTimeout caps the wall clock of one preparation flight
	// (0 = none). When it fires the flight's solver is interrupted, the
	// flight fails every waiter with ErrDeadline, and nothing is cached.
	PrepareTimeout time.Duration

	// RetryAfter is the Retry-After hint transports attach to shed and
	// draining responses (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps HTTP request bodies (default 64 MiB); larger
	// payloads are rejected with 413 before any DIMACS parsing.
	MaxBodyBytes int64

	// Observability (DESIGN §10).

	// Logger receives one structured record per finished request
	// (request-id, tenant, fingerprint, outcome, duration) plus the
	// daemon-facing warnings. nil disables service-layer logging —
	// metrics and traces still work.
	Logger *slog.Logger
	// SlowRequest is the latency threshold beyond which a request is
	// logged at Warn level with its full span breakdown and retained in
	// the /debug/requests ring. 0 defaults to 1s; negative disables.
	SlowRequest time.Duration
	// DebugRequests bounds the /debug/requests ring (default 128).
	DebugRequests int
}

// Service serves sample and count requests over a prepared-formula
// cache. Safe for concurrent use by any number of request handlers.
type Service struct {
	cfg   Config
	cache *prepCache
	store *store.Store // disk tier; nil when Config.StoreDir is empty
	adm   *admission
	out   outcomes

	// Observability spine (DESIGN §10): the metrics registry behind
	// GET /metrics, the per-request instruments, cumulative solver-work
	// totals for sampling (work) and preparation flights (prep), the
	// slow-request ring, and the per-request logger.
	reg    *obs.Registry
	met    *serviceMetrics
	ring   *obs.RequestRing
	logger *slog.Logger
	work   workTotals
	prep   workTotals
	start  time.Time

	// Delta-session counters (DESIGN §13): request outcomes and the
	// fleet-wide session-pool totals shared by every per-base pool.
	delta   deltaTotals
	poolTot poolTotals

	mu       sync.Mutex // guards draining, active, activeSeq
	idle     *sync.Cond // signalled when active drops to zero
	draining bool
	active   map[uint64]context.CancelCauseFunc
	seq      uint64
}

// New validates the configuration and returns an empty service.
func New(cfg Config) (*Service, error) {
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 6
	}
	if _, err := core.ComputeKappaPivot(cfg.Epsilon); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.DebugRequests <= 0 {
		cfg.DebugRequests = 128
	}
	s := &Service{
		cfg:    cfg,
		cache:  newPrepCache(cfg.CacheSize),
		adm:    newAdmission(cfg),
		active: map[uint64]context.CancelCauseFunc{},
		reg:    obs.NewRegistry(),
		ring:   obs.NewRequestRing(cfg.DebugRequests),
		logger: cfg.Logger,
		start:  time.Now(),
	}
	s.idle = sync.NewCond(&s.mu)
	if cfg.StoreDir != "" {
		ds, err := store.Open(store.Options{
			Dir:      cfg.StoreDir,
			MaxBytes: cfg.StoreMaxBytes,
			Verify:   core.VerifySetupFrame,
			Logger:   cfg.Logger,
		})
		if err != nil {
			return nil, fmt.Errorf("service: opening persistent store: %w", err)
		}
		s.store = ds
	}
	s.met = newServiceMetrics(s)
	// Preparation flights report here when they finish, whichever
	// request triggered them: solver-work totals for /stats and
	// /metrics, the prepare-phase latency histogram, and the flight
	// outcome counter. Accounting at the flight keeps single-flight
	// preparations counted exactly once, not per co-waiter. Disk-tier
	// rehydrations carry setup stats describing another process's solver
	// work, so they get their own result label and stay out of the
	// prepare work totals — this process did no solving for them.
	s.cache.onFlightDone = func(p *prepared, d time.Duration, err error) {
		s.met.phaseSeconds.With("prepare").ObserveDuration(d)
		switch {
		case err != nil && errors.Is(err, ErrUnknownBase):
			s.met.prepares.With("unknown_base").Inc()
		case err != nil:
			s.met.prepares.With("error").Inc()
		case p.fromDisk:
			s.met.prepares.With("disk_hit").Inc()
		case p.delta && p.diverged:
			s.met.prepares.With("delta_diverged").Inc()
			s.prep.add(p.prepStats)
		case p.delta:
			s.met.prepares.With("delta").Inc()
			s.prep.add(p.prepStats)
		default:
			s.met.prepares.With("ok").Inc()
			s.prep.add(p.prepStats)
		}
	}
	return s, nil
}

// SampleRequest asks for n almost-uniform witnesses of Formula drawn
// with the given seed. Alternatively (DESIGN §13) a delta request sets
// Base — the hex fingerprint of a previously prepared formula — plus
// Assumptions instead of Formula; the service samples the base formula
// conjoined with the assumption unit clauses without re-ingesting it.
type SampleRequest struct {
	Formula *cnf.Formula
	N       int
	Seed    uint64
	// Base is the 64-char hex fingerprint of the prepared base formula
	// for a delta request; mutually exclusive with Formula.
	Base string
	// Assumptions are signed DIMACS literals conjoined to the base as
	// unit clauses. Valid only with Base; empty means "sample the base
	// itself by fingerprint".
	Assumptions []int
	// Workers overrides the service's per-request pool size when > 0.
	Workers int
	// MaxConflicts overrides the per-call conflict budget for this
	// request's sampling rounds when > 0 (preparation always runs under
	// the service-wide budgets, whoever triggers it).
	MaxConflicts int64
	// Tenant attributes the request for per-tenant admission quotas
	// ("" is a valid tenant: the anonymous one).
	Tenant string
	// Timeout is the client's own deadline for this request when > 0.
	// Exceeding it fails the request with ErrClientTimeout (422) — the
	// client set the budget, the client gets the client-error status.
	Timeout time.Duration
}

// SampleResult carries the witnesses and the request's observability.
type SampleResult struct {
	Vars        []cnf.Var        // sampling variables, sorted
	Witnesses   []cnf.Assignment // n witnesses (shared easy-case memory: read-only)
	CacheHit    bool             // true when the prepared formula was already cached
	Fingerprint string           // canonical formula fingerprint, hex
	Stats       core.Stats       // this request's sampling rounds only (no setup share)
	TraceID     string           // phase-trace identifier (X-Unigen-Trace over HTTP)
	Delta       bool             // served through the delta path (base + assumptions)
}

// CountRequest asks for the prepared witness count of Formula, or — as
// a delta request — of Base ∧ Assumptions (see SampleRequest).
type CountRequest struct {
	Formula *cnf.Formula
	// Base and Assumptions name a delta request exactly as in
	// SampleRequest; mutually exclusive with Formula.
	Base        string
	Assumptions []int
	// Tenant and Timeout behave exactly as in SampleRequest.
	Tenant  string
	Timeout time.Duration
}

// CountResult is the prepared count: exact when the formula's solution
// space was small enough to enumerate at preparation time, otherwise
// the ApproxMC estimate of Algorithm 1 line 9.
type CountResult struct {
	Count       *big.Int
	Exact       bool
	CacheHit    bool
	Fingerprint string
	TraceID     string
	Delta       bool // served through the delta path (base + assumptions)
}

// ErrInvalidRequest tags request-validation failures (non-positive or
// oversized n, nil formula); transports map it to a client error.
var ErrInvalidRequest = errors.New("service: invalid request")

// maxRequestWorkers caps the per-request pool size: sessions are full
// solver instances, and a request must not be able to allocate an
// unbounded number of them.
const maxRequestWorkers = 64

// maxRequestSamples caps n per request (a request beyond it should be
// split; each round is individually cancellable either way).
const maxRequestSamples = 1 << 20

// isRoundPanic reports a panic recovered at the engine's round
// boundary (kept here so obs.go need not import parallel directly).
func isRoundPanic(err error) bool { return errors.Is(err, parallel.ErrRoundPanic) }

// begin runs the request prologue shared by Sample and Count: the drain
// gate, registration for drain interruption, admission, and the
// deadline budgets. It returns the context the request must run under
// and a finish func to defer (exactly once). On error the request was
// never admitted.
func (s *Service) begin(ctx context.Context, tenant string, clientTimeout time.Duration) (context.Context, func(), error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: not accepting requests", ErrDraining)
	}
	cctx, cancel := context.WithCancelCause(ctx)
	id := s.seq
	s.seq++
	s.active[id] = cancel
	s.mu.Unlock()

	unregister := func() {
		cancel(nil)
		s.mu.Lock()
		delete(s.active, id)
		if len(s.active) == 0 {
			s.idle.Broadcast()
		}
		s.mu.Unlock()
	}

	release, err := s.adm.acquire(cctx, tenant)
	if err != nil {
		unregister()
		return nil, nil, err
	}

	// Deadline budgets: the server default and the client's own, each
	// tagged with its cause so the error (and HTTP status) says whose
	// budget ran out. Nesting sorts precedence: the earlier deadline
	// fires with its own cause.
	rctx := cctx
	cancels := []context.CancelFunc{}
	if d := s.cfg.DefaultTimeout; d > 0 {
		var c context.CancelFunc
		rctx, c = context.WithDeadlineCause(rctx, time.Now().Add(d), ErrDeadline)
		cancels = append(cancels, c)
	}
	if ct := clientTimeout; ct > 0 {
		var c context.CancelFunc
		rctx, c = context.WithDeadlineCause(rctx, time.Now().Add(ct), ErrClientTimeout)
		cancels = append(cancels, c)
	}
	finish := func() {
		for _, c := range cancels {
			c()
		}
		release()
		unregister()
	}
	return rctx, finish, nil
}

// requestErr resolves a context-shaped failure to the budget that
// caused it: the server deadline, the client's own timeout, or a drain
// interruption, each carrying its sentinel. Anything else passes
// through unchanged.
func requestErr(ctx context.Context, err error) error {
	if err == nil || (!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)) {
		return err
	}
	cause := context.Cause(ctx)
	switch {
	case errors.Is(cause, ErrDeadline), errors.Is(cause, ErrClientTimeout), errors.Is(cause, ErrDraining):
		return fmt.Errorf("%w (%v)", cause, err)
	}
	return err
}

// prepare fetches the prepared formula through the two-tier lookup
// (DESIGN §12): RAM LRU hit → disk hit + rehydrate → cold prepare,
// with single-flight preserved across both lower tiers — concurrent
// misses for one key share a single flight, and that flight probes the
// disk exactly once before paying for a cold NewSetup. psp (nil-safe)
// is the request's prepare span; the flight hangs its store phase
// under it.
func (s *Service) prepare(ctx context.Context, f *cnf.Formula, psp *obs.Span) (*prepared, bool, error) {
	if f == nil {
		return nil, false, fmt.Errorf("%w: nil formula", ErrInvalidRequest)
	}
	fp := cnf.Fingerprint(f)
	key := s.cacheKey(fp)
	return s.cache.get(ctx, key, func(intr *atomic.Bool) func() (*prepared, error) {
		// Synchronous part, on the missing requester: clone the formula
		// so the flight (which may outlive this request) never shares
		// memory the caller could mutate. Hits never reach this.
		g := f.Clone()
		return func() (*prepared, error) {
			// Preparation wall-clock budget: the timer raises the same
			// interrupt flag abandonment uses, so a runaway ApproxMC
			// setup stops consuming CPU at the deadline; timedOut
			// distinguishes the two for the error mapping.
			var timedOut atomic.Bool
			if pt := s.cfg.PrepareTimeout; pt > 0 {
				t := time.AfterFunc(pt, func() {
					timedOut.Store(true)
					intr.Store(true)
				})
				defer t.Stop()
			}
			// Chaos injection: a slow preparation (stall honors the
			// flight interrupt) and a preparation crash (recovered at
			// the flight boundary in prepCache.get).
			if err := faultpoint.FireWait(faultpoint.PrepareSlow, intr.Load); err != nil && !errors.Is(err, faultpoint.ErrInterrupted) {
				return nil, err
			}
			_ = faultpoint.Fire(faultpoint.PreparePanic)

			// Disk tier: a valid entry rehydrates in microseconds with
			// zero solver work. Any defect — bad frame, decode failure,
			// wrong fingerprint — quarantines the entry and falls
			// through to a cold prepare; the store path can degrade but
			// never fail a request.
			if s.store != nil {
				ssp := psp.StartSpan("store")
				if p, ok := s.rehydrate(key, fp); ok {
					ssp.SetInt("hit", 1)
					ssp.End()
					return p, nil
				}
				ssp.SetInt("hit", 0)
				ssp.End()
			}

			su, err := core.NewSetup(g, randx.New(core.PrepSeedFromFingerprint(fp)), core.Options{
				Epsilon: s.cfg.Epsilon,
				Solver: sat.Config{
					MaxConflicts:    s.cfg.MaxConflicts,
					MaxPropagations: s.cfg.MaxPropagations,
					GaussJordan:     s.cfg.GaussJordan,
					// The cache raises intr when every requester has
					// abandoned the flight; an unbudgeted preparation
					// must not outlive all interest in it. The
					// PrepareTimeout timer above raises the same flag.
					Interrupt: intr,
				},
				ApproxMCRounds: s.cfg.ApproxMCRounds,
			})
			if err != nil {
				if timedOut.Load() {
					return nil, fmt.Errorf("%w: preparation exceeded %v: %v", ErrDeadline, s.cfg.PrepareTimeout, err)
				}
				return nil, err
			}
			// The service builds sessions exclusively through
			// NewSessionWith; drop the setup-phase spare solver instead
			// of pinning one dead solver per cached formula.
			su.ReleaseSpare()
			// Write-behind: the encoded setup is queued for the disk
			// tier without blocking this flight on any I/O. An encode
			// failure only costs durability, never the request.
			if s.store != nil {
				if blob, eerr := su.Encode(); eerr == nil {
					s.store.Put(key, blob)
				} else if s.logger != nil {
					s.logger.Warn("store encode failed", "fingerprint", hex.EncodeToString(fp[:]), "err", eerr)
				}
			}
			return &prepared{
				setup:       su,
				prepStats:   su.SetupStats(),
				fingerprint: hex.EncodeToString(fp[:]),
			}, nil
		}
	})
}

// rehydrate attempts the disk tier: read + frame-verify (inside the
// store), confirm the entry answers the requested formula, and decode.
// Failures past the store's own Verify are reported back as quarantines
// so a rotted entry is retired instead of retried forever.
func (s *Service) rehydrate(key string, fp [32]byte) (*prepared, bool) {
	blob, ok := s.store.Get(key)
	if !ok {
		return nil, false
	}
	efp, err := core.EncodedFingerprint(blob)
	if err == nil && efp != fp {
		err = fmt.Errorf("store entry for fingerprint %x answers %x", efp, fp)
	}
	var su *core.Setup
	if err == nil {
		su, err = core.DecodeSetup(blob, core.Options{
			Epsilon: s.cfg.Epsilon,
			Solver: sat.Config{
				MaxConflicts:    s.cfg.MaxConflicts,
				MaxPropagations: s.cfg.MaxPropagations,
				GaussJordan:     s.cfg.GaussJordan,
			},
			ApproxMCRounds: s.cfg.ApproxMCRounds,
		})
	}
	if err != nil {
		s.store.Quarantine(key, err)
		return nil, false
	}
	return &prepared{
		setup:       su,
		prepStats:   su.SetupStats(),
		fingerprint: hex.EncodeToString(fp[:]),
		fromDisk:    true,
	}, true
}

// resolve routes a request to the formula path (prepare) or the delta
// path (prepareDelta) by its shape, enforcing mutual exclusion between
// the two. The third return reports the delta path.
func (s *Service) resolve(ctx context.Context, ro *reqObs, f *cnf.Formula, base string, assumps []int) (*prepared, bool, bool, error) {
	if base != "" {
		if f != nil {
			return nil, false, true, fmt.Errorf("%w: formula and base fingerprint are mutually exclusive", ErrInvalidRequest)
		}
		dsp := ro.tr.Root().StartSpan("delta")
		prep, hit, err := s.prepareDelta(ctx, base, assumps, dsp)
		dsp.SetInt("cache_hit", boolInt(hit))
		dsp.End()
		return prep, hit, true, err
	}
	if len(assumps) > 0 {
		return nil, false, false, fmt.Errorf("%w: assumptions require a base fingerprint", ErrInvalidRequest)
	}
	psp := ro.tr.Root().StartSpan("prepare")
	prep, hit, err := s.prepare(ctx, f, psp)
	psp.SetInt("cache_hit", boolInt(hit))
	psp.End()
	return prep, hit, false, err
}

// Sample draws req.N almost-uniform witnesses. Cache hits skip straight
// to sampling — no ApproxMC work happens on the hit path. Cancelling
// ctx interrupts in-flight SAT search promptly and fails the request
// with ctx.Err(). Under load the request may be queued briefly or shed
// with ErrOverloaded; a panic anywhere below returns ErrPanic instead
// of unwinding into the caller.
func (s *Service) Sample(ctx context.Context, req SampleRequest) (res *SampleResult, err error) {
	ctx, ro := s.startRequest(ctx, "sample", req.Tenant)
	ro.n = req.N
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrPanic, r)
		}
		ro.finish(err)
	}()
	if req.N <= 0 {
		return nil, fmt.Errorf("%w: sample count must be positive", ErrInvalidRequest)
	}
	if req.N > maxRequestSamples {
		return nil, fmt.Errorf("%w: sample count %d exceeds the per-request limit %d", ErrInvalidRequest, req.N, maxRequestSamples)
	}
	asp := ro.tr.Root().StartSpan("admission")
	ctx, finish, err := s.begin(ctx, req.Tenant, req.Timeout)
	asp.End()
	if err != nil {
		return nil, err
	}
	defer finish()
	_ = faultpoint.Fire(faultpoint.RequestPanic) // chaos: request-boundary recover

	prep, hit, isDelta, err := s.resolve(ctx, ro, req.Formula, req.Base, req.Assumptions)
	if err != nil {
		return nil, requestErr(ctx, err)
	}
	ro.fingerprint, ro.cacheHit = prep.fingerprint, hit
	prep.requests.Add(1)
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	if workers > maxRequestWorkers {
		workers = maxRequestWorkers
	}
	// Non-diverged delta entries sample through their base's session
	// pool: warm solvers with the assumptions installed as standing
	// Solve literals, no session build at all. Easy conditioned setups
	// never touch a solver (index picks over the stored witness list),
	// so they skip the checkout. Everything else — plain formulas,
	// diverged deltas — builds per-request sessions as before.
	var eng *parallel.Engine
	var leased []*pooledSession
	var pool *sessionPool
	if prep.base != nil && !prep.setup.Easy() {
		pool = s.poolFor(prep.base)
		leased = pool.checkout(workers)
		mc := req.MaxConflicts
		if mc <= 0 {
			mc = s.cfg.MaxConflicts
		}
		leases := make([]parallel.Lease, len(leased))
		for i, ps := range leased {
			ps.sess.SetAssumptions(prep.assumps)
			ps.sess.SetBudgets(mc, s.cfg.MaxPropagations)
			ps.intr.Store(false)
			leases[i] = parallel.Lease{Sess: ps.sess, Intr: ps.intr}
		}
		eng = parallel.NewEngineWithSessions(prep.setup, leases, req.Seed)
	} else {
		eng = parallel.NewEngineFromSetup(prep.setup, parallel.Options{
			Workers:    workers,
			MasterSeed: req.Seed,
			Core:       core.Options{Solver: sat.Config{MaxConflicts: req.MaxConflicts}},
		})
	}
	// The rounds span parents the engine's per-round (and per-cell)
	// spans via the context; the solver-work delta of exactly this
	// request feeds the cumulative totals whether or not it succeeds.
	rsp := ro.tr.Root().StartSpan("rounds")
	roundsStart := time.Now()
	ws, err := eng.SampleN(obs.WithSpan(ctx, rsp), req.N)
	st := eng.Stats()
	// Check in explicitly (not deferred): a panic unwinding past this
	// point must not re-pool sessions whose state is unknown — the
	// request-boundary recover turns it into ErrPanic and the leased
	// sessions are simply dropped.
	if leased != nil {
		pool.checkin(leased, eng.Doomed())
	}
	s.work.add(st)
	rsp.SetInt("rounds", st.Rounds())
	rsp.SetInt("bsat_calls", st.BSATCalls)
	rsp.SetInt("conflicts", st.Conflicts)
	rsp.SetInt("propagations", st.Propagations)
	rsp.End()
	s.met.phaseSeconds.With("rounds").ObserveDuration(time.Since(roundsStart))
	if err != nil {
		return nil, requestErr(ctx, err)
	}
	prep.samples.Add(int64(len(ws)))
	s.met.witnesses.Add(int64(len(ws)))
	ro.witnesses = len(ws)
	if isDelta {
		s.delta.served.Add(1)
	}
	return &SampleResult{
		Vars:        prep.setup.SamplingSet(),
		Witnesses:   ws,
		CacheHit:    hit,
		Fingerprint: prep.fingerprint,
		Stats:       st,
		TraceID:     ro.tr.ID(),
		Delta:       isDelta,
	}, nil
}

// boolInt renders a bool as a span counter value.
func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Count returns the prepared witness count. On a hit this is a pure
// cache lookup — no solver call at all. Admission, deadlines, and
// panic isolation apply exactly as for Sample (a miss triggers a
// preparation, which is the expensive path worth guarding).
func (s *Service) Count(ctx context.Context, req CountRequest) (res *CountResult, err error) {
	ctx, ro := s.startRequest(ctx, "count", req.Tenant)
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrPanic, r)
		}
		ro.finish(err)
	}()
	asp := ro.tr.Root().StartSpan("admission")
	ctx, finish, err := s.begin(ctx, req.Tenant, req.Timeout)
	asp.End()
	if err != nil {
		return nil, err
	}
	defer finish()
	_ = faultpoint.Fire(faultpoint.RequestPanic) // chaos: request-boundary recover

	prep, hit, isDelta, err := s.resolve(ctx, ro, req.Formula, req.Base, req.Assumptions)
	if err != nil {
		return nil, requestErr(ctx, err)
	}
	ro.fingerprint, ro.cacheHit = prep.fingerprint, hit
	prep.requests.Add(1)
	prep.counts.Add(1)
	if isDelta {
		s.delta.served.Add(1)
	}
	c, exact := prep.setup.WitnessCount()
	return &CountResult{Count: c, Exact: exact, CacheHit: hit, Fingerprint: prep.fingerprint, TraceID: ro.tr.ID(), Delta: isDelta}, nil
}

// HealthState is the coarse health signal /healthz reports.
type HealthState string

// Health states, in degradation order.
const (
	HealthOK         HealthState = "ok"
	HealthOverloaded HealthState = "overloaded" // backpressure building: queue at least half full
	HealthDraining   HealthState = "draining"   // Close in progress: no new requests
)

// Health reports the service's load state: "draining" once Close has
// been called, "overloaded" while the admission queue is at least half
// full (the early warning before shedding), "ok" otherwise.
func (s *Service) Health() HealthState {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return HealthDraining
	}
	if s.adm.overloaded() {
		return HealthOverloaded
	}
	return HealthOK
}

// Close drains the service: new requests are rejected with ErrDraining
// immediately, in-flight requests (including queued ones and running
// preparation flights) get until ctx's deadline to finish, and at the
// deadline every straggler is cancelled with ErrDraining — solver
// interrupts fire, so they return promptly rather than stranding
// workers. Close returns once no request is active; the returned error
// is ctx.Err() when the deadline forced interruptions, nil when
// everything drained naturally. Idempotent.
func (s *Service) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.mu.Lock()
		for len(s.active) > 0 {
			s.idle.Wait()
		}
		s.mu.Unlock()
	}()

	select {
	case <-done:
		s.closeStore()
		return nil
	case <-ctx.Done():
	}

	// Deadline passed: interrupt every straggler. Cancellation reaches
	// each request's engine watcher (solver interrupts) and, through
	// the last-waiter contract, aborts any preparation flight whose
	// requesters are all gone.
	s.mu.Lock()
	for _, cancel := range s.active {
		cancel(ErrDraining)
	}
	s.mu.Unlock()
	<-done
	s.closeStore()
	return ctx.Err()
}

// closeStore drains the persistent store's write-behind queue so a
// clean shutdown persists every prepared formula accepted for writing
// — the warm-restart contract. Idempotent, like Close itself.
func (s *Service) closeStore() {
	if s.store != nil {
		s.store.Close()
	}
}

// Stats is the full observability snapshot behind /stats: the
// prepared-formula cache, the admission gate, the per-outcome request
// totals, the cumulative solver-work totals (sampling work across
// finished requests, and preparation flights separately — the numbers
// that used to be computed per request and dropped), and the health
// state.
type Stats struct {
	CacheStats
	Store     StoreStats     `json:"store"` // disk tier of the prepared-formula cache
	Admission AdmissionStats `json:"admission"`
	Outcomes  OutcomeStats   `json:"outcomes"`
	Solver    SolverTotals   `json:"solver"`  // sampling-phase work across finished requests
	Prepare   SolverTotals   `json:"prepare"` // preparation-flight work
	Delta     DeltaStats     `json:"delta"`   // delta requests and the session-pool fleet
	State     HealthState    `json:"state"`
}

// StoreStats is the persistent-store block of /stats (DESIGN §12).
// All-zero with Enabled=false when the service runs without a disk
// tier.
type StoreStats struct {
	Enabled        bool   `json:"enabled"`
	Dir            string `json:"dir,omitempty"`
	MaxBytes       int64  `json:"max_bytes,omitempty"`
	Hits           int64  `json:"hits"`
	Misses         int64  `json:"misses"`
	Writes         int64  `json:"writes"`
	WriteErrors    int64  `json:"write_errors"`
	Evictions      int64  `json:"evictions"`
	CorruptEntries int64  `json:"corrupt_entries"`
	Bytes          int64  `json:"bytes"`
	Entries        int    `json:"entries"`
}

// storeStats snapshots the disk tier (zero value when disabled).
func (s *Service) storeStats() StoreStats {
	if s.store == nil {
		return StoreStats{}
	}
	st := s.store.Stats()
	return StoreStats{
		Enabled:        true,
		Dir:            s.store.Dir(),
		MaxBytes:       s.store.MaxBytes(),
		Hits:           st.Hits,
		Misses:         st.Misses,
		Writes:         st.Writes,
		WriteErrors:    st.WriteErrors,
		Evictions:      st.Evictions,
		CorruptEntries: st.CorruptEntries,
		Bytes:          st.Bytes,
		Entries:        st.Entries,
	}
}

// Stats snapshots the cache (both tiers), admission gate, outcome
// counters, and cumulative solver-work totals.
func (s *Service) Stats() Stats {
	return Stats{
		CacheStats: s.cache.stats(),
		Store:      s.storeStats(),
		Admission:  s.adm.snapshot(),
		Outcomes:   s.out.snapshot(),
		Solver:     s.work.snapshot(),
		Prepare:    s.prep.snapshot(),
		Delta:      s.deltaStats(),
		State:      s.Health(),
	}
}
