// Package service is the sampling-as-a-service layer over the UniGen
// core: a canonical formula fingerprint (normalized DIMACS → SHA-256,
// see cnf.Fingerprint), an LRU cache of prepared formulas — the
// once-per-formula core.Setup holding the simplified easy-case witness
// list or the ApproxMC estimate with κ/pivot — with single-flight
// preparation, and a request scheduler that multiplexes sample and
// count jobs over the parallel engine with per-request seeds, budgets,
// and context cancellation.
//
// The whole point of UniGen's architecture (DAC'14) is amortization:
// one expensive estimation pass per formula, then thousands of cheap
// hash-constrained samples. A multi-tenant service is the natural
// industrialization of that shape — many requests hitting the same
// formula should pay for one Setup, however they interleave.
//
// # Determinism across transports
//
// For a fixed (formula, seed, n), the witnesses returned through
// Service.Sample (and the HTTP handler over it) are bit-identical to
// Sampler.SampleN on a fresh facade sampler with Workers ≥ 1. Two
// mechanisms compose to give this: preparation runs under an RNG seeded
// from the formula fingerprint (core.PrepSeed) in every path, so a
// cached Setup is exactly the Setup a cold run would build; and each
// request runs round streams randx.Stream(seed, 0..) on a fresh engine
// over that Setup, the same streams a cold run consumes (round outcomes
// are solver-history-independent, so reused setups and fresh sessions
// cannot diverge — see core.SampleRound). The one exemption, inherited
// from the parallel engine's contract: runs in which conflict-budget
// exhaustion fires may retry rounds differently.
package service

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"unigen/internal/cnf"
	"unigen/internal/core"
	"unigen/internal/parallel"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// Config fixes the service-wide preparation parameters. Fields that
// affect the prepared state (everything except Workers and CacheSize)
// are folded into the cache key, so one Service instance never serves a
// request from state prepared under different parameters.
type Config struct {
	// Epsilon is the uniformity tolerance used for every prepared
	// formula (> 1.71; default 6, the paper's experimental setting).
	Epsilon float64
	// MaxConflicts / MaxPropagations bound each preparation-time and
	// default per-request solver call (0 = unlimited).
	MaxConflicts    int64
	MaxPropagations int64
	// GaussJordan enables Gauss–Jordan XOR preprocessing in the solver.
	GaussJordan bool
	// ApproxMCRounds caps setup-time approximate-counter iterations
	// (0 keeps the paper's confidence parameters).
	ApproxMCRounds int
	// Workers is the default per-request worker-pool size (default 1).
	Workers int
	// CacheSize bounds the number of prepared formulas kept (LRU;
	// default 64).
	CacheSize int
}

// Service serves sample and count requests over a prepared-formula
// cache. Safe for concurrent use by any number of request handlers.
type Service struct {
	cfg   Config
	cache *prepCache
}

// New validates the configuration and returns an empty service.
func New(cfg Config) (*Service, error) {
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 6
	}
	if _, err := core.ComputeKappaPivot(cfg.Epsilon); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 64
	}
	return &Service{cfg: cfg, cache: newPrepCache(cfg.CacheSize)}, nil
}

// SampleRequest asks for n almost-uniform witnesses of Formula drawn
// with the given seed.
type SampleRequest struct {
	Formula *cnf.Formula
	N       int
	Seed    uint64
	// Workers overrides the service's per-request pool size when > 0.
	Workers int
	// MaxConflicts overrides the per-call conflict budget for this
	// request's sampling rounds when > 0 (preparation always runs under
	// the service-wide budgets, whoever triggers it).
	MaxConflicts int64
}

// SampleResult carries the witnesses and the request's observability.
type SampleResult struct {
	Vars        []cnf.Var        // sampling variables, sorted
	Witnesses   []cnf.Assignment // n witnesses (shared easy-case memory: read-only)
	CacheHit    bool             // true when the prepared formula was already cached
	Fingerprint string           // canonical formula fingerprint, hex
	Stats       core.Stats       // this request's sampling rounds only (no setup share)
}

// CountRequest asks for the prepared witness count of Formula.
type CountRequest struct {
	Formula *cnf.Formula
}

// CountResult is the prepared count: exact when the formula's solution
// space was small enough to enumerate at preparation time, otherwise
// the ApproxMC estimate of Algorithm 1 line 9.
type CountResult struct {
	Count       *big.Int
	Exact       bool
	CacheHit    bool
	Fingerprint string
}

// ErrInvalidRequest tags request-validation failures (non-positive or
// oversized n, nil formula); transports map it to a client error.
var ErrInvalidRequest = errors.New("service: invalid request")

// maxRequestWorkers caps the per-request pool size: sessions are full
// solver instances, and a request must not be able to allocate an
// unbounded number of them.
const maxRequestWorkers = 64

// maxRequestSamples caps n per request (a request beyond it should be
// split; each round is individually cancellable either way).
const maxRequestSamples = 1 << 20

// prepare fetches (or builds, single-flight) the prepared formula.
func (s *Service) prepare(ctx context.Context, f *cnf.Formula) (*prepared, bool, error) {
	if f == nil {
		return nil, false, fmt.Errorf("%w: nil formula", ErrInvalidRequest)
	}
	fp := cnf.Fingerprint(f)
	key := fmt.Sprintf("%x|eps=%g|gj=%t|mc=%d|mp=%d|amc=%d",
		fp, s.cfg.Epsilon, s.cfg.GaussJordan, s.cfg.MaxConflicts, s.cfg.MaxPropagations, s.cfg.ApproxMCRounds)
	return s.cache.get(ctx, key, func(intr *atomic.Bool) func() (*prepared, error) {
		// Synchronous part, on the missing requester: clone the formula
		// so the flight (which may outlive this request) never shares
		// memory the caller could mutate. Hits never reach this.
		g := f.Clone()
		return func() (*prepared, error) {
			su, err := core.NewSetup(g, randx.New(core.PrepSeedFromFingerprint(fp)), core.Options{
				Epsilon: s.cfg.Epsilon,
				Solver: sat.Config{
					MaxConflicts:    s.cfg.MaxConflicts,
					MaxPropagations: s.cfg.MaxPropagations,
					GaussJordan:     s.cfg.GaussJordan,
					// The cache raises intr when every requester has
					// abandoned the flight; an unbudgeted preparation
					// must not outlive all interest in it.
					Interrupt: intr,
				},
				ApproxMCRounds: s.cfg.ApproxMCRounds,
			})
			if err != nil {
				return nil, err
			}
			// The service builds sessions exclusively through
			// NewSessionWith; drop the setup-phase spare solver instead
			// of pinning one dead solver per cached formula.
			su.ReleaseSpare()
			return &prepared{
				setup:       su,
				prepStats:   su.SetupStats(),
				fingerprint: hex.EncodeToString(fp[:]),
			}, nil
		}
	})
}

// Sample draws req.N almost-uniform witnesses. Cache hits skip straight
// to sampling — no ApproxMC work happens on the hit path. Cancelling
// ctx interrupts in-flight SAT search promptly and fails the request
// with ctx.Err().
func (s *Service) Sample(ctx context.Context, req SampleRequest) (*SampleResult, error) {
	if req.N <= 0 {
		return nil, fmt.Errorf("%w: sample count must be positive", ErrInvalidRequest)
	}
	if req.N > maxRequestSamples {
		return nil, fmt.Errorf("%w: sample count %d exceeds the per-request limit %d", ErrInvalidRequest, req.N, maxRequestSamples)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	prep, hit, err := s.prepare(ctx, req.Formula)
	if err != nil {
		return nil, err
	}
	prep.requests.Add(1)
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	if workers > maxRequestWorkers {
		workers = maxRequestWorkers
	}
	eng := parallel.NewEngineFromSetup(prep.setup, parallel.Options{
		Workers:    workers,
		MasterSeed: req.Seed,
		Core:       core.Options{Solver: sat.Config{MaxConflicts: req.MaxConflicts}},
	})
	ws, err := eng.SampleN(ctx, req.N)
	if err != nil {
		return nil, err
	}
	prep.samples.Add(int64(len(ws)))
	return &SampleResult{
		Vars:        prep.setup.SamplingSet(),
		Witnesses:   ws,
		CacheHit:    hit,
		Fingerprint: prep.fingerprint,
		Stats:       eng.Stats(),
	}, nil
}

// Count returns the prepared witness count. On a hit this is a pure
// cache lookup — no solver call at all.
func (s *Service) Count(ctx context.Context, req CountRequest) (*CountResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prep, hit, err := s.prepare(ctx, req.Formula)
	if err != nil {
		return nil, err
	}
	prep.requests.Add(1)
	prep.counts.Add(1)
	c, exact := prep.setup.WitnessCount()
	return &CountResult{Count: c, Exact: exact, CacheHit: hit, Fingerprint: prep.fingerprint}, nil
}

// Stats snapshots the cache and per-formula counters.
func (s *Service) Stats() CacheStats { return s.cache.stats() }
