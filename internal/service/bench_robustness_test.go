package service_test

// BenchmarkRobustness is E13: what the overload-safety layer costs and
// what it buys. "gate-off" vs "gate-on" price the admission prologue on
// the uncontended warm path (the tax every request pays); "overload"
// drives 8× the gate's capacity through a warm service and reports
// sheds/op alongside the latency of the requests that were served —
// under the gate, served-request latency stays flat while the excess is
// rejected in microseconds instead of queueing without bound.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"unigen/internal/service"
)

func warmBenchService(b *testing.B, cfg service.Config) *service.Service {
	b.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Sample(context.Background(), service.SampleRequest{Formula: benchFormula(), N: 1, Seed: 0}); err != nil {
		b.Fatal(err)
	}
	return svc
}

func BenchmarkRobustness(b *testing.B) {
	ctx := context.Background()

	b.Run("gate-off", func(b *testing.B) {
		svc := warmBenchService(b, service.Config{ApproxMCRounds: 15})
		f := benchFormula()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The full prologue armed: gate, queue, tenant quota, both deadline
	// budgets. Identical work per request; the delta to gate-off is the
	// robustness tax.
	b.Run("gate-on", func(b *testing.B) {
		svc := warmBenchService(b, service.Config{
			ApproxMCRounds: 15,
			MaxInFlight:    8,
			MaxQueue:       16,
			TenantQuota:    8,
			DefaultTimeout: time.Minute,
		})
		f := benchFormula()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: uint64(i), Timeout: time.Minute}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// 8 client goroutines against 1 admitted slot: per completed
	// operation, report how many were served vs shed and what a served
	// request cost. ns/op here blends served latency with the (cheap)
	// rejections — the interesting metrics are the custom ones.
	b.Run("overload", func(b *testing.B) {
		svc := warmBenchService(b, service.Config{
			ApproxMCRounds: 15,
			MaxInFlight:    1,
			MaxQueue:       1,
			QueueWait:      10 * time.Millisecond,
		})
		f := benchFormula()
		var served, shed, servedNS atomic.Int64
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			seed := uint64(0)
			for pb.Next() {
				seed++
				start := time.Now()
				_, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: seed})
				switch {
				case err == nil:
					served.Add(1)
					servedNS.Add(int64(time.Since(start)))
				default:
					shed.Add(1)
				}
			}
		})
		b.StopTimer()
		total := served.Load() + shed.Load()
		if total > 0 {
			b.ReportMetric(float64(shed.Load())/float64(total), "shed/op")
		}
		if s := served.Load(); s > 0 {
			b.ReportMetric(float64(servedNS.Load())/float64(s), "served-ns/op")
		}
	})
}
