package service_test

// HTTP status matrix under stress: each overload-safety error class
// must surface as its contracted status code — 429 shed (+Retry-After),
// 503 draining / server deadline, 422 client timeout, 413 oversized
// body, 500 recovered panic — and /healthz and /stats must expose the
// degradation. Faultpoints are process-global: no t.Parallel here.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"unigen/internal/faultpoint"
	"unigen/internal/service"
)

func newRobustServer(t *testing.T, cfg service.Config) (*httptest.Server, *service.Service) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

// warmHTTP prepares hardDIMACS through the HTTP path so later faults
// land mid-sampling rather than mid-preparation.
func warmHTTP(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resp := postJSON(t, ts.URL+"/sample", map[string]any{"formula": hardDIMACS, "n": 1, "seed": 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: status %d", resp.StatusCode)
	}
}

func TestHTTPOverloadShed429(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	ts, svc := newRobustServer(t, service.Config{ApproxMCRounds: 15, MaxInFlight: 1, MaxQueue: 0})
	warmHTTP(t, ts)
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})

	// Occupy the only slot with a stalled request, cancellable from here.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body, _ := json.Marshal(map[string]any{"formula": hardDIMACS, "n": 1, "seed": 2})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sample", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	stalled := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		stalled <- err
	}()
	waitInFlight(t, svc, 1)

	resp := postJSON(t, ts.URL+"/sample", map[string]any{"formula": hardDIMACS, "n": 1, "seed": 3})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "overloaded") {
		t.Fatalf("429 body: err=%v error=%q", err, e.Error)
	}

	st := decode[service.StatsHTTPResponse](t, getOK(t, ts.URL+"/stats"))
	if st.Admission.Shed == 0 || st.Outcomes.Shed == 0 {
		t.Fatalf("/stats after shed: admission=%+v outcomes=%+v", st.Admission, st.Outcomes)
	}

	cancel()
	<-stalled
}

func TestHTTPTenantQuota429(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	ts, svc := newRobustServer(t, service.Config{ApproxMCRounds: 15, MaxInFlight: 4, TenantQuota: 1})
	warmHTTP(t, ts)
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body, _ := json.Marshal(map[string]any{"formula": hardDIMACS, "n": 1, "seed": 2, "tenant": "acme"})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sample", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	stalled := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(stalled)
	}()
	waitInFlight(t, svc, 1)

	// Same tenant via the header fallback: over quota.
	body2, _ := json.Marshal(map[string]any{"formula": hardDIMACS, "n": 1, "seed": 3})
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/sample", bytes.NewReader(body2))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(service.TenantHeader, "acme")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota tenant request: status %d, want 429", resp2.StatusCode)
	}

	cancel()
	<-stalled
}

func TestHTTPServerDeadline503(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	ts, _ := newRobustServer(t, service.Config{ApproxMCRounds: 15, DefaultTimeout: 2 * time.Second})
	warmHTTP(t, ts)
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})
	resp := postJSON(t, ts.URL+"/sample", map[string]any{"formula": hardDIMACS, "n": 5, "seed": 2})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-struck request: status %d, want 503", resp.StatusCode)
	}
}

func TestHTTPClientTimeout422(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	ts, _ := newRobustServer(t, service.Config{ApproxMCRounds: 15})
	warmHTTP(t, ts)
	faultpoint.Arm(faultpoint.SolverStall, faultpoint.Fault{Delay: time.Minute})
	resp := postJSON(t, ts.URL+"/sample", map[string]any{"formula": hardDIMACS, "n": 5, "seed": 2, "timeout_ms": 150})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("client-timeout request: status %d, want 422", resp.StatusCode)
	}
}

func TestHTTPBodyTooLarge413(t *testing.T) {
	ts, _ := newRobustServer(t, service.Config{MaxBodyBytes: 256})
	big := map[string]any{"formula": "p cnf 1 1\n1 0\nc " + strings.Repeat("x", 1024), "n": 1, "seed": 1}
	resp := postJSON(t, ts.URL+"/sample", big)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "exceeds") {
		t.Fatalf("413 body: err=%v error=%q (want a structured error)", err, e.Error)
	}
	// A body under the cap still works.
	small := postJSON(t, ts.URL+"/sample", map[string]any{"formula": "p cnf 1 1\n1 0\n", "n": 1, "seed": 1})
	defer small.Body.Close()
	if small.StatusCode != http.StatusOK {
		t.Fatalf("small body after 413: status %d", small.StatusCode)
	}
}

func TestHTTPPanic500(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	ts, svc := newRobustServer(t, service.Config{})
	faultpoint.Arm(faultpoint.RequestPanic, faultpoint.Fault{Panic: "injected", Count: 1})
	resp := postJSON(t, ts.URL+"/sample", map[string]any{"formula": "p cnf 1 1\n1 0\n", "n": 1, "seed": 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500", resp.StatusCode)
	}
	if svc.Stats().Outcomes.Panic != 1 {
		t.Fatalf("outcomes %+v, want 1 panic", svc.Stats().Outcomes)
	}
	// Fault exhausted: the very next request succeeds.
	again := postJSON(t, ts.URL+"/sample", map[string]any{"formula": "p cnf 1 1\n1 0\n", "n": 1, "seed": 1})
	defer again.Body.Close()
	if again.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic: status %d", again.StatusCode)
	}
}

func TestHTTPDraining503(t *testing.T) {
	ts, svc := newRobustServer(t, service.Config{})
	resp := postJSON(t, ts.URL+"/sample", map[string]any{"formula": "p cnf 1 1\n1 0\n", "n": 1, "seed": 1})
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Body.Close()
	if h.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz: status %d, want 503", h.StatusCode)
	}
	hz := decode[service.HealthzHTTPResponse](t, h)
	if hz.OK || hz.State != service.HealthDraining {
		t.Fatalf("draining /healthz body %+v", hz)
	}

	s := postJSON(t, ts.URL+"/sample", map[string]any{"formula": "p cnf 1 1\n1 0\n", "n": 1, "seed": 1})
	defer s.Body.Close()
	if s.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /sample: status %d, want 503", s.StatusCode)
	}
	if ra := s.Header.Get("Retry-After"); ra == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
}

// TestHTTPStatsOverloadBlocks: the /stats payload carries the admission
// gate, outcome totals, and health state alongside the cache counters.
func TestHTTPStatsOverloadBlocks(t *testing.T) {
	ts, _ := newRobustServer(t, service.Config{MaxInFlight: 3, MaxQueue: 5})
	resp := postJSON(t, ts.URL+"/sample", map[string]any{"formula": "p cnf 1 1\n1 0\n", "n": 2, "seed": 1})
	resp.Body.Close()
	st := decode[service.StatsHTTPResponse](t, getOK(t, ts.URL+"/stats"))
	if st.Admission.Capacity != 3 || st.Admission.QueueCapacity != 5 {
		t.Fatalf("admission block %+v, want capacity 3 / queue 5", st.Admission)
	}
	if st.Outcomes.OK != 1 {
		t.Fatalf("outcomes block %+v, want 1 ok", st.Outcomes)
	}
	if st.State != service.HealthOK {
		t.Fatalf("state %q, want ok", st.State)
	}
	if st.Misses != 1 {
		t.Fatalf("cache counters lost: %+v", st)
	}
}

func getOK(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return resp
}
