package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"unigen/internal/service"
)

// E14 (BENCH_obs.json): the observability tax. The acceptance budget
// is ≤3% added warm-path latency versus the PR 6 baseline
// (BenchmarkServicePrepared/cache-hit), which ran the identical warm
// request before the metrics registry and span plumbing existed —
// so BenchmarkObsWarmSample IS that baseline workload re-measured
// with instrumentation live, and the two JSON files diff directly.
// The obs package's BenchmarkObsDisarmedSpan (also collected into
// BENCH_obs.json) bounds the per-round span cost when no trace was
// requested: nil-receiver no-ops, no allocation.

// BenchmarkObsWarmSample is the warm /sample service path with the
// full observability spine armed at its defaults: every request pays
// outcome counters, two latency histogram observations, solver-total
// folds, and a live (but unechoed) trace.
func BenchmarkObsWarmSample(b *testing.B) {
	ctx := context.Background()
	f := benchFormula()
	svc, err := service.New(service.Config{ApproxMCRounds: 15})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: 0}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsWarmSampleHTTP adds the HTTP transport: trace-ID header
// on every response, with and without the "trace": true span echo.
func BenchmarkObsWarmSampleHTTP(b *testing.B) {
	run := func(b *testing.B, trace bool) {
		svc, err := service.New(service.Config{ApproxMCRounds: 15})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(service.NewHandler(svc))
		defer ts.Close()
		post := func(seed uint64) {
			body, _ := json.Marshal(service.SampleHTTPRequest{Formula: hardDIMACS, N: 1, Seed: seed, Trace: trace})
			resp, err := http.Post(ts.URL+"/sample", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		post(0) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(uint64(i))
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}

// BenchmarkObsMetricsScrape is the scrape cost on a registry carrying
// real traffic: what a Prometheus server charges the daemon per poll.
func BenchmarkObsMetricsScrape(b *testing.B) {
	ctx := context.Background()
	f := benchFormula()
	svc, err := service.New(service.Config{ApproxMCRounds: 15})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := svc.Sample(ctx, service.SampleRequest{Formula: f, N: 1, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := svc.Registry().WritePrometheus(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
