package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Robustness sentinels. Transports map them onto HTTP statuses; the
// service's outcome counters classify by them.
var (
	// ErrOverloaded tags load-shedding: the concurrency gate and its
	// bounded wait queue are full, the queue wait expired, or a tenant
	// exceeded its in-flight quota. Transports answer 429 with a
	// Retry-After hint — the request was well-formed, the node just
	// cannot take it right now.
	ErrOverloaded = errors.New("service: overloaded")
	// ErrDraining tags requests rejected (or cut short) because the
	// service is shutting down. Transports answer 503: try another node.
	ErrDraining = errors.New("service: draining")
	// ErrDeadline tags the server-side request deadline
	// (Config.DefaultTimeout) or preparation deadline
	// (Config.PrepareTimeout) firing — capacity policy, like a server
	// conflict budget, so transports answer 503.
	ErrDeadline = errors.New("service: server deadline exceeded")
	// ErrClientTimeout tags the deadline the request itself asked for
	// (SampleRequest.Timeout) firing — exhaustion of a budget the client
	// supplied, so transports answer 422, like a client conflict budget.
	ErrClientTimeout = errors.New("service: client timeout exceeded")
	// ErrPanic tags a panic recovered at a request or preparation
	// boundary. Transports answer 500; the panicking flight's result is
	// never cached.
	ErrPanic = errors.New("service: internal panic")
)

// admission is the bounded concurrency gate in front of the request
// scheduler: MaxInFlight slots, a bounded wait queue of MaxQueue
// requests that hold on for up to QueueWait, and per-tenant in-flight
// quotas. Everything beyond that is shed immediately with
// ErrOverloaded — the service degrades to fast, client-visible
// rejections instead of queueing itself to death. A nil slots channel
// means the gate is off (Config.MaxInFlight == 0), leaving only the
// tenant quota, if any.
type admission struct {
	slots       chan struct{} // buffered to MaxInFlight; len() = in flight
	maxQueue    int64
	queueWait   time.Duration
	tenantQuota int

	queued    atomic.Int64 // requests currently waiting for a slot
	maxQueued atomic.Int64 // high-water mark of queued (bounded-depth proof)

	shedFull   atomic.Int64 // rejected: queue already full
	shedWait   atomic.Int64 // rejected: no slot within QueueWait
	shedTenant atomic.Int64 // rejected: tenant over quota

	mu      sync.Mutex
	tenants map[string]int // tenant → in-flight count
}

func newAdmission(cfg Config) *admission {
	a := &admission{tenantQuota: cfg.TenantQuota, tenants: map[string]int{}}
	if cfg.MaxInFlight > 0 {
		a.slots = make(chan struct{}, cfg.MaxInFlight)
		a.maxQueue = int64(cfg.MaxQueue)
		a.queueWait = cfg.QueueWait
		if a.queueWait <= 0 {
			a.queueWait = 2 * time.Second
		}
	}
	return a
}

// acquire admits one request for tenant, blocking in the bounded queue
// when all slots are busy. On success the returned release must be
// called exactly once. On failure it returns ErrOverloaded (shed) or
// the context's cancellation cause (client gone, drain).
func (a *admission) acquire(ctx context.Context, tenant string) (release func(), err error) {
	if a.tenantQuota > 0 {
		a.mu.Lock()
		if a.tenants[tenant] >= a.tenantQuota {
			a.mu.Unlock()
			a.shedTenant.Add(1)
			return nil, fmt.Errorf("%w: tenant %q already has %d requests in flight (quota)", ErrOverloaded, tenant, a.tenantQuota)
		}
		a.tenants[tenant]++
		a.mu.Unlock()
	}
	releaseTenant := func() {
		if a.tenantQuota > 0 {
			a.mu.Lock()
			if a.tenants[tenant] <= 1 {
				delete(a.tenants, tenant)
			} else {
				a.tenants[tenant]--
			}
			a.mu.Unlock()
		}
	}
	if a.slots == nil {
		return releaseTenant, nil
	}

	// Fast path: a slot is free right now.
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots; releaseTenant() }, nil
	default:
	}

	// All slots busy: join the bounded queue or shed on the spot.
	if !a.enqueue() {
		releaseTenant()
		a.shedFull.Add(1)
		return nil, fmt.Errorf("%w: %d in flight, queue of %d full", ErrOverloaded, len(a.slots), a.maxQueue)
	}
	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		return func() { <-a.slots; releaseTenant() }, nil
	case <-timer.C:
		a.queued.Add(-1)
		releaseTenant()
		a.shedWait.Add(1)
		return nil, fmt.Errorf("%w: no capacity within %v", ErrOverloaded, a.queueWait)
	case <-ctx.Done():
		a.queued.Add(-1)
		releaseTenant()
		if cause := context.Cause(ctx); cause != nil {
			return nil, cause
		}
		return nil, ctx.Err()
	}
}

// enqueue reserves a queue position, never letting the depth exceed
// maxQueue (CAS loop: the bound holds under any interleaving). It also
// maintains the high-water mark the chaos suite asserts on.
func (a *admission) enqueue() bool {
	for {
		q := a.queued.Load()
		if q >= a.maxQueue {
			return false
		}
		if a.queued.CompareAndSwap(q, q+1) {
			for {
				m := a.maxQueued.Load()
				if q+1 <= m || a.maxQueued.CompareAndSwap(m, q+1) {
					break
				}
			}
			return true
		}
	}
}

// overloaded reports backpressure building: the queue is at least half
// full. This flips /healthz to "overloaded" before shedding starts in
// earnest, giving load balancers a signal ahead of the 429s.
func (a *admission) overloaded() bool {
	if a.slots == nil {
		return false
	}
	if a.maxQueue == 0 {
		return len(a.slots) == cap(a.slots)
	}
	return a.queued.Load() >= (a.maxQueue+1)/2
}

func (a *admission) snapshot() AdmissionStats {
	st := AdmissionStats{
		MaxQueued:     a.maxQueued.Load(),
		Queued:        a.queued.Load(),
		ShedQueueFull: a.shedFull.Load(),
		ShedQueueWait: a.shedWait.Load(),
		ShedTenant:    a.shedTenant.Load(),
	}
	st.Shed = st.ShedQueueFull + st.ShedQueueWait + st.ShedTenant
	if a.slots != nil {
		st.InFlight = len(a.slots)
		st.Capacity = cap(a.slots)
		st.QueueCapacity = int(a.maxQueue)
	}
	a.mu.Lock()
	st.Tenants = len(a.tenants)
	a.mu.Unlock()
	return st
}

// AdmissionStats is a point-in-time snapshot of the concurrency gate.
type AdmissionStats struct {
	InFlight      int   `json:"in_flight"`       // slots occupied now
	Capacity      int   `json:"capacity"`        // MaxInFlight (0: gate off)
	Queued        int64 `json:"queued"`          // waiting for a slot now
	QueueCapacity int   `json:"queue_capacity"`  // MaxQueue
	MaxQueued     int64 `json:"max_queued"`      // high-water queue depth
	Shed          int64 `json:"shed"`            // total requests rejected by admission
	ShedQueueFull int64 `json:"shed_queue_full"` // … because the queue was full
	ShedQueueWait int64 `json:"shed_queue_wait"` // … because QueueWait expired
	ShedTenant    int64 `json:"shed_tenant"`     // … because a tenant quota was hit
	Tenants       int   `json:"tenants"`         // distinct tenants in flight
}

// OutcomeStats counts finished requests by how they ended. Sample and
// Count both feed it; validation rejections count too (as Invalid).
type OutcomeStats struct {
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"`     // ErrOverloaded (429)
	Drained  int64 `json:"drained"`  // ErrDraining (503)
	Timeout  int64 `json:"timeout"`  // server/client deadlines, conflict budgets
	Panic    int64 `json:"panic"`    // recovered panics (500)
	Invalid  int64 `json:"invalid"`  // bad requests, unsatisfiable formulas (422)
	Canceled int64 `json:"canceled"` // client gone (context cancellation)
	Error    int64 `json:"error"`    // anything else (500)
}

// outcomes is the atomic backing of OutcomeStats.
type outcomes struct {
	ok, shed, drained, timeout, panics, invalid, canceled, errs atomic.Int64
}

// add records one finished request under the shared outcome vocabulary
// (see outcomeName in obs.go): the same names label
// unigen_requests_total, structured logs, and the debug ring.
func (o *outcomes) add(name string) {
	switch name {
	case "ok":
		o.ok.Add(1)
	case "shed":
		o.shed.Add(1)
	case "drained":
		o.drained.Add(1)
	case "timeout":
		o.timeout.Add(1)
	case "panic":
		o.panics.Add(1)
	case "invalid":
		o.invalid.Add(1)
	case "canceled":
		o.canceled.Add(1)
	default:
		o.errs.Add(1)
	}
}

func (o *outcomes) snapshot() OutcomeStats {
	return OutcomeStats{
		OK:       o.ok.Load(),
		Shed:     o.shed.Load(),
		Drained:  o.drained.Load(),
		Timeout:  o.timeout.Load(),
		Panic:    o.panics.Load(),
		Invalid:  o.invalid.Load(),
		Canceled: o.canceled.Load(),
		Error:    o.errs.Load(),
	}
}
