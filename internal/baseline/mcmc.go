package baseline

import (
	"errors"
	"math"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// MCMCOptions configures the Markov-chain sampler.
type MCMCOptions struct {
	// Steps is the chain length per sample. §3 of the DAC'14 paper:
	// "convergence is often impractically slow in practice" — short
	// chains produce measurably non-uniform witnesses (see tests),
	// which is exactly the criticism reproduced here.
	Steps int
	// Temperature of the Metropolis acceptance rule; energy is the
	// number of violated constraints.
	Temperature float64
	// Anneal linearly cools the temperature to ~0 over the chain
	// (simulated annealing, Kirkpatrick et al. [15]).
	Anneal bool
}

// MCMC is a Metropolis–Hastings witness sampler over full assignments
// with single-variable-flip proposals — the family of samplers the
// paper's §3 surveys ([16], [26]) and UniGen supersedes.
type MCMC struct {
	f    *cnf.Formula
	opts MCMCOptions
	// occurrence lists: clause indices per variable, XOR indices per var
	occC [][]int32
	occX [][]int32
}

// NewMCMC builds the sampler.
func NewMCMC(f *cnf.Formula, opts MCMCOptions) *MCMC {
	if opts.Steps <= 0 {
		opts.Steps = 10 * f.NumVars
	}
	if opts.Temperature <= 0 {
		opts.Temperature = 0.6
	}
	m := &MCMC{f: f, opts: opts}
	m.occC = make([][]int32, f.NumVars+1)
	m.occX = make([][]int32, f.NumVars+1)
	for i, c := range f.Clauses {
		for _, l := range c {
			m.occC[l.Var()] = append(m.occC[l.Var()], int32(i))
		}
	}
	for i, x := range f.XORs {
		for _, v := range x.Vars {
			m.occX[v] = append(m.occX[v], int32(i))
		}
	}
	return m
}

func (m *MCMC) clauseSat(i int32, a cnf.Assignment) bool {
	for _, l := range m.f.Clauses[i] {
		if a[l.Var()] != l.Neg() {
			return true
		}
	}
	return false
}

func (m *MCMC) xorSat(i int32, a cnf.Assignment) bool {
	x := m.f.XORs[i]
	par := false
	for _, v := range x.Vars {
		par = par != a[v]
	}
	return par == x.RHS
}

// energy counts violated constraints.
func (m *MCMC) energy(a cnf.Assignment) int {
	e := 0
	for i := range m.f.Clauses {
		if !m.clauseSat(int32(i), a) {
			e++
		}
	}
	for i := range m.f.XORs {
		if !m.xorSat(int32(i), a) {
			e++
		}
	}
	return e
}

// deltaEnergy computes the energy change of flipping v.
func (m *MCMC) deltaEnergy(a cnf.Assignment, v cnf.Var) int {
	d := 0
	for _, i := range m.occC[v] {
		before := m.clauseSat(i, a)
		a[v] = !a[v]
		after := m.clauseSat(i, a)
		a[v] = !a[v]
		if before && !after {
			d++
		} else if !before && after {
			d--
		}
	}
	// Every XOR containing v flips its status.
	for _, i := range m.occX[v] {
		if m.xorSat(i, a) {
			d++
		} else {
			d--
		}
	}
	return d
}

// Sample runs one chain from a uniform random start and returns the
// final state if it satisfies the formula, else ErrFailed.
func (m *MCMC) Sample(rng *randx.RNG) (cnf.Assignment, error) {
	if m.f.NumVars == 0 {
		return nil, errors.New("mcmc: empty formula")
	}
	a := cnf.NewAssignment(m.f.NumVars)
	for v := 1; v <= m.f.NumVars; v++ {
		a[cnf.Var(v)] = rng.Bool()
	}
	e := m.energy(a)
	temp := m.opts.Temperature
	for step := 0; step < m.opts.Steps; step++ {
		if m.opts.Anneal {
			frac := float64(step) / float64(m.opts.Steps)
			temp = m.opts.Temperature * (1 - frac)
			if temp < 1e-3 {
				temp = 1e-3
			}
		}
		v := cnf.Var(rng.Intn(m.f.NumVars) + 1)
		d := m.deltaEnergy(a, v)
		if d <= 0 || rng.Float64() < math.Exp(-float64(d)/temp) {
			a[v] = !a[v]
			e += d
		}
	}
	if e != 0 {
		return nil, ErrFailed
	}
	return a, nil
}
