package baseline

import (
	"errors"
	"fmt"

	"unigen/internal/cnf"
	"unigen/internal/counter"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// US is the idealized uniform sampler of §5: determine |R_F| with an
// exact model counter (the paper uses sharpSAT; we enumerate projected
// witnesses, which both counts and indexes them), then emulate sampling
// by drawing a uniform index into R_F. Figure 1 compares UniGen's
// output histogram against US's.
type US struct {
	witnesses []cnf.Assignment
	samples   int64
}

// NewUS enumerates all witnesses of f (distinct on the sampling set) up
// to limit and returns the sampler. It errors if the witness space
// exceeds limit — US is a reference for small, fully countable spaces.
func NewUS(f *cnf.Formula, limit int, solver sat.Config) (*US, error) {
	ws, err := counter.EnumerateProjected(f, limit, solver)
	if err != nil {
		return nil, fmt.Errorf("us: %w", err)
	}
	if len(ws) == 0 {
		return nil, errors.New("us: formula is unsatisfiable")
	}
	return &US{witnesses: ws}, nil
}

// Count returns |R_F↓S|.
func (u *US) Count() int { return len(u.witnesses) }

// Sample returns a uniformly random witness. It never fails.
func (u *US) Sample(rng *randx.RNG) cnf.Assignment {
	u.samples++
	return u.witnesses[rng.Intn(len(u.witnesses))]
}
