package baseline

import (
	"errors"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

func TestMCMCProducesValidWitnesses(t *testing.T) {
	f := cnf.New(6)
	f.AddClause(1, 2)
	f.AddClause(-3, 4)
	f.AddXOR([]cnf.Var{5, 6}, true)
	m := NewMCMC(f, MCMCOptions{Steps: 600})
	rng := randx.New(121)
	got := 0
	for i := 0; i < 100; i++ {
		a, err := m.Sample(rng)
		if errors.Is(err, ErrFailed) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !a.Satisfies(f) {
			t.Fatal("MCMC returned a non-witness")
		}
		got++
	}
	if got < 50 {
		t.Fatalf("only %d/100 chains converged", got)
	}
}

func TestMCMCAnnealConverges(t *testing.T) {
	f := cnf.New(8)
	for v := 1; v <= 7; v++ {
		f.AddClause(v, v+1)
	}
	m := NewMCMC(f, MCMCOptions{Steps: 1500, Temperature: 2, Anneal: true})
	rng := randx.New(122)
	got := 0
	for i := 0; i < 60; i++ {
		if _, err := m.Sample(rng); err == nil {
			got++
		}
	}
	if got < 30 {
		t.Fatalf("annealing converged only %d/60 times", got)
	}
}

// TestMCMCSkewOnTwoBasins reproduces the paper's §3 criticism: MCMC
// with practical chain lengths is measurably non-uniform. The formula
// chains x1=...=x6 (two basins separated by an energy barrier of
// equality violations) and pins y1..y4 to 1 whenever the x-block is 0:
// 16 witnesses in the x=1 basin (free y) and 1 in the x=0 basin.
// Short single-flip chains freeze into whichever basin the random
// start favors, so basin mass reflects basin geometry — not witness
// counts — and the distribution over the 17 witnesses is far from
// uniform.
func TestMCMCSkewOnTwoBasins(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	f := cnf.New(10) // x = 1..6, y = 7..10
	for v := 1; v < 6; v++ {
		f.AddClause(v, -(v + 1))
		f.AddClause(-v, v+1)
	}
	for y := 7; y <= 10; y++ {
		f.AddClause(1, y)
	}
	// Cold chain: boundary flips cost energy 1 and accept with
	// p = e^{-1/0.15} ≈ 0.001, so 150 steps cannot cross between basins.
	m := NewMCMC(f, MCMCOptions{Steps: 150, Temperature: 0.15})
	rng := randx.New(123)
	const want = 4000
	counts := map[string]int{}
	vars := f.SamplingVars()
	for got := 0; got < want; {
		a, err := m.Sample(rng)
		if errors.Is(err, ErrFailed) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		counts[a.Project(vars)]++
		got++
	}
	// TVD from uniform over the 17 witnesses; sampling noise alone at
	// n=4000 is ~0.02, so 0.15 indicates genuine skew.
	tvd := 0.0
	for _, c := range counts {
		d := float64(c)/want - 1.0/17
		if d < 0 {
			d = -d
		}
		tvd += d
	}
	tvd += float64(17-len(counts)) / 17
	tvd /= 2
	if tvd < 0.15 {
		t.Fatalf("MCMC TVD from uniform = %.3f; expected strong skew (> 0.15)", tvd)
	}
}

func TestMCMCUnsatAlwaysFails(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1)
	f.AddClause(-1)
	m := NewMCMC(f, MCMCOptions{Steps: 200})
	rng := randx.New(124)
	for i := 0; i < 20; i++ {
		if _, err := m.Sample(rng); err == nil {
			t.Fatal("MCMC sampled an unsat formula")
		}
	}
}

func TestMCMCDefaults(t *testing.T) {
	f := cnf.New(4)
	m := NewMCMC(f, MCMCOptions{})
	if m.opts.Steps != 40 || m.opts.Temperature != 0.6 {
		t.Fatalf("defaults = %+v", m.opts)
	}
}
