package baseline

import (
	"errors"
	"fmt"

	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// XORSampleOptions configures the XORSample′ baseline.
type XORSampleOptions struct {
	// S is the number of XOR constraints to conjoin. This is the
	// "difficult-to-estimate input parameter" the DAC'14 paper
	// criticizes: the near-uniformity guarantee only holds if S is
	// chosen correctly relative to the unknown log₂|R_F|.
	S int
	// MaxCell caps the enumeration of the chosen cell; a cell larger
	// than this fails the round (the user chose S too small).
	MaxCell int
	// Solver configures BSAT calls.
	Solver sat.Config
}

// XORSample implements XORSample′ (Gomes, Sabharwal, Selman; NIPS 2007):
// conjoin S random XOR constraints over the full support, enumerate the
// surviving cell completely, and return one of its witnesses uniformly
// at random. The round fails if the cell is empty or overflows MaxCell.
type XORSample struct {
	f    *cnf.Formula
	opts XORSampleOptions

	samples  int64
	failures int64
}

// NewXORSample builds the baseline sampler.
func NewXORSample(f *cnf.Formula, opts XORSampleOptions) (*XORSample, error) {
	if opts.S < 0 {
		return nil, fmt.Errorf("baseline: XORSample S must be non-negative, got %d", opts.S)
	}
	if opts.MaxCell <= 0 {
		opts.MaxCell = 4096
	}
	return &XORSample{f: f, opts: opts}, nil
}

// SuccessProb returns the observed success probability.
func (x *XORSample) SuccessProb() float64 {
	tot := x.samples + x.failures
	if tot == 0 {
		return 0
	}
	return float64(x.samples) / float64(tot)
}

// Sample draws one witness or fails with ErrFailed.
func (x *XORSample) Sample(rng *randx.RNG) (cnf.Assignment, error) {
	fullSupport := make([]cnf.Var, x.f.NumVars)
	for i := range fullSupport {
		fullSupport[i] = cnf.Var(i + 1)
	}
	h := hashfam.Draw(rng, fullSupport, x.opts.S)
	res := bsat.Enumerate(x.f, x.opts.MaxCell+1, bsat.Options{
		SamplingSet: fullSupport,
		Hash:        h,
		Solver:      x.opts.Solver,
	})
	if res.BudgetExceeded {
		return nil, fmt.Errorf("xorsample: %w", errBudget)
	}
	n := len(res.Witnesses)
	if n == 0 || n > x.opts.MaxCell {
		x.failures++
		return nil, ErrFailed
	}
	x.samples++
	return res.Witnesses[rng.Intn(n)], nil
}

// ErrIsFailed reports whether err is the round-failure sentinel.
func ErrIsFailed(err error) bool { return errors.Is(err, ErrFailed) }
