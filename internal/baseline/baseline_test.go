package baseline

import (
	"errors"
	"math"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

func TestUniWitEasyCase(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1, 2) // 3 witnesses ≤ pivot
	u := NewUniWit(f, UniWitOptions{})
	rng := randx.New(31)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		w, err := u.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Satisfies(f) {
			t.Fatal("invalid witness")
		}
		counts[w.Project(f.SamplingVars())]++
	}
	if len(counts) != 3 {
		t.Fatalf("distinct = %d, want 3", len(counts))
	}
	for _, c := range counts {
		if math.Abs(float64(c)-n/3.0) > 6*math.Sqrt(n/3.0) {
			t.Fatalf("count %d far from uniform %d", c, n/3)
		}
	}
}

func TestUniWitUnsat(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(1)
	f.AddClause(-1)
	u := NewUniWit(f, UniWitOptions{})
	if _, err := u.Sample(randx.New(32)); err == nil {
		t.Fatal("sampled from unsat formula")
	}
}

func TestUniWitHashingPathProducesValidWitnesses(t *testing.T) {
	// 2^7 = 128 free-cube models > pivot forces the hashing loop.
	f := cnf.New(7)
	u := NewUniWit(f, UniWitOptions{})
	rng := randx.New(33)
	got := 0
	for i := 0; i < 60 && got < 10; i++ {
		w, err := u.Sample(rng)
		if errors.Is(err, ErrFailed) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !w.Satisfies(f) {
			t.Fatal("invalid witness")
		}
		got++
	}
	if got == 0 {
		t.Fatal("no successful samples")
	}
	st := u.Stats()
	if st.XORRows == 0 {
		t.Fatal("hashing path issued no XOR rows")
	}
	// Full-support XORs: average length ≈ |X|/2 = 3.5.
	if avg := st.AvgXORLen(); avg < 2 || avg > 5 {
		t.Fatalf("avg xor len = %.2f, want ≈ 3.5", avg)
	}
}

func TestUniWitFullSupportXORs(t *testing.T) {
	// Even when a small sampling set is declared on the formula, UniWit
	// must ignore it and hash the full support — that is the documented
	// deficiency UniGen fixes.
	f := cnf.New(16)
	f.SamplingSet = []cnf.Var{1, 2}
	u := NewUniWit(f, UniWitOptions{})
	rng := randx.New(34)
	for i := 0; i < 40; i++ {
		_, err := u.Sample(rng)
		if err != nil && !errors.Is(err, ErrFailed) {
			t.Fatal(err)
		}
	}
	if avg := u.Stats().AvgXORLen(); avg < 5 {
		t.Fatalf("avg xor len = %.2f; want ≈ |X|/2 = 8 (full support)", avg)
	}
}

func TestXORSampleValidity(t *testing.T) {
	f := cnf.New(6)
	f.AddClause(1, 2, 3)
	x, err := NewXORSample(f, XORSampleOptions{S: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(35)
	got := 0
	for i := 0; i < 50; i++ {
		w, err := x.Sample(rng)
		if errors.Is(err, ErrFailed) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !w.Satisfies(f) {
			t.Fatal("invalid witness")
		}
		got++
	}
	if got == 0 {
		t.Fatal("no successes")
	}
	if p := x.SuccessProb(); p <= 0 || p > 1 {
		t.Fatalf("success prob %v", p)
	}
}

func TestXORSampleBadS(t *testing.T) {
	f := cnf.New(2)
	if _, err := NewXORSample(f, XORSampleOptions{S: -1}); err == nil {
		t.Fatal("negative S accepted")
	}
}

func TestXORSampleOvershootFails(t *testing.T) {
	// S much larger than log2|R_F| empties almost every cell.
	f := cnf.New(4) // 16 models
	x, err := NewXORSample(f, XORSampleOptions{S: 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(36)
	fails := 0
	for i := 0; i < 30; i++ {
		if _, err := x.Sample(rng); errors.Is(err, ErrFailed) {
			fails++
		}
	}
	if fails < 20 {
		t.Fatalf("only %d/30 failures with absurd S; expected most to fail", fails)
	}
}

func TestUSUniform(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1, 2, 3) // 7 witnesses
	u, err := NewUS(f, 100, sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Count() != 7 {
		t.Fatalf("Count = %d, want 7", u.Count())
	}
	rng := randx.New(37)
	counts := map[string]int{}
	const n = 7000
	for i := 0; i < n; i++ {
		w := u.Sample(rng)
		if !w.Satisfies(f) {
			t.Fatal("invalid witness")
		}
		counts[w.Project(f.SamplingVars())]++
	}
	for _, c := range counts {
		if math.Abs(float64(c)-n/7.0) > 6*math.Sqrt(n/7.0) {
			t.Fatalf("count %d far from uniform %d", c, n/7)
		}
	}
}

func TestUSUnsat(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(1)
	f.AddClause(-1)
	if _, err := NewUS(f, 10, sat.Config{}); err == nil {
		t.Fatal("US accepted unsat formula")
	}
}

func TestUSLimit(t *testing.T) {
	f := cnf.New(8) // 256 models
	if _, err := NewUS(f, 10, sat.Config{}); err == nil {
		t.Fatal("US accepted over-limit formula")
	}
}
