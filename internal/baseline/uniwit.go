// Package baseline implements the comparison generators of the DAC'14
// evaluation: UniWit (Chakraborty, Meel, Vardi; CAV 2013), XORSample′
// (Gomes, Sabharwal, Selman; NIPS 2007), and US, the idealized uniform
// sampler built from an exact model counter that Figure 1 uses as its
// reference.
package baseline

import (
	"errors"
	"fmt"

	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// ErrFailed is returned when a baseline generator reports failure (⊥)
// for one sampling round.
var ErrFailed = errors.New("baseline: sampling round failed (⊥)")

// UniWitOptions configures the UniWit baseline.
type UniWitOptions struct {
	// Pivot is the cell-size bound. The CAV'13 constant for the
	// near-uniformity guarantee; the default 20 keeps the generator's
	// documented ≥ 0.125 success-probability regime.
	Pivot int
	// Solver configures BSAT calls.
	Solver sat.Config
}

// UniWitStats mirrors core.Stats for the baseline columns of Tables 1–2.
type UniWitStats struct {
	Samples   int64
	Failures  int64
	BSATCalls int64
	XORRows   int64
	XORLenSum int64 // total variables across xor rows (exact popcount total)
}

// AvgXORLen returns the mean XOR-clause length issued by UniWit.
func (st UniWitStats) AvgXORLen() float64 {
	if st.XORRows == 0 {
		return 0
	}
	return float64(st.XORLenSum) / float64(st.XORRows)
}

// SuccessProb returns the observed success probability.
func (st UniWitStats) SuccessProb() float64 {
	tot := st.Samples + st.Failures
	if tot == 0 {
		return 0
	}
	return float64(st.Samples) / float64(tot)
}

// UniWit is a reimplementation of the CAV 2013 near-uniform generator,
// faithful in the three properties the DAC'14 comparison rests on:
//
//  1. XOR constraints range over the FULL support X of the formula
//     (average length |X|/2), not an independent support — the paper's
//     §4 explains why this throttles scalability;
//  2. every sample searches the hash-count m sequentially from 1, from
//     scratch — there is no once-per-formula amortization ("generating
//     every witness in UniWit requires sequentially searching over all
//     values afresh", §5) — with leap-frogging disabled as in §5;
//  3. a cell is accepted with probability |Y|/pivot, yielding the
//     near-uniformity guarantee with success probability ≥ 0.125 rather
//     than UniGen's ≥ 0.62.
//
// Exact CAV'13 constants not pinned by the DAC'14 text are documented
// here rather than guessed: pivot defaults to 20.
type UniWit struct {
	f     *cnf.Formula
	opts  UniWitOptions
	stats UniWitStats
}

// NewUniWit builds the baseline sampler. Unlike UniGen there is no
// setup phase to amortize — that asymmetry is the point of Table 1.
func NewUniWit(f *cnf.Formula, opts UniWitOptions) *UniWit {
	if opts.Pivot <= 0 {
		opts.Pivot = 20
	}
	return &UniWit{f: f, opts: opts}
}

// Stats returns a snapshot of the counters.
func (u *UniWit) Stats() UniWitStats { return u.stats }

// Sample draws one witness or fails with ErrFailed.
func (u *UniWit) Sample(rng *randx.RNG) (cnf.Assignment, error) {
	pivot := u.opts.Pivot
	fullSupport := make([]cnf.Var, u.f.NumVars)
	for i := range fullSupport {
		fullSupport[i] = cnf.Var(i + 1)
	}
	// Base case: few enough witnesses to enumerate outright.
	res := bsat.Enumerate(u.f, pivot+1, bsat.Options{SamplingSet: fullSupport, Solver: u.opts.Solver})
	u.stats.BSATCalls++
	if res.BudgetExceeded {
		return nil, fmt.Errorf("uniwit: %w", errBudget)
	}
	if len(res.Witnesses) <= pivot {
		if len(res.Witnesses) == 0 {
			return nil, errors.New("uniwit: formula is unsatisfiable")
		}
		u.stats.Samples++
		return res.Witnesses[rng.Intn(len(res.Witnesses))], nil
	}
	// Sequential search over the number of XOR constraints, afresh for
	// every sample.
	for i := 1; i < len(fullSupport); i++ {
		h := hashfam.Draw(rng, fullSupport, i)
		u.stats.XORRows += int64(h.M())
		u.stats.XORLenSum += int64(h.TotalLen())
		res := bsat.Enumerate(u.f, pivot+1, bsat.Options{
			SamplingSet: fullSupport,
			Hash:        h,
			Solver:      u.opts.Solver,
		})
		u.stats.BSATCalls++
		if res.BudgetExceeded {
			return nil, fmt.Errorf("uniwit: %w", errBudget)
		}
		n := len(res.Witnesses)
		if n >= 1 && n <= pivot {
			// Accept with probability |Y|/pivot: the rejection step that
			// buys the near-uniform lower bound.
			if rng.Float64() < float64(n)/float64(pivot) {
				u.stats.Samples++
				return res.Witnesses[rng.Intn(n)], nil
			}
			u.stats.Failures++
			return nil, ErrFailed
		}
		if n == 0 {
			u.stats.Failures++
			return nil, ErrFailed
		}
	}
	u.stats.Failures++
	return nil, ErrFailed
}

var errBudget = errors.New("BSAT conflict budget exhausted")

// ErrBudget reports whether err is a budget-exhaustion error from a
// baseline sampler.
func ErrBudget(err error) bool { return errors.Is(err, errBudget) }
