package sat

import (
	"math/bits"

	"unigen/internal/cnf"
)

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first), the backtrack level, and the LBD
// (number of distinct decision levels in the learned clause).
//
// Reasons that are packed XOR rows are walked bit-by-bit in place
// instead of being materialized through xorFalseClause: on hash-heavy
// workloads a reason row covers half the support, and rendering ~|X|/2
// literals per resolution step (then reading them back once) dominated
// analysis time. The in-place walk visits the same variables in the
// same order, so activities, the learned clause, and the search
// trajectory are bit-identical to the materialized path.
func (s *Solver) analyze(confl conflict) (learnt []cnf.Lit, btLevel, lbd int) {
	learnt = s.analyzeLearnt[:0] // scratch reused across conflicts
	learnt = append(learnt, 0)   // placeholder for the asserting literal
	pathC := 0
	var p cnf.Lit
	idx := len(s.trail) - 1
	reasonLits := confl.lits
	xorReason := int32(-1) // ≥ 0: walk s.xors[xorReason] in place instead
	if confl.cr != crefUndef {
		// Arena conflict: materialize into the conflict scratch (unused
		// in this case — XOR/binary conflicts arrive pre-materialized).
		s.conflBuf = s.ca.appendLits(s.conflBuf[:0], confl.cr)
		reasonLits = s.conflBuf
		if s.ca.learnt(confl.cr) {
			s.bumpClause(confl.cr)
		}
	}
	toClear := s.analyzeSeen[:0]
	dl := s.decisionLevel()
	for {
		if xorReason >= 0 {
			// In-place packed-row walk; p's own variable is skipped, the
			// rest visit in ascending column order — exactly the order
			// xorFalseClause(buf, xi, p.Var()) would render them.
			x := &s.xors[xorReason]
			off := int(x.off)
			pv := p.Var()
			for w, b := range x.bits {
				// Level-0 columns render as literals the generic body skips
				// by level; drop whole words of them up front.
				b &^= s.xAssignedL0[off+w]
				tw := s.xTrue[off+w]
				for b != 0 {
					k := b & (-b)
					c := (off+w)<<6 | bits.TrailingZeros64(b)
					b &^= k
					xv := s.xvarOf[c]
					if xv == pv || s.seen[xv] != 0 {
						continue
					}
					s.seen[xv] = 1
					toClear = append(toClear, xv)
					s.bumpVar(xv)
					if s.level[xv] >= dl {
						pathC++
					} else {
						learnt = append(learnt, cnf.MkLit(xv, tw&k != 0))
					}
				}
			}
		} else {
			start := 0
			if p != 0 {
				start = 1 // skip the implied literal itself
			}
			for _, q := range reasonLits[start:] {
				v := q.Var()
				if s.seen[v] == 0 && s.level[v] > 0 {
					s.seen[v] = 1
					toClear = append(toClear, v)
					s.bumpVar(v)
					if s.level[v] >= dl {
						pathC++
					} else {
						learnt = append(learnt, q)
					}
				}
			}
		}
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = 0
		pathC--
		if pathC <= 0 {
			break
		}
		r := s.reasons[p.Var()]
		if r.tag == reasonXOR && s.xors[r.ref].bits != nil {
			xorReason = int32(r.ref)
			continue
		}
		xorReason = -1
		reasonLits = s.reasonLitsFor(p.Var())
		if r.tag == reasonClause && s.ca.learnt(r.ref) {
			s.bumpClause(r.ref)
		}
	}
	learnt[0] = p.Not()

	// Clause minimization (basic conflict-clause minimization): a literal
	// is redundant if it is implied by other literals of the clause.
	w := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		if s.reasons[v].isNone() || !s.litRedundant(learnt[i]) {
			learnt[w] = learnt[i]
			w++
		}
	}
	learnt = learnt[:w]

	// Backtrack level: second-highest level in the clause.
	if len(learnt) == 1 {
		btLevel = 0
	} else {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}

	// LBD: distinct decision levels among the learned literals, counted
	// with a stamped array to avoid a per-conflict map allocation.
	s.lbdStamp++
	for len(s.lbdMark) <= s.decisionLevel() {
		s.lbdMark = append(s.lbdMark, 0)
	}
	for _, l := range learnt {
		lvl := s.level[l.Var()]
		if s.lbdMark[lvl] != s.lbdStamp {
			s.lbdMark[lvl] = s.lbdStamp
			lbd++
		}
	}

	for _, v := range toClear {
		s.seen[v] = 0
	}
	s.analyzeLearnt = learnt[:0]
	s.analyzeSeen = toClear[:0]
	return learnt, btLevel, lbd
}

// litRedundant reports whether literal l is implied by the other
// (seen-marked) literals of the learned clause: every literal of its
// reason is either assigned at level 0 or already marked seen. Packed
// XOR reasons are scanned in place with early exit — same verdict as
// materializing the row, without rendering ~row-length literals per
// candidate.
func (s *Solver) litRedundant(l cnf.Lit) bool {
	lv := l.Var()
	if r := s.reasons[lv]; r.tag == reasonXOR {
		if x := &s.xors[r.ref]; x.bits != nil {
			off := int(x.off)
			for w, b := range x.bits {
				b &^= s.xAssignedL0[off+w] // level-0 literals are skipped anyway
				for b != 0 {
					c := (off+w)<<6 | bits.TrailingZeros64(b)
					b &= b - 1
					xv := s.xvarOf[c]
					if xv == lv {
						continue
					}
					if s.seen[xv] == 0 {
						return false
					}
				}
			}
			return true
		}
	}
	rl := s.reasonLitsFor(lv)
	for _, q := range rl[1:] {
		v := q.Var()
		if s.level[v] == 0 {
			continue
		}
		if s.seen[v] == 0 {
			return false
		}
	}
	return true
}
