package sat

import "unigen/internal/cnf"

// Clause arena: every CNF clause of the solver — problem, learned, and
// removable — lives in one flat []uint32 store and is addressed by a
// CRef, the index of its header word. This is the MiniSat/Glucose
// memory layout: a clause is one contiguous block (header, then its
// literals inline), so propagation walks cache-line-contiguous memory
// instead of chasing per-clause Go heap pointers, clause learning in
// the steady state is a bump allocation into the store, and deletion
// is a header bit whose space a compacting GC pass reclaims.
//
// Block layout at CRef c:
//
//	store[c]        header: size<<11 | lbd<<3 | mark<<2 | learnt<<1 | deleted
//	store[c+1]      learnt clauses only: activity ordinal (index into act)
//	store[c+1+L:]   the literals, one uint32 word each (L = learnt bit)
//
// The LBD field saturates at 255 and the size field holds up to 2^21-1
// literals; both are fixed for the clause's lifetime. The mark bit is
// transient scratch, used for two disjoint jobs: locked-reason marking
// during reduceDB/CollectGarbage (set from the trail, cleared from the
// trail) and the relocated flag during compaction (when set there, the
// word at c+1 holds the forwarding CRef instead of its normal content).
//
// Clause activities live in a side slice indexed by a learnt ordinal
// rather than inline: they are touched only by bumping and reduceDB
// sorting, not by propagation, and keeping them out of the store keeps
// relocation a plain word copy. Ordinals are free-listed on deletion,
// so the side slice stays O(live learnts).
//
// Binary clauses added by AddClause and recordLearnt never enter the
// arena: the watcher itself carries the whole clause (the blocker IS
// the other literal, tagged crefBin), so binary propagation touches no
// clause memory at all. Removable binary clauses (a guarded unit) do
// get arena blocks — Release needs an address to delete.

// CRef addresses a clause in the solver's arena. CRefs are dense
// indices, not pointers: a compaction (Solver.CollectGarbage or a
// restart-time sweep) relocates live clauses and rewrites every CRef
// the solver itself holds — watch lists, trail reasons, the problem/
// learnt indices, and the clause lists of unreleased selectors. No
// other holder survives relocation; callers must not keep a CRef
// across Solve or CollectGarbage.
type CRef = uint32

const (
	crefUndef CRef = ^CRef(0)     // "no clause" sentinel
	crefBin   CRef = ^CRef(0) - 1 // watcher tag: binary clause inlined in the watcher
)

// Header bit layout.
const (
	hdrDeleted   uint32 = 1 << 0
	hdrLearnt    uint32 = 1 << 1
	hdrMark      uint32 = 1 << 2
	hdrLBDShift         = 3
	hdrLBDMask   uint32 = 0xff
	hdrSizeShift        = 11

	maxLBD        = 255
	maxClauseSize = 1<<(32-hdrSizeShift) - 1
)

// arena owns the flat store and the learnt-activity side slice.
type arena struct {
	store    []uint32
	act      []float64 // learnt activity, indexed by the block's ordinal word
	freeActs []uint32  // recycled ordinals of deleted learnts
	wasted   int       // words held by deleted blocks, reclaimable by compaction
	spare    []uint32  // retired store, recycled as the next compaction target
}

// alloc appends a clause block and returns its CRef. actInit seeds the
// activity of a learnt clause (ignored otherwise).
func (ca *arena) alloc(lits []cnf.Lit, learnt bool, lbd int, actInit float64) CRef {
	if len(lits) > maxClauseSize {
		panic("sat: clause too large for the arena header")
	}
	if uint64(len(ca.store))+uint64(len(lits))+2 >= uint64(crefBin) {
		panic("sat: clause arena exhausted")
	}
	if lbd > maxLBD {
		lbd = maxLBD
	}
	c := CRef(len(ca.store))
	hdr := uint32(len(lits))<<hdrSizeShift | uint32(lbd)<<hdrLBDShift
	if learnt {
		hdr |= hdrLearnt
	}
	ca.store = append(ca.store, hdr)
	if learnt {
		var ord uint32
		if n := len(ca.freeActs); n > 0 {
			ord = ca.freeActs[n-1]
			ca.freeActs = ca.freeActs[:n-1]
			ca.act[ord] = actInit
		} else {
			ord = uint32(len(ca.act))
			ca.act = append(ca.act, actInit)
		}
		ca.store = append(ca.store, ord)
	}
	for _, l := range lits {
		ca.store = append(ca.store, uint32(l))
	}
	return c
}

func (ca *arena) deleted(c CRef) bool { return ca.store[c]&hdrDeleted != 0 }
func (ca *arena) learnt(c CRef) bool  { return ca.store[c]&hdrLearnt != 0 }
func (ca *arena) marked(c CRef) bool  { return ca.store[c]&hdrMark != 0 }
func (ca *arena) mark(c CRef)         { ca.store[c] |= hdrMark }
func (ca *arena) unmark(c CRef)       { ca.store[c] &^= hdrMark }

func (ca *arena) size(c CRef) int { return int(ca.store[c] >> hdrSizeShift) }
func (ca *arena) lbd(c CRef) int {
	return int(ca.store[c] >> hdrLBDShift & hdrLBDMask)
}

// litBase returns the store index of the clause's first literal.
func (ca *arena) litBase(c CRef) int {
	return int(c) + 1 + int(ca.store[c]>>1&1)
}

// lit returns the k-th literal of the clause.
func (ca *arena) lit(c CRef, k int) cnf.Lit {
	return cnf.Lit(ca.store[ca.litBase(c)+k])
}

// appendLits appends the clause's literals to buf (scratch
// materialization for conflict analysis, which works on []cnf.Lit).
func (ca *arena) appendLits(buf []cnf.Lit, c CRef) []cnf.Lit {
	b := ca.litBase(c)
	for _, w := range ca.store[b : b+ca.size(c)] {
		buf = append(buf, cnf.Lit(w))
	}
	return buf
}

// activity returns the learnt clause's activity from the side slice.
func (ca *arena) activity(c CRef) float64 { return ca.act[ca.store[c+1]] }

// blockLen returns the block's total word count (header + ordinal +
// literals). Valid only while the clause is not relocated.
func (ca *arena) blockLen(c CRef) int {
	h := ca.store[c]
	return 1 + int(h>>1&1) + int(h>>hdrSizeShift)
}

// del tombstones the block: the header's deleted bit is set, the space
// is accounted as wasted, and a learnt's activity ordinal returns to
// the free list. The block itself stays readable (propagation may
// still visit stale watchers; a deleted clause can even remain a trail
// reason) until a compaction reclaims it.
func (ca *arena) del(c CRef) {
	h := ca.store[c]
	if h&hdrDeleted != 0 {
		return
	}
	ca.store[c] = h | hdrDeleted
	ca.wasted += ca.blockLen(c)
	if h&hdrLearnt != 0 {
		ca.freeActs = append(ca.freeActs, ca.store[c+1])
	}
}
