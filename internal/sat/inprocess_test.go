package sat

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// Differential battery for the inprocessing pass and the new CDCL
// heuristics: on randomized CNF+XOR systems, a solver running the full
// feature set (inprocessing between Solve calls, dirty-window XOR
// propagation, rephasing, chronological backtracking) must agree with
// the plain baseline on the verdict and on the full model set, in both
// the packed and the scalar XOR engine — and packed must agree with
// scalar under every knob combination.

// inprocCfg returns the all-knobs-on variant of a base config.
func inprocCfg(base Config) Config {
	base.InprocessEvery = 1
	base.DirtyWindow = true
	base.RephaseEvery = 2
	base.ChronoBacktrack = 2
	return base
}

// enumerateAllInproc is enumerateAll with an explicit Inprocess() pass
// before every Solve call, exercising vivification, probing and
// subsumption against a solver whose clause set keeps growing with
// blocking clauses.
func enumerateAllInproc(t *testing.T, s *Solver, n int) map[string]bool {
	t.Helper()
	vars := make([]cnf.Var, n)
	for i := range vars {
		vars[i] = cnf.Var(i + 1)
	}
	out := map[string]bool{}
	for len(out) < 1<<uint(n) {
		s.Inprocess()
		switch s.Solve() {
		case Sat:
			m := s.Model()
			key := m.Project(vars)
			if out[key] {
				t.Fatal("inprocessing enumeration repeated a model")
			}
			out[key] = true
			block := make(cnf.Clause, 0, n)
			for _, v := range vars {
				block = append(block, cnf.MkLit(v, m.Get(v)))
			}
			if !s.AddClause(block) {
				return out
			}
		case Unsat:
			return out
		default:
			t.Fatal("budget exhausted in inprocessing enumeration")
		}
	}
	return out
}

func sameModelSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestInprocessDifferential(t *testing.T) {
	rng := randx.New(0x1d9c)
	iters := 120
	if testing.Short() {
		iters = 30
	}
	var probed, vivified, subsumed int64
	for iter := 0; iter < iters; iter++ {
		n := 4 + rng.Intn(7)
		f := buildRandomXORCNF(rng, n)
		base := Config{Seed: uint64(iter)}

		ref := New(f, base)
		refOkay := ref.Okay()
		want := enumerateAll(t, ref, n)

		for _, scalar := range []bool{false, true} {
			cfg := inprocCfg(base)
			cfg.ScalarXOR = scalar
			s := New(f, cfg)
			if s.Okay() != refOkay {
				t.Fatalf("iter %d scalar=%v: construction Okay %v vs %v",
					iter, scalar, s.Okay(), refOkay)
			}
			got := enumerateAllInproc(t, s, n)
			if !sameModelSets(got, want) {
				t.Fatalf("iter %d scalar=%v: inprocessing solver found %d models, baseline %d\n%s",
					iter, scalar, len(got), len(want), cnf.DIMACSString(f))
			}
			st := s.Stats()
			probed += st.ProbedLits
			vivified += st.VivifiedLits
			subsumed += st.SubsumedLearnts
		}
	}
	// The battery is pointless if the passes never fire; probing runs on
	// every unassigned variable, so it must have seen work.
	if probed == 0 {
		t.Fatal("inprocessing never probed a literal across the whole battery")
	}
	t.Logf("battery totals: probed=%d vivified=%d subsumed=%d", probed, vivified, subsumed)
}

// TestInprocessMidEnumerationUnits checks the level-0 contract: units
// derived by probing/vivification must be consequences of the current
// clause set, so every model enumerated afterwards still satisfies the
// original formula (checked inside enumerateAll via blocking-clause
// exhaustion equality above) and the level-0 trail never contradicts a
// model of the baseline.
func TestInprocessMidEnumerationUnits(t *testing.T) {
	rng := randx.New(0xfa11)
	for iter := 0; iter < 60; iter++ {
		n := 4 + rng.Intn(6)
		f := buildRandomXORCNF(rng, n)
		ref := New(f, Config{Seed: uint64(iter)})
		want := enumerateAll(t, ref, n)

		s := New(f, inprocCfg(Config{Seed: uint64(iter)}))
		s.Inprocess()
		if !s.Okay() {
			if len(want) != 0 {
				t.Fatalf("iter %d: inprocessing proved UNSAT but formula has %d models", iter, len(want))
			}
			continue
		}
		for l := range levelZeroLits(s) {
			v, pos := l.Var(), !l.Neg()
			if int(v) > n {
				continue // internal (selector/guard) variable
			}
			i := int(v) - 1
			for key := range want {
				if bit := key[i/8]>>uint(i%8)&1 == 1; bit != pos {
					t.Fatalf("iter %d: level-0 unit %d contradicts a baseline model", iter, l.DIMACS())
				}
			}
		}
	}
}
