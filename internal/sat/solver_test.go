package sat

import (
	"testing"
	"testing/quick"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

func mustParse(t *testing.T, s string) *cnf.Formula {
	t.Helper()
	f, err := cnf.ParseDIMACSString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestSolveTrivialSat(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1, 2)
	f.AddClause(-1, 2)
	s := New(f, Config{})
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	m := s.Model()
	if !m.Satisfies(f) {
		t.Fatalf("model %v does not satisfy formula", m)
	}
}

func TestSolveTrivialUnsat(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(1)
	f.AddClause(-1)
	s := New(f, Config{})
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want UNSAT", got)
	}
}

func TestSolveEmptyClause(t *testing.T) {
	f := cnf.New(1)
	f.Clauses = append(f.Clauses, cnf.Clause{})
	s := New(f, Config{})
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want UNSAT", got)
	}
}

func TestSolveEmptyFormula(t *testing.T) {
	f := cnf.New(3)
	s := New(f, Config{})
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want SAT (empty formula)", got)
	}
}

func TestUnitPropagationChain(t *testing.T) {
	f := cnf.New(4)
	f.AddClause(1)
	f.AddClause(-1, 2)
	f.AddClause(-2, 3)
	f.AddClause(-3, 4)
	s := New(f, Config{})
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	m := s.Model()
	for v := cnf.Var(1); v <= 4; v++ {
		if !m.Get(v) {
			t.Errorf("var %d = false, want true", v)
		}
	}
}

func TestXORUnsat(t *testing.T) {
	// x1⊕x2 = 1 and x1⊕x2 = 0 is UNSAT.
	f := cnf.New(2)
	f.AddXOR([]cnf.Var{1, 2}, true)
	f.AddXOR([]cnf.Var{1, 2}, false)
	for _, gj := range []bool{false, true} {
		s := New(f, Config{GaussJordan: gj})
		if got := s.Solve(); got != Unsat {
			t.Errorf("GaussJordan=%v: Solve = %v, want UNSAT", gj, got)
		}
	}
}

func TestXORChainSat(t *testing.T) {
	// x1⊕x2=1, x2⊕x3=1, x3⊕x1=0 is SAT (x1 != x2, x2 != x3 => x1 == x3).
	f := cnf.New(3)
	f.AddXOR([]cnf.Var{1, 2}, true)
	f.AddXOR([]cnf.Var{2, 3}, true)
	f.AddXOR([]cnf.Var{3, 1}, false)
	for _, gj := range []bool{false, true} {
		s := New(f, Config{GaussJordan: gj})
		if got := s.Solve(); got != Sat {
			t.Fatalf("GaussJordan=%v: Solve = %v, want SAT", gj, got)
		}
		if m := s.Model(); !m.Satisfies(f) {
			t.Fatalf("GaussJordan=%v: bad model %v", gj, m)
		}
	}
}

func TestXORChainUnsatOddCycle(t *testing.T) {
	// x1⊕x2=1, x2⊕x3=1, x3⊕x1=1 sums to 0=1: UNSAT.
	f := cnf.New(3)
	f.AddXOR([]cnf.Var{1, 2}, true)
	f.AddXOR([]cnf.Var{2, 3}, true)
	f.AddXOR([]cnf.Var{3, 1}, true)
	for _, gj := range []bool{false, true} {
		s := New(f, Config{GaussJordan: gj})
		if got := s.Solve(); got != Unsat {
			t.Errorf("GaussJordan=%v: Solve = %v, want UNSAT", gj, got)
		}
	}
}

func TestXORWithCNFMix(t *testing.T) {
	f := cnf.New(4)
	f.AddClause(1, 2)
	f.AddClause(-1, 3)
	f.AddXOR([]cnf.Var{1, 2, 3, 4}, true)
	s := New(f, Config{})
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	if m := s.Model(); !m.Satisfies(f) {
		t.Fatalf("bad model %v", m)
	}
}

func TestAssumptions(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1, 2, 3)
	s := New(f, Config{})
	if got := s.Solve(cnf.MkLit(1, true), cnf.MkLit(2, true)); got != Sat {
		t.Fatalf("Solve under assumptions = %v, want SAT", got)
	}
	m := s.Model()
	if m.Get(1) || m.Get(2) || !m.Get(3) {
		t.Fatalf("model %v violates assumptions", m)
	}
	// Contradictory assumption set.
	if got := s.Solve(cnf.MkLit(1, false), cnf.MkLit(1, true)); got != Unsat {
		t.Fatalf("contradictory assumptions = %v, want UNSAT", got)
	}
	// Solver must remain usable.
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve after assumption UNSAT = %v, want SAT", got)
	}
}

func TestIncrementalBlocking(t *testing.T) {
	// Enumerate all models of a formula by blocking, counting them.
	f := cnf.New(3)
	f.AddClause(1, 2, 3)
	want := BruteForceCount(f)
	s := New(f, Config{})
	n := 0
	for {
		st := s.Solve()
		if st == Unsat {
			break
		}
		if st != Sat {
			t.Fatalf("unexpected status %v", st)
		}
		n++
		if n > want {
			t.Fatalf("enumerated more than %d models", want)
		}
		m := s.Model()
		if !m.Satisfies(f) {
			t.Fatalf("bad model %v", m)
		}
		block := make(cnf.Clause, 0, 3)
		for v := cnf.Var(1); v <= 3; v++ {
			block = append(block, cnf.MkLit(v, m.Get(v)))
		}
		if !s.AddClause(block) {
			break
		}
	}
	if n != want {
		t.Fatalf("enumerated %d models, want %d", n, want)
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard-ish random 3-CNF at the phase transition with a tiny budget
	// should return Unknown (or decide very fast; accept any status but
	// verify budget accounting).
	rng := randx.New(7)
	f := randomCNF(rng, 60, 256, 3)
	s := New(f, Config{MaxConflicts: 1})
	_ = s.Solve()
	if s.Stats().Conflicts > 2 {
		t.Fatalf("budget 1 exceeded: %d conflicts", s.Stats().Conflicts)
	}
}

// randomCNF generates a uniform random k-CNF over n vars with m clauses.
func randomCNF(rng *randx.RNG, n, m, k int) *cnf.Formula {
	f := cnf.New(n)
	for i := 0; i < m; i++ {
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			v := cnf.Var(rng.Intn(n) + 1)
			c = append(c, cnf.MkLit(v, rng.Bool()))
		}
		f.AddClauseLits(c)
	}
	return f
}

// randomXORCNF adds random XOR clauses on top of a random CNF.
func randomXORCNF(rng *randx.RNG, n, m, k, nx int) *cnf.Formula {
	f := randomCNF(rng, n, m, k)
	for i := 0; i < nx; i++ {
		var vs []cnf.Var
		for v := 1; v <= n; v++ {
			if rng.Bool() {
				vs = append(vs, cnf.Var(v))
			}
		}
		if len(vs) == 0 {
			continue
		}
		f.AddXOR(vs, rng.Bool())
	}
	return f
}

func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := randx.New(42)
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(9)
		m := 1 + rng.Intn(4*n)
		f := randomCNF(rng, n, m, 3)
		want := BruteForceCount(f) > 0
		s := New(f, Config{Seed: uint64(iter)})
		st := s.Solve()
		if (st == Sat) != want {
			t.Fatalf("iter %d: Solve=%v, brute force sat=%v\n%s", iter, st, want, cnf.DIMACSString(f))
		}
		if st == Sat {
			if m := s.Model(); !m.Satisfies(f) {
				t.Fatalf("iter %d: invalid model", iter)
			}
		}
	}
}

func TestRandomXORCNFAgainstBruteForce(t *testing.T) {
	rng := randx.New(99)
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(9)
		m := rng.Intn(3 * n)
		nx := 1 + rng.Intn(n)
		f := randomXORCNF(rng, n, m, 3, nx)
		want := BruteForceCount(f) > 0
		for _, gj := range []bool{false, true} {
			s := New(f, Config{Seed: uint64(iter), GaussJordan: gj})
			st := s.Solve()
			if (st == Sat) != want {
				t.Fatalf("iter %d gj=%v: Solve=%v, brute force sat=%v\n%s",
					iter, gj, st, want, cnf.DIMACSString(f))
			}
			if st == Sat {
				if m := s.Model(); !m.Satisfies(f) {
					t.Fatalf("iter %d gj=%v: invalid model", iter, gj)
				}
			}
		}
	}
}

func TestEnumerationMatchesBruteForce(t *testing.T) {
	// Full model enumeration via blocking clauses must find exactly the
	// brute-force model set, including with XORs present.
	rng := randx.New(1234)
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.Intn(7)
		f := randomXORCNF(rng, n, rng.Intn(2*n), 3, rng.Intn(3))
		want := map[string]struct{}{}
		allVars := f.SamplingVars()
		for _, m := range BruteForceModels(f) {
			want[m.Project(allVars)] = struct{}{}
		}
		got := map[string]struct{}{}
		s := New(f, Config{Seed: uint64(iter)})
		for {
			if s.Solve() != Sat {
				break
			}
			m := s.Model()
			key := m.Project(allVars)
			if _, dup := got[key]; dup {
				t.Fatalf("iter %d: duplicate model", iter)
			}
			got[key] = struct{}{}
			block := make(cnf.Clause, 0, n)
			for v := cnf.Var(1); v <= cnf.Var(n); v++ {
				block = append(block, cnf.MkLit(v, m.Get(v)))
			}
			if !s.AddClause(block) {
				break
			}
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: enumerated %d models, brute force %d\n%s",
				iter, len(got), len(want), cnf.DIMACSString(f))
		}
		for k := range got {
			if _, ok := want[k]; !ok {
				t.Fatalf("iter %d: enumerated a non-model", iter)
			}
		}
	}
}

func TestGaussJordanProperties(t *testing.T) {
	// Property: Gauss-Jordan preserves the solution set of the XOR system.
	check := func(seed uint64) bool {
		rng := randx.New(seed)
		n := 2 + rng.Intn(8)
		nx := 1 + rng.Intn(6)
		f := cnf.New(n)
		for i := 0; i < nx; i++ {
			var vs []cnf.Var
			for v := 1; v <= n; v++ {
				if rng.Bool() {
					vs = append(vs, cnf.Var(v))
				}
			}
			if len(vs) == 0 {
				continue
			}
			f.AddXOR(vs, rng.Bool())
		}
		reduced, units, conflict := gaussReduce(f.XORs)
		g := cnf.New(n)
		if conflict {
			g.Clauses = append(g.Clauses, cnf.Clause{})
		} else {
			for _, u := range units {
				g.AddClause(u.DIMACS())
			}
			for _, x := range reduced {
				g.AddXOR(x.Vars, x.RHS)
			}
		}
		return BruteForceCount(f) == BruteForceCount(g)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLuby(t *testing.T) {
	want := []float64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(2, i); got != w {
			t.Errorf("luby(2,%d) = %v, want %v", i, got, w)
		}
	}
}

func TestSolverReuseAfterManyCalls(t *testing.T) {
	f := mustParse(t, `p cnf 4 2
1 2 0
-3 4 0
`)
	s := New(f, Config{})
	for i := 0; i < 50; i++ {
		if st := s.Solve(); st != Sat {
			t.Fatalf("call %d: %v", i, st)
		}
	}
}
