package sat

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// enumerateModels collects every model of the solver by blocking-clause
// enumeration, projected to vars 1..n, optionally forcing an arena
// compaction between Solve calls.
func enumerateModels(t *testing.T, s *Solver, n int, compactEvery int) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	vars := make([]cnf.Var, n)
	for i := range vars {
		vars[i] = cnf.Var(i + 1)
	}
	for calls := 0; ; calls++ {
		if compactEvery > 0 && calls%compactEvery == 0 {
			s.CompactArena()
		}
		st := s.Solve()
		if st != Sat {
			if st != Unsat {
				t.Fatal("enumeration hit budget")
			}
			return out
		}
		m := s.Model()
		key := m.Project(vars)
		if out[key] {
			t.Fatal("duplicate model enumerated")
		}
		out[key] = true
		block := make(cnf.Clause, 0, n)
		for _, v := range vars {
			block = append(block, cnf.MkLit(v, m.Get(v)))
		}
		if !s.AddClause(block) {
			return out
		}
	}
}

// TestArenaEnumerationAcrossCompaction: forced compactions between
// Solve calls must not change the enumerated model set — CRef
// relocation has to rewrite every holder (watches, reasons, indices)
// consistently. Differential against the brute-force oracle.
func TestArenaEnumerationAcrossCompaction(t *testing.T) {
	rng := randx.New(0xa43a)
	for iter := 0; iter < 150; iter++ {
		n := 3 + rng.Intn(8)
		f := randomXORCNF(rng, n, 1+rng.Intn(3*n), 3, rng.Intn(3))
		want := map[string]bool{}
		vars := make([]cnf.Var, n)
		for i := range vars {
			vars[i] = cnf.Var(i + 1)
		}
		for _, m := range BruteForceModels(f) {
			want[m.Project(vars)] = true
		}
		got := enumerateModels(t, New(f, Config{Seed: uint64(iter)}), n, 1)
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d models with compaction, brute force %d\n%s",
				iter, len(got), len(want), cnf.DIMACSString(f))
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("iter %d: spurious model", iter)
			}
		}
	}
}

// TestArenaRemovableCompactionDifferential drives a whole incremental
// lifetime — install removable clauses/XORs, solve under assumptions,
// release a random subset, CollectGarbage, force a compaction — and
// checks every verdict and model against a fresh solver on the
// equivalent formula. Level-0 assignments must be identical before and
// after each compaction (relocation must not touch the trail's
// semantics).
func TestArenaRemovableCompactionDifferential(t *testing.T) {
	rng := randx.New(0xc04fac7)
	for iter := 0; iter < 120; iter++ {
		n := 4 + rng.Intn(6)
		f := randomCNF(rng, n, rng.Intn(3*n), 3)
		inc := New(f, Config{Seed: uint64(iter)})
		for epoch := 0; epoch < 3; epoch++ {
			g := f.Clone()
			var sels []*Selector
			var acts []cnf.Lit
			for k, kk := 0, 1+rng.Intn(4); k < kk; k++ {
				if rng.Bool() {
					c := make(cnf.Clause, 0, 2)
					for j := 0; j < 1+rng.Intn(2); j++ {
						c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
					}
					sel := inc.AddClauseRemovable(c)
					sels = append(sels, sel)
					acts = append(acts, sel.Lit())
					g.AddClauseLits(c)
				} else {
					var vs []cnf.Var
					for v := 1; v <= n; v++ {
						if rng.Bool() {
							vs = append(vs, cnf.Var(v))
						}
					}
					rhs := rng.Bool()
					sel := inc.AddXORRemovable(vs, rhs)
					sels = append(sels, sel)
					acts = append(acts, sel.Lit())
					g.AddXOR(vs, rhs)
				}
			}
			want := New(g, Config{Seed: uint64(iter)}).Solve()
			got := inc.Solve(acts...)
			if got != want {
				t.Fatalf("iter %d epoch %d: incremental %v, fresh %v\n%s",
					iter, epoch, got, want, cnf.DIMACSString(g))
			}
			if got == Sat {
				if m := inc.Model()[:n+1]; !m.Satisfies(g) {
					t.Fatalf("iter %d epoch %d: model violates constraints", iter, epoch)
				}
			}
			if inc.Tainted() {
				break // session contract: rebuild; nothing left to check here
			}
			for _, sel := range sels {
				if rng.Bool() {
					inc.Release(sel)
				}
			}
			inc.CollectGarbage()
			l0Before := levelZeroValues(inc)
			inc.CompactArena()
			if l0After := levelZeroValues(inc); l0Before != l0After {
				t.Fatalf("iter %d epoch %d: level-0 assignment changed across compaction", iter, epoch)
			}
			if inc.Solve() == Unknown {
				t.Fatalf("iter %d epoch %d: post-compaction solve hit budget", iter, epoch)
			}
		}
	}
}

// levelZeroValues renders the level-0 portion of the trail as a
// canonical string (variable/value pairs in trail order).
func levelZeroValues(s *Solver) string {
	end := len(s.trail)
	if len(s.trailLim) > 0 {
		end = s.trailLim[0]
	}
	buf := make([]byte, 0, 2*end)
	for _, l := range s.trail[:end] {
		buf = append(buf, byte(l.Var()), byte(l.Var()>>8))
		if l.Neg() {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
		}
	}
	return string(buf)
}

// TestGlueClauseSurvivesReduceDB: reduceDB must protect glue clauses
// (LBD ≤ 2) even when they fall in the worst half by activity —
// previously only binaries were exempt.
func TestGlueClauseSurvivesReduceDB(t *testing.T) {
	f := cnf.New(40)
	s := New(f, Config{})
	mkLits := func(base int) []cnf.Lit {
		return []cnf.Lit{
			cnf.MkLit(cnf.Var(base%40+1), false),
			cnf.MkLit(cnf.Var((base+1)%40+1), true),
			cnf.MkLit(cnf.Var((base+2)%40+1), false),
		}
	}
	var glue []CRef
	for i := 0; i < 20; i++ {
		lbd := 8
		if i < 10 {
			lbd = 2 // glue, with the same (zero) activity as everything else
		}
		cr := s.ca.alloc(mkLits(i), true, lbd, 0)
		s.learnts = append(s.learnts, cr)
		s.attach(cr)
		if lbd <= 2 {
			glue = append(glue, cr)
		}
	}
	s.reduceDB()
	if got := s.Stats().RemovedDB; got != 10 {
		t.Fatalf("reduceDB removed %d clauses, want the 10 high-LBD ones", got)
	}
	for _, cr := range glue {
		if s.ca.deleted(cr) {
			t.Fatal("glue clause (LBD 2) was deleted by reduceDB")
		}
	}
	kept := map[CRef]bool{}
	for _, cr := range s.learnts {
		kept[cr] = true
	}
	for _, cr := range glue {
		if !kept[cr] {
			t.Fatal("glue clause missing from the learnt index after reduceDB")
		}
	}
}

// TestLockedReasonSurvivesReduceDB: a learnt clause acting as the
// reason of a trail assignment must survive reduction regardless of
// its LBD (locked detection now runs through the trail marks).
func TestLockedReasonSurvivesReduceDB(t *testing.T) {
	f := cnf.New(20)
	s := New(f, Config{})
	// Learnt (1 ∨ 2 ∨ 3): make it the reason for 1 by falsifying 2,3
	// at a decision level.
	locked := s.ca.alloc([]cnf.Lit{cnf.MkLit(1, false), cnf.MkLit(2, false), cnf.MkLit(3, false)},
		true, 9, 0)
	s.learnts = append(s.learnts, locked)
	s.attach(locked)
	s.trailLim = append(s.trailLim, len(s.trail))
	s.uncheckedEnqueue(cnf.MkLit(2, true), reason{})
	s.uncheckedEnqueue(cnf.MkLit(3, true), reason{})
	if !s.propagate().none() {
		t.Fatal("unexpected conflict")
	}
	if s.valueVar(1) != lTrue {
		t.Fatal("clause did not propagate")
	}
	// Pile on deletable clauses so `locked` lands in the worst half.
	for i := 0; i < 10; i++ {
		cr := s.ca.alloc([]cnf.Lit{
			cnf.MkLit(cnf.Var(i+4), false),
			cnf.MkLit(cnf.Var(i+5), false),
			cnf.MkLit(cnf.Var(i+6), false),
		}, true, 3, float64(i+1))
		s.learnts = append(s.learnts, cr)
		s.attach(cr)
	}
	s.reduceDB()
	if s.ca.deleted(locked) {
		t.Fatal("locked reason clause was deleted")
	}
	if r := s.reasons[1]; r.tag != reasonClause || r.ref != locked {
		t.Fatalf("reason of var 1 corrupted: %+v", r)
	}
	s.cancelUntil(0)
}

// TestArenaWasteReclaimed: after Releases and a compaction the arena
// footprint shrinks back and the waste counter resets.
func TestArenaWasteReclaimed(t *testing.T) {
	f := cnf.New(10)
	f.AddClause(1, 2, 3)
	s := New(f, Config{})
	var sels []*Selector
	for i := 0; i < 100; i++ {
		sels = append(sels, s.AddClauseRemovable(cnf.Clause{
			cnf.MkLit(1, false), cnf.MkLit(2, false), cnf.MkLit(3, false),
		}))
	}
	grown := len(s.ca.store)
	for _, sel := range sels {
		s.Release(sel)
	}
	s.CollectGarbage() // waste is ~100% of the arena: must compact
	if s.stats.Compactions == 0 {
		t.Fatal("CollectGarbage did not compact despite overwhelming waste")
	}
	if s.ca.wasted != 0 {
		t.Fatalf("wasted = %d after compaction", s.ca.wasted)
	}
	if len(s.ca.store) >= grown/2 {
		t.Fatalf("arena still %d words after reclaiming 100 clauses (was %d)",
			len(s.ca.store), grown)
	}
	if s.Solve() != Sat {
		t.Fatal("base formula unsat after GC")
	}
}

// TestPropagateLearnSteadyStateAllocs: once warmed up, the budgeted
// conflict loop (propagate, analyze, recordLearnt, reduceDB) must run
// allocation-free apart from amortized slice growth.
func TestPropagateLearnSteadyStateAllocs(t *testing.T) {
	// Pigeonhole PHP(9,8): UNSAT, and far beyond the conflict budget of
	// any single call — every Solve burns its whole budget learning.
	const pigeons, holes = 9, 8
	f := cnf.New(pigeons * holes)
	pv := func(p, h int) cnf.Var { return cnf.Var(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		c := make(cnf.Clause, 0, holes)
		for h := 0; h < holes; h++ {
			c = append(c, cnf.MkLit(pv(p, h), false))
		}
		f.AddClauseLits(c)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClauseLits(cnf.Clause{cnf.MkLit(pv(p1, h), true), cnf.MkLit(pv(p2, h), true)})
			}
		}
	}
	s := New(f, Config{MaxConflicts: 50, Seed: 7})
	for i := 0; i < 50; i++ {
		if s.Solve() != Unknown {
			t.Fatal("PHP solved inside the warm-up budget")
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if s.Solve() == Sat {
			t.Fatal("unexpected SAT")
		}
	})
	// Amortized growth of the arena and watch lists may trigger the
	// occasional allocation; the per-clause allocations of the pointer
	// representation (2 per learnt, ~100 per call here) must be gone.
	if avg > 3 {
		t.Fatalf("steady-state Solve allocates %.1f times per call", avg)
	}
}
