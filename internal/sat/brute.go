package sat

import "unigen/internal/cnf"

// BruteForceModels enumerates every satisfying assignment of f by trying
// all 2^NumVars assignments. It is the reference oracle for tests and is
// only usable for small formulas (NumVars <= ~24).
func BruteForceModels(f *cnf.Formula) []cnf.Assignment {
	n := f.NumVars
	if n > 24 {
		panic("sat: BruteForceModels formula too large")
	}
	var out []cnf.Assignment
	for m := uint64(0); m < 1<<uint(n); m++ {
		a := cnf.NewAssignment(n)
		for v := 1; v <= n; v++ {
			a[v] = m&(1<<uint(v-1)) != 0
		}
		if a.Satisfies(f) {
			out = append(out, a)
		}
	}
	return out
}

// BruteForceCount returns the number of satisfying assignments of f,
// counted by exhaustive enumeration.
func BruteForceCount(f *cnf.Formula) int {
	return len(BruteForceModels(f))
}

// BruteForceProjectedCount returns the number of distinct projections of
// models of f onto vars.
func BruteForceProjectedCount(f *cnf.Formula, vars []cnf.Var) int {
	seen := map[string]struct{}{}
	for _, m := range BruteForceModels(f) {
		seen[m.Project(vars)] = struct{}{}
	}
	return len(seen)
}
