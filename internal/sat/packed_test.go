package sat

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// This file is the packed/legacy differential gate for the bit-packed
// XOR engine: the packed solver (default) and the scalar reference
// (Config.ScalarXOR) must agree on randomized CNF+XOR systems —
// identical SAT/UNSAT verdicts, identical level-0 implied units
// (the trail modulo order), and identical full model sets under
// blocking-clause enumeration.

// levelZeroLits returns the set of literals on the level-0 trail.
func levelZeroLits(s *Solver) map[cnf.Lit]bool {
	out := map[cnf.Lit]bool{}
	end := len(s.trail)
	if len(s.trailLim) > 0 {
		end = s.trailLim[0]
	}
	for _, l := range s.trail[:end] {
		out[l] = true
	}
	return out
}

// enumerateAll collects every model of the solver over vars 1..n,
// projected to a canonical key, using blocking clauses.
func enumerateAll(t *testing.T, s *Solver, n int) map[string]bool {
	t.Helper()
	vars := make([]cnf.Var, n)
	for i := range vars {
		vars[i] = cnf.Var(i + 1)
	}
	out := map[string]bool{}
	for len(out) < 1<<uint(n) {
		switch s.Solve() {
		case Sat:
			m := s.Model()
			key := m.Project(vars)
			if out[key] {
				t.Fatal("enumeration repeated a model")
			}
			out[key] = true
			block := make(cnf.Clause, 0, n)
			for _, v := range vars {
				block = append(block, cnf.MkLit(v, m.Get(v)))
			}
			if !s.AddClause(block) {
				return out
			}
		case Unsat:
			return out
		default:
			t.Fatal("budget exhausted in differential enumeration")
		}
	}
	return out
}

func buildRandomXORCNF(rng *randx.RNG, n int) *cnf.Formula {
	f := cnf.New(n)
	nclauses := rng.Intn(2 * n)
	for i := 0; i < nclauses; i++ {
		width := 1 + rng.Intn(3)
		lits := make([]int, 0, width)
		for k := 0; k < width; k++ {
			v := 1 + rng.Intn(n)
			if rng.Bool() {
				v = -v
			}
			lits = append(lits, v)
		}
		f.AddClause(lits...)
	}
	nxors := 1 + rng.Intn(n)
	for i := 0; i < nxors; i++ {
		width := 1 + rng.Intn(n)
		vars := make([]cnf.Var, 0, width)
		for k := 0; k < width; k++ {
			vars = append(vars, cnf.Var(1+rng.Intn(n)))
		}
		f.AddXOR(vars, rng.Bool())
	}
	return f
}

// TestPackedScalarDifferential compares the two engines on randomized
// XOR-heavy systems, with and without Gauss–Jordan preprocessing.
func TestPackedScalarDifferential(t *testing.T) {
	rng := randx.New(0x9acced)
	iters := 150
	if testing.Short() {
		iters = 40
	}
	for iter := 0; iter < iters; iter++ {
		n := 4 + rng.Intn(7)
		f := buildRandomXORCNF(rng, n)
		for _, gauss := range []bool{false, true} {
			packed := New(f, Config{Seed: uint64(iter), GaussJordan: gauss})
			scalar := New(f, Config{Seed: uint64(iter), GaussJordan: gauss, ScalarXOR: true})
			if packed.Okay() != scalar.Okay() {
				t.Fatalf("iter %d gauss=%v: construction Okay %v vs %v",
					iter, gauss, packed.Okay(), scalar.Okay())
			}
			pl0, sl0 := levelZeroLits(packed), levelZeroLits(scalar)
			for l := range pl0 {
				if int(l.Var()) <= n && !sl0[l] {
					t.Fatalf("iter %d gauss=%v: packed implies %v at level 0, scalar does not", iter, gauss, l)
				}
			}
			for l := range sl0 {
				if int(l.Var()) <= n && !pl0[l] {
					t.Fatalf("iter %d gauss=%v: scalar implies %v at level 0, packed does not", iter, gauss, l)
				}
			}
			pm := enumerateAll(t, packed, n)
			sm := enumerateAll(t, scalar, n)
			if len(pm) != len(sm) {
				t.Fatalf("iter %d gauss=%v: model counts %d vs %d", iter, gauss, len(pm), len(sm))
			}
			for k := range pm {
				if !sm[k] {
					t.Fatalf("iter %d gauss=%v: packed found a model scalar did not", iter, gauss)
				}
			}
		}
	}
}

// TestPackedScalarRemovableDifferential drives the removable-XOR
// machinery (the session substrate) through randomized install/solve/
// release schedules on both engines and demands identical status
// sequences and mutually valid models.
func TestPackedScalarRemovableDifferential(t *testing.T) {
	rng := randx.New(0x5e55)
	iters := 60
	if testing.Short() {
		iters = 20
	}
	for iter := 0; iter < iters; iter++ {
		n := 5 + rng.Intn(6)
		f := buildRandomXORCNF(rng, n)
		packed := New(f, Config{Seed: uint64(iter)})
		scalar := New(f, Config{Seed: uint64(iter), ScalarXOR: true})
		if packed.Okay() != scalar.Okay() {
			t.Fatalf("iter %d: construction disagrees", iter)
		}
		if !packed.Okay() {
			continue
		}
		// Draw one shared schedule of removable rows and replay it on
		// both solvers.
		type drawnRow struct {
			vars []cnf.Var
			rhs  bool
		}
		for round := 0; round < 6; round++ {
			nrows := 1 + rng.Intn(3)
			rows := make([]drawnRow, nrows)
			for i := range rows {
				width := rng.Intn(n + 1)
				vars := make([]cnf.Var, 0, width)
				for k := 0; k < width; k++ {
					vars = append(vars, cnf.Var(1+rng.Intn(n)))
				}
				rows[i] = drawnRow{vars: vars, rhs: rng.Bool()}
			}
			install := func(s *Solver) ([]*Selector, []cnf.Lit) {
				sels := make([]*Selector, 0, nrows)
				acts := make([]cnf.Lit, 0, nrows)
				for _, r := range rows {
					sel := s.AddXORRemovable(r.vars, r.rhs)
					sels = append(sels, sel)
					acts = append(acts, sel.Lit())
				}
				return sels, acts
			}
			psels, pacts := install(packed)
			ssels, sacts := install(scalar)
			pst := packed.Solve(pacts...)
			sst := scalar.Solve(sacts...)
			if pst != sst {
				t.Fatalf("iter %d round %d: status %v vs %v", iter, round, pst, sst)
			}
			if pst == Sat {
				// Each engine's model must satisfy the base formula and
				// every active row — checked against the other engine's
				// semantics via plain evaluation.
				check := func(m cnf.Assignment, tag string) {
					if !m.Satisfies(f) {
						t.Fatalf("iter %d round %d: %s model violates base formula", iter, round, tag)
					}
					for _, r := range rows {
						norm, nrhs := cnf.NormalizeXOR(r.vars, r.rhs)
						par := false
						for _, v := range norm {
							par = par != m.Get(v)
						}
						if len(norm) == 0 {
							if nrhs {
								t.Fatalf("iter %d round %d: SAT despite empty 0=1 row", iter, round)
							}
							continue
						}
						if par != nrhs {
							t.Fatalf("iter %d round %d: %s model violates an active row", iter, round, tag)
						}
					}
				}
				check(packed.Model(), "packed")
				check(scalar.Model(), "scalar")
			}
			for i := range psels {
				packed.Release(psels[i])
				scalar.Release(ssels[i])
			}
			if packed.Tainted() || scalar.Tainted() {
				break // both would be rebuilt by a session; stop the replay
			}
			packed.CollectGarbage()
			scalar.CollectGarbage()
		}
	}
}

// TestGaussPackedColumnDedup: variables shared across base XOR clauses
// must get exactly one column each under Gauss preprocessing (the
// pending-marker dedup regression: overlapping rows used to re-append
// a variable per occurrence, inflating the column space).
func TestGaussPackedColumnDedup(t *testing.T) {
	f := cnf.New(3)
	f.AddXOR([]cnf.Var{1, 2, 3}, true)
	f.AddXOR([]cnf.Var{2, 3}, false)
	s := New(f, Config{GaussJordan: true})
	if got := len(s.xvarOf); got != 3 {
		t.Fatalf("column space has %d entries for 3 distinct XOR variables: %v", got, s.xvarOf)
	}
	seen := map[cnf.Var]bool{}
	for _, v := range s.xvarOf {
		if seen[v] {
			t.Fatalf("variable %d columned twice: %v", v, s.xvarOf)
		}
		seen[v] = true
	}
	if s.Solve() != Sat {
		t.Fatal("solve failed")
	}
}

// TestPackedColumnRecycling: releasing hash rows must recycle their
// selector columns, keeping the packed column space at O(|S| + m)
// instead of growing with the lifetime selector count.
func TestPackedColumnRecycling(t *testing.T) {
	f := cnf.New(8)
	f.AddClause(1, 2)
	s := New(f, Config{})
	vars := []cnf.Var{1, 2, 3, 4, 5, 6, 7, 8}
	if cols := s.XORColumns(vars); cols != nil {
		t.Fatalf("first registration not identity: %v", cols)
	}
	width := func() int { return len(s.xvarOf) }
	base := width()
	for round := 0; round < 50; round++ {
		sels := make([]*Selector, 3)
		acts := make([]cnf.Lit, 3)
		for i := range sels {
			sels[i] = s.AddXORRemovable(vars[i:i+4], i%2 == 0)
			acts[i] = sels[i].Lit()
		}
		if s.Solve(acts...) != Sat {
			t.Fatalf("round %d: unexpected UNSAT", round)
		}
		for _, sel := range sels {
			s.Release(sel)
		}
		s.CollectGarbage()
	}
	if got := width(); got > base+3 {
		t.Fatalf("column space grew to %d (base %d): selector columns not recycled", got, base)
	}
}
