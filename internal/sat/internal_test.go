package sat

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// TestWatchInvariant verifies the two-watched-literal invariant after a
// burst of solving: every undeleted arena clause is watched on exactly
// its first two literals under both watch lists, and every inlined
// binary watcher has its mirror entry (the clause {a, b} appears in
// watches[¬a] with blocker b and in watches[¬b] with blocker a).
func TestWatchInvariant(t *testing.T) {
	rng := randx.New(71)
	f := randomCNF(rng, 30, 110, 3)
	s := New(f, Config{})
	s.Solve()
	count := map[CRef]int{}
	bins := map[[2]cnf.Lit]int{}
	for li := range s.watches {
		for _, w := range s.watches[li] {
			l := cnf.Lit(li)
			if w.cr == crefBin {
				bins[[2]cnf.Lit{l.Not(), w.blocker()}]++
				continue
			}
			if s.ca.deleted(w.cr) {
				continue
			}
			count[w.cr]++
			// The watch list index li corresponds to literal li; the
			// clause must be watched on lits 0 or 1, attached at the
			// negation.
			if s.ca.lit(w.cr, 0).Not() != l && s.ca.lit(w.cr, 1).Not() != l {
				t.Fatalf("clause watched at %v but watch lits are %v %v",
					l, s.ca.lit(w.cr, 0), s.ca.lit(w.cr, 1))
			}
		}
	}
	for _, cr := range s.clauses {
		if count[cr] != 2 {
			t.Fatalf("problem clause has %d watch entries, want 2", count[cr])
		}
	}
	for _, cr := range s.learnts {
		if !s.ca.deleted(cr) && count[cr] != 2 {
			t.Fatalf("learnt clause has %d watch entries, want 2", count[cr])
		}
	}
	for key, n := range bins {
		mirror := [2]cnf.Lit{key[1], key[0]}
		if bins[mirror] != n {
			t.Fatalf("binary watcher %v has %d entries but mirror has %d",
				key, n, bins[mirror])
		}
	}
}

// TestXOROccInvariant verifies that each XOR clause is present in
// exactly the occurrence lists of its two watched variables, under both
// XOR engines.
func TestXOROccInvariant(t *testing.T) {
	for _, scalar := range []bool{false, true} {
		rng := randx.New(72)
		f := randomXORCNF(rng, 12, 10, 3, 6)
		s := New(f, Config{ScalarXOR: scalar})
		s.Solve()
		occ := map[int32]int{}
		for v := 1; v <= s.numVars; v++ {
			for _, xi := range s.occXor[v] {
				x := &s.xors[xi]
				if s.xorWatchVar(x, 0) != cnf.Var(v) && s.xorWatchVar(x, 1) != cnf.Var(v) {
					t.Fatalf("scalar=%v: xor %d in occ list of %d but watches %d/%d",
						scalar, xi, v, s.xorWatchVar(x, 0), s.xorWatchVar(x, 1))
				}
				occ[xi]++
			}
		}
		for xi := range s.xors {
			if got := occ[int32(xi)]; got != 2 {
				t.Fatalf("scalar=%v: xor %d has %d occurrence entries, want 2", scalar, xi, got)
			}
		}
	}
}

// TestReduceDBKeepsSolvability: aggressive clause deletion must never
// change satisfiability (learned clauses are logically implied).
func TestReduceDBKeepsSolvability(t *testing.T) {
	rng := randx.New(73)
	for iter := 0; iter < 20; iter++ {
		f := randomCNF(rng, 40, 170, 3)
		s := New(f, Config{Seed: uint64(iter)})
		s.maxLearnts = 10 // force frequent reductions
		st1 := s.Solve()
		s2 := New(f, Config{Seed: uint64(iter)})
		st2 := s2.Solve()
		if st1 != st2 {
			t.Fatalf("iter %d: reduceDB changed verdict %v vs %v", iter, st1, st2)
		}
	}
}

// TestPhaseSavingRestoresModel: solving the same formula twice in a row
// must be cheap and SAT on the second call (phase saving keeps the old
// model close).
func TestPhaseSavingRestoresModel(t *testing.T) {
	rng := randx.New(74)
	f := randomCNF(rng, 50, 150, 3)
	s := New(f, Config{})
	if s.Solve() != Sat {
		t.Skip("instance unsat")
	}
	before := s.Stats().Decisions
	if s.Solve() != Sat {
		t.Fatal("second solve failed")
	}
	delta := s.Stats().Decisions - before
	if delta > 70 {
		t.Fatalf("second solve took %d decisions; phase saving broken?", delta)
	}
}

func TestGrowToIdempotent(t *testing.T) {
	f := cnf.New(3)
	s := New(f, Config{})
	s.growTo(3)
	s.growTo(10)
	if s.NumVars() != 10 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	if !s.AddClause(cnf.Clause{cnf.MkLit(10, false)}) {
		t.Fatal("AddClause after grow failed")
	}
	if s.Solve() != Sat {
		t.Fatal("solve failed")
	}
}

func TestXorFalseClauseShape(t *testing.T) {
	f := cnf.New(3)
	f.AddXOR([]cnf.Var{1, 2, 3}, true)
	s := New(f, Config{})
	// Assign 1=T, 2=F: xor implies 3=F... check reason clause shape by
	// driving propagation through a solve with assumptions.
	if s.Solve(cnf.MkLit(1, false), cnf.MkLit(2, true)) != Sat {
		t.Fatal("solve failed")
	}
	m := s.Model()
	if m.Get(3) != false {
		t.Fatalf("xor propagation wrong: model %v", m)
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status.String broken")
	}
}
