package sat

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// TestWatchInvariant verifies the two-watched-literal invariant after a
// burst of solving: every undeleted clause is watched on exactly its
// first two literals, under both watch lists.
func TestWatchInvariant(t *testing.T) {
	rng := randx.New(71)
	f := randomCNF(rng, 30, 110, 3)
	s := New(f, Config{})
	s.Solve()
	count := map[*clause]int{}
	for li := range s.watches {
		for _, w := range s.watches[li] {
			if w.cl.deleted {
				continue
			}
			count[w.cl]++
			// The watch list index li corresponds to literal li; the
			// clause must be watched on lits[0] or lits[1], attached at
			// the negation.
			l := cnf.Lit(li)
			if w.cl.lits[0].Not() != l && w.cl.lits[1].Not() != l {
				t.Fatalf("clause watched at %v but watch lits are %v %v",
					l, w.cl.lits[0], w.cl.lits[1])
			}
		}
	}
	for _, cl := range s.clauses {
		if len(cl.lits) >= 2 && count[cl] != 2 {
			t.Fatalf("problem clause has %d watch entries, want 2", count[cl])
		}
	}
	for _, cl := range s.learnts {
		if !cl.deleted && len(cl.lits) >= 2 && count[cl] != 2 {
			t.Fatalf("learnt clause has %d watch entries, want 2", count[cl])
		}
	}
}

// TestXOROccInvariant verifies that each XOR clause is present in
// exactly the occurrence lists of its two watched variables, under both
// XOR engines.
func TestXOROccInvariant(t *testing.T) {
	for _, scalar := range []bool{false, true} {
		rng := randx.New(72)
		f := randomXORCNF(rng, 12, 10, 3, 6)
		s := New(f, Config{ScalarXOR: scalar})
		s.Solve()
		occ := map[int32]int{}
		for v := 1; v <= s.numVars; v++ {
			for _, xi := range s.occXor[v] {
				x := &s.xors[xi]
				if s.xorWatchVar(x, 0) != cnf.Var(v) && s.xorWatchVar(x, 1) != cnf.Var(v) {
					t.Fatalf("scalar=%v: xor %d in occ list of %d but watches %d/%d",
						scalar, xi, v, s.xorWatchVar(x, 0), s.xorWatchVar(x, 1))
				}
				occ[xi]++
			}
		}
		for xi := range s.xors {
			if got := occ[int32(xi)]; got != 2 {
				t.Fatalf("scalar=%v: xor %d has %d occurrence entries, want 2", scalar, xi, got)
			}
		}
	}
}

// TestReduceDBKeepsSolvability: aggressive clause deletion must never
// change satisfiability (learned clauses are logically implied).
func TestReduceDBKeepsSolvability(t *testing.T) {
	rng := randx.New(73)
	for iter := 0; iter < 20; iter++ {
		f := randomCNF(rng, 40, 170, 3)
		s := New(f, Config{Seed: uint64(iter)})
		s.maxLearnts = 10 // force frequent reductions
		st1 := s.Solve()
		s2 := New(f, Config{Seed: uint64(iter)})
		st2 := s2.Solve()
		if st1 != st2 {
			t.Fatalf("iter %d: reduceDB changed verdict %v vs %v", iter, st1, st2)
		}
	}
}

// TestPhaseSavingRestoresModel: solving the same formula twice in a row
// must be cheap and SAT on the second call (phase saving keeps the old
// model close).
func TestPhaseSavingRestoresModel(t *testing.T) {
	rng := randx.New(74)
	f := randomCNF(rng, 50, 150, 3)
	s := New(f, Config{})
	if s.Solve() != Sat {
		t.Skip("instance unsat")
	}
	before := s.Stats().Decisions
	if s.Solve() != Sat {
		t.Fatal("second solve failed")
	}
	delta := s.Stats().Decisions - before
	if delta > 70 {
		t.Fatalf("second solve took %d decisions; phase saving broken?", delta)
	}
}

func TestGrowToIdempotent(t *testing.T) {
	f := cnf.New(3)
	s := New(f, Config{})
	s.growTo(3)
	s.growTo(10)
	if s.NumVars() != 10 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	if !s.AddClause(cnf.Clause{cnf.MkLit(10, false)}) {
		t.Fatal("AddClause after grow failed")
	}
	if s.Solve() != Sat {
		t.Fatal("solve failed")
	}
}

func TestXorFalseClauseShape(t *testing.T) {
	f := cnf.New(3)
	f.AddXOR([]cnf.Var{1, 2, 3}, true)
	s := New(f, Config{})
	// Assign 1=T, 2=F: xor implies 3=F... check reason clause shape by
	// driving propagation through a solve with assumptions.
	if s.Solve(cnf.MkLit(1, false), cnf.MkLit(2, true)) != Sat {
		t.Fatal("solve failed")
	}
	m := s.Model()
	if m.Get(3) != false {
		t.Fatalf("xor propagation wrong: model %v", m)
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status.String broken")
	}
}
