package sat

import (
	mbits "math/bits"

	"unigen/internal/cnf"
	"unigen/internal/gf2"
)

// Incremental solving with retractable constraints.
//
// A Selector guards a group of constraints behind a fresh activation
// variable so that they can be switched on per Solve call (by passing
// the selector's activation literal as an assumption) and later deleted
// outright with Release. This is the mechanism that lets one solver —
// with its watch lists, variable activities, and learned clauses — serve
// every BSAT call of a sampling or counting run instead of being rebuilt
// per call:
//
//   - a CNF clause C is stored as (C ∨ ¬a). Assuming a reduces it to C;
//     leaving a unconstrained lets the solver satisfy the guard for free.
//   - an XOR row ⊕vars = rhs is stored as ⊕vars ⊕ a = rhs. Assuming ¬a
//     enforces the row; otherwise a absorbs the parity.
//
// Every learned clause whose derivation used a guarded constraint
// contains the negation of that constraint's activation literal (the
// assumption is a decision, so conflict analysis cannot resolve it
// away). Release therefore (1) hard-deletes the guarded constraints and
// (2) fixes the activation variable at level 0 to the polarity that
// permanently satisfies those learned clauses, which keeps the clause
// database sound without scanning it; reduceDB reclaims the dead
// clauses on its normal schedule.
//
// Level-0 escape hatch: if a removable XOR ever propagates or conflicts
// at decision level 0 (possible only when its selector got fixed at
// level 0 first, e.g. by a learned unit meaning "this cell is empty"),
// the top-level trail would outlive the constraint's deletion. The
// solver flags this with taintL0; results of the call in which the
// taint arose are still valid (all tainting constraints are attached
// and active until the call returns), but the solver must be rebuilt
// before the next call. Sessions poll Tainted and rebuild — in practice
// this is vanishingly rare.

// Selector identifies a removable group of constraints. Clause
// selectors are registered with the solver until released: arena
// compaction must be able to rewrite the CRefs of every guarded clause
// still alive, so an unreleased selector is a GC root (and a selector
// that is never Released pins its clauses for the solver's lifetime).
type Selector struct {
	act      cnf.Lit
	cls      []CRef
	xors     []int32
	regIdx   int // index in Solver.sels; -1 when not registered (XOR selectors)
	released bool
}

// Lit returns the activation literal. Passing it to Solve as an
// assumption enables the selector's constraints for that call.
func (sel *Selector) Lit() cnf.Lit { return sel.act }

// Released reports whether the selector has been released.
func (sel *Selector) Released() bool { return sel.released }

// Tainted reports whether the level-0 state may depend on a removable
// XOR constraint. Once set, results of future Solve calls may be wrong
// after a Release; the owner must discard this solver and rebuild.
func (s *Solver) Tainted() bool { return s.taintL0 }

// SetModelBound restricts Model (and Solve's model extraction) to
// variables 1..n. Sessions set it to the base formula's variable count
// so that model extraction stays O(|formula|) no matter how many
// selector variables accumulate.
func (s *Solver) SetModelBound(n int) { s.modelBound = n }

// gcWasteDenom triggers a compaction when deleted blocks hold more
// than 1/gcWasteDenom of the arena.
const gcWasteDenom = 5

// CollectGarbage removes learned clauses that are permanently
// satisfied by the top-level assignment — after a batch of Releases
// these are the clauses guarded by the released selectors — and
// reclaims their space. When tombstones have accumulated past the
// waste threshold this is a compacting copy: live clauses are
// relocated to the front of a fresh store and every CRef holder
// (watch lists, trail reasons, the clause indices, unreleased
// selectors) is rewritten in the same pass, so the space of released
// selector clauses is actually returned instead of lingering as
// tombstones. Below the threshold only the dirty watch lists are
// swept; the sweep matters because propagation drops deleted watchers
// only when it inspects them, and a watcher whose blocker literal
// happens to be true is kept without inspection, so released blocking
// clauses would otherwise pile up in the watch lists of a small
// sampling set forever. Must be called between Solve calls.
func (s *Solver) CollectGarbage() {
	if s.decisionLevel() != 0 {
		return
	}
	// Learned clauses still acting as level-0 reasons must survive even
	// when satisfied at level 0; mark them through the trail (which at
	// this point holds exactly the level-0 assignments).
	s.markTrailReasons(true)
	w := 0
	for _, cr := range s.learnts {
		if !s.ca.marked(cr) && s.satisfiedAtLevel0(cr) {
			s.deleteClause(cr)
			s.stats.RemovedDB++
			continue
		}
		s.learnts[w] = cr
		w++
	}
	s.learnts = s.learnts[:w]
	s.markTrailReasons(false)
	if s.maybeCompact() {
		return // compaction rewrote every watch list; nothing left to sweep
	}
	for _, li := range s.dirtyWatch {
		ws := s.watches[li]
		n := 0
		for _, wt := range ws {
			if wt.cr == crefBin || !s.ca.deleted(wt.cr) {
				ws[n] = wt
				n++
			}
		}
		s.watches[li] = ws[:n]
	}
	s.dirtyWatch = s.dirtyWatch[:0]
}

// maybeCompact compacts the arena if the waste threshold is exceeded.
// Must be called at decision level 0.
func (s *Solver) maybeCompact() bool {
	if s.ca.wasted == 0 || s.ca.wasted*gcWasteDenom < len(s.ca.store) {
		return false
	}
	s.compactArena()
	return true
}

// CompactArena forces an arena compaction immediately, regardless of
// the waste threshold. Exposed for tests and diagnostics; sessions
// rely on CollectGarbage's automatic trigger. Must be called at
// decision level 0, between Solve calls.
func (s *Solver) CompactArena() {
	if s.decisionLevel() != 0 {
		panic("sat: CompactArena above level 0")
	}
	s.compactArena()
}

// compactArena is the relocation pass: every live clause (and every
// deleted block still referenced as a trail reason) is copied to the
// front of a fresh store, a forwarding CRef is left in the old block
// (mark bit + the word after the header), and all CRef holders are
// rewritten — the problem and learnt indices, unreleased selectors'
// clause lists, trail reasons, and every watch list. Watchers of
// deleted clauses and inlined-binary watchers whose blocker is
// permanently true are dropped along the way. The old store is kept
// as the allocation target of the next compaction, so a session in
// steady state compacts with no allocation at all.
func (s *Solver) compactArena() {
	from := s.ca.store
	to := s.ca.spare[:0]
	if need := len(from) - s.ca.wasted; cap(to) < need {
		to = make([]uint32, 0, need)
	}
	wasted := 0
	reloc := func(cr CRef) CRef {
		h := from[cr]
		if h&hdrMark != 0 {
			return from[cr+1] // already forwarded
		}
		nc := CRef(len(to))
		n := s.ca.blockLen(cr) // ca.store is still `from` until the swap below
		to = append(to, from[cr:int(cr)+n]...)
		if h&hdrDeleted != 0 {
			wasted += n // deleted trail-reason blocks ride along
		}
		from[cr] = h | hdrMark
		from[cr+1] = nc
		return nc
	}
	for i, cr := range s.clauses {
		s.clauses[i] = reloc(cr)
	}
	for i, cr := range s.learnts {
		s.learnts[i] = reloc(cr)
	}
	for _, sel := range s.sels {
		for i, cr := range sel.cls {
			sel.cls[i] = reloc(cr)
		}
	}
	for _, l := range s.trail {
		if r := s.reasons[l.Var()]; r.tag == reasonClause {
			s.reasons[l.Var()] = reason{tag: reasonClause, ref: reloc(r.ref)}
		}
	}
	for li := range s.watches {
		ws := s.watches[li]
		// A list whose own literal is permanently false can never be
		// traversed again (the literal would have to become true); its
		// inlined-binary entries are dead weight. The mirror entry of a
		// released learned binary {l, ¬a} lands exactly here: a is fixed
		// false, so watches[a] is such a list.
		wl := cnf.Lit(li)
		deadList := wl != 0 && s.value(wl) == lFalse && s.level[wl.Var()] == 0
		w := 0
		for _, wt := range ws {
			if wt.cr == crefBin {
				if deadList {
					continue
				}
				if blk := wt.blocker(); s.value(blk) == lTrue && s.level[blk.Var()] == 0 {
					continue // binary clause permanently satisfied
				}
				ws[w] = wt
				w++
				continue
			}
			h := from[wt.cr]
			if h&hdrDeleted != 0 {
				continue
			}
			if h&hdrMark == 0 {
				panic("sat: live watched clause missing from all GC roots")
			}
			wt.cr = from[wt.cr+1]
			ws[w] = wt
			w++
		}
		s.watches[li] = ws[:w]
	}
	s.ca.spare = from[:0]
	s.ca.store = to
	s.ca.wasted = wasted
	s.dirtyWatch = s.dirtyWatch[:0]
	s.stats.Compactions++
}

// deleteClause tombstones an arena clause and records its two watch
// lists as dirty so CollectGarbage can purge the stale watchers
// without sweeping the entire (selector-grown) watch table.
// Propagation keeps skipping and dropping deleted watchers it happens
// to visit in the meantime; the block's space is reclaimed by the next
// compaction.
func (s *Solver) deleteClause(cr CRef) {
	b := s.ca.litBase(cr)
	s.dirtyWatch = append(s.dirtyWatch,
		cnf.Lit(s.ca.store[b]).Not(), cnf.Lit(s.ca.store[b+1]).Not())
	s.ca.del(cr)
}

// detachClause eagerly removes a clause's two watchers — the eager
// counterpart of deleteClause's lazy dirtyWatch path. Vivification uses
// it to take a clause offline before re-deriving it, so the clause can
// never propagate against itself during the probe.
func (s *Solver) detachClause(cr CRef) {
	b := s.ca.litBase(cr)
	for k := 0; k < 2; k++ {
		li := cnf.Lit(s.ca.store[b+k]).Not()
		ws := s.watches[li]
		for i := range ws {
			if ws[i].cr == cr {
				ws[i] = ws[len(ws)-1]
				s.watches[li] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// newSelectorVar allocates a fresh variable of the given selector kind,
// excluded from the branching heaps (growTo consults allocSelKind so
// the variable is marked before any heap insertion could happen).
func (s *Solver) newSelectorVar(kind byte) cnf.Var {
	v := cnf.Var(s.numVars + 1)
	s.allocSelKind = kind
	s.growTo(int(v))
	s.allocSelKind = selNone
	return v
}

// NewClauseSelector allocates a selector guarding no clauses yet; add
// them with AddClauseToSelector. Grouping many clauses under one
// selector (e.g. all blocking clauses of one enumeration cell) keeps
// the per-Solve assumption list short.
func (s *Solver) NewClauseSelector() *Selector {
	if s.decisionLevel() != 0 {
		panic("sat: NewClauseSelector above level 0")
	}
	sel := &Selector{act: cnf.MkLit(s.newSelectorVar(selClause), false), regIdx: len(s.sels)}
	s.sels = append(s.sels, sel)
	return sel
}

// AddClauseRemovable adds clause c guarded by a fresh selector. The
// clause constrains the search only in Solve calls whose assumptions
// include sel.Lit(). Must be called at decision level 0.
func (s *Solver) AddClauseRemovable(c cnf.Clause) *Selector {
	sel := s.NewClauseSelector()
	s.AddClauseToSelector(sel, c)
	return sel
}

// AddClauseToSelector adds clause c under an existing, unreleased
// clause selector. Must be called at decision level 0.
func (s *Solver) AddClauseToSelector(sel *Selector, c cnf.Clause) {
	if s.decisionLevel() != 0 {
		panic("sat: AddClauseToSelector above level 0")
	}
	if sel.released {
		panic("sat: AddClauseToSelector on a released selector")
	}
	if !s.ok {
		return
	}
	norm, taut := cnf.NormalizeClause(c)
	if taut {
		return
	}
	for _, l := range norm {
		s.growTo(int(l.Var()))
	}
	out := make(cnf.Clause, 0, len(norm)+1)
	for _, l := range norm {
		switch s.value(l) {
		case lTrue:
			return // permanently satisfied: activating is a no-op
		case lUndef:
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		// The clause is false under the top-level assignment: activating
		// this selector must yield Unsat, which fixing ¬a achieves via
		// the assumption check in search.
		s.addUnit(sel.act.Not())
		return
	}
	out = append(out, sel.act.Not())
	// Removable clauses always get arena blocks, even binary ones:
	// Release needs an address to delete. The generic watch path
	// handles size-2 arena clauses correctly (the replacement scan is
	// simply empty).
	cr := s.ca.alloc(out, false, 0, 0)
	sel.cls = append(sel.cls, cr)
	s.attach(cr)
}

// AddXORRemovable adds the parity constraint ⊕vars = rhs guarded by a
// fresh selector. Must be called at decision level 0.
func (s *Solver) AddXORRemovable(vars []cnf.Var, rhs bool) *Selector {
	if s.decisionLevel() != 0 {
		panic("sat: AddXORRemovable above level 0")
	}
	if !s.cfg.ScalarXOR {
		// Pack onto the solver's column space and take the packed
		// removable path (identity column mapping).
		norm, nrhs := cnf.NormalizeXOR(vars, rhs)
		return s.AddPackedXORRemovable(s.packXORRow(norm), nrhs, nil)
	}
	v := s.newSelectorVar(selXORGuard)
	sel := &Selector{act: cnf.MkLit(v, true), regIdx: -1} // active when a = false
	if !s.ok {
		return sel
	}
	norm, nrhs := cnf.NormalizeXOR(vars, rhs)
	for _, xv := range norm {
		s.growTo(int(xv))
	}
	out := make([]cnf.Var, 0, len(norm)+1)
	for _, xv := range norm {
		switch s.valueVar(xv) {
		case lTrue:
			nrhs = !nrhs
		case lUndef:
			out = append(out, xv)
		}
	}
	if len(out) == 0 {
		if nrhs {
			// 0 = 1 under the top-level assignment: activating must give
			// Unsat. Fix a = true so the assumption ¬a is contradicted.
			s.addUnit(sel.act.Not())
		}
		return sel
	}
	out = append(out, v)
	x := xorClause{vars: out, rhs: nrhs, w: [2]int{0, 1}, sel: v}
	idx := s.pushXorClause(x, out[0], out[1])
	sel.xors = append(sel.xors, idx)
	s.liveXorSels++
	return sel
}

// AddPackedXORRemovable installs a drawn GF(2) row as a removable
// constraint without materializing a variable slice: bit c of bits
// refers to solver XOR column cols[c], or — when cols is nil — to
// solver column c directly. The nil (identity) case is the column-map
// contract with hashfam: a session registers the sampling set via
// XORColumns before any selector exists, hash rows are packed over the
// sampling set in the same order, and installation is a word copy plus
// one selector bit. bits is not retained. Must be called at decision
// level 0; packed engine only.
func (s *Solver) AddPackedXORRemovable(bits []uint64, rhs bool, cols []int32) *Selector {
	if s.decisionLevel() != 0 {
		panic("sat: AddPackedXORRemovable above level 0")
	}
	if s.cfg.ScalarXOR {
		panic("sat: AddPackedXORRemovable requires the packed XOR engine")
	}
	v := s.newSelectorVar(selXORGuard)
	sel := &Selector{act: cnf.MkLit(v, true), regIdx: -1} // active when a = false
	if !s.ok {
		return sel
	}
	selCol := s.xorColumn(v)
	row := make([]uint64, gf2.Words(len(s.xvarOf)))
	if cols == nil {
		copy(row, bits)
	} else {
		for w, b := range bits {
			for b != 0 {
				c := w<<6 | mbits.TrailingZeros64(b)
				b &= b - 1
				sc := cols[c]
				row[sc>>6] |= 1 << uint(sc&63)
			}
		}
	}
	s.installPackedXOR(row, rhs, sel, selCol)
	if len(sel.xors) == 0 {
		// The row resolved at level 0 (empty or fully assigned): no
		// constraint holds the column, so recycle it right away.
		s.freeXorColumn(v)
	}
	return sel
}

// Release permanently deletes the selector's constraints. Guarded CNF
// clauses are detached, guarded XOR rows are removed from the watch
// structures and their slots recycled, and the activation variable is
// fixed so that stale learned clauses become permanently satisfied.
// Idempotent; must be called between Solve calls.
func (s *Solver) Release(sel *Selector) {
	if sel == nil || sel.released {
		return
	}
	sel.released = true
	s.cancelUntil(0)
	for _, cr := range sel.cls {
		s.deleteClause(cr)
	}
	sel.cls = nil
	if len(sel.xors) > 0 {
		s.liveXorSels--
	}
	if sel.regIdx >= 0 {
		// Unregister from the compaction roots (swap-delete).
		last := len(s.sels) - 1
		s.sels[sel.regIdx] = s.sels[last]
		s.sels[sel.regIdx].regIdx = sel.regIdx
		s.sels[last] = nil
		s.sels = s.sels[:last]
		sel.regIdx = -1
	}
	for _, xi := range sel.xors {
		x := &s.xors[xi]
		if x.bits != nil {
			s.detachXORWatch(s.xvarOf[x.w[0]], xi)
			s.detachXORWatch(s.xvarOf[x.w[1]], xi)
			s.freeXorColumn(x.sel)
		} else {
			s.detachXORWatch(x.vars[x.w[0]], xi)
			s.detachXORWatch(x.vars[x.w[1]], xi)
		}
		s.xors[xi] = xorClause{}
		s.freeXors = append(s.freeXors, xi)
	}
	sel.xors = nil
	if !s.ok {
		return
	}
	// Learned clauses that depended on this selector contain act.Not();
	// assert it so they are satisfied forever. The selector variable
	// occurs in no other constraint, so nothing else propagates. Skip if
	// the variable was already fixed at level 0 (either polarity is
	// sound at that point: see the package comment in this file).
	if s.value(sel.act) == lUndef {
		s.addUnit(sel.act.Not())
	}
}

// detachXORWatch removes xor index xi from v's occurrence list.
func (s *Solver) detachXORWatch(v cnf.Var, xi int32) {
	occ := s.occXor[v]
	w := 0
	for _, o := range occ {
		if o != xi {
			occ[w] = o
			w++
		}
	}
	s.occXor[v] = occ[:w]
}
