package sat

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

func TestProofUnsatPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons, 3 holes — classically UNSAT with real
	// resolution work. Var(p,h) = 3p + h + 1 for p in 0..3, h in 0..2.
	f := cnf.New(12)
	v := func(p, h int) int { return 3*p + h + 1 }
	for p := 0; p < 4; p++ {
		f.AddClause(v(p, 0), v(p, 1), v(p, 2))
	}
	for h := 0; h < 3; h++ {
		for p1 := 0; p1 < 4; p1++ {
			for p2 := p1 + 1; p2 < 4; p2++ {
				f.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	s := New(f, Config{RecordProof: true})
	if s.Solve() != Unsat {
		t.Fatal("PHP(4,3) must be UNSAT")
	}
	proof := s.Proof()
	if len(proof) == 0 {
		t.Fatal("no proof recorded")
	}
	last := proof[len(proof)-1]
	if last.Kind != StepLemma || len(last.Lits) != 0 {
		t.Fatalf("proof does not end with the empty lemma: %+v", last)
	}
	if err := CheckRUPProof(f, proof); err != nil {
		t.Fatalf("proof check failed: %v", err)
	}
}

func TestProofRandomUnsat(t *testing.T) {
	rng := randx.New(401)
	checked := 0
	for iter := 0; iter < 120 && checked < 15; iter++ {
		n := 6 + rng.Intn(6)
		f := randomCNF(rng, n, 6*n, 3) // over-constrained: usually UNSAT
		s := New(f, Config{RecordProof: true, Seed: uint64(iter)})
		if s.Solve() != Unsat {
			continue
		}
		if err := CheckRUPProof(f, s.Proof()); err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, cnf.DIMACSString(f))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no UNSAT instances generated")
	}
}

func TestProofWithXORs(t *testing.T) {
	// UNSAT XOR system solved without Gauss (proof mode disables it).
	f := cnf.New(3)
	f.AddXOR([]cnf.Var{1, 2}, true)
	f.AddXOR([]cnf.Var{2, 3}, true)
	f.AddXOR([]cnf.Var{3, 1}, true)                           // sums to 0 = 1: UNSAT
	s := New(f, Config{RecordProof: true, GaussJordan: true}) // gauss auto-disabled
	if s.Solve() != Unsat {
		t.Fatal("odd XOR cycle must be UNSAT")
	}
	if err := CheckRUPProof(f, s.Proof()); err != nil {
		t.Fatalf("xor proof check failed: %v", err)
	}
}

func TestProofWithMidSearchAxioms(t *testing.T) {
	// Enumerate all models with blocking clauses, then verify the final
	// UNSAT proof (blocking clauses appear as axioms in the trace).
	f := cnf.New(3)
	f.AddClause(1, 2)
	s := New(f, Config{RecordProof: true})
	for {
		st := s.Solve()
		if st == Unsat {
			break
		}
		if st != Sat {
			t.Fatalf("unexpected %v", st)
		}
		m := s.Model()
		block := make(cnf.Clause, 0, 3)
		for v := cnf.Var(1); v <= 3; v++ {
			block = append(block, cnf.MkLit(v, m.Get(v)))
		}
		if !s.AddClause(block) {
			break
		}
	}
	if err := CheckRUPProof(f, s.Proof()); err != nil {
		t.Fatalf("enumeration proof check failed: %v", err)
	}
}

func TestProofCheckerRejectsBogusLemma(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1, 2)
	bogus := []ProofStep{{Kind: StepLemma, Lits: []cnf.Lit{cnf.MkLit(3, false)}}}
	if err := CheckRUPProof(f, bogus); err == nil {
		t.Fatal("bogus lemma accepted")
	}
}

func TestProofEmptyWhenDisabled(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1)
	f.AddClause(-1)
	s := New(f, Config{})
	s.Solve()
	if len(s.Proof()) != 0 {
		t.Fatal("proof recorded without RecordProof")
	}
}
