package sat

import (
	"sync/atomic"
	"testing"
	"time"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// random3CNF builds a satisfiable-ish random 3-CNF (no guarantee; the
// interrupt tests only need search work, not a particular verdict).
func random3CNF(nVars, nClauses int, seed uint64) *cnf.Formula {
	rng := randx.New(seed)
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		c := make(cnf.Clause, 0, 3)
		for j := 0; j < 3; j++ {
			c = append(c, cnf.MkLit(cnf.Var(rng.Intn(nVars)+1), rng.Bool()))
		}
		f.AddClauseLits(c)
	}
	return f
}

func TestInterruptPreSetReturnsUnknown(t *testing.T) {
	intr := new(atomic.Bool)
	intr.Store(true)
	f := random3CNF(50, 180, 1)
	s := New(f, Config{Interrupt: intr})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("Solve under pre-set interrupt = %v, want Unknown", st)
	}
	// Clearing the flag must leave a fully usable solver.
	intr.Store(false)
	if st := s.Solve(); st == Unknown {
		t.Fatal("Solve stayed Unknown after the interrupt was cleared")
	}
}

func TestInterruptSharedAcrossSolvers(t *testing.T) {
	// One flag interrupts every solver configured with it — the
	// mechanism a parallel pool uses to cancel all workers at once.
	intr := new(atomic.Bool)
	solvers := []*Solver{
		New(random3CNF(40, 150, 2), Config{Interrupt: intr}),
		New(random3CNF(40, 150, 3), Config{Interrupt: intr}),
	}
	intr.Store(true)
	for i, s := range solvers {
		if st := s.Solve(); st != Unknown {
			t.Fatalf("solver %d: %v, want Unknown", i, st)
		}
	}
}

func TestInterruptMidSearch(t *testing.T) {
	// A watcher raises the flag shortly after search starts; Solve must
	// come home even though no conflict/propagation budget is set. If
	// the instance happens to be solved before the flag fires, any
	// verdict is acceptable — the assertion is that Solve returns.
	intr := new(atomic.Bool)
	f := random3CNF(300, 1278, 4) // near the phase-transition ratio
	s := New(f, Config{Interrupt: intr})
	go func() {
		time.Sleep(5 * time.Millisecond)
		intr.Store(true)
	}()
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Solve did not return after interrupt")
	}
}
