package sat

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// TestRemovableClauseActivation: a guarded clause constrains the search
// only when its activation literal is assumed.
func TestRemovableClauseActivation(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1, 2)
	s := New(f, Config{})
	// ¬1 ∧ ¬2 is unsatisfiable together with (1 ∨ 2) — but only when
	// both removable clauses are active.
	s1 := s.AddClauseRemovable(cnf.Clause{cnf.MkLit(1, true)})
	s2 := s.AddClauseRemovable(cnf.Clause{cnf.MkLit(2, true)})
	if got := s.Solve(); got != Sat {
		t.Fatalf("no assumptions: Solve = %v, want SAT", got)
	}
	if got := s.Solve(s1.Lit()); got != Sat {
		t.Fatalf("one guard: Solve = %v, want SAT", got)
	}
	m := s.Model()
	if m.Get(1) {
		t.Fatal("active removable clause ¬x1 violated")
	}
	if got := s.Solve(s1.Lit(), s2.Lit()); got != Unsat {
		t.Fatalf("both guards: Solve = %v, want UNSAT", got)
	}
	// Still satisfiable without assumptions after the UNSAT call.
	if got := s.Solve(); got != Sat {
		t.Fatalf("after UNSAT call: Solve = %v, want SAT", got)
	}
}

// TestReleaseStopsConstraining: a released clause is gone for good, and
// learned clauses that depended on it no longer constrain the search.
func TestReleaseStopsConstraining(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1, 2)
	f.AddClause(1, 3)
	s := New(f, Config{})
	sel := s.AddClauseRemovable(cnf.Clause{cnf.MkLit(1, true)}) // ¬x1
	if got := s.Solve(sel.Lit()); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	if s.Model().Get(1) {
		t.Fatal("x1 should be forced false while the guard is active")
	}
	s.Release(sel)
	if !sel.Released() {
		t.Fatal("selector not marked released")
	}
	// x1 must be free again: force it true via a permanent unit.
	if !s.AddClause(cnf.Clause{cnf.MkLit(1, false)}) {
		t.Fatal("adding unit x1 made the solver UNSAT: released clause still constrains")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("after release: Solve = %v, want SAT", got)
	}
	if !s.Model().Get(1) {
		t.Fatal("x1 not true after release + unit")
	}
	// Releasing twice is a no-op.
	s.Release(sel)
}

// TestRemovableXORActivationAndRelease: removable parity constraints
// enforce, swap, and retire correctly.
func TestRemovableXORActivationAndRelease(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1, 2) // keep both vars in the formula
	s := New(f, Config{})
	odd := s.AddXORRemovable([]cnf.Var{1, 2}, true)
	if got := s.Solve(odd.Lit()); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	m := s.Model()
	if m.Get(1) == m.Get(2) {
		t.Fatalf("active XOR x1⊕x2=1 violated: model %v", m)
	}
	s.Release(odd)
	even := s.AddXORRemovable([]cnf.Var{1, 2}, false)
	if got := s.Solve(even.Lit()); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	m = s.Model()
	if m.Get(1) != m.Get(2) {
		t.Fatalf("active XOR x1⊕x2=0 violated: model %v", m)
	}
	// Conflicting removable XORs: UNSAT only while both are assumed.
	odd2 := s.AddXORRemovable([]cnf.Var{1, 2}, true)
	if got := s.Solve(even.Lit(), odd2.Lit()); got != Unsat {
		t.Fatalf("contradictory parities: Solve = %v, want UNSAT", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("no assumptions: Solve = %v, want SAT", got)
	}
}

// TestAssumptionsComposeWithXORPropagation: an assumption-activated
// clause must feed native XOR propagation and vice versa (the ISSUE's
// composition requirement).
func TestAssumptionsComposeWithXORPropagation(t *testing.T) {
	f := cnf.New(4)
	f.AddXOR([]cnf.Var{1, 2}, true) // permanent: x1⊕x2 = 1
	f.AddClause(3, 4)
	s := New(f, Config{})
	// Removable clause forcing x1; removable XOR chaining x2 to x3.
	cSel := s.AddClauseRemovable(cnf.Clause{cnf.MkLit(1, false)}) // x1
	xSel := s.AddXORRemovable([]cnf.Var{2, 3}, true)              // x2⊕x3 = 1
	if got := s.Solve(cSel.Lit(), xSel.Lit()); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	m := s.Model()
	if !m.Get(1) {
		t.Fatal("assumed removable clause did not force x1")
	}
	if m.Get(2) {
		t.Fatal("permanent XOR did not propagate x2 = ¬x1")
	}
	if !m.Get(3) {
		t.Fatal("removable XOR did not propagate x3 = ¬x2")
	}
	// With only the clause active, x3 is unconstrained: both values
	// must be reachable (force each with a further removable unit).
	for _, want := range []bool{false, true} {
		u := s.AddClauseRemovable(cnf.Clause{cnf.MkLit(3, !want)})
		if got := s.Solve(cSel.Lit(), u.Lit()); got != Sat {
			t.Fatalf("x3=%v: Solve = %v, want SAT", want, got)
		}
		if s.Model().Get(3) != want {
			t.Fatalf("x3 = %v, want %v", s.Model().Get(3), want)
		}
		s.Release(u)
	}
}

// TestReleaseRecyclesXORSlots: released XOR rows free their slots for
// reuse instead of growing the xors arena forever.
func TestReleaseRecyclesXORSlots(t *testing.T) {
	f := cnf.New(4)
	f.AddClause(1, 2, 3, 4)
	s := New(f, Config{})
	sel := s.AddXORRemovable([]cnf.Var{1, 2, 3}, true)
	base := len(s.xors)
	for i := 0; i < 50; i++ {
		s.Release(sel)
		sel = s.AddXORRemovable([]cnf.Var{1, 2, 3}, i%2 == 0)
		if got := s.Solve(sel.Lit()); got != Sat {
			t.Fatalf("round %d: Solve = %v, want SAT", i, got)
		}
	}
	if len(s.xors) != base {
		t.Fatalf("xor arena grew from %d to %d slots across release/re-add cycles",
			base, len(s.xors))
	}
}

// TestGroupedSelector: many clauses under one selector activate and
// release together.
func TestGroupedSelector(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1, 2, 3)
	s := New(f, Config{})
	sel := s.NewClauseSelector()
	s.AddClauseToSelector(sel, cnf.Clause{cnf.MkLit(1, true)}) // ¬x1
	s.AddClauseToSelector(sel, cnf.Clause{cnf.MkLit(2, true)}) // ¬x2
	if got := s.Solve(sel.Lit()); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	m := s.Model()
	if m.Get(1) || m.Get(2) || !m.Get(3) {
		t.Fatalf("grouped guards not enforced: model %v", m)
	}
	s.AddClauseToSelector(sel, cnf.Clause{cnf.MkLit(3, true)}) // ¬x3: now UNSAT
	if got := s.Solve(sel.Lit()); got != Unsat {
		t.Fatalf("after third guard: Solve = %v, want UNSAT", got)
	}
	s.Release(sel)
	if got := s.Solve(); got != Sat {
		t.Fatalf("after release: Solve = %v, want SAT", got)
	}
}

// TestSelectorVarsStayOffHeaps: allocating selectors must not push them
// into either decision heap (the invariant pickBranchLit relies on).
func TestSelectorVarsStayOffHeaps(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1, 2)
	s := New(f, Config{})
	sels := []*Selector{
		s.AddClauseRemovable(cnf.Clause{cnf.MkLit(1, true)}),
		s.AddXORRemovable([]cnf.Var{1, 2}, true),
		s.NewClauseSelector(),
	}
	for _, sel := range sels {
		v := sel.Lit().Var()
		if s.order.contains(v) || s.priOrder.contains(v) {
			t.Fatalf("selector var %d present in a decision heap", v)
		}
		if s.isSelector[v] == selNone {
			t.Fatalf("selector var %d not marked", v)
		}
	}
	if got := s.Solve(sels[0].Lit(), sels[1].Lit()); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
}

// TestLevel0TaintFromRemovableXOR forces the taint escape hatch
// deterministically: fixing every formula variable of a removable XOR
// at level 0 makes the row propagate its own selector onto the
// permanent trail, which must raise Tainted. The call's own verdicts
// stay valid; the owner is expected to rebuild afterwards.
func TestLevel0TaintFromRemovableXOR(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1, 2, 3)
	s := New(f, Config{})
	sel := s.AddXORRemovable([]cnf.Var{1, 2}, true)
	if s.Tainted() {
		t.Fatal("tainted before any level-0 propagation")
	}
	// Fix x1 = true, x2 = false at level 0: the guarded row x1⊕x2⊕a = 1
	// now implies a at level 0.
	if !s.AddClause(cnf.Clause{cnf.MkLit(1, false)}) || !s.AddClause(cnf.Clause{cnf.MkLit(2, true)}) {
		t.Fatal("units made the solver UNSAT")
	}
	if !s.Tainted() {
		t.Fatal("level-0 propagation through a removable XOR did not taint the solver")
	}
	// The current attached system is still answered correctly: the row
	// is satisfied by x1=1, x2=0, so activation is consistent.
	if got := s.Solve(sel.Lit()); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	m := s.Model()
	if !m.Get(1) || m.Get(2) {
		t.Fatalf("model %v contradicts level-0 units", m)
	}
}

// TestTaintOnGuardAbsorbedAboveLevel0: propagation assigning a
// removable XOR's own guard to the deactivating polarity above level 0
// must taint the solver (learned clauses formed past that point can
// hold the guard polarity Release would falsify); the activating
// polarity must not.
func TestTaintOnGuardAbsorbedAboveLevel0(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1, 2, 3)
	s := New(f, Config{})
	u1 := s.AddClauseRemovable(cnf.Clause{cnf.MkLit(1, false)}) // x1
	u2 := s.AddClauseRemovable(cnf.Clause{cnf.MkLit(2, false)}) // x2
	// With x1 = x2 = true forced at assumption levels, this row fixes
	// its guard to the ACTIVATING polarity (row already satisfied).
	s.AddXORRemovable([]cnf.Var{1, 2}, false)
	if got := s.Solve(u1.Lit(), u2.Lit()); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	if s.Tainted() {
		t.Fatal("activating-polarity guard propagation must not taint")
	}
	// Same shape, opposite parity: the guard is absorbed (deactivating
	// polarity) above level 0 — must taint.
	s.AddXORRemovable([]cnf.Var{1, 2}, true)
	if got := s.Solve(u1.Lit(), u2.Lit()); got != Sat {
		t.Fatalf("Solve = %v, want SAT", got)
	}
	if !s.Tainted() {
		t.Fatal("guard absorbed above level 0 did not taint the solver")
	}
}

// TestIncrementalDifferentialStatus cross-checks removable constraints
// against fresh solvers with the same constraints added permanently,
// over randomized CNF+XOR formulas.
func TestIncrementalDifferentialStatus(t *testing.T) {
	rng := randx.New(0xd1ff)
	for iter := 0; iter < 120; iter++ {
		n := 4 + rng.Intn(6)
		f := cnf.New(n)
		for i, m := 0, rng.Intn(3*n); i < m; i++ {
			c := make(cnf.Clause, 0, 3)
			for j := 0; j < 3; j++ {
				c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
			}
			f.AddClauseLits(c)
		}
		inc := New(f, Config{Seed: uint64(iter)})

		// Random removable constraints: a few clauses and XOR rows.
		var acts []cnf.Lit
		g := f.Clone()
		for k, kk := 0, 1+rng.Intn(3); k < kk; k++ {
			if rng.Bool() {
				c := make(cnf.Clause, 0, 2)
				for j := 0; j < 1+rng.Intn(2); j++ {
					c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
				}
				acts = append(acts, inc.AddClauseRemovable(c).Lit())
				g.AddClauseLits(c)
			} else {
				var vs []cnf.Var
				for v := 1; v <= n; v++ {
					if rng.Bool() {
						vs = append(vs, cnf.Var(v))
					}
				}
				rhs := rng.Bool()
				acts = append(acts, inc.AddXORRemovable(vs, rhs).Lit())
				g.AddXOR(vs, rhs)
			}
		}
		fresh := New(g, Config{Seed: uint64(iter)})
		want := fresh.Solve()
		got := inc.Solve(acts...)
		if got != want {
			t.Fatalf("iter %d: incremental %v, fresh %v\n%s", iter, got, want, cnf.DIMACSString(g))
		}
		if got == Sat {
			m := inc.Model()[:n+1] // drop selector variables
			if !m.Satisfies(g) {
				t.Fatalf("iter %d: incremental model violates constraints", iter)
			}
		}
		// The base formula's status must be unaffected by the removable
		// constraints (with or without releasing them).
		baseWant := New(f, Config{Seed: uint64(iter)}).Solve()
		if got := inc.Solve(); got != baseWant {
			t.Fatalf("iter %d: base status with inactive guards %v, want %v", iter, got, baseWant)
		}
	}
}
