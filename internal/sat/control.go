package sat

import "sync/atomic"

// SetBudgets replaces the per-Solve conflict and propagation budgets.
// Solve reads the limits fresh at every call (relative to the solver's
// cumulative stats), so pooled sessions can retune budgets between
// requests without rebuilding the solver. Zero means unlimited.
func (s *Solver) SetBudgets(maxConflicts, maxPropagations int64) {
	s.cfg.MaxConflicts = maxConflicts
	s.cfg.MaxPropagations = maxPropagations
}

// SetInterrupt replaces the cooperative-interrupt flag polled during
// search. Passing nil detaches the solver from any flag. Like budgets,
// the flag is consulted fresh at every Solve call, so ownership of a
// pooled solver can move between requests safely.
func (s *Solver) SetInterrupt(intr *atomic.Bool) {
	s.cfg.Interrupt = intr
}
