package sat

import (
	"fmt"

	"unigen/internal/cnf"
)

// Proof logging (DRUP-style, additions only). When Config.RecordProof
// is set, the solver records every clause it learns as a lemma and
// every clause added through AddClause as an axiom. For an UNSAT
// verdict the trace ends with the empty lemma, and CheckRUPProof can
// verify the whole derivation by reverse unit propagation against the
// original formula — giving end-users independent evidence that the
// solver's UNSAT answers (which UniGen's cell-emptiness and ApproxMC's
// exhaustion checks rely on) are sound.
//
// XOR clauses are handled by observing that every reason clause the
// XOR propagator materializes is one of the 2^(k-1) CNF expansion
// clauses of its XOR, so RUP over the expanded CNF covers XOR-derived
// lemmas. Gauss–Jordan preprocessing is incompatible with proof
// recording (its derived units are linear-algebra consequences, not
// RUP steps); New rejects the combination.

// ProofStepKind distinguishes trace entries.
type ProofStepKind int8

// Proof step kinds.
const (
	StepLemma ProofStepKind = iota // learned clause; must be RUP
	StepAxiom                      // clause added by the user mid-search
)

// ProofStep is one entry of a proof trace.
type ProofStep struct {
	Kind ProofStepKind
	Lits []cnf.Lit // empty lemma = UNSAT terminal
}

// Proof returns the recorded trace (nil unless Config.RecordProof).
func (s *Solver) Proof() []ProofStep {
	out := make([]ProofStep, len(s.proof))
	copy(out, s.proof)
	return out
}

func (s *Solver) logLemma(lits []cnf.Lit) {
	if !s.cfg.RecordProof {
		return
	}
	s.proof = append(s.proof, ProofStep{Kind: StepLemma, Lits: append([]cnf.Lit(nil), lits...)})
}

func (s *Solver) logAxiom(lits []cnf.Lit) {
	if !s.cfg.RecordProof {
		return
	}
	s.proof = append(s.proof, ProofStep{Kind: StepAxiom, Lits: append([]cnf.Lit(nil), lits...)})
}

// CheckRUPProof verifies a proof trace against formula f: every lemma
// must be derivable by reverse unit propagation (RUP) from the original
// clauses, the CNF expansions of the XOR clauses, the axioms added so
// far, and the previously verified lemmas. It returns an error at the
// first failing step. For an UNSAT certificate the trace must contain
// the empty lemma.
func CheckRUPProof(f *cnf.Formula, steps []ProofStep) error {
	db := make([][]cnf.Lit, 0, len(f.Clauses)+len(steps))
	for _, c := range f.Clauses {
		db = append(db, append([]cnf.Lit(nil), c...))
	}
	for _, x := range f.XORs {
		if len(x.Vars) > 20 {
			return fmt.Errorf("sat: XOR clause with %d vars too wide to expand for checking", len(x.Vars))
		}
		db = append(db, expandXORForCheck(x)...)
	}
	n := f.NumVars
	for i, st := range steps {
		for _, l := range st.Lits {
			if int(l.Var()) > n {
				n = int(l.Var())
			}
		}
		if st.Kind == StepAxiom {
			db = append(db, st.Lits)
			continue
		}
		if !rupDerivable(db, n, st.Lits) {
			return fmt.Errorf("sat: proof step %d (lemma %v) is not RUP", i, st.Lits)
		}
		db = append(db, st.Lits)
	}
	return nil
}

// rupDerivable checks that asserting the negation of lemma and unit
// propagating over db yields a conflict.
func rupDerivable(db [][]cnf.Lit, numVars int, lemma []cnf.Lit) bool {
	val := make([]lbool, numVars+1)
	var queue []cnf.Lit
	assign := func(l cnf.Lit) bool {
		v := l.Var()
		want := boolToLbool(!l.Neg())
		if val[v] != lUndef {
			return val[v] == want
		}
		val[v] = want
		queue = append(queue, l)
		return true
	}
	for _, l := range lemma {
		if !assign(l.Not()) {
			return true // negated lemma is itself contradictory
		}
	}
	// Naive fixpoint propagation (checker favors simplicity over speed).
	for {
		progressed := false
		for _, c := range db {
			unassigned := cnf.Lit(0)
			nUn := 0
			sat := false
			for _, l := range c {
				switch {
				case val[l.Var()] == lUndef:
					nUn++
					unassigned = l
				case (val[l.Var()] == lTrue) != l.Neg():
					sat = true
				}
				if sat || nUn > 1 {
					break
				}
			}
			if sat || nUn > 1 {
				continue
			}
			if nUn == 0 {
				return true // conflict reached
			}
			if !assign(unassigned) {
				return true
			}
			progressed = true
		}
		if !progressed {
			return false
		}
	}
}

// expandXORForCheck converts an XOR clause into its CNF expansion.
func expandXORForCheck(x cnf.XORClause) [][]cnf.Lit {
	k := len(x.Vars)
	var out [][]cnf.Lit
	for m := 0; m < 1<<uint(k); m++ {
		par := false
		for i := 0; i < k; i++ {
			if m&(1<<uint(i)) != 0 {
				par = !par
			}
		}
		if par == x.RHS {
			continue
		}
		c := make([]cnf.Lit, k)
		for i, v := range x.Vars {
			c[i] = cnf.MkLit(v, m&(1<<uint(i)) != 0)
		}
		out = append(out, c)
	}
	return out
}
