package sat

import (
	"math/bits"
	"sort"

	"unigen/internal/cnf"
)

// gaussJordan runs Gauss–Jordan elimination over GF(2) on the XOR system,
// mirroring CryptoMiniSAT's preprocessing of parity constraints. It
// returns the reduced XOR clauses, any implied unit literals, and whether
// the system is inconsistent (0 = 1 row).
//
// Full Jordan reduction (eliminating pivots from all rows, not just
// later ones) tends to shorten rows when the system has redundancy,
// which directly reduces XOR propagation cost during search.
func gaussJordan(xs []cnf.XORClause) (reduced []cnf.XORClause, units []cnf.Lit, conflict bool) {
	// Collect the variables involved and assign dense columns.
	varSet := map[cnf.Var]int{}
	var vars []cnf.Var
	for _, x := range xs {
		for _, v := range x.Vars {
			if _, ok := varSet[v]; !ok {
				varSet[v] = 0
				vars = append(vars, v)
			}
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	for i, v := range vars {
		varSet[v] = i
	}
	ncols := len(vars)
	words := (ncols + 63) / 64

	// Rows: words of lhs bits + rhs flag.
	type row struct {
		bits []uint64
		rhs  bool
	}
	rows := make([]row, 0, len(xs))
	for _, x := range xs {
		r := row{bits: make([]uint64, words), rhs: x.RHS}
		for _, v := range x.Vars {
			c := varSet[v]
			r.bits[c/64] ^= 1 << uint(c%64)
		}
		rows = append(rows, r)
	}

	firstSet := func(r row) int {
		for w, b := range r.bits {
			if b != 0 {
				for k := 0; k < 64; k++ {
					if b&(1<<uint(k)) != 0 {
						return w*64 + k
					}
				}
			}
		}
		return -1
	}
	xorInto := func(dst, src row) row {
		for w := range dst.bits {
			dst.bits[w] ^= src.bits[w]
		}
		dst.rhs = dst.rhs != src.rhs
		return dst
	}
	hasBit := func(r row, c int) bool {
		return r.bits[c/64]&(1<<uint(c%64)) != 0
	}

	// Forward elimination with full Jordan back-substitution.
	rank := 0
	for col := 0; col < ncols && rank < len(rows); col++ {
		pivot := -1
		for i := rank; i < len(rows); i++ {
			if hasBit(rows[i], col) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for i := 0; i < len(rows); i++ {
			if i != rank && hasBit(rows[i], col) {
				rows[i] = xorInto(rows[i], rows[rank])
			}
		}
		rank++
	}

	for _, r := range rows {
		fs := firstSet(r)
		if fs < 0 {
			if r.rhs {
				return nil, nil, true // 0 = 1
			}
			continue // redundant row
		}
		// Collect the row's variables.
		var rv []cnf.Var
		for w, b := range r.bits {
			for b != 0 {
				k := b & (-b)
				c := w*64 + bits.TrailingZeros64(k)
				rv = append(rv, vars[c])
				b &^= k
			}
		}
		if len(rv) == 1 {
			units = append(units, cnf.MkLit(rv[0], !r.rhs))
			continue
		}
		reduced = append(reduced, cnf.XORClause{Vars: rv, RHS: r.rhs})
	}
	return reduced, units, false
}
