package sat

import (
	"sort"

	"unigen/internal/cnf"
	"unigen/internal/gf2"
)

// gaussReduce runs Gauss–Jordan elimination over GF(2) on an XOR system
// given as sparse clauses, mirroring CryptoMiniSAT's preprocessing of
// parity constraints. It returns the reduced XOR clauses, any implied
// unit literals, and whether the system is inconsistent (0 = 1 row).
//
// Full Jordan reduction (eliminating pivots from all rows, not just
// later ones) tends to shorten rows when the system has redundancy,
// which directly reduces XOR propagation cost during search.
//
// This is the sparse-facing wrapper used by the legacy scalar engine
// and by property tests; the packed engine eliminates directly on rows
// over the solver's own column space (Solver.gaussInstallPacked) and
// never materializes []cnf.Var.
func gaussReduce(xs []cnf.XORClause) (reduced []cnf.XORClause, units []cnf.Lit, conflict bool) {
	// Collect the variables involved and assign dense columns.
	seen := map[cnf.Var]bool{}
	var vars []cnf.Var
	for _, x := range xs {
		for _, v := range x.Vars {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	col := make(map[cnf.Var]int, len(vars))
	for i, v := range vars {
		col[v] = i
	}
	ncols := len(vars)

	rows := make([]gf2.Row, len(xs))
	for i, x := range xs {
		r := gf2.NewRow(ncols)
		for _, v := range x.Vars {
			r.Flip(col[v])
		}
		r.RHS = x.RHS
		rows[i] = r
	}

	if gf2.GaussJordan(rows, ncols) {
		return nil, nil, true // 0 = 1
	}
	for _, r := range rows {
		switch r.Len() {
		case 0:
			// redundant row
		case 1:
			units = append(units, cnf.MkLit(vars[r.FirstSet()], !r.RHS))
		default:
			rv := make([]cnf.Var, 0, r.Len())
			r.ForEachSet(func(c int) { rv = append(rv, vars[c]) })
			reduced = append(reduced, cnf.XORClause{Vars: rv, RHS: r.RHS})
		}
	}
	return reduced, units, false
}
