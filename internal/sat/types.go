// Package sat implements a CDCL SAT solver with native XOR-clause
// propagation. It stands in for CryptoMiniSAT, which the DAC'14 UniGen
// implementation uses as its BSAT engine: the defining features UniGen
// relies on — efficient handling of long parity constraints and cheap
// incremental addition of blocking clauses — are both provided here.
//
// The solver is a conventional conflict-driven clause-learning design:
// two-watched-literal propagation, VSIDS branching with phase saving,
// first-UIP clause learning with recursive minimization, Luby restarts,
// and activity-based learned-clause deletion. XOR clauses are propagated
// natively with a two-watched-variable scheme (as in CryptoMiniSAT),
// with an optional Gauss–Jordan preprocessing pass over the XOR system.
package sat

import (
	"sync/atomic"

	"unigen/internal/cnf"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota // budget exhausted before a verdict
	Sat                   // a model was found
	Unsat                 // the formula (under assumptions) is unsatisfiable
)

func (st Status) String() string {
	switch st {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Config tunes a Solver. The zero value is a usable default.
type Config struct {
	// MaxConflicts bounds the number of conflicts per Solve call;
	// 0 means unlimited. This is the reproduction's substitute for the
	// paper's per-BSAT-call wall-clock timeout (2500 s in §5).
	MaxConflicts int64
	// MaxPropagations additionally bounds per-call propagation work
	// (0 = unlimited). Long XOR rows make propagation, not conflicts,
	// the dominant cost on UniWit-style full-support instances; this is
	// the budget that makes those calls "time out" deterministically.
	MaxPropagations int64
	// GaussJordan enables Gauss–Jordan elimination over the XOR system
	// before search (conflict detection, implied units, and XOR
	// shortening). An ablation knob: CryptoMiniSAT's corresponding
	// feature is one reason the paper's BSAT is fast on parity-heavy
	// instances.
	GaussJordan bool
	// ScalarXOR selects the legacy sparse []cnf.Var XOR engine instead
	// of the default bit-packed one: rows stored as variable slices and
	// propagated with a per-variable scan. Kept as the reference
	// implementation for the packed/legacy differential tests and the
	// E10 benchmark; there is no reason to enable it in production.
	ScalarXOR bool
	// Seed randomizes branching tie-breaks; runs are deterministic for a
	// fixed seed.
	Seed uint64
	// RandomPolarityFreq in [0,1] is the fraction of decisions whose
	// polarity is randomized rather than taken from the saved phase.
	// Diversifies enumeration order in BSAT. 0 disables.
	RandomPolarityFreq float64
	// PriorityVars are branched on before all other variables (VSIDS
	// order within each class). BSAT sets this to the sampling set:
	// for Tseitin-encoded formulas every non-sampling variable is
	// functionally determined by the sampling set, so deciding the
	// sampling set first makes witness enumeration nearly conflict-free.
	PriorityVars []cnf.Var
	// Interrupt, when non-nil, is polled during search (alongside the
	// conflict-budget check and periodically between decisions). Once it
	// reads true, Solve returns Unknown promptly, exactly as if the
	// conflict budget had been exhausted; the solver state stays valid
	// for further calls. Several solvers may share one flag — this is
	// how context cancellation reaches every worker of a parallel
	// sampling pool.
	Interrupt *atomic.Bool
	// RecordProof keeps a DRUP-style trace of learned clauses and
	// mid-search axioms, verifiable with CheckRUPProof. Incompatible
	// with GaussJordan (which is silently disabled when both are set):
	// Gauss-derived units are not RUP steps.
	RecordProof bool

	// InprocessEvery > 0 arms the inprocessing pass (failed-literal
	// probing, clause vivification, learnt subsumption / self-subsuming
	// strengthening). bsat sessions invoke Inprocess every N cells at
	// session boundaries — after all removable constraints are released —
	// and the solver additionally runs the subsumption pass inside
	// reduceDB when it fires at decision level 0. 0 disables all of it;
	// search is then bit-identical to a build without the feature.
	// Inprocessing is skipped while RecordProof is set.
	InprocessEvery int
	// VivifyBudget bounds propagations spent per vivification pass
	// (0 = a built-in default). The pass keeps a rolling cursor over the
	// problem clauses, so successive boundary passes cover the whole
	// database even under a small budget.
	VivifyBudget int64
	// ProbeBudget bounds propagations spent per failed-literal probing
	// pass (0 = a built-in default). Probing also keeps a rolling cursor.
	ProbeBudget int64
	// RephaseEvery > 0 rotates the decision polarity source every N
	// restarts through target (best-trail/best-model snapshot), saved,
	// inverted, saved, original, saved — CaDiCaL-style rephasing. 0 keeps
	// plain phase saving and bit-identical search.
	RephaseEvery int
	// ChronoBacktrack > 0 enables chronological backtracking: when
	// first-UIP analysis would jump back more than this many levels, the
	// solver backtracks one level instead and asserts the learnt literal
	// there, preserving the trail prefix. 0 keeps classic non-chronological
	// backjumping.
	ChronoBacktrack int
	// DirtyWindow lets the packed XOR engine cache, per row, the prefix of
	// coefficient words whose columns are all assigned at level 0 (with the
	// prefix's parity contribution), skipping them in every later scan.
	// Results are bit-identical either way; this is purely a memory-
	// bandwidth knob for long rows over mostly-fixed column spaces.
	DirtyWindow bool
}

// Stats reports cumulative search statistics for a Solver.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learned      int64
	RemovedDB    int64
	XORProps     int64
	GaussUnits   int64 // units derived by Gauss–Jordan preprocessing
	Compactions  int64 // arena GC compactions (clause relocation passes)
	ArenaBytes   int64 // current clause-arena footprint in bytes (gauge, not a counter)

	VivifiedLits     int64 // literals removed by vivification + self-subsuming strengthening
	SubsumedLearnts  int64 // learnt clauses deleted by subsumption
	ProbedLits       int64 // literals probed at level 0
	FailedLits       int64 // probes that failed (each yields a level-0 unit)
	Rephases         int64 // polarity-source rotations
	ChronoBacktracks int64 // backjumps converted to chronological backtracks
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// watcher pairs a watching clause with a blocker literal: if the
// blocker is already true the clause is satisfied and need not be
// inspected. cr addresses the clause in the arena; crefBin tags an
// inlined binary clause, whose other literal IS the blocker — binary
// propagation then never touches the arena. Both fields are packed to
// 32 bits so a watch list holds 8 watchers per cache line.
type watcher struct {
	cr  CRef
	blk uint32 // cnf.Lit
}

func (w watcher) blocker() cnf.Lit { return cnf.Lit(w.blk) }

// Reason tags recorded in reason.tag.
const (
	reasonNone   uint8 = iota // decision or top-level unit
	reasonClause              // ref is the CRef of an arena clause
	reasonBinary              // ref is the other (false) literal of a binary clause
	reasonXOR                 // ref is an index into Solver.xors
)

// reason records why a variable was assigned. The payload meaning
// depends on the tag; clause reasons are rewritten by arena compaction
// (the trail is one of the CRef holders GC relocates).
type reason struct {
	ref uint32
	tag uint8
}

func (r reason) isNone() bool { return r.tag == reasonNone }

// conflict is propagate's result: an arena clause (cr), a materialized
// literal set (lits, for XOR and inlined-binary conflicts, living in a
// solver scratch buffer), or neither (no conflict).
type conflict struct {
	cr   CRef
	lits []cnf.Lit
}

func noConflict() conflict { return conflict{cr: crefUndef} }

func (c conflict) none() bool { return c.cr == crefUndef && c.lits == nil }

// xorClause is a parity constraint with two watched positions. sel is
// nonzero for removable XOR rows: the selector variable folded into the
// parity by AddXORRemovable.
//
// Two representations exist, selected once per solver by
// Config.ScalarXOR. The packed engine (default) stores the row as dense
// GF(2) coefficient words over the solver's XOR column space and w holds
// the two watched columns; variables assigned at level 0 before install
// stay in the row (the assignment masks fold them into the parity).
// bits covers only the row's span: word k of bits is global mask word
// off+k, so a short row over a wide column space (a base-formula parity
// among thousands of hash-irrelevant columns) costs its own width, not
// the matrix width. The legacy scalar engine stores a sparse variable
// slice and w holds indices into it. Exactly one of bits/vars is
// populated.
type xorClause struct {
	bits []uint64  // packed engine: coefficient words, window [off, off+len)
	off  int32     // packed engine: global word offset of bits[0]
	vars []cnf.Var // scalar engine: sparse variable list
	rhs  bool
	w    [2]int // watched positions: columns (packed) or vars indices (scalar)
	sel  cnf.Var

	// Dirty window (packed engine, Config.DirtyWindow): the first skip
	// words of bits cover only columns assigned at level 0, and skipPar is
	// that prefix's parity contribution. Level-0 assignments are permanent
	// for the solver's lifetime, so scans resume at word skip. Both fields
	// stay zero when the knob is off.
	skip    int32
	skipPar bool
}

// Selector kinds recorded in Solver.isSelector.
const (
	selNone     byte = iota
	selClause        // guards CNF clauses (activation literal = positive var)
	selXORGuard      // guards an XOR row (activation literal = negated var)
)
