package sat

import "unigen/internal/cnf"

// varHeap is an indexed max-heap over variable activities, used for
// VSIDS branching. indices[v] is the position of v in heap, or -1.
type varHeap struct {
	heap    []cnf.Var
	indices []int
	act     *[]float64
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) growTo(n int) {
	for len(h.indices) <= n {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) less(a, b cnf.Var) bool {
	return (*h.act)[a] > (*h.act)[b]
}

func (h *varHeap) contains(v cnf.Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && h.less(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.indices[v] = i
}

// insert adds v if absent.
func (h *varHeap) insert(v cnf.Var) {
	h.growTo(int(v))
	if h.contains(v) {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.percolateUp(len(h.heap) - 1)
}

// removeMax pops the most active variable.
func (h *varHeap) removeMax() cnf.Var {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.percolateDown(0)
	}
	return v
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v cnf.Var) {
	if h.contains(v) {
		h.percolateUp(h.indices[v])
	}
}
