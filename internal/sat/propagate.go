package sat

import "unigen/internal/cnf"

// propagate performs unit propagation (CNF watches, then XOR watches)
// for every literal on the trail past qhead. It returns the conflicting
// clause, or nil. XOR conflicts are materialized into a temporary clause
// whose literals are all false under the current assignment, so conflict
// analysis treats CNF and XOR conflicts uniformly.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		if confl := s.propagateClauses(p); confl != nil {
			return confl
		}
		if confl := s.propagateXORs(p.Var()); confl != nil {
			return confl
		}
	}
	return nil
}

// propagateClauses visits every clause watching ¬p after p became true.
func (s *Solver) propagateClauses(p cnf.Lit) *clause {
	ws := s.watches[p]
	i, j := 0, 0
	for i < len(ws) {
		w := ws[i]
		if s.value(w.blocker) == lTrue {
			ws[j] = w
			i++
			j++
			continue
		}
		cl := w.cl
		if cl.deleted {
			i++
			continue
		}
		lits := cl.lits
		falseLit := p.Not()
		if lits[0] == falseLit {
			lits[0], lits[1] = lits[1], lits[0]
		}
		first := lits[0]
		if first != w.blocker && s.value(first) == lTrue {
			ws[j] = watcher{cl: cl, blocker: first}
			i++
			j++
			continue
		}
		found := false
		for k := 2; k < len(lits); k++ {
			if s.value(lits[k]) != lFalse {
				lits[1], lits[k] = lits[k], lits[1]
				nw := lits[1].Not()
				s.watches[nw] = append(s.watches[nw], watcher{cl: cl, blocker: first})
				found = true
				break
			}
		}
		if found {
			i++ // clause moved to another watch list
			continue
		}
		// Clause is unit or conflicting.
		ws[j] = watcher{cl: cl, blocker: first}
		i++
		j++
		if s.value(first) == lFalse {
			for ; i < len(ws); i++ {
				ws[j] = ws[i]
				j++
			}
			s.watches[p] = ws[:j]
			s.qhead = len(s.trail)
			return cl
		}
		s.uncheckedEnqueue(first, reason{cl: cl})
	}
	s.watches[p] = ws[:j]
	return nil
}

// propagateXORs visits every XOR clause watching variable v after v was
// assigned (either polarity: parity constraints react to both).
func (s *Solver) propagateXORs(v cnf.Var) *clause {
	occ := s.occXor[v]
	i, j := 0, 0
	for i < len(occ) {
		xi := occ[i]
		x := &s.xors[xi]
		wi := 0
		if x.vars[x.w[1]] == v {
			wi = 1
		}
		otherIdx := x.w[1-wi]
		other := x.vars[otherIdx]
		// Try to move this watch to another unassigned variable.
		moved := false
		for k, xv := range x.vars {
			if k == x.w[0] || k == x.w[1] {
				continue
			}
			if s.valueVar(xv) == lUndef {
				x.w[wi] = k
				s.occXor[xv] = append(s.occXor[xv], xi)
				moved = true
				break
			}
		}
		if moved {
			i++ // drop xi from v's occurrence list
			continue
		}
		occ[j] = xi
		j++
		i++
		// All variables except possibly `other` are assigned: compute the
		// parity the other watch must take.
		need := x.rhs
		for k, xv := range x.vars {
			if k == otherIdx {
				continue
			}
			if s.valueVar(xv) == lTrue {
				need = !need
			}
		}
		switch s.valueVar(other) {
		case lUndef:
			s.stats.XORProps++
			s.uncheckedEnqueue(cnf.MkLit(other, !need), reason{xor: xi + 1})
		case lTrue:
			if !need {
				return s.xorConflict(occ, j, i, v, xi)
			}
		case lFalse:
			if need {
				return s.xorConflict(occ, j, i, v, xi)
			}
		}
	}
	s.occXor[v] = occ[:j]
	return nil
}

// xorConflict finalizes the occurrence list compaction and returns the
// conflicting XOR materialized as an all-false clause.
func (s *Solver) xorConflict(occ []int32, j, i int, v cnf.Var, xi int32) *clause {
	for ; i < len(occ); i++ {
		occ[j] = occ[i]
		j++
	}
	s.occXor[v] = occ[:j]
	s.qhead = len(s.trail)
	return &clause{lits: s.xorFalseClause(xi, 0)}
}

// xorFalseClause renders XOR clause xi under the current assignment as a
// CNF clause in which every literal is false, except that variable
// `skip` (if nonzero) is rendered as its *currently implied* literal and
// placed first. With skip=0 it is a conflict clause; with skip=v it is
// the reason clause for v's implication.
func (s *Solver) xorFalseClause(xi int32, skip cnf.Var) []cnf.Lit {
	x := &s.xors[xi]
	out := make([]cnf.Lit, 0, len(x.vars))
	if skip != 0 {
		out = append(out, cnf.MkLit(skip, s.valueVar(skip) == lFalse))
	}
	for _, xv := range x.vars {
		if xv == skip {
			continue
		}
		// Literal that is false now: the negation of the current value.
		out = append(out, cnf.MkLit(xv, s.valueVar(xv) == lTrue))
	}
	return out
}

// reasonLitsFor returns the clause that implied variable v, with the
// implied literal first. It must only be called for implied (non-decision)
// variables.
func (s *Solver) reasonLitsFor(v cnf.Var) []cnf.Lit {
	r := s.reasons[v]
	switch {
	case r.cl != nil:
		return r.cl.lits
	case r.xor != 0:
		return s.xorFalseClause(r.xor-1, v)
	default:
		panic("sat: reasonLitsFor on a decision variable")
	}
}
