package sat

import (
	"math/bits"

	"unigen/internal/cnf"
)

// propagate performs unit propagation (CNF watches, then XOR watches)
// for every literal on the trail past qhead. It returns the conflict
// (an arena CRef for long CNF clauses; materialized literals for
// binary and XOR conflicts), or no conflict. The materialization means
// conflict analysis treats all three sources uniformly.
func (s *Solver) propagate() conflict {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		if confl := s.propagateClauses(p); !confl.none() {
			return confl
		}
		if confl := s.propagateXORs(p.Var()); !confl.none() {
			return confl
		}
	}
	return noConflict()
}

// propagateClauses visits every clause watching ¬p after p became true.
// Long clauses are walked in the arena (header check, inline literal
// swap, watch replacement scan over contiguous words); binary clauses
// never leave the watcher — the blocker is the whole remaining clause.
func (s *Solver) propagateClauses(p cnf.Lit) conflict {
	ws := s.watches[p]
	store := s.ca.store
	i, j := 0, 0
	for i < len(ws) {
		w := ws[i]
		blocker := w.blocker()
		if s.isTrue(blocker) {
			ws[j] = w
			i++
			j++
			continue
		}
		if w.cr == crefBin {
			// Inlined binary clause {blocker, ¬p}: blocker is false or
			// unassigned here.
			ws[j] = w
			i++
			j++
			if s.isFalse(blocker) {
				for ; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				s.conflBuf = append(s.conflBuf[:0], blocker, p.Not())
				return conflict{cr: crefUndef, lits: s.conflBuf}
			}
			s.uncheckedEnqueue(blocker, reason{tag: reasonBinary, ref: uint32(p.Not())})
			continue
		}
		cr := w.cr
		h := store[cr]
		if h&hdrDeleted != 0 {
			i++
			continue
		}
		base := int(cr) + 1 + int(h>>1&1)
		size := int(h >> hdrSizeShift)
		falseLit := p.Not()
		if cnf.Lit(store[base]) == falseLit {
			store[base], store[base+1] = store[base+1], store[base]
		}
		first := cnf.Lit(store[base])
		if first != blocker && s.isTrue(first) {
			ws[j] = watcher{cr: cr, blk: uint32(first)}
			i++
			j++
			continue
		}
		found := false
		for k := 2; k < size; k++ {
			if lk := cnf.Lit(store[base+k]); !s.isFalse(lk) {
				store[base+1], store[base+k] = store[base+k], store[base+1]
				nw := lk.Not()
				s.watches[nw] = append(s.watches[nw], watcher{cr: cr, blk: uint32(first)})
				found = true
				break
			}
		}
		if found {
			i++ // clause moved to another watch list
			continue
		}
		// Clause is unit or conflicting.
		ws[j] = watcher{cr: cr, blk: uint32(first)}
		i++
		j++
		if s.isFalse(first) {
			for ; i < len(ws); i++ {
				ws[j] = ws[i]
				j++
			}
			s.watches[p] = ws[:j]
			s.qhead = len(s.trail)
			return conflict{cr: cr}
		}
		s.uncheckedEnqueue(first, reason{tag: reasonClause, ref: cr})
	}
	s.watches[p] = ws[:j]
	return noConflict()
}

// propagateXORs visits every XOR clause watching variable v after v was
// assigned (either polarity: parity constraints react to both).
func (s *Solver) propagateXORs(v cnf.Var) conflict {
	if !s.cfg.ScalarXOR {
		return s.propagateXORsPacked(v)
	}
	return s.propagateXORsScalar(v)
}

// propagateXORsPacked is the word-parallel engine: watch replacement is
// a TrailingZeros64 scan over the row's coefficient words masked by the
// unassigned columns, and the parity of the assigned variables is one
// popcount fold against the assigned-true mask — no per-variable loop.
func (s *Solver) propagateXORsPacked(v cnf.Var) conflict {
	occ := s.occXor[v]
	vcol := int(s.xcolOf[v])
	i, j := 0, 0
	for i < len(occ) {
		xi := occ[i]
		x := &s.xors[xi]
		wi := 0
		if x.w[1] == vcol {
			wi = 1
		}
		otherCol := x.w[1-wi]
		off := int(x.off)
		// Word scan for an unassigned column to move this watch to. v's
		// column is excluded by the assignment mask; the other watch is
		// masked out explicitly. bits is the row's window: word w maps to
		// global word off+w. Single-word rows — every session hash row
		// over a ≤64-column sampling-set+selector band, and most Tseitin
		// parities — take a branch-free specialization.
		var par bool
		if len(x.bits) == 1 {
			b := x.bits[0]
			cand := b &^ s.xAssigned[off] &^ (1 << uint(otherCol&63))
			if cand != 0 {
				nc := off<<6 | bits.TrailingZeros64(cand)
				x.w[wi] = nc
				nv := s.xvarOf[nc]
				s.occXor[nv] = append(s.occXor[nv], xi)
				i++ // drop xi from v's occurrence list
				continue
			}
			par = bits.OnesCount64(b&s.xTrue[off])&1 == 1
		} else {
			bw := x.bits
			n := len(bw)
			assigned := s.xAssigned[off : off+n]
			bo := 0
			if s.cfg.DirtyWindow {
				// Advance the level-0 dirty window: a prefix word whose set
				// columns are all level-0-assigned never changes again for
				// this solver's lifetime (level 0 is permanent, and freed
				// selector columns never occur in other live rows), so cache
				// its parity contribution and skip it in every later scan.
				l0 := s.xAssignedL0[off : off+n]
				for int(x.skip) < n {
					w := int(x.skip)
					if bw[w]&^l0[w] != 0 {
						break
					}
					if bits.OnesCount64(bw[w]&s.xTrue[off+w])&1 == 1 {
						x.skipPar = !x.skipPar
					}
					x.skip++
				}
				bo = int(x.skip)
			}
			moved := false
			otherW := otherCol>>6 - off
			w := bo
			// 4-wide block skip: on a long mostly-assigned row nearly every
			// word has no unassigned candidate, so reject four per iteration
			// (the other watch's bit can only make this break early, never
			// skip its word; the per-word loop below re-checks with it
			// masked out).
			for w+4 <= n {
				if bw[w]&^assigned[w]|bw[w+1]&^assigned[w+1]|
					bw[w+2]&^assigned[w+2]|bw[w+3]&^assigned[w+3] != 0 {
					break
				}
				w += 4
			}
			for ; w < n; w++ {
				cand := bw[w] &^ assigned[w]
				if w == otherW {
					cand &^= 1 << uint(otherCol&63)
				}
				if cand != 0 {
					nc := (off+w)<<6 | bits.TrailingZeros64(cand)
					x.w[wi] = nc
					nv := s.xvarOf[nc]
					s.occXor[nv] = append(s.occXor[nv], xi)
					moved = true
					break
				}
			}
			if moved {
				i++ // drop xi from v's occurrence list
				continue
			}
			// No replacement: every variable except possibly `other` is
			// assigned. Fold the parity of the assigned variables (level-0
			// ones included — they stay in packed rows) by XOR-accumulating
			// the masked words and taking one popcount at the end:
			// parity(popcnt(a)+popcnt(b)) == parity(popcnt(a^b)).
			trueMask := s.xTrue[off : off+n]
			var acc uint64
			w = bo
			for ; w+4 <= n; w += 4 {
				acc ^= bw[w]&trueMask[w] ^ bw[w+1]&trueMask[w+1] ^
					bw[w+2]&trueMask[w+2] ^ bw[w+3]&trueMask[w+3]
			}
			for ; w < n; w++ {
				acc ^= bw[w] & trueMask[w]
			}
			par = bits.OnesCount64(acc)&1 == 1
			if x.skipPar {
				par = !par
			}
		}
		occ[j] = xi
		j++
		i++
		other := s.xvarOf[otherCol]
		if s.valueVar(other) == lUndef {
			s.stats.XORProps++
			need := x.rhs != par
			if x.sel != 0 {
				if s.decisionLevel() == 0 {
					// A removable XOR is writing to the permanent trail;
					// the level-0 state no longer follows from the base
					// formula alone. Sound until the row is released.
					s.taintL0 = true
				} else if other == x.sel && need {
					// The row is absorbing its own guard (guard = true,
					// the deactivating polarity); see the scalar engine.
					s.taintL0 = true
				}
			}
			s.uncheckedEnqueue(cnf.MkLit(other, !need), reason{tag: reasonXOR, ref: uint32(xi)})
		} else if par != x.rhs {
			// `other` is assigned too, so par covers the whole row.
			return s.xorConflict(occ, j, i, v, xi)
		}
	}
	s.occXor[v] = occ[:j]
	return noConflict()
}

// propagateXORsScalar is the legacy sparse engine (Config.ScalarXOR):
// per-variable scans over []cnf.Var rows. Kept as the reference
// implementation the packed engine is differentially tested against.
func (s *Solver) propagateXORsScalar(v cnf.Var) conflict {
	occ := s.occXor[v]
	i, j := 0, 0
	for i < len(occ) {
		xi := occ[i]
		x := &s.xors[xi]
		wi := 0
		if x.vars[x.w[1]] == v {
			wi = 1
		}
		vIdx := x.w[wi]
		otherIdx := x.w[1-wi]
		other := x.vars[otherIdx]
		// Single pass: look for an unassigned variable to move this watch
		// to, folding the parity of assigned variables into `need` along
		// the way. If no watch move is found, every variable except
		// possibly `other` is assigned and `need` is already complete —
		// no second sweep over x.vars.
		need := x.rhs
		moved := false
		for k, xv := range x.vars {
			if k == otherIdx {
				continue
			}
			if k == vIdx {
				if s.valueVar(xv) == lTrue {
					need = !need
				}
				continue
			}
			switch s.valueVar(xv) {
			case lUndef:
				x.w[wi] = k
				s.occXor[xv] = append(s.occXor[xv], xi)
				moved = true
			case lTrue:
				need = !need
			}
			if moved {
				break
			}
		}
		if moved {
			i++ // drop xi from v's occurrence list
			continue
		}
		occ[j] = xi
		j++
		i++
		switch s.valueVar(other) {
		case lUndef:
			s.stats.XORProps++
			if x.sel != 0 {
				if s.decisionLevel() == 0 {
					// A removable XOR is writing to the permanent trail;
					// the level-0 state no longer follows from the base
					// formula alone. Sound until the row is released.
					s.taintL0 = true
				} else if other == x.sel && need {
					// The row is absorbing its own guard (guard = true,
					// the deactivating polarity). Learned clauses that
					// later resolve through this row while the guard
					// holds that value contain the guard's NEGATED
					// activation-complement, which Release's polarity
					// fix would strengthen rather than satisfy. Sound
					// for this call; rebuild before the next.
					s.taintL0 = true
				}
			}
			s.uncheckedEnqueue(cnf.MkLit(other, !need), reason{tag: reasonXOR, ref: uint32(xi)})
		case lTrue:
			if !need {
				return s.xorConflict(occ, j, i, v, xi)
			}
		case lFalse:
			if need {
				return s.xorConflict(occ, j, i, v, xi)
			}
		}
	}
	s.occXor[v] = occ[:j]
	return noConflict()
}

// xorConflict finalizes the occurrence list compaction and returns the
// conflicting XOR materialized as an all-false clause in the conflict
// scratch buffer.
func (s *Solver) xorConflict(occ []int32, j, i int, v cnf.Var, xi int32) conflict {
	for ; i < len(occ); i++ {
		occ[j] = occ[i]
		j++
	}
	s.occXor[v] = occ[:j]
	s.qhead = len(s.trail)
	s.conflBuf = s.xorFalseClause(s.conflBuf[:0], xi, 0)
	return conflict{cr: crefUndef, lits: s.conflBuf}
}

// xorFalseClause renders XOR clause xi under the current assignment as a
// CNF clause in which every literal is false, except that variable
// `skip` (if nonzero) is rendered as its *currently implied* literal and
// placed first. With skip=0 it is a conflict clause; with skip=v it is
// the reason clause for v's implication. The result is appended to buf
// (a solver-owned scratch buffer on the hot path: one XOR conflict or
// reason lookup happens per conflict-analysis resolution step, and the
// previous result is always dead by the time the next one is built).
func (s *Solver) xorFalseClause(buf []cnf.Lit, xi int32, skip cnf.Var) []cnf.Lit {
	x := &s.xors[xi]
	if skip != 0 {
		buf = append(buf, cnf.MkLit(skip, s.valueVar(skip) == lFalse))
	}
	if x.bits != nil {
		// Packed row: iterate set columns. Variables fixed at level 0 may
		// appear (packed rows keep them); they render as false literals
		// that conflict analysis skips by level. Every row variable
		// except `skip` is assigned here (the row just conflicted or
		// implied), so polarities come straight from the xTrue mask word
		// instead of a random-access value lookup per literal.
		off := int(x.off)
		for w, b := range x.bits {
			tw := s.xTrue[off+w]
			for b != 0 {
				k := b & (-b)
				c := (off+w)<<6 | bits.TrailingZeros64(b)
				b &^= k
				xv := s.xvarOf[c]
				if xv == skip {
					continue
				}
				buf = append(buf, cnf.MkLit(xv, tw&k != 0))
			}
		}
		return buf
	}
	for _, xv := range x.vars {
		if xv == skip {
			continue
		}
		// Literal that is false now: the negation of the current value.
		buf = append(buf, cnf.MkLit(xv, s.valueVar(xv) == lTrue))
	}
	return buf
}

// reasonLitsFor returns the clause that implied variable v, with the
// implied literal first. It must only be called for implied
// (non-decision) variables. Every reason kind — arena clause, inlined
// binary, XOR row — is materialized into one scratch buffer that is
// overwritten by the next call; conflict analysis consumes each reason
// before requesting the next, so one buffer suffices.
func (s *Solver) reasonLitsFor(v cnf.Var) []cnf.Lit {
	r := s.reasons[v]
	switch r.tag {
	case reasonClause:
		s.reasonBuf = s.ca.appendLits(s.reasonBuf[:0], r.ref)
		return s.reasonBuf
	case reasonBinary:
		s.reasonBuf = append(s.reasonBuf[:0],
			cnf.MkLit(v, s.valueVar(v) == lFalse), cnf.Lit(r.ref))
		return s.reasonBuf
	case reasonXOR:
		s.reasonBuf = s.xorFalseClause(s.reasonBuf[:0], int32(r.ref), v)
		return s.reasonBuf
	default:
		panic("sat: reasonLitsFor on a decision variable")
	}
}
