package sat

import "unigen/internal/cnf"

// propagate performs unit propagation (CNF watches, then XOR watches)
// for every literal on the trail past qhead. It returns the conflicting
// clause, or nil. XOR conflicts are materialized into a temporary clause
// whose literals are all false under the current assignment, so conflict
// analysis treats CNF and XOR conflicts uniformly.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		if confl := s.propagateClauses(p); confl != nil {
			return confl
		}
		if confl := s.propagateXORs(p.Var()); confl != nil {
			return confl
		}
	}
	return nil
}

// propagateClauses visits every clause watching ¬p after p became true.
func (s *Solver) propagateClauses(p cnf.Lit) *clause {
	ws := s.watches[p]
	i, j := 0, 0
	for i < len(ws) {
		w := ws[i]
		if s.value(w.blocker) == lTrue {
			ws[j] = w
			i++
			j++
			continue
		}
		cl := w.cl
		if cl.deleted {
			i++
			continue
		}
		lits := cl.lits
		falseLit := p.Not()
		if lits[0] == falseLit {
			lits[0], lits[1] = lits[1], lits[0]
		}
		first := lits[0]
		if first != w.blocker && s.value(first) == lTrue {
			ws[j] = watcher{cl: cl, blocker: first}
			i++
			j++
			continue
		}
		found := false
		for k := 2; k < len(lits); k++ {
			if s.value(lits[k]) != lFalse {
				lits[1], lits[k] = lits[k], lits[1]
				nw := lits[1].Not()
				s.watches[nw] = append(s.watches[nw], watcher{cl: cl, blocker: first})
				found = true
				break
			}
		}
		if found {
			i++ // clause moved to another watch list
			continue
		}
		// Clause is unit or conflicting.
		ws[j] = watcher{cl: cl, blocker: first}
		i++
		j++
		if s.value(first) == lFalse {
			for ; i < len(ws); i++ {
				ws[j] = ws[i]
				j++
			}
			s.watches[p] = ws[:j]
			s.qhead = len(s.trail)
			return cl
		}
		s.uncheckedEnqueue(first, reason{cl: cl})
	}
	s.watches[p] = ws[:j]
	return nil
}

// propagateXORs visits every XOR clause watching variable v after v was
// assigned (either polarity: parity constraints react to both).
func (s *Solver) propagateXORs(v cnf.Var) *clause {
	occ := s.occXor[v]
	i, j := 0, 0
	for i < len(occ) {
		xi := occ[i]
		x := &s.xors[xi]
		wi := 0
		if x.vars[x.w[1]] == v {
			wi = 1
		}
		vIdx := x.w[wi]
		otherIdx := x.w[1-wi]
		other := x.vars[otherIdx]
		// Single pass: look for an unassigned variable to move this watch
		// to, folding the parity of assigned variables into `need` along
		// the way. If no watch move is found, every variable except
		// possibly `other` is assigned and `need` is already complete —
		// no second sweep over x.vars.
		need := x.rhs
		moved := false
		for k, xv := range x.vars {
			if k == otherIdx {
				continue
			}
			if k == vIdx {
				if s.valueVar(xv) == lTrue {
					need = !need
				}
				continue
			}
			switch s.valueVar(xv) {
			case lUndef:
				x.w[wi] = k
				s.occXor[xv] = append(s.occXor[xv], xi)
				moved = true
			case lTrue:
				need = !need
			}
			if moved {
				break
			}
		}
		if moved {
			i++ // drop xi from v's occurrence list
			continue
		}
		occ[j] = xi
		j++
		i++
		switch s.valueVar(other) {
		case lUndef:
			s.stats.XORProps++
			if x.sel != 0 {
				if s.decisionLevel() == 0 {
					// A removable XOR is writing to the permanent trail;
					// the level-0 state no longer follows from the base
					// formula alone. Sound until the row is released.
					s.taintL0 = true
				} else if other == x.sel && need {
					// The row is absorbing its own guard (guard = true,
					// the deactivating polarity). Learned clauses that
					// later resolve through this row while the guard
					// holds that value contain the guard's NEGATED
					// activation-complement, which Release's polarity
					// fix would strengthen rather than satisfy. Sound
					// for this call; rebuild before the next.
					s.taintL0 = true
				}
			}
			s.uncheckedEnqueue(cnf.MkLit(other, !need), reason{xor: xi + 1})
		case lTrue:
			if !need {
				return s.xorConflict(occ, j, i, v, xi)
			}
		case lFalse:
			if need {
				return s.xorConflict(occ, j, i, v, xi)
			}
		}
	}
	s.occXor[v] = occ[:j]
	return nil
}

// xorConflict finalizes the occurrence list compaction and returns the
// conflicting XOR materialized as an all-false clause.
func (s *Solver) xorConflict(occ []int32, j, i int, v cnf.Var, xi int32) *clause {
	for ; i < len(occ); i++ {
		occ[j] = occ[i]
		j++
	}
	s.occXor[v] = occ[:j]
	s.qhead = len(s.trail)
	s.xorConflBuf = s.xorFalseClause(s.xorConflBuf[:0], xi, 0)
	return &clause{lits: s.xorConflBuf}
}

// xorFalseClause renders XOR clause xi under the current assignment as a
// CNF clause in which every literal is false, except that variable
// `skip` (if nonzero) is rendered as its *currently implied* literal and
// placed first. With skip=0 it is a conflict clause; with skip=v it is
// the reason clause for v's implication. The result is appended to buf
// (a solver-owned scratch buffer on the hot path: one XOR conflict or
// reason lookup happens per conflict-analysis resolution step, and the
// previous result is always dead by the time the next one is built).
func (s *Solver) xorFalseClause(buf []cnf.Lit, xi int32, skip cnf.Var) []cnf.Lit {
	x := &s.xors[xi]
	if skip != 0 {
		buf = append(buf, cnf.MkLit(skip, s.valueVar(skip) == lFalse))
	}
	for _, xv := range x.vars {
		if xv == skip {
			continue
		}
		// Literal that is false now: the negation of the current value.
		buf = append(buf, cnf.MkLit(xv, s.valueVar(xv) == lTrue))
	}
	return buf
}

// reasonLitsFor returns the clause that implied variable v, with the
// implied literal first. It must only be called for implied (non-decision)
// variables. XOR reasons are materialized into a scratch buffer that is
// overwritten by the next call.
func (s *Solver) reasonLitsFor(v cnf.Var) []cnf.Lit {
	r := s.reasons[v]
	switch {
	case r.cl != nil:
		return r.cl.lits
	case r.xor != 0:
		s.xorReasonBuf = s.xorFalseClause(s.xorReasonBuf[:0], r.xor-1, v)
		return s.xorReasonBuf
	default:
		panic("sat: reasonLitsFor on a decision variable")
	}
}
