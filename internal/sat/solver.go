package sat

import (
	mbits "math/bits"
	"slices"
	"sort"

	"unigen/internal/cnf"
	"unigen/internal/gf2"
	"unigen/internal/randx"
)

// Solver is a CDCL SAT solver over CNF + XOR clauses. It is not safe for
// concurrent use. Clauses may be added between Solve calls (the basis of
// blocking-clause enumeration in BSAT).
type Solver struct {
	cfg Config

	numVars int
	ok      bool // false once a top-level conflict is found

	ca      arena  // flat clause store; see arena.go
	clauses []CRef // problem clauses (binary ones live only in watchers)
	learnts []CRef // learned clauses of size ≥ 3
	watches [][]watcher

	xors   []xorClause
	occXor [][]int32 // per var: indices of xors currently watching it

	// Packed XOR engine state: a dense GF(2) column space owned by the
	// solver. Columns are assigned to variables on first appearance in
	// an XOR row (sampling-set variables first in a session, selector
	// columns appended) and selector columns are recycled on Release so
	// the space stays O(|S| + m). The two masks mirror the trail
	// restricted to columned variables, maintained by uncheckedEnqueue
	// and cancelUntil, and make parity folding and watch selection
	// word-parallel.
	xcolOf      []int32   // per var: XOR column, or -1
	xvarOf      []cnf.Var // per column: the variable
	xfreeCols   []int32   // recycled selector columns
	xAssigned   []uint64  // per column bit: variable currently assigned
	xTrue       []uint64  // per column bit: variable assigned true
	xAssignedL0 []uint64  // per column bit: assigned at level 0 (feeds the dirty window)

	assigns  []lbool   // per var
	level    []int     // per var
	reasons  []reason  // per var
	phase    []bool    // saved polarity per var
	activity []float64 // VSIDS activity per var
	seen     []byte    // scratch for analyze

	// Rephasing state (Config.RephaseEvery): pickBranchLit's polarity
	// source rotates through saved/target/inverted/original on a restart
	// cadence; targetPhase snapshots the deepest trail (and each full
	// model) seen so far.
	targetPhase []bool
	bestTrail   int
	phaseMode   uint8
	rephaseIdx  int

	// Inprocessing state (Config.InprocessEvery, see inprocess.go):
	// rolling cursors let budgeted passes cover the whole database across
	// session boundaries; liveXorSels counts unreleased XOR-guard
	// selectors, which gate level-0 unit derivation.
	vivCursor   int
	probeCursor int
	liveXorSels int

	trail    []cnf.Lit
	trailLim []int
	qhead    int

	order    *varHeap
	priOrder *varHeap // priority variables, branched before `order`
	priority []bool   // per var
	varInc   float64
	claInc   float64

	maxLearnts float64
	rng        *randx.RNG
	stats      Stats

	model cnf.Assignment

	// Conflict-analysis scratch, reused across conflicts.
	analyzeLearnt []cnf.Lit
	analyzeSeen   []cnf.Var
	lbdMark       []int64
	lbdStamp      int64

	// Conflict/reason materialization scratch: one buffer for conflict
	// clauses, one for reason lookups during analysis. Each is reused
	// across calls; the previous content is always dead by the time the
	// next materialization overwrites it (see reasonLitsFor).
	conflBuf    []cnf.Lit
	reasonBuf   []cnf.Lit
	sortScratch []CRef // reduceDB's sort buffer, reused across reductions

	// Inprocessing scratch (inprocess.go), reused across passes.
	vivAll  []cnf.Lit  // vivifyOne: literal snapshot of the clause
	vivKeep []cnf.Lit  // vivifyOne: surviving prefix
	subOcc  [][]int32  // subsumeLearnts: per-var occurrence lists
	subEnts []subEntry // subsumeLearnts: clause snapshot

	// Incremental-session state (see incremental.go).
	isSelector   []byte      // per var: selNone/selClause/selXORGuard
	freeXors     []int32     // tombstoned xor slots available for reuse
	taintL0      bool        // level-0 state may depend on a removable XOR
	brokenL0     bool        // level-0 conflict under taint: Unsat until rebuilt
	modelBound   int         // if >0, Model covers vars 1..modelBound only
	sels         []*Selector // unreleased clause selectors (compaction rewrites their CRefs)
	dirtyWatch   []cnf.Lit   // watch lists holding deleted entries (see deleteClause)
	allocSelKind byte        // nonzero while newSelectorVar grows the arrays

	proof        []ProofStep
	constructing bool // true while New loads the base formula
}

// New builds a solver for formula f. XOR clauses of length 1 become unit
// assignments; an empty clause makes the solver permanently UNSAT.
func New(f *cnf.Formula, cfg Config) *Solver {
	if cfg.RecordProof {
		cfg.GaussJordan = false // Gauss units are not RUP-derivable
	}
	s := &Solver{cfg: cfg, ok: true, varInc: 1, claInc: 1, maxLearnts: 4000}
	s.constructing = true
	defer func() { s.constructing = false }()
	s.rng = randx.New(cfg.Seed ^ 0x5eed5a17)
	s.order = newVarHeap(&s.activity)
	s.priOrder = newVarHeap(&s.activity)
	for _, v := range cfg.PriorityVars {
		s.growTo(int(v))
		s.priority[v] = true
	}
	s.growTo(f.NumVars)
	for _, c := range f.Clauses {
		if !s.AddClause(c) {
			return s
		}
	}
	xs := f.XORs
	if cfg.GaussJordan && len(xs) > 0 {
		if !cfg.ScalarXOR {
			// Packed engine: eliminate and install directly on rows over
			// the solver's own column space — no intermediate []cnf.Var
			// materialization, cheap enough to re-run at session rebuilds.
			s.gaussInstallPacked(xs)
			return s
		}
		reduced, units, conflict := gaussReduce(xs)
		if conflict {
			s.ok = false
			return s
		}
		for _, u := range units {
			s.stats.GaussUnits++
			if !s.addUnit(u) {
				return s
			}
		}
		xs = reduced
	}
	for _, x := range xs {
		if !s.AddXOR(x.Vars, x.RHS) {
			return s
		}
	}
	return s
}

// gaussInstallPacked packs the base XOR system over the solver's column
// space, runs word-parallel Gauss–Jordan elimination in place, and
// installs the reduced rows without leaving the packed representation.
func (s *Solver) gaussInstallPacked(xs []cnf.XORClause) {
	// Assign columns in sorted variable order, matching gaussReduce, so
	// the two engines eliminate identical matrices and derive identical
	// units (the differential tests compare them literally).
	var vars []cnf.Var
	for _, x := range xs {
		for _, v := range x.Vars {
			s.growTo(int(v))
			if s.xcolOf[v] == -1 { // not columned and not already pending
				s.xcolOf[v] = -2
				vars = append(vars, v)
			}
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	for _, v := range vars {
		s.xcolOf[v] = -1
		s.xorColumn(v)
	}
	ncols := len(s.xvarOf)
	words := gf2.Words(ncols)
	rows := make([]gf2.Row, len(xs))
	for i, x := range xs {
		r := gf2.Row{Bits: make([]uint64, words), RHS: x.RHS}
		for _, v := range x.Vars {
			r.Flip(int(s.xcolOf[v]))
		}
		rows[i] = r
	}
	if gf2.GaussJordan(rows, ncols) {
		s.ok = false
		return
	}
	// Units first (their pivot variables occur in no other row after
	// Jordan reduction), then the surviving rows; installPackedXOR folds
	// any propagation-assigned variables via the masks.
	for i := range rows {
		if rows[i].Len() == 1 {
			s.stats.GaussUnits++
			v := s.xvarOf[rows[i].FirstSet()]
			if !s.addUnit(cnf.MkLit(v, !rows[i].RHS)) {
				return
			}
		}
	}
	for i := range rows {
		if rows[i].Len() >= 2 {
			if !s.installPackedXOR(rows[i].Bits, rows[i].RHS, nil, 0) {
				return
			}
		}
	}
}

// growTo extends all per-variable and per-literal arrays to cover n vars.
func (s *Solver) growTo(n int) {
	if n <= s.numVars {
		return
	}
	old := s.numVars
	s.numVars = n
	for len(s.assigns) <= n {
		s.assigns = append(s.assigns, lUndef)
	}
	for len(s.level) <= n {
		s.level = append(s.level, 0)
	}
	for len(s.reasons) <= n {
		s.reasons = append(s.reasons, reason{})
	}
	for len(s.phase) <= n {
		s.phase = append(s.phase, false)
	}
	for len(s.targetPhase) <= n {
		s.targetPhase = append(s.targetPhase, false)
	}
	for len(s.activity) <= n {
		s.activity = append(s.activity, 0)
	}
	for len(s.seen) <= n {
		s.seen = append(s.seen, 0)
	}
	for len(s.occXor) <= n {
		s.occXor = append(s.occXor, nil)
	}
	for len(s.xcolOf) <= n {
		s.xcolOf = append(s.xcolOf, -1)
	}
	for len(s.watches) <= 2*n+1 {
		s.watches = append(s.watches, nil)
	}
	for len(s.priority) <= n {
		s.priority = append(s.priority, false)
	}
	for len(s.isSelector) <= n {
		s.isSelector = append(s.isSelector, selNone)
	}
	s.order.growTo(n)
	s.priOrder.growTo(n)
	for v := old + 1; v <= n; v++ {
		if s.allocSelKind != selNone {
			// Selector variable being allocated: mark it before the heap
			// insertion would happen, so it never enters a decision heap.
			s.isSelector[v] = s.allocSelKind
			continue
		}
		s.insertOrder(cnf.Var(v))
	}
}

// insertOrder re-inserts an unassigned variable into its decision heap.
// Selector variables are never branched on: they are set by assumptions
// or by propagation only.
func (s *Solver) insertOrder(v cnf.Var) {
	if s.isSelector[v] != selNone {
		return
	}
	if s.priority[v] {
		s.priOrder.insert(v)
	} else {
		s.order.insert(v)
	}
}

// NumVars returns the number of variables the solver knows about.
func (s *Solver) NumVars() int { return s.numVars }

// Stats returns cumulative statistics. ArenaBytes is a gauge sampled
// at call time, not an accumulating counter.
func (s *Solver) Stats() Stats {
	st := s.stats
	st.ArenaBytes = int64(len(s.ca.store)) * 4
	return st
}

// Okay reports whether the solver is still consistent at level 0.
func (s *Solver) Okay() bool { return s.ok }

func (s *Solver) value(l cnf.Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *Solver) valueVar(v cnf.Var) lbool { return s.assigns[v] }

// isTrue and isFalse are the hot-path forms of value(l) == lTrue /
// lFalse: one load and one compare, no polarity branches. A positive
// literal is true iff its variable is lTrue (1), a negative one iff
// lFalse (2) — so the expected cell value is a linear function of the
// sign bit.
func (s *Solver) isTrue(l cnf.Lit) bool  { return s.assigns[l.Var()] == lTrue+lbool(l&1) }
func (s *Solver) isFalse(l cnf.Lit) bool { return s.assigns[l.Var()] == lFalse-lbool(l&1) }

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause at decision level 0, simplifying against the
// top-level assignment. Returns false if the solver became UNSAT.
func (s *Solver) AddClause(c cnf.Clause) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above level 0")
	}
	norm, taut := cnf.NormalizeClause(c)
	if taut {
		return true
	}
	if !s.constructing {
		s.logAxiom(norm) // base-formula clauses are already in f
	}
	for _, l := range norm {
		s.growTo(int(l.Var()))
	}
	out := make(cnf.Clause, 0, len(norm))
	for _, l := range norm {
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lUndef:
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		s.logLemma(nil)
		return false
	case 1:
		return s.addUnit(out[0])
	case 2:
		// Permanent binary clauses are carried entirely by their two
		// watchers; no arena block, no index entry.
		s.attachBinary(out[0], out[1])
		return true
	}
	cr := s.ca.alloc(out, false, 0, 0)
	s.clauses = append(s.clauses, cr)
	s.attach(cr)
	return true
}

func (s *Solver) addUnit(l cnf.Lit) bool {
	s.growTo(int(l.Var()))
	switch s.value(l) {
	case lFalse:
		s.ok = false
		s.logLemma(nil)
		return false
	case lTrue:
		return true
	}
	s.uncheckedEnqueue(l, reason{})
	if !s.propagate().none() {
		s.ok = false
		s.logLemma(nil)
		return false
	}
	return true
}

// AddXOR adds the parity constraint ⊕vars = rhs at level 0.
func (s *Solver) AddXOR(vars []cnf.Var, rhs bool) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddXOR above level 0")
	}
	norm, nrhs := cnf.NormalizeXOR(vars, rhs)
	if !s.constructing && s.cfg.RecordProof {
		if len(norm) > 12 {
			panic("sat: proof recording cannot expand XOR axioms wider than 12 vars")
		}
		for _, c := range expandXORForCheck(cnf.XORClause{Vars: norm, RHS: nrhs}) {
			s.logAxiom(c)
		}
	}
	for _, v := range norm {
		s.growTo(int(v))
	}
	if !s.cfg.ScalarXOR {
		return s.installPackedXOR(s.packXORRow(norm), nrhs, nil, 0)
	}
	out := make([]cnf.Var, 0, len(norm))
	for _, v := range norm {
		switch s.valueVar(v) {
		case lTrue:
			nrhs = !nrhs
		case lUndef:
			out = append(out, v)
		}
	}
	switch len(out) {
	case 0:
		if nrhs {
			s.ok = false
			return false
		}
		return true
	case 1:
		return s.addUnit(cnf.MkLit(out[0], !nrhs))
	}
	x := xorClause{vars: out, rhs: nrhs, w: [2]int{0, 1}}
	s.pushXorClause(x, out[0], out[1])
	return true
}

// pushXorClause appends (or slot-reuses) an XOR clause and registers it
// in the occurrence lists of its two watched variables.
func (s *Solver) pushXorClause(x xorClause, w0, w1 cnf.Var) int32 {
	var idx int32
	if n := len(s.freeXors); n > 0 {
		idx = s.freeXors[n-1]
		s.freeXors = s.freeXors[:n-1]
		s.xors[idx] = x
	} else {
		idx = int32(len(s.xors))
		s.xors = append(s.xors, x)
	}
	s.occXor[w0] = append(s.occXor[w0], idx)
	s.occXor[w1] = append(s.occXor[w1], idx)
	return idx
}

// packXORRow assigns packed-engine columns to the (normalized) variable
// list and packs it into a full-width row over the current column
// space. Shared by AddXOR and AddXORRemovable.
func (s *Solver) packXORRow(norm []cnf.Var) []uint64 {
	for _, v := range norm {
		s.growTo(int(v))
		s.xorColumn(v)
	}
	bits := make([]uint64, gf2.Words(len(s.xvarOf)))
	for _, v := range norm {
		c := s.xcolOf[v]
		bits[c>>6] |= 1 << uint(c&63)
	}
	return bits
}

// xorWatchVar returns the variable at watch position k of x, under
// either row representation.
func (s *Solver) xorWatchVar(x *xorClause, k int) cnf.Var {
	if x.bits != nil {
		return s.xvarOf[x.w[k]]
	}
	return x.vars[x.w[k]]
}

// xorColumn returns variable v's column in the packed GF(2) space,
// assigning the next free one on first use. A variable that already
// carries an assignment when it gets its column is entered into the
// masks immediately (rows keep level-0-assigned variables; the masks
// fold them into parities).
func (s *Solver) xorColumn(v cnf.Var) int {
	if c := s.xcolOf[v]; c >= 0 {
		return int(c)
	}
	var c int32
	if n := len(s.xfreeCols); n > 0 {
		c = s.xfreeCols[n-1]
		s.xfreeCols = s.xfreeCols[:n-1]
		s.xvarOf[c] = v
	} else {
		c = int32(len(s.xvarOf))
		s.xvarOf = append(s.xvarOf, v)
		for len(s.xAssigned)*64 < len(s.xvarOf) {
			s.xAssigned = append(s.xAssigned, 0)
			s.xTrue = append(s.xTrue, 0)
			s.xAssignedL0 = append(s.xAssignedL0, 0)
		}
	}
	s.xcolOf[v] = c
	if s.assigns[v] != lUndef {
		s.xAssigned[c>>6] |= 1 << uint(c&63)
		if s.assigns[v] == lTrue {
			s.xTrue[c>>6] |= 1 << uint(c&63)
		}
		if s.level[v] == 0 {
			s.xAssignedL0[c>>6] |= 1 << uint(c&63)
		}
	}
	return int(c)
}

// freeXorColumn recycles a released selector's column. Formula-variable
// columns are never freed: the sampling set is stable for a session's
// lifetime, so the column space stays O(|S| + live selectors).
func (s *Solver) freeXorColumn(v cnf.Var) {
	c := s.xcolOf[v]
	if c < 0 {
		return
	}
	s.xcolOf[v] = -1
	s.xvarOf[c] = 0
	s.xAssigned[c>>6] &^= 1 << uint(c&63)
	s.xTrue[c>>6] &^= 1 << uint(c&63)
	s.xAssignedL0[c>>6] &^= 1 << uint(c&63)
	s.xfreeCols = append(s.xfreeCols, c)
}

// XORColumns assigns (or looks up) packed-engine columns for vars in
// order and returns the mapping vars-index → solver column. A nil
// return means the mapping is the identity — the common case when the
// sampling set is registered before any selector, which lets callers
// install drawn hash rows by word copy (see AddPackedXORRemovable).
// Packed engine only.
func (s *Solver) XORColumns(vars []cnf.Var) []int32 {
	if s.cfg.ScalarXOR {
		panic("sat: XORColumns requires the packed XOR engine")
	}
	out := make([]int32, len(vars))
	ident := true
	for i, v := range vars {
		s.growTo(int(v))
		c := s.xorColumn(v)
		out[i] = int32(c)
		if c != i {
			ident = false
		}
	}
	if ident {
		return nil
	}
	return out
}

// installPackedXOR installs ⊕{variables of the set columns} = rhs at
// level 0. bits spans the solver's column space at call time and is
// owned by the solver afterwards. Variables already assigned (at level
// 0) stay in the row — the masks account for them — so no filtering
// pass or re-normalization happens. selp/selCol describe the guard of a
// removable row (nil for permanent rows; the selector bit is added here
// only if a row is actually installed). Returns false when the solver
// became UNSAT, which only permanent rows can cause.
func (s *Solver) installPackedXOR(bits []uint64, rhs bool, selp *Selector, selCol int) bool {
	unassigned := 0
	c1, c2 := -1, -1
	ones := 0
	for w, b := range bits {
		ones += mbits.OnesCount64(b & s.xTrue[w])
		cand := b &^ s.xAssigned[w]
		unassigned += mbits.OnesCount64(cand)
		for cand != 0 && c2 < 0 {
			c := w<<6 | mbits.TrailingZeros64(cand)
			cand &= cand - 1
			if c1 < 0 {
				c1 = c
			} else {
				c2 = c
			}
		}
	}
	par := ones&1 == 1
	if selp != nil {
		if unassigned == 0 {
			if par != rhs {
				// 0 = 1 under the top-level assignment: activating must
				// give Unsat, which fixing the guard achieves via the
				// assumption check in search.
				s.addUnit(selp.act.Not())
			}
			return true
		}
		bits[selCol>>6] |= 1 << uint(selCol&63)
		win, off := windowRow(bits)
		x := xorClause{bits: win, off: off, rhs: rhs, w: [2]int{selCol, c1}, sel: selp.act.Var()}
		idx := s.pushXorClause(x, selp.act.Var(), s.xvarOf[c1])
		selp.xors = append(selp.xors, idx)
		s.liveXorSels++
		return true
	}
	switch unassigned {
	case 0:
		if par != rhs {
			s.ok = false
			return false
		}
		return true
	case 1:
		need := rhs != par
		return s.addUnit(cnf.MkLit(s.xvarOf[c1], !need))
	}
	win, off := windowRow(bits)
	x := xorClause{bits: win, off: off, rhs: rhs, w: [2]int{c1, c2}}
	s.pushXorClause(x, s.xvarOf[c1], s.xvarOf[c2])
	return true
}

// windowRow trims a full-width row to its covering word span, returning
// the windowed words (copied, so the full-width scratch is not pinned
// for the clause's lifetime) and the global word offset of the first
// one. Propagation cost and retained memory are then proportional to
// the row's own footprint, not the full column space — the difference
// between a 5-variable Tseitin parity and a matrix-wide scan on
// formulas with thousands of XOR columns.
func windowRow(bits []uint64) ([]uint64, int32) {
	lo, hi := -1, 0
	for w, b := range bits {
		if b != 0 {
			if lo < 0 {
				lo = w
			}
			hi = w
		}
	}
	if lo < 0 {
		return nil, 0 // callers never install empty rows, but stay safe
	}
	return append([]uint64(nil), bits[lo:hi+1]...), int32(lo)
}

func (s *Solver) attach(cr CRef) {
	b := s.ca.litBase(cr)
	l0, l1 := cnf.Lit(s.ca.store[b]), cnf.Lit(s.ca.store[b+1])
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{cr: cr, blk: uint32(l1)})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{cr: cr, blk: uint32(l0)})
}

// attachBinary installs a binary clause as two mutually-referencing
// watchers; the clause has no other representation.
func (s *Solver) attachBinary(l0, l1 cnf.Lit) {
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{cr: crefBin, blk: uint32(l1)})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{cr: crefBin, blk: uint32(l0)})
}

func (s *Solver) uncheckedEnqueue(l cnf.Lit, from reason) {
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.Neg())
	s.level[v] = s.decisionLevel()
	s.reasons[v] = from
	if c := s.xcolOf[v]; c >= 0 {
		// Mirror the assignment into the packed XOR masks. Level-0
		// assignments are permanent for the solver's lifetime, so they
		// additionally feed the dirty-window prefix mask.
		s.xAssigned[c>>6] |= 1 << uint(c&63)
		if !l.Neg() {
			s.xTrue[c>>6] |= 1 << uint(c&63)
		}
		if len(s.trailLim) == 0 {
			s.xAssignedL0[c>>6] |= 1 << uint(c&63)
		}
	}
	s.trail = append(s.trail, l)
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = !l.Neg()
		s.assigns[v] = lUndef
		s.reasons[v] = reason{}
		if c := s.xcolOf[v]; c >= 0 {
			s.xAssigned[c>>6] &^= 1 << uint(c&63)
			s.xTrue[c>>6] &^= 1 << uint(c&63)
		}
		s.insertOrder(v)
	}
	s.qhead = s.trailLim[lvl]
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
}

// Model returns the satisfying assignment found by the last successful
// Solve. The returned slice is owned by the caller.
func (s *Solver) Model() cnf.Assignment {
	out := make(cnf.Assignment, len(s.model))
	copy(out, s.model)
	return out
}

// interrupted reports whether an external Interrupt flag asks the
// current Solve call to stop.
func (s *Solver) interrupted() bool {
	return s.cfg.Interrupt != nil && s.cfg.Interrupt.Load()
}

// Solve searches for a model of the clauses under the given assumptions.
func (s *Solver) Solve(assumptions ...cnf.Lit) Status {
	if !s.ok || s.brokenL0 {
		return Unsat
	}
	if s.interrupted() {
		return Unknown
	}
	s.cancelUntil(0)
	for _, a := range assumptions {
		s.growTo(int(a.Var()))
	}
	confLimit := int64(-1)
	if s.cfg.MaxConflicts > 0 {
		confLimit = s.stats.Conflicts + s.cfg.MaxConflicts
	}
	propLimit := int64(-1)
	if s.cfg.MaxPropagations > 0 {
		propLimit = s.stats.Propagations + s.cfg.MaxPropagations
	}
	restartN := 0
	for {
		n := luby(2.0, restartN) * 100
		restartN++
		st := s.search(int64(n), confLimit, propLimit, assumptions)
		if st != Unknown {
			if st == Sat {
				nv := s.numVars
				if s.modelBound > 0 && s.modelBound < nv {
					// Incremental sessions accumulate selector variables
					// well past the formula's own; keep model extraction
					// O(|formula|), not O(lifetime selectors).
					nv = s.modelBound
				}
				s.model = make(cnf.Assignment, nv+1)
				for v := 1; v <= nv; v++ {
					s.model[v] = s.assigns[v] == lTrue
				}
				if s.cfg.RephaseEvery > 0 {
					// A full model is the best target phase there is.
					for v := 1; v <= s.numVars; v++ {
						s.targetPhase[v] = s.assigns[v] == lTrue
					}
					s.bestTrail = len(s.trail)
				}
			}
			s.cancelUntil(0)
			return st
		}
		if (confLimit >= 0 && s.stats.Conflicts >= confLimit) ||
			(propLimit >= 0 && s.stats.Propagations >= propLimit) ||
			s.interrupted() {
			s.cancelUntil(0)
			return Unknown
		}
		s.stats.Restarts++
		if re := s.cfg.RephaseEvery; re > 0 && s.stats.Restarts%int64(re) == 0 {
			s.rephase()
		}
		s.cancelUntil(0)
		// Restart-time housekeeping: when reduceDB tombstones have
		// accumulated past the waste threshold, compact the arena now —
		// long single Solve calls must not depend on the session layer's
		// CollectGarbage to keep the store bounded.
		s.maybeCompact()
	}
}

// search runs up to nConflicts conflicts (or until confLimit/propLimit
// totals).
func (s *Solver) search(nConflicts, confLimit, propLimit int64, assumptions []cnf.Lit) Status {
	var localConf int64
	for {
		confl := s.propagate()
		if propLimit >= 0 && s.stats.Propagations >= propLimit {
			return Unknown
		}
		if !confl.none() {
			s.stats.Conflicts++
			localConf++
			if s.decisionLevel() == 0 {
				if s.taintL0 {
					// The level-0 state may include consequences of a
					// removable XOR, so this conflict does not prove the
					// base formula UNSAT. The conflict is also not
					// re-discoverable (propagation is incremental), so
					// latch Unsat until the owner rebuilds the solver.
					s.brokenL0 = true
					return Unsat
				}
				s.ok = false
				s.logLemma(nil)
				return Unsat
			}
			learnt, btLevel, lbd := s.analyze(confl)
			if t := s.cfg.ChronoBacktrack; t > 0 && len(learnt) > 1 &&
				s.decisionLevel()-btLevel > t {
				// Chronological backtracking: a long backjump discards a
				// trail prefix that is usually re-derived verbatim. Undo one
				// level instead and assert the learnt literal there — a
				// sound level over-approximation (analysis treats recorded
				// levels as upper bounds). Unit learnts still go to level 0:
				// they have no clause to re-propagate them after a restart.
				btLevel = s.decisionLevel() - 1
				s.stats.ChronoBacktracks++
			}
			s.cancelUntil(btLevel)
			s.recordLearnt(learnt, lbd)
			s.decayActivities()
			if (confLimit >= 0 && s.stats.Conflicts >= confLimit) || localConf >= nConflicts ||
				s.interrupted() {
				return Unknown
			}
			continue
		}
		if s.cfg.RephaseEvery > 0 && len(s.trail) > s.bestTrail {
			// Deepest conflict-free trail so far: snapshot its polarities as
			// the target phase — the closest-to-a-model assignment yet seen.
			s.bestTrail = len(s.trail)
			for _, l := range s.trail {
				s.targetPhase[l.Var()] = !l.Neg()
			}
		}
		if float64(len(s.learnts)) > s.maxLearnts {
			s.reduceDB()
			if !s.ok {
				// The level-0 subsumption pass inside reduceDB proved the
				// formula UNSAT (safe: it only derives units when no
				// removable XOR rows are live).
				return Unsat
			}
		}
		next := cnf.Lit(0)
		for s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
				continue
			case lFalse:
				return Unsat // assumption contradicted
			default:
				next = a
			}
			break
		}
		if next == 0 {
			next = s.pickBranchLit()
			if next == 0 {
				return Sat // all variables assigned
			}
		}
		s.stats.Decisions++
		// BSAT enumeration under priority branching is nearly
		// conflict-free, so the budget checks above may never fire; poll
		// the interrupt flag on a decision cadence too.
		if s.stats.Decisions&1023 == 0 && s.interrupted() {
			return Unknown
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, reason{})
	}
}

func (s *Solver) pickBranchLit() cnf.Lit {
	for _, h := range [2]*varHeap{s.priOrder, s.order} {
		for !h.empty() {
			v := h.removeMax()
			if s.assigns[v] != lUndef {
				continue
			}
			pol := s.phase[v]
			switch s.phaseMode {
			case phaseUseTarget:
				pol = s.targetPhase[v]
			case phaseUseInverted:
				pol = !s.phase[v]
			case phaseUseOriginal:
				pol = false
			}
			if s.cfg.RandomPolarityFreq > 0 && s.rng.Float64() < s.cfg.RandomPolarityFreq {
				pol = s.rng.Bool()
			}
			return cnf.MkLit(v, !pol)
		}
	}
	return 0
}

func (s *Solver) recordLearnt(learnt []cnf.Lit, lbd int) {
	s.stats.Learned++
	s.logLemma(learnt)
	switch len(learnt) {
	case 1:
		if s.isSelector[learnt[0].Var()] == selXORGuard {
			// Fixing an XOR-guard selector at level 0 flips the guarded
			// parity for the rest of the solver's lifetime; level-0
			// propagation through it would no longer follow from the base
			// formula alone. Sound for the current call, poison afterwards.
			s.taintL0 = true
		}
		s.uncheckedEnqueue(learnt[0], reason{})
		return
	case 2:
		// Learned binaries are inlined in their watchers, never deleted
		// (they were exempt from reduceDB before too), and carried as a
		// literal-payload reason.
		s.attachBinary(learnt[0], learnt[1])
		s.uncheckedEnqueue(learnt[0], reason{tag: reasonBinary, ref: uint32(learnt[1])})
		return
	}
	cr := s.ca.alloc(learnt, true, lbd, s.claInc)
	s.learnts = append(s.learnts, cr)
	s.attach(cr)
	s.uncheckedEnqueue(learnt[0], reason{tag: reasonClause, ref: cr})
}

// Polarity sources for pickBranchLit; rephase rotates phaseMode through
// rephaseSeq. The zero value (saved phase) is the classic behavior and
// the permanent mode when RephaseEvery is 0.
const (
	phaseUseSaved uint8 = iota
	phaseUseTarget
	phaseUseInverted
	phaseUseOriginal
)

var rephaseSeq = [...]uint8{
	phaseUseTarget, phaseUseSaved, phaseUseInverted,
	phaseUseSaved, phaseUseOriginal, phaseUseSaved,
}

// rephase rotates the decision polarity source (CaDiCaL-style). The
// best-trail watermark resets so the target snapshot re-learns under the
// new source instead of being pinned by a stale deep trail.
func (s *Solver) rephase() {
	s.phaseMode = rephaseSeq[s.rephaseIdx%len(rephaseSeq)]
	s.rephaseIdx++
	s.bestTrail = 0
	s.stats.Rephases++
}

func (s *Solver) decayActivities() {
	s.varInc *= 1 / 0.95
	s.claInc *= 1 / 0.999
}

func (s *Solver) bumpVar(v cnf.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.numVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
	s.priOrder.update(v)
}

func (s *Solver) bumpClause(cr CRef) {
	ord := s.ca.store[cr+1]
	s.ca.act[ord] += s.claInc
	if s.ca.act[ord] > 1e20 {
		for _, c := range s.learnts {
			s.ca.act[s.ca.store[c+1]] *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// reduceDB removes the less useful half of the learned clauses,
// keeping glue clauses (LBD ≤ 2), clauses that are current reasons on
// the trail, and — implicitly — binaries, which never enter the learnt
// index. Locked-reason detection marks reason clauses through the
// trail via the arena's scratch bit instead of building a per-call
// set, so the whole pass is allocation-free in the steady state.
func (s *Solver) reduceDB() {
	if s.cfg.InprocessEvery > 0 && !s.cfg.RecordProof && s.decisionLevel() == 0 {
		// On-the-fly learnt subsumption: reduceDB fires at level 0 right
		// after restarts, the one mid-search point where strengthening is
		// safe (see inprocess.go for the selector-safety rules).
		s.subsumeLearnts(subsumeBudgetDefault)
		if !s.ok {
			return
		}
	}
	if len(s.learnts) == 0 {
		return
	}
	s.markTrailReasons(true)
	ls := append(s.sortScratch[:0], s.learnts...)
	// Worst first: higher LBD, then lower activity.
	slices.SortFunc(ls, func(a, b CRef) int {
		la, lb := s.ca.lbd(a), s.ca.lbd(b)
		if la != lb {
			return lb - la
		}
		aa, ab := s.ca.activity(a), s.ca.activity(b)
		switch {
		case aa < ab:
			return -1
		case aa > ab:
			return 1
		}
		return 0
	})
	remove := len(ls) / 2
	kept := s.learnts[:0]
	for i, cr := range ls {
		if !s.ca.marked(cr) && (s.satisfiedAtLevel0(cr) || (i < remove && s.ca.lbd(cr) > 2)) {
			s.deleteClause(cr)
			s.stats.RemovedDB++
			continue
		}
		kept = append(kept, cr)
	}
	s.learnts = kept
	s.sortScratch = ls[:0]
	s.markTrailReasons(false)
	// Full watch sweep: up to half the learnts just died, so most lists
	// are dirty anyway. This also clears any deletions pending from
	// earlier Releases, so the dirty list can be reset wholesale.
	for li := range s.watches {
		ws := s.watches[li]
		w := 0
		for _, wt := range ws {
			if wt.cr == crefBin || !s.ca.deleted(wt.cr) {
				ws[w] = wt
				w++
			}
		}
		s.watches[li] = ws[:w]
	}
	s.dirtyWatch = s.dirtyWatch[:0]
	s.maxLearnts *= 1.3
}

// markTrailReasons sets (or clears) the arena scratch bit on every
// clause currently acting as a reason for a trail assignment. Between
// a true and a false call the trail must not change.
func (s *Solver) markTrailReasons(on bool) {
	for _, l := range s.trail {
		if r := s.reasons[l.Var()]; r.tag == reasonClause {
			if on {
				s.ca.mark(r.ref)
			} else {
				s.ca.unmark(r.ref)
			}
		}
	}
}

// satisfiedAtLevel0 reports whether a clause is permanently satisfied by
// the top-level assignment. Learned clauses guarded by a released
// selector end up in this state and are reclaimed by reduceDB or
// CollectGarbage.
func (s *Solver) satisfiedAtLevel0(cr CRef) bool {
	b := s.ca.litBase(cr)
	for _, w := range s.ca.store[b : b+s.ca.size(cr)] {
		l := cnf.Lit(w)
		if s.value(l) == lTrue && s.level[l.Var()] == 0 {
			return true
		}
	}
	return false
}

// luby returns the Luby restart sequence value for index i with base y.
func luby(y float64, i int) float64 {
	size, seq := 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	p := 1.0
	for k := 0; k < seq; k++ {
		p *= y
	}
	return p
}
