package sat

import "unigen/internal/cnf"

// Inprocessing: simplification of the session-persistent clause database
// between BSAT calls — failed-literal probing, clause vivification, and
// learnt subsumption / self-subsuming strengthening. All three derive
// only logical consequences of the current database, so they are sound
// to apply permanently, but the incremental-session machinery imposes
// two extra rules:
//
//   - No pass runs while a removable XOR row is live (liveXorSels > 0) or
//     the level-0 state is tainted. A derived level-0 unit could otherwise
//     fix an XOR-guard selector and flip a live row's parity for the rest
//     of the solver's lifetime — exactly the hazard Solver.taintL0 guards
//     in recordLearnt. bsat sessions call Inprocess right after releasing
//     a cell's constraints, when no removable row exists. (Unreleased
//     *clause* selectors are harmless: learnts only ever contain their
//     negated activation literals, so subsumption resolution can never
//     pivot on a selector variable, and any derived unit is a consequence
//     of the base formula plus the guard definitions — a conservative
//     extension of the base formula.)
//   - Everything is skipped under RecordProof: the passes delete and
//     rewrite clauses, which a DRUP additions-only trace cannot express
//     without deletion lines the checker does not consume.
//
// Budgets are propagation- (probing, vivification) or inspection-counted
// (subsumption), with rolling cursors so successive session-boundary
// passes cover the whole database even when each individual pass is
// small.

// Default budgets when the corresponding Config field is 0.
const (
	probeBudgetDefault   = 20000  // propagations per probing pass
	vivifyBudgetDefault  = 20000  // propagations per vivification pass
	subsumeBudgetDefault = 200000 // literal inspections per subsumption pass
)

// subEntry is subsumeLearnts's snapshot of one live learnt clause: its
// arena address, a Bloom-style variable-set abstraction (bit v&63), and
// its size. dead marks clauses deleted or replaced during the pass.
type subEntry struct {
	cr   CRef
	abst uint64
	size int32
	dead bool
}

// Inprocess runs one budgeted simplification pass: probing, then
// vivification, then learnt subsumption. It must be called at decision
// level 0 between Solve calls, with no removable XOR constraints live —
// bsat sessions invoke it at cell boundaries right after Release. The
// call is a no-op whenever any precondition fails, so callers need no
// guard of their own.
func (s *Solver) Inprocess() {
	if !s.ok || s.brokenL0 || s.taintL0 || s.cfg.RecordProof ||
		s.decisionLevel() != 0 || s.liveXorSels > 0 {
		return
	}
	s.probeFailedLiterals()
	if !s.ok {
		return
	}
	s.vivifyClauses()
	if !s.ok {
		return
	}
	s.subsumeLearnts(subsumeBudgetDefault)
}

// probeFailedLiterals probes both polarities of unassigned non-selector
// variables at level 0: assert the literal, propagate, and if that
// conflicts the literal's negation is a level-0 unit. Each derived unit
// shrinks the search space permanently and feeds the packed engine's
// dirty windows. A rolling cursor spreads coverage across passes.
func (s *Solver) probeFailedLiterals() {
	budget := s.cfg.ProbeBudget
	if budget <= 0 {
		budget = probeBudgetDefault
	}
	stop := s.stats.Propagations + budget
	n := s.numVars
	for tried := 0; tried < n; tried++ {
		if s.stats.Propagations >= stop || !s.ok {
			return
		}
		s.probeCursor++
		if s.probeCursor > n {
			s.probeCursor = 1
		}
		v := cnf.Var(s.probeCursor)
		if s.assigns[v] != lUndef || s.isSelector[v] != selNone {
			continue
		}
		for pol := 0; pol < 2 && s.assigns[v] == lUndef; pol++ {
			l := cnf.MkLit(v, pol == 1)
			s.stats.ProbedLits++
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(l, reason{})
			confl := s.propagate()
			s.cancelUntil(0)
			if !confl.none() {
				s.stats.FailedLits++
				if !s.addUnit(l.Not()) {
					return
				}
			}
		}
	}
}

// vivifyClauses runs distillation over the problem clauses: for each
// clause, assert the negations of its literals one at a time; if the
// prefix alone already implies one of the remaining literals (or
// conflicts), the clause shrinks to that prefix. Level-0-false literals
// are dropped along the way and level-0-satisfied clauses deleted. A
// rolling cursor plus the propagation budget bound each pass.
func (s *Solver) vivifyClauses() {
	budget := s.cfg.VivifyBudget
	if budget <= 0 {
		budget = vivifyBudgetDefault
	}
	stop := s.stats.Propagations + budget
	if len(s.clauses) == 0 {
		return
	}
	// Clauses acting as level-0 reasons must stay intact (the trail
	// holds exactly the level-0 assignments here).
	s.markTrailReasons(true)
	for tried, n := 0, len(s.clauses); tried < n; tried++ {
		if s.stats.Propagations >= stop || !s.ok {
			break
		}
		if s.vivCursor >= len(s.clauses) {
			s.vivCursor = 0
		}
		cr := s.clauses[s.vivCursor]
		s.vivCursor++
		if s.ca.deleted(cr) || s.ca.marked(cr) {
			continue
		}
		s.vivifyOne(cr, stop)
	}
	s.markTrailReasons(false)
	// Purge tombstones so the problem index (a compaction root) does not
	// pin dead blocks across GC cycles.
	w := 0
	for _, cr := range s.clauses {
		if !s.ca.deleted(cr) {
			s.clauses[w] = cr
			w++
		}
	}
	s.clauses = s.clauses[:w]
}

// vivifyOne distills a single problem clause. stop is the cumulative
// propagation limit; when it is hit mid-clause the untested tail is kept
// verbatim (only always-sound level-0 drops are applied).
func (s *Solver) vivifyOne(cr CRef, stop int64) {
	b := s.ca.litBase(cr)
	size := s.ca.size(cr)
	all := s.vivAll[:0]
	for _, w := range s.ca.store[b : b+size] {
		l := cnf.Lit(w)
		switch s.value(l) {
		case lTrue:
			// Satisfied at level 0 (everything assigned here is level 0):
			// the clause is permanently redundant.
			s.deleteClause(cr)
			s.vivAll = all
			return
		case lFalse:
			continue // falsified at level 0: drop the literal
		}
		all = append(all, l)
	}
	s.vivAll = all

	// Probe: detach first so the clause cannot propagate against itself,
	// then assert literal negations left to right.
	s.detachClause(cr)
	s.trailLim = append(s.trailLim, len(s.trail))
	keep := s.vivKeep[:0]
	truncated := false
probe:
	for i, l := range all {
		if s.stats.Propagations >= stop {
			keep = append(keep, all[i:]...) // untested tail stays
			break
		}
		switch s.value(l) {
		case lTrue:
			// ¬(prefix) already implies l: the clause shrinks to prefix ∨ l.
			keep = append(keep, l)
			truncated = i < len(all)-1
			break probe
		case lFalse:
			truncated = true // implied false by the prefix: redundant
			continue
		}
		keep = append(keep, l)
		s.uncheckedEnqueue(l.Not(), reason{})
		if confl := s.propagate(); !confl.none() {
			// The prefix alone is contradictory: it is the whole clause.
			truncated = i < len(all)-1
			break probe
		}
	}
	s.cancelUntil(0)
	s.vivKeep = keep

	if !truncated && len(keep) == size {
		// Nothing learned: reattach the original watches.
		s.attach(cr)
		return
	}
	s.stats.VivifiedLits += int64(size - len(keep))
	s.ca.del(cr) // already detached; no dirtyWatch entry needed
	switch len(keep) {
	case 0:
		s.ok = false
	case 1:
		s.addUnit(keep[0])
	case 2:
		// Like AddClause, a binary lives only in its watchers from now on.
		s.attachBinary(keep[0], keep[1])
	default:
		nc := s.ca.alloc(keep, false, 0, 0)
		s.clauses = append(s.clauses, nc)
		s.attach(nc)
	}
}

// subsumeLearnts removes learnt clauses subsumed by another learnt and
// strengthens learnts by self-subsuming resolution (C = A∨l, D ⊇ A∨¬l
// ⇒ drop ¬l from D). Candidate pairs come from per-variable occurrence
// lists filtered by a 64-bit variable-set abstraction; budget counts
// literal inspections. Runs at level 0 only — from Inprocess and from
// reduceDB right after a restart.
func (s *Solver) subsumeLearnts(budget int64) {
	if len(s.learnts) < 2 || s.taintL0 {
		return
	}
	s.markTrailReasons(true)
	defer s.markTrailReasons(false)

	// Snapshot the live, unlocked learnts and build occurrence lists over
	// their variables. subOcc persists across passes (grown, then reset
	// sparsely below) so the steady state allocates nothing but entries.
	ents := s.subEnts[:0]
	for len(s.subOcc) <= s.numVars {
		s.subOcc = append(s.subOcc, nil)
	}
	for _, cr := range s.learnts {
		if s.ca.deleted(cr) || s.ca.marked(cr) {
			continue
		}
		b, size := s.ca.litBase(cr), s.ca.size(cr)
		var abst uint64
		for _, w := range s.ca.store[b : b+size] {
			v := cnf.Lit(w).Var()
			abst |= 1 << uint(v&63)
			s.subOcc[v] = append(s.subOcc[v], int32(len(ents)))
		}
		ents = append(ents, subEntry{cr: cr, abst: abst, size: int32(size)})
	}
	s.subEnts = ents
	defer func() {
		for i := range ents {
			b, size := s.ca.litBase(ents[i].cr), s.ca.size(ents[i].cr)
			for _, w := range s.ca.store[b : b+size] {
				v := cnf.Lit(w).Var()
				s.subOcc[v] = s.subOcc[v][:0]
			}
		}
	}()

	for ci := range ents {
		if budget <= 0 || !s.ok {
			break
		}
		c := &ents[ci]
		if c.dead {
			continue
		}
		cb, csize := s.ca.litBase(c.cr), int(c.size)
		clits := s.ca.store[cb : cb+csize]
		// Probe the occurrence list of C's rarest variable; every clause
		// containing all of C's variables must appear there.
		minV := cnf.Lit(clits[0]).Var()
		for _, w := range clits[1:] {
			if v := cnf.Lit(w).Var(); len(s.subOcc[v]) < len(s.subOcc[minV]) {
				minV = v
			}
		}
		// Mark C's literals: 1 = positive occurrence, 2 = negative.
		for _, w := range clits {
			l := cnf.Lit(w)
			if l.Neg() {
				s.seen[l.Var()] = 2
			} else {
				s.seen[l.Var()] = 1
			}
		}
		for _, di := range s.subOcc[minV] {
			if !s.ok || budget <= 0 {
				break
			}
			if int(di) == ci {
				continue
			}
			d := &ents[di]
			if d.dead || d.size < c.size || c.abst&^d.abst != 0 {
				continue
			}
			db, dsize := s.ca.litBase(d.cr), int(d.size)
			budget -= int64(dsize)
			found := 0
			neg := cnf.Lit(0)
			for _, w := range s.ca.store[db : db+dsize] {
				dl := cnf.Lit(w)
				code := byte(1)
				if dl.Neg() {
					code = 2
				}
				switch s.seen[dl.Var()] {
				case code:
					found++
				case 0:
				default: // opposite polarity
					if neg != 0 {
						found = -len(clits) // two pivots: no resolution
					} else {
						neg = dl
						found++
					}
				}
			}
			if found != csize {
				continue
			}
			if neg == 0 {
				// C ⊆ D: D is redundant.
				s.deleteClause(d.cr)
				d.dead = true
				s.stats.SubsumedLearnts++
				continue
			}
			s.strengthenLearnt(d, neg)
		}
		for _, w := range clits {
			s.seen[cnf.Lit(w).Var()] = 0
		}
	}

	// Purge tombstones from the learnt index (reduceDB and the GC both
	// iterate it and do not expect deleted entries).
	w := 0
	for _, cr := range s.learnts {
		if !s.ca.deleted(cr) {
			s.learnts[w] = cr
			w++
		}
	}
	s.learnts = s.learnts[:w]
}

// strengthenLearnt replaces learnt d with d minus literal drop (already
// shown redundant by self-subsuming resolution), also shedding literals
// fixed false at level 0. Unit or empty results are only asserted when
// no removable XOR row is live and the level-0 state is clean — the same
// rule recordLearnt enforces with taintL0 — otherwise the strengthening
// is skipped entirely (d stays valid as-is).
func (s *Solver) strengthenLearnt(d *subEntry, drop cnf.Lit) {
	db, dsize := s.ca.litBase(d.cr), int(d.size)
	out := s.vivKeep[:0]
	for _, w := range s.ca.store[db : db+dsize] {
		dl := cnf.Lit(w)
		if dl == drop {
			continue
		}
		switch s.value(dl) {
		case lTrue:
			// Satisfied at level 0: delete rather than rewrite.
			s.vivKeep = out
			s.deleteClause(d.cr)
			d.dead = true
			s.stats.SubsumedLearnts++
			return
		case lFalse:
			continue
		}
		out = append(out, dl)
	}
	s.vivKeep = out
	if len(out) <= 1 && (s.liveXorSels > 0 || s.taintL0) {
		return // cannot safely assert units here; keep d unchanged
	}
	d.dead = true
	s.stats.VivifiedLits += int64(dsize - len(out))
	switch len(out) {
	case 0:
		s.deleteClause(d.cr)
		s.ok = false
	case 1:
		if s.isSelector[out[0].Var()] == selXORGuard {
			// Mirror recordLearnt: fixing an XOR-guard selector at level 0
			// is poison for future calls.
			s.taintL0 = true
		}
		s.deleteClause(d.cr)
		s.addUnit(out[0])
	case 2:
		s.deleteClause(d.cr)
		s.attachBinary(out[0], out[1])
	default:
		lbd := s.ca.lbd(d.cr)
		if lbd > len(out) {
			lbd = len(out)
		}
		act := s.ca.activity(d.cr)
		s.deleteClause(d.cr)
		nc := s.ca.alloc(out, true, lbd, act)
		s.learnts = append(s.learnts, nc)
		s.attach(nc)
	}
}
