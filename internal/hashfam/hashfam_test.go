package hashfam

import (
	"math"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

func allVars(n int) []cnf.Var {
	vs := make([]cnf.Var, n)
	for i := range vs {
		vs[i] = cnf.Var(i + 1)
	}
	return vs
}

func TestDrawShape(t *testing.T) {
	rng := randx.New(1)
	h := Draw(rng, allVars(20), 5)
	if h.M() != 5 {
		t.Fatalf("M = %d, want 5", h.M())
	}
	for i := range h.Rows {
		for _, v := range h.RowVars(i) {
			if v < 1 || v > 20 {
				t.Fatalf("row var %d out of range", v)
			}
		}
	}
}

// TestDrawPackedProperties checks the packed generator against the
// family's defining statistics: each variable joins each row
// independently with probability 1/2 (within 5σ per variable), no bits
// leak past the column space (the tail-mask regression for |vars| not a
// multiple of 64), and the popcount row lengths agree with the
// materialized rows and the AverageLen/TotalLen accounting.
func TestDrawPackedProperties(t *testing.T) {
	rng := randx.New(9)
	const n, rows = 67, 4000 // 67: exercises the tail mask
	vars := allVars(n)
	h := Draw(rng, vars, rows)

	counts := make([]int, n)
	total := 0
	for i := range h.Rows {
		rv := h.RowVars(i)
		if got := h.RowLen(i); got != len(rv) {
			t.Fatalf("row %d: popcount len %d != materialized len %d", i, got, len(rv))
		}
		total += len(rv)
		for _, v := range rv {
			if v < 1 || v > n {
				t.Fatalf("row %d: variable %d outside the column space", i, v)
			}
			counts[v-1]++
		}
		for w, b := range h.Rows[i].Bits {
			if w == len(h.Rows[i].Bits)-1 && b&^((1<<(n%64))-1) != 0 {
				t.Fatalf("row %d: bits set past column %d", i, n)
			}
		}
	}
	if h.TotalLen() != total {
		t.Fatalf("TotalLen = %d, want %d", h.TotalLen(), total)
	}
	if avg := h.AverageLen(); math.Abs(avg-float64(total)/rows) > 1e-9 {
		t.Fatalf("AverageLen = %v, want %v", avg, float64(total)/rows)
	}
	sigma := math.Sqrt(0.25 / rows)
	for v, c := range counts {
		freq := float64(c) / rows
		if math.Abs(freq-0.5) > 5*sigma {
			t.Fatalf("variable %d inclusion frequency %.4f, want 0.5 ± %.4f", v+1, freq, 5*sigma)
		}
	}
}

// TestDrawEmptyRow: with an empty variable list every row is the empty
// constraint; RHS stays random. Install-time handling of such rows is
// the bsat layer's job (see the session's fail-fast path).
func TestDrawEmptyRow(t *testing.T) {
	rng := randx.New(10)
	h := Draw(rng, nil, 8)
	for i := range h.Rows {
		if !h.Rows[i].Empty() || h.RowLen(i) != 0 {
			t.Fatalf("row %d not empty", i)
		}
	}
	if h.TotalLen() != 0 || h.AverageLen() != 0 {
		t.Fatal("empty hash length accounting wrong")
	}
}

func TestAverageLenHalfDensity(t *testing.T) {
	// With density 1/2 over n vars, average row length concentrates
	// around n/2 — the paper's "expected number of variables per
	// xor-clause is approximately |X|/2".
	rng := randx.New(2)
	n := 200
	h := Draw(rng, allVars(n), 400)
	avg := h.AverageLen()
	if math.Abs(avg-float64(n)/2) > 10 {
		t.Fatalf("avg xor len = %.1f, want ≈ %d", avg, n/2)
	}
}

func TestDrawSparseDensity(t *testing.T) {
	rng := randx.New(3)
	n, q := 300, 0.1
	h := DrawSparse(rng, allVars(n), 300, q)
	avg := h.AverageLen()
	if math.Abs(avg-q*float64(n)) > 8 {
		t.Fatalf("avg sparse xor len = %.1f, want ≈ %.0f", avg, q*float64(n))
	}
}

// TestPairwiseIndependence verifies the statistical property UniGen's
// analysis rests on: for distinct y1, y2 and a random h from the family,
// Pr[h(y1)=α1 ∧ h(y2)=α2] = 2^{-2m}.
func TestPairwiseIndependence(t *testing.T) {
	const (
		n      = 6
		m      = 2
		trials = 40000
	)
	vars := allVars(n)
	rng := randx.New(4)
	y1 := cnf.NewAssignment(n)
	y2 := cnf.NewAssignment(n)
	y1.Set(1, true)
	y2.Set(2, true)
	y2.Set(3, true)

	hits := 0
	for i := 0; i < trials; i++ {
		h := Draw(rng, vars, m)
		// Target cell is folded into RHS, so "both in cell" means both
		// satisfy all rows.
		if h.Evaluate(y1) && h.Evaluate(y2) {
			hits++
		}
	}
	got := float64(hits) / trials
	want := math.Pow(2, -2*m) // 1/16
	// 5-sigma binomial tolerance.
	sigma := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 5*sigma {
		t.Fatalf("joint cell probability %.5f, want %.5f ± %.5f", got, want, 5*sigma)
	}
}

// TestCellBalance verifies that a random hash splits the full cube
// evenly in expectation: each of 2^n points lands in the target cell
// with probability 2^-m.
func TestCellBalance(t *testing.T) {
	const (
		n      = 8
		m      = 3
		trials = 3000
	)
	vars := allVars(n)
	rng := randx.New(5)
	total := 0
	for i := 0; i < trials; i++ {
		h := Draw(rng, vars, m)
		for pt := 0; pt < 1<<n; pt++ {
			a := cnf.NewAssignment(n)
			for v := 1; v <= n; v++ {
				a[v] = pt&(1<<(v-1)) != 0
			}
			if h.Evaluate(a) {
				total++
			}
		}
	}
	got := float64(total) / float64(trials*(1<<n))
	want := math.Pow(2, -m)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("mean cell fraction %.4f, want %.4f", got, want)
	}
}

func TestApplyDoesNotMutate(t *testing.T) {
	f := cnf.New(5)
	f.AddClause(1, 2)
	rng := randx.New(6)
	h := Draw(rng, allVars(5), 3)
	g := h.Apply(f)
	if len(f.XORs) != 0 {
		t.Fatal("Apply mutated the input formula")
	}
	if len(g.XORs) > 3 {
		t.Fatalf("applied %d xors, want <= 3", len(g.XORs))
	}
}

// TestApplyConsistency: a point satisfies the applied XOR clauses iff
// Evaluate says it is in the cell.
func TestApplyConsistency(t *testing.T) {
	rng := randx.New(7)
	n := 7
	f := cnf.New(n)
	for iter := 0; iter < 200; iter++ {
		h := Draw(rng, allVars(n), 1+rng.Intn(4))
		g := h.Apply(f)
		pt := rng.Intn(1 << n)
		a := cnf.NewAssignment(n)
		for v := 1; v <= n; v++ {
			a[v] = pt&(1<<(v-1)) != 0
		}
		if a.Satisfies(g) != h.Evaluate(a) {
			t.Fatalf("iter %d: Apply and Evaluate disagree", iter)
		}
	}
}
