// Package hashfam implements the 3-wise independent XOR hash family
// H_xor(n, m, 3) of Gomes, Sabharwal and Selman (NIPS 2007) that UniGen,
// UniWit and ApproxMC all use to partition witness spaces.
//
// A hash function h: {0,1}^n -> {0,1}^m in the family is defined by
// coefficients a[i][j] ∈ {0,1}:
//
//	h(y)[i] = a[i][0] ⊕ ⊕_{k=1..n} a[i][k]·y[k]
//
// Choosing all a[i][j] uniformly at random draws h uniformly from the
// family. Conjoining h(vars) = α to a formula adds m XOR clauses, each
// over ~n/2 variables in expectation — which is why UniGen's restriction
// of n to the (small) independent support is the paper's key scalability
// lever (§4).
//
// Rows are bit-packed (gf2.Row): column c of a row is variable Vars[c],
// so Draw fills 64 coefficients per RNG word and row lengths are
// popcounts. The packed layout flows unchanged into the solver — see
// sat.Solver.AddPackedXORRemovable for the column-map contract.
package hashfam

import (
	"unigen/internal/cnf"
	"unigen/internal/gf2"
	"unigen/internal/randx"
)

// Hash is a randomly drawn member of H_xor(|Vars|, m, 3) together with a
// random target cell α, represented as m packed XOR rows over Vars.
// Row bit c corresponds to Vars[c]; the row's constant a[i][0] and the
// cell bit α[i] are folded into the RHS.
type Hash struct {
	Vars []cnf.Var
	Rows []gf2.Row
}

// M returns the number of hash bits (rows).
func (h *Hash) M() int { return len(h.Rows) }

// RowLen returns the number of variables in row i (a popcount).
func (h *Hash) RowLen(i int) int { return h.Rows[i].Len() }

// TotalLen returns the exact total number of variables across all rows.
// Being an integer, it merges order-insensitively into run statistics.
func (h *Hash) TotalLen() int {
	total := 0
	for _, r := range h.Rows {
		total += r.Len()
	}
	return total
}

// AverageLen returns the mean number of variables per XOR row, the
// statistic reported in the "Avg XOR len" columns of Tables 1 and 2.
func (h *Hash) AverageLen() float64 {
	if len(h.Rows) == 0 {
		return 0
	}
	return float64(h.TotalLen()) / float64(len(h.Rows))
}

// RowVars materializes row i as a variable slice, for consumers that
// speak sparse XOR clauses (the stateless enumeration path, Apply, and
// the solver's legacy scalar engine). The hot incremental path installs
// the packed bits directly and never calls this.
func (h *Hash) RowVars(i int) []cnf.Var {
	r := h.Rows[i]
	out := make([]cnf.Var, 0, r.Len())
	r.ForEachSet(func(c int) { out = append(out, h.Vars[c]) })
	return out
}

// Draw samples h uniformly from H_xor(len(vars), m, 3) and α uniformly
// from {0,1}^m, returning the constraint h(vars) = α. Each variable
// appears in each row independently with probability 1/2; rows are
// generated 64 coefficient bits per RNG word.
func Draw(rng *randx.RNG, vars []cnf.Var, m int) *Hash {
	h := &Hash{Vars: vars, Rows: make([]gf2.Row, m)}
	words := gf2.Words(len(vars))
	tail := gf2.TailMask(len(vars))
	for i := 0; i < m; i++ {
		bits := make([]uint64, words)
		for w := range bits {
			bits[w] = rng.Uint64()
		}
		if words > 0 {
			bits[words-1] &= tail
		}
		// a[i][0] ⊕ α[i] folded into one random bit.
		h.Rows[i] = gf2.Row{Bits: bits, RHS: rng.Bool()}
	}
	return h
}

// DrawSparse samples from the density-q variant of the family, in which
// each variable joins a row with probability q < 0.5 (Gomes et al.,
// SAT 2007 "Short XORs"). This trades away the 3-independence guarantee
// for shorter rows; it is provided for the ablation discussed in §4 of
// the DAC'14 paper (the variant "mitigates the performance bottleneck
// significantly, but theoretical guarantees are lost").
func DrawSparse(rng *randx.RNG, vars []cnf.Var, m int, q float64) *Hash {
	h := &Hash{Vars: vars, Rows: make([]gf2.Row, m)}
	for i := 0; i < m; i++ {
		r := gf2.NewRow(len(vars))
		for c := range vars {
			if rng.Float64() < q {
				r.Set(c)
			}
		}
		r.RHS = rng.Bool()
		h.Rows[i] = r
	}
	return h
}

// Apply conjoins the hash constraint to a copy of f and returns it; f is
// not modified.
func (h *Hash) Apply(f *cnf.Formula) *cnf.Formula {
	g := f.Clone()
	for i, r := range h.Rows {
		g.AddXOR(h.RowVars(i), r.RHS)
	}
	return g
}

// Evaluate computes h(a)[i] for every row under assignment a and reports
// whether a lands in the hash's target cell (all rows satisfied). The
// assignment is packed onto the hash's column space once, then each row
// is a word-parallel parity fold.
func (h *Hash) Evaluate(a cnf.Assignment) bool {
	mask := make([]uint64, gf2.Words(len(h.Vars)))
	for c, v := range h.Vars {
		if a.Get(v) {
			mask[c>>6] |= 1 << uint(c&63)
		}
	}
	for _, r := range h.Rows {
		if gf2.ParityAnd(r.Bits, mask) != r.RHS {
			return false
		}
	}
	return true
}
