// Package hashfam implements the 3-wise independent XOR hash family
// H_xor(n, m, 3) of Gomes, Sabharwal and Selman (NIPS 2007) that UniGen,
// UniWit and ApproxMC all use to partition witness spaces.
//
// A hash function h: {0,1}^n -> {0,1}^m in the family is defined by
// coefficients a[i][j] ∈ {0,1}:
//
//	h(y)[i] = a[i][0] ⊕ ⊕_{k=1..n} a[i][k]·y[k]
//
// Choosing all a[i][j] uniformly at random draws h uniformly from the
// family. Conjoining h(vars) = α to a formula adds m XOR clauses, each
// over ~n/2 variables in expectation — which is why UniGen's restriction
// of n to the (small) independent support is the paper's key scalability
// lever (§4).
package hashfam

import (
	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// XORConstraint is one row of a hash constraint h(y)[i] = α[i], already
// folded into parity-constraint form over formula variables.
type XORConstraint struct {
	Vars []cnf.Var
	RHS  bool
}

// Hash is a randomly drawn member of H_xor(|Vars|, m, 3) together with a
// random target cell α, represented as m XOR constraints over Vars.
type Hash struct {
	Rows []XORConstraint
}

// M returns the number of hash bits (rows).
func (h *Hash) M() int { return len(h.Rows) }

// AverageLen returns the mean number of variables per XOR row, the
// statistic reported in the "Avg XOR len" columns of Tables 1 and 2.
func (h *Hash) AverageLen() float64 {
	if len(h.Rows) == 0 {
		return 0
	}
	total := 0
	for _, r := range h.Rows {
		total += len(r.Vars)
	}
	return float64(total) / float64(len(h.Rows))
}

// Draw samples h uniformly from H_xor(len(vars), m, 3) and α uniformly
// from {0,1}^m, returning the constraint h(vars) = α. Each variable
// appears in each row independently with probability 1/2; the row's
// constant a[i][0] and the cell bit α[i] fold into the RHS.
func Draw(rng *randx.RNG, vars []cnf.Var, m int) *Hash {
	h := &Hash{Rows: make([]XORConstraint, m)}
	for i := 0; i < m; i++ {
		h.Rows[i] = drawRow(rng, vars, 0.5)
	}
	return h
}

// DrawSparse samples from the density-q variant of the family, in which
// each variable joins a row with probability q < 0.5 (Gomes et al.,
// SAT 2007 "Short XORs"). This trades away the 3-independence guarantee
// for shorter rows; it is provided for the ablation discussed in §4 of
// the DAC'14 paper (the variant "mitigates the performance bottleneck
// significantly, but theoretical guarantees are lost").
func DrawSparse(rng *randx.RNG, vars []cnf.Var, m int, q float64) *Hash {
	h := &Hash{Rows: make([]XORConstraint, m)}
	for i := 0; i < m; i++ {
		h.Rows[i] = drawRow(rng, vars, q)
	}
	return h
}

func drawRow(rng *randx.RNG, vars []cnf.Var, q float64) XORConstraint {
	var row XORConstraint
	if q == 0.5 {
		// Fast path: one random bit per variable.
		for _, v := range vars {
			if rng.Bool() {
				row.Vars = append(row.Vars, v)
			}
		}
	} else {
		for _, v := range vars {
			if rng.Float64() < q {
				row.Vars = append(row.Vars, v)
			}
		}
	}
	// a[i][0] ⊕ α[i] folded into one random bit.
	row.RHS = rng.Bool()
	return row
}

// Apply conjoins the hash constraint to a copy of f and returns it; f is
// not modified.
func (h *Hash) Apply(f *cnf.Formula) *cnf.Formula {
	g := f.Clone()
	for _, r := range h.Rows {
		g.AddXOR(r.Vars, r.RHS)
	}
	return g
}

// Evaluate computes h(a)[i] for every row under assignment a and reports
// whether a lands in the hash's target cell (all rows satisfied).
func (h *Hash) Evaluate(a cnf.Assignment) bool {
	for _, r := range h.Rows {
		par := false
		for _, v := range r.Vars {
			par = par != a.Get(v)
		}
		if par != r.RHS {
			return false
		}
	}
	return true
}
