package gf2

import (
	"math/bits"
	"testing"

	"unigen/internal/randx"
)

// Property tests pinning the 4-wide unrolled word loops (Xor, Len,
// ParityAnd) to straightforward scalar references, across every ragged
// tail length from 1 to 256 columns. The unrolled bodies process
// len(bits)/4*4 words and the tails the rest; any off-by-one in the
// unroll boundary shows up as a mismatch on some width here.

func scalarXor(dst, src []uint64) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

func scalarLen(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func scalarParityAnd(a, b []uint64) bool {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n&1 == 1
}

func randomRow(rng *randx.RNG, ncols int) Row {
	r := NewRow(ncols)
	for c := 0; c < ncols; c++ {
		if rng.Bool() {
			r.Set(c)
		}
	}
	r.RHS = rng.Bool()
	return r
}

func TestUnrolledMatchesScalarAllWidths(t *testing.T) {
	rng := randx.New(0x4f2)
	reps := 8
	if testing.Short() {
		reps = 2
	}
	for ncols := 1; ncols <= 256; ncols++ {
		for rep := 0; rep < reps; rep++ {
			a := randomRow(rng, ncols)
			b := randomRow(rng, ncols)
			mask := randomRow(rng, ncols)

			if got, want := a.Len(), scalarLen(a.Bits); got != want {
				t.Fatalf("ncols=%d: Len = %d, want %d", ncols, got, want)
			}
			if got, want := ParityAnd(a.Bits, mask.Bits), scalarParityAnd(a.Bits, mask.Bits); got != want {
				t.Fatalf("ncols=%d: ParityAnd = %v, want %v", ncols, got, want)
			}

			ref := make([]uint64, len(a.Bits))
			copy(ref, a.Bits)
			scalarXor(ref, b.Bits)
			wantRHS := a.RHS != b.RHS
			a.Xor(b)
			if a.RHS != wantRHS {
				t.Fatalf("ncols=%d: Xor RHS = %v, want %v", ncols, a.RHS, wantRHS)
			}
			for w := range ref {
				if a.Bits[w] != ref[w] {
					t.Fatalf("ncols=%d: Xor word %d = %#x, want %#x", ncols, w, a.Bits[w], ref[w])
				}
			}
		}
	}
}

// Benchmarks comparing the unrolled loops against the scalar
// references above, on rows of ≥8 words where the unroll pays.
func benchRows(nwords int) (a, b Row) {
	rng := randx.New(uint64(nwords))
	a = randomRow(rng, nwords*64)
	b = randomRow(rng, nwords*64)
	return a, b
}

func BenchmarkXorUnrolled(bench *testing.B) {
	for _, nw := range []int{8, 32} {
		a, b := benchRows(nw)
		bench.Run(sizeName(nw), func(bench *testing.B) {
			for i := 0; i < bench.N; i++ {
				a.Xor(b)
			}
		})
	}
}

func BenchmarkXorScalar(bench *testing.B) {
	for _, nw := range []int{8, 32} {
		a, b := benchRows(nw)
		bench.Run(sizeName(nw), func(bench *testing.B) {
			for i := 0; i < bench.N; i++ {
				scalarXor(a.Bits, b.Bits)
			}
		})
	}
}

func BenchmarkParityAndUnrolled(bench *testing.B) {
	for _, nw := range []int{8, 32} {
		a, b := benchRows(nw)
		var sink bool
		bench.Run(sizeName(nw), func(bench *testing.B) {
			for i := 0; i < bench.N; i++ {
				sink = ParityAnd(a.Bits, b.Bits)
			}
		})
		_ = sink
	}
}

func BenchmarkParityAndScalar(bench *testing.B) {
	for _, nw := range []int{8, 32} {
		a, b := benchRows(nw)
		var sink bool
		bench.Run(sizeName(nw), func(bench *testing.B) {
			for i := 0; i < bench.N; i++ {
				sink = scalarParityAnd(a.Bits, b.Bits)
			}
		})
		_ = sink
	}
}

func sizeName(nwords int) string {
	if nwords == 8 {
		return "8words"
	}
	return "32words"
}

// Xor may legally be fed a shorter operand (windowed rows in the packed
// solver engine xor a suffix window into a full-width row); the words
// beyond the operand must stay untouched.
func TestXorShorterOperand(t *testing.T) {
	rng := randx.New(0x4f3)
	for trial := 0; trial < 200; trial++ {
		ncols := 64 + rng.Intn(512)
		a := randomRow(rng, ncols)
		bcols := 1 + rng.Intn(ncols)
		b := randomRow(rng, bcols)

		ref := make([]uint64, len(a.Bits))
		copy(ref, a.Bits)
		scalarXor(ref[:len(b.Bits)], b.Bits)
		a.Xor(b)
		for w := range ref {
			if a.Bits[w] != ref[w] {
				t.Fatalf("trial %d ncols=%d bcols=%d: word %d = %#x, want %#x",
					trial, ncols, bcols, w, a.Bits[w], ref[w])
			}
		}
	}
}
