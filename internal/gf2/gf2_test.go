package gf2

import (
	"testing"

	"unigen/internal/randx"
)

func TestWordsAndTailMask(t *testing.T) {
	cases := []struct {
		ncols, words int
		tail         uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{63, 1, (1 << 63) - 1},
		{64, 1, ^uint64(0)},
		{65, 2, 1},
		{130, 3, 3},
	}
	for _, c := range cases {
		if got := Words(c.ncols); got != c.words {
			t.Errorf("Words(%d) = %d, want %d", c.ncols, got, c.words)
		}
		if got := TailMask(c.ncols); got != c.tail {
			t.Errorf("TailMask(%d) = %#x, want %#x", c.ncols, got, c.tail)
		}
	}
}

func TestRowOps(t *testing.T) {
	r := NewRow(130)
	if !r.Empty() || r.Len() != 0 || r.FirstSet() != -1 {
		t.Fatal("fresh row not empty")
	}
	for _, c := range []int{0, 63, 64, 129} {
		r.Set(c)
		if !r.Get(c) {
			t.Fatalf("Set(%d) not visible", c)
		}
	}
	if r.Len() != 4 || r.FirstSet() != 0 {
		t.Fatalf("Len=%d FirstSet=%d", r.Len(), r.FirstSet())
	}
	r.Flip(0)
	if r.Get(0) || r.Len() != 3 || r.FirstSet() != 63 {
		t.Fatal("Flip broken")
	}
	var got []int
	r.ForEachSet(func(c int) { got = append(got, c) })
	want := []int{63, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEachSet = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEachSet = %v, want %v", got, want)
		}
	}
}

func TestXorAndParity(t *testing.T) {
	a, b := NewRow(100), NewRow(100)
	a.Set(1)
	a.Set(70)
	a.RHS = true
	b.Set(70)
	b.Set(99)
	a.Xor(b)
	if a.Get(70) || !a.Get(1) || !a.Get(99) || !a.RHS {
		t.Fatal("Xor cancellation broken")
	}
	mask := make([]uint64, Words(100))
	mask[0] = ^uint64(0)
	if !ParityAnd(a.Bits, mask) { // only bit 1 lands in word 0
		t.Fatal("ParityAnd word-0 fold wrong")
	}
	mask[1] = ^uint64(0)
	if ParityAnd(a.Bits, mask) { // bits 1 and 99: even
		t.Fatal("ParityAnd full fold wrong")
	}
}

// TestGaussJordanAgainstBrute cross-checks elimination on random small
// systems: the reduced system must have the same solution set as the
// original, and conflict must be reported exactly when the original has
// no solution.
func TestGaussJordanAgainstBrute(t *testing.T) {
	rng := randx.New(11)
	const ncols = 9
	for iter := 0; iter < 300; iter++ {
		nrows := 1 + rng.Intn(12)
		orig := make([]Row, nrows)
		work := make([]Row, nrows)
		for i := range orig {
			r := NewRow(ncols)
			r.Bits[0] = rng.Uint64() & TailMask(ncols)
			r.RHS = rng.Bool()
			orig[i] = r
			cp := NewRow(ncols)
			copy(cp.Bits, r.Bits)
			cp.RHS = r.RHS
			work[i] = cp
		}
		sat := func(rows []Row, pt uint64) bool {
			for _, r := range rows {
				par := ParityAnd(r.Bits, []uint64{pt})
				if par != r.RHS {
					return false
				}
			}
			return true
		}
		solutions := func(rows []Row) map[uint64]bool {
			out := map[uint64]bool{}
			for pt := uint64(0); pt < 1<<ncols; pt++ {
				if sat(rows, pt) {
					out[pt] = true
				}
			}
			return out
		}
		origSol := solutions(orig)
		conflict := GaussJordan(work, ncols)
		if conflict != (len(origSol) == 0) {
			t.Fatalf("iter %d: conflict=%v but |solutions|=%d", iter, conflict, len(origSol))
		}
		if conflict {
			continue
		}
		redSol := solutions(work)
		if len(redSol) != len(origSol) {
			t.Fatalf("iter %d: solution count changed %d -> %d", iter, len(origSol), len(redSol))
		}
		for pt := range origSol {
			if !redSol[pt] {
				t.Fatalf("iter %d: reduction lost solution %b", iter, pt)
			}
		}
	}
}
