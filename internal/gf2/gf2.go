// Package gf2 provides the dense bit-packed GF(2) row representation
// shared by every layer that touches parity constraints: hashfam packs
// drawn hash rows into it, the SAT solver stores and propagates XOR
// clauses in it, and Gauss–Jordan elimination reduces systems of it
// with word-wide XORs. One row is 64 coefficient bits per machine word
// over a dense column space, plus a right-hand-side bit — the layout
// that makes hash drawing, watch selection, parity folding, and row
// elimination word-parallel instead of per-variable.
package gf2

import "math/bits"

// WordBits is the number of columns per packed word.
const WordBits = 64

// Words returns the number of 64-bit words needed to cover ncols columns.
func Words(ncols int) int { return (ncols + WordBits - 1) / WordBits }

// TailMask returns the valid-bit mask of the last word covering ncols
// columns: drawing rows from raw RNG words must clear the bits past the
// column space. TailMask(0) is 0.
func TailMask(ncols int) uint64 {
	if r := ncols % WordBits; r != 0 {
		return (uint64(1) << uint(r)) - 1
	}
	if ncols == 0 {
		return 0
	}
	return ^uint64(0)
}

// Row is one linear constraint over GF(2): coefficient bits over a
// dense column space plus the right-hand-side bit. The zero Row is the
// empty (0 = 0) constraint.
type Row struct {
	Bits []uint64
	RHS  bool
}

// NewRow returns an all-zero row over ncols columns.
func NewRow(ncols int) Row { return Row{Bits: make([]uint64, Words(ncols))} }

// Get reports whether column c's coefficient is set.
func (r Row) Get(c int) bool {
	return r.Bits[c>>6]&(1<<uint(c&63)) != 0
}

// Set sets column c's coefficient.
func (r Row) Set(c int) { r.Bits[c>>6] |= 1 << uint(c&63) }

// Flip toggles column c's coefficient (x ⊕ x = 0, so adding a repeated
// variable cancels).
func (r Row) Flip(c int) { r.Bits[c>>6] ^= 1 << uint(c&63) }

// Xor adds row o into r (word-wide row elimination step). o must not be
// wider than r. The loop runs 4 words per iteration: row elimination over
// wide sampling sets is the Gauss–Jordan hot path and the unroll keeps it
// bound on memory bandwidth rather than loop overhead.
func (r *Row) Xor(o Row) {
	a, b := r.Bits[:len(o.Bits)], o.Bits
	w := 0
	for ; w+4 <= len(b); w += 4 {
		a[w] ^= b[w]
		a[w+1] ^= b[w+1]
		a[w+2] ^= b[w+2]
		a[w+3] ^= b[w+3]
	}
	for ; w < len(b); w++ {
		a[w] ^= b[w]
	}
	r.RHS = r.RHS != o.RHS
}

// Len returns the number of set coefficients (the row's variable count).
func (r Row) Len() int {
	b := r.Bits
	n := 0
	w := 0
	for ; w+4 <= len(b); w += 4 {
		n += bits.OnesCount64(b[w]) + bits.OnesCount64(b[w+1]) +
			bits.OnesCount64(b[w+2]) + bits.OnesCount64(b[w+3])
	}
	for ; w < len(b); w++ {
		n += bits.OnesCount64(b[w])
	}
	return n
}

// Empty reports whether no coefficient is set.
func (r Row) Empty() bool {
	for _, b := range r.Bits {
		if b != 0 {
			return false
		}
	}
	return true
}

// FirstSet returns the lowest set column, or -1 for an empty row.
func (r Row) FirstSet() int {
	for w, b := range r.Bits {
		if b != 0 {
			return w<<6 | bits.TrailingZeros64(b)
		}
	}
	return -1
}

// ForEachSet calls fn for every set column in ascending order.
func (r Row) ForEachSet(fn func(c int)) {
	for w, b := range r.Bits {
		for b != 0 {
			fn(w<<6 | bits.TrailingZeros64(b))
			b &= b - 1
		}
	}
}

// ParityAnd returns the parity of the popcount of a AND b, the
// word-parallel fold "XOR of a's coefficients restricted to the mask b"
// (e.g. row bits against the assigned-true mask). b must be at least as
// long as a.
func ParityAnd(a, b []uint64) bool {
	b = b[:len(a)]
	var acc uint64
	w := 0
	for ; w+4 <= len(a); w += 4 {
		acc ^= a[w]&b[w] ^ a[w+1]&b[w+1] ^ a[w+2]&b[w+2] ^ a[w+3]&b[w+3]
	}
	for ; w < len(a); w++ {
		acc ^= a[w] & b[w]
	}
	return bits.OnesCount64(acc)&1 == 1
}

// GaussJordan reduces the system in place to reduced row-echelon form
// over GF(2) — full Jordan elimination, clearing each pivot column from
// every other row, which shortens rows whenever the system has
// redundancy. All rows must share the same width, covering ncols
// columns. It reports whether an inconsistent 0 = 1 row arose.
func GaussJordan(rows []Row, ncols int) (conflict bool) {
	rank := 0
	for col := 0; col < ncols && rank < len(rows); col++ {
		w, b := col>>6, uint64(1)<<uint(col&63)
		pivot := -1
		for i := rank; i < len(rows); i++ {
			if rows[i].Bits[w]&b != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for i := range rows {
			if i != rank && rows[i].Bits[w]&b != 0 {
				rows[i].Xor(rows[rank])
			}
		}
		rank++
	}
	for i := range rows {
		if rows[i].RHS && rows[i].Empty() {
			return true
		}
	}
	return false
}
