// Package bdd implements reduced ordered binary decision diagrams with
// model counting and uniform witness sampling. It reproduces the
// BDD-based uniform-sampling baseline the DAC'14 paper cites in §3
// (Yuan et al., TCAD 2004 [27]): compile the constraint to a BDD, then
// draw witnesses by descending from the root, branching at each node
// with probability proportional to the model counts of its cofactors —
// exactly uniform, but subject to the BDD size blow-up that motivates
// hashing-based samplers ("BDD-based techniques are known to suffer
// from scalability problems", §3).
package bdd

import (
	"fmt"
	"math/big"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// ref is a node index; 0 and 1 are the terminal constants.
type ref = int32

const (
	falseRef ref = 0
	trueRef  ref = 1
)

type node struct {
	level  int32 // variable index (1-based); terminals use a sentinel
	lo, hi ref
}

// Builder constructs and operates on BDDs over n variables with the
// natural variable order x1 < x2 < ... < xn.
type Builder struct {
	n      int
	nodes  []node
	unique map[node]ref
	cache  map[[3]ref]ref // apply cache, op folded into key slot 0 sign
	limit  int            // node limit; 0 = unlimited
}

// ErrBlowup is returned when the node limit is exceeded — the failure
// mode the paper's §3 critique predicts for large instances.
var ErrBlowup = fmt.Errorf("bdd: node limit exceeded")

// NewBuilder returns a builder for formulas over n variables.
// limit bounds the node count (0 = unlimited).
func NewBuilder(n, limit int) *Builder {
	b := &Builder{
		n:      n,
		unique: map[node]ref{},
		cache:  map[[3]ref]ref{},
		limit:  limit,
	}
	sentinel := int32(n + 1)
	b.nodes = append(b.nodes, node{level: sentinel}, node{level: sentinel})
	return b
}

// NumNodes returns the number of live BDD nodes (including terminals).
func (b *Builder) NumNodes() int { return len(b.nodes) }

func (b *Builder) mk(level int32, lo, hi ref) (ref, error) {
	if lo == hi {
		return lo, nil
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := b.unique[key]; ok {
		return r, nil
	}
	if b.limit > 0 && len(b.nodes) >= b.limit {
		return 0, ErrBlowup
	}
	b.nodes = append(b.nodes, key)
	r := ref(len(b.nodes) - 1)
	b.unique[key] = r
	return r, nil
}

// Var returns the BDD for the literal x_v (or ¬x_v).
func (b *Builder) Var(v cnf.Var, neg bool) (ref, error) {
	if int(v) < 1 || int(v) > b.n {
		return 0, fmt.Errorf("bdd: variable %d out of range 1..%d", v, b.n)
	}
	if neg {
		return b.mk(int32(v), trueRef, falseRef)
	}
	return b.mk(int32(v), falseRef, trueRef)
}

type op int8

const (
	opAnd op = iota
	opOr
	opXor
)

// Apply combines two BDDs with a binary boolean operator.
func (b *Builder) Apply(o op, x, y ref) (ref, error) {
	switch o {
	case opAnd:
		if x == falseRef || y == falseRef {
			return falseRef, nil
		}
		if x == trueRef {
			return y, nil
		}
		if y == trueRef {
			return x, nil
		}
		if x == y {
			return x, nil
		}
	case opOr:
		if x == trueRef || y == trueRef {
			return trueRef, nil
		}
		if x == falseRef {
			return y, nil
		}
		if y == falseRef {
			return x, nil
		}
		if x == y {
			return x, nil
		}
	case opXor:
		if x == falseRef {
			return y, nil
		}
		if y == falseRef {
			return x, nil
		}
		if x == y {
			return falseRef, nil
		}
	}
	key := [3]ref{ref(o), x, y}
	if r, ok := b.cache[key]; ok {
		return r, nil
	}
	nx, ny := b.nodes[x], b.nodes[y]
	level := nx.level
	if ny.level < level {
		level = ny.level
	}
	xLo, xHi := x, x
	if nx.level == level {
		xLo, xHi = nx.lo, nx.hi
	}
	yLo, yHi := y, y
	if ny.level == level {
		yLo, yHi = ny.lo, ny.hi
	}
	lo, err := b.Apply(o, xLo, yLo)
	if err != nil {
		return 0, err
	}
	hi, err := b.Apply(o, xHi, yHi)
	if err != nil {
		return 0, err
	}
	r, err := b.mk(level, lo, hi)
	if err != nil {
		return 0, err
	}
	b.cache[key] = r
	return r, nil
}

// And is Apply(opAnd, ...).
func (b *Builder) And(x, y ref) (ref, error) { return b.Apply(opAnd, x, y) }

// Or is Apply(opOr, ...).
func (b *Builder) Or(x, y ref) (ref, error) { return b.Apply(opOr, x, y) }

// Xor is Apply(opXor, ...).
func (b *Builder) Xor(x, y ref) (ref, error) { return b.Apply(opXor, x, y) }

// Not complements a BDD (via XOR with true).
func (b *Builder) Not(x ref) (ref, error) { return b.Apply(opXor, x, trueRef) }

// CompileCNF builds the BDD of an entire formula (clauses and XOR
// clauses conjoined).
func (b *Builder) CompileCNF(f *cnf.Formula) (ref, error) {
	if f.NumVars > b.n {
		return 0, fmt.Errorf("bdd: formula has %d vars, builder has %d", f.NumVars, b.n)
	}
	root := trueRef
	for _, c := range f.Clauses {
		cl := falseRef
		for _, l := range c {
			lit, err := b.Var(l.Var(), l.Neg())
			if err != nil {
				return 0, err
			}
			if cl, err = b.Or(cl, lit); err != nil {
				return 0, err
			}
		}
		var err error
		if root, err = b.And(root, cl); err != nil {
			return 0, err
		}
	}
	for _, x := range f.XORs {
		xr := falseRef // parity accumulator: true iff an odd subset holds
		for _, v := range x.Vars {
			lit, err := b.Var(v, false)
			if err != nil {
				return 0, err
			}
			if xr, err = b.Xor(xr, lit); err != nil {
				return 0, err
			}
		}
		if !x.RHS {
			var err error
			if xr, err = b.Not(xr); err != nil {
				return 0, err
			}
		}
		var err error
		if root, err = b.And(root, xr); err != nil {
			return 0, err
		}
	}
	return root, nil
}

// Count returns the number of models of the BDD over all n variables.
func (b *Builder) Count(root ref) *big.Int {
	memo := map[ref]*big.Int{}
	var count func(r ref) *big.Int // models over levels level(r)..n
	count = func(r ref) *big.Int {
		if r == falseRef {
			return big.NewInt(0)
		}
		if r == trueRef {
			return big.NewInt(1)
		}
		if c, ok := memo[r]; ok {
			return c
		}
		nd := b.nodes[r]
		lo := new(big.Int).Mul(count(nd.lo), gap(nd.level+1, b.nodes[nd.lo].level))
		hi := new(big.Int).Mul(count(nd.hi), gap(nd.level+1, b.nodes[nd.hi].level))
		total := new(big.Int).Add(lo, hi)
		memo[r] = total
		return total
	}
	top := count(root)
	rootLevel := b.nodes[root].level
	return new(big.Int).Mul(top, gap(1, rootLevel))
}

// gap returns 2^(to-from) for skipped decision levels.
func gap(from, to int32) *big.Int {
	if to <= from {
		return big.NewInt(1)
	}
	return new(big.Int).Lsh(big.NewInt(1), uint(to-from))
}

// Sampler draws exactly-uniform witnesses from a compiled BDD by
// cofactor-weighted descent.
type Sampler struct {
	b    *Builder
	root ref
	memo map[ref]*big.Int
}

// NewSampler precomputes cofactor counts for root.
func (b *Builder) NewSampler(root ref) (*Sampler, error) {
	if root == falseRef {
		return nil, fmt.Errorf("bdd: formula is unsatisfiable")
	}
	s := &Sampler{b: b, root: root, memo: map[ref]*big.Int{}}
	s.count(root)
	return s, nil
}

func (s *Sampler) count(r ref) *big.Int {
	if r == falseRef {
		return big.NewInt(0)
	}
	if r == trueRef {
		return big.NewInt(1)
	}
	if c, ok := s.memo[r]; ok {
		return c
	}
	nd := s.b.nodes[r]
	lo := new(big.Int).Mul(s.count(nd.lo), gap(nd.level+1, s.b.nodes[nd.lo].level))
	hi := new(big.Int).Mul(s.count(nd.hi), gap(nd.level+1, s.b.nodes[nd.hi].level))
	total := new(big.Int).Add(lo, hi)
	s.memo[r] = total
	return total
}

// Sample returns one uniform witness over all n variables.
func (s *Sampler) Sample(rng *randx.RNG) cnf.Assignment {
	a := cnf.NewAssignment(s.b.n)
	level := int32(1)
	r := s.root
	for {
		// Free variables between `level` and the current node's level.
		nodeLevel := s.b.nodes[r].level
		for ; level < nodeLevel; level++ {
			a.Set(cnf.Var(level), rng.Bool())
		}
		if r == trueRef {
			return a
		}
		nd := s.b.nodes[r]
		lo := new(big.Int).Mul(s.count(nd.lo), gap(nd.level+1, s.b.nodes[nd.lo].level))
		hi := new(big.Int).Mul(s.count(nd.hi), gap(nd.level+1, s.b.nodes[nd.hi].level))
		total := new(big.Int).Add(lo, hi)
		pick := uniformBig(rng, total)
		if pick.Cmp(lo) < 0 {
			a.Set(cnf.Var(nd.level), false)
			r = nd.lo
		} else {
			a.Set(cnf.Var(nd.level), true)
			r = nd.hi
		}
		level = nd.level + 1
	}
}

// uniformBig draws a uniform integer in [0, n) by rejection sampling
// over bit-length-sized draws; n must be positive.
func uniformBig(rng *randx.RNG, n *big.Int) *big.Int {
	if n.Sign() <= 0 {
		panic("bdd: uniformBig with non-positive bound")
	}
	bits := n.BitLen()
	words := (bits + 63) / 64
	buf := make([]big.Word, words)
	for {
		for i := range buf {
			buf[i] = big.Word(rng.Uint64())
		}
		x := new(big.Int).SetBits(buf)
		// Mask down to the needed bit length.
		x.And(x, new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(bits)), big.NewInt(1)))
		if x.Cmp(n) < 0 {
			return x
		}
	}
}
