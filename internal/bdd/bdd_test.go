package bdd

import (
	"errors"
	"math"
	"math/big"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

func randomCNF(rng *randx.RNG, n, m, k int) *cnf.Formula {
	f := cnf.New(n)
	for i := 0; i < m; i++ {
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
		}
		f.AddClauseLits(c)
	}
	return f
}

func TestVarAndTerminals(t *testing.T) {
	b := NewBuilder(3, 0)
	x, err := b.Var(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if c := b.Count(x); c.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("count(x1) = %v, want 4 (of 8)", c)
	}
	nx, err := b.Var(1, true)
	if err != nil {
		t.Fatal(err)
	}
	andR, err := b.And(x, nx)
	if err != nil {
		t.Fatal(err)
	}
	if andR != falseRef {
		t.Fatal("x ∧ ¬x != false")
	}
	orR, err := b.Or(x, nx)
	if err != nil {
		t.Fatal(err)
	}
	if orR != trueRef {
		t.Fatal("x ∨ ¬x != true")
	}
}

func TestVarOutOfRange(t *testing.T) {
	b := NewBuilder(2, 0)
	if _, err := b.Var(3, false); err == nil {
		t.Fatal("out-of-range var accepted")
	}
}

func TestCompileCountMatchesBruteForce(t *testing.T) {
	rng := randx.New(111)
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(8)
		f := randomCNF(rng, n, rng.Intn(3*n), 3)
		if rng.Bool() {
			var vs []cnf.Var
			for v := 1; v <= n; v++ {
				if rng.Bool() {
					vs = append(vs, cnf.Var(v))
				}
			}
			if len(vs) > 0 {
				f.AddXOR(vs, rng.Bool())
			}
		}
		b := NewBuilder(n, 0)
		root, err := b.CompileCNF(f)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(sat.BruteForceCount(f))
		if got := b.Count(root); got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("iter %d: BDD count %v, brute force %d\n%s",
				iter, got, want, cnf.DIMACSString(f))
		}
	}
}

func TestSamplerUniform(t *testing.T) {
	// (x1 ∨ x2) over 3 vars: 6 witnesses; sampling must be uniform.
	f := cnf.New(3)
	f.AddClause(1, 2)
	b := NewBuilder(3, 0)
	root, err := b.CompileCNF(f)
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.NewSampler(root)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(112)
	counts := map[string]int{}
	const n = 6000
	vars := f.SamplingVars()
	for i := 0; i < n; i++ {
		a := s.Sample(rng)
		if !a.Satisfies(f) {
			t.Fatal("BDD sample violates formula")
		}
		counts[a.Project(vars)]++
	}
	if len(counts) != 6 {
		t.Fatalf("distinct = %d, want 6", len(counts))
	}
	for _, c := range counts {
		if math.Abs(float64(c)-n/6.0) > 6*math.Sqrt(n/6.0) {
			t.Fatalf("count %d far from uniform %d", c, n/6)
		}
	}
}

func TestSamplerValidityRandom(t *testing.T) {
	rng := randx.New(113)
	for iter := 0; iter < 40; iter++ {
		n := 3 + rng.Intn(6)
		f := randomCNF(rng, n, rng.Intn(2*n), 3)
		b := NewBuilder(n, 0)
		root, err := b.CompileCNF(f)
		if err != nil {
			t.Fatal(err)
		}
		if root == falseRef {
			continue
		}
		s, err := b.NewSampler(root)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			if a := s.Sample(rng); !a.Satisfies(f) {
				t.Fatalf("iter %d: invalid sample", iter)
			}
		}
	}
}

func TestSamplerRejectsUnsat(t *testing.T) {
	b := NewBuilder(1, 0)
	if _, err := b.NewSampler(falseRef); err == nil {
		t.Fatal("unsat sampler accepted")
	}
}

func TestNodeLimitBlowup(t *testing.T) {
	// A dense XOR ladder with an adversarial order still fits; instead
	// force blow-up with a tiny limit.
	rng := randx.New(114)
	f := randomCNF(rng, 30, 90, 3)
	b := NewBuilder(30, 50)
	_, err := b.CompileCNF(f)
	if err == nil {
		t.Skip("formula too easy to blow a 50-node limit")
	}
	if !errors.Is(err, ErrBlowup) {
		t.Fatalf("err = %v, want ErrBlowup", err)
	}
}

func TestHashConsing(t *testing.T) {
	b := NewBuilder(4, 0)
	x1, _ := b.Var(1, false)
	x2, _ := b.Var(2, false)
	a1, err := b.And(x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	before := b.NumNodes()
	a2, err := b.And(x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || b.NumNodes() != before {
		t.Fatal("hash consing failed: duplicate nodes created")
	}
}

func TestUniformBigBounds(t *testing.T) {
	rng := randx.New(115)
	n := big.NewInt(1000)
	seen := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		x := uniformBig(rng, n)
		if x.Sign() < 0 || x.Cmp(n) >= 0 {
			t.Fatalf("uniformBig out of range: %v", x)
		}
		seen[x.Int64()] = true
	}
	if len(seen) < 950 {
		t.Fatalf("only %d distinct values of 1000", len(seen))
	}
}
