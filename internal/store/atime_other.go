//go:build !linux

package store

import (
	"io/fs"
	"time"
)

// atimeOf falls back to the modification time on platforms without a
// portable access-time field. Get refreshes both stamps with Chtimes,
// so recency ordering still works.
func atimeOf(fi fs.FileInfo) time.Time {
	return fi.ModTime()
}
