// Package store implements the disk tier of the service's two-tier
// prepared-formula cache (DESIGN §12): a content-addressed directory of
// encoded core.Setup frames, keyed by the same fingerprint+parameters
// string as the RAM LRU, that survives daemon restarts.
//
// Design points, in the order a request meets them:
//
//   - Get reads the entry synchronously and runs the caller-supplied
//     Verify hook (the service passes core.VerifySetupFrame) before
//     returning bytes. A corrupt, truncated, or version-skewed entry is
//     never an error: it is quarantined (renamed to *.corrupt, so the
//     bytes survive for post-mortem but the path never matches again),
//     counted, and reported as a miss — the caller falls back to a cold
//     prepare. A hit refreshes the entry's timestamps, which is what
//     the eviction scan orders by (relatime/noatime mounts don't
//     maintain atime on reads, so the store maintains its own clock).
//
//   - Put enqueues to a background write-behind goroutine and returns
//     immediately: prepare latency never blocks on fsync. A full queue
//     drops the write (counted in WriteErrors) — the entry is simply
//     prepared cold again after the next restart. Writes are atomic:
//     the blob is written to a tmp- file, fsynced, then renamed into
//     place, so a crash mid-write can leave only tmp- litter (removed
//     by the next Open), never a torn entry.
//
//   - After each completed write the writer enforces MaxBytes by
//     scanning entries in ascending access-time order and deleting the
//     least recently used until the total fits.
//
// The ordering contract of the write-behind queue: writes for the same
// key apply in Put order (one writer goroutine, FIFO channel), and
// Close drains the queue before returning, so a clean shutdown persists
// every accepted Put. Flush exposes the same barrier to tests.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	entrySuffix   = ".setup"
	corruptSuffix = ".corrupt"
	tmpPrefix     = "tmp-"
)

// Options configures Open.
type Options struct {
	// Dir is the store directory, created if absent.
	Dir string
	// MaxBytes caps the total size of live entries; 0 means unlimited.
	// Enforced by the write-behind goroutine after each write.
	MaxBytes int64
	// QueueLen bounds the write-behind queue (default 64). A full queue
	// drops writes rather than blocking the preparing request.
	QueueLen int
	// Verify, when non-nil, validates every blob Get reads; a non-nil
	// error quarantines the entry and reports a miss.
	Verify func([]byte) error
	// Logger receives warnings (write failures, quarantines). Nil
	// discards them.
	Logger *slog.Logger
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits           int64 // Get found a valid entry
	Misses         int64 // Get found nothing usable (incl. quarantined reads)
	Writes         int64 // entries persisted by the write-behind goroutine
	WriteErrors    int64 // dropped writes: queue overflow or I/O failure
	Evictions      int64 // entries removed by the size-cap scan
	CorruptEntries int64 // entries quarantined (failed Verify or caller-reported)
	Bytes          int64 // total size of live entries
	Entries        int   // number of live entries
}

type job struct {
	name  string
	blob  []byte
	flush chan struct{} // non-nil: barrier — writer closes it when reached
}

// Store is a persistent prepared-formula store. All methods are safe
// for concurrent use.
type Store struct {
	dir      string
	maxBytes int64
	verify   func([]byte) error
	logger   *slog.Logger

	mu    sync.Mutex       // guards index, bytes, and counters
	index map[string]int64 // live entry filename → size
	bytes int64
	hits, misses, writes, writeErrors, evictions, corrupt int64

	qmu    sync.RWMutex // Put/Flush hold R, Close holds W to close the queue
	closed bool
	queue  chan job
	done   chan struct{} // closed when the writer goroutine exits
}

// Open opens (creating if needed) the store at opts.Dir, removes any
// tmp- litter from a previous crash, warm-scans the surviving entries,
// and starts the write-behind goroutine.
func Open(opts Options) (*Store, error) {
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 64
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	st := &Store{
		dir:      opts.Dir,
		maxBytes: opts.MaxBytes,
		verify:   opts.Verify,
		logger:   opts.Logger,
		index:    make(map[string]int64),
		queue:    make(chan job, opts.QueueLen),
		done:     make(chan struct{}),
	}
	ents, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			_ = os.Remove(filepath.Join(opts.Dir, name))
		case strings.HasSuffix(name, entrySuffix):
			if fi, err := e.Info(); err == nil {
				st.index[name] = fi.Size()
				st.bytes += fi.Size()
			}
		}
	}
	go st.writer()
	st.logger.Debug("store opened", "dir", st.dir, "entries", len(st.index), "bytes", st.bytes)
	return st, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// MaxBytes returns the configured size cap (0 = unlimited).
func (st *Store) MaxBytes() int64 { return st.maxBytes }

// entryName maps a cache key to its content-addressed filename.
func entryName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + entrySuffix
}

// Get returns the stored blob for key, or reports a miss. A blob that
// fails the Verify hook is quarantined and reported as a miss; a hit
// refreshes the entry's access time for the eviction scan.
func (st *Store) Get(key string) ([]byte, bool) {
	name := entryName(key)
	path := filepath.Join(st.dir, name)
	blob, err := os.ReadFile(path)
	if err != nil {
		st.mu.Lock()
		st.misses++
		st.mu.Unlock()
		return nil, false
	}
	if st.verify != nil {
		if verr := st.verify(blob); verr != nil {
			st.quarantine(name, verr)
			st.mu.Lock()
			st.misses++
			st.mu.Unlock()
			return nil, false
		}
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	st.mu.Lock()
	st.hits++
	st.mu.Unlock()
	return blob, true
}

// Put schedules the blob for persistence under key and returns without
// waiting for I/O. After Close, or when the queue is full, the write is
// dropped (counted in WriteErrors).
func (st *Store) Put(key string, blob []byte) {
	st.qmu.RLock()
	defer st.qmu.RUnlock()
	if st.closed {
		return
	}
	select {
	case st.queue <- job{name: entryName(key), blob: blob}:
	default:
		st.mu.Lock()
		st.writeErrors++
		st.mu.Unlock()
		st.logger.Warn("store write queue full, dropping entry", "dir", st.dir)
	}
}

// Quarantine reports an entry whose bytes passed the frame Verify but
// failed a deeper decode in the caller. The file is renamed aside and
// counted exactly like a Verify failure.
func (st *Store) Quarantine(key string, reason error) {
	st.quarantine(entryName(key), reason)
}

func (st *Store) quarantine(name string, reason error) {
	path := filepath.Join(st.dir, name)
	st.mu.Lock()
	if size, ok := st.index[name]; ok {
		delete(st.index, name)
		st.bytes -= size
	}
	st.corrupt++
	st.mu.Unlock()
	if err := os.Rename(path, path+corruptSuffix); err != nil {
		_ = os.Remove(path)
	}
	st.logger.Warn("store entry quarantined", "entry", name, "reason", reason)
}

// Flush blocks until every Put accepted before the call has been
// written (or dropped). It is a no-op after Close, which implies the
// same barrier.
func (st *Store) Flush() {
	st.qmu.RLock()
	if st.closed {
		st.qmu.RUnlock()
		return
	}
	ack := make(chan struct{})
	st.queue <- job{flush: ack}
	st.qmu.RUnlock()
	<-ack
}

// Close drains the write-behind queue and stops the writer goroutine.
// Idempotent; Get keeps working after Close (reads take no queue), but
// further Puts are dropped silently.
func (st *Store) Close() {
	st.qmu.Lock()
	if !st.closed {
		st.closed = true
		close(st.queue)
	}
	st.qmu.Unlock()
	<-st.done
}

// Stats returns a snapshot of the store's counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{
		Hits:           st.hits,
		Misses:         st.misses,
		Writes:         st.writes,
		WriteErrors:    st.writeErrors,
		Evictions:      st.evictions,
		CorruptEntries: st.corrupt,
		Bytes:          st.bytes,
		Entries:        len(st.index),
	}
}

// writer is the write-behind goroutine: FIFO over the queue, atomic
// tmp-write→fsync→rename per entry, size-cap eviction after each write.
func (st *Store) writer() {
	defer close(st.done)
	for j := range st.queue {
		if j.flush != nil {
			close(j.flush)
			continue
		}
		st.writeEntry(j.name, j.blob)
	}
}

func (st *Store) writeEntry(name string, blob []byte) {
	path := filepath.Join(st.dir, name)
	tmp, err := os.CreateTemp(st.dir, tmpPrefix+"*")
	if err == nil {
		_, err = tmp.Write(blob)
		if err == nil {
			err = tmp.Sync()
		}
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), path)
		}
		if err != nil {
			_ = os.Remove(tmp.Name())
		}
	}
	if err != nil {
		st.mu.Lock()
		st.writeErrors++
		st.mu.Unlock()
		st.logger.Warn("store write failed", "entry", name, "err", err)
		return
	}
	st.mu.Lock()
	old := st.index[name]
	st.index[name] = int64(len(blob))
	st.bytes += int64(len(blob)) - old
	st.writes++
	st.evictLocked()
	st.mu.Unlock()
}

// atimeFn is the access-time reader the eviction scan orders by. A
// package variable so tests can force the ModTime fallback that
// non-Linux platforms use (atime_other.go) — the recency ordering must
// hold there too, because Get refreshes mtime alongside atime.
var atimeFn = atimeOf

// evictLocked removes least-recently-accessed entries until the live
// set fits MaxBytes. Called with st.mu held, from the writer goroutine
// only. Ties break lexicographically so the scan is deterministic.
func (st *Store) evictLocked() {
	if st.maxBytes <= 0 || st.bytes <= st.maxBytes {
		return
	}
	type cand struct {
		name string
		size int64
		at   time.Time
	}
	cands := make([]cand, 0, len(st.index))
	for name, size := range st.index {
		c := cand{name: name, size: size}
		if fi, err := os.Stat(filepath.Join(st.dir, name)); err == nil {
			c.at = atimeFn(fi)
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].at.Equal(cands[j].at) {
			return cands[i].at.Before(cands[j].at)
		}
		return cands[i].name < cands[j].name
	})
	for _, c := range cands {
		if st.bytes <= st.maxBytes {
			break
		}
		_ = os.Remove(filepath.Join(st.dir, c.name))
		delete(st.index, c.name)
		st.bytes -= c.size
		st.evictions++
		st.logger.Debug("store entry evicted", "entry", c.name, "size", c.size)
	}
}
