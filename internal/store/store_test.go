package store

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testVerify accepts blobs starting with "OK".
func testVerify(b []byte) error {
	if len(b) >= 2 && string(b[:2]) == "OK" {
		return nil
	}
	return errors.New("bad magic")
}

func openTest(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	st, err := Open(Options{Dir: dir, MaxBytes: maxBytes, Verify: testVerify})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(st.Close)
	return st
}

func TestStorePutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, 0)

	if _, ok := st.Get("absent"); ok {
		t.Fatal("hit on empty store")
	}
	blob := []byte("OK hello")
	st.Put("k1", blob)
	st.Flush()
	got, ok := st.Get("k1")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = %q ok=%v, want %q", got, ok, blob)
	}
	s := st.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Writes != 1 || s.Entries != 1 || s.Bytes != int64(len(blob)) {
		t.Fatalf("stats %+v", s)
	}

	// Overwrite accounts for the size delta, not a second entry.
	longer := []byte("OK a longer payload")
	st.Put("k1", longer)
	st.Flush()
	if s := st.Stats(); s.Entries != 1 || s.Bytes != int64(len(longer)) {
		t.Fatalf("after overwrite: %+v", s)
	}
}

func TestStoreWarmScanAndTmpCleanup(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, 0)
	st.Put("k1", []byte("OK one"))
	st.Put("k2", []byte("OK two!"))
	st.Flush()
	st.Close()

	// Crash litter: a torn tmp file must be removed, not surface as an
	// entry; the live entries must be counted by the warm scan.
	tornPath := filepath.Join(dir, tmpPrefix+"torn")
	if err := os.WriteFile(tornPath, []byte("OK half-writ"), 0o600); err != nil {
		t.Fatal(err)
	}
	st2 := openTest(t, dir, 0)
	if s := st2.Stats(); s.Entries != 2 || s.Bytes != int64(len("OK one")+len("OK two!")) {
		t.Fatalf("warm scan: %+v", s)
	}
	if _, err := os.Stat(tornPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp litter survived Open: %v", err)
	}
	if got, ok := st2.Get("k2"); !ok || string(got) != "OK two!" {
		t.Fatalf("Get after restart = %q ok=%v", got, ok)
	}
}

func TestStoreQuarantineOnVerifyFailure(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, 0)
	st.Put("k1", []byte("OK fine"))
	st.Flush()

	// Corrupt the entry on disk behind the store's back.
	name := entryName("k1")
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte("XX eaten"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k1"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	s := st.Stats()
	if s.CorruptEntries != 1 || s.Misses != 1 || s.Entries != 0 {
		t.Fatalf("stats %+v", s)
	}
	if _, err := os.Stat(path + corruptSuffix); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The quarantined path never matches again: subsequent Gets miss
	// without re-counting corruption.
	if _, ok := st.Get("k1"); ok {
		t.Fatal("hit after quarantine")
	}
	if s := st.Stats(); s.CorruptEntries != 1 || s.Misses != 2 {
		t.Fatalf("stats after second get: %+v", s)
	}
}

func TestStoreCallerQuarantine(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, 0)
	st.Put("k1", []byte("OK frame-valid but semantically bad"))
	st.Flush()
	st.Quarantine("k1", errors.New("decode failed"))
	if s := st.Stats(); s.CorruptEntries != 1 || s.Entries != 0 {
		t.Fatalf("stats %+v", s)
	}
	if _, ok := st.Get("k1"); ok {
		t.Fatal("hit after caller quarantine")
	}
}

func TestStoreEvictionByAccessTime(t *testing.T) {
	dir := t.TempDir()
	blob := func(tag string) []byte { return append([]byte("OK "), []byte(tag+strings.Repeat("x", 96))...) } // 100 bytes
	st := openTest(t, dir, 250)

	st.Put("old", blob("a"))
	st.Put("mid", blob("b"))
	st.Flush()

	// Age the entries so the recency order is old < mid < new no matter
	// how fast the writes landed.
	now := time.Now()
	for key, age := range map[string]time.Duration{"old": 2 * time.Hour, "mid": time.Hour} {
		p := filepath.Join(dir, entryName(key))
		if err := os.Chtimes(p, now.Add(-age), now.Add(-age)); err != nil {
			t.Fatal(err)
		}
	}

	// Touch "old" via Get: it becomes the most recent, so the third
	// entry must evict "mid" instead.
	if _, ok := st.Get("old"); !ok {
		t.Fatal("miss on old")
	}
	st.Put("new", blob("c"))
	st.Flush()

	if _, ok := st.Get("mid"); ok {
		t.Fatal("mid survived eviction")
	}
	if _, ok := st.Get("old"); !ok {
		t.Fatal("old was evicted despite recent access")
	}
	if _, ok := st.Get("new"); !ok {
		t.Fatal("new was evicted")
	}
	s := st.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Bytes != 200 {
		t.Fatalf("stats %+v", s)
	}
}

// TestStoreEvictionModTimeFallback forces the non-Linux access-time
// fallback (atime_other.go reads ModTime) through the atimeFn seam —
// this container is Linux, so the real build tag can't exercise it —
// and checks the recency ordering still holds: Get refreshes mtime
// alongside atime with Chtimes, so a ModTime-ordered scan must evict
// the same least-recently-read entry an atime scan would.
func TestStoreEvictionModTimeFallback(t *testing.T) {
	prev := atimeFn
	atimeFn = func(fi fs.FileInfo) time.Time { return fi.ModTime() }
	t.Cleanup(func() { atimeFn = prev })

	dir := t.TempDir()
	blob := func(tag string) []byte { return append([]byte("OK "), []byte(tag+strings.Repeat("x", 96))...) } // 100 bytes
	st := openTest(t, dir, 250)

	st.Put("old", blob("a"))
	st.Put("mid", blob("b"))
	st.Flush()

	// Age the entries. Crucially, give "old" a FRESH atime but a stale
	// mtime: a scan still reading real atimes would keep it, while the
	// ModTime fallback must consider it stale until a Get refreshes it.
	now := time.Now()
	oldPath := filepath.Join(dir, entryName("old"))
	if err := os.Chtimes(oldPath, now, now.Add(-2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	midPath := filepath.Join(dir, entryName("mid"))
	if err := os.Chtimes(midPath, now.Add(-time.Hour), now.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}

	// Get("old") refreshes both stamps, so even under the fallback it is
	// now the most recent and the third entry must evict "mid".
	if _, ok := st.Get("old"); !ok {
		t.Fatal("miss on old")
	}
	st.Put("new", blob("c"))
	st.Flush()

	if _, ok := st.Get("mid"); ok {
		t.Fatal("mid survived eviction under the ModTime fallback")
	}
	if _, ok := st.Get("old"); !ok {
		t.Fatal("old was evicted despite its Get-refreshed mtime")
	}
	if _, ok := st.Get("new"); !ok {
		t.Fatal("new was evicted")
	}
	s := st.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Bytes != 200 {
		t.Fatalf("stats %+v", s)
	}
}

func TestStoreCloseDrainsQueue(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, 0)
	for i := 0; i < 10; i++ {
		st.Put("key"+string(rune('a'+i)), []byte("OK payload"))
	}
	st.Close()
	if s := st.Stats(); s.Writes != 10 || s.Entries != 10 {
		t.Fatalf("close did not drain: %+v", s)
	}
	// Post-close operations are safe no-ops.
	st.Put("late", []byte("OK late"))
	st.Flush()
	st.Close()
	if got, ok := st.Get("keya"); !ok || string(got) != "OK payload" {
		t.Fatalf("Get after close = %q ok=%v", got, ok)
	}
}

func TestStoreQueueOverflowDrops(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, QueueLen: 1, Verify: testVerify})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Park the writer on a barrier we control by filling slot 0 with a
	// flush whose ack nobody reads yet... simpler: saturate the queue
	// faster than the writer can drain by enqueueing many large jobs and
	// asserting that drops are counted as write errors, not lost silently.
	for i := 0; i < 1000; i++ {
		st.Put("k", []byte("OK x"))
	}
	st.Flush()
	s := st.Stats()
	if s.Writes+s.WriteErrors != 1000 {
		t.Fatalf("writes %d + drops %d != 1000", s.Writes, s.WriteErrors)
	}
}
