package store

import (
	"bytes"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/core"
	"unigen/internal/randx"
)

// FuzzDecodeSetup pins the two codec robustness properties the disk
// tier depends on: arbitrary bytes never panic the decoder (a hostile
// or rotted store entry must degrade to a cold prepare, not crash the
// daemon), and every accepted input is a fixpoint of Encode∘Decode (so
// a re-persisted entry is byte-identical and CRC-stable).
func FuzzDecodeSetup(f *testing.F) {
	valid := func(build func() *cnf.Formula) []byte {
		g := build()
		su, err := core.NewSetup(g, randx.New(core.PrepSeed(g, nil)), core.Options{
			Epsilon:        6,
			ApproxMCRounds: 5,
		})
		if err != nil {
			f.Fatalf("NewSetup: %v", err)
		}
		blob, err := su.Encode()
		if err != nil {
			f.Fatalf("Encode: %v", err)
		}
		return blob
	}

	easy := valid(func() *cnf.Formula {
		g := cnf.New(3)
		g.AddClause(1, 2)
		g.AddClause(-2, 3)
		return g
	})
	hashing := valid(func() *cnf.Formula {
		g := cnf.New(12)
		g.AddClause(11, 12)
		g.SamplingSet = []cnf.Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		return g
	})

	// ≥6 seeds: two valid blobs, a truncated valid blob, a bit-flipped
	// valid blob, a bare magic with garbage, and empty input.
	f.Add(easy)
	f.Add(hashing)
	f.Add(easy[:len(easy)/2])
	flipped := bytes.Clone(hashing)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Add([]byte("UGSU\x01\x00\xff\xff\xff\xffgarbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		_ = core.VerifySetupFrame(data) // must not panic
		su, err := core.DecodeSetup(data, core.Options{})
		if err != nil {
			return
		}
		re, err := su.Encode()
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("Encode∘Decode not a fixpoint:\n in  %x\n out %x", data, re)
		}
	})
}
