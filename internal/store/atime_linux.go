//go:build linux

package store

import (
	"io/fs"
	"syscall"
	"time"
)

// atimeOf returns the file's access time. The eviction scan orders
// entries by it; Get refreshes it explicitly with Chtimes because
// relatime/noatime mounts do not update atime on reads.
func atimeOf(fi fs.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}
