package stats

import (
	"math"
	"testing"

	"unigen/internal/randx"
)

func TestCountOccurrences(t *testing.T) {
	c := CountOccurrences([]string{"a", "b", "a", "a"})
	if c["a"] != 3 || c["b"] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestOccurrenceHistogram(t *testing.T) {
	counts := map[string]int{"a": 3, "b": 1, "c": 1, "d": 3}
	h := OccurrenceHistogram(counts)
	if len(h) != 2 {
		t.Fatalf("histogram = %v", h)
	}
	if h[0] != (Point{1, 2}) || h[1] != (Point{3, 2}) {
		t.Fatalf("histogram = %v", h)
	}
}

func TestAddZeroClass(t *testing.T) {
	counts := map[string]int{"a": 2}
	h := AddZeroClass(OccurrenceHistogram(counts), counts, 5)
	if h[0] != (Point{0, 4}) {
		t.Fatalf("histogram = %v", h)
	}
	// No zero class when all witnesses observed.
	h2 := AddZeroClass(OccurrenceHistogram(counts), counts, 1)
	if len(h2) != 1 {
		t.Fatalf("histogram = %v", h2)
	}
}

func TestTVDUniformPerfect(t *testing.T) {
	counts := map[string]int{"a": 25, "b": 25, "c": 25, "d": 25}
	if tvd := TVDFromUniform(counts, 100, 4); tvd != 0 {
		t.Fatalf("tvd = %v, want 0", tvd)
	}
}

func TestTVDUniformSkewed(t *testing.T) {
	counts := map[string]int{"a": 100}
	tvd := TVDFromUniform(counts, 100, 4)
	if math.Abs(tvd-0.75) > 1e-12 {
		t.Fatalf("tvd = %v, want 0.75", tvd)
	}
}

func TestTVDBetweenIdentical(t *testing.T) {
	a := map[string]int{"x": 10, "y": 20}
	if tvd := TVDBetween(a, a, 30, 30); tvd != 0 {
		t.Fatalf("tvd = %v", tvd)
	}
}

func TestTVDBetweenDisjoint(t *testing.T) {
	a := map[string]int{"x": 10}
	b := map[string]int{"y": 10}
	if tvd := TVDBetween(a, b, 10, 10); math.Abs(tvd-1) > 1e-12 {
		t.Fatalf("tvd = %v, want 1", tvd)
	}
}

func TestChiSquareUniformSamples(t *testing.T) {
	rng := randx.New(3)
	const cells = 64
	const n = 64 * 100
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[string(rune('A'+rng.Intn(cells)))]++
	}
	stat, df, err := ChiSquareUniform(counts, n, cells)
	if err != nil {
		t.Fatal(err)
	}
	if df != cells-1 {
		t.Fatalf("df = %d", df)
	}
	if crit := ChiSquareCritical999(df); stat > crit {
		t.Fatalf("uniform sample rejected: stat %.1f > crit %.1f", stat, crit)
	}
}

func TestChiSquareDetectsSkew(t *testing.T) {
	const cells = 16
	const n = 1600
	counts := map[string]int{}
	// Half the mass on one cell.
	counts["hot"] = n / 2
	per := n / 2 / (cells - 1)
	for i := 1; i < cells; i++ {
		counts[string(rune('A'+i))] = per
	}
	stat, df, err := ChiSquareUniform(counts, n, cells)
	if err != nil {
		t.Fatal(err)
	}
	if crit := ChiSquareCritical999(df); stat <= crit {
		t.Fatalf("skewed sample accepted: stat %.1f <= crit %.1f", stat, crit)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquareUniform(nil, 10, 1); err == nil {
		t.Fatal("1 cell accepted")
	}
	if _, _, err := ChiSquareUniform(nil, 10, 100); err == nil {
		t.Fatal("tiny expected count accepted")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	if math.Abs(s-2.138) > 0.01 {
		t.Fatalf("std = %v", s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty input")
	}
	if _, s := MeanStd([]float64{3}); s != 0 {
		t.Fatal("single input std")
	}
}
