// Package stats provides the statistical machinery behind the paper's
// uniformity evaluation: occurrence histograms (the Figure 1 series),
// total-variation distance, and a chi-square uniformity test.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CountOccurrences tallies how many times each witness key appears in a
// sample stream.
func CountOccurrences(keys []string) map[string]int {
	out := make(map[string]int, len(keys))
	for _, k := range keys {
		out[k]++
	}
	return out
}

// Point is one (x, y) pair of a histogram series.
type Point struct {
	X int // occurrence count
	Y int // number of distinct witnesses generated exactly X times
}

// OccurrenceHistogram converts per-witness counts into the Figure 1
// series: for each occurrence count x, the number of distinct witnesses
// generated exactly x times. Witnesses never generated are NOT included
// (pass totalWitnesses to AddZeroClass to account for them).
func OccurrenceHistogram(counts map[string]int) []Point {
	freq := map[int]int{}
	for _, c := range counts {
		freq[c]++
	}
	xs := make([]int, 0, len(freq))
	for x := range freq {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	out := make([]Point, len(xs))
	for i, x := range xs {
		out[i] = Point{X: x, Y: freq[x]}
	}
	return out
}

// AddZeroClass prepends the x=0 point for witnesses that were never
// generated, given the total size of the witness space.
func AddZeroClass(hist []Point, counts map[string]int, totalWitnesses int) []Point {
	missing := totalWitnesses - len(counts)
	if missing <= 0 {
		return hist
	}
	return append([]Point{{X: 0, Y: missing}}, hist...)
}

// TVDFromUniform computes the total-variation distance between the
// empirical distribution (counts over n samples) and the uniform
// distribution over numCells cells. Cells never observed contribute
// their full uniform mass.
func TVDFromUniform(counts map[string]int, n, numCells int) float64 {
	if n == 0 || numCells == 0 {
		return 0
	}
	u := 1.0 / float64(numCells)
	tvd := 0.0
	for _, c := range counts {
		tvd += math.Abs(float64(c)/float64(n) - u)
	}
	tvd += float64(numCells-len(counts)) * u // unobserved cells
	return tvd / 2
}

// TVDBetween computes the total-variation distance between two
// empirical distributions with sample sizes na and nb.
func TVDBetween(a, b map[string]int, na, nb int) float64 {
	if na == 0 || nb == 0 {
		return 0
	}
	keys := map[string]struct{}{}
	for k := range a {
		keys[k] = struct{}{}
	}
	for k := range b {
		keys[k] = struct{}{}
	}
	tvd := 0.0
	for k := range keys {
		tvd += math.Abs(float64(a[k])/float64(na) - float64(b[k])/float64(nb))
	}
	return tvd / 2
}

// ChiSquareUniform returns the chi-square statistic and degrees of
// freedom for the hypothesis that counts (over n samples) are drawn
// uniformly from numCells cells.
func ChiSquareUniform(counts map[string]int, n, numCells int) (stat float64, df int, err error) {
	if numCells <= 1 {
		return 0, 0, fmt.Errorf("stats: need at least 2 cells, got %d", numCells)
	}
	expected := float64(n) / float64(numCells)
	if expected < 5 {
		return 0, 0, fmt.Errorf("stats: expected cell count %.2f < 5; increase samples", expected)
	}
	observed := 0
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
		observed++
	}
	// Unobserved cells each contribute expected.
	stat += float64(numCells-observed) * expected
	return stat, numCells - 1, nil
}

// ChiSquareCritical999 approximates the 99.9th percentile of the
// chi-square distribution with df degrees of freedom via the
// Wilson–Hilferty transform; adequate for the df ≫ 1 regime the
// uniformity tests run in.
func ChiSquareCritical999(df int) float64 {
	const z = 3.0902 // 99.9th percentile of N(0,1)
	k := float64(df)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// MeanStd returns the sample mean and standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)-1))
	return mean, std
}
