package bsat

import (
	"reflect"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// TestSessionWitnessesStableAcrossCompaction is the session-level
// relocation gate: two sessions fed identical hash sequences must
// produce bit-identical witness sequences when one of them is forced
// through an arena compaction between every pair of BSAT calls. A
// compaction may only move clauses — any influence on search order
// (watch list order, reasons, learnt index) is a bug this test
// catches.
func TestSessionWitnessesStableAcrossCompaction(t *testing.T) {
	rng := randx.New(0x60c60c)
	for iter := 0; iter < 60; iter++ {
		n := 4 + rng.Intn(8)
		f := randomFormula(rng, n)
		cfg := sat.Config{Seed: uint64(iter), MaxConflicts: 200000}
		plain := NewSession(f, Options{Solver: cfg})
		gcd := NewSession(f, Options{Solver: cfg})
		vars := plain.SamplingSet()
		hrng1 := randx.New(uint64(iter) * 77)
		hrng2 := randx.New(uint64(iter) * 77)
		for call := 0; call < 6; call++ {
			var h1, h2 *hashfam.Hash
			if call > 0 {
				// Keep the two hash RNG streams in lockstep: consume the
				// row-count draw from both.
				m := 1 + hrng1.Intn(3)
				if m2 := 1 + hrng2.Intn(3); m2 != m {
					t.Fatal("hash RNG streams out of sync")
				}
				h1 = hashfam.Draw(hrng1, vars, m)
				h2 = hashfam.Draw(hrng2, vars, m)
			}
			res1 := plain.Enumerate(10, h1)
			res2 := gcd.Enumerate(10, h2)
			gcd.s.CompactArena()
			k1 := witnessKeys(t, res1.Witnesses, vars)
			k2 := witnessKeys(t, res2.Witnesses, vars)
			if !reflect.DeepEqual(k1, k2) {
				t.Fatalf("iter %d call %d: witness sequences diverge across compaction: %d vs %d witnesses",
					iter, call, len(k1), len(k2))
			}
			if res1.Exhausted != res2.Exhausted || res1.BudgetExceeded != res2.BudgetExceeded {
				t.Fatalf("iter %d call %d: outcome flags diverge", iter, call)
			}
		}
	}
}

// TestSessionArenaStatsExposed: the clause-DB metrics must flow out of
// the session's per-call stats delta — Learned counts up, ArenaBytes
// reports the live footprint rather than a (meaningless) delta.
func TestSessionArenaStatsExposed(t *testing.T) {
	rng := randx.New(0x57a75)
	f := randomFormula(rng, 10)
	f.AddClause(1, 2, 3) // ensure at least one clause exists
	sess := NewSession(f, Options{Solver: sat.Config{Seed: 3}})
	var sawArena bool
	for call := 0; call < 5; call++ {
		var h *hashfam.Hash
		if call > 0 {
			h = hashfam.Draw(rng, sess.SamplingSet(), 1+rng.Intn(2))
		}
		res := sess.Enumerate(8, h)
		if res.Stats.ArenaBytes > 0 {
			sawArena = true
		}
		if res.Stats.ArenaBytes < 0 || res.Stats.Compactions < 0 {
			t.Fatalf("negative gauge/counter in per-call delta: %+v", res.Stats)
		}
	}
	if !sawArena {
		t.Fatal("ArenaBytes never reported a live footprint")
	}
}

// TestSessionStatsIncludeRetireGC: the GC work a call performs at its
// cell boundary (releasing the previous cell's blocking clauses,
// compacting the arena) must appear in that call's stats delta — the
// snapshot is taken before retire, not after.
func TestSessionStatsIncludeRetireGC(t *testing.T) {
	f := cnf.New(6)
	f.AddClause(1, 2, 3)
	sess := NewSession(f, Options{Solver: sat.Config{Seed: 1}})
	res := sess.Enumerate(8, nil)
	if len(res.Witnesses) != 8 {
		t.Fatalf("first call found %d witnesses, want 8", len(res.Witnesses))
	}
	// The second call releases 8 six-literal blocking clauses — nearly
	// the whole arena — so its boundary GC must compact.
	res = sess.Enumerate(8, nil)
	if res.Stats.Compactions == 0 {
		t.Fatalf("second call's delta shows no compaction despite releasing the previous cell: %+v", res.Stats)
	}
}
