package bsat

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/gf2"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// TestPackedScalarSessionDifferential is the tentpole gate of the
// bit-packed XOR engine at the BSAT layer: a session on the packed
// engine and a session on the legacy scalar engine, fed the identical
// randomized formula/hash sequence, must produce identical projected
// witness sets and identical Exhausted/BudgetExceeded outcomes on every
// call.
func TestPackedScalarSessionDifferential(t *testing.T) {
	rng := randx.New(0xb17)
	iters := 50
	if testing.Short() {
		iters = 15
	}
	for iter := 0; iter < iters; iter++ {
		n := 4 + rng.Intn(6)
		f := randomFormula(rng, n)
		vars := f.SamplingVars()
		bound := (1 << uint(len(vars))) + 1
		packed := NewSession(f, Options{Solver: sat.Config{Seed: uint64(iter)}})
		scalar := NewSession(f, Options{Solver: sat.Config{Seed: uint64(iter), ScalarXOR: true}})
		for call, calls := 0, 3+rng.Intn(8); call < calls; call++ {
			var h *hashfam.Hash
			if rng.Intn(4) != 0 {
				h = hashfam.Draw(rng, vars, 1+rng.Intn(len(vars)))
			}
			pres := packed.Enumerate(bound, h)
			sres := scalar.Enumerate(bound, h)
			if pres.Exhausted != sres.Exhausted || pres.BudgetExceeded != sres.BudgetExceeded {
				t.Fatalf("iter %d call %d: outcome packed{exh:%v bud:%v} vs scalar{exh:%v bud:%v}",
					iter, call, pres.Exhausted, pres.BudgetExceeded, sres.Exhausted, sres.BudgetExceeded)
			}
			pk := witnessKeys(t, pres.Witnesses, vars)
			sk := witnessKeys(t, sres.Witnesses, vars)
			if !equalKeys(pk, sk) {
				t.Fatalf("iter %d call %d: projected witness sets differ (%d vs %d witnesses)",
					iter, call, len(pk), len(sk))
			}
		}
	}
}

// emptyRowHash builds a hash whose single row has no variables —
// exactly what hashfam.Draw emits with probability 2^-|S| per row.
func emptyRowHash(vars []cnf.Var, rhs bool) *hashfam.Hash {
	return &hashfam.Hash{
		Vars: vars,
		Rows: []gf2.Row{{Bits: make([]uint64, gf2.Words(len(vars))), RHS: rhs}},
	}
}

// TestEmptyHashRow is the regression test for the drawn-empty-row edge:
// a row with no variables and RHS=true is an immediate 0=1 — the cell
// must come back provably empty (Exhausted, zero witnesses) on both
// engines, without the solver stumbling into the contradiction, and the
// session must survive to serve later calls. With RHS=false the row is
// a tautology and must not change the enumeration.
func TestEmptyHashRow(t *testing.T) {
	f := cnf.New(4)
	f.AddClause(1, 2)
	f.SamplingSet = []cnf.Var{1, 2, 3, 4}
	vars := f.SamplingVars()
	for _, scalar := range []bool{false, true} {
		sess := NewSession(f, Options{Solver: sat.Config{ScalarXOR: scalar}})

		res := sess.Enumerate(100, emptyRowHash(vars, true))
		if !res.Exhausted || len(res.Witnesses) != 0 || res.BudgetExceeded {
			t.Fatalf("scalar=%v: 0=1 row: got %d witnesses, exhausted=%v",
				scalar, len(res.Witnesses), res.Exhausted)
		}

		// Tautological empty row: same witnesses as no hash at all.
		base := sess.Enumerate(100, nil)
		taut := sess.Enumerate(100, emptyRowHash(vars, false))
		if !taut.Exhausted || !equalKeys(
			witnessKeys(t, taut.Witnesses, vars),
			witnessKeys(t, base.Witnesses, vars)) {
			t.Fatalf("scalar=%v: 0=0 row changed the enumeration", scalar)
		}

		// A mixed hash where a later row is 0=1 must also fail the cell
		// fast, after earlier rows were installed.
		mixed := &hashfam.Hash{Vars: vars, Rows: make([]gf2.Row, 2)}
		r0 := gf2.NewRow(len(vars))
		r0.Set(0)
		r0.Set(1)
		mixed.Rows[0] = r0
		mixed.Rows[1] = gf2.Row{Bits: make([]uint64, gf2.Words(len(vars))), RHS: true}
		res = sess.Enumerate(100, mixed)
		if !res.Exhausted || len(res.Witnesses) != 0 {
			t.Fatalf("scalar=%v: mixed 0=1 hash: got %d witnesses", scalar, len(res.Witnesses))
		}

		// The session stays healthy afterwards.
		after := sess.Enumerate(100, nil)
		if !after.Exhausted || len(after.Witnesses) != len(base.Witnesses) {
			t.Fatalf("scalar=%v: session unhealthy after empty-row cells", scalar)
		}
	}
}
