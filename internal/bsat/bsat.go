// Package bsat implements the BSAT(F, N) subroutine of UniGen and
// ApproxMC: bounded model enumeration returning up to N witnesses of F
// that are distinct on the sampling set.
//
// Following the DAC'14 implementation notes (§4, "Implementation
// issues"), blocking clauses are restricted to the sampling-set
// variables: because the sampling set is an independent support, two
// witnesses agreeing on it are the same witness for counting and
// sampling purposes, and short blocking clauses keep the solver fast.
package bsat

import (
	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/sat"
)

// Result is the outcome of a bounded enumeration call.
type Result struct {
	// Witnesses holds up to N witnesses, distinct on the sampling set.
	Witnesses []cnf.Assignment
	// Exhausted is true when the enumeration proved there are no further
	// witnesses (the final solver call returned UNSAT), i.e.
	// len(Witnesses) = |R_F↓S| when len(Witnesses) < N.
	Exhausted bool
	// BudgetExceeded is true when a solver call ran out of conflict
	// budget; the reproduction's analogue of the paper's 2500-second
	// BSAT timeout. Witnesses found before exhaustion are still
	// returned.
	BudgetExceeded bool
	// Stats aggregates solver statistics for the call.
	Stats sat.Stats
}

// Options configures enumeration.
type Options struct {
	// SamplingSet restricts blocking clauses (and witness distinctness)
	// to these variables. Empty means all variables of the formula.
	SamplingSet []cnf.Var
	// Hash, when non-nil, conjoins random XOR constraints
	// h(samplingVars) = α to the formula for this call only.
	Hash *hashfam.Hash
	// Solver configuration (conflict budget, Gauss-Jordan, seed).
	Solver sat.Config
}

// Enumerate returns up to n witnesses of f (conjoined with opts.Hash if
// set), pairwise distinct on the sampling set.
func Enumerate(f *cnf.Formula, n int, opts Options) Result {
	vars := opts.SamplingSet
	if len(vars) == 0 {
		vars = f.SamplingVars()
	}
	solverCfg := opts.Solver
	if len(solverCfg.PriorityVars) == 0 && len(vars) < f.NumVars {
		// Branch on the sampling set first: for Tseitin-style formulas
		// the rest of the assignment then follows by propagation, which
		// makes enumeration nearly conflict-free.
		solverCfg.PriorityVars = vars
	}
	s := sat.New(f, solverCfg)
	if opts.Hash != nil {
		// Hash rows go straight into the solver rather than onto a clone
		// of the formula: BSAT is called thousands of times per sampling
		// session and the clone dominated its cost.
		for _, r := range opts.Hash.Rows {
			if !s.AddXOR(r.Vars, r.RHS) {
				return Result{Exhausted: true, Stats: s.Stats()}
			}
		}
	}
	var res Result
	for len(res.Witnesses) < n {
		switch s.Solve() {
		case sat.Sat:
			m := s.Model()
			res.Witnesses = append(res.Witnesses, m)
			block := make(cnf.Clause, 0, len(vars))
			for _, v := range vars {
				block = append(block, cnf.MkLit(v, m.Get(v)))
			}
			if !s.AddClause(block) {
				res.Exhausted = true
				res.Stats = s.Stats()
				return res
			}
		case sat.Unsat:
			res.Exhausted = true
			res.Stats = s.Stats()
			return res
		default:
			res.BudgetExceeded = true
			res.Stats = s.Stats()
			return res
		}
	}
	res.Stats = s.Stats()
	return res
}

// Count returns min(|R_F↓S|, n): the number of sampling-set-distinct
// witnesses up to the bound n. It is the |Y| quantity tested against
// hiThresh/loThresh in Algorithm 1.
func Count(f *cnf.Formula, n int, opts Options) (int, Result) {
	res := Enumerate(f, n, opts)
	return len(res.Witnesses), res
}
