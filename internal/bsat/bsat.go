// Package bsat implements the BSAT(F, N) subroutine of UniGen and
// ApproxMC: bounded model enumeration returning up to N witnesses of F
// that are distinct on the sampling set.
//
// Following the DAC'14 implementation notes (§4, "Implementation
// issues"), blocking clauses are restricted to the sampling-set
// variables: because the sampling set is an independent support, two
// witnesses agreeing on it are the same witness for counting and
// sampling purposes, and short blocking clauses keep the solver fast.
//
// Two entry points are provided. Enumerate is the stateless call: it
// builds a solver, enumerates, and throws the solver away. Session is
// the incremental engine behind a whole sampling or counting run: the
// base formula is loaded once, hash XOR rows and per-cell blocking
// clauses are installed as removable constraints (activation literals
// passed to Solve as assumptions), and learned clauses survive from one
// BSAT call to the next. UniGen issues thousands of BSAT calls per
// session, so not re-ingesting the formula and not discarding the
// learned-clause database on every call is the dominant hot-path win.
package bsat

import (
	"errors"
	"slices"
	"sync/atomic"

	"unigen/internal/cnf"
	"unigen/internal/faultpoint"
	"unigen/internal/hashfam"
	"unigen/internal/sat"
)

// Result is the outcome of a bounded enumeration call.
type Result struct {
	// Witnesses holds up to N witnesses, distinct on the sampling set.
	Witnesses []cnf.Assignment
	// Exhausted is true when the enumeration proved there are no further
	// witnesses (the final solver call returned UNSAT), i.e.
	// len(Witnesses) = |R_F↓S| when len(Witnesses) < N.
	Exhausted bool
	// BudgetExceeded is true when a solver call ran out of conflict
	// budget; the reproduction's analogue of the paper's 2500-second
	// BSAT timeout. Witnesses found before exhaustion are still
	// returned.
	BudgetExceeded bool
	// Stats aggregates solver statistics for the call. For Session
	// enumerations this is the per-call delta, not the cumulative total.
	Stats sat.Stats
}

// Options configures enumeration.
type Options struct {
	// SamplingSet restricts blocking clauses (and witness distinctness)
	// to these variables. Empty means all variables of the formula.
	SamplingSet []cnf.Var
	// Hash, when non-nil, conjoins random XOR constraints
	// h(samplingVars) = α to the formula for this call only. Only read
	// by the stateless Enumerate; sessions take the hash per call.
	Hash *hashfam.Hash
	// Solver configuration (conflict budget, Gauss-Jordan, seed).
	Solver sat.Config
}

// rebuildEvery bounds selector-variable accumulation: after this many
// removable constraints the session rebuilds its solver from the base
// formula, reclaiming the per-variable arrays (and, incidentally,
// retiring any stale learned clauses reduceDB has not reclaimed yet).
const rebuildEvery = 1 << 15

// Session is an incremental BSAT engine: one solver reused across every
// Enumerate call of a sampling/counting run. Not safe for concurrent
// use. Proof recording (sat.Config.RecordProof) is not supported on
// sessions — guarded constraints and release units are not part of the
// axiom stream a checker expects; use the stateless Enumerate for
// proof-carrying calls.
type Session struct {
	f    *cnf.Formula
	nv   int // f.NumVars at session start; models are truncated to it
	vars []cnf.Var
	cfg  sat.Config

	s        *sat.Solver
	colMap   []int32         // hash column → solver XOR column (nil: identity)
	retired  []*sat.Selector // constraints of the previous call, released lazily
	assumps  []cnf.Lit       // scratch: activation literals for the current call
	base     []cnf.Lit       // standing assumption literals (delta requests)
	blockBuf cnf.Clause      // scratch: blocking clause, reused across witnesses
	selCount int             // selectors allocated since the last (re)build
	calls    int             // Enumerate calls served (inprocessing cadence)
}

// NewSession builds the solver for f once. opts.Hash is ignored; pass
// the per-call hash to Enumerate.
func NewSession(f *cnf.Formula, opts Options) *Session {
	vars := opts.SamplingSet
	if len(vars) == 0 {
		vars = f.SamplingVars()
	}
	cfg := opts.Solver
	if len(cfg.PriorityVars) == 0 && len(vars) < f.NumVars {
		// Branch on the sampling set first: for Tseitin-style formulas
		// the rest of the assignment then follows by propagation, which
		// makes enumeration nearly conflict-free.
		cfg.PriorityVars = vars
	}
	cfg.RecordProof = false
	se := &Session{f: f, nv: f.NumVars, vars: vars, cfg: cfg}
	se.s = sat.New(f, cfg)
	se.s.SetModelBound(se.nv)
	se.registerColumns()
	return se
}

// registerColumns pins the sampling set into the solver's packed XOR
// column space, in hash-column order, so that drawn rows install by
// word copy (colMap == nil) unless base-formula XOR clauses claimed
// early columns first. Called after every (re)build.
func (se *Session) registerColumns() {
	if se.cfg.ScalarXOR {
		se.colMap = nil
		return
	}
	se.colMap = se.s.XORColumns(se.vars)
}

// SamplingSet returns the variables blocking clauses range over.
func (se *Session) SamplingSet() []cnf.Var { return se.vars }

// SetAssumptions installs standing assumption literals: every subsequent
// Enumerate solves F ∧ lits ∧ h, i.e. the session temporarily behaves as
// a session over the conjoined formula. The literals ride each Solve
// call as plain assumptions — never installed as constraints — so they
// cost nothing to set or clear, survive rebuilds, and cannot taint the
// solver. Pass nil to clear. The slice is copied.
func (se *Session) SetAssumptions(lits []cnf.Lit) {
	se.base = append(se.base[:0], lits...)
}

// Assumptions returns the standing assumption literals (shared slice;
// callers must not mutate).
func (se *Session) Assumptions() []cnf.Lit { return se.base }

// SetInterrupt repoints the cooperative-interrupt flag for both the
// session's stall-polling and the underlying solver. Pooled sessions use
// this at check-out/check-in so each request owns its own flag.
func (se *Session) SetInterrupt(intr *atomic.Bool) {
	se.cfg.Interrupt = intr
	se.s.SetInterrupt(intr)
}

// SetBudgets replaces the per-Solve conflict/propagation budgets on the
// live solver and on the config used for future rebuilds. Zero means
// unlimited.
func (se *Session) SetBudgets(maxConflicts, maxPropagations int64) {
	se.cfg.MaxConflicts = maxConflicts
	se.cfg.MaxPropagations = maxPropagations
	se.s.SetBudgets(maxConflicts, maxPropagations)
}

// rebuild replaces the solver with a fresh one loaded from the base
// formula, dropping all removable constraints and learned clauses.
func (se *Session) rebuild() {
	se.s = sat.New(se.f, se.cfg)
	se.s.SetModelBound(se.nv)
	se.registerColumns()
	se.retired = se.retired[:0]
	se.selCount = 0
}

// retire releases the previous call's removable constraints — or
// rebuilds the solver outright when its level-0 state may depend on a
// removable XOR (see sat.Solver.Tainted) or when selector variables
// have accumulated past the rebuild threshold. Reports whether the
// solver was rebuilt (its stats restart from zero).
func (se *Session) retire() bool {
	if se.s.Tainted() || se.selCount >= rebuildEvery {
		se.rebuild()
		return true
	}
	for _, sel := range se.retired {
		se.s.Release(sel)
	}
	se.retired = se.retired[:0]
	// Learned clauses guarded by the released selectors are now
	// permanently satisfied; reclaim them (and compact the arena when
	// waste has built up) so propagation does not keep visiting dead
	// weight for the rest of the session.
	se.s.CollectGarbage()
	return false
}

// interruptRaised reports whether the session's solver interrupt flag
// is set — the predicate injected stalls poll so that chaos-test
// "hung solver" faults still honor deadlines, cancellation, and drain.
func (se *Session) interruptRaised() bool {
	return se.cfg.Interrupt != nil && se.cfg.Interrupt.Load()
}

// Enumerate returns up to n witnesses of f ∧ h, pairwise distinct on the
// sampling set. The hash rows are installed as removable XOR
// constraints and the previous call's hash and blocking clauses are
// released first, so consecutive calls reuse all accumulated solver
// state. h may be nil (enumeration of f itself).
func (se *Session) Enumerate(n int, h *hashfam.Hash) Result {
	// Chaos injection points (inert unless a test arms them). A stalled
	// call that the interrupt cuts short reports budget exhaustion — the
	// same verdict an interrupted real search produces — and a spurious
	// UNSAT reports an exhausted empty cell. Both return before touching
	// the session, so its retire/install state is exactly as if the call
	// never happened.
	if err := faultpoint.FireWait(faultpoint.SolverStall, se.interruptRaised); err != nil {
		if errors.Is(err, faultpoint.ErrInterrupted) {
			return Result{BudgetExceeded: true}
		}
	}
	if faultpoint.Fire(faultpoint.SolverUnsat) != nil {
		return Result{Exhausted: true}
	}
	before := se.s.Stats()
	rebuilt := se.retire()
	if rebuilt {
		before = se.s.Stats() // rebuilt solver: stats restarted from zero
	}
	se.calls++
	if every := se.cfg.InprocessEvery; every > 0 && !rebuilt && se.calls%every == 0 {
		// Session boundary: the previous cell's hash rows and blocking
		// clauses are released, so no removable XOR is live — the one
		// state Inprocess accepts. Its work lands in this call's stats
		// delta (vivified/probed counters flow up with the cell).
		se.s.Inprocess()
	}
	sels := se.retired[:0]
	acts := se.assumps[:0]
	emptyCell := false
	if h != nil {
		var cols []int32
		if !se.cfg.ScalarXOR {
			cols = se.colMap
			if !slices.Equal(h.Vars, se.vars) {
				// Hash drawn over a different variable space than the
				// registered sampling set (e.g. a full-support hash):
				// build this call's column mapping instead of assuming
				// the cached one.
				cols = se.s.XORColumns(h.Vars)
			}
		}
		for i := range h.Rows {
			r := &h.Rows[i]
			if r.Empty() {
				// A drawn row with no variables: 0 = 1 proves the cell
				// empty outright (fail the cell fast, no solver call);
				// 0 = 0 constrains nothing and is skipped. The row still
				// counts in the caller's XOR stats — it was issued.
				if r.RHS {
					emptyCell = true
					break
				}
				continue
			}
			var sel *sat.Selector
			if se.cfg.ScalarXOR {
				sel = se.s.AddXORRemovable(h.RowVars(i), r.RHS)
			} else {
				// Packed install: the drawn bits flow into the solver
				// through the column map, no []cnf.Var ever materialized.
				sel = se.s.AddPackedXORRemovable(r.Bits, r.RHS, cols)
			}
			sels = append(sels, sel)
			acts = append(acts, sel.Lit())
		}
	}
	// Standing assumptions (delta requests) ride every Solve of the cell
	// after the hash activation literals; order within a call is fixed,
	// so enumeration under a given (hash, assumptions) pair is
	// deterministic.
	acts = append(acts, se.base...)
	var res Result
	if emptyCell {
		res.Exhausted = true
		se.selCount += len(sels)
		se.retired = sels
		se.assumps = acts
		res.Stats = statsDelta(se.s.Stats(), before)
		return res
	}
	var blockSel *sat.Selector // one selector guards every blocking clause of this cell
loop:
	for len(res.Witnesses) < n {
		switch se.s.Solve(acts...) {
		case sat.Sat:
			// Model length is capped at nv+1 by SetModelBound, so
			// selector variables never leak into witnesses.
			m := se.s.Model()
			res.Witnesses = append(res.Witnesses, m)
			se.blockBuf = se.blockBuf[:0]
			for _, v := range se.vars {
				se.blockBuf = append(se.blockBuf, cnf.MkLit(v, m.Get(v)))
			}
			if blockSel == nil {
				blockSel = se.s.NewClauseSelector()
				sels = append(sels, blockSel)
				acts = append(acts, blockSel.Lit())
			}
			se.s.AddClauseToSelector(blockSel, se.blockBuf)
		case sat.Unsat:
			res.Exhausted = true
			break loop
		default:
			res.BudgetExceeded = true
			break loop
		}
	}
	se.selCount += len(sels)
	se.retired = sels
	se.assumps = acts
	res.Stats = statsDelta(se.s.Stats(), before)
	return res
}

// Count returns min(|R_{F∧h}↓S|, n) via the session, plus the full result.
func (se *Session) Count(n int, h *hashfam.Hash) (int, Result) {
	res := se.Enumerate(n, h)
	return len(res.Witnesses), res
}

func statsDelta(after, before sat.Stats) sat.Stats {
	return sat.Stats{
		Decisions:    after.Decisions - before.Decisions,
		Propagations: after.Propagations - before.Propagations,
		Conflicts:    after.Conflicts - before.Conflicts,
		Restarts:     after.Restarts - before.Restarts,
		Learned:      after.Learned - before.Learned,
		RemovedDB:    after.RemovedDB - before.RemovedDB,
		XORProps:     after.XORProps - before.XORProps,
		GaussUnits:   after.GaussUnits - before.GaussUnits,
		Compactions:  after.Compactions - before.Compactions,
		ArenaBytes:   after.ArenaBytes, // gauge: report the current footprint, not a delta

		VivifiedLits:     after.VivifiedLits - before.VivifiedLits,
		SubsumedLearnts:  after.SubsumedLearnts - before.SubsumedLearnts,
		ProbedLits:       after.ProbedLits - before.ProbedLits,
		FailedLits:       after.FailedLits - before.FailedLits,
		Rephases:         after.Rephases - before.Rephases,
		ChronoBacktracks: after.ChronoBacktracks - before.ChronoBacktracks,
	}
}

// Enumerate returns up to n witnesses of f (conjoined with opts.Hash if
// set), pairwise distinct on the sampling set. It is the stateless
// variant: a throwaway solver with the hash and blocking clauses
// installed permanently — no guard literals, no assumptions — so its
// search trajectory (and therefore every seeded baseline and test)
// matches the pre-session behaviour exactly.
func Enumerate(f *cnf.Formula, n int, opts Options) Result {
	vars := opts.SamplingSet
	if len(vars) == 0 {
		vars = f.SamplingVars()
	}
	solverCfg := opts.Solver
	if len(solverCfg.PriorityVars) == 0 && len(vars) < f.NumVars {
		solverCfg.PriorityVars = vars
	}
	s := sat.New(f, solverCfg)
	if opts.Hash != nil {
		// Hash rows go straight into the solver rather than onto a clone
		// of the formula: BSAT is called thousands of times per sampling
		// session and the clone dominated its cost. (This stateless path
		// materializes row variables; the hot path is Session, which
		// installs the packed bits directly.)
		for i := range opts.Hash.Rows {
			if !s.AddXOR(opts.Hash.RowVars(i), opts.Hash.Rows[i].RHS) {
				return Result{Exhausted: true, Stats: s.Stats()}
			}
		}
	}
	var res Result
	var block cnf.Clause // reused across witnesses; AddClause copies
	for len(res.Witnesses) < n {
		switch s.Solve() {
		case sat.Sat:
			m := s.Model()
			res.Witnesses = append(res.Witnesses, m)
			block = block[:0]
			for _, v := range vars {
				block = append(block, cnf.MkLit(v, m.Get(v)))
			}
			if !s.AddClause(block) {
				res.Exhausted = true
				res.Stats = s.Stats()
				return res
			}
		case sat.Unsat:
			res.Exhausted = true
			res.Stats = s.Stats()
			return res
		default:
			res.BudgetExceeded = true
			res.Stats = s.Stats()
			return res
		}
	}
	res.Stats = s.Stats()
	return res
}

// Count returns min(|R_F↓S|, n): the number of sampling-set-distinct
// witnesses up to the bound n. It is the |Y| quantity tested against
// hiThresh/loThresh in Algorithm 1.
func Count(f *cnf.Formula, n int, opts Options) (int, Result) {
	res := Enumerate(f, n, opts)
	return len(res.Witnesses), res
}
