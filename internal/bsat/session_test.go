package bsat

import (
	"sort"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// randomFormula builds a random 3-CNF (optionally with an XOR clause or
// two) over n vars, with a random sampling set.
func randomFormula(rng *randx.RNG, n int) *cnf.Formula {
	f := cnf.New(n)
	for i, m := 0, rng.Intn(2*n); i < m; i++ {
		c := make(cnf.Clause, 0, 3)
		for j := 0; j < 3; j++ {
			c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
		}
		f.AddClauseLits(c)
	}
	for i, m := 0, rng.Intn(2); i < m; i++ {
		var vs []cnf.Var
		for v := 1; v <= n; v++ {
			if rng.Bool() {
				vs = append(vs, cnf.Var(v))
			}
		}
		if len(vs) >= 2 {
			f.AddXOR(vs, rng.Bool())
		}
	}
	if rng.Bool() {
		var ss []cnf.Var
		for v := 1; v <= n; v++ {
			if rng.Bool() {
				ss = append(ss, cnf.Var(v))
			}
		}
		if len(ss) > 0 {
			f.SamplingSet = ss
		}
	}
	return f
}

func witnessKeys(t *testing.T, ws []cnf.Assignment, vars []cnf.Var) []string {
	t.Helper()
	keys := make([]string, 0, len(ws))
	seen := map[string]bool{}
	for _, w := range ws {
		k := w.Project(vars)
		if seen[k] {
			t.Fatal("duplicate projected witness within one enumeration")
		}
		seen[k] = true
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSessionMatchesEnumerate is the differential property test of the
// incremental engine: one Session serving a whole sequence of hash
// cells (interleaved with hash-free calls) must report exactly the same
// projected witness sets, Exhausted, and BudgetExceeded outcomes as a
// fresh stateless Enumerate for every call.
func TestSessionMatchesEnumerate(t *testing.T) {
	rng := randx.New(0x5e55)
	for iter := 0; iter < 60; iter++ {
		n := 4 + rng.Intn(6)
		f := randomFormula(rng, n)
		vars := f.SamplingVars()
		bound := (1 << uint(len(vars))) + 1 // enough to always exhaust
		opts := Options{Solver: sat.Config{Seed: uint64(iter)}}
		sess := NewSession(f, opts)
		for call, calls := 0, 3+rng.Intn(8); call < calls; call++ {
			var h *hashfam.Hash
			if rng.Intn(4) != 0 {
				h = hashfam.Draw(rng, vars, 1+rng.Intn(len(vars)))
			}
			got := sess.Enumerate(bound, h)
			o := opts
			o.Hash = h
			want := Enumerate(f, bound, o)
			if got.Exhausted != want.Exhausted || got.BudgetExceeded != want.BudgetExceeded {
				t.Fatalf("iter %d call %d: flags (exhausted %v, budget %v), want (%v, %v)",
					iter, call, got.Exhausted, got.BudgetExceeded,
					want.Exhausted, want.BudgetExceeded)
			}
			gk := witnessKeys(t, got.Witnesses, vars)
			wk := witnessKeys(t, want.Witnesses, vars)
			if !equalKeys(gk, wk) {
				t.Fatalf("iter %d call %d: session found %d witnesses, fresh %d (m=%v)\n%s",
					iter, call, len(gk), len(wk), h != nil, cnf.DIMACSString(f))
			}
			for wi, w := range got.Witnesses {
				if !w.Satisfies(f) {
					t.Fatalf("iter %d call %d: session witness %d violates F", iter, call, wi)
				}
				if h != nil && !h.Evaluate(w) {
					t.Fatalf("iter %d call %d: session witness %d outside hash cell", iter, call, wi)
				}
			}
		}
	}
}

// TestSessionBoundedEnumeration: when the bound cuts enumeration short,
// both engines return exactly n valid, distinct witnesses (the sets may
// legitimately differ).
func TestSessionBoundedEnumeration(t *testing.T) {
	rng := randx.New(0xb0b0)
	for iter := 0; iter < 30; iter++ {
		n := 5 + rng.Intn(5)
		f := cnf.New(n)
		f.AddClause(1, 2) // keep it easy: near-2^n witnesses
		vars := f.SamplingVars()
		bound := 3 + rng.Intn(4)
		sess := NewSession(f, Options{})
		for call := 0; call < 4; call++ {
			h := hashfam.Draw(rng, vars, 1)
			got := sess.Enumerate(bound, h)
			want := Enumerate(f, bound, Options{Hash: h})
			if len(got.Witnesses) != len(want.Witnesses) {
				t.Fatalf("iter %d call %d: session %d witnesses, fresh %d",
					iter, call, len(got.Witnesses), len(want.Witnesses))
			}
			if got.Exhausted != want.Exhausted {
				t.Fatalf("iter %d call %d: exhausted %v, want %v",
					iter, call, got.Exhausted, want.Exhausted)
			}
			witnessKeys(t, got.Witnesses, vars) // distinctness
			for _, w := range got.Witnesses {
				if !w.Satisfies(f) || !h.Evaluate(w) {
					t.Fatalf("iter %d call %d: invalid witness", iter, call)
				}
			}
		}
	}
}

// TestSessionBudgetExceeded: conflict/propagation budgets flow through
// the session exactly as through the stateless path.
func TestSessionBudgetExceeded(t *testing.T) {
	rng := randx.New(14)
	n := 40
	f := cnf.New(n)
	for i := 0; i < 170; i++ {
		c := make(cnf.Clause, 0, 3)
		for j := 0; j < 3; j++ {
			c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
		}
		f.AddClauseLits(c)
	}
	opts := Options{Solver: sat.Config{MaxPropagations: 1}}
	sess := NewSession(f, opts)
	got := sess.Enumerate(1<<20, nil)
	want := Enumerate(f, 1<<20, opts)
	if !got.BudgetExceeded || !want.BudgetExceeded {
		t.Fatalf("budget flags: session %v, fresh %v, want both true",
			got.BudgetExceeded, want.BudgetExceeded)
	}
}

// TestSessionUnsatFormula: sessions report UNSAT formulas as exhausted
// with no witnesses, like the stateless path, call after call.
func TestSessionUnsatFormula(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(1)
	f.AddClause(-1)
	sess := NewSession(f, Options{})
	for call := 0; call < 3; call++ {
		res := sess.Enumerate(10, nil)
		if len(res.Witnesses) != 0 || !res.Exhausted {
			t.Fatalf("call %d: %d witnesses, exhausted=%v", call, len(res.Witnesses), res.Exhausted)
		}
	}
}

// TestSessionRebuildKeepsContract: after a solver rebuild (the
// taint/threshold escape hatch) the session must keep truncating
// witnesses to the base formula's variables and enumerating correctly.
func TestSessionRebuildKeepsContract(t *testing.T) {
	rng := randx.New(0x4eb1)
	f := cnf.New(6)
	f.AddClause(1, 2)
	vars := f.SamplingVars()
	sess := NewSession(f, Options{})
	h := hashfam.Draw(rng, vars, 2)
	before := sess.Enumerate(1<<7, h)
	sess.rebuild()
	after := sess.Enumerate(1<<7, h)
	if !equalKeys(witnessKeys(t, before.Witnesses, vars), witnessKeys(t, after.Witnesses, vars)) {
		t.Fatal("witness set changed across a rebuild with the same hash")
	}
	for _, w := range after.Witnesses {
		if len(w) != f.NumVars+1 {
			t.Fatalf("witness length %d after rebuild, want %d", len(w), f.NumVars+1)
		}
	}
	if !after.Exhausted {
		t.Fatal("post-rebuild enumeration not exhausted")
	}
}

// TestSessionStatsDelta: per-call stats are deltas, not cumulative.
func TestSessionStatsDelta(t *testing.T) {
	f := cnf.New(6)
	f.AddClause(1, 2, 3)
	sess := NewSession(f, Options{})
	r1 := sess.Enumerate(1<<7, nil)
	r2 := sess.Enumerate(1<<7, nil)
	if r1.Stats.Decisions == 0 {
		t.Fatal("first call reported zero decisions")
	}
	if r2.Stats.Decisions < 0 || r2.Stats.Propagations < 0 {
		t.Fatal("negative per-call stats delta")
	}
}
