package bsat

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

func TestEnumerateAll(t *testing.T) {
	// (x1 ∨ x2) has 3 models over {x1,x2}; x3 free doubles to 6 total,
	// but projected enumeration on {1,2} must return exactly 3.
	f := cnf.New(3)
	f.AddClause(1, 2)
	res := Enumerate(f, 100, Options{SamplingSet: []cnf.Var{1, 2}})
	if len(res.Witnesses) != 3 {
		t.Fatalf("got %d witnesses, want 3", len(res.Witnesses))
	}
	if !res.Exhausted {
		t.Fatal("enumeration should be exhausted")
	}
	seen := map[string]bool{}
	for _, w := range res.Witnesses {
		if !w.Satisfies(f) {
			t.Fatalf("witness %v invalid", w)
		}
		k := w.Project([]cnf.Var{1, 2})
		if seen[k] {
			t.Fatal("duplicate projected witness")
		}
		seen[k] = true
	}
}

func TestEnumerateBounded(t *testing.T) {
	f := cnf.New(4) // empty formula: 16 models
	res := Enumerate(f, 5, Options{})
	if len(res.Witnesses) != 5 {
		t.Fatalf("got %d, want 5", len(res.Witnesses))
	}
	if res.Exhausted {
		t.Fatal("should not be exhausted at 5 of 16")
	}
}

func TestEnumerateUnsat(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(1)
	f.AddClause(-1)
	res := Enumerate(f, 10, Options{})
	if len(res.Witnesses) != 0 || !res.Exhausted {
		t.Fatalf("unsat formula: %d witnesses, exhausted=%v", len(res.Witnesses), res.Exhausted)
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	rng := randx.New(11)
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(7)
		f := cnf.New(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			c := make(cnf.Clause, 0, 3)
			for j := 0; j < 3; j++ {
				c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
			}
			f.AddClauseLits(c)
		}
		want := sat.BruteForceCount(f)
		got, res := Count(f, 1<<uint(n), Options{})
		if !res.Exhausted && got < 1<<uint(n) {
			t.Fatalf("iter %d: not exhausted", iter)
		}
		if got != want {
			t.Fatalf("iter %d: Count = %d, brute force %d", iter, got, want)
		}
	}
}

func TestProjectedCountMatchesBruteForce(t *testing.T) {
	rng := randx.New(12)
	for iter := 0; iter < 60; iter++ {
		n := 3 + rng.Intn(6)
		f := cnf.New(n)
		m := rng.Intn(2 * n)
		for i := 0; i < m; i++ {
			c := make(cnf.Clause, 0, 3)
			for j := 0; j < 3; j++ {
				c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
			}
			f.AddClauseLits(c)
		}
		// Random projection set.
		var proj []cnf.Var
		for v := 1; v <= n; v++ {
			if rng.Bool() {
				proj = append(proj, cnf.Var(v))
			}
		}
		if len(proj) == 0 {
			proj = []cnf.Var{1}
		}
		want := sat.BruteForceProjectedCount(f, proj)
		got, _ := Count(f, 1<<uint(n), Options{SamplingSet: proj})
		if got != want {
			t.Fatalf("iter %d: projected Count = %d, brute force %d (proj=%v)\n%s",
				iter, got, want, proj, cnf.DIMACSString(f))
		}
	}
}

func TestEnumerateWithHash(t *testing.T) {
	// Conjoining a random hash must yield witnesses inside the cell.
	rng := randx.New(13)
	n := 8
	f := cnf.New(n)
	f.AddClause(1, 2, 3)
	vars := f.SamplingVars()
	for iter := 0; iter < 30; iter++ {
		h := hashfam.Draw(rng, vars, 3)
		res := Enumerate(f, 1000, Options{Hash: h})
		if !res.Exhausted {
			t.Fatalf("iter %d: not exhausted", iter)
		}
		for _, w := range res.Witnesses {
			if !w.Satisfies(f) {
				t.Fatalf("iter %d: witness violates F", iter)
			}
			if !h.Evaluate(w) {
				t.Fatalf("iter %d: witness outside hash cell", iter)
			}
		}
	}
}

func TestBudgetExceeded(t *testing.T) {
	// A formula with many models and a 1-conflict budget may hit the
	// budget mid-enumeration; verify the flag plumbing (enumeration of
	// easy formulas may still complete, so use a harder instance).
	rng := randx.New(14)
	n := 40
	f := cnf.New(n)
	for i := 0; i < 170; i++ {
		c := make(cnf.Clause, 0, 3)
		for j := 0; j < 3; j++ {
			c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
		}
		f.AddClauseLits(c)
	}
	res := Enumerate(f, 1<<20, Options{Solver: sat.Config{MaxConflicts: 1}})
	if !res.Exhausted && !res.BudgetExceeded {
		t.Fatal("neither exhausted nor budget-exceeded")
	}
}
