package bsat

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// inprocSolver is the all-knobs-on solver config used by the session
// lifetime tests: inprocess on every call so each cell boundary runs
// vivification/probing/subsumption against the arena the next call's
// removable constraints and Release bookkeeping depend on.
func inprocSolver(seed uint64) sat.Config {
	return sat.Config{
		Seed:            seed,
		InprocessEvery:  1,
		DirtyWindow:     true,
		RephaseEvery:    2,
		ChronoBacktrack: 2,
	}
}

// TestSessionInprocessingMatchesEnumerate is the session-lifetime
// differential: a Session that inprocesses at every cell boundary must
// keep serving exactly the witness sets a fresh stateless Enumerate
// (no inprocessing) reports, call after call — proving Release and the
// selector bookkeeping survive vivification and subsumption rewriting
// the clause arena underneath them.
func TestSessionInprocessingMatchesEnumerate(t *testing.T) {
	rng := randx.New(0x1bca)
	var probed int64
	for iter := 0; iter < 60; iter++ {
		n := 4 + rng.Intn(6)
		f := randomFormula(rng, n)
		vars := f.SamplingVars()
		bound := (1 << uint(len(vars))) + 1
		sess := NewSession(f, Options{Solver: inprocSolver(uint64(iter))})
		for call, calls := 0, 3+rng.Intn(8); call < calls; call++ {
			var h *hashfam.Hash
			if rng.Intn(4) != 0 {
				h = hashfam.Draw(rng, vars, 1+rng.Intn(len(vars)))
			}
			got := sess.Enumerate(bound, h)
			probed += got.Stats.ProbedLits
			want := Enumerate(f, bound, Options{Hash: h, Solver: sat.Config{Seed: uint64(iter)}})
			if got.Exhausted != want.Exhausted || got.BudgetExceeded != want.BudgetExceeded {
				t.Fatalf("iter %d call %d: flags (exhausted %v, budget %v), want (%v, %v)",
					iter, call, got.Exhausted, got.BudgetExceeded,
					want.Exhausted, want.BudgetExceeded)
			}
			gk := witnessKeys(t, got.Witnesses, vars)
			wk := witnessKeys(t, want.Witnesses, vars)
			if !equalKeys(gk, wk) {
				t.Fatalf("iter %d call %d: inprocessing session found %d witnesses, fresh %d\n%s",
					iter, call, len(gk), len(wk), cnf.DIMACSString(f))
			}
			for wi, w := range got.Witnesses {
				if !w.Satisfies(f) {
					t.Fatalf("iter %d call %d: witness %d violates F after inprocessing", iter, call, wi)
				}
				if h != nil && !h.Evaluate(w) {
					t.Fatalf("iter %d call %d: witness %d outside hash cell", iter, call, wi)
				}
			}
		}
	}
	if probed == 0 {
		t.Fatal("sessions never ran an inprocessing probe — the differential tested nothing")
	}
}

// TestDirtyWindowBitIdentical pins the dirty-window contract: skipping
// the fully-assigned level-0 prefix of packed XOR rows must not change
// a single decision, so the witness *sequences* (order included) of two
// sessions differing only in DirtyWindow are identical.
func TestDirtyWindowBitIdentical(t *testing.T) {
	rng := randx.New(0xd1f7)
	for iter := 0; iter < 40; iter++ {
		n := 5 + rng.Intn(6)
		f := randomFormula(rng, n)
		vars := f.SamplingVars()
		bound := 1 << uint(len(vars))

		cfgOn := sat.Config{Seed: uint64(iter), DirtyWindow: true}
		cfgOff := sat.Config{Seed: uint64(iter)}
		on := NewSession(f, Options{Solver: cfgOn})
		off := NewSession(f, Options{Solver: cfgOff})
		hashRNG1 := randx.New(uint64(iter) * 7)
		hashRNG2 := randx.New(uint64(iter) * 7)
		for call := 0; call < 5; call++ {
			var h1, h2 *hashfam.Hash
			if call%3 != 0 {
				h1 = hashfam.Draw(hashRNG1, vars, 1+call%len(vars))
				h2 = hashfam.Draw(hashRNG2, vars, 1+call%len(vars))
			}
			a := on.Enumerate(bound, h1)
			b := off.Enumerate(bound, h2)
			if len(a.Witnesses) != len(b.Witnesses) || a.Exhausted != b.Exhausted {
				t.Fatalf("iter %d call %d: dirty window changed outcomes (%d/%v vs %d/%v)",
					iter, call, len(a.Witnesses), a.Exhausted, len(b.Witnesses), b.Exhausted)
			}
			for wi := range a.Witnesses {
				if a.Witnesses[wi].Project(vars) != b.Witnesses[wi].Project(vars) {
					t.Fatalf("iter %d call %d: witness %d differs with dirty window on", iter, call, wi)
				}
			}
		}
	}
}
