package simplify

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

func TestUnitPropagationFixpoint(t *testing.T) {
	f := cnf.New(4)
	f.AddClause(1)
	f.AddClause(-1, 2)
	f.AddClause(-2, 3)
	f.AddClause(3, 4)
	res, err := Simplify(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnitsFixed < 3 {
		t.Fatalf("fixed %d units, want >= 3", res.UnitsFixed)
	}
	if sat.BruteForceCount(res.F) != sat.BruteForceCount(f) {
		t.Fatal("unit propagation changed the model count")
	}
}

func TestUnitConflictDetected(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(1)
	f.AddClause(-1)
	res, err := Simplify(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sat.BruteForceCount(res.F) != 0 {
		t.Fatal("conflict not preserved")
	}
}

func TestSubsumptionRemovesSuperset(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1, 2)
	f.AddClause(1, 2, 3) // subsumed
	res, err := Simplify(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subsumed != 1 {
		t.Fatalf("subsumed = %d, want 1", res.Subsumed)
	}
	if len(res.F.Clauses) != 1 {
		t.Fatalf("clauses = %d, want 1", len(res.F.Clauses))
	}
}

func TestSelfSubsumptionStrengthens(t *testing.T) {
	// (1 ∨ 2) and (1 ∨ ¬2 ∨ 3): resolving on 2 gives (1 ∨ 3) ⊂ second,
	// so the second strengthens to (1 ∨ 3).
	f := cnf.New(3)
	f.AddClause(1, 2)
	f.AddClause(1, -2, 3)
	res, err := Simplify(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SelfSubsumed < 1 {
		t.Fatalf("selfSubsumed = %d, want >= 1", res.SelfSubsumed)
	}
	if sat.BruteForceCount(res.F) != sat.BruteForceCount(f) {
		t.Fatal("self-subsumption changed the model count")
	}
}

func TestXORRecoveryRoundTrip(t *testing.T) {
	// Encode x1⊕x2⊕x3 = 1 as 4 CNF clauses; recovery must produce the
	// native XOR back.
	f := cnf.New(3)
	f.AddClause(1, 2, 3)
	f.AddClause(1, -2, -3)
	f.AddClause(-1, 2, -3)
	f.AddClause(-1, -2, 3)
	res, err := Simplify(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.XORsRecovered != 1 {
		t.Fatalf("recovered = %d, want 1", res.XORsRecovered)
	}
	if len(res.F.XORs) != 1 || !res.F.XORs[0].RHS {
		t.Fatalf("XOR = %+v, want rhs=true", res.F.XORs)
	}
	if len(res.F.Clauses) != 0 {
		t.Fatalf("clauses left = %d, want 0", len(res.F.Clauses))
	}
	if sat.BruteForceCount(res.F) != 4 {
		t.Fatalf("count = %d, want 4", sat.BruteForceCount(res.F))
	}
}

func TestXORRecoveryEvenParity(t *testing.T) {
	// x1⊕x2⊕x3 = 0.
	f := cnf.New(3)
	f.AddClause(-1, -2, -3)
	f.AddClause(-1, 2, 3)
	f.AddClause(1, -2, 3)
	f.AddClause(1, 2, -3)
	res, err := Simplify(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.XORsRecovered != 1 || res.F.XORs[0].RHS {
		t.Fatalf("recovered = %d, xors = %+v", res.XORsRecovered, res.F.XORs)
	}
}

func TestXORRecoveryIgnoresPartialGroups(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1, 2, 3)
	f.AddClause(1, -2, -3)
	f.AddClause(-1, 2, -3)
	// 4th clause missing.
	res, err := Simplify(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.XORsRecovered != 0 {
		t.Fatalf("recovered = %d from incomplete group", res.XORsRecovered)
	}
}

func TestXORRecoveryTseitinGate(t *testing.T) {
	// The 4-clause Tseitin encoding of z = a⊕b is the XOR z⊕a⊕b = 0.
	f := cnf.New(3)
	f.AddClause(-3, 1, 2)
	f.AddClause(-3, -1, -2)
	f.AddClause(3, -1, 2)
	f.AddClause(3, 1, -2)
	res, err := Simplify(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.XORsRecovered != 1 {
		t.Fatalf("recovered = %d, want 1", res.XORsRecovered)
	}
}

func TestBVEPreservesProjectedCount(t *testing.T) {
	rng := randx.New(101)
	for iter := 0; iter < 80; iter++ {
		n := 4 + rng.Intn(6)
		f := cnf.New(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			c := make(cnf.Clause, 0, 3)
			for j := 0; j < 3; j++ {
				c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
			}
			f.AddClauseLits(c)
		}
		// Protect the first half as the sampling set.
		for v := 1; v <= n/2; v++ {
			f.SamplingSet = append(f.SamplingSet, cnf.Var(v))
		}
		before := sat.BruteForceProjectedCount(f, f.SamplingSet)
		res, err := Simplify(f, Options{BVE: true})
		if err != nil {
			t.Fatal(err)
		}
		res.F.NumVars = f.NumVars // keep the var universe for brute force
		after := sat.BruteForceProjectedCount(res.F, f.SamplingSet)
		if before != after {
			t.Fatalf("iter %d: projected count %d -> %d after BVE (%d vars eliminated)\nbefore:\n%s\nafter:\n%s",
				iter, before, after, res.VarsEliminated,
				cnf.DIMACSString(f), cnf.DIMACSString(res.F))
		}
	}
}

func TestSimplifyEquisatisfiableRandom(t *testing.T) {
	rng := randx.New(102)
	for iter := 0; iter < 120; iter++ {
		n := 3 + rng.Intn(7)
		f := cnf.New(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
			}
			f.AddClauseLits(c)
		}
		res, err := Simplify(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res.F.NumVars = f.NumVars
		// Without BVE every pass is equivalence-preserving: model count
		// over the full universe must be identical.
		if got, want := sat.BruteForceCount(res.F), sat.BruteForceCount(f); got != want {
			t.Fatalf("iter %d: count %d -> %d\nbefore:\n%s\nafter:\n%s",
				iter, want, got, cnf.DIMACSString(f), cnf.DIMACSString(res.F))
		}
	}
}

func TestSimplifyDoesNotMutateInput(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1)
	f.AddClause(1, 2, 3)
	before := cnf.DIMACSString(f)
	if _, err := Simplify(f, Options{BVE: true}); err != nil {
		t.Fatal(err)
	}
	if cnf.DIMACSString(f) != before {
		t.Fatal("input mutated")
	}
}
