// Package simplify provides CNF preprocessing in the style of
// CryptoMiniSAT/SatELite, the solver layer the DAC'14 implementation
// builds on: top-level unit propagation, subsumption and
// self-subsuming resolution, bounded variable elimination (BVE), and —
// most relevant to UniGen — recovery of native XOR clauses from their
// CNF (Tseitin) encodings, which is how parity structure written out
// as plain CNF becomes visible to the XOR-aware solver again.
//
// All transformations are equivalence-preserving EXCEPT bounded
// variable elimination, which preserves satisfiability and, crucially
// for sampling, preserves the witness distribution PROJECTED ON the
// sampling set as long as eliminated variables are outside it: BVE is
// therefore only applied to non-sampling variables.
package simplify

import (
	"sort"

	"unigen/internal/cnf"
)

// Options selects passes. The zero value enables everything except BVE.
type Options struct {
	// NoSubsumption disables subsumption/self-subsumption.
	NoSubsumption bool
	// NoXORRecovery disables XOR-clause recovery.
	NoXORRecovery bool
	// BVE enables bounded variable elimination of non-sampling
	// variables whose elimination does not grow the clause count.
	BVE bool
	// MaxXORArity bounds the width of recovered XOR clauses
	// (a width-k XOR needs 2^(k-1) source clauses). Default 5.
	MaxXORArity int
}

// Result reports what the simplifier did.
type Result struct {
	F               *cnf.Formula
	UnitsFixed      int
	Subsumed        int
	SelfSubsumed    int
	VarsEliminated  int
	XORsRecovered   int
	SourceClausesIn int
}

// Simplify runs the configured passes to fixpoint (each pass at most a
// few rounds) and returns a new formula; the input is not modified.
func Simplify(f *cnf.Formula, opts Options) (*Result, error) {
	if opts.MaxXORArity == 0 {
		opts.MaxXORArity = 5
	}
	g := f.Clone()
	res := &Result{SourceClausesIn: len(g.Clauses)}

	for round := 0; round < 4; round++ {
		changed := false
		if n, ok := propagateUnits(g); !ok {
			// Conflict: formula is UNSAT; represent with empty clause.
			g.Clauses = []cnf.Clause{{}}
			g.XORs = nil
			res.F = g
			return res, nil
		} else if n > 0 {
			res.UnitsFixed += n
			changed = true
		}
		if !opts.NoSubsumption {
			sub, self := subsumptionPass(g)
			res.Subsumed += sub
			res.SelfSubsumed += self
			changed = changed || sub > 0 || self > 0
		}
		if !changed {
			break
		}
	}
	if !opts.NoXORRecovery {
		res.XORsRecovered = recoverXORs(g, opts.MaxXORArity)
	}
	if opts.BVE {
		res.VarsEliminated = eliminateVars(g)
	}
	res.F = g
	return res, nil
}

// propagateUnits applies all unit clauses, simplifying clauses and XOR
// clauses. Returns the number of fixed variables and ok=false on
// conflict.
func propagateUnits(f *cnf.Formula) (int, bool) {
	val := map[cnf.Var]bool{} // fixed values
	fixed := 0
	for {
		unit := cnf.Lit(0)
		for _, c := range f.Clauses {
			if len(c) == 1 {
				if v, ok := val[c[0].Var()]; ok {
					if v == c[0].Neg() {
						return fixed, false // contradicts earlier unit
					}
					continue
				}
				unit = c[0]
				break
			}
		}
		if unit == 0 {
			break
		}
		val[unit.Var()] = !unit.Neg()
		fixed++
		var nc []cnf.Clause
		for _, c := range f.Clauses {
			sat := false
			var out cnf.Clause
			for _, l := range c {
				if v, ok := val[l.Var()]; ok {
					if l.Neg() != v {
						sat = true
						break
					}
					continue // false literal dropped
				}
				out = append(out, l)
			}
			if sat {
				continue
			}
			if len(out) == 0 {
				return fixed, false
			}
			nc = append(nc, out)
		}
		// Keep the units themselves so downstream solvers see the
		// assignments.
		for v, b := range val {
			nc = append(nc, cnf.Clause{cnf.MkLit(v, !b)})
		}
		f.Clauses = dedupeClauses(nc)
		var nx []cnf.XORClause
		for _, x := range f.XORs {
			var vs []cnf.Var
			rhs := x.RHS
			for _, xv := range x.Vars {
				if b, ok := val[xv]; ok {
					if b {
						rhs = !rhs
					}
					continue
				}
				vs = append(vs, xv)
			}
			if len(vs) == 0 {
				if rhs {
					return fixed, false
				}
				continue
			}
			if len(vs) == 1 {
				f.Clauses = append(f.Clauses, cnf.Clause{cnf.MkLit(vs[0], !rhs)})
				continue
			}
			nx = append(nx, cnf.XORClause{Vars: vs, RHS: rhs})
		}
		f.XORs = nx
	}
	return fixed, true
}

func dedupeClauses(cls []cnf.Clause) []cnf.Clause {
	seen := map[string]bool{}
	out := cls[:0]
	for _, c := range cls {
		norm, taut := cnf.NormalizeClause(c)
		if taut {
			continue
		}
		key := clauseKey(norm)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, norm)
	}
	return out
}

func clauseKey(c cnf.Clause) string {
	b := make([]byte, 0, len(c)*4)
	for _, l := range c {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

// subsumptionPass removes subsumed clauses and strengthens clauses by
// self-subsuming resolution: if C ∨ l and D with D ⊆ C ∪ {¬l}, then
// C ∨ l can be strengthened to C (remove l).
func subsumptionPass(f *cnf.Formula) (subsumed, selfSubsumed int) {
	// Occurrence lists by literal.
	sort.Slice(f.Clauses, func(i, j int) bool { return len(f.Clauses[i]) < len(f.Clauses[j]) })
	alive := make([]bool, len(f.Clauses))
	for i := range alive {
		alive[i] = true
	}
	occ := map[cnf.Lit][]int{}
	for i, c := range f.Clauses {
		for _, l := range c {
			occ[l] = append(occ[l], i)
		}
	}
	isSubset := func(small, big cnf.Clause, flip cnf.Lit) bool {
		// Checks small ⊆ (big with literal `flip` negated), both sorted.
		inBig := func(l cnf.Lit) bool {
			for _, b := range big {
				target := b
				if b == flip {
					target = b.Not()
				}
				if target == l {
					return true
				}
			}
			return false
		}
		for _, l := range small {
			if !inBig(l) {
				return false
			}
		}
		return true
	}
	for i, c := range f.Clauses {
		if !alive[i] || len(c) == 0 {
			continue
		}
		// Candidates: clauses sharing c's rarest literal.
		rare := c[0]
		for _, l := range c[1:] {
			if len(occ[l]) < len(occ[rare]) {
				rare = l
			}
		}
		for _, j := range occ[rare] {
			if j == i || !alive[j] || len(f.Clauses[j]) < len(c) {
				continue
			}
			if isSubset(c, f.Clauses[j], 0) {
				alive[j] = false
				subsumed++
			}
		}
		// Self-subsumption: for each literal l in c, does c with l
		// flipped subsume some clause j? Then j can drop ¬l.
		for _, l := range c {
			for _, j := range occ[l.Not()] {
				if j == i || !alive[j] || len(f.Clauses[j]) < len(c) {
					continue
				}
				if isSubset(c, f.Clauses[j], 0) {
					continue // fully subsumed handled above
				}
				// Does c ⊆ clauses[j] ∪ {l→¬l}? i.e. every lit of c other
				// than l is in clauses[j], and ¬l ∈ clauses[j].
				ok := true
				for _, q := range c {
					want := q
					if q == l {
						want = q.Not()
					}
					found := false
					for _, b := range f.Clauses[j] {
						if b == want {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if ok {
					// Strengthen clause j: remove ¬l.
					var nc cnf.Clause
					for _, b := range f.Clauses[j] {
						if b != l.Not() {
							nc = append(nc, b)
						}
					}
					f.Clauses[j] = nc
					selfSubsumed++
				}
			}
		}
	}
	out := f.Clauses[:0]
	for i, c := range f.Clauses {
		if alive[i] {
			out = append(out, c)
		}
	}
	f.Clauses = out
	return subsumed, selfSubsumed
}

// eliminateVars performs bounded variable elimination on variables
// outside the sampling set: a variable is eliminated by resolving all
// its positive occurrences against all negative ones when the resolvent
// count does not exceed the removed-clause count. Returns the number of
// eliminated variables.
func eliminateVars(f *cnf.Formula) int {
	protected := map[cnf.Var]bool{}
	for _, v := range f.SamplingSet {
		protected[v] = true
	}
	// Variables in XOR clauses are left alone (elimination would need
	// XOR-aware resolution).
	for _, x := range f.XORs {
		for _, v := range x.Vars {
			protected[v] = true
		}
	}
	eliminated := 0
	for v := cnf.Var(1); int(v) <= f.NumVars; v++ {
		if protected[v] {
			continue
		}
		var pos, neg []int
		occurs := false
		for i, c := range f.Clauses {
			for _, l := range c {
				if l.Var() != v {
					continue
				}
				occurs = true
				if l.Neg() {
					neg = append(neg, i)
				} else {
					pos = append(pos, i)
				}
			}
		}
		if !occurs || len(pos)*len(neg) > len(pos)+len(neg) {
			continue
		}
		// Build resolvents.
		var resolvents []cnf.Clause
		ok := true
		for _, pi := range pos {
			for _, ni := range neg {
				r, taut := resolve(f.Clauses[pi], f.Clauses[ni], v)
				if taut {
					continue
				}
				if len(r) == 0 {
					ok = false // empty resolvent: formula unsat; bail out
					break
				}
				resolvents = append(resolvents, r)
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		drop := map[int]bool{}
		for _, i := range pos {
			drop[i] = true
		}
		for _, i := range neg {
			drop[i] = true
		}
		var nc []cnf.Clause
		for i, c := range f.Clauses {
			if !drop[i] {
				nc = append(nc, c)
			}
		}
		nc = append(nc, resolvents...)
		f.Clauses = dedupeClauses(nc)
		eliminated++
	}
	return eliminated
}

// resolve computes the resolvent of a (containing v) and b (containing
// ¬v) on v; taut reports a tautological resolvent.
func resolve(a, b cnf.Clause, v cnf.Var) (cnf.Clause, bool) {
	var out cnf.Clause
	for _, l := range a {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range b {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	return cnf.NormalizeClause(out)
}
