package simplify_test

import (
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/simplify"
)

// FuzzSimplify is the differential fuzz gate for the preprocessor: on
// tiny parseable formulas, the set of witness projections onto the
// sampling set must be exactly preserved by simplification — units,
// subsumption, self-subsuming resolution, XOR recovery, and (when the
// second fuzz argument is set) bounded variable elimination, whose
// correctness argument is precisely that it only touches non-sampling
// variables. The oracle is brute-force enumeration over ≤ 2^8
// assignments, independent of the simplifier and the solver.
func FuzzSimplify(f *testing.F) {
	f.Add("p cnf 4 3\n1 2 0\n-1 3 0\n-2 -4 0\n", true)
	f.Add("c ind 1 2 0\np cnf 4 2\n1 -3 0\n3 4 0\n", true)
	f.Add("p cnf 3 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 3 0\n", false)
	f.Add("c ind 1 2 3 0\np cnf 3 0\nx1 2 3 0\n", true)
	f.Add("p cnf 2 2\n1 0\n-1 2 0\n", true)
	f.Fuzz(func(t *testing.T, in string, bve bool) {
		if len(in) > 2048 {
			return
		}
		fm, err := cnf.ParseDIMACSString(in)
		if err != nil {
			return
		}
		if fm.NumVars > 8 || len(fm.Clauses) > 24 || len(fm.XORs) > 8 {
			return // keep the brute-force oracle cheap
		}
		// BVE's projection-preservation contract requires an explicit
		// sampling set (eliminated variables must lie outside it); give
		// undeclared formulas one over a prefix of their variables.
		if fm.SamplingSet == nil && fm.NumVars > 0 {
			k := fm.NumVars
			if k > 4 {
				k = 4
			}
			for v := 1; v <= k; v++ {
				fm.SamplingSet = append(fm.SamplingSet, cnf.Var(v))
			}
		}
		before := projectedSet(fm, fm.SamplingVars())
		res, err := simplify.Simplify(fm, simplify.Options{BVE: bve})
		if err != nil {
			t.Fatalf("Simplify error on %q: %v", in, err)
		}
		after := projectedSet(res.F, fm.SamplingVars())
		if len(before) != len(after) {
			t.Fatalf("projected count changed: %d -> %d (bve=%v)\ninput: %q\nsimplified: %q",
				len(before), len(after), bve, in, cnf.DIMACSString(res.F))
		}
		for key := range before {
			if !after[key] {
				t.Fatalf("projected witness %q lost by simplification (bve=%v)\ninput: %q", key, bve, in)
			}
		}
	})
}

// projectedSet brute-forces the distinct projections of f's witnesses
// onto vars. Simplification never grows the variable count, so
// enumerating over f.NumVars covers both sides of the differential.
func projectedSet(f *cnf.Formula, vars []cnf.Var) map[string]bool {
	nv := f.NumVars
	for _, v := range vars {
		if int(v) > nv {
			nv = int(v)
		}
	}
	out := map[string]bool{}
	a := cnf.NewAssignment(nv)
	for mask := 0; mask < 1<<nv; mask++ {
		for i := 1; i <= nv; i++ {
			a.Set(cnf.Var(i), mask&(1<<(i-1)) != 0)
		}
		if a.Satisfies(f) {
			out[a.Project(vars)] = true
		}
	}
	return out
}
