package simplify

import (
	"sort"

	"unigen/internal/cnf"
)

// recoverXORs detects groups of 2^(k-1) clauses over the same k
// variables that together encode a parity constraint, removes them, and
// adds the equivalent native XOR clause — CryptoMiniSAT's "xor
// recovery". Tseitin-encoded XOR gates and hand-written parity CNF both
// become visible to the solver's XOR engine this way.
//
// A clause set over variables {v1..vk} encodes ⊕vi = rhs exactly when
// it contains, for every assignment with parity ≠ rhs, the clause
// falsified only by that assignment: the clause whose literal for vi is
// positive iff the assignment sets vi false. Equivalently: all 2^(k-1)
// full-width clauses whose number of positive literals has parity
// k - (rhs? 1: 0) ... determined below directly from one member.
func recoverXORs(f *cnf.Formula, maxArity int) int {
	// Group full candidate clauses by variable-set key.
	groups := map[string][]int{}
	for i, c := range f.Clauses {
		k := len(c)
		if k < 3 || k > maxArity {
			continue
		}
		if hasDupVar(c) {
			continue
		}
		groups[varsKey(c)] = append(groups[varsKey(c)], i)
	}
	removed := map[int]bool{}
	recovered := 0
	for _, idxs := range groups {
		if len(idxs) < 4 {
			continue
		}
		k := len(f.Clauses[idxs[0]])
		need := 1 << uint(k-1)
		if len(idxs) < need {
			continue
		}
		// Partition the group's clauses by the parity of their negation
		// count: an XOR with RHS=r is encoded by all clauses whose
		// negated-literal count has a fixed parity.
		byParity := map[bool][]int{}
		seen := map[bool]map[uint32]bool{false: {}, true: {}}
		for _, i := range idxs {
			negs := 0
			var mask uint32
			for bit, l := range f.Clauses[i] {
				if l.Neg() {
					negs++
					mask |= 1 << uint(bit)
				}
			}
			par := negs%2 == 1
			if !seen[par][mask] {
				seen[par][mask] = true
				byParity[par] = append(byParity[par], i)
			}
		}
		for par, members := range byParity {
			if len(members) < need {
				continue
			}
			// Derive the encoded parity: a clause with negation mask m is
			// falsified by the assignment that sets exactly the negated
			// vars true; that assignment must violate the XOR. The
			// violating parity is |m| mod 2 == par, so the XOR's RHS over
			// the variables is the complement of that parity pattern:
			// ⊕vi = rhs with rhs = !par ... verified by construction
			// below and by the tests against brute force.
			vars := make([]cnf.Var, 0, k)
			for _, l := range f.Clauses[members[0]] {
				vars = append(vars, l.Var())
			}
			sort.Slice(vars, func(a, b int) bool { return vars[a] < vars[b] })
			rhs := !par
			// Confirm the group is complete and consistent by checking
			// it rules out exactly the assignments with parity != rhs.
			if !confirmXOR(f, members, vars, rhs) {
				continue
			}
			for _, i := range members[:need] {
				removed[i] = true
			}
			f.AddXOR(vars, rhs)
			recovered++
		}
	}
	if recovered > 0 {
		var nc []cnf.Clause
		for i, c := range f.Clauses {
			if !removed[i] {
				nc = append(nc, c)
			}
		}
		f.Clauses = nc
	}
	return recovered
}

// confirmXOR brute-force checks (over k ≤ maxArity variables) that the
// member clauses admit exactly the assignments with ⊕vars = rhs.
func confirmXOR(f *cnf.Formula, members []int, vars []cnf.Var, rhs bool) bool {
	k := len(vars)
	pos := map[cnf.Var]int{}
	for i, v := range vars {
		pos[v] = i
	}
	for m := 0; m < 1<<uint(k); m++ {
		par := false
		for i := 0; i < k; i++ {
			if m&(1<<uint(i)) != 0 {
				par = !par
			}
		}
		allowed := true // does every member clause accept assignment m?
		for _, ci := range members {
			sat := false
			for _, l := range f.Clauses[ci] {
				bit := m&(1<<uint(pos[l.Var()])) != 0
				if bit != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				allowed = false
				break
			}
		}
		if allowed != (par == rhs) {
			return false
		}
	}
	return true
}

func hasDupVar(c cnf.Clause) bool {
	for i := 1; i < len(c); i++ {
		if c[i].Var() == c[i-1].Var() {
			return true
		}
	}
	return false
}

func varsKey(c cnf.Clause) string {
	vs := make([]int, len(c))
	for i, l := range c {
		vs[i] = int(l.Var())
	}
	sort.Ints(vs)
	b := make([]byte, 0, len(vs)*4)
	for _, v := range vs {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}
