// Package indsupport decides and minimizes independent supports of CNF
// formulas. The DAC'14 paper assumes a (small) independent support is
// supplied from the problem domain and notes that "an algorithmic
// solution to this problem is beyond the scope of this paper" (§4);
// this package provides that solution, in the style of the follow-up
// work on minimal independent supports: a set S is an independent
// support of F iff the "doubled" formula
//
//	F(X) ∧ F(X') ∧ ⋀_{v∈S} (v = v') ∧ ⋁_{w∉S} (w ≠ w')
//
// is unsatisfiable, and a minimal support is found by greedily dropping
// variables whose removal preserves that property.
package indsupport

import (
	"fmt"

	"unigen/internal/cnf"
	"unigen/internal/sat"
)

// IsIndependent reports whether S is an independent support of f.
// The check is one SAT call on a formula twice the size of f.
func IsIndependent(f *cnf.Formula, s []cnf.Var, cfg sat.Config) (bool, error) {
	g := doubled(f, s)
	solver := sat.New(g, cfg)
	switch solver.Solve() {
	case sat.Unsat:
		return true, nil
	case sat.Sat:
		return false, nil
	default:
		return false, fmt.Errorf("indsupport: solver budget exhausted")
	}
}

// Minimize greedily shrinks the given independent support: variables
// are dropped one at a time whenever the remainder is still an
// independent support. The result is minimal (no single variable can
// be removed) but not necessarily minimum. It errors if the starting
// set is not an independent support.
func Minimize(f *cnf.Formula, start []cnf.Var, cfg sat.Config) ([]cnf.Var, error) {
	ok, err := IsIndependent(f, start, cfg)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("indsupport: starting set is not an independent support")
	}
	cur := append([]cnf.Var(nil), start...)
	for i := 0; i < len(cur); {
		cand := make([]cnf.Var, 0, len(cur)-1)
		cand = append(cand, cur[:i]...)
		cand = append(cand, cur[i+1:]...)
		ok, err := IsIndependent(f, cand, cfg)
		if err != nil {
			return nil, err
		}
		if ok {
			cur = cand // drop cur[i]; do not advance (next element shifted in)
		} else {
			i++
		}
	}
	return cur, nil
}

// Find computes a minimal independent support starting from all
// variables of f (the full support is always independent).
func Find(f *cnf.Formula, cfg sat.Config) ([]cnf.Var, error) {
	all := make([]cnf.Var, f.NumVars)
	for i := range all {
		all[i] = cnf.Var(i + 1)
	}
	return Minimize(f, all, cfg)
}

// doubled builds F(X) ∧ F(X') ∧ (S agree) ∧ (some non-S var differs).
// X' uses variables shifted by f.NumVars; difference indicators d_w
// (one per non-S variable) occupy a third block.
func doubled(f *cnf.Formula, s []cnf.Var) *cnf.Formula {
	n := f.NumVars
	inS := make([]bool, n+1)
	for _, v := range s {
		if int(v) <= n {
			inS[v] = true
		}
	}
	g := cnf.New(2 * n)
	// F(X) and F(X').
	for _, c := range f.Clauses {
		g.AddClauseLits(append(cnf.Clause(nil), c...))
		shifted := make(cnf.Clause, len(c))
		for i, l := range c {
			shifted[i] = cnf.MkLit(l.Var()+cnf.Var(n), l.Neg())
		}
		g.AddClauseLits(shifted)
	}
	for _, x := range f.XORs {
		g.AddXOR(x.Vars, x.RHS)
		shifted := make([]cnf.Var, len(x.Vars))
		for i, v := range x.Vars {
			shifted[i] = v + cnf.Var(n)
		}
		g.AddXOR(shifted, x.RHS)
	}
	// Agreement on S.
	for _, v := range s {
		if int(v) > n {
			continue
		}
		g.AddClause(-int(v), int(v)+n)
		g.AddClause(int(v), -(int(v) + n))
	}
	// Some non-S variable differs: d_w ↔ (w ⊕ w'), ⋁ d_w.
	var diff cnf.Clause
	next := 2 * n
	for w := 1; w <= n; w++ {
		if inS[w] {
			continue
		}
		next++
		d := cnf.Var(next)
		// d ⊕ w ⊕ w' = 0  ⇔  d = w ⊕ w'.
		g.AddXOR([]cnf.Var{d, cnf.Var(w), cnf.Var(w + n)}, false)
		diff = append(diff, cnf.MkLit(d, false))
	}
	if len(diff) == 0 {
		// S covers everything: independence is trivially true; encode
		// unsatisfiable difference requirement.
		g.Clauses = append(g.Clauses, cnf.Clause{})
		return g
	}
	g.AddClauseLits(diff)
	return g
}
