package indsupport

import (
	"testing"

	"unigen/internal/benchgen"
	"unigen/internal/circuit"
	"unigen/internal/cnf"
	"unigen/internal/sat"
)

func TestPaperExample(t *testing.T) {
	// (a ∨ ¬b) ∧ (¬a ∨ b) from §2: independent supports are {a}, {b},
	// {a,b}.
	f := cnf.New(2)
	f.AddClause(1, -2)
	f.AddClause(-1, 2)
	for _, s := range [][]cnf.Var{{1}, {2}, {1, 2}} {
		ok, err := IsIndependent(f, s, sat.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%v should be an independent support", s)
		}
	}
	// The empty set is not (two distinct witnesses exist).
	ok, err := IsIndependent(f, nil, sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("empty set accepted")
	}
}

func TestMinimizeShrinksPaperExample(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1, -2)
	f.AddClause(-1, 2)
	s, err := Minimize(f, []cnf.Var{1, 2}, sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 {
		t.Fatalf("minimized support = %v, want singleton", s)
	}
}

func TestTseitinInputsAreIndependent(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.InputWord(4)
	y := b.InputWord(4)
	sum := b.AddWord(x, y)
	b.Output(sum[3])
	enc, err := circuit.Encode(b.Build(), circuit.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsIndependent(enc.Formula, enc.InputVars, sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("circuit inputs rejected as independent support")
	}
	// A strict subset of the inputs is NOT an independent support for a
	// free-input circuit (dropping an input loses information).
	ok, err = IsIndependent(enc.Formula, enc.InputVars[1:], sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("subset of inputs accepted")
	}
}

func TestAuxVarsAloneNotIndependent(t *testing.T) {
	// An AND gate's output does not determine its inputs.
	b := circuit.NewBuilder()
	p := b.Input()
	q := b.Input()
	z := b.And(p, q)
	b.Output(z)
	enc, err := circuit.Encode(b.Build(), circuit.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	zVar := enc.SigVar[z]
	ok, err := IsIndependent(enc.Formula, []cnf.Var{zVar}, sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("AND output accepted as independent support")
	}
}

func TestFindOnSmallBenchmark(t *testing.T) {
	inst, err := benchgen.Generate("case110", benchgen.ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The declared sampling set must verify as independent.
	ok, err := IsIndependent(inst.F, inst.F.SamplingSet, sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("benchmark sampling set not independent")
	}
	// Minimizing it cannot grow it.
	s, err := Minimize(inst.F, inst.F.SamplingSet, sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) > len(inst.F.SamplingSet) {
		t.Fatalf("minimize grew the set: %d > %d", len(s), len(inst.F.SamplingSet))
	}
	// For a free-input circuit the inputs are already minimal.
	if len(s) != len(inst.F.SamplingSet) {
		t.Fatalf("free inputs should be minimal; got %d of %d", len(s), len(inst.F.SamplingSet))
	}
}

func TestMinimizeRejectsNonSupport(t *testing.T) {
	f := cnf.New(3) // free cube: only the full set is independent
	if _, err := Minimize(f, []cnf.Var{1}, sat.Config{}); err == nil {
		t.Fatal("non-support starting set accepted")
	}
}

func TestXORFormulaSupport(t *testing.T) {
	// x3 = x1⊕x2: {x1,x2} is an independent support; {x1,x3} too.
	f := cnf.New(3)
	f.AddXOR([]cnf.Var{1, 2, 3}, false)
	for _, s := range [][]cnf.Var{{1, 2}, {1, 3}, {2, 3}} {
		ok, err := IsIndependent(f, s, sat.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%v should be independent for the XOR formula", s)
		}
	}
	ok, err := IsIndependent(f, []cnf.Var{1}, sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("{1} accepted for 3-var XOR")
	}
	s, err := Find(f, sat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("Find returned %v, want a 2-element support", s)
	}
}
