// Package benchgen generates the benchmark families of the DAC'14
// evaluation. The paper's exact CNF files (bit-blasted SMTLib instances,
// ISCAS89 circuits with parity conditions, program-synthesis/sketch
// constraints) are not distributable with the paper, so each family is
// rebuilt as a structurally matching analogue with a KNOWN independent
// support — exactly the situation the paper describes, where "a small,
// not necessarily minimal, independent support can often be easily
// determined from the source domain" (§4):
//
//   - case*       small free-input circuits (|R_F| = 2^|S|), used for
//     the Figure 1 uniformity comparison (case110: 16384 witnesses);
//   - s*          ISCAS89-style random sequential netlists, unrolled,
//     with parity conditions on randomly chosen outputs and
//     next-state variables (§5);
//   - Squaring*   bit-blasted arithmetic: (a+b)² ≡ a²+2ab+b² miters;
//   - Karatsuba   Karatsuba-vs-array multiplier equivalence;
//   - sketch-like EnqueueSeqSK/LoginService2/Sort/LLReverse/TreeMax/
//     ProcessBean/ProjectService3/tutorial3 analogues:
//     bit-vector programs over a small seed with asserted
//     invariants and witness-anchored parity conditions.
//
// Every instance is satisfiable by construction: value-dependent
// constraints are anchored to the simulation of a random input vector.
package benchgen

import (
	"fmt"
	"sort"

	"unigen/internal/circuit"
	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// Scale selects instance sizes.
type Scale int

// Scales. Small keeps unit tests and benchmarks fast; Medium is the
// default for the table harness; Full approaches the paper's support
// sizes (|S| up to 72) and variable counts.
const (
	ScaleSmall Scale = iota
	ScaleMedium
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// ParseScale converts a string flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "full":
		return ScaleFull, nil
	}
	return 0, fmt.Errorf("benchgen: unknown scale %q (small|medium|full)", s)
}

// Instance is a generated benchmark.
type Instance struct {
	Name        string
	Family      string
	Description string
	F           *cnf.Formula
	// NumVars is |X|, SupportSize is |S| — columns 2 and 3 of Table 1.
	NumVars     int
	SupportSize int
}

// Spec describes a named generator.
type Spec struct {
	Name        string
	Family      string
	Description string
	// Table is 1 if the benchmark appears in Table 1 (and hence also
	// Table 2), 2 if only in the extended Table 2, 0 for auxiliary
	// instances (e.g. case110 for Figure 1).
	Table int
	build func(scale Scale, seed uint64) (*Instance, error)
}

// Build generates the instance at the given scale with the given seed.
func (sp Spec) Build(scale Scale, seed uint64) (*Instance, error) {
	inst, err := sp.build(scale, seed)
	if err != nil {
		return nil, fmt.Errorf("benchgen %s: %w", sp.Name, err)
	}
	inst.Name = sp.Name
	inst.Family = sp.Family
	inst.Description = sp.Description
	inst.NumVars = inst.F.NumVars
	inst.SupportSize = len(inst.F.SamplingSet)
	return inst, nil
}

// Specs returns every registered benchmark, sorted by name.
func Specs() []Spec {
	out := append([]Spec(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, sp := range registry {
		if sp.Name == name {
			return sp, nil
		}
	}
	return Spec{}, fmt.Errorf("benchgen: unknown benchmark %q", name)
}

// Generate is shorthand for ByName + Build.
func Generate(name string, scale Scale, seed uint64) (*Instance, error) {
	sp, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return sp.Build(scale, seed)
}

// TableRows returns the benchmark specs for Table 1 or Table 2 in the
// paper's row order.
func TableRows(table int) []Spec {
	var names []string
	switch table {
	case 1:
		names = table1Order
	case 2:
		names = table2Order
	default:
		return nil
	}
	var out []Spec
	for _, n := range names {
		if sp, err := ByName(n); err == nil {
			out = append(out, sp)
		}
	}
	return out
}

var table1Order = []string{
	"Squaring7", "squaring8", "Squaring10",
	"s1196a_7_4", "s1238a_7_4", "s953a_3_2",
	"EnqueueSeqSK", "LoginService2", "LLReverse",
	"Sort", "Karatsuba", "tutorial3",
}

var table2Order = []string{
	"Case121", "Case1_b11_1", "Case2_b12_2", "Case35",
	"Squaring1", "squaring8", "Squaring10", "Squaring7", "Squaring9",
	"Squaring14", "Squaring12", "Squaring16",
	"s526_3_2", "s526a_3_2", "s526_15_7",
	"s1196a_7_4", "s1196a_3_2", "s1238a_7_4", "s1238a_15_7",
	"s1196a_15_7", "s1238a_3_2", "s953a_3_2",
	"TreeMax", "LLReverse", "LoginService2", "EnqueueSeqSK",
	"ProjectService3", "Sort", "Karatsuba", "ProcessBean", "tutorial3",
}

// anchorParity asserts p parity conditions over random subsets of the
// given signals, with right-hand sides taken from a concrete simulation
// so the instance stays satisfiable. Each subset is non-empty.
func anchorParity(enc *circuit.Encoded, vals []bool, sigs []circuit.Sig, p int, rng *randx.RNG) {
	if len(sigs) == 0 {
		return
	}
	for i := 0; i < p; i++ {
		var subset []circuit.Sig
		rhs := false
		for _, s := range sigs {
			if rng.Bool() {
				subset = append(subset, s)
				rhs = rhs != vals[s]
			}
		}
		if len(subset) == 0 {
			subset = []circuit.Sig{sigs[rng.Intn(len(sigs))]}
			rhs = vals[subset[0]]
		}
		enc.AssertParity(subset, rhs)
	}
}

// randomInputs draws an input vector for a circuit.
func randomInputs(c *circuit.Circuit, rng *randx.RNG) []bool {
	in := make([]bool, len(c.Inputs))
	for i := range in {
		in[i] = rng.Bool()
	}
	return in
}
