package benchgen

import (
	"fmt"

	"unigen/internal/circuit"
	"unigen/internal/randx"
)

// dims holds the per-scale size knobs of a family instance.
type dims struct {
	small, medium, full int
}

func (d dims) at(s Scale) int {
	switch s {
	case ScaleSmall:
		return d.small
	case ScaleMedium:
		return d.medium
	default:
		return d.full
	}
}

// ---------------------------------------------------------------------
// Family: case* — free-input random combinational circuits. The CNF is
// pure Tseitin structure, so |R_F| = 2^|S| exactly; case110's 16384
// witnesses (2^14) match the Figure 1 instance.
// ---------------------------------------------------------------------

func buildCase(inputs, gates int) func(Scale, uint64) (*Instance, error) {
	return func(scale Scale, seed uint64) (*Instance, error) {
		rng := randx.New(seed)
		b := circuit.NewBuilder()
		sigs := make([]circuit.Sig, 0, inputs+gates)
		for i := 0; i < inputs; i++ {
			sigs = append(sigs, b.Input())
		}
		for g := 0; g < gates; g++ {
			sigs = append(sigs, randomGate(b, sigs, rng))
		}
		for i := 0; i < 4 && i < len(sigs); i++ {
			b.Output(sigs[len(sigs)-1-i])
		}
		c := b.Build()
		enc, err := circuit.Encode(c, circuit.EncodeOptions{})
		if err != nil {
			return nil, err
		}
		return &Instance{F: enc.Formula}, nil
	}
}

func randomGate(b *circuit.Builder, sigs []circuit.Sig, rng *randx.RNG) circuit.Sig {
	a := sigs[rng.Intn(len(sigs))]
	c := sigs[rng.Intn(len(sigs))]
	switch rng.Intn(5) {
	case 0:
		return b.And(a, c)
	case 1:
		return b.Or(a, c)
	case 2:
		return b.Xor(a, c)
	case 3:
		return b.Nand(a, c)
	default:
		return b.Not(a)
	}
}

// ---------------------------------------------------------------------
// Family: s* — ISCAS89-style sequential netlists with parity conditions
// "on randomly chosen subsets of outputs and next-state variables" (§5).
// The netlist is a random gate network with latch feedback, unrolled
// over several frames; parity right-hand sides are anchored to a
// concrete simulation so every instance is satisfiable.
// ---------------------------------------------------------------------

type seqParams struct {
	inputs, latches, gates, frames, parity int
}

func buildSeqParity(p map[Scale]seqParams) func(Scale, uint64) (*Instance, error) {
	return func(scale Scale, seed uint64) (*Instance, error) {
		pr := p[scale]
		rng := randx.New(seed)
		b := circuit.NewBuilder()
		var sigs []circuit.Sig
		for i := 0; i < pr.inputs; i++ {
			sigs = append(sigs, b.Input())
		}
		type pending struct{ set func(circuit.Sig) }
		var loops []pending
		for i := 0; i < pr.latches; i++ {
			q, setD := b.LatchLoop()
			sigs = append(sigs, q)
			loops = append(loops, pending{setD})
		}
		for g := 0; g < pr.gates; g++ {
			sigs = append(sigs, randomGate(b, sigs, rng))
		}
		// Latch next-states and primary outputs from late signals.
		for _, lp := range loops {
			lp.set(sigs[len(sigs)-1-rng.Intn(min(len(sigs), pr.gates/2+1))])
		}
		nOut := max(2, pr.latches/2)
		for i := 0; i < nOut; i++ {
			b.Output(sigs[len(sigs)-1-rng.Intn(min(len(sigs), pr.gates/2+1))])
		}
		c := b.Build()
		u, err := c.Unroll(pr.frames)
		if err != nil {
			return nil, err
		}
		enc, err := circuit.Encode(u, circuit.EncodeOptions{})
		if err != nil {
			return nil, err
		}
		in := randomInputs(u, rng)
		vals, err := u.Eval(in, nil)
		if err != nil {
			return nil, err
		}
		anchorParity(enc, vals, u.Outputs, pr.parity, rng)
		return &Instance{F: enc.Formula}, nil
	}
}

// ---------------------------------------------------------------------
// Family: Squaring* — bit-blasted algebraic-identity miters:
// (a+b)² ≡ a² + 2ab + b² over w-bit arithmetic, so every input vector
// is a witness and the independent support is the 2w input bits.
// Variants differ in seed and in the number of additional anchored
// parity conditions on the result bits.
// ---------------------------------------------------------------------

func buildSquaring(width dims, parity int) func(Scale, uint64) (*Instance, error) {
	return func(scale Scale, seed uint64) (*Instance, error) {
		w := width.at(scale)
		rng := randx.New(seed)
		b := circuit.NewBuilder()
		a := b.InputWord(w)
		c := b.InputWord(w)
		outW := 2 * w
		lhs := b.SquareWord(b.AddWord(a, c), outW) // (a+b)²
		a2 := b.SquareWord(a, outW)
		c2 := b.SquareWord(c, outW)
		ab := b.MulWord(a, c, outW)
		rhs := b.AddWord(b.AddWord(a2, c2), b.ShlWord(ab, 1)) // a²+b²+2ab
		diff := b.XorWord(lhs, rhs[:outW])
		for _, s := range diff {
			b.Output(s)
		}
		for _, s := range lhs {
			b.Output(s)
		}
		cir := b.Build()
		enc, err := circuit.Encode(cir, circuit.EncodeOptions{})
		if err != nil {
			return nil, err
		}
		for _, s := range diff {
			enc.AssertFalse(s) // the identity holds: miter must be 0
		}
		in := randomInputs(cir, rng)
		vals, err := cir.Eval(in, nil)
		if err != nil {
			return nil, err
		}
		lhsSigs := make([]circuit.Sig, len(lhs))
		copy(lhsSigs, lhs)
		anchorParity(enc, vals, lhsSigs, parity, rng)
		return &Instance{F: enc.Formula}, nil
	}
}

// ---------------------------------------------------------------------
// Family: Karatsuba — equivalence miter between a Karatsuba multiplier
// and an array multiplier; witnesses are all input pairs.
// ---------------------------------------------------------------------

func buildKaratsuba(width dims) func(Scale, uint64) (*Instance, error) {
	return func(scale Scale, seed uint64) (*Instance, error) {
		w := width.at(scale)
		b := circuit.NewBuilder()
		a := b.InputWord(w)
		c := b.InputWord(w)
		outW := 2 * w
		kar := b.KaratsubaMul(a, c, outW, 4)
		arr := b.MulWord(a, c, outW)
		diff := b.XorWord(kar, arr)
		for _, s := range diff {
			b.Output(s)
		}
		cir := b.Build()
		enc, err := circuit.Encode(cir, circuit.EncodeOptions{})
		if err != nil {
			return nil, err
		}
		for _, s := range diff {
			enc.AssertFalse(s)
		}
		return &Instance{F: enc.Formula}, nil
	}
}

// ---------------------------------------------------------------------
// Family: sketch-style program benchmarks. Each models a bit-vector
// program over a small seed (the sketch's unknown/control bits — the
// independent support), unrolled into a deep combinational pipeline
// with asserted invariants, plus anchored parity conditions standing in
// for the original assertions' data constraints.
// ---------------------------------------------------------------------

type sketchParams struct {
	seedBits int // |S|
	words    int // working values derived from the seed
	width    int // bits per word
	depth    int // pipeline rounds
	parity   int // anchored parity conditions
}

// expandSeed derives the i-th working word from the seed by rotation
// and a round-constant XOR, so all derived state is seed-determined.
func expandSeed(b *circuit.Builder, seedW circuit.Word, width, i int) circuit.Word {
	w := make(circuit.Word, width)
	n := len(seedW)
	for j := 0; j < width; j++ {
		w[j] = b.Buf(seedW[(j+3*i)%n])
	}
	cst := uint64(0x9e3779b97f4a7c15) >> uint(i%32)
	return b.XorWord(w, b.ConstWord(cst, width))
}

// mixRound applies one ARX-style mixing round in place.
func mixRound(b *circuit.Builder, ws []circuit.Word, r int) {
	n := len(ws)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum := b.AddWord(ws[i], ws[j])
		ws[i] = b.XorWord(b.RotlWord(sum[:len(ws[i])], (r+i)%len(ws[i])), ws[j])
	}
}

func buildSketch(p map[Scale]sketchParams, kind string) func(Scale, uint64) (*Instance, error) {
	return func(scale Scale, seed uint64) (*Instance, error) {
		pr := p[scale]
		rng := randx.New(seed)
		b := circuit.NewBuilder()
		seedW := b.InputWord(pr.seedBits)
		ws := make([]circuit.Word, pr.words)
		for i := range ws {
			ws[i] = expandSeed(b, seedW, pr.width, i)
		}
		original := make([]circuit.Word, len(ws))
		copy(original, ws)

		var invariant circuit.Sig
		switch kind {
		case "sort":
			// Odd-even transposition sorting network; invariant: output
			// is sorted (adjacent ≤ pairs).
			for pass := 0; pass < pr.words; pass++ {
				for i := pass % 2; i+1 < len(ws); i += 2 {
					lo, hi := b.CompareAndSwap(ws[i], ws[i+1])
					ws[i], ws[i+1] = lo, hi
				}
			}
			invariant = b.Const(true)
			for i := 0; i+1 < len(ws); i++ {
				invariant = b.And(invariant, b.Not(b.LessThan(ws[i+1], ws[i])))
			}
		case "reverse":
			// Reverse the word list twice via mixing-aware moves;
			// invariant: double reverse is the identity.
			rev := make([]circuit.Word, len(ws))
			for i := range ws {
				rev[i] = ws[len(ws)-1-i]
			}
			back := make([]circuit.Word, len(rev))
			for i := range rev {
				back[i] = rev[len(rev)-1-i]
			}
			invariant = b.Const(true)
			for i := range ws {
				d := b.XorWord(ws[i], back[i])
				for _, s := range d {
					invariant = b.And(invariant, b.Not(s))
				}
			}
			for r := 0; r < pr.depth; r++ {
				mixRound(b, ws, r)
			}
		case "max":
			// Tree max reduction; invariant: max ≥ every input.
			vals := append([]circuit.Word(nil), ws...)
			for len(vals) > 1 {
				var next []circuit.Word
				for i := 0; i+1 < len(vals); i += 2 {
					_, hi := b.CompareAndSwap(vals[i], vals[i+1])
					next = append(next, hi)
				}
				if len(vals)%2 == 1 {
					next = append(next, vals[len(vals)-1])
				}
				vals = next
			}
			mx := vals[0]
			invariant = b.Const(true)
			for _, w := range original {
				invariant = b.And(invariant, b.Not(b.LessThan(mx, w)))
			}
			ws[0] = mx
		default: // "pipeline": generic ARX state machine (queue/service/
			// tutorial analogues differ only in dimensions)
			for r := 0; r < pr.depth; r++ {
				mixRound(b, ws, r)
			}
			invariant = b.Const(true)
		}
		for _, w := range ws {
			for _, s := range w {
				b.Output(s)
			}
		}
		b.Output(invariant)
		cir := b.Build()
		enc, err := circuit.Encode(cir, circuit.EncodeOptions{})
		if err != nil {
			return nil, err
		}
		enc.AssertTrue(cir.Outputs[len(cir.Outputs)-1]) // assert the invariant
		in := randomInputs(cir, rng)
		vals, err := cir.Eval(in, nil)
		if err != nil {
			return nil, err
		}
		if !vals[invariant] {
			return nil, fmt.Errorf("internal: invariant violated in simulation (kind=%s)", kind)
		}
		anchorParity(enc, vals, cir.Outputs[:len(cir.Outputs)-1], pr.parity, rng)
		return &Instance{F: enc.Formula}, nil
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
