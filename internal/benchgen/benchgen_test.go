package benchgen

import (
	"testing"

	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/sat"
)

func TestAllSpecsBuildSmallAndAreSat(t *testing.T) {
	for _, sp := range Specs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := sp.Build(ScaleSmall, 1)
			if err != nil {
				t.Fatal(err)
			}
			if inst.F == nil || inst.NumVars == 0 {
				t.Fatal("empty instance")
			}
			if inst.SupportSize == 0 || inst.SupportSize > inst.NumVars {
				t.Fatalf("support size %d vs %d vars", inst.SupportSize, inst.NumVars)
			}
			s := sat.New(inst.F, sat.Config{})
			if got := s.Solve(); got != sat.Sat {
				t.Fatalf("instance is %v, want SAT", got)
			}
			if m := s.Model(); !m.Satisfies(inst.F) {
				t.Fatal("model check failed")
			}
		})
	}
}

func TestSupportIsIndependent(t *testing.T) {
	// For a selection of small instances, verify the defining property:
	// no two witnesses agree on the sampling set but differ elsewhere —
	// equivalently, fixing the sampling set leaves exactly one witness.
	for _, name := range []string{"case110", "s526_3_2", "Squaring1", "Sort", "LLReverse"} {
		inst, err := Generate(name, ScaleSmall, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Take a few witnesses and check their full extensions are unique.
		res := bsat.Enumerate(inst.F, 5, bsat.Options{})
		if len(res.Witnesses) == 0 {
			t.Fatalf("%s: unsat?", name)
		}
		for _, w := range res.Witnesses {
			g := inst.F.Clone()
			for _, v := range inst.F.SamplingSet {
				if w.Get(v) {
					g.AddClause(int(v))
				} else {
					g.AddClause(-int(v))
				}
			}
			full := g.SamplingVars() // all vars
			g.SamplingSet = nil
			n, r2 := bsat.Count(g, 3, bsat.Options{SamplingSet: full})
			if !r2.Exhausted || n != 1 {
				t.Fatalf("%s: fixing sampling set left %d extensions (exhausted=%v)", name, n, r2.Exhausted)
			}
		}
	}
}

func TestCase110WitnessCount(t *testing.T) {
	// The Figure 1 instance must have exactly 2^14 = 16384 witnesses at
	// every scale (free inputs).
	inst, err := Generate("case110", ScaleSmall, 7)
	if err != nil {
		t.Fatal(err)
	}
	if inst.SupportSize != 14 {
		t.Fatalf("support = %d, want 14", inst.SupportSize)
	}
	n, res := bsat.Count(inst.F, 20000, bsat.Options{})
	if !res.Exhausted || n != 16384 {
		t.Fatalf("witnesses = %d (exhausted=%v), want 16384", n, res.Exhausted)
	}
}

func TestScalesGrow(t *testing.T) {
	for _, name := range []string{"Squaring7", "s1196a_7_4", "EnqueueSeqSK"} {
		small, err := Generate(name, ScaleSmall, 3)
		if err != nil {
			t.Fatal(err)
		}
		medium, err := Generate(name, ScaleMedium, 3)
		if err != nil {
			t.Fatal(err)
		}
		if medium.NumVars <= small.NumVars {
			t.Fatalf("%s: medium (%d vars) not larger than small (%d vars)",
				name, medium.NumVars, small.NumVars)
		}
		if medium.SupportSize < small.SupportSize {
			t.Fatalf("%s: medium support %d < small %d", name, medium.SupportSize, small.SupportSize)
		}
	}
}

func TestSupportMuchSmallerThanVars(t *testing.T) {
	// The paper's Table 1 phenomenon: |S| ≪ |X|.
	for _, name := range []string{"EnqueueSeqSK", "LLReverse", "tutorial3", "Karatsuba"} {
		inst, err := Generate(name, ScaleMedium, 4)
		if err != nil {
			t.Fatal(err)
		}
		if inst.NumVars < 4*inst.SupportSize {
			t.Fatalf("%s: |X|=%d not ≫ |S|=%d", name, inst.NumVars, inst.SupportSize)
		}
	}
}

func TestTableRowsComplete(t *testing.T) {
	t1 := TableRows(1)
	if len(t1) != 12 {
		t.Fatalf("Table 1 rows = %d, want 12", len(t1))
	}
	t2 := TableRows(2)
	if len(t2) != 31 {
		t.Fatalf("Table 2 rows = %d, want 31", len(t2))
	}
	if TableRows(3) != nil {
		t.Fatal("Table 3 should be nil")
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := Generate("nope", ScaleSmall, 1); err == nil {
		t.Fatal("unknown name accepted by Generate")
	}
}

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scale
		ok   bool
	}{
		{"small", ScaleSmall, true},
		{"medium", ScaleMedium, true},
		{"full", ScaleFull, true},
		{"big", 0, false},
	} {
		got, err := ParseScale(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseScale(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Generate("s526_3_2", ScaleSmall, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("s526_3_2", ScaleSmall, 42)
	if err != nil {
		t.Fatal(err)
	}
	if cnf.DIMACSString(a.F) != cnf.DIMACSString(b.F) {
		t.Fatal("same seed produced different instances")
	}
	c, err := Generate("s526_3_2", ScaleSmall, 43)
	if err != nil {
		t.Fatal(err)
	}
	if cnf.DIMACSString(a.F) == cnf.DIMACSString(c.F) {
		t.Fatal("different seeds produced identical instances")
	}
}
