package benchgen

// registry lists every benchmark analogue. Full-scale dimensions track
// the paper's reported |S| (column 3 of Tables 1–2); small/medium keep
// tests and benchmarks laptop-fast. Descriptions name the original
// benchmark being mirrored.

func seqDims(small, medium, full seqParams) map[Scale]seqParams {
	return map[Scale]seqParams{ScaleSmall: small, ScaleMedium: medium, ScaleFull: full}
}

func sketchDims(small, medium, full sketchParams) map[Scale]sketchParams {
	return map[Scale]sketchParams{ScaleSmall: small, ScaleMedium: medium, ScaleFull: full}
}

var registry = []Spec{
	// --- Figure 1 instance -------------------------------------------
	{
		Name: "case110", Family: "case", Table: 0,
		Description: "free-input circuit with |R_F| = 2^14 = 16384 witnesses (Figure 1)",
		build:       buildCase(14, 120),
	},
	// --- Table 2 case* rows ------------------------------------------
	{
		Name: "Case121", Family: "case", Table: 2,
		Description: "free-input circuit, |S|=12/24/48 by scale (paper: 291 vars, |S|=48)",
		build:       caseScaled(dims{12, 20, 48}, dims{60, 120, 240}),
	},
	{
		Name: "Case1_b11_1", Family: "case", Table: 2,
		Description: "free-input circuit (paper: 340 vars, |S|=48)",
		build:       caseScaled(dims{12, 20, 48}, dims{80, 140, 290}),
	},
	{
		Name: "Case2_b12_2", Family: "case", Table: 2,
		Description: "free-input circuit (paper: 827 vars, |S|=45)",
		build:       caseScaled(dims{11, 20, 45}, dims{120, 300, 780}),
	},
	{
		Name: "Case35", Family: "case", Table: 2,
		Description: "free-input circuit (paper: 400 vars, |S|=46)",
		build:       caseScaled(dims{11, 18, 46}, dims{90, 160, 350}),
	},
	// --- Squaring miters ----------------------------------------------
	{
		Name: "Squaring1", Family: "squaring", Table: 2,
		Description: "(a+b)² ≡ a²+2ab+b² miter (paper: 891 vars, |S|=72)",
		build:       buildSquaring(dims{6, 12, 36}, 0),
	},
	{
		Name: "Squaring7", Family: "squaring", Table: 1,
		Description: "squaring miter + 1 parity condition (paper: 1628 vars, |S|=72)",
		build:       buildSquaring(dims{6, 12, 36}, 1),
	},
	{
		Name: "squaring8", Family: "squaring", Table: 1,
		Description: "squaring miter + 2 parity conditions (paper: 1101 vars, |S|=72)",
		build:       buildSquaring(dims{6, 12, 36}, 2),
	},
	{
		Name: "Squaring9", Family: "squaring", Table: 2,
		Description: "squaring miter + 3 parity conditions (paper: 1434 vars, |S|=72)",
		build:       buildSquaring(dims{6, 12, 36}, 3),
	},
	{
		Name: "Squaring10", Family: "squaring", Table: 1,
		Description: "squaring miter + 2 parity conditions (paper: 1099 vars, |S|=72)",
		build:       buildSquaring(dims{6, 12, 36}, 2),
	},
	{
		Name: "Squaring12", Family: "squaring", Table: 2,
		Description: "squaring miter + 4 parity conditions (paper: 1507 vars, |S|=72)",
		build:       buildSquaring(dims{6, 12, 36}, 4),
	},
	{
		Name: "Squaring14", Family: "squaring", Table: 2,
		Description: "squaring miter + 4 parity conditions (paper: 1458 vars, |S|=72)",
		build:       buildSquaring(dims{6, 12, 36}, 4),
	},
	{
		Name: "Squaring16", Family: "squaring", Table: 2,
		Description: "squaring miter + 5 parity conditions (paper: 1627 vars, |S|=72)",
		build:       buildSquaring(dims{6, 12, 36}, 5),
	},
	// --- ISCAS89-style sequential circuits with parity conditions -----
	{
		Name: "s526_3_2", Family: "iscas", Table: 2,
		Description: "s526-style netlist, parity on 3 subsets (paper: 365 vars, |S|=24)",
		build: buildSeqParity(seqDims(
			seqParams{6, 4, 40, 2, 3},
			seqParams{8, 6, 80, 2, 3},
			seqParams{12, 21, 160, 2, 3})),
	},
	{
		Name: "s526a_3_2", Family: "iscas", Table: 2,
		Description: "s526a-style netlist (paper: 366 vars, |S|=24)",
		build: buildSeqParity(seqDims(
			seqParams{6, 4, 42, 2, 3},
			seqParams{8, 6, 84, 2, 3},
			seqParams{12, 21, 164, 2, 3})),
	},
	{
		Name: "s526_15_7", Family: "iscas", Table: 2,
		Description: "s526-style netlist, parity on 15 subsets (paper: 452 vars, |S|=24)",
		build: buildSeqParity(seqDims(
			seqParams{6, 4, 40, 2, 6},
			seqParams{8, 6, 80, 2, 10},
			seqParams{12, 21, 160, 2, 15})),
	},
	{
		Name: "s953a_3_2", Family: "iscas", Table: 1,
		Description: "s953-style netlist (paper: 515 vars, |S|=45)",
		build: buildSeqParity(seqDims(
			seqParams{7, 5, 60, 2, 3},
			seqParams{10, 8, 120, 2, 3},
			seqParams{15, 29, 220, 3, 3})),
	},
	{
		Name: "s1196a_7_4", Family: "iscas", Table: 1,
		Description: "s1196-style netlist (paper: 708 vars, |S|=32)",
		build: buildSeqParity(seqDims(
			seqParams{7, 4, 70, 2, 4},
			seqParams{10, 6, 150, 2, 5},
			seqParams{16, 18, 300, 2, 7})),
	},
	{
		Name: "s1196a_3_2", Family: "iscas", Table: 2,
		Description: "s1196-style netlist, lighter parity (paper: 690 vars, |S|=32)",
		build: buildSeqParity(seqDims(
			seqParams{7, 4, 70, 2, 2},
			seqParams{10, 6, 150, 2, 3},
			seqParams{16, 18, 295, 2, 3})),
	},
	{
		Name: "s1196a_15_7", Family: "iscas", Table: 2,
		Description: "s1196-style netlist, heavier parity (paper: 777 vars, |S|=32)",
		build: buildSeqParity(seqDims(
			seqParams{7, 4, 70, 2, 7},
			seqParams{10, 6, 150, 2, 10},
			seqParams{16, 18, 320, 2, 15})),
	},
	{
		Name: "s1238a_7_4", Family: "iscas", Table: 1,
		Description: "s1238-style netlist (paper: 704 vars, |S|=32)",
		build: buildSeqParity(seqDims(
			seqParams{7, 4, 72, 2, 4},
			seqParams{10, 6, 152, 2, 5},
			seqParams{16, 18, 300, 2, 7})),
	},
	{
		Name: "s1238a_3_2", Family: "iscas", Table: 2,
		Description: "s1238-style netlist, lighter parity (paper: 686 vars, |S|=32)",
		build: buildSeqParity(seqDims(
			seqParams{7, 4, 72, 2, 2},
			seqParams{10, 6, 152, 2, 3},
			seqParams{16, 18, 292, 2, 3})),
	},
	{
		Name: "s1238a_15_7", Family: "iscas", Table: 2,
		Description: "s1238-style netlist, heavier parity (paper: 773 vars, |S|=32)",
		build: buildSeqParity(seqDims(
			seqParams{7, 4, 72, 2, 7},
			seqParams{10, 6, 152, 2, 10},
			seqParams{16, 18, 330, 2, 15})),
	},
	// --- sketch/program-synthesis-style benchmarks --------------------
	{
		Name: "EnqueueSeqSK", Family: "sketch", Table: 1,
		Description: "queue-pipeline sketch analogue (paper: 16466 vars, |S|=42)",
		build: buildSketch(sketchDims(
			sketchParams{10, 3, 8, 4, 2},
			sketchParams{20, 4, 12, 10, 2},
			sketchParams{42, 6, 21, 40, 2}), "pipeline"),
	},
	{
		Name: "LoginService2", Family: "sketch", Table: 1,
		Description: "service-pipeline sketch analogue (paper: 11511 vars, |S|=36)",
		build: buildSketch(sketchDims(
			sketchParams{10, 3, 8, 3, 1},
			sketchParams{18, 4, 12, 8, 1},
			sketchParams{36, 6, 18, 30, 1}), "pipeline"),
	},
	{
		Name: "LLReverse", Family: "sketch", Table: 1,
		Description: "linked-list double-reverse identity (paper: 63797 vars, |S|=25)",
		build: buildSketch(sketchDims(
			sketchParams{9, 3, 6, 4, 0},
			sketchParams{15, 4, 10, 12, 0},
			sketchParams{25, 5, 25, 60, 0}), "reverse"),
	},
	{
		Name: "Sort", Family: "sketch", Table: 1,
		Description: "sorting-network sortedness sketch (paper: 12125 vars, |S|=52)",
		build: buildSketch(sketchDims(
			sketchParams{10, 4, 5, 0, 2},
			sketchParams{20, 5, 8, 0, 2},
			sketchParams{52, 8, 13, 0, 2}), "sort"),
	},
	{
		Name: "TreeMax", Family: "sketch", Table: 2,
		Description: "tree max-reduction sketch (paper: 24859 vars, |S|=19)",
		build: buildSketch(sketchDims(
			sketchParams{8, 4, 4, 0, 0},
			sketchParams{12, 6, 8, 0, 0},
			sketchParams{19, 8, 19, 0, 0}), "max"),
	},
	{
		Name: "ProcessBean", Family: "sketch", Table: 2,
		Description: "service-pipeline sketch analogue (paper: 4768 vars, |S|=64)",
		build: buildSketch(sketchDims(
			sketchParams{11, 3, 8, 3, 3},
			sketchParams{22, 4, 11, 6, 3},
			sketchParams{64, 4, 16, 10, 3}), "pipeline"),
	},
	{
		Name: "ProjectService3", Family: "sketch", Table: 2,
		Description: "service-pipeline sketch analogue (paper: 3175 vars, |S|=55)",
		build: buildSketch(sketchDims(
			sketchParams{11, 3, 7, 2, 2},
			sketchParams{22, 4, 11, 5, 2},
			sketchParams{55, 5, 11, 8, 2}), "pipeline"),
	},
	{
		Name: "tutorial3", Family: "sketch", Table: 1,
		Description: "deep tutorial sketch analogue (paper: 486193 vars, |S|=31)",
		build: buildSketch(sketchDims(
			sketchParams{9, 3, 6, 6, 1},
			sketchParams{16, 4, 16, 30, 1},
			sketchParams{31, 8, 31, 600, 1}), "pipeline"),
	},
	// --- Arithmetic equivalence ---------------------------------------
	{
		Name: "Karatsuba", Family: "arith", Table: 1,
		Description: "Karatsuba vs array multiplier miter (paper: 19594 vars, |S|=41)",
		build:       buildKaratsuba(dims{5, 10, 20}),
	},
}

// caseScaled builds a case-family generator whose input and gate counts
// vary with scale.
func caseScaled(inputs, gates dims) func(Scale, uint64) (*Instance, error) {
	return func(scale Scale, seed uint64) (*Instance, error) {
		return buildCase(inputs.at(scale), gates.at(scale))(scale, seed)
	}
}
