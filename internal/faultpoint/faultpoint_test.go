package faultpoint

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDisarmedIsInert(t *testing.T) {
	Reset()
	if err := Fire("nope"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	if err := FireWait("nope", func() bool { return true }); err != nil {
		t.Fatalf("disarmed FireWait returned %v", err)
	}
	if n := Hits("nope"); n != 0 {
		t.Fatalf("disarmed point counted %d hits", n)
	}
}

func TestErrSkipAndCount(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Fault{Err: boom, Skip: 1, Count: 2})
	want := []error{nil, boom, boom, nil, nil}
	for i, w := range want {
		if err := Fire("p"); !errors.Is(err, w) && err != w {
			t.Fatalf("hit %d: err %v, want %v", i, err, w)
		}
	}
	if h, f := Hits("p"), Fired("p"); h != 5 || f != 2 {
		t.Fatalf("hits=%d fired=%d, want 5/2", h, f)
	}
}

func TestPanicFires(t *testing.T) {
	defer Reset()
	Arm("p", Fault{Panic: "kaboom"})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("armed panic point did not panic")
		}
	}()
	_ = Fire("p")
}

func TestStallInterruptible(t *testing.T) {
	defer Reset()
	Arm("p", Fault{Delay: 10 * time.Second})
	var stop atomic.Bool
	go func() {
		time.Sleep(20 * time.Millisecond)
		stop.Store(true)
	}()
	start := time.Now()
	err := FireWait("p", stop.Load)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err %v, want ErrInterrupted", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("interrupted stall took %v", el)
	}
}

func TestStallCompletesThenReturnsErr(t *testing.T) {
	defer Reset()
	boom := errors.New("late boom")
	Arm("p", Fault{Delay: 5 * time.Millisecond, Err: boom})
	if err := FireWait("p", func() bool { return false }); !errors.Is(err, boom) {
		t.Fatalf("err %v, want %v", err, boom)
	}
}

func TestConcurrentFireAndRearm(t *testing.T) {
	defer Reset()
	Arm("p", Fault{Err: errors.New("x"), Count: 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = Fire("p")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			Arm("q", Fault{})
			Disarm("q")
		}
	}()
	wg.Wait()
	if f := Fired("p"); f != 100 {
		t.Fatalf("fired %d, want exactly 100", f)
	}
}
