// Package faultpoint provides named fault-injection points for the
// chaos test suite. Production code calls Fire (or FireWait) at a
// handful of catalogued sites; when the point is disarmed — always,
// outside tests — the call is a single atomic load and returns nil.
// Tests arm a point with a Fault describing what should go wrong
// (a stall, an error, a panic) and for how many hits, then hammer the
// service and assert it degrades instead of melting.
//
// The package is deliberately global: the sites live in internal/bsat,
// internal/core, and internal/service, far below where a test holds a
// handle, and a request crosses all of those layers. Tests that arm
// points must not run in parallel with each other and must Reset (or
// Disarm) what they armed; the zero state is fully inert.
//
// # Point catalog
//
//   - PrepareSlow: start of a preparation flight (service cache miss),
//     before core.NewSetup. A Delay here models a slow ApproxMC setup;
//     the stall honors the flight's abandonment interrupt.
//   - PreparePanic: same site, after PrepareSlow. A Panic here models a
//     crash inside preparation; the flight recover must convert it to an
//     error, fail every co-waiter, and leave the cache unpoisoned.
//   - RequestPanic: top of Service.Sample / Service.Count, after
//     validation. Tests the request-boundary recover (HTTP 500).
//   - SolverStall: top of bsat.Session.Enumerate. A Delay models a BSAT
//     call that hangs; the stall polls the session's solver interrupt,
//     so deadline budgets and drain still cut it short, and an
//     interrupted stall reports budget exhaustion exactly like an
//     interrupted real search.
//   - SolverUnsat: same site. An Err here makes the call report an
//     empty cell (spurious UNSAT) — rounds see ⊥ and retry.
//   - RoundPanic: top of core.Setup.SampleRound. Tests the parallel
//     engine's worker recover (a panicking round must fail the request,
//     not the process).
package faultpoint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Catalogued injection points. Arming an uncatalogued name is allowed
// (the registry is just a map) but pointless: nothing Fires it.
const (
	PrepareSlow  = "service.prepare.slow"
	PreparePanic = "service.prepare.panic"
	RequestPanic = "service.request.panic"
	SolverStall  = "bsat.enumerate.stall"
	SolverUnsat  = "bsat.enumerate.unsat"
	RoundPanic   = "core.round.panic"
)

// ErrInterrupted is returned by FireWait when the caller's stop
// predicate cut an injected stall short — the injected fault was
// interrupted, exactly as a real stalled solver call would be.
var ErrInterrupted = errors.New("faultpoint: injected stall interrupted")

// Fault describes what an armed point does when hit.
type Fault struct {
	// Delay stalls the caller before any other effect. FireWait makes
	// the stall interruptible; Fire sleeps it out.
	Delay time.Duration
	// Err is returned after the delay (nil: return normally).
	Err error
	// Panic, when non-empty, panics after the delay with this message
	// (instead of returning Err).
	Panic string
	// Skip ignores the first Skip hits of the point.
	Skip int
	// Count fires the fault at most Count times after Skip; 0 means
	// every hit.
	Count int
}

type point struct {
	f     Fault
	hits  int64 // times the point was reached while armed
	fired int64 // times the fault actually triggered
}

var (
	armed  atomic.Int32 // number of armed points; 0 is the fast path
	mu     sync.Mutex
	points = map[string]*point{}
)

// Arm installs f at the named point, replacing any previous fault (and
// resetting its hit counters).
func Arm(name string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{f: f}
}

// Disarm removes the named point; a no-op if it is not armed.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
}

// Fired reports how many times the named point's fault has triggered
// since it was armed (0 if not armed).
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// Hits reports how many times the named point was reached since it was
// armed, whether or not the fault triggered.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Fire triggers the named point: disarmed, it returns nil after one
// atomic load; armed, it sleeps Delay, then panics or returns the
// fault's Err. The injection site decides what the error means (a
// budget exhaustion, an empty cell, …).
func Fire(name string) error { return FireWait(name, nil) }

// FireWait is Fire with an interruptible stall: while sleeping Delay it
// polls stop (when non-nil) about once a millisecond and returns
// ErrInterrupted as soon as it reports true. Sites under an interrupt
// contract (solver calls) pass their interrupt flag so injected stalls
// respect deadlines and drain like real work does.
func FireWait(name string, stop func() bool) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	var f Fault
	fire := false
	if ok {
		p.hits++
		if p.hits > int64(p.f.Skip) && (p.f.Count == 0 || p.fired < int64(p.f.Count)) {
			p.fired++
			fire = true
			f = p.f
		}
	}
	mu.Unlock()
	if !fire {
		return nil
	}
	if f.Delay > 0 {
		if stop == nil {
			time.Sleep(f.Delay)
		} else {
			deadline := time.Now().Add(f.Delay)
			for time.Now().Before(deadline) {
				if stop() {
					return ErrInterrupted
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	if f.Panic != "" {
		panic(fmt.Sprintf("faultpoint %s: %s", name, f.Panic))
	}
	return f.Err
}
