package bitvec

import (
	"testing"

	"unigen/internal/bsat"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// solveOne blasts and returns one witness's variable values.
func solveOne(t *testing.T, c *Context, names ...string) (map[string]uint64, bool) {
	t.Helper()
	bl, err := c.Blast()
	if err != nil {
		t.Fatal(err)
	}
	s := sat.New(bl.Formula, sat.Config{})
	if s.Solve() != sat.Sat {
		return nil, false
	}
	m := s.Model()
	out := map[string]uint64{}
	for _, n := range names {
		v, err := bl.Value(n, m)
		if err != nil {
			t.Fatal(err)
		}
		out[n] = v
	}
	return out, true
}

func TestAddConstraint(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	c.Assert(c.Eq(c.Add(x, y), c.Const(100, 8)))
	vals, ok := solveOne(t, c, "x", "y")
	if !ok {
		t.Fatal("unsat")
	}
	if (vals["x"]+vals["y"])&0xff != 100 {
		t.Fatalf("x=%d y=%d", vals["x"], vals["y"])
	}
}

func TestMulFactoring(t *testing.T) {
	// Factor 143 = 11 × 13 with nontrivial factors.
	c := NewContext()
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	c.Assert(c.Eq(c.Mul(x, y), c.Const(143, 8)))
	c.Assert(c.Ult(c.Const(1, 8), x))
	c.Assert(c.Ult(c.Const(1, 8), y))
	c.Assert(c.Ult(x, c.Const(143, 8)))
	c.Assert(c.Ult(y, c.Const(143, 8)))
	vals, ok := solveOne(t, c, "x", "y")
	if !ok {
		t.Fatal("unsat")
	}
	if (vals["x"]*vals["y"])&0xff != 143 {
		t.Fatalf("x=%d y=%d", vals["x"], vals["y"])
	}
}

func TestSubNegShift(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 8)
	// x - x = 0, x<<1 == 2x, lshr(x<<4, 4) keeps low nibble.
	c.Assert(c.Eq(c.Sub(x, x), c.Const(0, 8)))
	c.Assert(c.Eq(c.Shl(x, 1), c.Add(x, x)))
	c.Assert(c.Eq(c.Lshr(c.Shl(x, 4), 4), c.And(x, c.Const(0x0f, 8))))
	if _, ok := solveOne(t, c, "x"); !ok {
		t.Fatal("tautologies unsat?!")
	}
	// These are tautologies: the formula must have 256 witnesses.
	bl, err := c.Blast()
	if err != nil {
		t.Fatal(err)
	}
	n, res := bsat.Count(bl.Formula, 300, bsat.Options{})
	if !res.Exhausted || n != 256 {
		t.Fatalf("count = %d (exhausted=%v), want 256", n, res.Exhausted)
	}
}

func TestExtractConcat(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 8)
	hi := c.Extract(x, 4, 4)
	lo := c.Extract(x, 0, 4)
	c.Assert(c.Eq(c.Concat(hi, lo), x)) // tautology
	c.Assert(c.Eq(c.Concat(lo, hi), c.Const(0x5a, 8)))
	vals, ok := solveOne(t, c, "x")
	if !ok {
		t.Fatal("unsat")
	}
	if vals["x"] != 0xa5 {
		t.Fatalf("x = %#x, want 0xa5", vals["x"])
	}
}

func TestIteAndBools(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 4)
	y := c.Var("y", 4)
	cond := c.Ult(x, y)
	z := c.Ite(cond, x, y) // z = min(x,y)
	c.Assert(c.Eq(z, c.Const(3, 4)))
	c.Assert(c.BoolAnd(c.Ule(c.Const(3, 4), x), c.Ule(c.Const(3, 4), y)))
	vals, ok := solveOne(t, c, "x", "y")
	if !ok {
		t.Fatal("unsat")
	}
	mn := vals["x"]
	if vals["y"] < mn {
		mn = vals["y"]
	}
	if mn != 3 {
		t.Fatalf("min(x,y) = %d, want 3 (x=%d y=%d)", mn, vals["x"], vals["y"])
	}
}

func TestUnsatConstraint(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 4)
	c.Assert(c.Ult(x, c.Const(0, 4))) // nothing is < 0
	bl, err := c.Blast()
	if err != nil {
		t.Fatal(err)
	}
	s := sat.New(bl.Formula, sat.Config{})
	if s.Solve() != sat.Unsat {
		t.Fatal("x < 0 should be UNSAT")
	}
}

func TestSamplingSetIsVariables(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 6)
	y := c.Var("y", 6)
	c.Assert(c.Ule(x, y))
	bl, err := c.Blast()
	if err != nil {
		t.Fatal(err)
	}
	if len(bl.Formula.SamplingSet) != 12 {
		t.Fatalf("sampling set = %d bits, want 12", len(bl.Formula.SamplingSet))
	}
	// Witness count: #{(x,y): x ≤ y} = 64*65/2 = 2080.
	n, res := bsat.Count(bl.Formula, 3000, bsat.Options{})
	if !res.Exhausted || n != 2080 {
		t.Fatalf("count = %d (exhausted=%v), want 2080", n, res.Exhausted)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on width mismatch")
		}
	}()
	c := NewContext()
	c.Add(c.Var("a", 4), c.Var("b", 5))
}

func TestRandomExpressionsAgainstSemantics(t *testing.T) {
	// Property: for random (x,y) and a fixed expression DAG, asserting
	// outputs equal to concrete evaluations is satisfiable and every
	// witness decodes to values consistent with uint64 semantics.
	rng := randx.New(301)
	for iter := 0; iter < 25; iter++ {
		const w = 6
		xv := rng.Uint64() & mask(w)
		yv := rng.Uint64() & mask(w)
		c := NewContext()
		x := c.Var("x", w)
		y := c.Var("y", w)
		c.Assert(c.Eq(x, c.Const(xv, w)))
		c.Assert(c.Eq(y, c.Const(yv, w)))
		sum := c.Add(x, y)
		prod := c.Mul(x, y)
		xo := c.Xor(x, y)
		c.Assert(c.Eq(sum, c.Const((xv+yv)&mask(w), w)))
		c.Assert(c.Eq(prod, c.Const((xv*yv)&mask(w), w)))
		c.Assert(c.Eq(xo, c.Const(xv^yv, w)))
		if (xv < yv) != (yv > xv) {
			t.Fatal("impossible")
		}
		lt := c.Ult(x, y)
		if xv < yv {
			c.Assert(lt)
		} else {
			c.Assert(c.BoolNot(lt))
		}
		if _, ok := solveOne(t, c, "x"); !ok {
			t.Fatalf("iter %d: semantics mismatch (x=%d y=%d)", iter, xv, yv)
		}
	}
}
