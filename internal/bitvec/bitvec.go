// Package bitvec is a word-level (SMT bit-vector-style) constraint
// front-end over the circuit substrate: expressions over fixed-width
// bit-vectors are bit-blasted to CNF with the bit-vector variables as
// the sampling set. The DAC'14 conclusion names exactly this direction
// ("the design of scalable generators with similar guarantees for SMT
// constraints") as future work; bit-blasting with a declared
// independent support is its standard realization, and the paper's own
// "bit-blasted versions of SMTLib benchmarks" (§5) are instances of it.
package bitvec

import (
	"fmt"

	"unigen/internal/circuit"
	"unigen/internal/cnf"
)

// Expr is a bit-vector expression. Expressions are built through the
// Context and are immutable.
type Expr struct {
	width int
	id    int
}

// Width returns the expression's bit width (0 for booleans).
func (e Expr) Width() int { return e.width }

type exprKind int

const (
	kVar exprKind = iota
	kConst
	kAdd
	kMul
	kAnd
	kOr
	kXor
	kNot
	kNeg
	kShl
	kLshr
	kEq
	kUlt
	kUle
	kIte
	kExtract
	kConcat
	kBoolAnd
	kBoolOr
	kBoolNot
)

type exprNode struct {
	kind  exprKind
	width int
	args  []int
	k     uint64 // constant value / shift amount / extract offset
	name  string
}

// Context builds and bit-blasts bit-vector constraints.
type Context struct {
	nodes   []exprNode
	asserts []int // boolean expr ids asserted true
	vars    []int // variable expr ids, in declaration order
}

// NewContext returns an empty constraint context.
func NewContext() *Context { return &Context{} }

func (c *Context) add(n exprNode) Expr {
	c.nodes = append(c.nodes, n)
	return Expr{width: n.width, id: len(c.nodes) - 1}
}

func (c *Context) checkSameWidth(op string, a, b Expr) {
	if a.width != b.width {
		panic(fmt.Sprintf("bitvec: %s width mismatch %d vs %d", op, a.width, b.width))
	}
}

// Var declares a fresh w-bit variable. Variables form the sampling set
// of the blasted formula.
func (c *Context) Var(name string, w int) Expr {
	if w <= 0 {
		panic("bitvec: variable width must be positive")
	}
	e := c.add(exprNode{kind: kVar, width: w, name: name})
	c.vars = append(c.vars, e.id)
	return e
}

// Const builds a w-bit constant.
func (c *Context) Const(v uint64, w int) Expr {
	if w <= 0 || w > 64 {
		panic("bitvec: constant width must be in 1..64")
	}
	return c.add(exprNode{kind: kConst, width: w, k: v & mask(w)})
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// Add returns a+b (mod 2^w).
func (c *Context) Add(a, b Expr) Expr {
	c.checkSameWidth("Add", a, b)
	return c.add(exprNode{kind: kAdd, width: a.width, args: []int{a.id, b.id}})
}

// Mul returns a*b (mod 2^w).
func (c *Context) Mul(a, b Expr) Expr {
	c.checkSameWidth("Mul", a, b)
	return c.add(exprNode{kind: kMul, width: a.width, args: []int{a.id, b.id}})
}

// Neg returns two's-complement negation.
func (c *Context) Neg(a Expr) Expr {
	return c.add(exprNode{kind: kNeg, width: a.width, args: []int{a.id}})
}

// Sub returns a-b (mod 2^w).
func (c *Context) Sub(a, b Expr) Expr { return c.Add(a, c.Neg(b)) }

// And/Or/Xor/Not are bitwise.
func (c *Context) And(a, b Expr) Expr {
	c.checkSameWidth("And", a, b)
	return c.add(exprNode{kind: kAnd, width: a.width, args: []int{a.id, b.id}})
}

// Or returns bitwise or.
func (c *Context) Or(a, b Expr) Expr {
	c.checkSameWidth("Or", a, b)
	return c.add(exprNode{kind: kOr, width: a.width, args: []int{a.id, b.id}})
}

// Xor returns bitwise xor.
func (c *Context) Xor(a, b Expr) Expr {
	c.checkSameWidth("Xor", a, b)
	return c.add(exprNode{kind: kXor, width: a.width, args: []int{a.id, b.id}})
}

// Not returns bitwise complement.
func (c *Context) Not(a Expr) Expr {
	return c.add(exprNode{kind: kNot, width: a.width, args: []int{a.id}})
}

// Shl shifts left by constant k.
func (c *Context) Shl(a Expr, k int) Expr {
	return c.add(exprNode{kind: kShl, width: a.width, args: []int{a.id}, k: uint64(k)})
}

// Lshr shifts right (logical) by constant k.
func (c *Context) Lshr(a Expr, k int) Expr {
	return c.add(exprNode{kind: kLshr, width: a.width, args: []int{a.id}, k: uint64(k)})
}

// Extract returns bits [lo, lo+w) of a.
func (c *Context) Extract(a Expr, lo, w int) Expr {
	if lo < 0 || w <= 0 || lo+w > a.width {
		panic("bitvec: extract out of range")
	}
	return c.add(exprNode{kind: kExtract, width: w, args: []int{a.id}, k: uint64(lo)})
}

// Concat returns b ++ a with a in the low bits.
func (c *Context) Concat(hi, lo Expr) Expr {
	return c.add(exprNode{kind: kConcat, width: hi.width + lo.width, args: []int{hi.id, lo.id}})
}

// Eq returns the boolean a = b.
func (c *Context) Eq(a, b Expr) Expr {
	c.checkSameWidth("Eq", a, b)
	return c.add(exprNode{kind: kEq, width: 0, args: []int{a.id, b.id}})
}

// Ult returns the boolean a < b (unsigned).
func (c *Context) Ult(a, b Expr) Expr {
	c.checkSameWidth("Ult", a, b)
	return c.add(exprNode{kind: kUlt, width: 0, args: []int{a.id, b.id}})
}

// Ule returns the boolean a <= b (unsigned).
func (c *Context) Ule(a, b Expr) Expr {
	c.checkSameWidth("Ule", a, b)
	return c.add(exprNode{kind: kUle, width: 0, args: []int{a.id, b.id}})
}

// Ite returns cond ? a : b. cond must be boolean (width 0).
func (c *Context) Ite(cond, a, b Expr) Expr {
	if cond.width != 0 {
		panic("bitvec: Ite condition must be boolean")
	}
	c.checkSameWidth("Ite", a, b)
	return c.add(exprNode{kind: kIte, width: a.width, args: []int{cond.id, a.id, b.id}})
}

// BoolAnd conjoins booleans.
func (c *Context) BoolAnd(a, b Expr) Expr {
	if a.width != 0 || b.width != 0 {
		panic("bitvec: BoolAnd on non-boolean")
	}
	return c.add(exprNode{kind: kBoolAnd, width: 0, args: []int{a.id, b.id}})
}

// BoolOr disjoins booleans.
func (c *Context) BoolOr(a, b Expr) Expr {
	if a.width != 0 || b.width != 0 {
		panic("bitvec: BoolOr on non-boolean")
	}
	return c.add(exprNode{kind: kBoolOr, width: 0, args: []int{a.id, b.id}})
}

// BoolNot negates a boolean.
func (c *Context) BoolNot(a Expr) Expr {
	if a.width != 0 {
		panic("bitvec: BoolNot on non-boolean")
	}
	return c.add(exprNode{kind: kBoolNot, width: 0, args: []int{a.id}})
}

// Assert requires a boolean expression to hold in every witness.
func (c *Context) Assert(e Expr) {
	if e.width != 0 {
		panic("bitvec: Assert on non-boolean expression")
	}
	c.asserts = append(c.asserts, e.id)
}

// Blasted is the bit-blasting result.
type Blasted struct {
	Formula *cnf.Formula
	// VarBits maps each declared variable (by name) to its CNF
	// variables, LSB first; their concatenation is the sampling set.
	VarBits map[string][]cnf.Var
}

// Blast bit-blasts the asserted constraints to CNF. The sampling set is
// the declared bit-vector variables' bits — an independent support by
// construction (every internal signal is a function of them).
func (c *Context) Blast() (*Blasted, error) {
	b := circuit.NewBuilder()
	words := make([]circuit.Word, len(c.nodes))
	bools := make([]circuit.Sig, len(c.nodes))
	varNames := map[int]string{}
	for id, n := range c.nodes {
		switch n.kind {
		case kVar:
			words[id] = b.InputWord(n.width)
			varNames[id] = n.name
		case kConst:
			words[id] = b.ConstWord(n.k, n.width)
		case kAdd:
			words[id] = b.AddWord(words[n.args[0]], words[n.args[1]])[:n.width]
		case kMul:
			words[id] = b.MulWord(words[n.args[0]], words[n.args[1]], n.width)
		case kNeg:
			inv := b.NotWord(words[n.args[0]])
			words[id] = b.AddWord(inv, b.ConstWord(1, n.width))[:n.width]
		case kAnd:
			words[id] = b.AndWord(words[n.args[0]], words[n.args[1]])
		case kOr:
			words[id] = b.OrWord(words[n.args[0]], words[n.args[1]])
		case kXor:
			words[id] = b.XorWord(words[n.args[0]], words[n.args[1]])
		case kNot:
			words[id] = b.NotWord(words[n.args[0]])
		case kShl:
			words[id] = b.ShlWord(words[n.args[0]], int(n.k))
		case kLshr:
			src := words[n.args[0]]
			out := make(circuit.Word, n.width)
			for i := 0; i < n.width; i++ {
				if i+int(n.k) < len(src) {
					out[i] = b.Buf(src[i+int(n.k)])
				} else {
					out[i] = b.Const(false)
				}
			}
			words[id] = out
		case kExtract:
			src := words[n.args[0]]
			out := make(circuit.Word, n.width)
			for i := 0; i < n.width; i++ {
				out[i] = b.Buf(src[int(n.k)+i])
			}
			words[id] = out
		case kConcat:
			hi, lo := words[n.args[0]], words[n.args[1]]
			out := make(circuit.Word, 0, n.width)
			out = append(out, lo...)
			out = append(out, hi...)
			words[id] = out
		case kEq:
			x, y := words[n.args[0]], words[n.args[1]]
			acc := b.Const(true)
			for i := range x {
				acc = b.And(acc, b.Xnor(x[i], y[i]))
			}
			bools[id] = acc
		case kUlt:
			bools[id] = b.LessThan(words[n.args[0]], words[n.args[1]])
		case kUle:
			bools[id] = b.Not(b.LessThan(words[n.args[1]], words[n.args[0]]))
		case kIte:
			words[id] = b.MuxWord(bools[n.args[0]], words[n.args[1]], words[n.args[2]])
		case kBoolAnd:
			bools[id] = b.And(bools[n.args[0]], bools[n.args[1]])
		case kBoolOr:
			bools[id] = b.Or(bools[n.args[0]], bools[n.args[1]])
		case kBoolNot:
			bools[id] = b.Not(bools[n.args[0]])
		default:
			return nil, fmt.Errorf("bitvec: unhandled expression kind %d", n.kind)
		}
	}
	for _, a := range c.asserts {
		b.Output(bools[a])
	}
	cir := b.Build()
	enc, err := circuit.Encode(cir, circuit.EncodeOptions{})
	if err != nil {
		return nil, err
	}
	for _, o := range cir.Outputs {
		enc.AssertTrue(o)
	}
	out := &Blasted{Formula: enc.Formula, VarBits: map[string][]cnf.Var{}}
	// Map variable bits: inputs were declared in node order.
	inputIdx := 0
	for id, n := range c.nodes {
		if n.kind != kVar {
			continue
		}
		bits := make([]cnf.Var, n.width)
		for i := 0; i < n.width; i++ {
			bits[i] = enc.InputVars[inputIdx]
			inputIdx++
		}
		out.VarBits[varNames[id]] = bits
	}
	return out, nil
}

// Value decodes a variable's value from a witness assignment.
func (bl *Blasted) Value(name string, a cnf.Assignment) (uint64, error) {
	bits, ok := bl.VarBits[name]
	if !ok {
		return 0, fmt.Errorf("bitvec: unknown variable %q", name)
	}
	if len(bits) > 64 {
		return 0, fmt.Errorf("bitvec: variable %q wider than 64 bits", name)
	}
	var v uint64
	for i, b := range bits {
		if a.Get(b) {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}
