package circuit

import (
	"fmt"

	"unigen/internal/cnf"
)

// EncodeOptions controls CNF generation.
type EncodeOptions struct {
	// PlainXOR expands XOR gates into four CNF clauses instead of a
	// native XOR clause. Native XOR clauses (the default) match how
	// CryptoMiniSAT-era encodings keep parity structure visible to the
	// solver; plain CNF is the ablation.
	PlainXOR bool
}

// Encoded is the result of Tseitin-encoding a circuit.
type Encoded struct {
	Formula *cnf.Formula
	// SigVar maps every signal to its CNF variable.
	SigVar []cnf.Var
	// InputVars are the variables of the primary inputs, in order; they
	// are also the formula's sampling set (an independent support).
	InputVars []cnf.Var
	// OutputVars are the variables of the outputs, in order.
	OutputVars []cnf.Var
}

// Encode Tseitin-encodes a combinational circuit. Every signal receives
// a variable; gate semantics become clauses; the sampling set is the
// primary inputs. Sequential circuits must be unrolled first.
func Encode(c *Circuit, opts EncodeOptions) (*Encoded, error) {
	if len(c.Latches) > 0 {
		return nil, fmt.Errorf("circuit: Encode requires a combinational circuit; call Unroll first")
	}
	f := cnf.New(len(c.Gates))
	sigVar := make([]cnf.Var, len(c.Gates))
	for s := range c.Gates {
		sigVar[s] = cnf.Var(s + 1)
	}
	for s, g := range c.Gates {
		z := sigVar[s]
		switch g.Kind {
		case KindInput:
			// free variable
		case KindConst:
			if g.In[0] == 1 {
				f.AddClause(int(z))
			} else {
				f.AddClause(-int(z))
			}
		case KindNot:
			a := sigVar[g.In[0]]
			f.AddClause(int(z), int(a))
			f.AddClause(-int(z), -int(a))
		case KindBuf:
			a := sigVar[g.In[0]]
			f.AddClause(int(z), -int(a))
			f.AddClause(-int(z), int(a))
		case KindAnd:
			a, b := sigVar[g.In[0]], sigVar[g.In[1]]
			f.AddClause(-int(z), int(a))
			f.AddClause(-int(z), int(b))
			f.AddClause(int(z), -int(a), -int(b))
		case KindOr:
			a, b := sigVar[g.In[0]], sigVar[g.In[1]]
			f.AddClause(int(z), -int(a))
			f.AddClause(int(z), -int(b))
			f.AddClause(-int(z), int(a), int(b))
		case KindXor:
			a, b := sigVar[g.In[0]], sigVar[g.In[1]]
			if opts.PlainXOR {
				f.AddClause(-int(z), int(a), int(b))
				f.AddClause(-int(z), -int(a), -int(b))
				f.AddClause(int(z), -int(a), int(b))
				f.AddClause(int(z), int(a), -int(b))
			} else {
				// z ⊕ a ⊕ b = 0
				f.AddXOR([]cnf.Var{z, a, b}, false)
			}
		default:
			return nil, fmt.Errorf("circuit: cannot encode gate kind %v", g.Kind)
		}
	}
	e := &Encoded{Formula: f, SigVar: sigVar}
	for _, in := range c.Inputs {
		e.InputVars = append(e.InputVars, sigVar[in])
	}
	for _, o := range c.Outputs {
		e.OutputVars = append(e.OutputVars, sigVar[o])
	}
	f.SamplingSet = append([]cnf.Var(nil), e.InputVars...)
	return e, nil
}

// AssertTrue adds a unit clause forcing signal s to 1.
func (e *Encoded) AssertTrue(s Sig) {
	e.Formula.AddClause(int(e.SigVar[s]))
}

// AssertFalse adds a unit clause forcing signal s to 0.
func (e *Encoded) AssertFalse(s Sig) {
	e.Formula.AddClause(-int(e.SigVar[s]))
}

// AssertParity adds the parity condition ⊕sigs = rhs — the "parity
// conditions on randomly chosen subsets of outputs and next-state
// variables" the paper applies to its ISCAS89 benchmarks (§5).
func (e *Encoded) AssertParity(sigs []Sig, rhs bool) {
	vars := make([]cnf.Var, len(sigs))
	for i, s := range sigs {
		vars[i] = e.SigVar[s]
	}
	e.Formula.AddXOR(vars, rhs)
}

// InputAssignment converts a witness of the encoded formula into
// circuit input values.
func (e *Encoded) InputAssignment(w cnf.Assignment) []bool {
	out := make([]bool, len(e.InputVars))
	for i, v := range e.InputVars {
		out[i] = w.Get(v)
	}
	return out
}
