// Package circuit provides the gate-level hardware substrate of the
// reproduction: a combinational/sequential circuit model, a simulator,
// netlist builders for the benchmark families of the DAC'14 evaluation
// (ISCAS89-style sequential logic, bit-blasted arithmetic, sketch-style
// synthesis constraints), and a Tseitin encoder whose output formulas
// carry the circuit inputs as their sampling set.
//
// The Tseitin encoder is where the paper's central observation becomes
// concrete: every auxiliary variable the encoding introduces is uniquely
// determined by the circuit inputs, so the inputs form an independent
// support that is often orders of magnitude smaller than the full
// variable count (§4: "when a non-CNF formula G is converted to an
// equisatisfiable CNF formula F using Tseitin encoding, the variables
// introduced by the encoding form a dependent support of F").
package circuit

import "fmt"

// Sig identifies a signal (gate output) in a circuit. Signals are dense
// indices into Circuit.Gates; gate inputs always have smaller indices
// than the gate itself, so index order is a topological order.
type Sig int

// GateKind enumerates gate types.
type GateKind int

// Gate kinds.
const (
	KindConst GateKind = iota // constant; In[0] == 1 means true
	KindInput                 // primary input (or latch output pseudo-input)
	KindNot
	KindBuf
	KindAnd
	KindOr
	KindXor
)

func (k GateKind) String() string {
	switch k {
	case KindConst:
		return "const"
	case KindInput:
		return "input"
	case KindNot:
		return "not"
	case KindBuf:
		return "buf"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	case KindXor:
		return "xor"
	default:
		return fmt.Sprintf("gate(%d)", int(k))
	}
}

// Gate is one node of the circuit DAG.
type Gate struct {
	Kind GateKind
	In   [2]Sig // Not/Buf use In[0]; Const uses In[0] as 0/1
}

// Latch is a sequential element: Q is a KindInput pseudo-input holding
// the latch output; D is the next-state function. All latches reset
// to 0.
type Latch struct {
	Q Sig
	D Sig
}

// Circuit is a gate-level netlist.
type Circuit struct {
	Gates   []Gate
	Inputs  []Sig // primary inputs, in declaration order (excludes latch Qs)
	Outputs []Sig
	Latches []Latch
}

// NumGates returns the total signal count.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// Builder constructs circuits gate by gate.
type Builder struct {
	c Circuit
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Build finalizes and returns the circuit.
func (b *Builder) Build() *Circuit {
	out := b.c
	return &out
}

func (b *Builder) add(g Gate) Sig {
	b.c.Gates = append(b.c.Gates, g)
	return Sig(len(b.c.Gates) - 1)
}

// Const returns a constant signal.
func (b *Builder) Const(v bool) Sig {
	in := Sig(0)
	if v {
		in = 1
	}
	return b.add(Gate{Kind: KindConst, In: [2]Sig{in, 0}})
}

// Input declares a primary input.
func (b *Builder) Input() Sig {
	s := b.add(Gate{Kind: KindInput})
	b.c.Inputs = append(b.c.Inputs, s)
	return s
}

// InputWord declares n primary inputs (LSB first).
func (b *Builder) InputWord(n int) Word {
	w := make(Word, n)
	for i := range w {
		w[i] = b.Input()
	}
	return w
}

// Not returns ¬a.
func (b *Builder) Not(a Sig) Sig { return b.add(Gate{Kind: KindNot, In: [2]Sig{a, 0}}) }

// Buf returns a buffer of a (identity).
func (b *Builder) Buf(a Sig) Sig { return b.add(Gate{Kind: KindBuf, In: [2]Sig{a, 0}}) }

// And returns a∧b.
func (b *Builder) And(a, c Sig) Sig { return b.add(Gate{Kind: KindAnd, In: [2]Sig{a, c}}) }

// Or returns a∨b.
func (b *Builder) Or(a, c Sig) Sig { return b.add(Gate{Kind: KindOr, In: [2]Sig{a, c}}) }

// Xor returns a⊕b.
func (b *Builder) Xor(a, c Sig) Sig { return b.add(Gate{Kind: KindXor, In: [2]Sig{a, c}}) }

// Nand returns ¬(a∧b).
func (b *Builder) Nand(a, c Sig) Sig { return b.Not(b.And(a, c)) }

// Nor returns ¬(a∨b).
func (b *Builder) Nor(a, c Sig) Sig { return b.Not(b.Or(a, c)) }

// Xnor returns ¬(a⊕b).
func (b *Builder) Xnor(a, c Sig) Sig { return b.Not(b.Xor(a, c)) }

// Mux returns sel ? t : e.
func (b *Builder) Mux(sel, t, e Sig) Sig {
	return b.Or(b.And(sel, t), b.And(b.Not(sel), e))
}

// Output marks a signal as a primary output.
func (b *Builder) Output(s Sig) {
	b.c.Outputs = append(b.c.Outputs, s)
}

// Latch declares a sequential element with next-state d and returns its
// output Q (reset value 0).
func (b *Builder) Latch(d Sig) Sig {
	q := b.add(Gate{Kind: KindInput}) // pseudo-input; not in Inputs list
	b.c.Latches = append(b.c.Latches, Latch{Q: q, D: d})
	return q
}

// LatchLoop declares a latch whose next-state function is provided
// after the fact (for feedback loops): it returns Q plus a setter.
func (b *Builder) LatchLoop() (q Sig, setD func(Sig)) {
	q = b.add(Gate{Kind: KindInput})
	b.c.Latches = append(b.c.Latches, Latch{Q: q, D: -1})
	idx := len(b.c.Latches) - 1
	return q, func(d Sig) { b.c.Latches[idx].D = d }
}

// Eval simulates the circuit on the given primary-input values, with
// latch outputs fixed to latchState (nil means all zero). It returns
// the value of every signal.
func (c *Circuit) Eval(inputs []bool, latchState []bool) ([]bool, error) {
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("circuit: got %d input values, want %d", len(inputs), len(c.Inputs))
	}
	if latchState != nil && len(latchState) != len(c.Latches) {
		return nil, fmt.Errorf("circuit: got %d latch values, want %d", len(latchState), len(c.Latches))
	}
	vals := make([]bool, len(c.Gates))
	for i, s := range c.Inputs {
		vals[s] = inputs[i]
	}
	for i, l := range c.Latches {
		if latchState != nil {
			vals[l.Q] = latchState[i]
		}
	}
	for s, g := range c.Gates {
		switch g.Kind {
		case KindConst:
			vals[s] = g.In[0] == 1
		case KindInput:
			// already set
		case KindNot:
			vals[s] = !vals[g.In[0]]
		case KindBuf:
			vals[s] = vals[g.In[0]]
		case KindAnd:
			vals[s] = vals[g.In[0]] && vals[g.In[1]]
		case KindOr:
			vals[s] = vals[g.In[0]] || vals[g.In[1]]
		case KindXor:
			vals[s] = vals[g.In[0]] != vals[g.In[1]]
		default:
			return nil, fmt.Errorf("circuit: unknown gate kind %v", g.Kind)
		}
	}
	return vals, nil
}

// Step simulates one clock cycle: evaluate with the given latch state,
// return output values and the next latch state.
func (c *Circuit) Step(inputs, latchState []bool) (outputs, next []bool, err error) {
	vals, err := c.Eval(inputs, latchState)
	if err != nil {
		return nil, nil, err
	}
	outputs = make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		outputs[i] = vals[o]
	}
	next = make([]bool, len(c.Latches))
	for i, l := range c.Latches {
		next[i] = vals[l.D]
	}
	return outputs, next, nil
}

// Unroll converts a sequential circuit into a combinational one over k
// time frames (bounded-model-checking style): frame 0 latches are 0;
// frame t latches take frame t-1 next-state values. Primary inputs are
// replicated per frame; outputs of every frame are exposed, followed by
// the final next-state signals.
func (c *Circuit) Unroll(k int) (*Circuit, error) {
	if len(c.Latches) == 0 && k != 1 {
		return nil, fmt.Errorf("circuit: unrolling a combinational circuit requires k=1")
	}
	for _, l := range c.Latches {
		if l.D < 0 {
			return nil, fmt.Errorf("circuit: latch with unset next-state")
		}
	}
	b := NewBuilder()
	state := make([]Sig, len(c.Latches))
	for i := range state {
		state[i] = b.Const(false)
	}
	var lastOutputs []Sig
	for t := 0; t < k; t++ {
		m := make([]Sig, len(c.Gates))
		latchIdx := map[Sig]int{}
		for i, l := range c.Latches {
			latchIdx[l.Q] = i
		}
		inputSet := map[Sig]bool{}
		for _, in := range c.Inputs {
			inputSet[in] = true
		}
		for s, g := range c.Gates {
			sig := Sig(s)
			switch g.Kind {
			case KindConst:
				m[s] = b.Const(g.In[0] == 1)
			case KindInput:
				if i, ok := latchIdx[sig]; ok {
					m[s] = b.Buf(state[i])
				} else if inputSet[sig] {
					m[s] = b.Input()
				} else {
					return nil, fmt.Errorf("circuit: dangling pseudo-input %d", s)
				}
			case KindNot:
				m[s] = b.Not(m[g.In[0]])
			case KindBuf:
				m[s] = b.Buf(m[g.In[0]])
			case KindAnd:
				m[s] = b.And(m[g.In[0]], m[g.In[1]])
			case KindOr:
				m[s] = b.Or(m[g.In[0]], m[g.In[1]])
			case KindXor:
				m[s] = b.Xor(m[g.In[0]], m[g.In[1]])
			}
		}
		for _, o := range c.Outputs {
			b.Output(m[o])
			lastOutputs = append(lastOutputs, m[o])
		}
		for i, l := range c.Latches {
			state[i] = m[l.D]
		}
	}
	for _, s := range state {
		b.Output(s) // expose final next-state
	}
	return b.Build(), nil
}
