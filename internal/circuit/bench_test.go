package circuit

import (
	"strings"
	"testing"
)

const s27ish = `# toy sequential netlist in ISCAS89 .bench style
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G10 = NAND(G0, G5)
G11 = NOR(G1, G6)
G14 = NOT(G2)
G16 = OR(G14, G10)
G17 = AND(G16, G11)
`

func TestParseBenchStructure(t *testing.T) {
	c, names, err := ParseBench(strings.NewReader(s27ish))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 3 {
		t.Fatalf("inputs = %d, want 3", len(c.Inputs))
	}
	if len(c.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1", len(c.Outputs))
	}
	if len(c.Latches) != 2 {
		t.Fatalf("latches = %d, want 2", len(c.Latches))
	}
	for _, n := range []string{"G0", "G5", "G10", "G17"} {
		if _, ok := names[n]; !ok {
			t.Fatalf("missing signal %s", n)
		}
	}
}

func TestParseBenchSimulation(t *testing.T) {
	c, names, err := ParseBench(strings.NewReader(s27ish))
	if err != nil {
		t.Fatal(err)
	}
	// With latches at reset (0): G10 = NAND(G0,0) = 1, G11 = NOR(G1,0) =
	// ¬G1, G14 = ¬G2, G16 = G14 ∨ G10 = 1, G17 = G16 ∧ G11 = ¬G1.
	for _, tc := range []struct {
		in   []bool
		want bool
	}{
		{[]bool{false, false, false}, true},
		{[]bool{false, true, false}, false},
		{[]bool{true, true, true}, false},
		{[]bool{true, false, true}, true},
	} {
		vals, err := c.Eval(tc.in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := vals[names["G17"]]; got != tc.want {
			t.Fatalf("in=%v: G17 = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseBenchVariadicGates(t *testing.T) {
	src := `INPUT(A)
INPUT(B)
INPUT(C)
OUTPUT(Z)
Z = AND(A, B, C)
`
	c, names, err := ParseBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		vals, _ := c.Eval(in, nil)
		want := in[0] && in[1] && in[2]
		if vals[names["Z"]] != want {
			t.Fatalf("AND3(%v) = %v", in, vals[names["Z"]])
		}
	}
}

func TestParseBenchErrors(t *testing.T) {
	bad := []string{
		"INPUT(\n",                           // malformed declaration
		"Z = AND(A)\nOUTPUT(Z)\n",            // undefined operand + arity
		"OUTPUT(Z)\nZ = FROB(A)\nINPUT(A)\n", // unknown gate
		"INPUT(A)\nOUTPUT(Z)\nZ = NOT(Z)\n",  // combinational cycle
	}
	for _, src := range bad {
		if _, _, err := ParseBench(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c, _, err := ParseBench(strings.NewReader(s27ish))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, _, err := ParseBench(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if len(c2.Inputs) != len(c.Inputs) || len(c2.Latches) != len(c.Latches) ||
		len(c2.Outputs) != len(c.Outputs) {
		t.Fatal("round trip changed interface")
	}
	// Behavioral equivalence over a few cycles and all inputs.
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		s1 := make([]bool, len(c.Latches))
		s2 := make([]bool, len(c2.Latches))
		for cycle := 0; cycle < 4; cycle++ {
			o1, n1, err := c.Step(in, s1)
			if err != nil {
				t.Fatal(err)
			}
			o2, n2, err := c2.Step(in, s2)
			if err != nil {
				t.Fatal(err)
			}
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("mask %d cycle %d: outputs differ", mask, cycle)
				}
			}
			s1, s2 = n1, n2
		}
	}
}

func TestBenchUnrollAndEncode(t *testing.T) {
	// End-to-end: .bench netlist → unroll → Tseitin → sampling set =
	// the unrolled primary inputs (the paper's ISCAS89 pipeline).
	c, _, err := ParseBench(strings.NewReader(s27ish))
	if err != nil {
		t.Fatal(err)
	}
	u, err := c.Unroll(3)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Encode(u, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.InputVars) != 9 { // 3 inputs × 3 frames
		t.Fatalf("input vars = %d, want 9", len(enc.InputVars))
	}
	if len(enc.Formula.SamplingSet) != 9 {
		t.Fatalf("sampling set = %d, want 9", len(enc.Formula.SamplingSet))
	}
}
