package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a netlist in the ISCAS89 ".bench" format — the
// format of the sequential benchmark circuits (s526, s953, s1196,
// s1238, ...) the DAC'14 evaluation derives its parity-constrained
// instances from:
//
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = DFF(G14)
//	G11 = NAND(G0, G10)
//	G16 = NOT(G11)
//
// Variadic AND/OR/NAND/NOR/XOR are folded into gate trees. DFF
// elements become latches (reset value 0). It returns the circuit and
// the signal name table.
func ParseBench(r io.Reader) (*Circuit, map[string]Sig, error) {
	type rawGate struct {
		name string
		fn   string
		args []string
		line int
	}
	var raws []rawGate
	var inputs, outputs []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT("):
			name, err := parenArg(line)
			if err != nil {
				return nil, nil, fmt.Errorf("bench line %d: %v", lineNo, err)
			}
			inputs = append(inputs, name)
		case strings.HasPrefix(upper, "OUTPUT("):
			name, err := parenArg(line)
			if err != nil {
				return nil, nil, fmt.Errorf("bench line %d: %v", lineNo, err)
			}
			outputs = append(outputs, name)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, nil, fmt.Errorf("bench line %d: expected assignment, got %q", lineNo, line)
			}
			name := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if open < 0 || close < open {
				return nil, nil, fmt.Errorf("bench line %d: malformed gate %q", lineNo, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var args []string
			for _, a := range strings.Split(rhs[open+1:close], ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					args = append(args, a)
				}
			}
			raws = append(raws, rawGate{name: name, fn: fn, args: args, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}

	b := NewBuilder()
	sigs := map[string]Sig{}
	for _, in := range inputs {
		sigs[in] = b.Input()
	}
	// DFF outputs exist before their inputs are defined: declare loops.
	setters := map[string]func(Sig){}
	for _, g := range raws {
		if g.fn == "DFF" {
			q, set := b.LatchLoop()
			sigs[g.name] = q
			setters[g.name] = set
		}
	}
	// Topologically instantiate combinational gates (name-driven DFS).
	byName := map[string]rawGate{}
	for _, g := range raws {
		byName[g.name] = g
	}
	var build func(name string, stack map[string]bool) (Sig, error)
	build = func(name string, stack map[string]bool) (Sig, error) {
		if s, ok := sigs[name]; ok {
			return s, nil
		}
		g, ok := byName[name]
		if !ok {
			return 0, fmt.Errorf("bench: undefined signal %q", name)
		}
		if stack[name] {
			return 0, fmt.Errorf("bench: combinational cycle through %q", name)
		}
		stack[name] = true
		defer delete(stack, name)
		var args []Sig
		for _, a := range g.args {
			s, err := build(a, stack)
			if err != nil {
				return 0, err
			}
			args = append(args, s)
		}
		s, err := instantiate(b, g.fn, args)
		if err != nil {
			return 0, fmt.Errorf("bench line %d: %v", g.line, err)
		}
		sigs[name] = s
		return s, nil
	}
	for _, g := range raws {
		if g.fn == "DFF" {
			continue
		}
		if _, err := build(g.name, map[string]bool{}); err != nil {
			return nil, nil, err
		}
	}
	for _, g := range raws {
		if g.fn != "DFF" {
			continue
		}
		if len(g.args) != 1 {
			return nil, nil, fmt.Errorf("bench line %d: DFF takes 1 argument", g.line)
		}
		d, err := build(g.args[0], map[string]bool{})
		if err != nil {
			return nil, nil, err
		}
		setters[g.name](d)
	}
	for _, o := range outputs {
		s, err := build(o, map[string]bool{})
		if err != nil {
			return nil, nil, err
		}
		b.Output(s)
	}
	return b.Build(), sigs, nil
}

func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	name := strings.TrimSpace(line[open+1 : close])
	if name == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return name, nil
}

func instantiate(b *Builder, fn string, args []Sig) (Sig, error) {
	fold := func(f func(a, c Sig) Sig) (Sig, error) {
		if len(args) < 2 {
			return 0, fmt.Errorf("%s needs >= 2 arguments", fn)
		}
		acc := args[0]
		for _, a := range args[1:] {
			acc = f(acc, a)
		}
		return acc, nil
	}
	switch fn {
	case "AND":
		return fold(b.And)
	case "OR":
		return fold(b.Or)
	case "XOR":
		return fold(b.Xor)
	case "NAND":
		s, err := fold(b.And)
		if err != nil {
			return 0, err
		}
		return b.Not(s), nil
	case "NOR":
		s, err := fold(b.Or)
		if err != nil {
			return 0, err
		}
		return b.Not(s), nil
	case "XNOR":
		s, err := fold(b.Xor)
		if err != nil {
			return 0, err
		}
		return b.Not(s), nil
	case "NOT":
		if len(args) != 1 {
			return 0, fmt.Errorf("NOT takes 1 argument")
		}
		return b.Not(args[0]), nil
	case "BUF", "BUFF":
		if len(args) != 1 {
			return 0, fmt.Errorf("%s takes 1 argument", fn)
		}
		return b.Buf(args[0]), nil
	default:
		return 0, fmt.Errorf("unknown gate function %q", fn)
	}
}

// WriteBench serializes a circuit in .bench format. Signal names are
// synthesized as G<index>; latches become DFFs.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	name := func(s Sig) string { return fmt.Sprintf("G%d", s) }
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", name(in))
	}
	for _, o := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", name(o))
	}
	latchQ := map[Sig]bool{}
	for _, l := range c.Latches {
		fmt.Fprintf(bw, "%s = DFF(%s)\n", name(l.Q), name(l.D))
		latchQ[l.Q] = true
	}
	// Deterministic order.
	order := make([]int, 0, len(c.Gates))
	for s := range c.Gates {
		order = append(order, s)
	}
	sort.Ints(order)
	for _, s := range order {
		g := c.Gates[s]
		sig := Sig(s)
		switch g.Kind {
		case KindInput:
			// primary input or DFF output: already declared
			if !latchQ[sig] {
				continue
			}
		case KindConst:
			// .bench has no constants: encode as XOR(x,x)/XNOR(x,x) over
			// the first input if available, else skip (rare).
			if len(c.Inputs) > 0 {
				in := name(c.Inputs[0])
				if g.In[0] == 1 {
					fmt.Fprintf(bw, "%s = XNOR(%s, %s)\n", name(sig), in, in)
				} else {
					fmt.Fprintf(bw, "%s = XOR(%s, %s)\n", name(sig), in, in)
				}
			}
		case KindNot:
			fmt.Fprintf(bw, "%s = NOT(%s)\n", name(sig), name(g.In[0]))
		case KindBuf:
			fmt.Fprintf(bw, "%s = BUFF(%s)\n", name(sig), name(g.In[0]))
		case KindAnd:
			fmt.Fprintf(bw, "%s = AND(%s, %s)\n", name(sig), name(g.In[0]), name(g.In[1]))
		case KindOr:
			fmt.Fprintf(bw, "%s = OR(%s, %s)\n", name(sig), name(g.In[0]), name(g.In[1]))
		case KindXor:
			fmt.Fprintf(bw, "%s = XOR(%s, %s)\n", name(sig), name(g.In[0]), name(g.In[1]))
		}
	}
	return bw.Flush()
}
