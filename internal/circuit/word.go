package circuit

// Word is a little-endian vector of signals representing an unsigned
// bit-vector value. Index 0 is the least significant bit.
type Word []Sig

// ConstWord builds an n-bit constant word.
func (b *Builder) ConstWord(v uint64, n int) Word {
	w := make(Word, n)
	for i := 0; i < n; i++ {
		w[i] = b.Const(v&(1<<uint(i)) != 0)
	}
	return w
}

// NotWord returns the bitwise complement.
func (b *Builder) NotWord(a Word) Word {
	out := make(Word, len(a))
	for i := range a {
		out[i] = b.Not(a[i])
	}
	return out
}

// XorWord returns the bitwise XOR of equal-width words.
func (b *Builder) XorWord(a, c Word) Word {
	out := make(Word, len(a))
	for i := range a {
		out[i] = b.Xor(a[i], c[i])
	}
	return out
}

// AndWord returns the bitwise AND of equal-width words.
func (b *Builder) AndWord(a, c Word) Word {
	out := make(Word, len(a))
	for i := range a {
		out[i] = b.And(a[i], c[i])
	}
	return out
}

// OrWord returns the bitwise OR of equal-width words.
func (b *Builder) OrWord(a, c Word) Word {
	out := make(Word, len(a))
	for i := range a {
		out[i] = b.Or(a[i], c[i])
	}
	return out
}

// MuxWord returns sel ? t : e elementwise.
func (b *Builder) MuxWord(sel Sig, t, e Word) Word {
	out := make(Word, len(t))
	for i := range t {
		out[i] = b.Mux(sel, t[i], e[i])
	}
	return out
}

// RotlWord rotates left by k bit positions.
func (b *Builder) RotlWord(a Word, k int) Word {
	n := len(a)
	out := make(Word, n)
	for i := 0; i < n; i++ {
		out[(i+k)%n] = b.Buf(a[i])
	}
	return out
}

// ShlWord shifts left by k, filling with zeros, truncating to width.
func (b *Builder) ShlWord(a Word, k int) Word {
	n := len(a)
	out := make(Word, n)
	for i := 0; i < n; i++ {
		if i < k {
			out[i] = b.Const(false)
		} else {
			out[i] = b.Buf(a[i-k])
		}
	}
	return out
}

// fullAdder returns (sum, carry) of three bits.
func (b *Builder) fullAdder(x, y, cin Sig) (sum, cout Sig) {
	s1 := b.Xor(x, y)
	sum = b.Xor(s1, cin)
	cout = b.Or(b.And(x, y), b.And(s1, cin))
	return sum, cout
}

// AddWord returns a+c truncated to the wider operand's width
// (ripple-carry adder).
func (b *Builder) AddWord(a, c Word) Word {
	n := len(a)
	if len(c) > n {
		n = len(c)
	}
	bit := func(w Word, i int) Sig {
		if i < len(w) {
			return w[i]
		}
		return b.Const(false)
	}
	out := make(Word, n)
	carry := b.Const(false)
	for i := 0; i < n; i++ {
		out[i], carry = b.fullAdder(bit(a, i), bit(c, i), carry)
	}
	return out
}

// MulWord returns a*c truncated to width bits (array multiplier:
// shift-and-add of partial products).
func (b *Builder) MulWord(a, c Word, width int) Word {
	acc := b.ConstWord(0, width)
	for i := 0; i < len(c) && i < width; i++ {
		// Partial product: (a << i) AND replicated c[i].
		pp := make(Word, width)
		for j := 0; j < width; j++ {
			if j < i || j-i >= len(a) {
				pp[j] = b.Const(false)
			} else {
				pp[j] = b.And(a[j-i], c[i])
			}
		}
		acc = b.AddWord(acc, pp)
	}
	return acc[:width]
}

// SquareWord returns a² truncated to width bits.
func (b *Builder) SquareWord(a Word, width int) Word {
	return b.MulWord(a, a, width)
}

// KaratsubaMul returns a*c truncated to width bits using recursive
// Karatsuba decomposition above the given threshold (array
// multiplication below it). Mirrors the structure of the paper's
// "Karatsuba" program-synthesis benchmark family.
func (b *Builder) KaratsubaMul(a, c Word, width, threshold int) Word {
	n := len(a)
	if len(c) > n {
		n = len(c)
	}
	// Base case: below the threshold, or too small for the unequal-half
	// recursion to shrink (the (a0+a1) sum needs n-half+1 bits, which
	// only drops below n when n > 3).
	if n <= threshold || n <= 3 {
		return b.MulWord(a, c, width)
	}
	half := n / 2
	split := func(w Word) (lo, hi Word) {
		if len(w) <= half {
			return w, Word{}
		}
		return w[:half], w[half:]
	}
	a0, a1 := split(a)
	c0, c1 := split(c)
	pad := func(w Word, n int) Word {
		out := make(Word, 0, n)
		out = append(out, w...)
		for len(out) < n {
			out = append(out, b.Const(false))
		}
		return out
	}
	sumWidth := func(x, y Word) int {
		n := len(x)
		if len(y) > n {
			n = len(y)
		}
		return n + 1
	}
	z0 := b.KaratsubaMul(a0, c0, width, threshold)                        // lo*lo
	z2 := b.KaratsubaMul(a1, c1, width, threshold)                        // hi*hi
	sa := b.AddWord(pad(a0, sumWidth(a0, a1)), pad(a1, sumWidth(a0, a1))) // a0+a1
	sc := b.AddWord(pad(c0, sumWidth(c0, c1)), pad(c1, sumWidth(c0, c1))) // c0+c1
	z1 := b.KaratsubaMul(sa, sc, width, threshold)                        // (a0+a1)(c0+c1)
	mid := b.AddWord(z1, b.AddWord(b.NotWord(z0), b.NotWord(z2)))         // z1 - z0 - z2
	mid = b.AddWord(mid, b.ConstWord(2, width))                           // two's complement fixup
	res := b.AddWord(z0, b.ShlWord(pad(mid, width), half))
	res = b.AddWord(res, b.ShlWord(pad(z2, width), 2*half))
	return res[:width]
}

// EqualsConst returns a signal that is true iff word a equals the
// constant v.
func (b *Builder) EqualsConst(a Word, v uint64) Sig {
	acc := b.Const(true)
	for i, s := range a {
		bitSet := v&(1<<uint(i)) != 0
		if bitSet {
			acc = b.And(acc, s)
		} else {
			acc = b.And(acc, b.Not(s))
		}
	}
	return acc
}

// LessThan returns a signal true iff a < c (unsigned, equal widths).
func (b *Builder) LessThan(a, c Word) Sig {
	lt := b.Const(false)
	for i := 0; i < len(a); i++ {
		// From LSB to MSB: lt = (¬a[i]∧c[i]) ∨ (a[i]==c[i] ∧ lt)
		bitLt := b.And(b.Not(a[i]), c[i])
		eq := b.Xnor(a[i], c[i])
		lt = b.Or(bitLt, b.And(eq, lt))
	}
	return lt
}

// ParityWord returns the XOR of all bits of a.
func (b *Builder) ParityWord(a Word) Sig {
	acc := b.Const(false)
	for _, s := range a {
		acc = b.Xor(acc, s)
	}
	return acc
}

// CompareAndSwap returns (min, max) of two words — the comparator
// element of sorting networks.
func (b *Builder) CompareAndSwap(a, c Word) (lo, hi Word) {
	swap := b.LessThan(c, a)
	lo = b.MuxWord(swap, c, a)
	hi = b.MuxWord(swap, a, c)
	return lo, hi
}
