package circuit

import (
	"testing"
	"testing/quick"

	"unigen/internal/bsat"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

func TestEvalBasicGates(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	y := b.Input()
	and := b.And(x, y)
	or := b.Or(x, y)
	xor := b.Xor(x, y)
	not := b.Not(x)
	c := b.Build()
	cases := []struct {
		x, y              bool
		and, or, xor, not bool
	}{
		{false, false, false, false, false, true},
		{false, true, false, true, true, true},
		{true, false, false, true, true, false},
		{true, true, true, true, false, false},
	}
	for _, tc := range cases {
		vals, err := c.Eval([]bool{tc.x, tc.y}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if vals[and] != tc.and || vals[or] != tc.or || vals[xor] != tc.xor || vals[not] != tc.not {
			t.Fatalf("x=%v y=%v: got and=%v or=%v xor=%v not=%v",
				tc.x, tc.y, vals[and], vals[or], vals[xor], vals[not])
		}
	}
}

func TestMux(t *testing.T) {
	b := NewBuilder()
	s, x, y := b.Input(), b.Input(), b.Input()
	m := b.Mux(s, x, y)
	c := b.Build()
	for _, sel := range []bool{false, true} {
		for _, xv := range []bool{false, true} {
			for _, yv := range []bool{false, true} {
				vals, _ := c.Eval([]bool{sel, xv, yv}, nil)
				want := yv
				if sel {
					want = xv
				}
				if vals[m] != want {
					t.Fatalf("mux(%v,%v,%v) = %v, want %v", sel, xv, yv, vals[m], want)
				}
			}
		}
	}
}

// wordVal decodes a word's simulated value.
func wordVal(vals []bool, w Word) uint64 {
	var out uint64
	for i, s := range w {
		if vals[s] {
			out |= 1 << uint(i)
		}
	}
	return out
}

// setInputs packs x into the first len(w) input positions.
func packWord(x uint64, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = x&(1<<uint(i)) != 0
	}
	return out
}

func TestAddWord(t *testing.T) {
	const n = 8
	b := NewBuilder()
	a := b.InputWord(n)
	c := b.InputWord(n)
	sum := b.AddWord(a, c)
	cir := b.Build()
	f := func(x, y uint8) bool {
		in := append(packWord(uint64(x), n), packWord(uint64(y), n)...)
		vals, err := cir.Eval(in, nil)
		if err != nil {
			return false
		}
		return wordVal(vals, sum) == uint64(x+y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMulWord(t *testing.T) {
	const n = 6
	b := NewBuilder()
	a := b.InputWord(n)
	c := b.InputWord(n)
	prod := b.MulWord(a, c, 2*n)
	cir := b.Build()
	f := func(x, y uint8) bool {
		xv, yv := uint64(x)&(1<<n-1), uint64(y)&(1<<n-1)
		in := append(packWord(xv, n), packWord(yv, n)...)
		vals, err := cir.Eval(in, nil)
		if err != nil {
			return false
		}
		return wordVal(vals, prod) == (xv*yv)&(1<<(2*n)-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSquareWord(t *testing.T) {
	const n = 7
	b := NewBuilder()
	a := b.InputWord(n)
	sq := b.SquareWord(a, 2*n)
	cir := b.Build()
	for x := uint64(0); x < 1<<n; x++ {
		vals, err := cir.Eval(packWord(x, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := wordVal(vals, sq); got != (x*x)&(1<<(2*n)-1) {
			t.Fatalf("square(%d) = %d, want %d", x, got, x*x)
		}
	}
}

func TestKaratsubaMatchesMul(t *testing.T) {
	const n = 8
	b := NewBuilder()
	a := b.InputWord(n)
	c := b.InputWord(n)
	kar := b.KaratsubaMul(a, c, 2*n, 2)
	cir := b.Build()
	f := func(x, y uint8) bool {
		in := append(packWord(uint64(x), n), packWord(uint64(y), n)...)
		vals, err := cir.Eval(in, nil)
		if err != nil {
			return false
		}
		return wordVal(vals, kar) == uint64(x)*uint64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLessThanAndCompareSwap(t *testing.T) {
	const n = 5
	b := NewBuilder()
	a := b.InputWord(n)
	c := b.InputWord(n)
	lt := b.LessThan(a, c)
	lo, hi := b.CompareAndSwap(a, c)
	cir := b.Build()
	f := func(x, y uint8) bool {
		xv, yv := uint64(x)&(1<<n-1), uint64(y)&(1<<n-1)
		in := append(packWord(xv, n), packWord(yv, n)...)
		vals, err := cir.Eval(in, nil)
		if err != nil {
			return false
		}
		wantLo, wantHi := xv, yv
		if yv < xv {
			wantLo, wantHi = yv, xv
		}
		return vals[lt] == (xv < yv) &&
			wordVal(vals, lo) == wantLo && wordVal(vals, hi) == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRotlShl(t *testing.T) {
	const n = 8
	b := NewBuilder()
	a := b.InputWord(n)
	rot := b.RotlWord(a, 3)
	shl := b.ShlWord(a, 2)
	cir := b.Build()
	f := func(x uint8) bool {
		vals, err := cir.Eval(packWord(uint64(x), n), nil)
		if err != nil {
			return false
		}
		wantRot := uint64(x<<3|x>>5) & 0xff
		wantShl := uint64(x<<2) & 0xff
		return wordVal(vals, rot) == wantRot && wordVal(vals, shl) == wantShl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Fatal(err)
	}
}

func TestParityWord(t *testing.T) {
	const n = 6
	b := NewBuilder()
	a := b.InputWord(n)
	p := b.ParityWord(a)
	cir := b.Build()
	for x := uint64(0); x < 1<<n; x++ {
		vals, _ := cir.Eval(packWord(x, n), nil)
		want := popcount(x)%2 == 1
		if vals[p] != want {
			t.Fatalf("parity(%06b) = %v, want %v", x, vals[p], want)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestLatchCounter(t *testing.T) {
	// A 2-bit counter built from latches; verify it counts 0,1,2,3,0...
	b := NewBuilder()
	q0, setD0 := b.LatchLoop()
	q1, setD1 := b.LatchLoop()
	setD0(b.Not(q0))
	setD1(b.Xor(q1, q0))
	b.Output(q0)
	b.Output(q1)
	c := b.Build()
	state := []bool{false, false}
	for cycle := 0; cycle < 8; cycle++ {
		out, next, err := c.Step(nil, state)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		if out[0] {
			got |= 1
		}
		if out[1] {
			got |= 2
		}
		if got != cycle%4 {
			t.Fatalf("cycle %d: counter = %d", cycle, got)
		}
		state = next
	}
}

func TestUnrollCounter(t *testing.T) {
	// Unrolled counter: final next-state outputs after k frames must
	// equal k mod 4 (no primary inputs).
	b := NewBuilder()
	q0, setD0 := b.LatchLoop()
	q1, setD1 := b.LatchLoop()
	setD0(b.Not(q0))
	setD1(b.Xor(q1, q0))
	c := b.Build()
	for k := 1; k <= 6; k++ {
		u, err := c.Unroll(k)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := u.Eval(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Final next-state = last two outputs.
		outs := u.Outputs
		s0 := vals[outs[len(outs)-2]]
		s1 := vals[outs[len(outs)-1]]
		got := 0
		if s0 {
			got |= 1
		}
		if s1 {
			got |= 2
		}
		if got != k%4 {
			t.Fatalf("k=%d: state = %d, want %d", k, got, k%4)
		}
	}
}

// TestTseitinConsistency is the keystone test: for every input vector,
// the encoded formula must have exactly one witness extending it, whose
// signal variables equal the simulation values. This is precisely the
// "independent support" property UniGen exploits.
func TestTseitinConsistency(t *testing.T) {
	for _, plain := range []bool{false, true} {
		b := NewBuilder()
		x := b.InputWord(4)
		y := b.InputWord(4)
		sum := b.AddWord(x, y)
		b.Output(sum[3])
		cir := b.Build()
		enc, err := Encode(cir, EncodeOptions{PlainXOR: plain})
		if err != nil {
			t.Fatal(err)
		}
		// Count projected witnesses: must be 2^8 (inputs free).
		n, res := bsat.Count(enc.Formula, 1<<9, bsat.Options{})
		if !res.Exhausted || n != 256 {
			t.Fatalf("plain=%v: projected count = %d (exhausted=%v), want 256", plain, n, res.Exhausted)
		}
		// Check witness extension correctness on random inputs.
		rng := randx.New(55)
		for iter := 0; iter < 20; iter++ {
			in := make([]bool, 8)
			for i := range in {
				in[i] = rng.Bool()
			}
			vals, _ := cir.Eval(in, nil)
			// Force inputs via unit clauses and solve.
			g := enc.Formula.Clone()
			for i, v := range enc.InputVars {
				if in[i] {
					g.AddClause(int(v))
				} else {
					g.AddClause(-int(v))
				}
			}
			s := sat.New(g, sat.Config{})
			if s.Solve() != sat.Sat {
				t.Fatalf("plain=%v: no witness for input %v", plain, in)
			}
			m := s.Model()
			for sig, v := range enc.SigVar {
				if m.Get(v) != vals[sig] {
					t.Fatalf("plain=%v: sig %d (%v) = %v, sim %v",
						plain, sig, cir.Gates[sig].Kind, m.Get(v), vals[sig])
				}
			}
		}
	}
}

func TestEncodeRejectsSequential(t *testing.T) {
	b := NewBuilder()
	q, setD := b.LatchLoop()
	setD(b.Not(q))
	if _, err := Encode(b.Build(), EncodeOptions{}); err == nil {
		t.Fatal("Encode accepted a sequential circuit")
	}
}

func TestAssertParityRestrictsWitnesses(t *testing.T) {
	b := NewBuilder()
	x := b.InputWord(6)
	b.Output(x[0])
	cir := b.Build()
	enc, err := Encode(cir, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	enc.AssertParity([]Sig{Sig(x[0]), Sig(x[1]), Sig(x[2])}, true)
	n, _ := bsat.Count(enc.Formula, 1<<7, bsat.Options{})
	if n != 32 { // half of 64
		t.Fatalf("count = %d, want 32", n)
	}
}

func TestUnrollErrors(t *testing.T) {
	b := NewBuilder()
	b.Input()
	c := b.Build()
	if _, err := c.Unroll(3); err == nil {
		t.Fatal("unrolling combinational circuit with k=3 accepted")
	}
	b2 := NewBuilder()
	b2.LatchLoop() // next-state never set
	if _, err := b2.Build().Unroll(2); err == nil {
		t.Fatal("latch with unset D accepted")
	}
}

func TestEvalInputMismatch(t *testing.T) {
	b := NewBuilder()
	b.Input()
	c := b.Build()
	if _, err := c.Eval(nil, nil); err == nil {
		t.Fatal("Eval with missing inputs accepted")
	}
}
