package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Per-request phase tracing (DESIGN §10). A Trace is a tree of timed
// spans recording where a request spent its time (admission wait,
// preparation, sampling rounds, per-cell BSAT enumerations) together
// with integer counters (solver-work deltas). The API is carried
// through context and is nil-safe end to end: every method on a nil
// *Span or nil *Trace is a no-op, so instrumented code calls
// SpanFrom(ctx).StartSpan(...) unconditionally and pays only a context
// lookup plus nil checks when no trace was requested — the disarmed
// path benchmarked by BenchmarkObsDisarmedSpan.

// traceSalt distinguishes trace IDs across process restarts; traceSeq
// distinguishes them within one.
var (
	traceSalt = func() uint64 {
		var b [8]byte
		if _, err := cryptorand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	traceSeq atomic.Uint64
)

// Trace is one request's span tree. Safe for concurrent use: worker
// pools append round spans from many goroutines.
type Trace struct {
	id   string
	mu   sync.Mutex
	root *Span
}

// Span is one timed phase of a trace. Create via StartSpan; a nil
// *Span is a valid no-op receiver for every method.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	counters []counterKV
	children []*Span
}

type counterKV struct {
	key string
	val int64
}

// NewTrace creates a trace with a fresh process-unique ID and an open
// root span named "request".
func NewTrace() *Trace {
	seq := traceSeq.Add(1)
	tr := &Trace{id: fmt.Sprintf("%08x-%08x", uint32(traceSalt>>32)^uint32(traceSalt), uint32(seq)+uint32(traceSalt>>13))}
	tr.root = &Span{tr: tr, name: "request", start: time.Now()}
	return tr
}

// ID returns the trace identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on nil).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Trace returns the trace owning this span (nil on nil).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// StartSpan opens a child span. On a nil receiver it returns nil, so
// chains of StartSpan/SetInt/End cost only nil checks when disarmed.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// SetInt attaches (or overwrites) an integer counter on the span —
// solver-work deltas, cell sizes, round indices. No-op on nil.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	for i := range s.counters {
		if s.counters[i].key == key {
			s.counters[i].val = v
			s.tr.mu.Unlock()
			return
		}
	}
	s.counters = append(s.counters, counterKV{key, v})
	s.tr.mu.Unlock()
}

// spanCtxKey carries the current span through context.
type spanCtxKey struct{}

// WithSpan returns a context carrying sp as the current span.
// Instrumented layers parent their spans under it.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// WithTrace returns a context carrying tr's root as the current span.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return WithSpan(ctx, tr.Root())
}

// SpanFrom returns the current span, or nil when ctx carries none —
// the disarmed case every obs call chain degrades gracefully from.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// TraceFrom returns the trace owning the current span, or nil.
func TraceFrom(ctx context.Context) *Trace {
	return SpanFrom(ctx).Trace()
}

// SpanView is the JSON-able snapshot of one span: durations in
// microseconds, start offset relative to the trace root.
type SpanView struct {
	Name     string           `json:"name"`
	StartUS  int64            `json:"start_us"`          // offset from the root span's start
	DurUS    int64            `json:"dur_us"`            // 0 while the span is still open
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []*SpanView      `json:"children,omitempty"`
}

// Snapshot returns a deep copy of the span tree, safe to serialize
// after the trace keeps being written to. Nil-safe (returns nil).
func (t *Trace) Snapshot() *SpanView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.viewLocked(t.root.start)
}

func (s *Span) viewLocked(origin time.Time) *SpanView {
	v := &SpanView{
		Name:    s.name,
		StartUS: s.start.Sub(origin).Microseconds(),
		DurUS:   s.dur.Microseconds(),
	}
	if len(s.counters) > 0 {
		v.Counters = make(map[string]int64, len(s.counters))
		for _, kv := range s.counters {
			v.Counters[kv.key] = kv.val
		}
	}
	for _, c := range s.children {
		v.Children = append(v.Children, c.viewLocked(origin))
	}
	return v
}
