package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionRoundtrip renders a registry exercising every
// instrument kind and re-parses it with the strict grammar checker:
// HELP/TYPE metadata, label escaping, and histogram invariants must
// all survive the write → parse roundtrip with the original values.
func TestExpositionRoundtrip(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Operations.")
	c.Add(7)
	cv := r.NewCounterVec("test_requests_total", "Requests by outcome.", "endpoint", "outcome")
	cv.With("sample", "ok").Add(3)
	cv.With("sample", "shed").Inc()
	cv.With("count", "ok").Add(2)
	g := r.NewGauge("test_inflight", "In-flight requests.")
	g.Set(5)
	g.Add(-2)
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	// Label values with every escapable character, plus HELP text with
	// a backslash and newline.
	ev := r.NewCounterVec("test_escaped_total", "Weird \\ values\nhere.", "v")
	ev.With(`a\b"c` + "\nd").Add(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	fams, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, text)
	}

	if v, ok := SeriesValue(Find(fams, "test_ops_total"), "test_ops_total"); !ok || v != 7 {
		t.Fatalf("test_ops_total = %v, %v; want 7", v, ok)
	}
	rf := Find(fams, "test_requests_total")
	if rf == nil || rf.Type != KindCounter {
		t.Fatalf("test_requests_total family missing or mistyped: %+v", rf)
	}
	if v, ok := SeriesValue(rf, "test_requests_total", "endpoint", "sample", "outcome", "ok"); !ok || v != 3 {
		t.Fatalf("sample/ok = %v, %v; want 3", v, ok)
	}
	if v, ok := SeriesValue(rf, "test_requests_total", "endpoint", "count", "outcome", "ok"); !ok || v != 2 {
		t.Fatalf("count/ok = %v, %v; want 2", v, ok)
	}
	if v, ok := SeriesValue(Find(fams, "test_inflight"), "test_inflight"); !ok || v != 3 {
		t.Fatalf("test_inflight = %v, %v; want 3", v, ok)
	}

	hf := Find(fams, "test_latency_seconds")
	if hf == nil || hf.Type != KindHistogram {
		t.Fatalf("histogram family missing or mistyped: %+v", hf)
	}
	wantBuckets := map[string]float64{"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}
	for le, want := range wantBuckets {
		if v, ok := SeriesValue(hf, "test_latency_seconds_bucket", "le", le); !ok || v != want {
			t.Fatalf("bucket le=%s = %v, %v; want %v", le, v, ok, want)
		}
	}
	if v, ok := SeriesValue(hf, "test_latency_seconds_count"); !ok || v != 4 {
		t.Fatalf("_count = %v, %v; want 4", v, ok)
	}
	if v, ok := SeriesValue(hf, "test_latency_seconds_sum"); !ok || math.Abs(v-5.555) > 1e-9 {
		t.Fatalf("_sum = %v, %v; want 5.555", v, ok)
	}

	ef := Find(fams, "test_escaped_total")
	if ef == nil {
		t.Fatal("escaped family missing")
	}
	if ef.Help != "Weird \\ values\nhere." {
		t.Fatalf("HELP roundtrip: %q", ef.Help)
	}
	if v, ok := SeriesValue(ef, "test_escaped_total", "v", `a\b"c`+"\nd"); !ok || v != 9 {
		t.Fatalf("escaped label roundtrip = %v, %v; want 9", v, ok)
	}
}

// TestCollectedFamilies covers scrape-time collectors: values are read
// at render time, and malformed samples (wrong label arity) are
// dropped rather than corrupting the scrape.
func TestCollectedFamilies(t *testing.T) {
	r := NewRegistry()
	n := 0
	r.CollectCounters("test_collected_total", "Collected.", []string{"kind"}, func() []Sample {
		n++
		return []Sample{
			{LabelValues: []string{"a"}, Value: float64(n)},
			{LabelValues: []string{"bad", "arity"}, Value: 99},
		}
	})
	r.CollectGauges("test_collected_gauge", "Gauge.", nil, func() []Sample {
		return []Sample{{Value: 12}}
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(sb.String())
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, sb.String())
	}
	cf := Find(fams, "test_collected_total")
	if v, ok := SeriesValue(cf, "test_collected_total", "kind", "a"); !ok || v != 1 {
		t.Fatalf("collected value = %v, %v; want 1", v, ok)
	}
	if len(cf.Series) != 1 {
		t.Fatalf("malformed collector sample leaked: %d series", len(cf.Series))
	}
	if v, ok := SeriesValue(Find(fams, "test_collected_gauge"), "test_collected_gauge"); !ok || v != 12 {
		t.Fatalf("gauge = %v, %v; want 12", v, ok)
	}
}

// TestCounterGaugeSemantics pins the instrument contracts: counters
// ignore negative deltas, SetMax only raises.
func TestCounterGaugeSemantics(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter accepted negative delta: %d", c.Value())
	}
	var g Gauge
	g.SetMax(10)
	g.SetMax(4)
	if g.Value() != 10 {
		t.Fatalf("SetMax lowered the gauge: %d", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Fatalf("SetMax did not raise: %d", g.Value())
	}
}

// TestHistogramObserveDuration checks the seconds conversion and
// bucket placement of duration observations.
func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram([]float64{0.001, 1})
	h.ObserveDuration(500 * time.Microsecond)
	h.ObserveDuration(2 * time.Second)
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("sub-ms bucket = %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Fatalf("overflow bucket = %d, want 1", got)
	}
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if got := h.Sum(); math.Abs(got-2.0005) > 1e-9 {
		t.Fatalf("sum = %v, want 2.0005", got)
	}
}

// TestDuplicateRegistrationPanics pins the fail-fast contract.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("test_dup_total", "y")
}

// TestInvalidNamePanics pins name validation at registration time.
func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.NewCounter("0bad name", "x")
}

// TestConcurrentScrape hammers every instrument kind from many
// goroutines while scraping concurrently; every scrape must parse and
// satisfy the histogram invariants mid-flight (run under -race).
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_conc_total", "x", "w")
	hv := r.NewHistogramVec("test_conc_seconds", "x", []float64{0.001, 0.01, 0.1}, "w")
	g := r.NewGauge("test_conc_gauge", "x")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cv.With(lbl).Inc()
				hv.With(lbl).Observe(float64(i%100) / 250)
				g.Set(int64(i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseExposition(sb.String()); err != nil {
			t.Fatalf("scrape %d invalid under concurrency: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestParserRejectsMalformed drives the strict parser with documents
// WritePrometheus can never emit; each must be rejected.
func TestParserRejectsMalformed(t *testing.T) {
	bad := map[string]string{
		"sample before HELP":   "orphan_total 1\n",
		"TYPE without HELP":    "# TYPE x counter\nx 1\n",
		"non-contiguous":       "# HELP a x\n# TYPE a counter\na 1\n# HELP b x\n# TYPE b counter\nb 1\n# HELP a x\n# TYPE a counter\na 2\n",
		"timestamp":            "# HELP a x\n# TYPE a counter\na 1 1700000000\n",
		"bad escape":           "# HELP a x\n# TYPE a counter\na{l=\"\\q\"} 1\n",
		"unterminated label":   "# HELP a x\n# TYPE a counter\na{l=\"v} 1\n",
		"bad value":            "# HELP a x\n# TYPE a counter\na one\n",
		"foreign sample":       "# HELP a x\n# TYPE a counter\nb 1\n",
		"histogram no +Inf":    "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram not cum":    "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram inf!=count": "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"histogram no sum":     "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
	}
	for name, doc := range bad {
		if _, err := ParseExposition(doc); err == nil {
			t.Errorf("%s: parser accepted %q", name, doc)
		}
	}
}
