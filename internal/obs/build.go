package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildVersion returns the binary's version string and Go toolchain
// version, for the unigen_build_info metric, the /healthz body, and
// the daemon's startup log record. The version prefers the VCS
// revision stamped by the Go toolchain (truncated to 12 hex chars),
// falling back to the main module's version, then "unknown". Computed
// once.
var BuildVersion = sync.OnceValues(func() (version, goVersion string) {
	version, goVersion = "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		version = rev + dirty
	}
	return version, goVersion
})
