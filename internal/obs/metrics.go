// Package obs is the zero-dependency observability substrate of the
// sampling service (DESIGN §10): a metrics registry rendered in the
// Prometheus text exposition format, a context-carried span API for
// per-request phase tracing, and a bounded ring of recent slow
// requests. It deliberately implements only the slice of the
// Prometheus data model the daemon needs — atomic counters, gauges,
// fixed-bucket cumulative histograms, and scrape-time collected
// families — so nothing outside the standard library is imported.
//
// The paper's operational claim (Chakraborty–Meel–Vardi, DAC'14) is
// that after a one-time ApproxMC setup every sample is predictably
// cheap; this package is what lets an operator watch that prediction
// hold: request/phase latency histograms, solver-work counters
// (BSAT calls, conflicts, propagations, XOR rows), and cache/admission
// state, all scrapeable at GET /metrics.
package obs

import (
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefSecondsBuckets are the default latency buckets (seconds): wide
// enough to cover both the µs-scale warm /count path and multi-second
// cold ApproxMC preparations.
var DefSecondsBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metric kinds, matching the TYPE line of the exposition format.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Sample is one series a collected family reports at scrape time.
type Sample struct {
	LabelValues []string
	Value       float64
}

// family is one metric family: a name, HELP/TYPE metadata, the label
// names shared by every series, and either owned series (registered
// counters/gauges/histograms, keyed by joined label values) or a
// scrape-time collector.
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64 // histograms only

	mu      sync.Mutex
	series  map[string]any // *Counter | *Gauge | *Histogram
	order   []string       // insertion order of series keys
	collect func() []Sample
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use; registration panics on a
// duplicate or invalid name (programmer error, caught at startup).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic("obs: invalid metric name " + strconv.Quote(f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic("obs: invalid label name " + strconv.Quote(l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic("obs: duplicate metric family " + f.name)
	}
	if f.series == nil {
		f.series = map[string]any{}
	}
	r.families[f.name] = f
	return f
}

// validName checks the Prometheus identifier grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally must not use ':', but
// the stricter check costs nothing and we never need colons).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 metric that may go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger (high-water gauges such
// as the arena footprint).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free: each bucket is an atomic count and the sum is an atomic
// float64 (CAS on its bits).
type Histogram struct {
	upper  []float64 // bucket upper bounds, ascending, +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sumBit atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(buckets []float64) *Histogram {
	up := slices.Clone(buckets)
	sort.Float64s(up)
	up = slices.Compact(up)
	// A trailing +Inf bound is implicit; drop an explicit one.
	for len(up) > 0 && math.IsInf(up[len(up)-1], +1) {
		up = up[:len(up)-1]
	}
	return &Histogram{upper: up, counts: make([]atomic.Int64, len(up)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBit.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBit.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBit.Load()) }

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, kind: KindCounter})
	c := &Counter{}
	f.series[""] = c
	f.order = []string{""}
	return c
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, kind: KindGauge})
	g := &Gauge{}
	f.series[""] = g
	f.order = []string{""}
	return g
}

// NewHistogram registers and returns an unlabeled histogram over the
// given bucket upper bounds (nil = DefSecondsBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefSecondsBuckets
	}
	f := r.register(&family{name: name, help: help, kind: KindHistogram, buckets: buckets})
	h := newHistogram(buckets)
	f.series[""] = h
	f.order = []string{""}
	return h
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(&family{name: name, help: help, kind: KindCounter, labels: labels})}
}

// With returns the counter for the given label values (created on
// first use). The number of values must match the label names.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(&family{name: name, help: help, kind: KindGauge, labels: labels})}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labeled histogram family (nil buckets =
// DefSecondsBuckets).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefSecondsBuckets
	}
	return &HistogramVec{r.register(&family{name: name, help: help, kind: KindHistogram, buckets: buckets, labels: labels})}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// child returns (creating on first use) the series for values.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := mk()
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// CollectCounters registers a counter family whose series are produced
// at scrape time by collect — for cumulative values owned elsewhere
// (cache hit totals, admission shed counts) that would be awkward to
// mirror into registry-owned atomics.
func (r *Registry) CollectCounters(name, help string, labels []string, collect func() []Sample) {
	r.register(&family{name: name, help: help, kind: KindCounter, labels: labels, collect: collect})
}

// CollectGauges registers a gauge family collected at scrape time
// (in-flight request count, cache size, uptime).
func (r *Registry) CollectGauges(name, help string, labels []string, collect func() []Sample) {
	r.register(&family{name: name, help: help, kind: KindGauge, labels: labels, collect: collect})
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, HELP and
// TYPE lines first, histogram series as cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	slices.SortFunc(fams, func(a, b *family) int { return strings.Compare(a.name, b.name) })

	var sb strings.Builder
	for _, f := range fams {
		f.render(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func (f *family) render(sb *strings.Builder) {
	sb.WriteString("# HELP ")
	sb.WriteString(f.name)
	sb.WriteByte(' ')
	sb.WriteString(escapeHelp(f.help))
	sb.WriteString("\n# TYPE ")
	sb.WriteString(f.name)
	sb.WriteByte(' ')
	sb.WriteString(f.kind)
	sb.WriteByte('\n')

	if f.collect != nil {
		for _, s := range f.collect() {
			if len(s.LabelValues) != len(f.labels) {
				continue // malformed collector sample: drop rather than corrupt the scrape
			}
			writeSample(sb, f.name, f.labels, s.LabelValues, "", s.Value)
		}
		return
	}

	f.mu.Lock()
	keys := slices.Clone(f.order)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()

	for i, key := range keys {
		var values []string
		if len(f.labels) > 0 {
			values = strings.Split(key, "\x00")
		}
		switch m := series[i].(type) {
		case *Counter:
			writeSample(sb, f.name, f.labels, values, "", float64(m.Value()))
		case *Gauge:
			writeSample(sb, f.name, f.labels, values, "", float64(m.Value()))
		case *Histogram:
			// Snapshot bucket counts first, then count/sum: the sums may
			// run slightly ahead of the buckets under concurrent
			// observation, but cumulative bucket monotonicity and
			// bucket(+Inf) == count must hold within one scrape, so both
			// are derived from the same bucket snapshot.
			var cum int64
			lf := append(slices.Clone(f.labels), "le")
			for bi, b := range m.upper {
				cum += m.counts[bi].Load()
				lv := append(slices.Clone(values), formatFloat(b))
				writeSample(sb, f.name, lf, lv, "_bucket", float64(cum))
			}
			cum += m.counts[len(m.upper)].Load()
			lv := append(slices.Clone(values), "+Inf")
			writeSample(sb, f.name, lf, lv, "_bucket", float64(cum))
			writeSample(sb, f.name, f.labels, values, "_sum", m.Sum())
			writeSample(sb, f.name, f.labels, values, "_count", float64(cum))
		}
	}
}

func writeSample(sb *strings.Builder, name string, labels, values []string, suffix string, v float64) {
	sb.WriteString(name)
	sb.WriteString(suffix)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(values[i]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(v))
	sb.WriteByte('\n')
}

// formatFloat renders a sample value: integers without an exponent
// (the common case for counters), everything else in Go's shortest
// round-trip form, which the exposition format accepts.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(c)
		}
	}
	return sb.String()
}

// escapeHelp escapes HELP text: backslash and newline only (quotes are
// legal there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
