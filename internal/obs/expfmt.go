package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a small,
// strict parser for the subset WritePrometheus emits. It exists so
// scrape tests (obs's own and the service layer's) can assert on the
// grammar and on metric values instead of string-matching, and so
// operators embedding the service can unit-test their dashboards'
// assumptions against a real scrape.

// ExpositionSeries is one parsed sample line.
type ExpositionSeries struct {
	Name   string            // full series name, including _bucket/_sum/_count suffixes
	Labels map[string]string // unescaped label values
	Value  float64
}

// ExpositionFamily is one parsed metric family.
type ExpositionFamily struct {
	Name   string // family name from the TYPE line
	Help   string
	Type   string // counter | gauge | histogram | untyped
	Series []ExpositionSeries
}

// ParseExposition parses Prometheus text-format output, enforcing the
// grammar WritePrometheus guarantees: every series is preceded by its
// family's HELP and TYPE lines, families are contiguous, label syntax
// and escaping are well-formed, and sample values parse as floats. It
// returns families in document order.
func ParseExposition(text string) ([]ExpositionFamily, error) {
	var (
		fams []ExpositionFamily
		cur  *ExpositionFamily
		seen = map[string]bool{}
	)
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !validName(name) {
				return nil, fmt.Errorf("line %d: bad family name %q", lineNo, name)
			}
			if seen[name] {
				return nil, fmt.Errorf("line %d: family %s not contiguous", lineNo, name)
			}
			seen[name] = true
			fams = append(fams, ExpositionFamily{Name: name, Help: unescapeHelp(help), Type: "untyped"})
			cur = &fams[len(fams)-1]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			if cur == nil || cur.Name != fields[0] {
				return nil, fmt.Errorf("line %d: TYPE %s without preceding HELP", lineNo, fields[0])
			}
			switch fields[1] {
			case KindCounter, KindGauge, KindHistogram, "summary", "untyped":
				cur.Type = fields[1]
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, fields[1])
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if cur == nil || !sampleBelongsTo(s.Name, cur) {
			return nil, fmt.Errorf("line %d: sample %s outside its family block", lineNo, s.Name)
		}
		cur.Series = append(cur.Series, s)
	}
	for i := range fams {
		if err := checkHistogram(&fams[i]); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

// sampleBelongsTo reports whether series name belongs to family f,
// accounting for histogram suffixes.
func sampleBelongsTo(name string, f *ExpositionFamily) bool {
	if name == f.Name {
		return f.Type != KindHistogram
	}
	if f.Type != KindHistogram {
		return false
	}
	base, ok := strings.CutSuffix(name, "_bucket")
	if !ok {
		if base, ok = strings.CutSuffix(name, "_sum"); !ok {
			base, ok = strings.CutSuffix(name, "_count")
		}
	}
	return ok && base == f.Name
}

// checkHistogram enforces the histogram invariants on a parsed family:
// per label set, cumulative buckets are monotone in ascending le order,
// an le="+Inf" bucket exists and equals _count, and _sum and _count
// are present.
func checkHistogram(f *ExpositionFamily) error {
	if f.Type != KindHistogram {
		return nil
	}
	type hist struct {
		buckets map[float64]float64 // le → cumulative count
		sum     *float64
		count   *float64
	}
	group := map[string]*hist{}
	byKey := func(labels map[string]string) *hist {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k + "=" + labels[k] + ";")
		}
		h := group[sb.String()]
		if h == nil {
			h = &hist{buckets: map[float64]float64{}}
			group[sb.String()] = h
		}
		return h
	}
	for _, s := range f.Series {
		h := byKey(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leText, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			le, err := parseLE(leText)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, leText)
			}
			h.buckets[le] = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			v := s.Value
			h.sum = &v
		case strings.HasSuffix(s.Name, "_count"):
			v := s.Value
			h.count = &v
		}
	}
	for _, h := range group {
		if h.sum == nil || h.count == nil {
			return fmt.Errorf("%s: histogram missing _sum or _count", f.Name)
		}
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		if len(les) == 0 || !math.IsInf(les[len(les)-1], +1) {
			return fmt.Errorf("%s: histogram missing le=\"+Inf\" bucket", f.Name)
		}
		prev := math.Inf(-1)
		cum := -1.0
		for _, le := range les {
			if le <= prev {
				return fmt.Errorf("%s: duplicate le bound", f.Name)
			}
			if h.buckets[le] < cum {
				return fmt.Errorf("%s: cumulative buckets not monotone", f.Name)
			}
			cum = h.buckets[le]
			prev = le
		}
		if h.buckets[math.Inf(+1)] != *h.count {
			return fmt.Errorf("%s: bucket(+Inf)=%g != count=%g", f.Name, h.buckets[math.Inf(+1)], *h.count)
		}
	}
	return nil
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(+1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSampleLine parses `name{l="v",...} value` (timestamps, which
// WritePrometheus never emits, are rejected).
func parseSampleLine(line string) (ExpositionSeries, error) {
	s := ExpositionSeries{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		j := 1
		for {
			if j >= len(rest) {
				return s, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[j] == '}' {
				j++
				break
			}
			k := j
			for k < len(rest) && isNameChar(rest[k], k == j) {
				k++
			}
			if k == j || k >= len(rest) || rest[k] != '=' || k+1 >= len(rest) || rest[k+1] != '"' {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			name := rest[j:k]
			val, adv, err := unquoteLabel(rest[k+2:])
			if err != nil {
				return s, fmt.Errorf("%v in %q", err, line)
			}
			if _, dup := s.Labels[name]; dup {
				return s, fmt.Errorf("duplicate label %s in %q", name, line)
			}
			s.Labels[name] = val
			j = k + 2 + adv
			if j < len(rest) && rest[j] == ',' {
				j++
			}
		}
		rest = rest[j:]
	}
	rest = strings.TrimPrefix(rest, " ")
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected timestamp or trailing junk in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", rest)
	}
	s.Value = v
	return s, nil
}

// unquoteLabel consumes an escaped label value up to its closing quote,
// returning the unescaped value and how many input bytes were consumed
// (including the closing quote).
func unquoteLabel(s string) (string, int, error) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return sb.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '\n':
			return "", 0, fmt.Errorf("raw newline in label value")
		default:
			sb.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func isNameChar(c byte, first bool) bool {
	alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
	return alpha || (!first && c >= '0' && c <= '9')
}

func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				sb.WriteByte('\n')
				i++
				continue
			case '\\':
				sb.WriteByte('\\')
				i++
				continue
			}
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// Find returns the family with the given name, or nil.
func Find(fams []ExpositionFamily, name string) *ExpositionFamily {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// SeriesValue returns the value of the series matching name and the
// given label pairs exactly (every pair must be present on the series;
// extra series labels are allowed). The second return is false when no
// series matches.
func SeriesValue(f *ExpositionFamily, name string, pairs ...string) (float64, bool) {
	if f == nil {
		return 0, false
	}
next:
	for _, s := range f.Series {
		if s.Name != name {
			continue
		}
		for i := 0; i+1 < len(pairs); i += 2 {
			if s.Labels[pairs[i]] != pairs[i+1] {
				continue next
			}
		}
		return s.Value, true
	}
	return 0, false
}
