package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRingEviction fills past capacity and checks bounded memory,
// newest-first order, and the wrap-aware total.
func TestRingEviction(t *testing.T) {
	r := NewRequestRing(3)
	for i := 0; i < 5; i++ {
		r.Add(RequestRecord{TraceID: fmt.Sprintf("t%d", i)})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d records, want 3", len(got))
	}
	for i, want := range []string{"t4", "t3", "t2"} {
		if got[i].TraceID != want {
			t.Fatalf("snapshot[%d] = %s, want %s (newest first)", i, got[i].TraceID, want)
		}
	}
}

// TestRingMinCapacity pins the capacity floor of 1.
func TestRingMinCapacity(t *testing.T) {
	r := NewRequestRing(0)
	r.Add(RequestRecord{TraceID: "a"})
	r.Add(RequestRecord{TraceID: "b"})
	got := r.Snapshot()
	if len(got) != 1 || got[0].TraceID != "b" {
		t.Fatalf("min-capacity ring: %+v", got)
	}
}

// TestRingConcurrent adds from many goroutines while snapshotting;
// run under -race.
func TestRingConcurrent(t *testing.T) {
	r := NewRequestRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(RequestRecord{TraceID: fmt.Sprintf("%d-%d", w, i)})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		if s := r.Snapshot(); len(s) > 16 {
			t.Fatalf("ring overflowed: %d", len(s))
		}
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d, want 800", r.Total())
	}
	if s := r.Snapshot(); len(s) != 16 {
		t.Fatalf("retained %d, want 16", len(s))
	}
}
