package obs

import (
	"context"
	"testing"
	"time"
)

// TestNilSafety exercises every span/trace method on nil receivers —
// the disarmed path instrumented code takes when no trace was
// requested. None may panic; all must be no-ops.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Root() != nil || tr.Snapshot() != nil {
		t.Fatal("nil Trace methods not inert")
	}
	var sp *Span
	if sp.Trace() != nil {
		t.Fatal("nil Span.Trace not nil")
	}
	child := sp.StartSpan("x")
	if child != nil {
		t.Fatal("nil Span.StartSpan returned a live span")
	}
	child.SetInt("k", 1)
	child.End()

	ctx := context.Background()
	if SpanFrom(ctx) != nil || TraceFrom(ctx) != nil {
		t.Fatal("empty context yielded a span")
	}
	// WithSpan(nil span) must keep the chain inert.
	ctx = WithSpan(ctx, nil)
	if got := SpanFrom(ctx); got != nil {
		t.Fatalf("nil span roundtrip: %v", got)
	}
}

// TestSpanTree builds a request-shaped tree and checks the snapshot:
// structure, names, counters, and that durations/offsets are sane.
func TestSpanTree(t *testing.T) {
	tr := NewTrace()
	if tr.ID() == "" {
		t.Fatal("empty trace ID")
	}
	root := tr.Root()
	prep := root.StartSpan("prepare")
	prep.SetInt("cache_hit", 0)
	prep.SetInt("cache_hit", 1) // overwrite
	time.Sleep(time.Millisecond)
	prep.End()
	prep.End() // idempotent
	rounds := root.StartSpan("rounds")
	r0 := rounds.StartSpan("round")
	r0.SetInt("idx", 0)
	r0.End()
	rounds.End()
	root.End()

	v := tr.Snapshot()
	if v == nil || v.Name != "request" || len(v.Children) != 2 {
		t.Fatalf("snapshot shape: %+v", v)
	}
	pv, rv := v.Children[0], v.Children[1]
	if pv.Name != "prepare" || rv.Name != "rounds" {
		t.Fatalf("child order: %s, %s", pv.Name, rv.Name)
	}
	if pv.Counters["cache_hit"] != 1 {
		t.Fatalf("counter overwrite: %v", pv.Counters)
	}
	if pv.DurUS <= 0 {
		t.Fatalf("prepare duration not recorded: %d", pv.DurUS)
	}
	if len(rv.Children) != 1 || rv.Children[0].Name != "round" || rv.Children[0].Counters["idx"] != 0 {
		t.Fatalf("round child: %+v", rv.Children[0])
	}
	if rv.StartUS < pv.StartUS {
		t.Fatalf("rounds started before prepare: %d < %d", rv.StartUS, pv.StartUS)
	}
	if v.DurUS < pv.DurUS {
		t.Fatalf("root shorter than child: %d < %d", v.DurUS, pv.DurUS)
	}
}

// TestTraceIDsUnique pins process-uniqueness of trace IDs.
func TestTraceIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTrace().ID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

// TestContextPropagation checks the span chain through context: the
// current span is whatever was installed last, and TraceFrom follows
// it back to the owning trace.
func TestContextPropagation(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if SpanFrom(ctx) != tr.Root() {
		t.Fatal("WithTrace did not install the root span")
	}
	child := SpanFrom(ctx).StartSpan("phase")
	ctx2 := WithSpan(ctx, child)
	if SpanFrom(ctx2) != child {
		t.Fatal("WithSpan did not narrow the current span")
	}
	if TraceFrom(ctx2) != tr {
		t.Fatal("TraceFrom lost the owning trace")
	}
}

// TestConcurrentSpans appends spans from many goroutines (the worker
// pool shape) while snapshotting; run under -race.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	root := tr.Root()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				sp := root.StartSpan("round")
				sp.SetInt("idx", int64(w*100+i))
				sp.End()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		tr.Snapshot()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := len(tr.Snapshot().Children); got != 400 {
		t.Fatalf("lost spans under concurrency: %d/400", got)
	}
}

// BenchmarkObsDisarmedSpan measures the disarmed tracing path — the
// exact call chain SampleRoundSpan and the engine run per round when
// no trace was requested: a context lookup plus nil-receiver method
// calls. This must stay in the nanoseconds for the span API to be
// free on untraced requests (E14's overhead budget).
func BenchmarkObsDisarmedSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := SpanFrom(ctx).StartSpan("round")
		sp.SetInt("idx", int64(i))
		cell := sp.StartSpan("cell")
		cell.SetInt("witnesses", 3)
		cell.End()
		sp.End()
	}
}

// BenchmarkObsArmedSpan is the armed counterpart: the same call chain
// with a live trace, bounding what a traced request pays per round.
func BenchmarkObsArmedSpan(b *testing.B) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := SpanFrom(ctx).StartSpan("round")
		sp.SetInt("idx", int64(i))
		cell := sp.StartSpan("cell")
		cell.SetInt("witnesses", 3)
		cell.End()
		sp.End()
	}
}
