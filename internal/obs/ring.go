package obs

import (
	"sync"
	"time"
)

// RequestRecord is one finished request as retained by the debug ring:
// identity, attribution, outcome, and the full span tree. It is the
// JSON body element of GET /debug/requests.
type RequestRecord struct {
	TraceID     string        `json:"trace_id"`
	Time        time.Time     `json:"time"`
	Endpoint    string        `json:"endpoint"`
	Tenant      string        `json:"tenant,omitempty"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Outcome     string        `json:"outcome"`
	Error       string        `json:"error,omitempty"`
	Duration    time.Duration `json:"duration_ns"`
	N           int           `json:"n,omitempty"`
	CacheHit    bool          `json:"cache_hit"`
	Trace       *SpanView     `json:"trace,omitempty"`
}

// RequestRing is a bounded ring of recent slow (or failed) requests.
// Admission policy lives with the caller; the ring only bounds memory:
// once capacity is reached every Add evicts the oldest record.
type RequestRing struct {
	mu    sync.Mutex
	buf   []RequestRecord
	next  int   // index the next Add writes to
	total int64 // records ever added (wrap-aware)
}

// NewRequestRing returns a ring retaining up to capacity records
// (minimum 1).
func NewRequestRing(capacity int) *RequestRing {
	if capacity < 1 {
		capacity = 1
	}
	return &RequestRing{buf: make([]RequestRecord, 0, capacity)}
}

// Add appends a record, evicting the oldest when full.
func (r *RequestRing) Add(rec RequestRecord) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns how many records were ever added (≥ len(Snapshot())).
func (r *RequestRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained records, newest first.
func (r *RequestRing) Snapshot() []RequestRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestRecord, 0, len(r.buf))
	// next-1 is the newest record; walk backwards through the ring.
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
