package parallel

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	"unigen/internal/cnf"
	"unigen/internal/core"
	"unigen/internal/randx"
)

// hardFormula has 1024 witnesses over its 10-variable sampling set,
// forcing the hashing path at ε=6 (mirrors the core test fixture).
func hardFormula() *cnf.Formula {
	f := cnf.New(12)
	f.AddClause(11, 12)
	f.SamplingSet = []cnf.Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	return f
}

func projections(t *testing.T, f *cnf.Formula, ws []cnf.Assignment) []string {
	t.Helper()
	vars := f.SamplingVars()
	out := make([]string, len(ws))
	for i, w := range ws {
		if !w.Satisfies(f) {
			t.Fatal("invalid witness")
		}
		out[i] = w.Project(vars)
	}
	return out
}

func sampleWith(t *testing.T, workers, n int) ([]string, core.Stats) {
	t.Helper()
	f := hardFormula()
	eng, err := NewEngine(f, Options{
		Workers:    workers,
		MasterSeed: 7,
		Core:       core.Options{Epsilon: 6, ApproxMCRounds: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() != workers {
		t.Fatalf("pool size %d, want %d", eng.Workers(), workers)
	}
	ws, err := eng.SampleN(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != n {
		t.Fatalf("got %d witnesses, want %d", len(ws), n)
	}
	return projections(t, f, ws), eng.Stats()
}

// canonStats zeroes the fields exempt from the determinism contract:
// the machine diagnostics (Conflicts, Propagations, and the
// clause-database counters/gauge) depend on each session's accumulated
// solver state, so they legitimately vary with pool shape.
func canonStats(st core.Stats) core.Stats {
	st.Conflicts = 0
	st.Propagations = 0
	st.Learned = 0
	st.Removed = 0
	st.Compactions = 0
	st.ArenaBytes = 0
	return st
}

// TestDeterminismAcrossWorkerCounts is the engine's headline invariant:
// the sample multiset and the merged stats for a fixed master seed are
// identical whether rounds run on 1, 2, or 8 sessions. Run it with
// -race to exercise the pool under the race detector.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	const n = 30
	refSeq, refStats := sampleWith(t, 1, n)
	refSorted := append([]string(nil), refSeq...)
	sort.Strings(refSorted)
	for _, workers := range []int{2, 8} {
		seq, st := sampleWith(t, workers, n)
		// Rounds are consumed in index order, so not just the multiset
		// but the sequence itself must match.
		if !reflect.DeepEqual(seq, refSeq) {
			t.Fatalf("workers=%d: sample sequence diverged from single-worker run", workers)
		}
		if !reflect.DeepEqual(canonStats(st), canonStats(refStats)) {
			t.Fatalf("workers=%d: merged stats %+v != single-worker stats %+v", workers, st, refStats)
		}
	}
	if refStats.Samples != n || refStats.Q == 0 || refStats.EasyCase {
		t.Fatalf("implausible stats: %+v", refStats)
	}
	if len(refSorted) != n {
		t.Fatalf("multiset size %d", len(refSorted))
	}
}

// TestSampleNContinuesRoundStream: two SampleN calls on one engine must
// reproduce one big SampleN call on a fresh engine with the same seed.
func TestSampleNContinuesRoundStream(t *testing.T) {
	f := hardFormula()
	mk := func() *Engine {
		eng, err := NewEngine(f, Options{Workers: 3, MasterSeed: 11, Core: core.Options{Epsilon: 6, ApproxMCRounds: 15}})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	whole := mk()
	all, err := whole.SampleN(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	split := mk()
	first, err := split.SampleN(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	second, err := split.SampleN(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	got := projections(t, f, append(first, second...))
	want := projections(t, f, all)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("split SampleN calls diverged from one whole call")
	}
	if !reflect.DeepEqual(canonStats(split.Stats()), canonStats(whole.Stats())) {
		t.Fatalf("split stats %+v != whole stats %+v", split.Stats(), whole.Stats())
	}
}

// TestSampleMatchesSampleN: one-at-a-time Sample draws must consume the
// same round stream as a batch SampleN, witnesses and stats alike.
func TestSampleMatchesSampleN(t *testing.T) {
	f := hardFormula()
	opts := Options{Workers: 2, MasterSeed: 13, Core: core.Options{Epsilon: 6, ApproxMCRounds: 15}}
	batch, err := NewEngine(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := batch.SampleN(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewEngine(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	var got []cnf.Assignment
	for i := 0; i < 10; i++ {
		w, err := single.Sample(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, w)
	}
	if !reflect.DeepEqual(projections(t, f, got), projections(t, f, ws)) {
		t.Fatal("Sample sequence diverged from SampleN")
	}
	if !reflect.DeepEqual(canonStats(single.Stats()), canonStats(batch.Stats())) {
		t.Fatalf("stats diverged: %+v vs %+v", single.Stats(), batch.Stats())
	}
}

func TestEasyCasePool(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1, 2) // 3 witnesses: easy path
	eng, err := NewEngine(f, Options{Workers: 4, MasterSeed: 3, Core: core.Options{Epsilon: 6}})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := eng.SampleN(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 50 {
		t.Fatalf("got %d witnesses", len(ws))
	}
	st := eng.Stats()
	if !st.EasyCase || st.Samples != 50 {
		t.Fatalf("stats %+v", st)
	}
	distinct := map[string]bool{}
	for _, p := range projections(t, f, ws) {
		distinct[p] = true
	}
	if len(distinct) != 3 {
		t.Fatalf("saw %d distinct witnesses, want 3", len(distinct))
	}
}

func TestUnsatFormulaSurfacesError(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(1)
	f.AddClause(-1)
	eng, err := NewEngine(f, Options{Workers: 2, MasterSeed: 1, Core: core.Options{Epsilon: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SampleN(context.Background(), 5); err == nil {
		t.Fatal("sampling an unsat formula succeeded")
	}
}

// TestSampleNCancellation: a cancelled context must stop a large
// SampleN long before the work completes, returning ctx.Err(). The
// request (5000 samples of a hashing-path instance) takes many seconds
// of solver time single-threaded; cancellation after a few rounds must
// bring the call home promptly.
func TestSampleNCancellation(t *testing.T) {
	eng, err := NewEngine(hardFormula(), Options{
		Workers:    2,
		MasterSeed: 5,
		Core:       core.Options{Epsilon: 6, ApproxMCRounds: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	ws, err := eng.SampleN(ctx, 5000)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ws) >= 5000 {
		t.Fatal("cancellation returned a full batch")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("SampleN took %v after cancellation", elapsed)
	}
	// The engine must remain usable after an aborted call.
	more, err := eng.SampleN(context.Background(), 3)
	if err != nil || len(more) != 3 {
		t.Fatalf("post-cancel SampleN: %d witnesses, err=%v", len(more), err)
	}
}

func TestPreCancelledContext(t *testing.T) {
	eng, err := NewEngine(hardFormula(), Options{
		Workers:    2,
		MasterSeed: 5,
		Core:       core.Options{Epsilon: 6, ApproxMCRounds: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SampleN(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSampleNRejectsNonPositive(t *testing.T) {
	eng, err := NewEngine(hardFormula(), Options{Workers: 1, MasterSeed: 2, Core: core.Options{Epsilon: 6, ApproxMCRounds: 15}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SampleN(context.Background(), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// TestStreamIndependentOfConsumption pins the property SampleRound
// relies on: the stream for round i does not depend on any other
// round's stream having been consumed.
func TestStreamIndependentOfConsumption(t *testing.T) {
	a := randx.Stream(99, 4)
	b := randx.Stream(99, 4)
	_ = randx.Stream(99, 3).Uint64() // consuming a sibling changes nothing
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Stream(99, 4) not reproducible")
		}
	}
}
