// Package parallel is the worker-pool sampling engine over UniGen's
// core. The DAC'14 paper's central scalability argument is that after
// the one-time ApproxMC setup every sample is drawn independently — the
// loop is embarrassingly parallel. This package industrializes that
// observation (as the UniGen2 line of work did): the setup runs once,
// and sampling rounds fan out over a pool of workers, each owning a
// private incremental bsat.Session (solvers are not thread-safe) and
// executing rounds with RNG streams split deterministically from one
// master seed.
//
// # Determinism
//
// Round i of a run — whichever worker executes it — uses
// randx.Stream(masterSeed, i) as its RNG, and the core canonically
// orders each accepted cell before the uniform index pick, so a round's
// outcome is a function of the round index and the master seed alone,
// not of worker count, scheduling, or the executing session's solver
// history. SampleN consumes rounds strictly in index order, so for a
// fixed master seed the multiset of returned samples (projected onto
// the sampling set) and the merged Stats are identical for 1, 2, or N
// workers. The one caveat: conflict-budget exhaustion (sat.Config
// budgets) depends on accumulated solver state, so a run in which
// budgets fire may retry rounds differently across pool shapes —
// retries still only consume the round's own stream, never a
// neighbour's.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/core"
	"unigen/internal/obs"
	"unigen/internal/randx"
)

// ErrRoundPanic wraps a panic recovered at a sampling-round boundary.
// A panicking round — a solver bug, a corrupted session — fails its
// request with this error instead of killing the process (or, in a
// worker pool, silently deadlocking the collector). The session that
// panicked is not reused for further rounds of the same call; the
// request aborts, and later requests build fresh sessions.
var ErrRoundPanic = errors.New("parallel: sampling round panicked")

// runRound executes one sampling round, converting a panic into
// ErrRoundPanic. This is the failure-isolation boundary of the engine:
// everything below it (core, bsat, sat) may panic without taking down
// the daemon. sp, when non-nil, receives per-cell child spans from the
// core (obs tracing); a panic still ends the round's span upstream.
func runRound(su *core.Setup, sess *bsat.Session, rng *randx.RNG, st *core.Stats, sp *obs.Span) (w cnf.Assignment, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrRoundPanic, r)
		}
	}()
	return su.SampleRoundSpan(sess, rng, st, sp)
}

// traceRound opens a "round" span under the context-carried span and
// returns a closure finishing it with the round's solver-work delta.
// When ctx carries no span both returns are nil-safe no-ops — the
// disarmed path costs one context lookup per round.
func traceRound(parent *obs.Span, absIdx uint64) (*obs.Span, func(st *core.Stats, err error)) {
	sp := parent.StartSpan("round")
	if sp == nil {
		return nil, func(*core.Stats, error) {}
	}
	return sp, func(st *core.Stats, err error) {
		sp.SetInt("idx", int64(absIdx))
		sp.SetInt("bsat_calls", st.BSATCalls)
		sp.SetInt("conflicts", st.Conflicts)
		sp.SetInt("propagations", st.Propagations)
		sp.SetInt("xor_rows", st.XORRows)
		if err != nil {
			sp.SetInt("failed", 1)
		}
		sp.End()
	}
}

// Options configures an Engine.
type Options struct {
	// Workers is the pool size: the number of private solver sessions
	// sampling rounds are fanned out over. 0 defaults to
	// runtime.GOMAXPROCS(0). 1 is a valid degenerate pool (useful for
	// determinism tests and as the ctx-aware single-threaded path).
	Workers int
	// MasterSeed roots the per-round RNG streams (see the package
	// comment). The setup-phase RNG is NOT derived from it: NewEngine
	// seeds setup from the formula fingerprint (core.PrepSeed), so the
	// prepared state is a function of the formula alone and a cached
	// Setup can serve any master seed (see NewEngineFromSetup).
	MasterSeed uint64
	// Core is forwarded to the shared core.Setup. Core.Solver.Interrupt
	// is overwritten: the engine installs its own flag so SampleN can
	// abort in-flight BSAT calls on context cancellation.
	// NewEngineFromSetup ignores every Core field except the
	// Solver.MaxConflicts / Solver.MaxPropagations budget overrides.
	Core core.Options
}

// roundResult carries one finished round from a worker to the
// collector.
type roundResult struct {
	idx   uint64 // round index, relative to the SampleN call
	w     cnf.Assignment
	stats core.Stats
	err   error
}

// Engine runs UniGen sampling rounds over a pool of per-worker solver
// sessions sharing one Setup. Construct with NewEngine; an Engine is
// meant to be used from one goroutine at a time (the pool parallelism
// is internal), like core.Sampler.
type Engine struct {
	setup    *core.Setup
	sessions []*bsat.Session // one per worker, owned exclusively during SampleN
	seed     uint64
	next     uint64         // absolute index of the first round of the next SampleN
	stats    core.Stats     // setup stats merged with all consumed round deltas
	intr     *atomic.Bool   // shared by every session's solver config
	flags    []*atomic.Bool // every interrupt flag raised/cleared together
	doomed   []bool         // per-session: a round panicked on this session
}

// raiseIntr and clearIntr flip every interrupt flag the engine's
// sessions listen on. Engines built by NewEngine/NewEngineFromSetup
// have a single shared flag; leased (pooled) sessions each carry their
// own, so cancellation must fan out.
func (e *Engine) raiseIntr() {
	for _, f := range e.flags {
		f.Store(true)
	}
}

func (e *Engine) clearIntr() {
	for _, f := range e.flags {
		f.Store(false)
	}
}

// NewEngine runs the ApproxMC setup once and builds one solver session
// per worker. The setup RNG is seeded from the formula fingerprint
// (core.PrepSeed), not from MasterSeed: the prepared state for a
// formula is identical whatever seed the caller samples with, which is
// what lets the service layer hand a cached Setup to requests with
// arbitrary seeds and still return bit-identical samples (DESIGN §8).
func NewEngine(f *cnf.Formula, opts Options) (*Engine, error) {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{seed: opts.MasterSeed, intr: new(atomic.Bool)}
	e.flags = []*atomic.Bool{e.intr}
	co := opts.Core
	co.Solver.Interrupt = e.intr
	su, err := core.NewSetup(f, randx.New(core.PrepSeed(f, co.SamplingSet)), co)
	if err != nil {
		return nil, err
	}
	e.setup = su
	e.stats = su.SetupStats()
	e.sessions = make([]*bsat.Session, w)
	for i := range e.sessions {
		e.sessions[i] = su.NewSession()
	}
	e.doomed = make([]bool, w)
	return e, nil
}

// NewEngineFromSetup builds an engine around an existing prepared Setup
// — the service layer's cache-hit path, where the expensive ApproxMC
// setup already ran (under the fingerprint-derived RNG NewEngine uses)
// and only per-request sessions need constructing. The engine gets a
// private interrupt flag, so cancelling its calls never disturbs other
// engines sharing the Setup; sessions are built with the setup's solver
// configuration, with opts.Core.Solver.MaxConflicts/MaxPropagations
// overriding the budgets when non-zero (per-request budgets). Unlike
// NewEngine the returned engine's Stats start at zero: the shared setup
// phase is accounted once by the cache owner, not per request.
func NewEngineFromSetup(su *core.Setup, opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{setup: su, seed: opts.MasterSeed, intr: new(atomic.Bool)}
	e.flags = []*atomic.Bool{e.intr}
	cfg := su.SolverConfig()
	if mc := opts.Core.Solver.MaxConflicts; mc != 0 {
		cfg.MaxConflicts = mc
	}
	if mp := opts.Core.Solver.MaxPropagations; mp != 0 {
		cfg.MaxPropagations = mp
	}
	cfg.Interrupt = e.intr
	e.sessions = make([]*bsat.Session, w)
	for i := range e.sessions {
		e.sessions[i] = su.NewSessionWith(cfg)
	}
	e.doomed = make([]bool, w)
	return e
}

// Lease is a checked-out pooled session handed to NewEngineWithSessions:
// the session (typically carrying standing assumption literals for a
// delta request) plus the private interrupt flag its solver polls.
type Lease struct {
	Sess *bsat.Session
	Intr *atomic.Bool
}

// NewEngineWithSessions builds an engine over caller-owned sessions —
// the delta-request path, where a session pool lends per-worker sessions
// that already carry the request's assumptions and budgets. The pool
// size is len(leases). The engine raises and clears every lease's
// interrupt flag together for cancellation, but never touches budgets or
// assumptions: check-out/check-in hygiene is the pool's job. After
// SampleN returns, Doomed reports which leased sessions a round panicked
// on, so the pool can retire them instead of re-pooling corrupted state.
func NewEngineWithSessions(su *core.Setup, leases []Lease, masterSeed uint64) *Engine {
	e := &Engine{setup: su, seed: masterSeed, intr: new(atomic.Bool)}
	e.flags = []*atomic.Bool{e.intr}
	e.sessions = make([]*bsat.Session, len(leases))
	for i, l := range leases {
		e.sessions[i] = l.Sess
		if l.Intr != nil {
			e.flags = append(e.flags, l.Intr)
		}
	}
	e.doomed = make([]bool, len(leases))
	return e
}

// Doomed reports, per worker session, whether a sampling round panicked
// on it during this engine's lifetime. Valid after Sample/SampleN
// return; session pools consult it at check-in.
func (e *Engine) Doomed() []bool { return e.doomed }

// Workers returns the pool size.
func (e *Engine) Workers() int { return len(e.sessions) }

// Sample draws one witness synchronously on the first worker session,
// retrying ⊥ rounds. It consumes exactly the rounds SampleN(ctx, 1)
// would and merges the same stats, so mixing Sample and SampleN keeps
// the run reproducible — but it spins up no goroutines, making it the
// right call for one-at-a-time draws. Cancellation is checked between
// rounds only; use SampleN to interrupt mid-round SAT search.
func (e *Engine) Sample(ctx context.Context) (cnf.Assignment, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng := randx.Stream(e.seed, e.next)
		var st core.Stats
		sp, endRound := traceRound(obs.SpanFrom(ctx), e.next)
		w, err := runRound(e.setup, e.sessions[0], rng, &st, sp)
		endRound(&st, err)
		e.next++
		e.stats = e.stats.Merge(st)
		switch {
		case err == nil:
			return w, nil
		case errors.Is(err, core.ErrFailed):
			// ⊥ round: try the next round in the stream.
		default:
			if errors.Is(err, ErrRoundPanic) {
				e.doomed[0] = true
			}
			return nil, err
		}
	}
}

// Setup returns the shared once-per-formula state.
func (e *Engine) Setup() *core.Setup { return e.setup }

// Stats returns the merged statistics: the setup phase plus every round
// consumed by SampleN calls so far. core.Stats.Merge is order-
// insensitive (all counters are integers), and the consumed round
// prefix depends only on the master seed, so the value is reproducible
// for a fixed seed at any worker count. Speculative rounds that
// completed beyond the last consumed index are not included.
func (e *Engine) Stats() core.Stats { return e.stats }

// SampleN draws n almost-uniform witnesses using the worker pool,
// transparently skipping ⊥ rounds. In-flight work is bounded by the
// pool size: each worker executes one round at a time, pulling the next
// free round index from a shared dispenser. Results are consumed in
// round-index order, so the returned multiset is deterministic for a
// fixed master seed (see the package comment).
//
// On ctx cancellation the engine raises the shared solver interrupt
// flag — in-flight BSAT calls return promptly, as if their conflict
// budget had been exhausted — and SampleN returns the witnesses
// completed so far together with ctx.Err(). Other hard errors
// (ErrBudget, unsatisfiable formula) abort the same way.
func (e *Engine) SampleN(ctx context.Context, n int) ([]cnf.Assignment, error) {
	if n <= 0 {
		return nil, errors.New("parallel: sample count must be positive")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.clearIntr()

	// Forward ctx cancellation to every in-flight solver call.
	watchDone := make(chan struct{})
	watcherGone := make(chan struct{})
	go func() {
		defer close(watcherGone)
		select {
		case <-ctx.Done():
			e.raiseIntr()
		case <-watchDone:
		}
	}()

	var (
		dispenser atomic.Uint64 // next round index (relative) to hand out
		stop      atomic.Bool   // set by the collector; workers drain out
		results   = make(chan roundResult, 2*len(e.sessions))
		wg        sync.WaitGroup
	)
	parentSpan := obs.SpanFrom(ctx)
	for wi, sess := range e.sessions {
		wg.Add(1)
		go func(wi int, sess *bsat.Session) {
			defer wg.Done()
			for !stop.Load() {
				idx := dispenser.Add(1) - 1
				rng := randx.Stream(e.seed, e.next+idx)
				var st core.Stats
				sp, endRound := traceRound(parentSpan, e.next+idx)
				w, err := runRound(e.setup, sess, rng, &st, sp)
				endRound(&st, err)
				if errors.Is(err, ErrRoundPanic) {
					// Written only by this worker, read after wg.Wait:
					// the panicked session must not return to a pool.
					e.doomed[wi] = true
				}
				if err != nil && !errors.Is(err, ErrRoundPanic) && ctx.Err() != nil {
					// Interrupt-induced budget errors masquerade as
					// ErrBudget; report the cancellation instead. Panics
					// are never masked: a crash is a crash, cancelled or
					// not.
					err = ctx.Err()
				}
				results <- roundResult{idx: idx, w: w, stats: st, err: err}
			}
		}(wi, sess)
	}

	// Collector: consume rounds strictly in index order — that is what
	// pins which rounds constitute the run, making the witness multiset
	// (and the stats merged over exactly those rounds) independent of
	// pool shape. Rounds completed beyond the consumed prefix are
	// speculative and discarded entirely, witnesses and stats.
	var (
		out      []cnf.Assignment
		firstErr error
		pending  = map[uint64]roundResult{}
		consume  uint64 // next round index to consume
	)
collect:
	for len(out) < n {
		res, ok := pending[consume]
		if !ok {
			r := <-results
			if r.idx != consume {
				pending[r.idx] = r
				continue
			}
			res = r
		} else {
			delete(pending, consume)
		}
		consume++
		e.stats = e.stats.Merge(res.stats)
		switch {
		case res.err == nil:
			out = append(out, res.w)
		case errors.Is(res.err, core.ErrFailed):
			// ⊥ round: counted in stats, try further rounds.
		default:
			firstErr = res.err
			break collect
		}
	}

	// Shut the pool down without stranding a worker on a full results
	// channel: drain until every worker has exited.
	stop.Store(true)
	e.raiseIntr() // hasten rounds already in flight; discarded anyway
	go func() {
		for range results {
		}
	}()
	wg.Wait()
	close(results)
	close(watchDone)
	<-watcherGone
	e.clearIntr()

	// Later SampleN calls continue the round stream where this call's
	// consumed prefix ended, preserving end-to-end reproducibility of
	// multi-call runs.
	e.next += consume
	return out, firstErr
}
