package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/big"

	"unigen/internal/cnf"
)

// Setup codec: the versioned, checksummed binary encoding behind the
// persistent prepared-formula store (DESIGN §12). Encode serializes
// everything lines 1–11 of Algorithm 1 derive — the simplified formula,
// sampling set, κ/pivot, the easy-case witness list, the ApproxMC
// estimate C, the candidate endpoint q, and the setup-phase stats — so
// a later process can rehydrate the Setup and serve bit-identical
// samples without re-running the setup. The spare session is the one
// field that cannot be persisted: a decoded Setup carries spare=nil, so
// NewSession and NewSessionWith build solvers lazily on first use.
//
// Frame layout (all integers little-endian):
//
//	[0:4]   magic "UGSU"
//	[4:6]   u16 version (currently 1)
//	[6:10]  u32 payload length
//	[10:N]  payload (see below)
//	[N:N+4] u32 CRC-32C (Castagnoli) over bytes [0:N]
//
// The frame must be exact: trailing bytes after the CRC are rejected,
// which is what makes Encode∘Decode a fixpoint on every accepted input
// (the property FuzzDecodeSetup pins).
//
// Payload layout:
//
//	[32]byte fingerprint of the encoded formula (cnf.Fingerprint)
//	f64      epsilon (IEEE-754 bits; preserved exactly, NaN included)
//	formula  (cnf.AppendBinary)
//	u32 count + u32 per variable   sampling set s
//	f64 kappa, u32 pivot, u32 hiThresh, f64 loThresh
//	u8 easySet (0|1)
//	u32 easyCount + easyCount × ⌈NumVars/8⌉ bytes   bit-packed witnesses
//	    (bit v−1 of a row is variable v; row order is the canonical
//	    sortWitnesses order, which SampleRound's index pick depends on)
//	u32 q
//	u8 estTag (0|1) + if 1: u32 len + big-endian magnitude (big.Int.Bytes)
//	base stats: 17 × u64 (two's-complement int64, declaration order),
//	    u32 SetupRounds, u8 EasyCase, u32 Q
//
// Decode validates structure, never panics on arbitrary input, and
// bounds every allocation by the bytes actually present. Semantic
// checks reject blobs no Encode could have produced: the embedded
// fingerprint must match the decoded formula, κ/pivot must equal
// ComputeKappaPivot(epsilon) exactly (both sides run the same
// deterministic bisection), easy-case and estimate presence must agree,
// and q must lie in its clamped range.

const (
	setupMagic   = "UGSU"
	setupVersion = 1
	setupHdrLen  = 4 + 2 + 4 // magic + version + payload length
)

// ErrCodec tags every setup-encoding failure: truncation, checksum or
// version mismatch, and structurally impossible field values. The store
// tier treats any ErrCodec as a miss and quarantines the entry.
var ErrCodec = errors.New("core: invalid setup encoding")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// MaxEncodedWitnesses bounds the easy-case witness count accepted at
// decode. Real easy lists hold at most HiThresh entries (≲ a few
// hundred for any admissible ε), so the bound is generous while keeping
// hostile counts from sizing huge allocations.
const MaxEncodedWitnesses = 1 << 20

// Encode serializes the setup into a self-contained checksummed frame
// suitable for the persistent store. The encoding captures everything
// the setup derived; it does not capture Options.Solver or other
// runtime knobs, which the decoding process supplies (they configure
// sessions, not the prepared state).
func (su *Setup) Encode() ([]byte, error) {
	le := binary.LittleEndian
	payload := make([]byte, 0, 256)

	fp := cnf.Fingerprint(su.f)
	payload = append(payload, fp[:]...)
	payload = le.AppendUint64(payload, math.Float64bits(su.opts.Epsilon))

	var err error
	payload, err = cnf.AppendBinary(payload, su.f)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}

	payload = le.AppendUint32(payload, uint32(len(su.s)))
	for _, v := range su.s {
		if v < 1 || int(v) > su.f.NumVars {
			return nil, fmt.Errorf("%w: sampling variable %d outside 1..%d", ErrCodec, v, su.f.NumVars)
		}
		payload = le.AppendUint32(payload, uint32(v))
	}

	payload = le.AppendUint64(payload, math.Float64bits(su.kp.Kappa))
	payload = le.AppendUint32(payload, uint32(su.kp.Pivot))
	payload = le.AppendUint32(payload, uint32(su.kp.HiThresh))
	payload = le.AppendUint64(payload, math.Float64bits(su.kp.LoThresh))

	payload = appendBool(payload, su.easySet)
	payload = le.AppendUint32(payload, uint32(len(su.easy)))
	width := (su.f.NumVars + 7) / 8
	row := make([]byte, width)
	for _, w := range su.easy {
		clear(row)
		for v := 1; v <= su.f.NumVars; v++ {
			if v < len(w) && w[v] {
				row[(v-1)/8] |= 1 << uint((v-1)%8)
			}
		}
		payload = append(payload, row...)
	}

	payload = le.AppendUint32(payload, uint32(su.q))
	if su.est == nil {
		payload = append(payload, 0)
	} else {
		if su.est.Sign() <= 0 {
			return nil, fmt.Errorf("%w: non-positive estimate", ErrCodec)
		}
		eb := su.est.Bytes()
		payload = append(payload, 1)
		payload = le.AppendUint32(payload, uint32(len(eb)))
		payload = append(payload, eb...)
	}

	for _, c := range statsCounters(&su.base) {
		payload = le.AppendUint64(payload, uint64(*c))
	}
	payload = le.AppendUint32(payload, uint32(su.base.SetupRounds))
	payload = appendBool(payload, su.base.EasyCase)
	payload = le.AppendUint32(payload, uint32(su.base.Q))

	out := make([]byte, 0, setupHdrLen+len(payload)+4)
	out = append(out, setupMagic...)
	out = le.AppendUint16(out, setupVersion)
	out = le.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = le.AppendUint32(out, crc32.Checksum(out, crcTable))
	return out, nil
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// statsCounters lists the int64 counters of Stats in their fixed codec
// order. Encode and decode both go through it, so the two cannot skew;
// adding a Stats field means extending this list and bumping
// setupVersion.
func statsCounters(st *Stats) []*int64 {
	return []*int64{
		&st.Samples, &st.Failures, &st.BSATCalls, &st.XORRows, &st.XORLenSum,
		&st.Conflicts, &st.Propagations, &st.Learned, &st.Removed, &st.Compactions,
		&st.ArenaBytes, &st.VivifiedLits, &st.SubsumedLearnts, &st.ProbedLits,
		&st.FailedLits, &st.Rephases, &st.ChronoBacktracks,
	}
}

// VerifySetupFrame checks the frame envelope — magic, version, exact
// length, checksum — without decoding the payload. The store runs it on
// every read so corrupt, truncated, or version-skewed entries are
// quarantined at the I/O boundary, before any structural decode.
func VerifySetupFrame(data []byte) error {
	if len(data) < setupHdrLen+4 {
		return fmt.Errorf("%w: frame of %d bytes", ErrCodec, len(data))
	}
	if string(data[:4]) != setupMagic {
		return fmt.Errorf("%w: bad magic", ErrCodec)
	}
	le := binary.LittleEndian
	if v := le.Uint16(data[4:]); v != setupVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrCodec, v, setupVersion)
	}
	plen := int(le.Uint32(data[6:]))
	if len(data) != setupHdrLen+plen+4 {
		return fmt.Errorf("%w: frame length %d, header says %d", ErrCodec, len(data), setupHdrLen+plen+4)
	}
	body := setupHdrLen + plen
	if got, want := crc32.Checksum(data[:body], crcTable), le.Uint32(data[body:]); got != want {
		return fmt.Errorf("%w: checksum mismatch", ErrCodec)
	}
	return nil
}

// EncodedFingerprint extracts the formula fingerprint from an encoded
// setup frame after envelope verification, without decoding the rest of
// the payload. The service's disk tier uses it to confirm a store entry
// answers the formula actually requested before paying for the decode.
func EncodedFingerprint(data []byte) ([32]byte, error) {
	var fp [32]byte
	if err := VerifySetupFrame(data); err != nil {
		return fp, err
	}
	if int(binary.LittleEndian.Uint32(data[6:])) < 32 {
		return fp, fmt.Errorf("%w: payload too short for fingerprint", ErrCodec)
	}
	copy(fp[:], data[setupHdrLen:])
	return fp, nil
}

// setupReader is a bounds-checked cursor over the payload.
type setupReader struct {
	data []byte
	off  int
}

func (r *setupReader) remaining() int { return len(r.data) - r.off }

func (r *setupReader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("%w: truncated payload at byte %d", ErrCodec, r.off)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *setupReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated payload at byte %d", ErrCodec, r.off)
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *setupReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated payload at byte %d", ErrCodec, r.off)
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *setupReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *setupReader) bool() (bool, error) {
	b, err := r.u8()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, fmt.Errorf("%w: boolean byte %d", ErrCodec, b)
	}
	return b == 1, nil
}

func (r *setupReader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("%w: truncated payload at byte %d", ErrCodec, r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// DecodeSetup rehydrates a Setup from an Encode frame. opts supplies
// the runtime configuration the encoding deliberately omits — solver
// budgets, Gauss–Jordan, MaxRetries — exactly as NewSetup would have
// received it; opts.Epsilon must match the encoded epsilon (zero adopts
// it). The returned Setup has no spare session: the first NewSession or
// NewSessionWith call builds a solver lazily, so rehydration itself
// performs no solver work at all.
func DecodeSetup(data []byte, opts Options) (*Setup, error) {
	if err := VerifySetupFrame(data); err != nil {
		return nil, err
	}
	plen := int(binary.LittleEndian.Uint32(data[6:]))
	r := &setupReader{data: data[setupHdrLen : setupHdrLen+plen]}

	fpb, err := r.take(32)
	if err != nil {
		return nil, err
	}
	var fp [32]byte
	copy(fp[:], fpb)

	eps, err := r.f64()
	if err != nil {
		return nil, err
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = eps
	} else if math.Float64bits(opts.Epsilon) != math.Float64bits(eps) {
		return nil, fmt.Errorf("%w: encoded for epsilon %v, requested %v", ErrCodec, eps, opts.Epsilon)
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 10
	}

	f, n, err := cnf.DecodeBinary(r.data[r.off:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	r.off += n
	if cnf.Fingerprint(f) != fp {
		return nil, fmt.Errorf("%w: fingerprint does not match encoded formula", ErrCodec)
	}

	ns, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(ns)*4 > int64(r.remaining()) {
		return nil, fmt.Errorf("%w: sampling-set count %d exceeds payload", ErrCodec, ns)
	}
	s := make([]cnf.Var, ns)
	for i := range s {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		if v < 1 || int(v) > f.NumVars {
			return nil, fmt.Errorf("%w: sampling variable %d outside 1..%d", ErrCodec, v, f.NumVars)
		}
		s[i] = cnf.Var(v)
	}

	var kp KappaPivot
	if kp.Kappa, err = r.f64(); err != nil {
		return nil, err
	}
	pv, err := r.u32()
	if err != nil {
		return nil, err
	}
	kp.Pivot = int(pv)
	ht, err := r.u32()
	if err != nil {
		return nil, err
	}
	kp.HiThresh = int(ht)
	if kp.LoThresh, err = r.f64(); err != nil {
		return nil, err
	}
	want, kerr := ComputeKappaPivot(opts.Epsilon)
	if kerr != nil || want != kp {
		return nil, fmt.Errorf("%w: kappa/pivot does not match epsilon %v", ErrCodec, opts.Epsilon)
	}

	easySet, err := r.bool()
	if err != nil {
		return nil, err
	}
	ne, err := r.u32()
	if err != nil {
		return nil, err
	}
	width := (f.NumVars + 7) / 8
	if ne > MaxEncodedWitnesses || int64(ne)*int64(max(width, 1)) > int64(r.remaining()) {
		return nil, fmt.Errorf("%w: witness count %d exceeds payload", ErrCodec, ne)
	}
	if !easySet && ne != 0 {
		return nil, fmt.Errorf("%w: %d witnesses without easy-case flag", ErrCodec, ne)
	}
	var easy []cnf.Assignment
	if ne > 0 {
		easy = make([]cnf.Assignment, ne)
	}
	for i := range easy {
		row, err := r.take(width)
		if err != nil {
			return nil, err
		}
		a := cnf.NewAssignment(f.NumVars)
		for v := 1; v <= f.NumVars; v++ {
			if row[(v-1)/8]&(1<<uint((v-1)%8)) != 0 {
				a[v] = true
			}
		}
		easy[i] = a
	}

	qv, err := r.u32()
	if err != nil {
		return nil, err
	}
	q := int(qv)
	estTag, err := r.bool()
	if err != nil {
		return nil, err
	}
	if estTag == easySet {
		return nil, fmt.Errorf("%w: estimate presence %v with easy-case flag %v", ErrCodec, estTag, easySet)
	}
	var est *big.Int
	if estTag {
		el, err := r.u32()
		if err != nil {
			return nil, err
		}
		eb, err := r.take(int(el))
		if err != nil {
			return nil, err
		}
		// big.Int.Bytes() is canonical: non-empty, no leading zero.
		// Anything else would re-encode shorter and break the fixpoint.
		if len(eb) == 0 || eb[0] == 0 {
			return nil, fmt.Errorf("%w: non-canonical estimate bytes", ErrCodec)
		}
		est = new(big.Int).SetBytes(eb)
		if q < 1 || q > len(s) {
			return nil, fmt.Errorf("%w: q=%d outside 1..%d", ErrCodec, q, len(s))
		}
	} else if q != 0 {
		return nil, fmt.Errorf("%w: easy-case setup with q=%d", ErrCodec, q)
	}

	var base Stats
	for _, c := range statsCounters(&base) {
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		*c = int64(v)
	}
	sr, err := r.u32()
	if err != nil {
		return nil, err
	}
	base.SetupRounds = int(sr)
	if base.EasyCase, err = r.bool(); err != nil {
		return nil, err
	}
	bq, err := r.u32()
	if err != nil {
		return nil, err
	}
	base.Q = int(bq)
	if base.EasyCase != easySet {
		return nil, fmt.Errorf("%w: stats easy-case flag disagrees with setup", ErrCodec)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCodec, r.remaining())
	}

	return &Setup{
		f:       f,
		s:       s,
		kp:      kp,
		opts:    opts,
		easy:    easy,
		easySet: easySet,
		q:       q,
		est:     est,
		base:    base,
	}, nil
}
