package core

import (
	"encoding/binary"
	"math/big"

	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/sat"
)

// PrepSeed returns the canonical preparation seed for f: the leading 64
// bits of the formula's fingerprint, computed with samplingSet
// substituted for the formula's own sampling set when non-empty.
//
// Every prepared-formula path — the facade's worker-pool sampler, the
// service cache, the daemon — seeds the NewSetup RNG this way, which
// makes the Setup (easy-case witness list, ApproxMC estimate, q) a pure
// function of the formula rather than of any request's sample seed.
// That is the property the service layer's cache depends on: one cached
// Setup serves requests with arbitrary seeds, and the samples each
// request gets are bit-identical to what a cold Sampler run with the
// same seed would have produced (DESIGN §8).
func PrepSeed(f *cnf.Formula, samplingSet []cnf.Var) uint64 {
	if len(samplingSet) > 0 {
		// Shallow header copy: Fingerprint never mutates its input, so
		// the clause and XOR slices can be shared.
		f = &cnf.Formula{
			NumVars:     f.NumVars,
			Clauses:     f.Clauses,
			XORs:        f.XORs,
			SamplingSet: samplingSet,
		}
	}
	return PrepSeedFromFingerprint(cnf.Fingerprint(f))
}

// PrepSeedFromFingerprint derives the preparation seed from an already
// computed fingerprint (the service layer fingerprints once for the
// cache key and reuses the digest here).
func PrepSeedFromFingerprint(fp [32]byte) uint64 {
	return binary.LittleEndian.Uint64(fp[:8])
}

// SolverConfig returns the solver configuration the setup's sessions
// are built with (budgets, Gauss–Jordan flag, interrupt). Callers that
// share a Setup across concurrent requests start from this and swap in
// a private Interrupt before building sessions with NewSessionWith.
func (su *Setup) SolverConfig() sat.Config { return su.opts.Solver }

// ReleaseSpare drops the setup-phase spare session (the solver the
// easy-case enumeration ran on, normally adopted by the first
// NewSession call). Owners that build sessions exclusively through
// NewSessionWith — the service cache holds Setups for their whole LRU
// lifetime — call this once after NewSetup so each cached formula does
// not pin a dead solver instance. Call before sharing the Setup;
// afterwards the Setup is immutable again.
func (su *Setup) ReleaseSpare() { su.spare = nil }

// NewSessionWith builds a fresh BSAT session over the setup's formula
// and sampling set with the given solver configuration — typically
// SolverConfig() with a per-request Interrupt flag and budget
// overrides. Unlike NewSession it never adopts the setup-phase spare
// session, so it is safe to call concurrently from request handlers
// sharing one cached Setup (the Setup itself is immutable; only
// sessions carry mutable solver state).
func (su *Setup) NewSessionWith(cfg sat.Config) *bsat.Session {
	return bsat.NewSession(su.f, bsat.Options{SamplingSet: su.s, Solver: cfg})
}

// WitnessCount returns the prepared count of witnesses projected onto
// the sampling set: the exact count when the setup took the easy-case
// path (lines 5–7 enumerated R_F completely; exact=true, and 0 for an
// unsatisfiable formula), otherwise the setup-time ApproxMC estimate —
// within a factor 1.8 of |R_F↓S| with confidence 0.8, the parameters of
// Algorithm 1 line 9. A cache-hit Count request is answered from this
// without any solver work.
func (su *Setup) WitnessCount() (c *big.Int, exact bool) {
	if su.easySet {
		return big.NewInt(int64(len(su.easy))), true
	}
	return new(big.Int).Set(su.est), false
}
