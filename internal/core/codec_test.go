package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

// hashingFormula has 2^10 witnesses projected on its sampling set —
// far above hiThresh for ε=6 — so NewSetup takes the ApproxMC path.
func hashingFormula() *cnf.Formula {
	f := cnf.New(12)
	f.AddClause(11, 12)
	f.SamplingSet = []cnf.Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	return f
}

// easyFormula has 3 witnesses, well below hiThresh: the easy-case path.
func easyFormula() *cnf.Formula {
	f := cnf.New(2)
	f.AddClause(1, 2)
	return f
}

func buildSetup(t *testing.T, f *cnf.Formula) *Setup {
	t.Helper()
	su, err := NewSetup(f, randx.New(PrepSeed(f, nil)), Options{
		Epsilon:        6,
		ApproxMCRounds: 15,
	})
	if err != nil {
		t.Fatalf("NewSetup: %v", err)
	}
	return su
}

func encode(t *testing.T, su *Setup) []byte {
	t.Helper()
	blob, err := su.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return blob
}

// sampleStream draws n rounds from a setup on a fresh session, the way
// the parallel engine schedules round i on stream i.
func sampleStream(t *testing.T, su *Setup, seed uint64, n int) []string {
	t.Helper()
	sess := su.NewSession()
	var st Stats
	out := make([]string, 0, n)
	vars := su.SamplingSet()
	for i := 0; len(out) < n; i++ {
		if i > 100*n {
			t.Fatalf("no %d samples in %d rounds", n, i)
		}
		w, err := su.SampleRound(sess, randx.Stream(seed, uint64(i)), &st)
		if errors.Is(err, ErrFailed) {
			out = append(out, "⊥")
			continue
		}
		if err != nil {
			t.Fatalf("SampleRound: %v", err)
		}
		out = append(out, w.Project(vars))
	}
	return out
}

func TestSetupCodecRoundTripHashing(t *testing.T) {
	su := buildSetup(t, hashingFormula())
	blob := encode(t, su)
	if err := VerifySetupFrame(blob); err != nil {
		t.Fatalf("VerifySetupFrame on valid blob: %v", err)
	}

	got, err := DecodeSetup(blob, Options{Epsilon: 6})
	if err != nil {
		t.Fatalf("DecodeSetup: %v", err)
	}
	if got.spare != nil {
		t.Fatal("decoded setup must not carry a spare session")
	}
	if got.easySet != su.easySet || got.q != su.q {
		t.Fatalf("decoded easySet=%v q=%d, want %v %d", got.easySet, got.q, su.easySet, su.q)
	}
	if su.est == nil || got.est == nil || su.est.Cmp(got.est) != 0 {
		t.Fatalf("estimate %v → %v", su.est, got.est)
	}
	if got.base != su.base {
		t.Fatalf("base stats %+v → %+v", su.base, got.base)
	}
	if got.kp != su.kp {
		t.Fatalf("kappa/pivot %+v → %+v", su.kp, got.kp)
	}

	// Encode → Decode → Encode is a fixpoint.
	blob2 := encode(t, got)
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoded blob differs from original")
	}

	// The rehydrated setup serves the same witness stream: sessions are
	// built lazily and rounds are solver-history-independent.
	want := sampleStream(t, su, 2014, 6)
	have := sampleStream(t, got, 2014, 6)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("round %d: decoded setup sampled %q, want %q", i, have[i], want[i])
		}
	}
}

func TestSetupCodecRoundTripEasy(t *testing.T) {
	su := buildSetup(t, easyFormula())
	if !su.easySet {
		t.Fatal("fixture should take the easy-case path")
	}
	blob := encode(t, su)
	got, err := DecodeSetup(blob, Options{Epsilon: 6})
	if err != nil {
		t.Fatalf("DecodeSetup: %v", err)
	}
	if !got.easySet || len(got.easy) != len(su.easy) {
		t.Fatalf("decoded easy list %d entries, want %d", len(got.easy), len(su.easy))
	}
	// The full witness list survives in canonical order, so index picks
	// match without any re-enumeration (zero BSAT calls on rehydrate).
	for i := range su.easy {
		if !bytes.Equal(boolsToBytes(su.easy[i]), boolsToBytes(got.easy[i])) {
			t.Fatalf("easy witness %d differs", i)
		}
	}
	if c, exact := got.WitnessCount(); !exact || c.Int64() != int64(len(su.easy)) {
		t.Fatalf("WitnessCount = %v exact=%v, want %d exact", c, exact, len(su.easy))
	}
	want := sampleStream(t, su, 7, 5)
	have := sampleStream(t, got, 7, 5)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("round %d: decoded setup sampled %q, want %q", i, have[i], want[i])
		}
	}
	if blob2 := encode(t, got); !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoded blob differs from original")
	}
}

func TestSetupCodecUnsat(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1)
	f.AddClause(-1)
	su := buildSetup(t, f)
	got, err := DecodeSetup(encode(t, su), Options{Epsilon: 6})
	if err != nil {
		t.Fatalf("DecodeSetup: %v", err)
	}
	var st Stats
	if _, err := got.SampleRound(got.NewSession(), randx.New(1), &st); !errors.Is(err, ErrUnsat) {
		t.Fatalf("sampling decoded UNSAT setup: %v, want ErrUnsat", err)
	}
}

func TestSetupCodecRejectsCorruption(t *testing.T) {
	blob := encode(t, buildSetup(t, hashingFormula()))

	// Every single-byte flip must be rejected (CRC or structure), and
	// must never panic.
	for i := 0; i < len(blob); i++ {
		mut := bytes.Clone(blob)
		mut[i] ^= 0x40
		if _, err := DecodeSetup(mut, Options{}); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}

	// Every truncation must be rejected.
	for n := 0; n < len(blob); n++ {
		if _, err := DecodeSetup(blob[:n], Options{}); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		if err := VerifySetupFrame(blob[:n]); err == nil {
			t.Fatalf("VerifySetupFrame accepted truncation to %d bytes", n)
		}
	}

	// Trailing garbage breaks the exact-length contract.
	if _, err := DecodeSetup(append(bytes.Clone(blob), 0), Options{}); err == nil {
		t.Fatal("trailing byte accepted")
	}

	// A frame from a future codec version is a version-skew miss even
	// with a recomputed checksum.
	skew := bytes.Clone(blob)
	skew[4] = 0xFF
	body := len(skew) - 4
	patchCRC(skew, body)
	if err := VerifySetupFrame(skew); !errors.Is(err, ErrCodec) {
		t.Fatalf("version skew: %v, want ErrCodec", err)
	}

	// Epsilon mismatch: a blob prepared for ε=6 cannot answer ε=7.
	if _, err := DecodeSetup(blob, Options{Epsilon: 7}); !errors.Is(err, ErrCodec) {
		t.Fatalf("epsilon mismatch: %v, want ErrCodec", err)
	}
}

func TestEncodedFingerprint(t *testing.T) {
	f := hashingFormula()
	blob := encode(t, buildSetup(t, f))
	fp, err := EncodedFingerprint(blob)
	if err != nil {
		t.Fatalf("EncodedFingerprint: %v", err)
	}
	if want := cnf.Fingerprint(f); fp != want {
		t.Fatalf("fingerprint %x, want %x", fp, want)
	}
	if _, err := EncodedFingerprint(blob[:8]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func boolsToBytes(a cnf.Assignment) []byte {
	out := make([]byte, len(a))
	for i, b := range a {
		if b {
			out[i] = 1
		}
	}
	return out
}

// patchCRC recomputes the trailer checksum over data[:body].
func patchCRC(data []byte, body int) {
	crc := crc32.Checksum(data[:body], crcTable)
	binary.LittleEndian.PutUint32(data[body:], crc)
}
