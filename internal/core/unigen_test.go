package core

import (
	"errors"
	"math"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

func TestComputeKappaPivotRejectsSmallEpsilon(t *testing.T) {
	for _, eps := range []float64{0, 1, 1.70, 1.71, -3} {
		if _, err := ComputeKappaPivot(eps); err == nil {
			t.Errorf("epsilon %v accepted", eps)
		}
	}
}

func TestComputeKappaPivotInvertsEpsilon(t *testing.T) {
	for _, eps := range []float64{1.72, 2, 3, 6, 10, 100} {
		kp, err := ComputeKappaPivot(eps)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if kp.Kappa < 0 || kp.Kappa >= 1 {
			t.Fatalf("eps=%v: kappa=%v out of [0,1)", eps, kp.Kappa)
		}
		if got := epsilonOf(kp.Kappa); math.Abs(got-eps) > 1e-6 {
			t.Fatalf("eps=%v: epsilonOf(kappa)=%v", eps, got)
		}
	}
}

func TestPivotAtLeast17(t *testing.T) {
	// Appendix: "The expression used for computing pivot ... ensures
	// that pivot ≥ 17."
	for _, eps := range []float64{1.72, 2, 3, 6, 20, 1000} {
		kp, err := ComputeKappaPivot(eps)
		if err != nil {
			t.Fatal(err)
		}
		if kp.Pivot < 17 {
			t.Fatalf("eps=%v: pivot=%d < 17", eps, kp.Pivot)
		}
	}
}

func TestThresholdOrdering(t *testing.T) {
	for _, eps := range []float64{1.8, 3, 6, 12} {
		kp, err := ComputeKappaPivot(eps)
		if err != nil {
			t.Fatal(err)
		}
		if !(kp.LoThresh < float64(kp.Pivot)) || !(float64(kp.Pivot) < float64(kp.HiThresh)) {
			t.Fatalf("eps=%v: want loThresh < pivot < hiThresh, got %v < %d < %d",
				eps, kp.LoThresh, kp.Pivot, kp.HiThresh)
		}
	}
}

func TestHiThreshGrowsAsEpsilonShrinks(t *testing.T) {
	// §4 "Trading scalability with uniformity": smaller ε ⇒ larger
	// hiThresh ⇒ more BSAT work per call.
	kpTight, _ := ComputeKappaPivot(1.8)
	kpLoose, _ := ComputeKappaPivot(12)
	if kpTight.HiThresh <= kpLoose.HiThresh {
		t.Fatalf("hiThresh(1.8)=%d should exceed hiThresh(12)=%d",
			kpTight.HiThresh, kpLoose.HiThresh)
	}
}

func TestSamplerRejectsBadEpsilon(t *testing.T) {
	f := cnf.New(2)
	if _, err := NewSampler(f, randx.New(1), Options{Epsilon: 1.0}); err == nil {
		t.Fatal("epsilon 1.0 accepted")
	}
}

func TestSamplerEasyCase(t *testing.T) {
	// 3 witnesses ≤ hiThresh: easy path, uniform by construction.
	f := cnf.New(2)
	f.AddClause(1, 2)
	rng := randx.New(2)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !smp.Stats().EasyCase {
		t.Fatal("expected easy case")
	}
	counts := map[string]int{}
	vars := f.SamplingVars()
	const n = 3000
	for i := 0; i < n; i++ {
		w, err := smp.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Satisfies(f) {
			t.Fatal("invalid witness")
		}
		counts[w.Project(vars)]++
	}
	if len(counts) != 3 {
		t.Fatalf("saw %d distinct witnesses, want 3", len(counts))
	}
	for k, c := range counts {
		if math.Abs(float64(c)-n/3.0) > 6*math.Sqrt(n/3.0) {
			t.Fatalf("witness %x count %d far from %d", k, c, n/3)
		}
	}
}

func TestSamplerUnsat(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(1)
	f.AddClause(-1)
	rng := randx.New(3)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smp.Sample(rng); err == nil {
		t.Fatal("sampling an unsat formula succeeded")
	}
}

// hardFormula builds a formula whose witness count (1024 over the
// sampling set) exceeds hiThresh at ε=6, forcing the hashing path.
func hardFormula() *cnf.Formula {
	f := cnf.New(12)
	f.AddClause(11, 12)
	f.SamplingSet = []cnf.Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	return f
}

func TestSamplerHashingPath(t *testing.T) {
	f := hardFormula()
	rng := randx.New(4)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6, ApproxMCRounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	if smp.Stats().EasyCase {
		t.Fatal("expected hashing path")
	}
	if smp.setup.q < 1 {
		t.Fatalf("q = %d", smp.setup.q)
	}
	got := 0
	for i := 0; i < 50; i++ {
		w, err := smp.Sample(rng)
		if errors.Is(err, ErrFailed) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !w.Satisfies(f) {
			t.Fatal("invalid witness")
		}
		got++
	}
	if got == 0 {
		t.Fatal("no successful samples in 50 rounds")
	}
	// Theorem 1: success probability ≥ 0.62. With 50 rounds the
	// empirical rate should comfortably exceed 0.4.
	if p := smp.Stats().SuccessProb(); p < 0.4 {
		t.Fatalf("success probability %.2f implausibly low", p)
	}
}

// TestTheorem1Bounds empirically validates the almost-uniformity
// guarantee on a small instance: each witness frequency must lie within
// the (1+ε) band around 1/(|R_F|−1), with generous statistical slack.
func TestTheorem1Bounds(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	f := hardFormula() // |R_F↓S| = 1024
	rng := randx.New(5)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6, ApproxMCRounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6000
	counts := map[string]int{}
	vars := f.SamplingSet
	ws, _, err := smp.SampleMany(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		counts[w.Project(vars)]++
	}
	R := 1024.0
	eps := 6.0
	// Expected per-witness probability bounds from Theorem 1.
	loP := 1 / ((1 + eps) * (R - 1))
	hiP := (1 + eps) / (R - 1)
	// Allow 5-sigma binomial slack on top.
	for k, c := range counts {
		p := float64(c) / n
		sigma := math.Sqrt(hiP * (1 - hiP) / n)
		if p > hiP+5*sigma {
			t.Fatalf("witness %x frequency %.5f exceeds upper bound %.5f", k, p, hiP)
		}
		_ = loP // low side unverifiable per-witness at this sample size
	}
	// Aggregate check: no witness should dominate; the max/min observed
	// ratio bounded loosely.
	if len(counts) < 500 {
		t.Fatalf("only %d distinct witnesses in %d samples; distribution too skewed", len(counts), n)
	}
}

// TestUniformityTVD compares UniGen's output distribution to uniform by
// total-variation distance on a small witness space.
func TestUniformityTVD(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// 64 witnesses on sampling set of 6 free vars.
	f := cnf.New(8)
	f.AddClause(7, 8)
	f.SamplingSet = []cnf.Var{1, 2, 3, 4, 5, 6}
	rng := randx.New(6)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6, ApproxMCRounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8000
	ws, _, err := smp.SampleMany(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, w := range ws {
		counts[w.Project(f.SamplingSet)]++
	}
	if len(counts) != 64 {
		t.Fatalf("saw %d distinct witnesses, want 64", len(counts))
	}
	tvd := 0.0
	for _, c := range counts {
		tvd += math.Abs(float64(c)/n - 1.0/64)
	}
	tvd /= 2
	// Pure sampling noise at n=8000, 64 cells gives TVD ≈ 0.022.
	// UniGen should stay close to that; 0.15 would indicate real skew
	// (a (1+ε)=7-factor skew concentrated on half the space gives ~0.37).
	if tvd > 0.15 {
		t.Fatalf("TVD from uniform = %.3f, want < 0.15", tvd)
	}
}

// TestLemma2SamplingSetEquivalence: hashing on an independent support S
// must produce the same witness distribution as hashing on the full
// support X (Lemma 2). We compare empirical distributions.
func TestLemma2SamplingSetEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// x7 = x1⊕x2, x8 = x1∧x3 (Tseitin-style dependent vars);
	// S = {1..6} independent support, X = all 8.
	f := cnf.New(8)
	f.AddXOR([]cnf.Var{7, 1, 2}, false) // x7 ⊕ x1 ⊕ x2 = 0
	// x8 <-> x1∧x3.
	f.AddClause(-8, 1)
	f.AddClause(-8, 3)
	f.AddClause(8, -1, -3)
	S := []cnf.Var{1, 2, 3, 4, 5, 6}

	sample := func(seed uint64, sset []cnf.Var) map[string]int {
		rng := randx.New(seed)
		g := f.Clone()
		g.SamplingSet = sset
		smp, err := NewSampler(g, rng, Options{Epsilon: 6, ApproxMCRounds: 15})
		if err != nil {
			t.Fatal(err)
		}
		ws, _, err := smp.SampleMany(rng, 4000)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, w := range ws {
			counts[w.Project(S)]++ // compare projections on S in both runs
		}
		return counts
	}
	cS := sample(7, S)
	cX := sample(8, nil) // full support
	if len(cS) != 64 || len(cX) != 64 {
		t.Fatalf("distinct witnesses: S=%d X=%d, want 64", len(cS), len(cX))
	}
	tvd := 0.0
	for k, a := range cS {
		tvd += math.Abs(float64(a)-float64(cX[k])) / 4000
	}
	tvd /= 2
	if tvd > 0.2 {
		t.Fatalf("TVD between S-hashed and X-hashed distributions = %.3f", tvd)
	}
}

func TestSampleManyCountsAttempts(t *testing.T) {
	f := hardFormula()
	rng := randx.New(9)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6, ApproxMCRounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	ws, attempts, err := smp.SampleMany(rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 10 || attempts < 10 {
		t.Fatalf("ws=%d attempts=%d", len(ws), attempts)
	}
}

func TestXORLengthUsesSamplingSetOnly(t *testing.T) {
	// §4/E6: average XOR length must be ≈|S|/2, not |X|/2.
	f := hardFormula() // |S|=10, |X|=12
	rng := randx.New(10)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6, ApproxMCRounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := smp.SampleMany(rng, 20); err != nil {
		t.Fatal(err)
	}
	avg := smp.Stats().AvgXORLen()
	if avg <= 0 || avg > 7 { // |S|/2 = 5; |X|/2 = 6 would also pass, but 10/2+2σ < 7
		t.Fatalf("avg xor len = %.2f, want ≈ 5", avg)
	}
	// Every XOR row must only mention sampling vars — verified
	// indirectly: a row mentioning vars 11/12 would make avg larger and,
	// more importantly, hashfam.Draw only sees smp.s.
	for _, v := range smp.SamplingSet() {
		if v > 10 {
			t.Fatalf("sampling set contains dependent var %d", v)
		}
	}
}

func TestBudgetPropagation(t *testing.T) {
	// With an absurdly small conflict budget on a hard formula, setup or
	// sampling must surface ErrBudget (not hang or mislabel).
	rng := randx.New(11)
	n := 40
	f := cnf.New(n)
	r2 := randx.New(12)
	for i := 0; i < 160; i++ {
		c := make(cnf.Clause, 0, 3)
		for j := 0; j < 3; j++ {
			c = append(c, cnf.MkLit(cnf.Var(r2.Intn(n)+1), r2.Bool()))
		}
		f.AddClauseLits(c)
	}
	_, err := NewSampler(f, rng, Options{Epsilon: 6, Solver: sat.Config{MaxConflicts: 1}, ApproxMCRounds: 2})
	// Either the formula is easy enough to finish within budget (fine)
	// or we get a budget error; both acceptable, crashes are not.
	if err != nil && !errors.Is(err, ErrBudget) {
		// ApproxMC wraps its own budget error; accept any error that
		// mentions budget exhaustion.
		t.Logf("setup error (accepted): %v", err)
	}
}
