package core

import (
	"errors"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

func TestSampleBatchEasyCase(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1, 2) // 3 witnesses
	rng := randx.New(81)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := smp.SampleBatch(rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 { // capped at |R_F|
		t.Fatalf("batch = %d, want 3", len(ws))
	}
	seen := map[string]bool{}
	vars := f.SamplingVars()
	for _, w := range ws {
		if !w.Satisfies(f) {
			t.Fatal("invalid witness")
		}
		k := w.Project(vars)
		if seen[k] {
			t.Fatal("duplicate in batch")
		}
		seen[k] = true
	}
}

func TestSampleBatchHashingPath(t *testing.T) {
	f := hardFormula()
	rng := randx.New(82)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6, ApproxMCRounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	var got []cnf.Assignment
	for try := 0; try < 20 && got == nil; try++ {
		ws, err := smp.SampleBatch(rng, 8)
		if errors.Is(err, ErrFailed) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got = ws
	}
	if len(got) != 8 {
		t.Fatalf("batch = %d, want 8", len(got))
	}
	seen := map[string]bool{}
	for _, w := range got {
		if !w.Satisfies(f) {
			t.Fatal("invalid witness")
		}
		k := w.Project(f.SamplingSet)
		if seen[k] {
			t.Fatal("duplicate in batch")
		}
		seen[k] = true
	}
}

func TestSampleBatchRejectsBadK(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(1)
	rng := randx.New(83)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smp.SampleBatch(rng, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSampleBatchUnsat(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(1)
	f.AddClause(-1)
	rng := randx.New(84)
	smp, err := NewSampler(f, rng, Options{Epsilon: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smp.SampleBatch(rng, 4); err == nil {
		t.Fatal("unsat batch accepted")
	}
}
