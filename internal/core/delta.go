package core

import (
	"fmt"
	"math"
	"sort"

	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/counter"
	"unigen/internal/randx"
)

// This file implements the conditioned-counting story behind delta
// requests (DESIGN §13): given a prepared base Setup for F and a small
// set of assumption literals A, derive a full-fidelity Setup for F ∧ A
// without re-ingesting the formula — the enumeration and ApproxMC
// estimate run on a pooled session carrying A as standing assumptions.
//
// Soundness rule: the conditioned setup runs the *same* algorithm, with
// the same parameters (ε' = 0.8, δ' = 0.2) and an RNG seeded from the
// conjoined formula's fingerprint, as a cold NewSetup over F ∧ A would.
// Because every BSAT cell probe is an exact bounded enumeration, its
// outcome is independent of the session's accumulated solver state, so
// the conditioned estimate — and therefore q, the hash widths, and the
// sampled witnesses' sampling-set projections — is bit-identical to the
// cold path. The pivot/κ thresholds derive from ε alone and carry over
// unchanged.

// NormalizeAssumptions sorts assumption literals by variable (negative
// phase first) and removes exact duplicates, yielding the canonical
// form delta cache keys and session assumptions use. Contradictory
// pairs (v and ¬v) are preserved: the conditioned formula is simply
// unsatisfiable, exactly as the conjoined formula with both unit
// clauses would be.
func NormalizeAssumptions(lits []cnf.Lit) []cnf.Lit {
	out := append([]cnf.Lit(nil), lits...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var() != out[j].Var() {
			return out[i].Var() < out[j].Var()
		}
		return out[i].Neg() && !out[j].Neg()
	})
	w := 0
	for i, l := range out {
		if i == 0 || l != out[i-1] {
			out[w] = l
			w++
		}
	}
	return out[:w]
}

// Conjoin returns a private clone of the setup's formula with each
// assumption literal added as a unit clause — the formula a client
// would have posted wholesale to get the same witness distribution.
// Its fingerprint keys the delta's cache entry, so a later request
// posting the conjoined DIMACS text hits the same prepared state.
func (su *Setup) Conjoin(assumps []cnf.Lit) (*cnf.Formula, error) {
	g := su.f.Clone()
	for _, l := range assumps {
		v := int(l.Var())
		if v < 1 || v > su.f.NumVars {
			return nil, fmt.Errorf("unigen: assumption literal %d out of range (formula has %d vars)", l.DIMACS(), su.f.NumVars)
		}
		g.AddClause(l.DIMACS())
	}
	return g, nil
}

// NumVars returns the variable count of the setup's formula.
func (su *Setup) NumVars() int { return su.f.NumVars }

// Easy reports whether the setup holds the exact witness list (lines
// 5–7 of Algorithm 1) instead of an estimate.
func (su *Setup) Easy() bool { return su.easySet }

// Q returns the candidate-range endpoint q (line 10); zero in the easy
// case, where no hashing happens.
func (su *Setup) Q() int { return su.q }

// SetupWith runs the once-per-formula phase of UniGen for F ∧ A on an
// existing session that already carries A as standing assumptions
// (bsat.Session.SetAssumptions), returning a Setup over the conjoined
// formula conj (as built by Conjoin). The caller owns the session's
// lifecycle — assumptions are neither installed nor cleared here — and
// supplies the RNG, which must be seeded from the conjoined formula's
// fingerprint for the cold-path identity to hold.
//
// The base setup contributes κ/pivot (functions of ε only) and its
// options; the enumeration and, when the conditioned space is still
// above hiThresh, the ApproxMC estimate are recomputed under the
// assumptions. A base in the easy case always yields an easy
// conditioned setup (R_{F∧A} ⊆ R_F).
func (su *Setup) SetupWith(sess *bsat.Session, conj *cnf.Formula, rng *randx.RNG) (*Setup, error) {
	opts := su.opts
	// The base options may carry the base prepare-flight's interrupt
	// flag; sessions built later over the conditioned setup must not
	// share it.
	opts.Solver.Interrupt = nil
	cond := &Setup{f: conj, s: su.s, kp: su.kp, opts: opts}

	// Lines 4–7 under assumptions: if F ∧ A has at most hiThresh
	// witnesses, enumerate them once and sample by index forever after.
	// The stored base easy list cannot be filtered instead: its
	// representatives are arbitrary on non-sampling variables, so a
	// representative violating A does not mean the projected witness
	// does.
	res := sess.Enumerate(su.kp.HiThresh+1, nil)
	if res.BudgetExceeded {
		return nil, fmt.Errorf("%w (conditioned easy-case enumeration)", ErrBudget)
	}
	cond.base.BSATCalls++
	cond.base.addSolverStats(res.Stats)
	if len(res.Witnesses) <= su.kp.HiThresh {
		cond.easy = res.Witnesses
		sortWitnesses(cond.easy, cond.s)
		cond.easySet = true
		cond.base.EasyCase = true
		return cond, nil
	}

	// Line 9 under assumptions: C ← ApproxMC(F ∧ A, 0.8, 0.8-confidence)
	// on the pooled session — same parameters, same RNG consumption, and
	// exact cell probes, hence the same estimate as a cold run.
	amc, err := counter.ApproxMCSession(sess, rng, counter.ApproxMCOptions{
		Epsilon:       0.8,
		Delta:         0.2,
		SamplingSet:   su.s,
		Solver:        opts.Solver,
		MaxHashRounds: opts.ApproxMCRounds,
	})
	if err != nil {
		return nil, fmt.Errorf("unigen: conditioned ApproxMC: %w", err)
	}
	cond.est = amc.Count
	cond.base.SetupRounds = amc.Rounds

	// Line 10, conditioned: q′ ← ⌈log₂ C′ + log₂ 1.8 − log₂ pivot⌉.
	logC := bigLog2(amc.Count)
	q := int(math.Ceil(logC + math.Log2(1.8) - math.Log2(float64(su.kp.Pivot))))
	if q < 1 {
		q = 1
	}
	if q > len(cond.s) {
		q = len(cond.s)
	}
	cond.q = q
	cond.base.Q = q
	return cond, nil
}

// DivergedFrom reports whether the conditioned setup's count moved so
// far from the base's that serving it through the base's session pool
// stops paying: both in the hashing regime with hash widths more than
// window apart. This is purely an affinity policy — the conditioned
// setup is full-fidelity either way — so diverged deltas get promoted
// to first-class prepared entries with their own sessions. Transitions
// into the easy case never diverge: easy serving does no solver work at
// all.
func (cond *Setup) DivergedFrom(base *Setup, window int) bool {
	if cond.easySet || base.easySet {
		return false
	}
	d := cond.q - base.q
	if d < 0 {
		d = -d
	}
	return d > window
}
