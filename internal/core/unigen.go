package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/counter"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// ErrFailed is returned by Sample when UniGen reports ⊥: no cell in the
// candidate range {q−3..q} had between loThresh and hiThresh witnesses.
// Theorem 1 bounds the probability of this outcome by 0.38.
var ErrFailed = errors.New("unigen: sampling round failed (⊥)")

// ErrBudget is returned when BSAT repeatedly exhausted its conflict
// budget — the analogue of the paper's 20-hour overall timeout firing.
var ErrBudget = errors.New("unigen: BSAT conflict budget exhausted")

// Options configures a Sampler.
type Options struct {
	// Epsilon is the uniformity tolerance; must exceed 1.71. The
	// DAC'14 experiments use ε = 6.
	Epsilon float64
	// SamplingSet is the set S of sampling variables, intended to be an
	// independent support of the formula. Empty falls back to the
	// formula's own sampling set, then to all variables.
	SamplingSet []cnf.Var
	// Solver configures every BSAT call (conflict budgets stand in for
	// the paper's 2500 s per-call timeout).
	Solver sat.Config
	// MaxRetries bounds how many times lines 14–16 are re-executed for
	// the same i after a BSAT budget exhaustion, mirroring the §5
	// protocol ("we repeated the execution of lines 14–16 without
	// incrementing i"). Default 10.
	MaxRetries int
	// ApproxMCRounds overrides the δ-derived iteration count of the
	// setup-time ApproxMC call when > 0 (benchmark knob; 0 keeps the
	// paper's parameters ε'=0.8, δ'=0.2).
	ApproxMCRounds int
}

// Stats accumulates observable behaviour of a Sampler, feeding the
// Table 1/Table 2 columns.
type Stats struct {
	Samples     int64 // successful samples
	Failures    int64 // ⊥ outcomes
	BSATCalls   int64
	XORRows     int64   // total xor clauses issued
	XORLenSum   float64 // total literals across xor clauses
	SetupRounds int     // ApproxMC rounds during setup
	EasyCase    bool    // |R_F| ≤ hiThresh: sampling needs no hashing
	Q           int     // the q of line 10
}

// AvgXORLen returns the mean XOR-clause length, the "Avg XOR len"
// column of Tables 1 and 2.
func (st Stats) AvgXORLen() float64 {
	if st.XORRows == 0 {
		return 0
	}
	return st.XORLenSum / float64(st.XORRows)
}

// SuccessProb returns the observed success probability, the "Succ Prob"
// column of Tables 1 and 2.
func (st Stats) SuccessProb() float64 {
	tot := st.Samples + st.Failures
	if tot == 0 {
		return 0
	}
	return float64(st.Samples) / float64(tot)
}

// Sampler is the amortized UniGen state for one formula: the outcome of
// lines 1–11 of Algorithm 1. Each Sample call executes lines 12–22.
type Sampler struct {
	f    *cnf.Formula
	s    []cnf.Var
	kp   KappaPivot
	opts Options

	// sess is the incremental BSAT engine shared by the easy-case
	// enumeration and every Sample/SampleBatch round: the formula is
	// loaded into the solver once per Sampler, and hash rows/blocking
	// clauses come and go as removable constraints.
	sess *bsat.Session

	easy    []cnf.Assignment // all witnesses when |R_F| ≤ hiThresh (lines 5–7)
	easySet bool             // true when `easy` is authoritative (incl. UNSAT)
	q       int              // line 10
	est     *big.Int         // ApproxMC estimate C

	stats Stats
}

// NewSampler runs the once-per-formula phase of UniGen: compute κ and
// pivot (line 1), thresholds (lines 2–3), the easy-case enumeration
// (lines 4–7), and otherwise the ApproxMC estimate and the candidate
// range endpoint q (lines 9–10).
func NewSampler(f *cnf.Formula, rng *randx.RNG, opts Options) (*Sampler, error) {
	kp, err := ComputeKappaPivot(opts.Epsilon)
	if err != nil {
		return nil, err
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 10
	}
	s := opts.SamplingSet
	if len(s) == 0 {
		s = f.SamplingVars()
	}
	smp := &Sampler{f: f, s: s, kp: kp, opts: opts}
	smp.sess = bsat.NewSession(f, bsat.Options{SamplingSet: s, Solver: opts.Solver})

	// Lines 4–7: if F has at most hiThresh witnesses, enumerate them
	// once and sample by index forever after.
	res := smp.sess.Enumerate(kp.HiThresh+1, nil)
	if res.BudgetExceeded {
		return nil, fmt.Errorf("%w (easy-case enumeration)", ErrBudget)
	}
	smp.stats.BSATCalls++
	if len(res.Witnesses) <= kp.HiThresh {
		smp.easy = res.Witnesses
		smp.easySet = true
		smp.stats.EasyCase = true
		return smp, nil
	}

	// Line 9: C ← ApproxMC(F, 0.8, 0.8-confidence).
	amc, err := counter.ApproxMC(f, rng, counter.ApproxMCOptions{
		Epsilon:       0.8,
		Delta:         0.2,
		SamplingSet:   s,
		Solver:        opts.Solver,
		MaxHashRounds: opts.ApproxMCRounds,
	})
	if err != nil {
		return nil, fmt.Errorf("unigen: setup ApproxMC: %w", err)
	}
	smp.est = amc.Count
	smp.stats.SetupRounds = amc.Rounds

	// Line 10: q ← ⌈log₂ C + log₂ 1.8 − log₂ pivot⌉.
	logC := bigLog2(amc.Count)
	q := int(math.Ceil(logC + math.Log2(1.8) - math.Log2(float64(kp.Pivot))))
	if q < 1 {
		q = 1
	}
	if q > len(s) {
		q = len(s)
	}
	smp.q = q
	smp.stats.Q = q
	return smp, nil
}

// bigLog2 approximates log₂(x) for a positive big integer.
func bigLog2(x *big.Int) float64 {
	if x.Sign() <= 0 {
		return 0
	}
	bits := x.BitLen()
	if bits <= 53 {
		return math.Log2(float64(x.Int64()))
	}
	// Take the top 53 bits for the mantissa.
	mant := new(big.Int).Rsh(x, uint(bits-53))
	return math.Log2(float64(mant.Int64())) + float64(bits-53)
}

// Stats returns a snapshot of the sampler's counters.
func (smp *Sampler) Stats() Stats { return smp.stats }

// KappaPivot exposes the derived parameters (used by benchmarks and the
// experiment harness).
func (smp *Sampler) KappaPivot() KappaPivot { return smp.kp }

// EstimatedCount returns the setup-time ApproxMC estimate (nil in the
// easy case, where the exact witness list is held instead).
func (smp *Sampler) EstimatedCount() *big.Int {
	if smp.est == nil {
		return nil
	}
	return new(big.Int).Set(smp.est)
}

// SamplingSet returns the sampling variables in use.
func (smp *Sampler) SamplingSet() []cnf.Var {
	return append([]cnf.Var(nil), smp.s...)
}

// Sample executes lines 12–22 of Algorithm 1: walk i over {q−3..q},
// partition R_F with a fresh hash from H_xor(|S|, i, 3), and return a
// uniformly chosen witness of the first cell whose size lands within
// [loThresh, hiThresh]. It returns ErrFailed for the ⊥ outcome.
func (smp *Sampler) Sample(rng *randx.RNG) (cnf.Assignment, error) {
	if smp.easySet {
		// Lines 5–7: uniform choice among all witnesses.
		if len(smp.easy) == 0 {
			return nil, errors.New("unigen: formula is unsatisfiable")
		}
		smp.stats.Samples++
		return smp.easy[rng.Intn(len(smp.easy))], nil
	}
	kp := smp.kp
	for i := smp.q - 3; i <= smp.q; i++ {
		m := i
		if m < 1 {
			m = 1
		}
		var res bsat.Result
		ok := false
		for retry := 0; retry < smp.opts.MaxRetries; retry++ {
			// Lines 14–15: random h and α (α is folded into the XOR
			// right-hand sides by hashfam).
			h := hashfam.Draw(rng, smp.s, m)
			smp.stats.XORRows += int64(h.M())
			smp.stats.XORLenSum += h.AverageLen() * float64(h.M())
			// Line 16, on the shared incremental session.
			res = smp.sess.Enumerate(kp.HiThresh+1, h)
			smp.stats.BSATCalls++
			if !res.BudgetExceeded {
				ok = true
				break
			}
			// §5 protocol: on timeout, redo lines 14–16 with the same i.
		}
		if !ok {
			return nil, ErrBudget
		}
		n := len(res.Witnesses)
		if float64(n) >= kp.LoThresh && n <= kp.HiThresh {
			// Lines 21–22.
			smp.stats.Samples++
			return res.Witnesses[rng.Intn(n)], nil
		}
	}
	// Lines 18–19.
	smp.stats.Failures++
	return nil, ErrFailed
}

// SampleBatch draws up to k witnesses from a single accepted cell,
// without replacement — the optimization introduced by UniGen's
// successor (UniGen2): one hashing round then amortizes over k
// returned samples. Witnesses within a batch are NOT independent (they
// are distinct by construction); use Sample for the DAC'14 guarantee.
// It returns ErrFailed for a ⊥ round, like Sample.
func (smp *Sampler) SampleBatch(rng *randx.RNG, k int) ([]cnf.Assignment, error) {
	if k <= 0 {
		return nil, errors.New("unigen: batch size must be positive")
	}
	if smp.easySet {
		if len(smp.easy) == 0 {
			return nil, errors.New("unigen: formula is unsatisfiable")
		}
		out := make([]cnf.Assignment, 0, k)
		for _, idx := range rng.Perm(len(smp.easy)) {
			if len(out) == k {
				break
			}
			out = append(out, smp.easy[idx])
		}
		smp.stats.Samples += int64(len(out))
		return out, nil
	}
	kp := smp.kp
	for i := smp.q - 3; i <= smp.q; i++ {
		m := i
		if m < 1 {
			m = 1
		}
		h := hashfam.Draw(rng, smp.s, m)
		smp.stats.XORRows += int64(h.M())
		smp.stats.XORLenSum += h.AverageLen() * float64(h.M())
		res := smp.sess.Enumerate(kp.HiThresh+1, h)
		smp.stats.BSATCalls++
		if res.BudgetExceeded {
			return nil, ErrBudget
		}
		n := len(res.Witnesses)
		if float64(n) >= kp.LoThresh && n <= kp.HiThresh {
			out := make([]cnf.Assignment, 0, k)
			for _, idx := range rng.Perm(n) {
				if len(out) == k {
					break
				}
				out = append(out, res.Witnesses[idx])
			}
			smp.stats.Samples += int64(len(out))
			return out, nil
		}
	}
	smp.stats.Failures++
	return nil, ErrFailed
}

// SampleMany draws n witnesses, skipping ⊥ rounds, and reports how many
// rounds were attempted in total. It stops early only on hard errors.
func (smp *Sampler) SampleMany(rng *randx.RNG, n int) (witnesses []cnf.Assignment, attempts int, err error) {
	for len(witnesses) < n {
		attempts++
		w, serr := smp.Sample(rng)
		switch {
		case serr == nil:
			witnesses = append(witnesses, w)
		case errors.Is(serr, ErrFailed):
			// ⊥: retry with fresh randomness (the CRV use case simply
			// asks again).
		default:
			return witnesses, attempts, serr
		}
	}
	return witnesses, attempts, nil
}
