package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"

	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/counter"
	"unigen/internal/faultpoint"
	"unigen/internal/hashfam"
	"unigen/internal/obs"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// ErrFailed is returned by Sample when UniGen reports ⊥: no cell in the
// candidate range {q−3..q} had between loThresh and hiThresh witnesses.
// Theorem 1 bounds the probability of this outcome by 0.38.
var ErrFailed = errors.New("unigen: sampling round failed (⊥)")

// ErrBudget is returned when BSAT repeatedly exhausted its conflict
// budget — the analogue of the paper's 20-hour overall timeout firing.
var ErrBudget = errors.New("unigen: BSAT conflict budget exhausted")

// ErrUnsat is returned when sampling a formula that has no witnesses
// (the setup enumerates such formulas exactly, so this surfaces on the
// first Sample call, not during setup).
var ErrUnsat = errors.New("unigen: formula is unsatisfiable")

// Options configures a Sampler.
type Options struct {
	// Epsilon is the uniformity tolerance; must exceed 1.71. The
	// DAC'14 experiments use ε = 6.
	Epsilon float64
	// SamplingSet is the set S of sampling variables, intended to be an
	// independent support of the formula. Empty falls back to the
	// formula's own sampling set, then to all variables.
	SamplingSet []cnf.Var
	// Solver configures every BSAT call (conflict budgets stand in for
	// the paper's 2500 s per-call timeout).
	Solver sat.Config
	// MaxRetries bounds how many times lines 14–16 are re-executed for
	// the same i after a BSAT budget exhaustion, mirroring the §5
	// protocol ("we repeated the execution of lines 14–16 without
	// incrementing i"). Default 10.
	MaxRetries int
	// ApproxMCRounds overrides the δ-derived iteration count of the
	// setup-time ApproxMC call when > 0 (benchmark knob; 0 keeps the
	// paper's parameters ε'=0.8, δ'=0.2).
	ApproxMCRounds int
}

// Stats accumulates observable behaviour of a Sampler, feeding the
// Table 1/Table 2 columns. Stats values are plain data: each worker of
// a parallel run accumulates its own and the results are combined with
// Merge, so the hot path carries no shared mutable counters.
type Stats struct {
	Samples   int64 // successful samples
	Failures  int64 // ⊥ outcomes
	BSATCalls int64
	XORRows   int64 // total xor clauses issued
	XORLenSum int64 // total variables across xor clauses (exact popcount total)
	// Conflicts counts solver conflicts across this run's BSAT calls —
	// the per-request solver-work attribution the service's /stats and
	// /metrics totals aggregate (DESIGN §10). Like Propagations below
	// it describes the executing sessions, not round properties, so it
	// is excluded from the parallel stats-determinism contract.
	Conflicts int64
	// Propagations counts solver propagations across this run's BSAT
	// calls. Unlike every other counter it is a machine diagnostic, not
	// a round property: it depends on the executing session's
	// accumulated solver state (learned clauses, phase saving), so it is
	// excluded from the parallel engine's stats-determinism contract —
	// it may differ across worker counts while all other fields match.
	Propagations int64
	// Clause-database diagnostics, same caveat as Propagations: they
	// describe the executing sessions' solvers, not round properties.
	// Learned/Removed count clauses learned and reclaimed (reduceDB +
	// session GC); Compactions counts arena GC relocation passes;
	// ArenaBytes is a gauge — the largest clause-arena footprint any
	// contributing session reported (Merge takes the max, which keeps
	// it order-insensitive).
	Learned     int64
	Removed     int64
	Compactions int64
	ArenaBytes  int64
	// Inprocessing / modern-CDCL diagnostics (same session-state caveat
	// as Propagations): literals shed by vivification and self-subsuming
	// strengthening, learnts deleted by subsumption, level-0 probes and
	// the failed ones among them, polarity-source rotations, and
	// backjumps converted to chronological backtracks. All zero unless
	// the corresponding sat.Config knobs are enabled.
	VivifiedLits     int64
	SubsumedLearnts  int64
	ProbedLits       int64
	FailedLits       int64
	Rephases         int64
	ChronoBacktracks int64
	SetupRounds      int  // ApproxMC rounds during setup
	EasyCase         bool // |R_F| ≤ hiThresh: sampling needs no hashing
	Q                int  // the q of line 10
}

// Merge combines two stats values: counters add, EasyCase ors, and the
// setup-derived Q and the ArenaBytes gauge take the maximum (Q is zero
// in per-round deltas; ArenaBytes is a footprint, not a flow). Merge
// is commutative and associative — every field is an integer combined
// by + or max (XORLenSum is an exact popcount total, not a float), so
// a merged value is independent of merge order.
func (st Stats) Merge(o Stats) Stats {
	st.Samples += o.Samples
	st.Failures += o.Failures
	st.BSATCalls += o.BSATCalls
	st.XORRows += o.XORRows
	st.XORLenSum += o.XORLenSum
	st.Conflicts += o.Conflicts
	st.Propagations += o.Propagations
	st.Learned += o.Learned
	st.Removed += o.Removed
	st.Compactions += o.Compactions
	st.ArenaBytes = max(st.ArenaBytes, o.ArenaBytes)
	st.VivifiedLits += o.VivifiedLits
	st.SubsumedLearnts += o.SubsumedLearnts
	st.ProbedLits += o.ProbedLits
	st.FailedLits += o.FailedLits
	st.Rephases += o.Rephases
	st.ChronoBacktracks += o.ChronoBacktracks
	st.SetupRounds += o.SetupRounds
	st.EasyCase = st.EasyCase || o.EasyCase
	if o.Q > st.Q {
		st.Q = o.Q
	}
	return st
}

// addSolverStats folds one BSAT call's solver-stats delta into st.
func (st *Stats) addSolverStats(d sat.Stats) {
	st.Conflicts += d.Conflicts
	st.Propagations += d.Propagations
	st.Learned += d.Learned
	st.Removed += d.RemovedDB
	st.Compactions += d.Compactions
	st.ArenaBytes = max(st.ArenaBytes, d.ArenaBytes)
	st.VivifiedLits += d.VivifiedLits
	st.SubsumedLearnts += d.SubsumedLearnts
	st.ProbedLits += d.ProbedLits
	st.FailedLits += d.FailedLits
	st.Rephases += d.Rephases
	st.ChronoBacktracks += d.ChronoBacktracks
}

// AvgXORLen returns the mean XOR-clause length, the "Avg XOR len"
// column of Tables 1 and 2.
func (st Stats) AvgXORLen() float64 {
	if st.XORRows == 0 {
		return 0
	}
	return float64(st.XORLenSum) / float64(st.XORRows)
}

// Rounds returns the number of sampling rounds attempted (successes
// plus ⊥ outcomes).
func (st Stats) Rounds() int64 { return st.Samples + st.Failures }

// SuccessProb returns the observed success probability, the "Succ Prob"
// column of Tables 1 and 2.
func (st Stats) SuccessProb() float64 {
	tot := st.Samples + st.Failures
	if tot == 0 {
		return 0
	}
	return float64(st.Samples) / float64(tot)
}

// Setup is the outcome of lines 1–11 of Algorithm 1, the once-per-
// formula state of UniGen: κ and pivot, thresholds, the easy-case
// witness list, and otherwise the ApproxMC estimate and the candidate
// range endpoint q. A Setup is immutable after construction and safe to
// share: a parallel engine runs NewSetup once and hands the same Setup
// to every worker, each of which pairs it with its own bsat.Session and
// randx.RNG (solver sessions are not thread-safe; the Setup is).
type Setup struct {
	f    *cnf.Formula
	s    []cnf.Var
	kp   KappaPivot
	opts Options

	easy    []cnf.Assignment // all witnesses when |R_F| ≤ hiThresh (lines 5–7)
	easySet bool             // true when `easy` is authoritative (incl. UNSAT)
	q       int              // line 10
	est     *big.Int         // ApproxMC estimate C

	base Stats // setup-phase stats (SetupRounds, EasyCase, Q, setup BSAT call)

	// spare is the session the easy-case enumeration ran on; the first
	// NewSession call adopts it instead of rebuilding a solver. Handed
	// out before any worker starts, never shared after.
	spare *bsat.Session
}

// NewSetup runs the once-per-formula phase of UniGen: compute κ and
// pivot (line 1), thresholds (lines 2–3), the easy-case enumeration
// (lines 4–7), and otherwise the ApproxMC estimate and the candidate
// range endpoint q (lines 9–10).
func NewSetup(f *cnf.Formula, rng *randx.RNG, opts Options) (*Setup, error) {
	kp, err := ComputeKappaPivot(opts.Epsilon)
	if err != nil {
		return nil, err
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 10
	}
	s := opts.SamplingSet
	if len(s) == 0 {
		s = f.SamplingVars()
	}
	su := &Setup{f: f, s: s, kp: kp, opts: opts}
	su.spare = bsat.NewSession(f, bsat.Options{SamplingSet: s, Solver: opts.Solver})

	// Lines 4–7: if F has at most hiThresh witnesses, enumerate them
	// once and sample by index forever after.
	res := su.spare.Enumerate(kp.HiThresh+1, nil)
	if res.BudgetExceeded {
		return nil, fmt.Errorf("%w (easy-case enumeration)", ErrBudget)
	}
	su.base.BSATCalls++
	su.base.addSolverStats(res.Stats)
	if len(res.Witnesses) <= kp.HiThresh {
		su.easy = res.Witnesses
		sortWitnesses(su.easy, su.s)
		su.easySet = true
		su.base.EasyCase = true
		return su, nil
	}

	// Line 9: C ← ApproxMC(F, 0.8, 0.8-confidence).
	amc, err := counter.ApproxMC(f, rng, counter.ApproxMCOptions{
		Epsilon:       0.8,
		Delta:         0.2,
		SamplingSet:   s,
		Solver:        opts.Solver,
		MaxHashRounds: opts.ApproxMCRounds,
	})
	if err != nil {
		return nil, fmt.Errorf("unigen: setup ApproxMC: %w", err)
	}
	su.est = amc.Count
	su.base.SetupRounds = amc.Rounds

	// Line 10: q ← ⌈log₂ C + log₂ 1.8 − log₂ pivot⌉.
	logC := bigLog2(amc.Count)
	q := int(math.Ceil(logC + math.Log2(1.8) - math.Log2(float64(kp.Pivot))))
	if q < 1 {
		q = 1
	}
	if q > len(s) {
		q = len(s)
	}
	su.q = q
	su.base.Q = q
	return su, nil
}

// bigLog2 approximates log₂(x) for a positive big integer.
func bigLog2(x *big.Int) float64 {
	if x.Sign() <= 0 {
		return 0
	}
	bits := x.BitLen()
	if bits <= 53 {
		return math.Log2(float64(x.Int64()))
	}
	// Take the top 53 bits for the mantissa.
	mant := new(big.Int).Rsh(x, uint(bits-53))
	return math.Log2(float64(mant.Int64())) + float64(bits-53)
}

// SetupStats returns the stats of the setup phase alone. A parallel run
// reports SetupStats().Merge(round deltas…); a single-threaded Sampler
// folds them into Stats for callers automatically.
func (su *Setup) SetupStats() Stats { return su.base }

// KappaPivot exposes the derived parameters (used by benchmarks and the
// experiment harness).
func (su *Setup) KappaPivot() KappaPivot { return su.kp }

// EstimatedCount returns the setup-time ApproxMC estimate (nil in the
// easy case, where the exact witness list is held instead).
func (su *Setup) EstimatedCount() *big.Int {
	if su.est == nil {
		return nil
	}
	return new(big.Int).Set(su.est)
}

// SamplingSet returns the sampling variables in use.
func (su *Setup) SamplingSet() []cnf.Var {
	return append([]cnf.Var(nil), su.s...)
}

// NewSession returns a BSAT session over the setup's formula, suitable
// for exclusive use by one worker. The first call adopts the session
// the setup phase already built; later calls construct fresh solvers.
// Call it from one goroutine (e.g. while building a worker pool), then
// hand each session to its worker.
func (su *Setup) NewSession() *bsat.Session {
	if se := su.spare; se != nil {
		su.spare = nil
		return se
	}
	return bsat.NewSession(su.f, bsat.Options{SamplingSet: su.s, Solver: su.opts.Solver})
}

// NewSampler pairs the shared setup with a private session, yielding an
// independent sampling worker.
func (su *Setup) NewSampler() *Sampler {
	return &Sampler{setup: su, sess: su.NewSession()}
}

// sortWitnesses orders witnesses canonically by their projection onto
// the sampling set. Enumeration order is an artifact of solver history
// (learned clauses, VSIDS activity), so a cell's witness list comes
// back in different orders on different sessions; sorting before the
// uniform index pick makes the chosen witness a function of the cell
// contents and the round's RNG alone. That is the invariant that lets
// a parallel engine run round i on any worker and still return the
// same sample. Projections are unique within a list (blocking clauses
// enforce distinctness on the sampling set), so the order is total.
func sortWitnesses(ws []cnf.Assignment, s []cnf.Var) {
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		for _, v := range s {
			av, bv := a.Get(v), b.Get(v)
			if av != bv {
				return bv // false < true
			}
		}
		return false
	})
}

// SampleRound executes lines 12–22 of Algorithm 1 once against the
// caller's session and RNG, accumulating observable behaviour into st:
// walk i over {q−3..q}, partition R_F with a fresh hash from
// H_xor(|S|, i, 3), and return a uniformly chosen witness of the first
// cell whose size lands within [loThresh, hiThresh]. It returns
// ErrFailed for the ⊥ outcome.
//
// Given the same RNG state, the outcome is independent of the session's
// history as long as no conflict-budget exhaustion occurs: accepted
// cells are always exhaustively enumerated, their witness lists are
// canonically ordered before the index pick, and budget retries redraw
// only from this round's RNG. This is the determinism contract the
// parallel engine builds on.
func (su *Setup) SampleRound(sess *bsat.Session, rng *randx.RNG, st *Stats) (cnf.Assignment, error) {
	return su.SampleRoundSpan(sess, rng, st, nil)
}

// SampleRoundSpan is SampleRound with per-phase tracing: each
// cell-search attempt (one Enumerate against a drawn hash at cell
// count 2^i) is recorded as a child span of sp, carrying the solver-
// work delta of that enumeration. A nil sp disarms the tracing — every
// span call degrades to a nil check — so SampleRound simply delegates
// here.
func (su *Setup) SampleRoundSpan(sess *bsat.Session, rng *randx.RNG, st *Stats, sp *obs.Span) (cnf.Assignment, error) {
	_ = faultpoint.Fire(faultpoint.RoundPanic) // chaos: panics when armed
	if su.easySet {
		// Lines 5–7: uniform choice among all witnesses.
		if len(su.easy) == 0 {
			return nil, ErrUnsat
		}
		st.Samples++
		return su.easy[rng.Intn(len(su.easy))], nil
	}
	kp := su.kp
	for i := su.q - 3; i <= su.q; i++ {
		m := i
		if m < 1 {
			m = 1
		}
		var res bsat.Result
		ok := false
		for retry := 0; retry < su.opts.MaxRetries; retry++ {
			// Lines 14–15: random h and α (α is folded into the XOR
			// right-hand sides by hashfam).
			h := hashfam.Draw(rng, su.s, m)
			st.XORRows += int64(h.M())
			st.XORLenSum += int64(h.TotalLen())
			// Line 16, on the caller's incremental session.
			cell := sp.StartSpan("cell")
			res = sess.Enumerate(kp.HiThresh+1, h)
			cell.SetInt("i", int64(i))
			cell.SetInt("xor_rows", int64(h.M()))
			cell.SetInt("witnesses", int64(len(res.Witnesses)))
			cell.SetInt("conflicts", res.Stats.Conflicts)
			cell.SetInt("propagations", res.Stats.Propagations)
			cell.End()
			st.BSATCalls++
			st.addSolverStats(res.Stats)
			if !res.BudgetExceeded {
				ok = true
				break
			}
			// §5 protocol: on timeout, redo lines 14–16 with the same i.
		}
		if !ok {
			return nil, ErrBudget
		}
		n := len(res.Witnesses)
		if float64(n) >= kp.LoThresh && n <= kp.HiThresh {
			// Lines 21–22, on the canonical order (see sortWitnesses).
			sortWitnesses(res.Witnesses, su.s)
			st.Samples++
			return res.Witnesses[rng.Intn(n)], nil
		}
	}
	// Lines 18–19.
	st.Failures++
	return nil, ErrFailed
}

// SampleBatchRound is SampleRound's without-replacement batch variant:
// one hashing round, up to k distinct witnesses from the accepted cell.
func (su *Setup) SampleBatchRound(sess *bsat.Session, rng *randx.RNG, st *Stats, k int) ([]cnf.Assignment, error) {
	if k <= 0 {
		return nil, errors.New("unigen: batch size must be positive")
	}
	if su.easySet {
		if len(su.easy) == 0 {
			return nil, ErrUnsat
		}
		out := make([]cnf.Assignment, 0, k)
		for _, idx := range rng.Perm(len(su.easy)) {
			if len(out) == k {
				break
			}
			out = append(out, su.easy[idx])
		}
		st.Samples += int64(len(out))
		return out, nil
	}
	kp := su.kp
	for i := su.q - 3; i <= su.q; i++ {
		m := i
		if m < 1 {
			m = 1
		}
		h := hashfam.Draw(rng, su.s, m)
		st.XORRows += int64(h.M())
		st.XORLenSum += int64(h.TotalLen())
		res := sess.Enumerate(kp.HiThresh+1, h)
		st.BSATCalls++
		st.addSolverStats(res.Stats)
		if res.BudgetExceeded {
			return nil, ErrBudget
		}
		n := len(res.Witnesses)
		if float64(n) >= kp.LoThresh && n <= kp.HiThresh {
			sortWitnesses(res.Witnesses, su.s)
			out := make([]cnf.Assignment, 0, k)
			for _, idx := range rng.Perm(n) {
				if len(out) == k {
					break
				}
				out = append(out, res.Witnesses[idx])
			}
			st.Samples += int64(len(out))
			return out, nil
		}
	}
	st.Failures++
	return nil, ErrFailed
}

// Sampler is the amortized UniGen state for one formula plus one BSAT
// session: a shared Setup (lines 1–11 of Algorithm 1) paired with a
// private incremental solver. Each Sample call executes lines 12–22.
// Not safe for concurrent use; for a pool of workers over one formula,
// share the Setup and give each worker its own Sampler (see
// Setup.NewSampler and internal/parallel).
type Sampler struct {
	setup *Setup
	sess  *bsat.Session
	stats Stats // this sampler's round stats; setup stats live in setup
}

// NewSampler runs the once-per-formula setup and attaches a session —
// the single-threaded construction path.
func NewSampler(f *cnf.Formula, rng *randx.RNG, opts Options) (*Sampler, error) {
	su, err := NewSetup(f, rng, opts)
	if err != nil {
		return nil, err
	}
	return su.NewSampler(), nil
}

// Stats returns a snapshot of the sampler's counters, setup phase
// included.
func (smp *Sampler) Stats() Stats { return smp.setup.base.Merge(smp.stats) }

// Setup returns the shared once-per-formula state.
func (smp *Sampler) Setup() *Setup { return smp.setup }

// KappaPivot exposes the derived parameters (used by benchmarks and the
// experiment harness).
func (smp *Sampler) KappaPivot() KappaPivot { return smp.setup.kp }

// EstimatedCount returns the setup-time ApproxMC estimate (nil in the
// easy case, where the exact witness list is held instead).
func (smp *Sampler) EstimatedCount() *big.Int { return smp.setup.EstimatedCount() }

// SamplingSet returns the sampling variables in use.
func (smp *Sampler) SamplingSet() []cnf.Var { return smp.setup.SamplingSet() }

// Sample executes lines 12–22 of Algorithm 1 on this sampler's session.
// It returns ErrFailed for the ⊥ outcome.
func (smp *Sampler) Sample(rng *randx.RNG) (cnf.Assignment, error) {
	return smp.setup.SampleRound(smp.sess, rng, &smp.stats)
}

// SampleBatch draws up to k witnesses from a single accepted cell,
// without replacement — the optimization introduced by UniGen's
// successor (UniGen2): one hashing round then amortizes over k
// returned samples. Witnesses within a batch are NOT independent (they
// are distinct by construction); use Sample for the DAC'14 guarantee.
// It returns ErrFailed for a ⊥ round, like Sample.
func (smp *Sampler) SampleBatch(rng *randx.RNG, k int) ([]cnf.Assignment, error) {
	return smp.setup.SampleBatchRound(smp.sess, rng, &smp.stats, k)
}

// SampleMany draws n witnesses, skipping ⊥ rounds, and reports how many
// rounds were attempted in total. It stops early only on hard errors.
func (smp *Sampler) SampleMany(rng *randx.RNG, n int) (witnesses []cnf.Assignment, attempts int, err error) {
	for len(witnesses) < n {
		attempts++
		w, serr := smp.Sample(rng)
		switch {
		case serr == nil:
			witnesses = append(witnesses, w)
		case errors.Is(serr, ErrFailed):
			// ⊥: retry with fresh randomness (the CRV use case simply
			// asks again).
		default:
			return witnesses, attempts, serr
		}
	}
	return witnesses, attempts, nil
}
