// Package core implements UniGen (Algorithm 1 of the DAC 2014 paper),
// the almost-uniform SAT-witness generator that is this repository's
// primary subject, together with ComputeKappaPivot (Algorithm 2) and the
// amortized per-formula state that makes repeated sampling cheap
// (lines 1–11 of Algorithm 1 execute once per formula; each sample
// re-runs only lines 12–22).
package core

import (
	"fmt"
	"math"
)

// MinEpsilon is the smallest admissible tolerance. For ε ≤ 1.71 no
// κ ∈ [0,1) satisfies ε = (1+κ)(2.23 + 0.48/(1−κ)²) − 1 (the κ→0 limit
// of the right-hand side is 1.71), which is why Algorithm 1 requires
// ε > 1.71 "for technical reasons explained in the Appendix".
const MinEpsilon = 1.71

// KappaPivot holds the derived parameters of Algorithm 2 plus the cell
// thresholds computed from them in lines 2–3 of Algorithm 1.
type KappaPivot struct {
	Kappa    float64
	Pivot    int
	HiThresh int     // 1 + (1+κ)·pivot, rounded down (cell upper bound)
	LoThresh float64 // pivot/(1+κ) (cell lower bound)
}

// epsilonOf evaluates the DAC'14 tolerance expression
// ε(κ) = (1+κ)(2.23 + 0.48/(1−κ)²) − 1, which is strictly increasing
// on [0, 1).
func epsilonOf(kappa float64) float64 {
	return (1+kappa)*(2.23+0.48/((1-kappa)*(1-kappa))) - 1
}

// ComputeKappaPivot implements Algorithm 2: find κ ∈ [0,1) such that
// ε = (1+κ)(2.23 + 0.48/(1−κ)²) − 1, then pivot = ⌈3√e·(1+1/κ)²⌉.
// It returns an error for ε ≤ MinEpsilon.
func ComputeKappaPivot(epsilon float64) (KappaPivot, error) {
	if epsilon <= MinEpsilon {
		return KappaPivot{}, fmt.Errorf("core: epsilon must exceed %v, got %v", MinEpsilon, epsilon)
	}
	// ε(κ) is continuous and strictly increasing on [0,1) with
	// ε(0)=1.71 and ε(κ)→∞ as κ→1, so bisection converges.
	lo, hi := 0.0, 1.0-1e-12
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if epsilonOf(mid) < epsilon {
			lo = mid
		} else {
			hi = mid
		}
	}
	kappa := (lo + hi) / 2
	pivot := int(math.Ceil(3 * math.Sqrt(math.E) * (1 + 1/kappa) * (1 + 1/kappa)))
	kp := KappaPivot{
		Kappa:    kappa,
		Pivot:    pivot,
		HiThresh: int(1 + (1+kappa)*float64(pivot)),
		LoThresh: float64(pivot) / (1 + kappa),
	}
	return kp, nil
}
