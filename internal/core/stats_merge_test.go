package core

import (
	"reflect"
	"testing"

	"unigen/internal/randx"
)

func TestStatsMerge(t *testing.T) {
	setup := Stats{BSATCalls: 1, SetupRounds: 15, Q: 7}
	w1 := Stats{Samples: 3, Failures: 1, BSATCalls: 14, XORRows: 80, XORLenSum: 400, Propagations: 1000,
		Learned: 50, Removed: 10, Compactions: 2, ArenaBytes: 4096}
	w2 := Stats{Samples: 2, Failures: 2, BSATCalls: 12, XORRows: 64, XORLenSum: 320, Propagations: 500,
		Learned: 30, Removed: 5, Compactions: 1, ArenaBytes: 8192}

	got := setup.Merge(w1).Merge(w2)
	want := Stats{
		Samples: 5, Failures: 3, BSATCalls: 27,
		XORRows: 144, XORLenSum: 720, Propagations: 1500,
		// Counters add; the ArenaBytes gauge takes the max across
		// contributing sessions.
		Learned: 80, Removed: 15, Compactions: 3, ArenaBytes: 8192,
		SetupRounds: 15, Q: 7,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %+v, want %+v", got, want)
	}
	if got.AvgXORLen() != 5 || got.SuccessProb() != 5.0/8 || got.Rounds() != 8 {
		t.Fatalf("derived columns: avg=%v succ=%v rounds=%v", got.AvgXORLen(), got.SuccessProb(), got.Rounds())
	}
	// Merge must not mutate its operands (value semantics).
	if setup.Samples != 0 || w1.Samples != 3 {
		t.Fatal("Merge mutated an operand")
	}
	// Every counter is an integer, so Merge is order-insensitive — the
	// property that frees the parallel collector from float ordering
	// concerns.
	if rev := setup.Merge(w2).Merge(w1); !reflect.DeepEqual(rev, got) {
		t.Fatalf("merge order sensitivity: %+v vs %+v", rev, got)
	}
}

func TestStatsMergeEasyCaseAndQ(t *testing.T) {
	a := Stats{EasyCase: true, Q: 3}
	b := Stats{Q: 9}
	if m := a.Merge(b); !m.EasyCase || m.Q != 9 {
		t.Fatalf("merged = %+v", m)
	}
	if m := b.Merge(a); !m.EasyCase || m.Q != 9 {
		t.Fatalf("merge not symmetric on EasyCase/Q: %+v", b.Merge(a))
	}
}

// TestSamplerStatsIncludeSetup guards the single-threaded contract:
// Sampler.Stats folds the shared setup stats into the per-sampler view,
// so facade callers see the same columns as before the Setup split.
func TestSamplerStatsIncludeSetup(t *testing.T) {
	f := hardFormula()
	smp, err := NewSampler(f, randx.New(21), Options{Epsilon: 6, ApproxMCRounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	st := smp.Stats()
	if st.SetupRounds == 0 || st.Q == 0 {
		t.Fatalf("setup stats missing from sampler view: %+v", st)
	}
	if st.Q != smp.Setup().SetupStats().Q {
		t.Fatalf("Q mismatch: %d vs %d", st.Q, smp.Setup().SetupStats().Q)
	}
}
