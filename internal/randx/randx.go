// Package randx provides a small, deterministic, splittable random number
// generator used by every randomized component in this repository.
//
// The DAC'14 implementation of UniGen uses C++ std::random_device as its
// entropy source. For reproducible experiments we substitute a seeded
// SplitMix64 generator (Steele, Lea, Flood; JPDC 2014). SplitMix64 passes
// BigCrush on its 64-bit outputs and is more than adequate for drawing
// XOR-constraint coefficients, which only need unbiased independent bits.
package randx

import "math/bits"

// RNG is a deterministic pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer New for explicit seeding.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is statistically independent
// of the parent's. It is used to hand sub-components their own streams so
// that adding randomness consumption in one component does not perturb
// another. Split advances the parent; for a splitting scheme that does
// not depend on how far the parent has been consumed, use Stream.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}

// Stream returns the i-th child generator of the family rooted at
// master, without constructing or advancing a master generator. The
// child's seed is the (i+1)-th output of a SplitMix64 generator seeded
// with master, addressable in O(1) by index. (Split is the sequential
// sibling of this scheme; its children additionally XOR a constant
// into the seed, so the two families are distinct.) Distinct (master,
// i) pairs yield statistically independent streams.
//
// This is the splittable-seed scheme behind parallel sampling: round i
// of a run is executed with Stream(masterSeed, i) no matter which
// worker runs it, which is what makes the sample multiset reproducible
// for a fixed master seed regardless of worker count or scheduling.
func Stream(master, i uint64) *RNG {
	z := master + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return New(z ^ (z >> 31))
}

// Bool returns a uniformly random bit.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's nearly-divisionless rejection method, so the result is
// exactly uniform.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := bits.Mul64(x, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bits fills dst with n random bits packed little-endian into bytes.
func (r *RNG) Bits(dst []byte, n int) {
	for i := 0; i < len(dst); i++ {
		dst[i] = 0
	}
	for i := 0; i < n; i += 64 {
		w := r.Uint64()
		for b := 0; b < 64 && i+b < n; b++ {
			if w&(1<<uint(b)) != 0 {
				dst[(i+b)/8] |= 1 << uint((i+b)%8)
			}
		}
	}
}
