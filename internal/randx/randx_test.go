package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across different seeds", same)
	}
}

func TestStreamMatchesSplitSequence(t *testing.T) {
	// Stream(master, i) is documented as the i-th output of a SplitMix64
	// generator seeded with master, i.e. New(master) advanced i+1 times.
	master := New(77)
	for i := uint64(0); i < 16; i++ {
		want := New(master.Uint64())
		got := Stream(77, i)
		for k := 0; k < 4; k++ {
			if got.Uint64() != want.Uint64() {
				t.Fatalf("Stream(77, %d) diverged from master output %d", i, i)
			}
		}
	}
}

func TestStreamChildrenDiffer(t *testing.T) {
	// Distinct round indices and distinct masters must yield streams
	// with no early collisions.
	seen := map[uint64]bool{}
	for _, master := range []uint64{0, 1, 0xdeadbeef} {
		for i := uint64(0); i < 64; i++ {
			r := Stream(master, i)
			for k := 0; k < 4; k++ {
				v := r.Uint64()
				if seen[v] {
					t.Fatalf("collision across streams (master=%d, i=%d)", master, i)
				}
				seen[v] = true
			}
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		x := r.Intn(m)
		return x >= 0 && x < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(4)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("bucket %d: %d vs expected %.0f", i, c, want)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(5)
	const trials = 100000
	ones := 0
	for i := 0; i < trials; i++ {
		if r.Bool() {
			ones++
		}
	}
	if math.Abs(float64(ones)-trials/2) > 5*math.Sqrt(trials/4) {
		t.Fatalf("ones = %d of %d", ones, trials)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 = %v", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(7)
	for n := 0; n < 30; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, x := range p {
			if x < 0 || x >= n || seen[x] {
				t.Fatalf("Perm(%d) = %v invalid", n, p)
			}
			seen[x] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(8)
	child := parent.Split()
	// Child stream should not track parent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d collisions between parent and child", same)
	}
}

func TestBitsPacking(t *testing.T) {
	r := New(9)
	dst := make([]byte, 4)
	r.Bits(dst, 9) // bits beyond 9 must remain zero
	if dst[1]&0xFE != 0 || dst[2] != 0 || dst[3] != 0 {
		t.Fatalf("high bits leaked: %v", dst)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64() // must not panic
}
