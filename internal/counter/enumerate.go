package counter

import (
	"fmt"
	"math/big"

	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/sat"
)

// ExactProjected counts |R_F↓S| — the number of distinct projections of
// witnesses of f onto its sampling set — by bounded enumeration. limit
// caps the number of witnesses enumerated; if the count would exceed it,
// an error is returned. This is the exact counter behind the paper's US
// reference sampler (§5), where sharpSAT plays the same role.
func ExactProjected(f *cnf.Formula, limit int, solver sat.Config) (*big.Int, error) {
	ws, err := EnumerateProjected(f, limit, solver)
	if err != nil {
		return nil, err
	}
	return big.NewInt(int64(len(ws))), nil
}

// EnumerateProjected returns every witness of f, distinct on the
// sampling set, up to limit (error if exceeded or if the solver budget
// is exhausted). It runs on the incremental session engine: one
// solver, with all blocking clauses installed as a single removable
// group (one extra assumption per Solve).
func EnumerateProjected(f *cnf.Formula, limit int, solver sat.Config) ([]cnf.Assignment, error) {
	sess := bsat.NewSession(f, bsat.Options{Solver: solver})
	res := sess.Enumerate(limit+1, nil)
	if res.BudgetExceeded {
		return nil, fmt.Errorf("counter: solver budget exhausted after %d witnesses", len(res.Witnesses))
	}
	if len(res.Witnesses) > limit {
		return nil, fmt.Errorf("counter: more than %d witnesses", limit)
	}
	return res.Witnesses, nil
}
