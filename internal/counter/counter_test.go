package counter

import (
	"math/big"
	"testing"
	"testing/quick"

	"unigen/internal/cnf"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

func randomCNF(rng *randx.RNG, n, m, k int) *cnf.Formula {
	f := cnf.New(n)
	for i := 0; i < m; i++ {
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.MkLit(cnf.Var(rng.Intn(n)+1), rng.Bool()))
		}
		f.AddClauseLits(c)
	}
	return f
}

func TestExpandXOR(t *testing.T) {
	x := cnf.XORClause{Vars: []cnf.Var{1, 2, 3}, RHS: true}
	cls := expandXOR(x)
	if len(cls) != 4 {
		t.Fatalf("expanded to %d clauses, want 4", len(cls))
	}
	// Check against brute force: assignments satisfying all clauses are
	// exactly those with odd parity.
	for mask := 0; mask < 8; mask++ {
		a := cnf.NewAssignment(3)
		for v := 1; v <= 3; v++ {
			a[cnf.Var(v)] = mask&(1<<(v-1)) != 0
		}
		par := a[1] != a[2] != a[3]
		satAll := true
		for _, c := range cls {
			cs := false
			for _, l := range c {
				if a[l.Var()] != l.Neg() {
					cs = true
					break
				}
			}
			if !cs {
				satAll = false
				break
			}
		}
		if satAll != par {
			t.Fatalf("mask %03b: clauses=%v parity=%v", mask, satAll, par)
		}
	}
}

func TestSharpSATSimple(t *testing.T) {
	f := cnf.New(3)
	f.AddClause(1, 2)
	// Models of (x1∨x2) over 3 vars: 3 * 2 = 6.
	got, err := ExactSharpSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("count = %v, want 6", got)
	}
}

func TestSharpSATEmptyFormula(t *testing.T) {
	f := cnf.New(10)
	got, err := ExactSharpSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(1024)) != 0 {
		t.Fatalf("count = %v, want 1024", got)
	}
}

func TestSharpSATUnsat(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1)
	f.AddClause(-1)
	got, err := ExactSharpSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("count = %v, want 0", got)
	}
}

func TestSharpSATMatchesBruteForce(t *testing.T) {
	rng := randx.New(21)
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(9)
		f := randomCNF(rng, n, rng.Intn(3*n), 3)
		want := int64(sat.BruteForceCount(f))
		got, err := ExactSharpSAT(f)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("iter %d: sharpSAT=%v brute=%d\n%s", iter, got, want, cnf.DIMACSString(f))
		}
	}
}

func TestSharpSATWithXORsMatchesBruteForce(t *testing.T) {
	rng := randx.New(22)
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(8)
		f := randomCNF(rng, n, rng.Intn(2*n), 3)
		for i := 0; i < 1+rng.Intn(3); i++ {
			var vs []cnf.Var
			for v := 1; v <= n; v++ {
				if rng.Bool() {
					vs = append(vs, cnf.Var(v))
				}
			}
			if len(vs) > 0 {
				f.AddXOR(vs, rng.Bool())
			}
		}
		want := int64(sat.BruteForceCount(f))
		got, err := ExactSharpSAT(f)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("iter %d: sharpSAT=%v brute=%d\n%s", iter, got, want, cnf.DIMACSString(f))
		}
	}
}

func TestSharpSATXORTooWide(t *testing.T) {
	f := cnf.New(20)
	var vs []cnf.Var
	for v := 1; v <= 20; v++ {
		vs = append(vs, cnf.Var(v))
	}
	f.AddXOR(vs, true)
	if _, err := ExactSharpSAT(f); err == nil {
		t.Fatal("expected error for wide XOR")
	}
}

func TestExactProjectedMatchesBruteForce(t *testing.T) {
	rng := randx.New(23)
	for iter := 0; iter < 60; iter++ {
		n := 3 + rng.Intn(6)
		f := randomCNF(rng, n, rng.Intn(2*n), 3)
		var proj []cnf.Var
		for v := 1; v <= n; v++ {
			if rng.Bool() {
				proj = append(proj, cnf.Var(v))
			}
		}
		if len(proj) == 0 {
			proj = []cnf.Var{1}
		}
		f.SamplingSet = proj
		want := int64(sat.BruteForceProjectedCount(f, proj))
		got, err := ExactProjected(f, 1<<12, sat.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("iter %d: projected=%v brute=%d", iter, got, want)
		}
	}
}

func TestExactProjectedLimit(t *testing.T) {
	f := cnf.New(6) // 64 models
	if _, err := ExactProjected(f, 10, sat.Config{}); err == nil {
		t.Fatal("expected limit error")
	}
}

func TestPivotAndIterFormulas(t *testing.T) {
	// Spot-check the CP'13 constants at UniGen's operating point
	// ε=0.8, δ=0.2.
	if p := pivotAMC(0.8); p != 52 {
		t.Errorf("pivot(0.8) = %d, want 52", p)
	}
	if it := iterAMC(0.2); it != 137 {
		t.Errorf("iter(0.2) = %d, want 137", it)
	}
	// Monotonicity properties.
	check := func(e1 float64) bool {
		e := 0.1 + float64(int(e1*100)%300)/100.0
		return pivotAMC(e) >= pivotAMC(e+0.5)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestApproxMCExactSmall(t *testing.T) {
	f := cnf.New(4)
	f.AddClause(1, 2)
	rng := randx.New(24)
	res, err := ApproxMC(f, rng, ApproxMCOptions{Epsilon: 0.8, Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("small formula should be counted exactly")
	}
	want := int64(sat.BruteForceCount(f))
	if res.Count.Cmp(big.NewInt(want)) != 0 {
		t.Fatalf("count = %v, want %d", res.Count, want)
	}
}

func TestApproxMCWithinTolerance(t *testing.T) {
	// A formula with 2^10 = 1024 projected models: free cube over 10
	// vars plus constrained extras. ApproxMC(0.8, 0.2) must land within
	// a factor 1.8 (checked with generous slack for test stability).
	f := cnf.New(12)
	f.AddClause(11, 12) // vars 11,12 constrained; 1..10 free
	f.SamplingSet = []cnf.Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	rng := randx.New(25)
	res, err := ApproxMC(f, rng, ApproxMCOptions{Epsilon: 0.8, Delta: 0.2, MaxHashRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	got := new(big.Float).SetInt(res.Count)
	lo := big.NewFloat(1024.0 / 1.8)
	hi := big.NewFloat(1024.0 * 1.8)
	if got.Cmp(lo) < 0 || got.Cmp(hi) > 0 {
		t.Fatalf("ApproxMC = %v, want within [%v, %v]", res.Count, lo, hi)
	}
}

func TestApproxMCErrorCases(t *testing.T) {
	f := cnf.New(2)
	rng := randx.New(26)
	if _, err := ApproxMC(f, rng, ApproxMCOptions{Epsilon: 0, Delta: 0.2}); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, err := ApproxMC(f, rng, ApproxMCOptions{Epsilon: 0.8, Delta: 1.5}); err == nil {
		t.Error("delta=1.5 accepted")
	}
}

func TestApproxMCUnsat(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(1)
	f.AddClause(-1)
	rng := randx.New(27)
	res, err := ApproxMC(f, rng, ApproxMCOptions{Epsilon: 0.8, Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count.Sign() != 0 || !res.Exact {
		t.Fatalf("unsat: count=%v exact=%v", res.Count, res.Exact)
	}
}
