// Package counter provides the model-counting substrates UniGen depends
// on: an exact #SAT engine (DPLL with connected-component decomposition
// and component caching, a la sharpSAT), an exact projected counter
// based on bounded enumeration, and the ApproxMC approximate model
// counter (Chakraborty, Meel, Vardi; CP 2013) invoked at line 9 of
// UniGen's Algorithm 1.
package counter

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"unigen/internal/cnf"
)

// maxXORExpand bounds the width of XOR clauses that ExactSharpSAT will
// expand into CNF (an XOR over k variables expands to 2^(k-1) clauses).
const maxXORExpand = 12

// ExactSharpSAT counts the satisfying assignments of f over all NumVars
// variables using DPLL with component decomposition and caching. XOR
// clauses are expanded into CNF; it returns an error if an XOR is wider
// than maxXORExpand variables.
func ExactSharpSAT(f *cnf.Formula) (*big.Int, error) {
	cls := make([][]cnf.Lit, 0, len(f.Clauses))
	for _, c := range f.Clauses {
		cls = append(cls, append([]cnf.Lit(nil), c...))
	}
	for _, x := range f.XORs {
		if len(x.Vars) > maxXORExpand {
			return nil, fmt.Errorf("counter: XOR clause with %d vars exceeds expansion limit %d",
				len(x.Vars), maxXORExpand)
		}
		cls = append(cls, expandXOR(x)...)
	}
	e := &sharpEngine{cache: map[string]*big.Int{}}
	cnt := e.countOver(cls, f.NumVars)
	return cnt, nil
}

// expandXOR converts an XOR clause into the 2^(k-1) CNF clauses that
// forbid every odd/even-parity-violating assignment.
func expandXOR(x cnf.XORClause) [][]cnf.Lit {
	k := len(x.Vars)
	var out [][]cnf.Lit
	for mask := 0; mask < 1<<uint(k); mask++ {
		// mask bit = 1 means the literal is negated in the clause.
		// A clause ¬(l1 ∧ ... ∧ lk) rules out one assignment; we rule out
		// assignments whose parity differs from RHS.
		par := false
		for i := 0; i < k; i++ {
			if mask&(1<<uint(i)) != 0 {
				par = !par
			}
		}
		if par == x.RHS {
			continue // this assignment satisfies the XOR; keep it
		}
		c := make([]cnf.Lit, k)
		for i, v := range x.Vars {
			// Assignment: v = (mask bit i). Clause literal must be false
			// under it, i.e. the opposite literal.
			c[i] = cnf.MkLit(v, mask&(1<<uint(i)) != 0)
		}
		out = append(out, c)
	}
	return out
}

type sharpEngine struct {
	cache map[string]*big.Int
}

// countOver counts assignments over exactly nVars variables (1..nVars)
// that satisfy cls. Variables not mentioned in cls contribute a factor
// of 2 each.
func (e *sharpEngine) countOver(cls [][]cnf.Lit, nVars int) *big.Int {
	reduced, fixed, conflict := unitPropagate(cls)
	if conflict {
		return big.NewInt(0)
	}
	involved := map[cnf.Var]struct{}{}
	for _, c := range reduced {
		for _, l := range c {
			involved[l.Var()] = struct{}{}
		}
	}
	free := nVars - len(fixed) - len(involved)
	result := new(big.Int).Lsh(big.NewInt(1), uint(free))
	if len(reduced) == 0 {
		return result
	}
	for _, comp := range components(reduced) {
		result.Mul(result, e.countComponent(comp))
	}
	return result
}

// countComponent counts assignments over vars(comp) satisfying comp,
// with caching on the canonical component encoding.
func (e *sharpEngine) countComponent(comp [][]cnf.Lit) *big.Int {
	key := componentKey(comp)
	if c, ok := e.cache[key]; ok {
		return c
	}
	v := pickVar(comp)
	pos := e.countBranch(comp, cnf.MkLit(v, false))
	neg := e.countBranch(comp, cnf.MkLit(v, true))
	total := new(big.Int).Add(pos, neg)
	e.cache[key] = total
	return total
}

// countBranch conditions comp on literal l being true and counts the
// remainder over the same variable set (minus v).
func (e *sharpEngine) countBranch(comp [][]cnf.Lit, l cnf.Lit) *big.Int {
	vars := map[cnf.Var]struct{}{}
	for _, c := range comp {
		for _, q := range c {
			vars[q.Var()] = struct{}{}
		}
	}
	cond, conflict := condition(comp, l)
	if conflict {
		return big.NewInt(0)
	}
	reduced, fixed, conflict := unitPropagate(cond)
	if conflict {
		return big.NewInt(0)
	}
	involved := map[cnf.Var]struct{}{}
	for _, c := range reduced {
		for _, q := range c {
			involved[q.Var()] = struct{}{}
		}
	}
	// Free vars: in the component but now fixed by nothing and absent.
	free := len(vars) - 1 - len(fixed) - len(involved) // -1 for v itself
	result := new(big.Int).Lsh(big.NewInt(1), uint(free))
	for _, sub := range components(reduced) {
		result.Mul(result, e.countComponent(sub))
	}
	return result
}

// condition removes satisfied clauses and false literals given l=true.
func condition(cls [][]cnf.Lit, l cnf.Lit) ([][]cnf.Lit, bool) {
	var out [][]cnf.Lit
	for _, c := range cls {
		sat := false
		var nc []cnf.Lit
		for _, q := range c {
			if q == l {
				sat = true
				break
			}
			if q == l.Not() {
				continue
			}
			nc = append(nc, q)
		}
		if sat {
			continue
		}
		if len(nc) == 0 {
			return nil, true
		}
		out = append(out, nc)
	}
	return out, false
}

// unitPropagate applies unit propagation until fixpoint, returning the
// reduced clause set, the set of fixed variables, and a conflict flag.
func unitPropagate(cls [][]cnf.Lit) (out [][]cnf.Lit, fixed map[cnf.Var]struct{}, conflict bool) {
	fixed = map[cnf.Var]struct{}{}
	cur := cls
	for {
		var unit cnf.Lit
		for _, c := range cur {
			if len(c) == 1 {
				unit = c[0]
				break
			}
		}
		if unit == 0 {
			return cur, fixed, false
		}
		next, confl := condition(cur, unit)
		if confl {
			return nil, fixed, true
		}
		fixed[unit.Var()] = struct{}{}
		cur = next
	}
}

// components partitions clauses into connected components (clauses
// sharing a variable are connected).
func components(cls [][]cnf.Lit) [][][]cnf.Lit {
	parent := map[cnf.Var]cnf.Var{}
	var find func(v cnf.Var) cnf.Var
	find = func(v cnf.Var) cnf.Var {
		if parent[v] == v {
			return v
		}
		r := find(parent[v])
		parent[v] = r
		return r
	}
	union := func(a, b cnf.Var) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, c := range cls {
		for _, l := range c {
			if _, ok := parent[l.Var()]; !ok {
				parent[l.Var()] = l.Var()
			}
		}
		for i := 1; i < len(c); i++ {
			union(c[0].Var(), c[i].Var())
		}
	}
	groups := map[cnf.Var][][]cnf.Lit{}
	for _, c := range cls {
		r := find(c[0].Var())
		groups[r] = append(groups[r], c)
	}
	out := make([][][]cnf.Lit, 0, len(groups))
	var roots []cnf.Var
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// pickVar selects the most frequently occurring variable to branch on.
func pickVar(cls [][]cnf.Lit) cnf.Var {
	freq := map[cnf.Var]int{}
	for _, c := range cls {
		for _, l := range c {
			freq[l.Var()]++
		}
	}
	var best cnf.Var
	bestN := -1
	for v, n := range freq {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

// componentKey canonically encodes a clause set for the cache.
func componentKey(cls [][]cnf.Lit) string {
	strs := make([]string, len(cls))
	for i, c := range cls {
		lits := make([]int, len(c))
		for j, l := range c {
			lits[j] = l.DIMACS()
		}
		sort.Ints(lits)
		var sb strings.Builder
		for _, x := range lits {
			fmt.Fprintf(&sb, "%d,", x)
		}
		strs[i] = sb.String()
	}
	sort.Strings(strs)
	return strings.Join(strs, ";")
}
