package counter

import (
	"math/big"
	"testing"

	"unigen/internal/cnf"
	"unigen/internal/randx"
)

func leapFrogFixture() *cnf.Formula {
	f := cnf.New(16)
	f.SamplingSet = []cnf.Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	return f // 2^14 projected models
}

// TestLeapFrogStaysAccurate: the heuristic only changes where the
// hash-count search starts, so the estimate must stay within tolerance.
func TestLeapFrogStaysAccurate(t *testing.T) {
	f := leapFrogFixture()
	for _, lf := range []bool{false, true} {
		rng := randx.New(91)
		res, err := ApproxMC(f, rng, ApproxMCOptions{
			Epsilon: 0.8, Delta: 0.2, MaxHashRounds: 8, LeapFrog: lf,
		})
		if err != nil {
			t.Fatalf("leapfrog=%v: %v", lf, err)
		}
		v := new(big.Float).SetInt(res.Count)
		lo, hi := big.NewFloat(16384/1.8), big.NewFloat(16384*1.8)
		if v.Cmp(lo) < 0 || v.Cmp(hi) > 0 {
			t.Fatalf("leapfrog=%v: count %v outside [%v,%v]", lf, res.Count, lo, hi)
		}
	}
}

// TestLeapFrogCheaper: with leap-frogging, later rounds skip the low
// hash counts, so the total number of XOR rows issued must drop.
func TestLeapFrogCheaper(t *testing.T) {
	f := leapFrogFixture()
	work := map[bool]int{}
	for _, lf := range []bool{false, true} {
		rng := randx.New(92)
		res, err := ApproxMC(f, rng, ApproxMCOptions{
			Epsilon: 0.8, Delta: 0.2, MaxHashRounds: 8, LeapFrog: lf,
		})
		if err != nil {
			t.Fatalf("leapfrog=%v: %v", lf, err)
		}
		work[lf] = res.TotalXORRows
	}
	if work[true] >= work[false] {
		t.Fatalf("leap-frogging did not reduce work: %d rows vs %d", work[true], work[false])
	}
}
