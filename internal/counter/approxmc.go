package counter

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"unigen/internal/bsat"
	"unigen/internal/cnf"
	"unigen/internal/hashfam"
	"unigen/internal/randx"
	"unigen/internal/sat"
)

// ApproxMCOptions configures the approximate counter.
type ApproxMCOptions struct {
	// Epsilon is the tolerance: the estimate is within a (1+ε) factor of
	// |R_F| with probability at least 1-δ. UniGen invokes ApproxMC with
	// ε = 0.8.
	Epsilon float64
	// Delta is the error probability; UniGen uses δ = 0.2
	// ("confidence of 0.8" in the paper's wording).
	Delta float64
	// SamplingSet projects counting onto these variables; empty means
	// all variables.
	SamplingSet []cnf.Var
	// Solver configures the underlying BSAT calls.
	Solver sat.Config
	// MaxHashRounds caps the number of iterations (overriding the
	// δ-derived default) when > 0. Provided for benchmarks; leaving it 0
	// preserves the CP'13 guarantee.
	MaxHashRounds int
	// LeapFrog enables the CP'13 "leap-frogging" heuristic: each core
	// round starts its hash-count search near the previous round's
	// successful count instead of from 1. The DAC'14 experiments
	// DISABLE this because it nullifies the theoretical guarantees
	// (§4, Implementation issues); it is provided as an ablation knob
	// and is off by default.
	LeapFrog bool
}

// ApproxMCResult reports the estimate and diagnostics.
type ApproxMCResult struct {
	// Count is the median-of-medians estimate of |R_F↓S|.
	Count *big.Int
	// Exact is true when enumeration finished below the pivot, making
	// Count exact rather than approximate.
	Exact bool
	// Rounds is the number of ApproxMCCore iterations that returned an
	// estimate.
	Rounds int
	// AvgXORLen is the mean XOR length used across all hash draws.
	AvgXORLen float64
	// TotalXORRows is the total number of XOR constraints issued across
	// all rounds — a machine-independent work measure (used by the
	// leap-frogging ablation).
	TotalXORRows int
}

// pivotAMC computes the cell-size threshold of CP'13:
// 2·⌈3√e·(1+1/ε)²⌉.
func pivotAMC(epsilon float64) int {
	return 2 * int(math.Ceil(3*math.Sqrt(math.E)*(1+1/epsilon)*(1+1/epsilon)))
}

// iterAMC computes the repetition count needed for confidence 1-δ:
// ⌈35·log₂(3/δ)⌉ (CP'13, Theorem 2).
func iterAMC(delta float64) int {
	return int(math.Ceil(35 * math.Log2(3/delta)))
}

// ApproxMC estimates |R_F↓S| within tolerance ε with confidence 1-δ by
// the algorithm of Chakraborty, Meel and Vardi (CP 2013): repeatedly
// partition the witness space with random XOR hashes until a randomly
// chosen cell is small, scale the cell size by the number of cells, and
// return the median across rounds. Leap-frogging is disabled, matching
// the DAC'14 experimental setup ("we disable this optimization since it
// nullifies the theoretical guarantees").
func ApproxMC(f *cnf.Formula, rng *randx.RNG, opts ApproxMCOptions) (ApproxMCResult, error) {
	vars := opts.SamplingSet
	if len(vars) == 0 {
		vars = f.SamplingVars()
	}
	opts.SamplingSet = vars

	// One incremental BSAT session serves the base call and every cell
	// probe of every round: the formula is ingested once and learned
	// clauses amortize across the whole leapfrog/linear search over m.
	sess := bsat.NewSession(f, bsat.Options{SamplingSet: vars, Solver: opts.Solver})
	return ApproxMCSession(sess, rng, opts)
}

// ApproxMCSession runs the ApproxMC algorithm on a caller-supplied
// session instead of building one. This is the conditioned-counting
// entry used by delta requests: a pooled session carrying standing
// assumption literals (bsat.Session.SetAssumptions) makes this count
// |R_{F∧A}↓S| — and because every cell probe is an exact bounded
// enumeration, the estimates (and hence the derived hash width q) are
// identical to a cold ApproxMC run over the conjoined formula at the
// same RNG, regardless of the session's accumulated solver state.
func ApproxMCSession(sess *bsat.Session, rng *randx.RNG, opts ApproxMCOptions) (ApproxMCResult, error) {
	if opts.Epsilon <= 0 {
		return ApproxMCResult{}, fmt.Errorf("counter: epsilon must be positive, got %v", opts.Epsilon)
	}
	if opts.Delta <= 0 || opts.Delta >= 1 {
		return ApproxMCResult{}, fmt.Errorf("counter: delta must be in (0,1), got %v", opts.Delta)
	}
	vars := opts.SamplingSet
	if len(vars) == 0 {
		vars = sess.SamplingSet()
	}
	pivot := pivotAMC(opts.Epsilon)
	t := iterAMC(opts.Delta)
	if opts.MaxHashRounds > 0 && opts.MaxHashRounds < t {
		t = opts.MaxHashRounds
	}

	// Quick exit: if |R_F↓S| <= pivot the count is exact.
	n, res := sess.Count(pivot+1, nil)
	if res.BudgetExceeded {
		return ApproxMCResult{}, fmt.Errorf("counter: BSAT budget exhausted in ApproxMC base call")
	}
	if n <= pivot {
		return ApproxMCResult{Count: big.NewInt(int64(n)), Exact: true, Rounds: 1}, nil
	}

	var estimates []*big.Int
	var xorLenSum int64
	var xorRows int
	startAt := 1
	for round := 0; round < t; round++ {
		est, lastI, lenSum, rows, err := approxMCCore(sess, vars, pivot, startAt, rng)
		if err != nil {
			return ApproxMCResult{}, err
		}
		xorLenSum += lenSum
		xorRows += rows
		if est != nil {
			estimates = append(estimates, est)
			if opts.LeapFrog && lastI > 2 {
				startAt = lastI - 1
			}
		} else if opts.LeapFrog {
			startAt = 1 // failed round: fall back to the full sweep
		}
	}
	if len(estimates) == 0 {
		return ApproxMCResult{}, fmt.Errorf("counter: every ApproxMC round failed")
	}
	sort.Slice(estimates, func(i, j int) bool { return estimates[i].Cmp(estimates[j]) < 0 })
	med := estimates[len(estimates)/2]
	out := ApproxMCResult{Count: med, Rounds: len(estimates), TotalXORRows: xorRows}
	if xorRows > 0 {
		out.AvgXORLen = float64(xorLenSum) / float64(xorRows)
	}
	return out, nil
}

// approxMCCore adds i = startAt, startAt+1, ... random XOR constraints
// until the cell becomes small enough, then scales. It returns the
// estimate (nil when the loop runs out of hash bits or hits an empty
// cell), the i at which it succeeded, and the exact XOR row/length
// totals issued. All cell probes run on the caller's incremental
// session.
func approxMCCore(sess *bsat.Session, vars []cnf.Var, pivot, startAt int, rng *randx.RNG) (*big.Int, int, int64, int, error) {
	var lenSum int64
	rows := 0
	if startAt < 1 {
		startAt = 1
	}
	for i := startAt; i < len(vars); i++ {
		h := hashfam.Draw(rng, vars, i)
		lenSum += int64(h.TotalLen())
		rows += h.M()
		cnt, res := sess.Count(pivot+1, h)
		if res.BudgetExceeded {
			return nil, i, lenSum, rows, fmt.Errorf("counter: BSAT budget exhausted at %d hash bits", i)
		}
		if cnt >= 1 && cnt <= pivot {
			est := new(big.Int).Lsh(big.NewInt(int64(cnt)), uint(i))
			return est, i, lenSum, rows, nil
		}
		if cnt == 0 {
			// Cell empty: hash overshot; this round fails (CP'13 core
			// reports failure rather than continuing to add constraints).
			return nil, i, lenSum, rows, nil
		}
	}
	return nil, len(vars), lenSum, rows, nil
}
